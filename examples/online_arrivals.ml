(* Online scheduling with task arrivals: the non-clairvoyant simulator
   of lib/ncv compares WDEQ against EQUI and a weight-priority policy
   on a workload where tasks keep arriving, and against the clairvoyant
   optimal makespan (the release-dates LP).

   The last section records the same WDEQ run through the online
   runtime as a JSONL journal, reloads it with Journal.replay, and
   checks the replayed objective is identical — the runtime's
   deterministic-replay invariant, live.

   Run with:  dune exec examples/online_arrivals.exe *)

module Sim = Mwct_ncv.Simulator.Float
module E = Mwct_core.Engine.Float
module En = Mwct_runtime.Engine.Float
module J = Mwct_runtime.Journal.Float
module G = Mwct_workload.Generator
module Rng = Mwct_util.Rng
module Tablefmt = Mwct_util.Tablefmt

let () =
  let rng = Rng.create 777 in
  let n = 10 and procs = 6 in
  let spec = G.uniform rng ~procs ~n () in
  let inst = E.Instance.of_spec spec in
  (* Tasks arrive in three waves. *)
  let releases = Array.init n (fun i -> float_of_int (i / 4) *. 0.15) in
  Printf.printf "Instance: %s\n" (Mwct_core.Spec.to_string spec);
  Printf.printf "Releases: %s\n\n"
    (String.concat " " (Array.to_list (Array.map (Printf.sprintf "%.2f") releases)));

  let table =
    Tablefmt.create ~title:"online policies under arrivals"
      [ "policy"; "sum w*C"; "sum w*(C-r)"; "makespan"; "trace valid" ]
  in
  Tablefmt.set_align table [ Tablefmt.Left; Tablefmt.Right; Tablefmt.Right; Tablefmt.Right; Tablefmt.Left ];
  List.iter
    (fun policy ->
      let tr = Sim.run ~releases inst policy in
      Tablefmt.add_row table
        [
          Sim.P.name policy;
          Printf.sprintf "%.4f" (Sim.weighted_completion_time tr);
          Printf.sprintf "%.4f" (Sim.weighted_flow_time tr);
          Printf.sprintf "%.4f" (Sim.makespan tr);
          (match Sim.check tr with Ok () -> "yes" | Error e -> "NO: " ^ e);
        ])
    Sim.P.all;
  Tablefmt.print table;

  (* Clairvoyant reference: the optimal makespan with release dates
     (exact LP over the release columns). *)
  let t_opt = E.Release_dates.optimal_makespan inst releases in
  Printf.printf "Clairvoyant optimal makespan with these releases: %.4f\n" t_opt;
  let tr = Sim.run ~releases inst Sim.P.Wdeq in
  Printf.printf "WDEQ online/offline makespan ratio: %.4f\n" (Sim.makespan tr /. t_opt);

  (* Event log of the WDEQ run. *)
  Printf.printf "\nWDEQ event trace:\n";
  List.iter
    (fun (t, e) ->
      match e with
      | Sim.Arrival i -> Printf.printf "  %8.4f  arrival    T%d\n" t i
      | Sim.Completion i -> Printf.printf "  %8.4f  completion T%d\n" t i)
    tr.Sim.events;

  (* Record the same run through the online runtime as a JSONL journal,
     then reload and replay it: the replayed engine must land on the
     exact same objective. *)
  let path =
    if Sys.file_exists "_build" && Sys.is_directory "_build" then "_build/online.jsonl"
    else Filename.concat (Filename.get_temp_dir_name ()) "online.jsonl"
  in
  let oc = open_out path in
  let w = J.writer oc in
  ignore (J.record w (J.Init { capacity = float_of_int procs; policy = "wdeq" }));
  let eng = En.create ~capacity:(float_of_int procs) ~policy:(Sim.P.engine_policy Sim.P.Wdeq) () in
  let apply ev =
    match En.apply eng ev with
    | Ok notes ->
      ignore (J.record w (J.Input ev));
      List.iter
        (fun (nt : En.notification) -> ignore (J.record w (J.Output { id = nt.En.id; at = nt.En.at })))
        notes
    | Error e -> failwith (En.error_to_string e)
  in
  Array.iteri
    (fun i r ->
      if r > En.now eng then apply (En.Advance (r -. En.now eng));
      apply
        (En.Submit
           {
             id = i;
             volume = inst.E.Types.tasks.(i).E.Types.volume;
             weight = inst.E.Types.tasks.(i).E.Types.weight;
             cap = E.Instance.effective_delta inst i;
             speedup = E.Instance.speedup_arrays inst i;
             deps = [];
           }))
    releases;
  apply En.Drain;
  close_out oc;
  Printf.printf "\nRecorded %d journal lines to %s\n" w.J.next_seq path;
  let replayed =
    match J.load path with
    | Error msg -> failwith ("journal load failed: " ^ msg)
    | Ok entries -> (
      let resolve name = Option.map Sim.P.engine_policy (Sim.P.of_name name) in
      match J.replay ~resolve entries with
      | Error msg -> failwith ("journal replay failed: " ^ msg)
      | Ok eng' -> eng')
  in
  Printf.printf "Recorded sum w*C: %.6f | replayed: %.6f\n" (En.weighted_completion eng)
    (En.weighted_completion replayed);
  assert (En.weighted_completion eng = En.weighted_completion replayed);
  assert (En.dump eng = En.dump replayed);
  Printf.printf "Replay reproduced the recorded run exactly.\n"
