(* mwct — command-line front end.

   Subcommands:
     solve       schedule an instance file with a registered algorithm
     experiment  regenerate one of the paper's experiments (or all)
     gen         generate a random instance in the Spec_io format
     bounds      print the lower bounds and the optimal makespan
     render      ASCII/SVG Gantt chart of a schedule
     simulate    non-clairvoyant policies under task arrivals
     serve       long-lived online scheduler driven by an event stream
     whatif      what-if replanning: fork a recorded run and price branches
     fuzz        theorem-backed conformance fuzzing of the solver registry

   Algorithm dispatch goes through the solver registry
   (Mwct_solver.Solver): `solve`, `render` and `--list-algos` all read
   the same list, so a newly registered solver is immediately
   available here with no per-algorithm match arms.

   Exit codes (uniform across subcommands):
     0  success
     1  the computed schedule/trace failed validation
     2  bad input (unreadable/malformed instance file, bad arguments)
   (cmdliner itself exits 124 on command-line parse errors.) *)

open Cmdliner
module Spec = Mwct_core.Spec
module Spec_io = Mwct_core.Spec_io
module Solver = Mwct_solver.Solver
module Driver = Mwct_solver.Driver
module G = Mwct_workload.Generator
module Rng = Mwct_util.Rng

let exit_invalid = 1
let exit_bad_input = 2

let load_spec path =
  match Spec_io.load path with
  | Ok spec -> spec
  | Error msg ->
    Printf.eprintf "error: %s: %s\n" path msg;
    exit exit_bad_input

(* ---------- solve ---------- *)

(* The algorithm argument is the registry's name list — registering a
   solver extends the CLI automatically. *)
let algo_conv = Arg.enum (List.map (fun n -> (n, n)) Solver.names)

let algo_arg ~default =
  Arg.(
    value
    & opt algo_conv default
    & info [ "a"; "algo" ] ~docv:"ALGO"
        ~doc:
          (Printf.sprintf "Algorithm: %s (see --list-algos)."
             (String.concat ", " (List.map (fun n -> "$(b," ^ n ^ ")") Solver.names))))

let list_algos_string () =
  let b = Buffer.create 512 in
  List.iter
    (fun (i : Solver.info) ->
      Buffer.add_string b
        (Printf.sprintf "%-14s %-40s %s\n" i.Solver.name
           (match Solver.caps_to_string i with "" -> "-" | s -> s)
           i.Solver.doc))
    Solver.infos;
  Buffer.contents b

(* The one polymorphic runner that replaced the per-engine
   run_float/run_exact copies: everything algorithm- or
   field-dependent comes from the registry and the field packed in
   [D]; only the number formatting is a parameter (the float engine
   prints fixed-point, the exact engine prints exact rationals). *)
module Solve_runner (D : sig
  module F : Mwct_field.Field.S

  val fmt : F.t -> string
  val engine : string
  val exact_check : bool
end) =
struct
  module Dr = Driver.Make (D.F)
  module E = Dr.E

  let run spec algo ~json =
    let inst = E.Instance.of_spec spec in
    let solver =
      match Dr.S.find algo with
      | Some s -> s
      | None ->
        Printf.eprintf "error: unknown algorithm %S\n" algo;
        exit exit_bad_input
    in
    if not (Dr.supports solver inst) then begin
      let names_with cap =
        String.concat ", "
          (List.filter_map
             (fun (i : Solver.info) ->
               if Solver.info_has_cap cap i then Some i.Solver.name else None)
             Solver.infos)
      in
      if E.Instance.has_deps inst && not (Solver.info_has_cap Solver.Dag solver.Dr.S.info) then
        Printf.eprintf
          "error: algorithm %S does not handle precedence; this instance has dependency edges \
           (try one of: %s)\n"
          algo (names_with Solver.Dag)
      else
        Printf.eprintf
          "error: algorithm %S supports only the linear rate model; this instance has speedup \
           curves (try one of: %s)\n"
          algo
          (names_with Solver.General_speedup);
      exit exit_bad_input
    end;
    let r = Dr.run ~exact:D.exact_check solver inst in
    if json then print_string (Dr.to_json ~engine:D.engine r)
    else begin
      print_string (E.Schedule.to_string r.Dr.schedule);
      Printf.printf "objective (sum w.C) = %s\nmakespan = %s\nvalid = %b\n" (D.fmt r.Dr.objective)
        (D.fmt r.Dr.makespan) (Dr.valid r)
    end;
    match r.Dr.check with
    | Ok () -> 0
    | Error v ->
      Printf.eprintf "error: invalid schedule: %s\n" (E.Schedule.violation_to_string v);
      exit_invalid
end

module Run_float = Solve_runner (struct
  module F = Mwct_field.Field.Float_field

  let fmt = Printf.sprintf "%.6f"
  let engine = "float"
  let exact_check = false
end)

module Run_exact = Solve_runner (struct
  module F = Mwct_rational.Rational.Rat_field

  let fmt = Mwct_rational.Rational.to_string
  let engine = "exact"
  let exact_check = true
end)

let solve_cmd =
  let file = Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Instance file (Spec_io format).") in
  let algo = algo_arg ~default:"wdeq" in
  let exact = Arg.(value & flag & info [ "exact" ] ~doc:"Use exact rational arithmetic.") in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the full report as JSON instead of text.") in
  let list_algos = Arg.(value & flag & info [ "list-algos" ] ~doc:"List the registered algorithms and exit.") in
  let run file algo exact json list_algos =
    if list_algos then begin
      print_string (list_algos_string ());
      exit 0
    end;
    let file =
      match file with
      | Some f -> f
      | None ->
        Printf.eprintf "error: FILE required (or --list-algos)\n";
        exit exit_bad_input
    in
    let spec = load_spec file in
    exit (if exact then Run_exact.run spec algo ~json else Run_float.run spec algo ~json)
  in
  Cmd.v
    (Cmd.info "solve"
       ~doc:
         "Schedule an instance and print the column schedule (exit 0) or report an invalid schedule \
          (exit 1); exit 2 on bad input.")
    Term.(const run $ file $ algo $ exact $ json $ list_algos)

(* ---------- experiment ---------- *)

let experiment_cmd =
  let exp_name =
    Arg.(value & pos 0 string "all" & info [] ~docv:"NAME"
           ~doc:(Printf.sprintf "Experiment id or 'all'. Ids: %s." (String.concat ", " Mwct_experiments.Experiments.names)))
  in
  let full = Arg.(value & flag & info [ "full" ] ~doc:"Paper-scale sample sizes (slow).") in
  let csv = Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of an aligned table.") in
  let run exp_name full csv =
    let scale = if full then Mwct_experiments.Experiments.Full else Mwct_experiments.Experiments.Quick in
    let emit table =
      if csv then print_string (Mwct_util.Tablefmt.to_csv table) else Mwct_util.Tablefmt.print table
    in
    if exp_name = "all" then
      if csv then
        List.iter
          (fun name ->
            match Mwct_experiments.Experiments.by_name name with
            | Some f ->
              Printf.printf "# %s\n" name;
              emit (f scale)
            | None -> ())
          Mwct_experiments.Experiments.names
      else Mwct_experiments.Experiments.run_all scale
    else begin
      match Mwct_experiments.Experiments.by_name exp_name with
      | Some f -> emit (f scale)
      | None ->
        Printf.eprintf "unknown experiment %S; known: %s\n" exp_name
          (String.concat ", " Mwct_experiments.Experiments.names);
        exit exit_bad_input
    end
  in
  Cmd.v (Cmd.info "experiment" ~doc:"Regenerate one of the paper's experiments.")
    Term.(const run $ exp_name $ full $ csv)

(* ---------- gen ---------- *)

let gen_cmd =
  let kind =
    Arg.(value & opt (enum [ ("uniform", `U); ("unweighted", `Uw); ("wide", `W); ("unit", `Unit); ("mixed", `M) ]) `U
         & info [ "kind" ] ~docv:"KIND" ~doc:"Family: uniform, unweighted, wide, unit, mixed.")
  in
  let procs = Arg.(value & opt int 4 & info [ "procs" ] ~docv:"P" ~doc:"Processors.") in
  let tasks = Arg.(value & opt int 5 & info [ "tasks" ] ~docv:"N" ~doc:"Tasks.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.") in
  let run kind procs tasks seed =
    let rng = Rng.create seed in
    let spec =
      match kind with
      | `U -> G.uniform rng ~procs ~n:tasks ()
      | `Uw -> G.uniform_unweighted rng ~procs ~n:tasks ()
      | `W -> G.wide rng ~procs ~n:tasks ()
      | `Unit -> G.unit_tasks rng ~procs ~n:tasks ()
      | `M -> G.mixed rng ~procs ~n:tasks ()
    in
    print_string (Spec_io.to_string spec)
  in
  Cmd.v (Cmd.info "gen" ~doc:"Generate a random instance.") Term.(const run $ kind $ procs $ tasks $ seed)

(* ---------- bounds ---------- *)

let bounds_cmd =
  let module E = Run_float.E in
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Instance file.") in
  let run file =
    let spec = load_spec file in
    let inst = E.Instance.of_spec spec in
    Printf.printf "squashed area A(I) = %.6f\n" (E.Lower_bounds.squashed_area inst);
    Printf.printf "height bound H(I)  = %.6f\n" (E.Lower_bounds.height_bound inst);
    Printf.printf "optimal makespan   = %.6f\n" (E.Makespan.optimal inst);
    let n = Spec.num_tasks spec in
    if E.Instance.has_curves inst then
      print_string "optimal sum w.C    = (skipped: LP enumeration is linear-rate-model only)\n"
    else if E.Instance.has_deps inst then
      print_string "optimal sum w.C    = (skipped: LP enumeration ignores dependency edges)\n"
    else if n <= 7 then begin
      let opt = Solver.Float.objective "optimal" inst in
      Printf.printf "optimal sum w.C    = %.6f\n" opt
    end
    else Printf.printf "optimal sum w.C    = (skipped: %d tasks > enumeration guard)\n" n
  in
  Cmd.v (Cmd.info "bounds" ~doc:"Print lower bounds and the optimal makespan.") Term.(const run $ file)

(* ---------- render ---------- *)

let render_cmd =
  let module E = Run_float.E in
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Instance file.") in
  let algo = algo_arg ~default:"optimal" in
  let svg = Arg.(value & opt (some string) None & info [ "svg" ] ~docv:"PATH" ~doc:"Also write an SVG Gantt chart (integerized schedule) to PATH.") in
  let run file algo svg =
    let spec = load_spec file in
    let inst = E.Instance.of_spec spec in
    if E.Instance.has_curves inst then begin
      (* normalize/integerize assume rate = allocation; the Gantt wrap
         is meaningless under a speedup curve *)
      Printf.eprintf
        "error: render requires the linear rate model (the WF normal form and the McNaughton \
         wrap assume rate = allocation); this instance has speedup curves\n";
      exit exit_bad_input
    end;
    (if E.Instance.has_deps inst then
       match Solver.find_info algo with
       | Some i when Solver.info_has_cap Solver.Dag i -> ()
       | _ ->
         Printf.eprintf
           "error: this instance has dependency edges; render it with a dag-capable algorithm\n";
         exit exit_bad_input);
    let schedule = fst (Solver.Float.solve_exn algo inst) in
    (* The WF normal form rebuilds columns from completion times alone,
       which freely reorders work across columns — valid for bags,
       precedence-violating for DAGs. Render dependency instances from
       the solver's own columns (the wrap below is per-column, so it
       respects precedence either way). *)
    let normal =
      if E.Instance.has_deps inst then schedule else E.Water_filling.normalize schedule
    in
    print_string (E.Render.columns_to_ascii normal);
    let integer_schedule, _ = E.Integerize.of_columns normal in
    let gantt = E.Assignment.assign integer_schedule in
    print_newline ();
    print_string (E.Render.gantt_to_ascii gantt);
    Printf.printf "objective = %.6f, preemptions = %d (3n = %d)\n"
      (E.Schedule.weighted_completion_time normal)
      (E.Assignment.preemptions gantt)
      (3 * Array.length inst.E.Types.tasks);
    match svg with
    | None -> ()
    | Some path ->
      Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc (E.Render.gantt_to_svg gantt));
      Printf.printf "SVG written to %s\n" path
  in
  Cmd.v (Cmd.info "render" ~doc:"Schedule an instance and render its Gantt chart (ASCII and optional SVG).")
    Term.(const run $ file $ algo $ svg)

(* ---------- simulate ---------- *)

let simulate_cmd =
  let module E = Run_float.E in
  let module Sim = Mwct_ncv.Simulator.Float in
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Instance file.") in
  let policy =
    Arg.(value
         & opt (enum [ ("wdeq", Sim.P.Wdeq); ("deq", Sim.P.Deq); ("equi", Sim.P.Equi); ("priority", Sim.P.Priority_weight) ]) Sim.P.Wdeq
         & info [ "p"; "policy" ] ~docv:"POLICY" ~doc:"Policy: wdeq, deq, equi, priority.")
  in
  let releases =
    Arg.(value & opt (some string) None
         & info [ "releases" ] ~docv:"R1,R2,..." ~doc:"Comma-separated release dates (default: all 0).")
  in
  let run file policy releases =
    let spec = load_spec file in
    let inst = E.Instance.of_spec spec in
    let n = Array.length inst.E.Types.tasks in
    let releases =
      match releases with
      | None -> Array.make n 0.
      | Some s -> (
        let parts = String.split_on_char ',' s in
        match List.map float_of_string_opt parts with
        | exception _ -> Printf.eprintf "error: bad releases\n"; exit exit_bad_input
        | floats ->
          if List.exists Option.is_none floats || List.length floats <> n then begin
            Printf.eprintf "error: --releases needs %d comma-separated numbers\n" n;
            exit exit_bad_input
          end
          else Array.of_list (List.map Option.get floats))
    in
    let tr = Sim.run ~releases inst policy in
    List.iter
      (fun (t, e) ->
        match e with
        | Sim.Arrival i -> Printf.printf "%10.4f  arrival    T%d\n" t i
        | Sim.Completion i -> Printf.printf "%10.4f  completion T%d\n" t i)
      tr.Sim.events;
    Printf.printf "sum w.C      = %.6f\n" (Sim.weighted_completion_time tr);
    Printf.printf "sum w.(C-r)  = %.6f\n" (Sim.weighted_flow_time tr);
    Printf.printf "makespan     = %.6f\n" (Sim.makespan tr);
    match Sim.check tr with
    | Ok () -> print_endline "trace valid  = true"
    | Error e ->
      Printf.printf "trace valid  = FALSE (%s)\n" e;
      exit exit_invalid
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run a non-clairvoyant policy with optional task arrivals and print the event trace.")
    Term.(const run $ file $ policy $ releases)

(* ---------- serve ---------- *)

(* Long-lived online front end over the sharded runtime store: events
   come in as line-delimited commands (text grammar or journal JSONL,
   auto-detected per line), decisions and metrics go out as JSONL.
   With --shards 1 (the default) the store is a transparent shim over
   a single engine — output bytes are identical to driving the engine
   directly; --shards N partitions tasks by --tenant-key across N
   engine shards re-budgeted each tick by a cross-shard WDEQ allocator
   (DESIGN.md §14). The policy argument is gated through the solver
   registry's capability flags: a registry algorithm may drive the
   engine only if it is Non_clairvoyant; policy-only names (equi,
   priority-weight) pass through. Deterministic output — wall-clock
   gauges are never printed (--latency only feeds the metrics
   histogram) — so the golden CLI tests can diff it byte for byte.

   Text grammar (one command per line; '#' starts a comment):
     submit ID VOLUME WEIGHT CAP
     cancel ID
     advance DT
     drain
     metrics
     quit *)
module Serve_runner (D : sig
  module F : Mwct_field.Field.S
end) =
struct
  module St = Mwct_runtime.Shard.Make (D.F)
  module En = St.En
  module J = St.J
  module P = Mwct_ncv.Policy.Make (D.F)
  module Ingest = Mwct_runtime.Ingest

  let policy_names = String.concat ", " (List.map P.name P.all)

  let error_json msg =
    let buf = Buffer.create (String.length msg + 32) in
    String.iter
      (function
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | c -> Buffer.add_char buf c)
      msg;
    Printf.sprintf "{\"type\":\"error\",\"msg\":\"%s\"}" (Buffer.contents buf)

  (* Resolve a policy name through the registry capability gate. *)
  let resolve_policy name =
    (match Solver.find_info name with
    | Some i when not (Solver.info_has_cap Solver.Non_clairvoyant i) ->
      Error
        (Printf.sprintf
           "algorithm %S is registered but not non-clairvoyant (caps: %s); online policies: %s" name
           (match Solver.caps_to_string i with "" -> "-" | s -> s)
           policy_names)
    | _ -> Ok ())
    |> Result.map (fun () -> P.of_name name)
    |> fun r ->
    match r with
    | Error _ as e -> e
    | Ok (Some p) -> Ok p
    | Ok None -> Error (Printf.sprintf "unknown policy %S; known: %s" name policy_names)

  let run ~policy_name ~procs_str ~input ~record_path ~no_segments ~nshards ~tenant_key
      ~shard_cap_str ~latency : int =
    let fail_input msg =
      Printf.eprintf "error: %s\n" msg;
      exit exit_bad_input
    in
    if nshards < 1 then fail_input (Printf.sprintf "bad --shards value %d (need >= 1)" nshards);
    let route =
      match tenant_key with
      | "hash" -> St.Hash
      | "mod" -> St.Mod
      | other -> fail_input (Printf.sprintf "bad --tenant-key value %S (hash or mod)" other)
    in
    let shard_cap =
      match shard_cap_str with
      | None -> None
      | Some s -> (
        match D.F.of_repr s with
        | Some c when D.F.sign c > 0 -> Some c
        | _ -> fail_input (Printf.sprintf "bad --shard-cap value %S" s))
    in
    let default_policy =
      match resolve_policy policy_name with Ok p -> p | Error msg -> fail_input msg
    in
    let default_procs =
      match D.F.of_repr procs_str with
      | Some p when D.F.sign p > 0 -> p
      | _ -> fail_input (Printf.sprintf "bad --procs value %S" procs_str)
    in
    let ic =
      match input with
      | None -> stdin
      | Some f -> ( try open_in f with Sys_error msg -> fail_input msg)
    in
    let record_oc =
      match record_path with
      | None -> None
      | Some p -> ( try Some (open_out p) with Sys_error msg -> fail_input msg)
    in
    (* Per-shard journal files (PATH.<k>) only exist for a sharded run:
       with one shard the merged journal IS the engine journal. *)
    let shard_ocs = ref [||] in
    let store = ref None in
    let init_store ~capacity ~policy ~policy_label =
      (* [--no-segments] drops per-task rate histories (unbounded on
         long-lived processes) and, on the float engine, enables the
         allocation-free advance kernel. Decision and metrics output is
         unchanged — histories only surface in closed-task records. *)
      let line_sink oc line =
        output_string oc line;
        output_char oc '\n';
        flush oc
      in
      let shard_sink =
        match record_path with
        | Some p when nshards > 1 ->
          let ocs =
            Array.init nshards (fun k ->
                try open_out (Printf.sprintf "%s.%d" p k)
                with Sys_error msg -> fail_input msg)
          in
          shard_ocs := ocs;
          Some (fun k line -> line_sink ocs.(k) line)
        | _ -> None
      in
      let s =
        St.create ~record_segments:(not no_segments) ?shard_cap
          ?merged_sink:(Option.map line_sink record_oc)
          ~decision_sink:print_endline ?shard_sink ~nshards ~route ~capacity
          ~allocator:(P.engine_policy P.Wdeq) ~policy:(P.engine_policy policy)
          ~kinetic:(fun () -> P.engine_kinetic policy)
          ~policy_label ()
      in
      store := Some s;
      s
    in
    let get_store () =
      match !store with
      | Some s -> s
      | None ->
        init_store ~capacity:default_procs ~policy:default_policy ~policy_label:policy_name
    in
    let handle_event ev =
      let s = get_store () in
      let t0 = if latency then Unix.gettimeofday () else 0. in
      (* decision lines reach stdout through the store's decision sink *)
      (match St.apply s ev with
      | Ok _ -> ()
      | Error err -> print_endline (error_json (En.error_to_string err)));
      if latency then St.observe_latency s (Unix.gettimeofday () -. t0)
    in
    let handle_init ~capacity ~policy_label =
      if !store <> None then print_endline (error_json "init after events; line ignored")
      else
        match resolve_policy policy_label with
        | Error msg -> print_endline (error_json msg)
        | Ok p ->
          if D.F.sign capacity <= 0 then print_endline (error_json "init: capacity must be positive")
          else ignore (init_store ~capacity ~policy:p ~policy_label)
    in
    let num s = D.F.of_repr s in
    let handle_text_line line =
      let parts = String.split_on_char ' ' line |> List.filter (fun s -> s <> "") in
      match parts with
      | [] -> ()
      | cmd :: _ when String.length cmd > 0 && cmd.[0] = '#' -> ()
      | "submit" :: id :: v :: w :: c :: rest -> (
        (* Optional trailing breakpoints "x1:y1 x2:y2 ..." select the
           concave speedup law; none means linear (rate = share). A
           trailing "deps:j,k" token lists precedence parents — the
           task stays dormant until every listed task completes. *)
        let deps_tokens, bps =
          List.partition
            (fun p -> String.length p > 5 && String.sub p 0 5 = "deps:")
            rest
        in
        let deps =
          match deps_tokens with
          | [] -> Ok []
          | [ tok ] -> (
            let body = String.sub tok 5 (String.length tok - 5) in
            match
              String.split_on_char ',' body
              |> List.filter (fun s -> s <> "")
              |> List.map int_of_string_opt
            with
            | ids when ids <> [] && List.for_all Option.is_some ids ->
              Ok (List.filter_map Fun.id ids)
            | _ -> Error ())
          | _ -> Error ()
        in
        let speedup =
          if bps = [] then Ok None
          else
            let parse_bp p =
              match String.index_opt p ':' with
              | None -> None
              | Some i -> (
                match
                  ( num (String.sub p 0 i),
                    num (String.sub p (i + 1) (String.length p - i - 1)) )
                with
                | Some x, Some y -> Some (x, y)
                | _ -> None)
            in
            match List.map parse_bp bps with
            | pairs when List.for_all Option.is_some pairs ->
              let pairs = List.filter_map Fun.id pairs in
              Ok
                (Some
                   ( Array.of_list (List.map fst pairs),
                     Array.of_list (List.map snd pairs) ))
            | _ -> Error ()
        in
        match (int_of_string_opt id, num v, num w, num c, speedup, deps) with
        | Some id, Some volume, Some weight, Some cap, Ok speedup, Ok deps ->
          handle_event (En.Submit { id; volume; weight; cap; speedup; deps })
        | _ -> print_endline (error_json ("submit: bad arguments: " ^ line)))
      | [ "cancel"; id ] -> (
        match int_of_string_opt id with
        | Some id -> handle_event (En.Cancel id)
        | None -> print_endline (error_json ("cancel: bad task id: " ^ line)))
      | [ "advance"; dt ] -> (
        match num dt with
        | Some dt -> handle_event (En.Advance dt)
        | None -> print_endline (error_json ("advance: bad duration: " ^ line)))
      | [ "drain" ] -> handle_event En.Drain
      | [ "metrics" ] -> print_endline (St.metrics_json (get_store ()))
      | _ -> print_endline (error_json ("unknown command: " ^ line))
    in
    let handle_json_line line =
      match J.of_line line with
      | Error msg -> print_endline (error_json ("bad journal line: " ^ msg))
      | Ok (_, J.Init { capacity; policy }) -> handle_init ~capacity ~policy_label:policy
      | Ok (_, J.Input ev) -> handle_event ev
      | Ok (_, (J.Output _ | J.Budget _ | J.Policy _)) -> ()
      (* out lines are the recorded run's decisions, budget lines its
         per-tick shard allocations, and policy lines a branch run's
         mid-stream switches; this run recomputes its own
         (Journal.replay is the strict verifier) *)
    in
    (* 64KiB-chunked reader (Ingest): input_line's per-character channel
       reads are measurable at serve's event rates. Same line semantics,
       including a final unterminated line. *)
    let reader = Ingest.create ic in
    let quit = ref false in
    let eof = ref false in
    while not (!quit || !eof) do
      match Ingest.next_line reader with
      | None -> eof := true
      | Some line ->
        let trimmed = String.trim line in
        if trimmed = "quit" || trimmed = "exit" then quit := true
        else if String.length trimmed > 0 && trimmed.[0] = '{' then handle_json_line trimmed
        else handle_text_line trimmed
    done;
    (* Final metrics line: the state the process ends on. An empty
       input stream still initializes the store, so the line (and exit
       0) is emitted even when no event ever arrived. *)
    print_endline (St.metrics_json (get_store ()));
    (match !store with Some s -> St.shutdown s | None -> ());
    (match record_oc with Some oc -> close_out oc | None -> ());
    Array.iter close_out !shard_ocs;
    if ic != stdin then close_in ic;
    0
end

module Serve_float = Serve_runner (struct
  module F = Mwct_field.Field.Float_field
end)

module Serve_exact = Serve_runner (struct
  module F = Mwct_rational.Rational.Rat_field
end)

let serve_cmd =
  let policy =
    Arg.(value & opt string "wdeq"
         & info [ "p"; "policy" ] ~docv:"POLICY"
             ~doc:
               "Online policy. Registry algorithms are admitted only with the non-clairvoyant \
                capability (wdeq, deq); policy-only names: equi, priority-weight.")
  in
  let procs =
    Arg.(value & opt string "4"
         & info [ "procs" ] ~docv:"P" ~doc:"Processor capacity (number, or p/q on the exact engine).")
  in
  let exact = Arg.(value & flag & info [ "exact" ] ~doc:"Use exact rational arithmetic.") in
  let journal =
    Arg.(value & opt (some file) None
         & info [ "journal" ] ~docv:"FILE"
             ~doc:"Read events from FILE (text commands or journal JSONL) instead of stdin.")
  in
  let record =
    Arg.(value & opt (some string) None
         & info [ "record" ] ~docv:"PATH"
             ~doc:"Append the run's journal (JSONL, replayable) to PATH.")
  in
  let no_segments =
    Arg.(value & flag
         & info [ "no-segments" ]
             ~doc:
               "Do not record per-task rate histories (unbounded memory on long-lived runs); on \
                the float engine this also enables the allocation-free advance fast path. \
                Decisions, metrics and journals are byte-identical either way.")
  in
  let shards =
    Arg.(value & opt int 1
         & info [ "shards" ] ~docv:"N"
             ~doc:
               "Partition tasks across N engine shards re-budgeted each tick by a cross-shard \
                WDEQ allocator (domain-parallel on OCaml 5). N=1 is byte-identical to the \
                unsharded engine.")
  in
  let tenant_key =
    Arg.(value & opt string "hash"
         & info [ "tenant-key" ] ~docv:"KEY"
             ~doc:
               "Shard routing: $(b,hash) (splitmix64 of the task id — spreads clustered tenant \
                ids) or $(b,mod) (id mod N).")
  in
  let shard_cap =
    Arg.(value & opt (some string) None
         & info [ "shard-cap" ] ~docv:"C"
             ~doc:"Per-shard budget ceiling (default: the full --procs capacity).")
  in
  let latency =
    Arg.(value & flag
         & info [ "latency" ]
             ~doc:
               "Record per-event service latency into the metrics histogram (lat_p50_us..p999). \
                Only the histogram is affected; decision output stays deterministic.")
  in
  let run policy procs exact journal record no_segments shards tenant_key shard_cap latency =
    exit
      (if exact then
         Serve_exact.run ~policy_name:policy ~procs_str:procs ~input:journal ~record_path:record
           ~no_segments ~nshards:shards ~tenant_key ~shard_cap_str:shard_cap ~latency
       else
         Serve_float.run ~policy_name:policy ~procs_str:procs ~input:journal ~record_path:record
           ~no_segments ~nshards:shards ~tenant_key ~shard_cap_str:shard_cap ~latency)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the online scheduling engine as a long-lived process: events in (stdin or --journal), \
          decision/metrics JSONL out; --record writes a replayable journal (plus per-shard \
          journals PATH.N when sharded).")
    Term.(
      const run $ policy $ procs $ exact $ journal $ record $ no_segments $ shards $ tenant_key
      $ shard_cap $ latency)

(* ---------- whatif ---------- *)

(* What-if replanning on journals (DESIGN.md §16): replay a recorded
   journal (or a generated load) to a fork point, snapshot/fork the
   engine, run each branch's mutation set — policy switch, tenant load
   scaling, event injection — and price every branch against the
   straight line (ΔΣw·C, ΔΣw·(C−r), first divergence, per-tenant
   deltas). Policy names go through the same registry capability gate
   as serve; the frontier DAG policies are admitted and run as their
   bag kernels (the engine's dormant→alive lifecycle already restricts
   the alive set to the precedence frontier they compute over). *)
module Whatif_runner (D : sig
  module F : Mwct_field.Field.S

  val fmt : F.t -> string
end) =
struct
  module En = Mwct_runtime.Engine.Make (D.F)
  module J = Mwct_runtime.Journal.Make (D.F)
  module B = Mwct_runtime.Branch.Make (D.F)
  module L = Mwct_runtime.Loadgen.Make (D.F)
  module P = Mwct_ncv.Policy.Make (D.F)

  let policy_names = String.concat ", " (List.map P.name P.all @ [ "wdeq-dag"; "deq-dag" ])

  let policy_of_name = function
    | "wdeq-dag" -> Some P.Wdeq
    | "deq-dag" -> Some P.Deq
    | name -> P.of_name name

  let resolve_policy name =
    match Solver.find_info name with
    | Some i when not (Solver.info_has_cap Solver.Non_clairvoyant i) ->
      Error
        (Printf.sprintf
           "algorithm %S is registered but not non-clairvoyant (caps: %s); online policies: %s" name
           (match Solver.caps_to_string i with "" -> "-" | s -> s)
           policy_names)
    | _ -> (
      match policy_of_name name with
      | Some p -> Ok p
      | None -> Error (Printf.sprintf "unknown policy %S; known: %s" name policy_names))

  let resolve name =
    match resolve_policy name with Ok p -> Some (P.engine_policy p) | Error _ -> None

  let kinetic_for name =
    match resolve_policy name with Ok p -> P.engine_kinetic p | Error _ -> None

  let run ~journal ~pattern_str ~seed ~tenants ~nevents ~procs_str ~base_policy ~fork_at
      ~branch_specs ~drain ~emit_stream ~json : int =
    let fail_input msg =
      Printf.eprintf "error: %s\n" msg;
      exit exit_bad_input
    in
    let capacity, policy_name, events =
      match journal with
      | Some path -> (
        match J.load path with
        | Error msg -> fail_input (Printf.sprintf "%s: %s" path msg)
        | Ok entries ->
          let capacity, policy_name, rest =
            match entries with
            | (_, J.Init { capacity; policy }) :: rest -> (capacity, policy, rest)
            | _ -> fail_input (Printf.sprintf "%s: journal must start with an init line" path)
          in
          let events =
            List.filter_map
              (fun (seq, e) ->
                match e with
                | J.Input ev -> Some ev
                | J.Output _ -> None (* the branch runner recomputes decisions *)
                | J.Init _ -> fail_input (Printf.sprintf "%s: seq %d: duplicate init line" path seq)
                | J.Budget _ ->
                  fail_input
                    (Printf.sprintf
                       "%s: seq %d: budget lines (sharded per-shard journals) are not supported; \
                        branch on the merged run or a single-engine journal"
                       path seq)
                | J.Policy _ ->
                  fail_input
                    (Printf.sprintf
                       "%s: seq %d: this journal already contains a policy switch (a branch \
                        journal); branch on the original straight-line journal"
                       path seq))
              rest
          in
          (capacity, policy_name, events))
      | None ->
        let pattern =
          match L.pattern_of_string pattern_str with
          | Some p -> p
          | None ->
            fail_input
              (Printf.sprintf "bad --loadgen pattern %S (burst, diurnal or adversarial)"
                 pattern_str)
        in
        let capacity =
          match D.F.of_repr procs_str with
          | Some p when D.F.sign p > 0 -> p
          | _ -> fail_input (Printf.sprintf "bad --procs value %S" procs_str)
        in
        if tenants <= 0 then fail_input (Printf.sprintf "bad --tenants value %d" tenants);
        if nevents < 0 then fail_input (Printf.sprintf "bad --events value %d" nevents);
        (capacity, base_policy, L.generate ~pattern ~seed ~tenants ~events:nevents ())
    in
    if emit_stream then begin
      let seq = ref 0 in
      let emit e =
        print_endline (J.to_line ~seq:!seq e);
        incr seq
      in
      emit (J.Init { capacity; policy = policy_name });
      List.iter (fun ev -> emit (J.Input ev)) events;
      0
    end
    else begin
      let specs =
        List.map
          (fun s -> match B.parse_spec s with Ok sp -> sp | Error m -> fail_input m)
          branch_specs
      in
      (match resolve_policy policy_name with Ok _ -> () | Error m -> fail_input m);
      List.iter
        (fun (sp : B.spec) ->
          List.iter
            (function
              | B.Set_policy p -> (
                match resolve_policy p with
                | Ok _ -> ()
                | Error m -> fail_input (Printf.sprintf "branch %S: %s" sp.B.label m))
              | _ -> ())
            sp.B.mutations)
        specs;
      let events =
        if drain && (match List.rev events with En.Drain :: _ -> false | [] -> false | _ -> true)
        then events @ [ En.Drain ]
        else events
      in
      match
        B.run ~resolve ~kinetic_for ~tenants ~capacity ~policy:policy_name ~events ~fork_at
          ~branches:specs ()
      with
      | Error msg -> fail_input msg
      | Ok report ->
        if json then List.iter print_endline (B.report_jsonl report)
        else begin
          Printf.printf
            "baseline: sum w.C = %s  sum w.(C-r) = %s  (fork at %d of %d events, %d branches)\n"
            (D.fmt report.B.baseline_wc) (D.fmt report.B.baseline_wflow) report.B.fork_at
            (List.length events) (List.length report.B.branches);
          List.iter
            (fun (o : B.outcome) ->
              Printf.printf
                "branch %-16s policy=%-8s d(w.C)=%s d(w.flow)=%s first-divergence=%s applied=%d \
                 dropped=%d\n"
                o.B.label o.B.policy (D.fmt o.B.d_wc) (D.fmt o.B.d_wflow)
                (match o.B.first_divergence with None -> "-" | Some t -> D.fmt t)
                o.B.applied o.B.dropped)
            report.B.branches
        end;
        0
    end
end

module Whatif_float = Whatif_runner (struct
  module F = Mwct_field.Field.Float_field

  let fmt = Printf.sprintf "%.6f"
end)

module Whatif_exact = Whatif_runner (struct
  module F = Mwct_rational.Rational.Rat_field

  let fmt = Mwct_rational.Rational.to_string
end)

let whatif_cmd =
  let journal =
    Arg.(value & opt (some file) None
         & info [ "journal" ] ~docv:"FILE"
             ~doc:"Branch on this recorded journal (JSONL). Without it, a load is generated \
                   ($(b,--loadgen)).")
  in
  let loadgen =
    Arg.(value & opt string "burst"
         & info [ "loadgen" ] ~docv:"PATTERN"
             ~doc:"Generated arrival pattern when no journal is given: $(b,burst), $(b,diurnal) \
                   or $(b,adversarial) (deterministic in --seed).")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Load-generator seed (SplitMix64).") in
  let tenants =
    Arg.(value & opt int 4
         & info [ "tenants" ] ~docv:"N"
             ~doc:"Tenant modulus: task id mod N names the tenant (load generation, scaling and \
                   per-tenant deltas).")
  in
  let nevents =
    Arg.(value & opt int 64 & info [ "events" ] ~docv:"N" ~doc:"Generated input events (before the trailing drain).")
  in
  let procs =
    Arg.(value & opt string "4"
         & info [ "procs" ] ~docv:"P" ~doc:"Processor capacity for generated loads (journals carry their own).")
  in
  let base_policy =
    Arg.(value & opt string "wdeq"
         & info [ "base-policy" ] ~docv:"NAME"
             ~doc:"Baseline policy for generated loads (journals carry their own). Gated through \
                   the registry like serve; wdeq-dag/deq-dag are admitted as their frontier \
                   kernels.")
  in
  let fork_at =
    Arg.(value & opt int 0
         & info [ "fork-at" ] ~docv:"N"
             ~doc:"Fork after the first N input events (default 0: branch from the initial state).")
  in
  let branch =
    Arg.(value & opt_all string []
         & info [ "branch" ] ~docv:"SPEC"
             ~doc:"Branch spec: LABEL[$(b,:)CLAUSE,...] with clauses $(b,policy=)NAME, \
                   $(b,scale=)TENANT:FACTOR, $(b,cancel=)ID, $(b,advance=)Q, \
                   $(b,submit=)ID:VOLUME:WEIGHT:CAP; numbers may be rational N/D. A bare LABEL \
                   is a straight-line branch. Repeatable.")
  in
  let switch_policy =
    Arg.(value & opt_all string []
         & info [ "p"; "policy" ] ~docv:"NAME"
             ~doc:"Shorthand for --branch policy-NAME:policy=NAME (switch the share rule at the \
                   fork). Repeatable.")
  in
  let scale_tenant =
    Arg.(value & opt_all string []
         & info [ "scale-tenant" ] ~docv:"T:K"
             ~doc:"Shorthand for --branch scale-T-K:scale=T:K — scale tenant T's post-fork \
                   volumes by K (e.g. 1:2 doubles tenant 1's load). Repeatable.")
  in
  let drain =
    Arg.(value & flag
         & info [ "drain" ]
             ~doc:"Append a drain to journal-loaded streams that do not already end in one \
                   (generated streams always drain).")
  in
  let emit_stream =
    Arg.(value & flag
         & info [ "emit-stream" ]
             ~doc:"Print the input stream as journal JSONL (init + in lines) and exit — the \
                   load generator's determinism surface.")
  in
  let exact = Arg.(value & flag & info [ "exact" ] ~doc:"Use exact rational arithmetic.") in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the divergence report as JSONL.") in
  let run journal loadgen seed tenants nevents procs base_policy fork_at branch switch_policy
      scale_tenant drain emit_stream exact json =
    let sanitize = String.map (fun c -> if c = ':' || c = '/' then '-' else c) in
    let branch_specs =
      branch
      @ List.map (fun p -> Printf.sprintf "policy-%s:policy=%s" (sanitize p) p) switch_policy
      @ List.map (fun s -> Printf.sprintf "scale-%s:scale=%s" (sanitize s) s) scale_tenant
    in
    exit
      (if exact then
         Whatif_exact.run ~journal ~pattern_str:loadgen ~seed ~tenants ~nevents ~procs_str:procs
           ~base_policy ~fork_at ~branch_specs ~drain ~emit_stream ~json
       else
         Whatif_float.run ~journal ~pattern_str:loadgen ~seed ~tenants ~nevents ~procs_str:procs
           ~base_policy ~fork_at ~branch_specs ~drain ~emit_stream ~json)
  in
  Cmd.v
    (Cmd.info "whatif"
       ~doc:
         "Replay a journal (or a generated load) to a fork point, fork the engine and price \
          what-if branches: policy switches, tenant load scaling, injected events — reporting \
          ΔΣw·C, ΔΣw·(C−r), first divergence and per-tenant deltas.")
    Term.(
      const run $ journal $ loadgen $ seed $ tenants $ nevents $ procs $ base_policy $ fork_at
      $ branch $ switch_policy $ scale_tenant $ drain $ emit_stream $ exact $ json)

(* ---------- fuzz ---------- *)

(* Theorem-backed conformance fuzzing (DESIGN.md §11): draw structural
   instances, run every capable registry solver on both engines against
   the oracle catalogue, shrink the first failure and print a one-line
   reproducer. Output is deterministic for a fixed (--seed, --cases)
   pair — the golden CLI tests rely on it — so timing never reaches
   stdout. *)

module Check_oracle = Mwct_check.Oracle
module Check_diff = Mwct_check.Differential
module Check_fuzz = Mwct_check.Fuzz

(* "30" = seconds; "30s" and "2m" also accepted. *)
let parse_budget s =
  let num part = float_of_string_opt part in
  let n = String.length s in
  if n = 0 then None
  else
    match s.[n - 1] with
    | 's' -> num (String.sub s 0 (n - 1))
    | 'm' -> Option.map (fun x -> x *. 60.) (num (String.sub s 0 (n - 1)))
    | _ -> num s

let parse_name_list ~what ~known = function
  | None -> None
  | Some s -> (
    let names = String.split_on_char ',' s |> List.map String.trim |> List.filter (fun n -> n <> "") in
    match List.find_opt (fun n -> not (List.mem n known)) names with
    | Some bad ->
      Printf.eprintf "error: unknown %s %S; known: %s\n" what bad (String.concat ", " known);
      exit exit_bad_input
    | None -> if names = [] then None else Some names)

let list_oracles_string () =
  let b = Buffer.create 512 in
  List.iter
    (fun (i : Check_oracle.info) ->
      Buffer.add_string b
        (Printf.sprintf "%-12s %-18s %s\n" i.Check_oracle.id i.Check_oracle.theorem i.Check_oracle.doc))
    Check_oracle.catalogue;
  Buffer.contents b

let fuzz_cmd =
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed (SplitMix64).") in
  let budget =
    Arg.(value & opt string "30s"
         & info [ "budget" ] ~docv:"TIME" ~doc:"Wall-clock budget: seconds, or with an $(b,s)/$(b,m) suffix.")
  in
  let cases =
    Arg.(value & opt int 1_000_000
         & info [ "cases" ] ~docv:"N"
             ~doc:"Stop after N instances. Reproducer lines pin this, so replays are budget-independent.")
  in
  let oracle =
    Arg.(value & opt (some string) None
         & info [ "oracle" ] ~docv:"IDS" ~doc:"Comma-separated oracle ids (see --list-oracles). Default: all.")
  in
  let algo =
    Arg.(value & opt (some string) None
         & info [ "algo" ] ~docv:"ALGOS" ~doc:"Comma-separated registry solvers. Default: all.")
  in
  let inject =
    Arg.(value & flag
         & info [ "inject-fault" ]
             ~doc:"Self-test: fabricate a failure on the first multi-task draw to exercise the \
                   shrink/reproduce/corpus pipeline.")
  in
  let corpus =
    Arg.(value & opt string "fuzz-findings"
         & info [ "corpus" ] ~docv:"DIR"
             ~doc:"Directory for shrunk counterexamples (created on first failure). Confirmed bugs get \
                   promoted to test/corpus/ for permanent replay.")
  in
  let list_oracles =
    Arg.(value & flag & info [ "list-oracles" ] ~doc:"List the oracle catalogue and exit.")
  in
  let run seed budget cases oracle algo inject corpus list_oracles =
    if list_oracles then begin
      print_string (list_oracles_string ());
      exit 0
    end;
    let budget =
      match parse_budget budget with
      | Some b when b > 0. -> b
      | _ ->
        Printf.eprintf "error: bad --budget value %S\n" budget;
        exit exit_bad_input
    in
    let cfg =
      {
        Check_diff.default_config with
        Check_diff.oracles = parse_name_list ~what:"oracle" ~known:Check_oracle.ids oracle;
        algos = parse_name_list ~what:"algorithm" ~known:Solver.names algo;
        inject_fault = inject;
      }
    in
    let outcome = Check_fuzz.run ~seed ~budget ~max_cases:cases cfg in
    match outcome.Check_fuzz.failures with
    | None ->
      Printf.printf "fuzz ok: %d cases, %d verdicts, 0 failures (seed %d)\n" outcome.Check_fuzz.cases
        outcome.Check_fuzz.verdicts seed;
      exit 0
    | Some cx ->
      Printf.printf "fuzz FAILED at case %d (family %s):\n" cx.Check_fuzz.case_no
        (Mwct_check.Instances.family_name cx.Check_fuzz.family);
      List.iter (fun v -> Printf.printf "  %s\n" (Check_oracle.verdict_to_string v)) cx.Check_fuzz.verdicts;
      Printf.printf "shrunk instance (%d tasks, drawn with %d):\n%s"
        (Spec.num_tasks cx.Check_fuzz.shrunk) (Spec.num_tasks cx.Check_fuzz.spec)
        (Spec_io.to_string cx.Check_fuzz.shrunk);
      let path = Check_fuzz.write_corpus ~dir:corpus ~seed cfg cx in
      Printf.printf "counterexample written to %s\n" path;
      Printf.printf "reproduce: %s\n" (Check_fuzz.reproducer ~seed cfg cx);
      exit exit_invalid
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Fuzz the solver registry against the paper's theorem oracles on both engines; on failure, \
          shrink the instance, write it to the corpus and print a reproducer (exit 1).")
    Term.(const run $ seed $ budget $ cases $ oracle $ algo $ inject $ corpus $ list_oracles)

let () =
  let doc = "malleable-task scheduling for weighted mean completion time (IPDPS 2012 reproduction)" in
  let info = Cmd.info "mwct" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            solve_cmd;
            experiment_cmd;
            gen_cmd;
            bounds_cmd;
            render_cmd;
            simulate_cmd;
            serve_cmd;
            whatif_cmd;
            fuzz_cmd;
          ]))
