(* Benchmark harness.

   Part 1 regenerates every table/experiment of the paper (E1-E10, see
   DESIGN.md §5 and EXPERIMENTS.md) at Quick scale — run
   `mwct experiment all --full` for paper-scale sample sizes.

   Part 2 runs bechamel micro-benchmarks (B1-B8) over the computational
   kernels: Water-Filling normalization, Greedy, WDEQ simulation, the
   Corollary-1 LP, integerization + assignment, the homogeneous
   recurrence, and the exact-arithmetic substrate. *)

open Bechamel
open Toolkit
module EF = Mwct_core.Engine.Float
module EQ = Mwct_core.Engine.Exact
module G = Mwct_workload.Generator
module Rng = Mwct_util.Rng
module Q = Mwct_rational.Rational
module Nat = Mwct_bigint.Nat

(* ---------- part 1: experiment tables ---------- *)

let run_experiments () =
  print_endline "================================================================";
  print_endline " Paper experiment regeneration (Quick scale; --full via the CLI)";
  print_endline "================================================================";
  print_newline ();
  Mwct_experiments.Experiments.run_all Mwct_experiments.Experiments.Quick

(* ---------- part 2: micro-benchmarks ---------- *)

let instance_of_size n =
  EF.Instance.of_spec (G.uniform (Rng.create (n * 31 + 7)) ~procs:16 ~n ())

let exact_instance_of_size n =
  EQ.Instance.of_spec (G.uniform (Rng.create (n * 31 + 7)) ~procs:16 ~n ())

(* B1: WF normalization, n = 100. *)
let bench_wf =
  let inst = instance_of_size 100 in
  let sigma = EF.Orderings.smith inst in
  let times = EF.Schedule.completion_times (EF.Greedy.run inst sigma) in
  Test.make ~name:"B1 water_filling.build n=100" (Staged.stage (fun () ->
      match EF.Water_filling.build inst times with Ok _ -> () | Error _ -> assert false))

(* B2: Greedy, n = 100. *)
let bench_greedy =
  let inst = instance_of_size 100 in
  let sigma = EF.Orderings.smith inst in
  Test.make ~name:"B2 greedy.run n=100" (Staged.stage (fun () -> ignore (EF.Greedy.run inst sigma)))

(* B3: WDEQ simulation, n = 100. *)
let bench_wdeq =
  let inst = instance_of_size 100 in
  Test.make ~name:"B3 wdeq.simulate n=100" (Staged.stage (fun () -> ignore (EF.Wdeq.wdeq inst)))

(* B4: one Corollary-1 LP, n = 6 (float). *)
let bench_lp =
  let inst = instance_of_size 6 in
  let pi = EF.Orderings.identity 6 in
  Test.make ~name:"B4 lp.optimal_for_order n=6" (Staged.stage (fun () ->
      ignore (EF.Lp_schedule.optimal_for_order inst pi)))

(* B5: integerize + assignment, n = 50. *)
let bench_integerize =
  let inst = instance_of_size 50 in
  let sigma = EF.Orderings.smith inst in
  let s = EF.Water_filling.normalize (EF.Greedy.run inst sigma) in
  Test.make ~name:"B5 integerize+assign n=50" (Staged.stage (fun () ->
      let is, _ = EF.Integerize.of_columns s in
      ignore (EF.Assignment.assign is)))

(* B6: homogeneous recurrence, n = 1000, exact rationals. *)
let bench_homogeneous =
  let deltas =
    Array.map
      (fun (r : Mwct_core.Spec.rat) -> Q.of_q r.Mwct_core.Spec.num r.Mwct_core.Spec.den)
      (G.homogeneous_deltas (Rng.create 99) ~n:150 ~den:1024 ())
  in
  let order = EQ.Orderings.identity 150 in
  Test.make ~name:"B6 homogeneous.total n=150 exact" (Staged.stage (fun () ->
      ignore (EQ.Homogeneous.total deltas order)))

(* B7: exact WDEQ (rational arithmetic end-to-end), n = 20. *)
let bench_exact_wdeq =
  let inst = exact_instance_of_size 20 in
  Test.make ~name:"B7 wdeq.simulate n=20 exact" (Staged.stage (fun () -> ignore (EQ.Wdeq.wdeq inst)))

(* B8: bignum substrate: 300-digit multiply + divide. *)
let bench_bigint =
  let a = Nat.of_string (String.concat "" (List.init 30 (fun i -> string_of_int (1000000000 + (i * 7))))) in
  let b = Nat.of_string (String.concat "" (List.init 15 (fun i -> string_of_int (2000000000 - (i * 13))))) in
  Test.make ~name:"B8 nat.mul+divmod 300 digits" (Staged.stage (fun () ->
      let p = Nat.mul a b in
      ignore (Nat.divmod p b)))

(* B9: Karatsuba vs schoolbook at ~4500 digits. *)
let big_a = Nat.pow (Nat.of_string "123456789123456789") 1000
let big_b = Nat.pow (Nat.of_string "987654321987654321") 1000

let bench_karatsuba =
  Test.make ~name:"B9a nat.mul karatsuba 17k digits" (Staged.stage (fun () -> ignore (Nat.mul big_a big_b)))

let bench_schoolbook =
  Test.make ~name:"B9b nat.mul schoolbook 17k digits"
    (Staged.stage (fun () -> ignore (Nat.mul_schoolbook big_a big_b)))

(* B10: release-dates LP, n = 12. *)
let bench_release_dates =
  let inst = instance_of_size 12 in
  let releases = Array.init 12 (fun i -> float_of_int (i mod 4) /. 8.) in
  Test.make ~name:"B10 release_dates.optimal_makespan n=12" (Staged.stage (fun () ->
      ignore (EF.Release_dates.optimal_makespan inst releases)))

(* B11: moldable heuristic, n = 12. *)
let bench_moldable =
  let inst = instance_of_size 12 in
  Test.make ~name:"B11 moldable.best_heuristic n=12" (Staged.stage (fun () ->
      ignore (EF.Moldable.best_heuristic inst)))

(* B12: ncv simulator with arrivals, n = 100. *)
let bench_ncv =
  let inst = instance_of_size 100 in
  let module Sim = Mwct_ncv.Simulator.Float in
  let releases = Array.init 100 (fun i -> float_of_int (i mod 10) /. 16.) in
  Test.make ~name:"B12 ncv.run wdeq+arrivals n=100" (Staged.stage (fun () ->
      ignore (Sim.run ~releases inst Sim.P.Wdeq)))

(* B13: simplex pivot-rule ablation on a dense random LP. *)
module SxF = Mwct_simplex.Simplex.Make (Mwct_field.Field.Float_field)

let build_pivot_lp () =
  let rng = Rng.create 1313 in
  let p = SxF.create () in
  let vars = Array.init 20 (fun _ -> SxF.add_var p) in
  for _ = 1 to 30 do
    let terms = Array.to_list (Array.map (fun v -> (v, float_of_int (Rng.int_in rng (-4) 5))) vars) in
    SxF.add_constraint p terms SxF.Geq (float_of_int (Rng.int_in rng 0 10))
  done;
  Array.iter (fun v -> SxF.add_constraint p [ (v, 1.) ] SxF.Leq 50.) vars;
  SxF.set_objective p (Array.to_list (Array.map (fun v -> (v, 1.)) vars));
  p

let bench_bland =
  Test.make ~name:"B13a simplex bland 20v/50c" (Staged.stage (fun () ->
      ignore (SxF.solve ~rule:SxF.Bland (build_pivot_lp ()))))

let bench_dantzig =
  Test.make ~name:"B13b simplex dantzig 20v/50c" (Staged.stage (fun () ->
      ignore (SxF.solve ~rule:SxF.Dantzig (build_pivot_lp ()))))

let benchmark () =
  let tests =
    [
      bench_wf; bench_greedy; bench_wdeq; bench_lp; bench_integerize; bench_homogeneous;
      bench_exact_wdeq; bench_bigint; bench_karatsuba; bench_schoolbook; bench_release_dates;
      bench_moldable; bench_ncv; bench_bland; bench_dantzig;
    ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true () in
  let raw_results =
    Benchmark.all cfg instances (Test.make_grouped ~name:"mwct" ~fmt:"%s %s" tests)
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw_results in
  print_endline "================================================================";
  print_endline " Micro-benchmarks (ns per run, OLS on monotonic clock)";
  print_endline "================================================================";
  let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) results [] in
  List.iter
    (fun (name, v) ->
      match Analyze.OLS.estimates v with
      | Some [ est ] -> Printf.printf "  %-40s %12.0f ns/run\n" name est
      | _ -> Printf.printf "  %-40s (no estimate)\n" name)
    (List.sort (fun (a, _) (b, _) -> compare a b) rows)

let () =
  run_experiments ();
  benchmark ()
