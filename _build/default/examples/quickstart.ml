(* Quickstart: build a malleable instance, schedule it with every
   algorithm in the library, and compare objectives against the exact
   optimum and the lower bounds.

   Run with:  dune exec examples/quickstart.exe *)

module E = Mwct_core.Engine.Float
module Spec = Mwct_core.Spec
module Tablefmt = Mwct_util.Tablefmt

let () =
  (* Four processors; a mix of wide and narrow tasks.
     volume, weight, parallelism cap. *)
  let spec =
    Spec.make ~procs:4
      [
        Spec.task ~volume:(Spec.rat 6 1) ~weight:(Spec.rat 3 1) ~delta:4 ();
        Spec.task ~volume:(Spec.rat 2 1) ~weight:(Spec.rat 1 1) ~delta:1 ();
        Spec.task ~volume:(Spec.rat 4 1) ~weight:(Spec.rat 2 1) ~delta:2 ();
        Spec.task ~volume:(Spec.rat 1 1) ~weight:(Spec.rat 4 1) ~delta:2 ();
      ]
  in
  let inst = E.Instance.of_spec spec in
  Printf.printf "Instance: %s\n\n" (Spec.to_string spec);

  let objective = E.Schedule.weighted_completion_time in
  let table = Tablefmt.create ~title:"weighted completion time by algorithm" [ "algorithm"; "objective"; "makespan"; "valid" ] in
  Tablefmt.set_align table [ Tablefmt.Left; Tablefmt.Right; Tablefmt.Right; Tablefmt.Left ];
  let row name s =
    Tablefmt.add_row table
      [
        name;
        Printf.sprintf "%.4f" (objective s);
        Printf.sprintf "%.4f" (E.Schedule.makespan s);
        string_of_bool (E.Schedule.is_valid s);
      ]
  in

  (* Non-clairvoyant: WDEQ (the paper's 2-approximation). *)
  let wdeq, _ = E.Wdeq.wdeq inst in
  row "WDEQ (non-clairvoyant)" wdeq;

  (* DEQ ignores weights. *)
  let deq, _ = E.Wdeq.deq inst in
  row "DEQ (unweighted shares)" deq;

  (* Clairvoyant greedy with Smith's order. *)
  let smith = E.Greedy.run inst (E.Orderings.smith inst) in
  row "Greedy(Smith order)" smith;

  (* Exact optimum: Corollary-1 LP over all completion orders. *)
  let opt_obj, opt = E.Lp_schedule.optimal inst in
  row "Optimal (LP enumeration)" opt;
  Tablefmt.print table;

  Printf.printf "Lower bounds: A(I) = %.4f, H(I) = %.4f\n"
    (E.Lower_bounds.squashed_area inst)
    (E.Lower_bounds.height_bound inst);
  Printf.printf "WDEQ / OPT = %.4f  (Theorem 4 guarantees <= 2)\n\n"
    (objective wdeq /. opt_obj);

  (* Normal form: rebuild the optimal schedule from its completion
     times only (Algorithm WF), then count preemptions after
     integerization (Theorems 9 and 10). *)
  let normal = E.Water_filling.normalize opt in
  Printf.printf "Normal form preserves the objective: %.4f\n" (objective normal);
  Printf.printf "Allocation changes (fractional): %d  (Theorem 9: <= n = %d)\n"
    (E.Preemption.total_changes normal)
    (Array.length inst.E.Types.tasks);
  let integer_schedule, _ = E.Integerize.of_columns normal in
  let gantt = E.Assignment.assign integer_schedule in
  Printf.printf "Preemptions (integer processors): %d  (Theorem 10: <= 3n = %d)\n"
    (E.Assignment.preemptions gantt)
    (3 * Array.length inst.E.Types.tasks)
