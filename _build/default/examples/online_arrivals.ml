(* Online scheduling with task arrivals: the non-clairvoyant simulator
   of lib/ncv compares WDEQ against EQUI and a weight-priority policy
   on a workload where tasks keep arriving, and against the clairvoyant
   optimal makespan (the release-dates LP).

   Run with:  dune exec examples/online_arrivals.exe *)

module Sim = Mwct_ncv.Simulator.Float
module E = Mwct_core.Engine.Float
module G = Mwct_workload.Generator
module Rng = Mwct_util.Rng
module Tablefmt = Mwct_util.Tablefmt

let () =
  let rng = Rng.create 777 in
  let n = 10 and procs = 6 in
  let spec = G.uniform rng ~procs ~n () in
  let inst = E.Instance.of_spec spec in
  (* Tasks arrive in three waves. *)
  let releases = Array.init n (fun i -> float_of_int (i / 4) *. 0.15) in
  Printf.printf "Instance: %s\n" (Mwct_core.Spec.to_string spec);
  Printf.printf "Releases: %s\n\n"
    (String.concat " " (Array.to_list (Array.map (Printf.sprintf "%.2f") releases)));

  let table =
    Tablefmt.create ~title:"online policies under arrivals"
      [ "policy"; "sum w*C"; "sum w*(C-r)"; "makespan"; "trace valid" ]
  in
  Tablefmt.set_align table [ Tablefmt.Left; Tablefmt.Right; Tablefmt.Right; Tablefmt.Right; Tablefmt.Left ];
  List.iter
    (fun policy ->
      let tr = Sim.run ~releases inst policy in
      Tablefmt.add_row table
        [
          Sim.P.name policy;
          Printf.sprintf "%.4f" (Sim.weighted_completion_time tr);
          Printf.sprintf "%.4f" (Sim.weighted_flow_time tr);
          Printf.sprintf "%.4f" (Sim.makespan tr);
          (match Sim.check tr with Ok () -> "yes" | Error e -> "NO: " ^ e);
        ])
    Sim.P.all;
  Tablefmt.print table;

  (* Clairvoyant reference: the optimal makespan with release dates
     (exact LP over the release columns). *)
  let t_opt = E.Release_dates.optimal_makespan inst releases in
  Printf.printf "Clairvoyant optimal makespan with these releases: %.4f\n" t_opt;
  let tr = Sim.run ~releases inst Sim.P.Wdeq in
  Printf.printf "WDEQ online/offline makespan ratio: %.4f\n" (Sim.makespan tr /. t_opt);

  (* Event log of the WDEQ run. *)
  Printf.printf "\nWDEQ event trace:\n";
  List.iter
    (fun (t, e) ->
      match e with
      | Sim.Arrival i -> Printf.printf "  %8.4f  arrival    T%d\n" t i
      | Sim.Completion i -> Printf.printf "  %8.4f  completion T%d\n" t i)
    tr.Sim.events
