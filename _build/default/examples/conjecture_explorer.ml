(* Explore the paper's two conjectures with exact arithmetic.

   Conjecture 12: some greedy order is optimal for every instance.
   Conjecture 13: on the homogeneous class, the greedy objective of an
   order equals that of the reversed order.

   Run with:  dune exec examples/conjecture_explorer.exe -- [instances] [tasks]
   (defaults: 200 instances of 4 tasks). *)

module EQ = Mwct_core.Engine.Exact
module Q = Mwct_rational.Rational
module G = Mwct_workload.Generator
module Rng = Mwct_util.Rng

let () =
  let instances = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 200 in
  let n = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 4 in
  if n > 6 then (prerr_endline "tasks must be <= 6 (n! LPs per instance)"; exit 1);

  (* --- Conjecture 12 on random uniform instances, exactly --- *)
  let rng = Rng.create 42 in
  let worst_gap = ref Q.zero in
  let failures = ref 0 in
  for k = 1 to instances do
    let spec = G.uniform (Rng.split rng) ~procs:4 ~n ~den:32 () in
    let inst = EQ.Instance.of_spec spec in
    let opt, _ = EQ.Lp_schedule.optimal inst in
    let best_greedy, _ = EQ.Lp_schedule.best_greedy inst in
    let gap = Q.sub best_greedy opt in
    if Q.sign gap > 0 then begin
      incr failures;
      if Q.compare gap !worst_gap > 0 then worst_gap := gap;
      Printf.printf "!! instance %d: best greedy %s > optimal %s (gap %s)\n" k
        (Q.to_string best_greedy) (Q.to_string opt) (Q.to_string gap)
    end;
    if k mod 50 = 0 then Printf.printf "  ... %d/%d instances checked\n%!" k instances
  done;
  Printf.printf "\nConjecture 12 (optimal greedy order exists):\n";
  Printf.printf "  %d/%d instances had best-greedy = LP-optimal exactly.\n" (instances - !failures) instances;
  if !failures > 0 then
    Printf.printf "  COUNTEREXAMPLE FOUND: worst gap %s — the conjecture fails!\n" (Q.to_string !worst_gap)
  else Printf.printf "  No counterexample (consistent with the paper's 10,000-instance search).\n";

  (* --- Conjecture 13, exactly, up to 15 tasks --- *)
  Printf.printf "\nConjecture 13 (reversal symmetry), exact rationals:\n";
  let ok = ref true in
  for size = 2 to 15 do
    let deltas_spec = G.homogeneous_deltas (Rng.split rng) ~n:size ~den:1024 () in
    let deltas = Array.map (fun (r : Mwct_core.Spec.rat) -> Q.of_q r.Mwct_core.Spec.num r.Mwct_core.Spec.den) deltas_spec in
    let order = EQ.Orderings.random (Rng.split rng) size in
    let gap = EQ.Homogeneous.reversal_gap deltas order in
    if Q.sign gap <> 0 then begin
      ok := false;
      Printf.printf "  n=%2d: VIOLATION, gap = %s\n" size (Q.to_string gap)
    end
    else Printf.printf "  n=%2d: total(σ) = total(reverse σ) exactly\n" size
  done;
  if !ok then Printf.printf "  Verified exactly up to 15 tasks (as the paper did with Sage).\n"
