(* The Figure-1 scenario: a server distributes codes to heterogeneous
   workers; tasks processed by the horizon = Σ w_i (T − C_i)⁺.
   Compares the naive policies against Smith-greedy and WDEQ.

   Run with:  dune exec examples/bandwidth_sharing.exe *)

module B = Mwct_bandwidth.Bandwidth.Float
module Tablefmt = Mwct_util.Tablefmt
module Rng = Mwct_util.Rng

let scenario () =
  (* A 10-unit-capacity server; 8 workers with heterogeneous links:
     a few fast links with big codes, several slow links with small
     codes — the shape that makes fair sharing interesting. *)
  let rng = Rng.create 2012 in
  let workers =
    Array.init 8 (fun i ->
        if i < 3 then
          {
            B.code_size = 8. +. Rng.float rng 4.;
            bandwidth = 4. +. Rng.float rng 2.;
            rate = 1. +. Rng.float rng 1.;
          }
        else
          {
            B.code_size = 1. +. Rng.float rng 2.;
            bandwidth = 1. +. Rng.float rng 1.;
            rate = 2. +. Rng.float rng 4.;
          })
  in
  { B.server_capacity = 10.; horizon = 12.; workers }

let () =
  let sc = scenario () in
  Printf.printf "Server capacity %.1f, horizon T = %.1f, %d workers\n\n" sc.B.server_capacity
    sc.B.horizon
    (Array.length sc.B.workers);

  let table =
    Tablefmt.create ~title:"tasks processed by horizon (higher is better)"
      [ "policy"; "throughput"; "sum w*C"; "last transfer ends" ]
  in
  Tablefmt.set_align table [ Tablefmt.Left; Tablefmt.Right; Tablefmt.Right; Tablefmt.Right ];
  List.iter
    (fun p ->
      let c = B.completions sc p in
      let weighted =
        let acc = ref 0. in
        Array.iteri (fun i w -> acc := !acc +. (w.B.rate *. c.(i))) sc.B.workers;
        !acc
      in
      let last = Array.fold_left Float.max 0. c in
      Tablefmt.add_row table
        [
          B.policy_name p;
          Printf.sprintf "%.3f" (B.tasks_processed sc c);
          Printf.sprintf "%.3f" weighted;
          Printf.sprintf "%.3f" last;
        ])
    [ B.Fifo; B.Equal_split; B.Wdeq; B.Smith_greedy ];
  Tablefmt.print table;
  print_endline
    "Maximizing throughput is exactly minimizing Σ w·C (the paper's\n\
     reduction): the rankings in the two columns mirror each other."
