examples/conjecture_explorer.ml: Array Mwct_core Mwct_rational Mwct_util Mwct_workload Printf Sys
