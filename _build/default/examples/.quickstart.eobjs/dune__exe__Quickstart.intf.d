examples/quickstart.mli:
