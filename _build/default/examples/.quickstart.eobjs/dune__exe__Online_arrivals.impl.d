examples/online_arrivals.ml: Array List Mwct_core Mwct_ncv Mwct_util Mwct_workload Printf String
