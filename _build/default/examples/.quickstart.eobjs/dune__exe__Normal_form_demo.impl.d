examples/normal_form_demo.ml: Array Mwct_core Out_channel Printf String
