examples/normal_form_demo.mli:
