examples/quickstart.ml: Array Mwct_core Mwct_util Printf
