examples/bandwidth_sharing.ml: Array Float List Mwct_bandwidth Mwct_util Printf
