examples/conjecture_explorer.mli:
