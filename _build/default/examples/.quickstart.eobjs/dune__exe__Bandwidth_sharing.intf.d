examples/bandwidth_sharing.mli:
