(* Visual walk through the paper's constructions (the content of its
   Figures 2-7): a schedule, its WF normal form with the water-level
   columns, the Theorem-3 wrap onto integer processors, and the
   Lemma-10 processor assignment, rendered with the library's ASCII
   Gantt renderer. An SVG of the final chart is written alongside.

   Run with:  dune exec examples/normal_form_demo.exe *)

module E = Mwct_core.Engine.Float
module Spec = Mwct_core.Spec

let () =
  let spec =
    Spec.make ~procs:3
      [
        Spec.task ~volume:(Spec.rat 3 1) ~delta:2 ();
        Spec.task ~volume:(Spec.rat 5 1) ~delta:2 ();
        Spec.task ~volume:(Spec.rat 2 1) ~delta:1 ();
        Spec.task ~volume:(Spec.rat 4 1) ~delta:3 ();
      ]
  in
  let inst = E.Instance.of_spec spec in
  Printf.printf "Instance: %s\n\n" (Spec.to_string spec);

  (* A greedy schedule to start from. *)
  let g = E.Greedy.run inst [| 1; 0; 3; 2 |] in
  Printf.printf "Greedy schedule (insertion order B, A, D, C):\n%s\n" (E.Render.columns_to_ascii g);

  (* Its normal form: same completion times, water-filled columns. *)
  let nf = E.Water_filling.normalize g in
  Printf.printf "WF normal form (rebuilt from completion times alone):\n%s\n"
    (E.Render.columns_to_ascii nf);
  Printf.printf "Column heights (Lemma 3: non-increasing): %s\n\n"
    (String.concat " "
       (Array.to_list (Array.map (Printf.sprintf "%.2f") (E.Water_filling.column_heights nf))));

  (* Theorem 3 wrap: fractional -> integer processors. *)
  let integer_schedule, wrap_gantt = E.Integerize.of_columns nf in
  Printf.printf "Theorem-3 wrap construction (per-column McNaughton wrap):\n%s\n"
    (E.Render.gantt_to_ascii wrap_gantt);

  (* Lemma 10: keep processors until the task releases them. *)
  let assigned = E.Assignment.assign integer_schedule in
  Printf.printf "Lemma-10 assignment (processors stick to their task):\n%s\n"
    (E.Render.gantt_to_ascii assigned);
  Printf.printf "Preemptions: raw wrap %d vs sticky assignment %d (Theorem 10 bound: 3n = %d)\n"
    (E.Assignment.preemptions wrap_gantt)
    (E.Assignment.preemptions assigned)
    (3 * Array.length inst.E.Types.tasks);

  let path = "normal_form_demo.svg" in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (E.Render.gantt_to_svg assigned));
  Printf.printf "\nSVG Gantt chart written to %s\n" path
