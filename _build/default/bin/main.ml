(* mwct — command-line front end.

   Subcommands:
     solve       schedule an instance file with a chosen algorithm
     experiment  regenerate one of the paper's experiments (or all)
     gen         generate a random instance in the Spec_io format
     bounds      print the lower bounds and the optimal makespan
*)

open Cmdliner
module EF = Mwct_core.Engine.Float
module EQ = Mwct_core.Engine.Exact
module Spec = Mwct_core.Spec
module Spec_io = Mwct_core.Spec_io
module Q = Mwct_rational.Rational
module G = Mwct_workload.Generator
module Rng = Mwct_util.Rng

let load_spec path =
  match Spec_io.load path with
  | Ok spec -> spec
  | Error msg ->
    Printf.eprintf "error: %s: %s\n" path msg;
    exit 2

(* ---------- solve ---------- *)

type algo = Wdeq | Deq | Greedy_smith | Greedy_identity | Optimal

let algo_conv =
  Arg.enum
    [
      ("wdeq", Wdeq);
      ("deq", Deq);
      ("greedy-smith", Greedy_smith);
      ("greedy", Greedy_identity);
      ("optimal", Optimal);
    ]

let run_float spec algo =
  let inst = EF.Instance.of_spec spec in
  let schedule =
    match algo with
    | Wdeq -> fst (EF.Wdeq.wdeq inst)
    | Deq -> fst (EF.Wdeq.deq inst)
    | Greedy_smith -> EF.Greedy.run inst (EF.Orderings.smith inst)
    | Greedy_identity -> EF.Greedy.run inst (EF.Orderings.identity (Array.length inst.EF.Types.tasks))
    | Optimal -> snd (EF.Lp_schedule.optimal inst)
  in
  print_string (EF.Schedule.to_string schedule);
  Printf.printf "objective (sum w.C) = %.6f\nmakespan = %.6f\nvalid = %b\n"
    (EF.Schedule.weighted_completion_time schedule)
    (EF.Schedule.makespan schedule)
    (EF.Schedule.is_valid schedule)

let run_exact spec algo =
  let inst = EQ.Instance.of_spec spec in
  let schedule =
    match algo with
    | Wdeq -> fst (EQ.Wdeq.wdeq inst)
    | Deq -> fst (EQ.Wdeq.deq inst)
    | Greedy_smith -> EQ.Greedy.run inst (EQ.Orderings.smith inst)
    | Greedy_identity -> EQ.Greedy.run inst (EQ.Orderings.identity (Array.length inst.EQ.Types.tasks))
    | Optimal -> snd (EQ.Lp_schedule.optimal inst)
  in
  print_string (EQ.Schedule.to_string schedule);
  Printf.printf "objective (sum w.C) = %s\nmakespan = %s\nvalid = %b\n"
    (Q.to_string (EQ.Schedule.weighted_completion_time schedule))
    (Q.to_string (EQ.Schedule.makespan schedule))
    (EQ.Schedule.is_valid ~exact:true schedule)

let solve_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Instance file (Spec_io format).") in
  let algo =
    Arg.(value & opt algo_conv Wdeq & info [ "a"; "algo" ] ~docv:"ALGO" ~doc:"Algorithm: wdeq, deq, greedy-smith, greedy, optimal.")
  in
  let exact = Arg.(value & flag & info [ "exact" ] ~doc:"Use exact rational arithmetic.") in
  let run file algo exact =
    let spec = load_spec file in
    if exact then run_exact spec algo else run_float spec algo
  in
  Cmd.v (Cmd.info "solve" ~doc:"Schedule an instance and print the column schedule.")
    Term.(const run $ file $ algo $ exact)

(* ---------- experiment ---------- *)

let experiment_cmd =
  let exp_name =
    Arg.(value & pos 0 string "all" & info [] ~docv:"NAME"
           ~doc:(Printf.sprintf "Experiment id or 'all'. Ids: %s." (String.concat ", " Mwct_experiments.Experiments.names)))
  in
  let full = Arg.(value & flag & info [ "full" ] ~doc:"Paper-scale sample sizes (slow).") in
  let csv = Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of an aligned table.") in
  let run exp_name full csv =
    let scale = if full then Mwct_experiments.Experiments.Full else Mwct_experiments.Experiments.Quick in
    let emit table =
      if csv then print_string (Mwct_util.Tablefmt.to_csv table) else Mwct_util.Tablefmt.print table
    in
    if exp_name = "all" then
      if csv then
        List.iter
          (fun name ->
            match Mwct_experiments.Experiments.by_name name with
            | Some f ->
              Printf.printf "# %s\n" name;
              emit (f scale)
            | None -> ())
          Mwct_experiments.Experiments.names
      else Mwct_experiments.Experiments.run_all scale
    else begin
      match Mwct_experiments.Experiments.by_name exp_name with
      | Some f -> emit (f scale)
      | None ->
        Printf.eprintf "unknown experiment %S; known: %s\n" exp_name
          (String.concat ", " Mwct_experiments.Experiments.names);
        exit 2
    end
  in
  Cmd.v (Cmd.info "experiment" ~doc:"Regenerate one of the paper's experiments.")
    Term.(const run $ exp_name $ full $ csv)

(* ---------- gen ---------- *)

let gen_cmd =
  let kind =
    Arg.(value & opt (enum [ ("uniform", `U); ("unweighted", `Uw); ("wide", `W); ("unit", `Unit); ("mixed", `M) ]) `U
         & info [ "kind" ] ~docv:"KIND" ~doc:"Family: uniform, unweighted, wide, unit, mixed.")
  in
  let procs = Arg.(value & opt int 4 & info [ "procs" ] ~docv:"P" ~doc:"Processors.") in
  let tasks = Arg.(value & opt int 5 & info [ "tasks" ] ~docv:"N" ~doc:"Tasks.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.") in
  let run kind procs tasks seed =
    let rng = Rng.create seed in
    let spec =
      match kind with
      | `U -> G.uniform rng ~procs ~n:tasks ()
      | `Uw -> G.uniform_unweighted rng ~procs ~n:tasks ()
      | `W -> G.wide rng ~procs ~n:tasks ()
      | `Unit -> G.unit_tasks rng ~procs ~n:tasks ()
      | `M -> G.mixed rng ~procs ~n:tasks ()
    in
    print_string (Spec_io.to_string spec)
  in
  Cmd.v (Cmd.info "gen" ~doc:"Generate a random instance.") Term.(const run $ kind $ procs $ tasks $ seed)

(* ---------- bounds ---------- *)

let bounds_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Instance file.") in
  let run file =
    let spec = load_spec file in
    let inst = EF.Instance.of_spec spec in
    Printf.printf "squashed area A(I) = %.6f\n" (EF.Lower_bounds.squashed_area inst);
    Printf.printf "height bound H(I)  = %.6f\n" (EF.Lower_bounds.height_bound inst);
    Printf.printf "optimal makespan   = %.6f\n" (EF.Makespan.optimal inst);
    let n = Spec.num_tasks spec in
    if n <= 7 then begin
      let opt, _ = EF.Lp_schedule.optimal inst in
      Printf.printf "optimal sum w.C    = %.6f\n" opt
    end
    else Printf.printf "optimal sum w.C    = (skipped: %d tasks > enumeration guard)\n" n
  in
  Cmd.v (Cmd.info "bounds" ~doc:"Print lower bounds and the optimal makespan.") Term.(const run $ file)

(* ---------- render ---------- *)

let render_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Instance file.") in
  let algo =
    Arg.(value & opt algo_conv Optimal & info [ "a"; "algo" ] ~docv:"ALGO" ~doc:"Algorithm to schedule with.")
  in
  let svg = Arg.(value & opt (some string) None & info [ "svg" ] ~docv:"PATH" ~doc:"Also write an SVG Gantt chart (integerized schedule) to PATH.") in
  let run file algo svg =
    let spec = load_spec file in
    let inst = EF.Instance.of_spec spec in
    let schedule =
      match algo with
      | Wdeq -> fst (EF.Wdeq.wdeq inst)
      | Deq -> fst (EF.Wdeq.deq inst)
      | Greedy_smith -> EF.Greedy.run inst (EF.Orderings.smith inst)
      | Greedy_identity -> EF.Greedy.run inst (EF.Orderings.identity (Array.length inst.EF.Types.tasks))
      | Optimal -> snd (EF.Lp_schedule.optimal inst)
    in
    let normal = EF.Water_filling.normalize schedule in
    print_string (EF.Render.columns_to_ascii normal);
    let integer_schedule, _ = EF.Integerize.of_columns normal in
    let gantt = EF.Assignment.assign integer_schedule in
    print_newline ();
    print_string (EF.Render.gantt_to_ascii gantt);
    Printf.printf "objective = %.6f, preemptions = %d (3n = %d)\n"
      (EF.Schedule.weighted_completion_time normal)
      (EF.Assignment.preemptions gantt)
      (3 * Array.length inst.EF.Types.tasks);
    match svg with
    | None -> ()
    | Some path ->
      Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc (EF.Render.gantt_to_svg gantt));
      Printf.printf "SVG written to %s\n" path
  in
  Cmd.v (Cmd.info "render" ~doc:"Schedule an instance and render its Gantt chart (ASCII and optional SVG).")
    Term.(const run $ file $ algo $ svg)

(* ---------- simulate ---------- *)

let simulate_cmd =
  let module Sim = Mwct_ncv.Simulator.Float in
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Instance file.") in
  let policy =
    Arg.(value
         & opt (enum [ ("wdeq", Sim.P.Wdeq); ("deq", Sim.P.Deq); ("equi", Sim.P.Equi); ("priority", Sim.P.Priority_weight) ]) Sim.P.Wdeq
         & info [ "p"; "policy" ] ~docv:"POLICY" ~doc:"Policy: wdeq, deq, equi, priority.")
  in
  let releases =
    Arg.(value & opt (some string) None
         & info [ "releases" ] ~docv:"R1,R2,..." ~doc:"Comma-separated release dates (default: all 0).")
  in
  let run file policy releases =
    let spec = load_spec file in
    let inst = EF.Instance.of_spec spec in
    let n = Array.length inst.EF.Types.tasks in
    let releases =
      match releases with
      | None -> Array.make n 0.
      | Some s -> (
        let parts = String.split_on_char ',' s in
        match List.map float_of_string_opt parts with
        | exception _ -> Printf.eprintf "error: bad releases\n"; exit 2
        | floats ->
          if List.exists Option.is_none floats || List.length floats <> n then begin
            Printf.eprintf "error: --releases needs %d comma-separated numbers\n" n;
            exit 2
          end
          else Array.of_list (List.map Option.get floats))
    in
    let tr = Sim.run ~releases inst policy in
    List.iter
      (fun (t, e) ->
        match e with
        | Sim.Arrival i -> Printf.printf "%10.4f  arrival    T%d\n" t i
        | Sim.Completion i -> Printf.printf "%10.4f  completion T%d\n" t i)
      tr.Sim.events;
    Printf.printf "sum w.C      = %.6f\n" (Sim.weighted_completion_time tr);
    Printf.printf "sum w.(C-r)  = %.6f\n" (Sim.weighted_flow_time tr);
    Printf.printf "makespan     = %.6f\n" (Sim.makespan tr);
    match Sim.check tr with
    | Ok () -> print_endline "trace valid  = true"
    | Error e ->
      Printf.printf "trace valid  = FALSE (%s)\n" e;
      exit 1
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run a non-clairvoyant policy with optional task arrivals and print the event trace.")
    Term.(const run $ file $ policy $ releases)

let () =
  let doc = "malleable-task scheduling for weighted mean completion time (IPDPS 2012 reproduction)" in
  let info = Cmd.info "mwct" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info [ solve_cmd; experiment_cmd; gen_cmd; bounds_cmd; render_cmd; simulate_cmd ]))
