lib/workload/generator.ml: Array List Mwct_core Mwct_util Spec Stdlib
