lib/workload/generator.mli: Mwct_core Mwct_util Spec
