(** Random instance generators for the paper's experiment families.

    All generators emit {!Mwct_core.Spec.t} values whose rationals have
    power-of-two denominators, so instances convert {e exactly} to both
    the float and the rational engine (see DESIGN.md §7).

    The paper's Section V-A experiment draws uniform tasks with
    [δ_i < P], [w_i < 1], [V_i < 1] on a normalized platform; our
    [uniform] scales that platform to an integer [P] and draws integer
    [δ_i ∈ [1, P−1]] and dyadic weights/volumes in [(0, 1]]. *)

open Mwct_core

(** [uniform rng ~procs ~n] — the Section V-A family. [den] (default
    1024, a power of two) is the grain of volumes and weights. *)
val uniform : Mwct_util.Rng.t -> procs:int -> n:int -> ?den:int -> unit -> Spec.t

(** Same, with all weights 1 (the unweighted experiments). *)
val uniform_unweighted : Mwct_util.Rng.t -> procs:int -> n:int -> ?den:int -> unit -> Spec.t

(** Theorem 11 family: homogeneous weights and [δ_i > P/2]. *)
val wide : Mwct_util.Rng.t -> procs:int -> n:int -> ?den:int -> unit -> Spec.t

(** Conjecture 13 family projected to specs: [V = w = 1],
    [δ_i ∈ [⌈P/2⌉, P]]. *)
val unit_tasks : Mwct_util.Rng.t -> procs:int -> n:int -> unit -> Spec.t

(** Fractional deltas in [[1/2, 1]] (denominator [den], a power of two)
    for the Section V-B normalized problem ({!Mwct_core.Homogeneous}). *)
val homogeneous_deltas : Mwct_util.Rng.t -> n:int -> ?den:int -> unit -> Spec.rat array

(** Heterogeneous mix: a few wide heavy tasks and many narrow light
    ones — the shape of the Figure 1 bandwidth-sharing motivation. *)
val mixed : Mwct_util.Rng.t -> procs:int -> n:int -> ?den:int -> unit -> Spec.t

(** Due dates for lateness experiments: dyadic values in
    [(0, spread]]. *)
val due_dates : Mwct_util.Rng.t -> n:int -> spread:int -> ?den:int -> unit -> Spec.rat array

(** Heavy-tailed volumes: [V = 2^{-k}] with [k] geometric-ish in
    [[0, levels]], weights uniform dyadic — a Zipf-like load where a
    few tasks dominate the work. *)
val heavy_tailed : Mwct_util.Rng.t -> procs:int -> n:int -> ?levels:int -> ?den:int -> unit -> Spec.t

(** Bimodal: half "mice" (tiny volume, narrow), half "elephants"
    (large volume, wide) — the classic stress shape for fair-sharing
    policies. *)
val bimodal : Mwct_util.Rng.t -> procs:int -> n:int -> ?den:int -> unit -> Spec.t
