open Mwct_core
module Rng = Mwct_util.Rng

let check_pow2 den = if den <= 0 || den land (den - 1) <> 0 then invalid_arg "Generator: den must be a power of two"

let dyadic rng den = Spec.rat (Rng.dyadic rng ~den) den

let uniform rng ~procs ~n ?(den = 1024) () =
  check_pow2 den;
  if procs < 2 then invalid_arg "Generator.uniform: needs procs >= 2 so that delta < P is non-empty";
  let task _ =
    Spec.task ~volume:(dyadic rng den) ~weight:(dyadic rng den) ~delta:(Rng.int_in rng 1 (procs - 1)) ()
  in
  Spec.make ~procs (List.init n task)

let uniform_unweighted rng ~procs ~n ?(den = 1024) () =
  check_pow2 den;
  if procs < 2 then invalid_arg "Generator.uniform_unweighted: needs procs >= 2";
  let task _ = Spec.task ~volume:(dyadic rng den) ~delta:(Rng.int_in rng 1 (procs - 1)) () in
  Spec.make ~procs (List.init n task)

let wide rng ~procs ~n ?(den = 1024) () =
  check_pow2 den;
  let lo = (procs / 2) + 1 in
  (* smallest integer > P/2 *)
  let task _ = Spec.task ~volume:(dyadic rng den) ~delta:(Rng.int_in rng lo procs) () in
  Spec.make ~procs (List.init n task)

let unit_tasks rng ~procs ~n () =
  let lo = (procs + 1) / 2 in
  (* smallest integer >= P/2 *)
  let task _ = Spec.task ~volume:(Spec.rat_of_int 1) ~delta:(Rng.int_in rng lo procs) () in
  Spec.make ~procs (List.init n task)

let homogeneous_deltas rng ~n ?(den = 1024) () =
  check_pow2 den;
  Array.init n (fun _ ->
      (* numerator uniform in [den/2, den] -> delta in [1/2, 1]. *)
      Spec.rat (Rng.int_in rng (den / 2) den) den)

let mixed rng ~procs ~n ?(den = 1024) () =
  check_pow2 den;
  let task k =
    if k mod 4 = 0 then
      (* wide, heavy *)
      Spec.task
        ~volume:(Spec.rat (den + Rng.dyadic rng ~den) den) (* in (1, 2] *)
        ~weight:(dyadic rng den)
        ~delta:(Stdlib.max 1 (procs - Rng.int rng (Stdlib.max 1 (procs / 4))))
        ()
    else
      (* narrow, light *)
      Spec.task ~volume:(dyadic rng den) ~weight:(dyadic rng den)
        ~delta:(Rng.int_in rng 1 (Stdlib.max 1 (procs / 4)))
        ()
  in
  Spec.make ~procs (List.init n task)

let due_dates rng ~n ~spread ?(den = 64) () =
  check_pow2 den;
  Array.init n (fun _ -> Spec.rat (Rng.dyadic rng ~den:(spread * den)) den)

let heavy_tailed rng ~procs ~n ?(levels = 6) ?(den = 1024) () =
  check_pow2 den;
  if procs < 2 then invalid_arg "Generator.heavy_tailed: needs procs >= 2";
  let task _ =
    (* Geometric level: each level halves the volume; level 0 has
       probability 1/2, level 1 probability 1/4, ... *)
    let rec level k = if k >= levels || Rng.bool rng then k else level (k + 1) in
    let k = level 0 in
    Spec.task
      ~volume:(Spec.rat 1 (1 lsl k))
      ~weight:(dyadic rng den)
      ~delta:(Rng.int_in rng 1 (procs - 1))
      ()
  in
  Spec.make ~procs (List.init n task)

let bimodal rng ~procs ~n ?(den = 1024) () =
  check_pow2 den;
  if procs < 2 then invalid_arg "Generator.bimodal: needs procs >= 2";
  let task k =
    if k land 1 = 0 then
      (* mouse: tiny and narrow *)
      Spec.task ~volume:(Spec.rat (Rng.dyadic rng ~den:(den / 8)) den) ~weight:(dyadic rng den) ~delta:1 ()
    else
      (* elephant: heavy and wide *)
      Spec.task
        ~volume:(Spec.rat (den + Rng.dyadic rng ~den:(2 * den)) den)
        ~weight:(dyadic rng den)
        ~delta:(Stdlib.max 1 (procs - 1))
        ()
  in
  Spec.make ~procs (List.init n task)
