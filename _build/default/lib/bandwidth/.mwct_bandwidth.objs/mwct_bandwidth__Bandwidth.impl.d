lib/bandwidth/bandwidth.ml: Array Mwct_core Mwct_field Mwct_rational
