lib/bandwidth/bandwidth.mli: Mwct_core Mwct_field Mwct_rational
