(** The Figure-1 application: bandwidth sharing in a master–worker
    platform. A server of outgoing capacity [P] distributes codes
    ([V_i]) to workers with incoming bandwidths [δ_i]; worker [i]
    processes tasks at rate [w_i] from its completion [C_i] to the
    horizon [T]. Maximizing [Σ w_i (T − C_i)⁺] is minimizing
    [Σ w_i C_i] — the paper's motivating reduction. *)

module Make (F : Mwct_field.Field.S) : sig
  module E : module type of Mwct_core.Engine.Make (F)

  type worker = { code_size : F.t; bandwidth : F.t; rate : F.t }
  type scenario = { server_capacity : F.t; horizon : F.t; workers : worker array }

  (** The malleable-transfer instance of a scenario
      ([V] = code, [δ] = bandwidth, [w] = rate). *)
  val to_instance : scenario -> E.Types.instance

  (** [Σ w_i (T − C_i)⁺] for given completion times. *)
  val tasks_processed : scenario -> F.t array -> F.t

  (** [tasks_processed − (W·T − Σ w_i C_i)]; zero whenever every
      completion is before the horizon (raises otherwise). *)
  val equivalence_gap : scenario -> F.t array -> F.t

  (** [Fifo] — one transfer at a time at full link speed;
      [Equal_split] — static [P/n] shares; [Smith_greedy] — Algorithm
      Greedy on Smith's order; [Wdeq] — the paper's non-clairvoyant
      policy. *)
  type policy = Fifo | Equal_split | Smith_greedy | Wdeq

  val policy_name : policy -> string

  (** Completion times of all transfers under a policy. *)
  val completions : scenario -> policy -> F.t array

  (** Tasks processed by the horizon under a policy. *)
  val throughput : scenario -> policy -> F.t
end

module Float : module type of Make (Mwct_field.Field.Float_field)
module Exact : module type of Make (Mwct_rational.Rational.Rat_field)
