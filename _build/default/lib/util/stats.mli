(** Small descriptive-statistics helpers for experiment reporting. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

(** [summarize xs] computes the summary of a non-empty list of samples.
    Raises [Invalid_argument] on an empty list. *)
val summarize : float list -> summary

(** [mean xs] of a non-empty list. *)
val mean : float list -> float

(** [quantile q xs] with [q] in [[0, 1]], by linear interpolation on the
    sorted samples. *)
val quantile : float -> float list -> float

(** [pp_summary fmt s] prints a one-line human-readable summary. *)
val pp_summary : Format.formatter -> summary -> unit
