(** Plain-text table rendering for experiment reports.

    Every experiment regenerated from the paper prints its rows through
    this module so that bench output is uniform and diffable. *)

type align = Left | Right

type t

(** [create ~title headers] starts a table. All rows must have the same
    width as [headers]. *)
val create : ?title:string -> string list -> t

(** Set per-column alignment (default all [Left]). Length must match the
    header width. *)
val set_align : t -> align list -> unit

(** Append one row of cells. *)
val add_row : t -> string list -> unit

(** Render the full table, with column widths fitted to contents. *)
val render : t -> string

(** Render as RFC-4180-ish CSV (quoting cells containing commas,
    quotes or newlines). The title is not included. *)
val to_csv : t -> string

(** [print t] renders to stdout followed by a blank line. *)
val print : t -> unit
