lib/util/rng.mli:
