lib/util/tablefmt.mli:
