lib/util/tablefmt.ml: Buffer List Stdlib String
