type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }
let copy t = { state = t.state }

let next64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = next64 t }
(* OCaml's native int has 63 bits; keep 62 so the result is non-negative. *)
let bits t = Int64.to_int (Int64.shift_right_logical (next64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let rec go () =
    let r = bits t in
    let v = r mod bound in
    if r - v > max_int - bound + 1 then go () else v
  in
  go ()

let int_in t lo hi =
  if lo > hi then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53-bit draw mapped to [0, 1), then scaled. *)
  let r = Int64.to_int (Int64.shift_right_logical (next64 t) 11) in
  bound *. (float_of_int r /. 9007199254740992.)

let bool t = Int64.logand (next64 t) 1L = 1L
let dyadic t ~den = 1 + int t den

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
