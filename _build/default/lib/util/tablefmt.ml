type align = Left | Right

type t = {
  title : string option;
  headers : string list;
  mutable align : align list;
  mutable rows : string list list; (* reversed *)
}

let create ?title headers = { title; headers; align = List.map (fun _ -> Left) headers; rows = [] }

let set_align t aligns =
  if List.length aligns <> List.length t.headers then invalid_arg "Tablefmt.set_align: width mismatch";
  t.align <- aligns

let add_row t row =
  if List.length row <> List.length t.headers then invalid_arg "Tablefmt.add_row: width mismatch";
  t.rows <- row :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render t =
  let rows = List.rev t.rows in
  let widths =
    List.fold_left
      (fun ws row -> List.map2 (fun w cell -> Stdlib.max w (String.length cell)) ws row)
      (List.map String.length t.headers)
      rows
  in
  let buf = Buffer.create 1024 in
  (match t.title with
  | Some title ->
    Buffer.add_string buf ("== " ^ title ^ " ==");
    Buffer.add_char buf '\n'
  | None -> ());
  let render_row cells =
    let padded = List.map2 (fun (w, a) c -> pad a w c) (List.combine widths t.align) cells in
    Buffer.add_string buf ("| " ^ String.concat " | " padded ^ " |");
    Buffer.add_char buf '\n'
  in
  render_row t.headers;
  let sep = List.map (fun w -> String.make w '-') widths in
  Buffer.add_string buf ("|-" ^ String.concat "-|-" sep ^ "-|");
  Buffer.add_char buf '\n';
  List.iter render_row rows;
  Buffer.contents buf

let csv_cell c =
  let needs_quoting = String.exists (fun ch -> ch = ',' || ch = '"' || ch = '\n') c in
  if not needs_quoting then c
  else begin
    let buf = Buffer.create (String.length c + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun ch ->
        if ch = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf ch)
      c;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let to_csv t =
  let buf = Buffer.create 512 in
  let row cells =
    Buffer.add_string buf (String.concat "," (List.map csv_cell cells));
    Buffer.add_char buf '\n'
  in
  row t.headers;
  List.iter row (List.rev t.rows);
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()
