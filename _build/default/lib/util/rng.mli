(** Deterministic pseudo-random number generator (SplitMix64).

    Experiments must be reproducible across runs and platforms, so the
    library does not use [Stdlib.Random]. SplitMix64 passes BigCrush and
    has a trivially splittable state, which makes per-experiment
    independent streams easy. *)

type t

(** [create seed] is a fresh generator. Equal seeds yield equal
    streams. *)
val create : int -> t

(** [copy t] is an independent generator with the same state. *)
val copy : t -> t

(** [split t] advances [t] and returns a statistically independent
    generator, for nested experiments. *)
val split : t -> t

(** Next raw 64-bit value (as an OCaml [int], so 63 significant bits). *)
val bits : t -> int

(** [int t bound] is uniform in [[0, bound-1]]. [bound] must be
    positive. *)
val int : t -> int -> int

(** [int_in t lo hi] is uniform in [[lo, hi]] inclusive. *)
val int_in : t -> int -> int -> int

(** [float t bound] is uniform in [[0, bound)]. *)
val float : t -> float -> float

(** [bool t] is a fair coin. *)
val bool : t -> bool

(** [dyadic t ~den] is a uniform numerator in [[1, den]]: the rational
    [k/den] in [(0, 1]]. Meant to be used with [den] a power of two so
    the value is exact in both the float and rational engines. *)
val dyadic : t -> den:int -> int

(** [shuffle t a] shuffles [a] in place (Fisher–Yates). *)
val shuffle : t -> 'a array -> unit
