type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let mean xs =
  match xs with
  | [] -> invalid_arg "Stats.mean: empty"
  | _ ->
    let n = List.length xs in
    List.fold_left ( +. ) 0. xs /. float_of_int n

let quantile q xs =
  match xs with
  | [] -> invalid_arg "Stats.quantile: empty"
  | _ ->
    if q < 0. || q > 1. then invalid_arg "Stats.quantile: q out of range";
    let a = Array.of_list xs in
    Array.sort Float.compare a;
    let n = Array.length a in
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = int_of_float (Float.ceil pos) in
    if lo = hi then a.(lo)
    else begin
      let frac = pos -. float_of_int lo in
      (a.(lo) *. (1. -. frac)) +. (a.(hi) *. frac)
    end

let summarize xs =
  match xs with
  | [] -> invalid_arg "Stats.summarize: empty"
  | _ ->
    let n = List.length xs in
    let m = mean xs in
    let var = List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs /. float_of_int n in
    {
      count = n;
      mean = m;
      stddev = sqrt var;
      min = List.fold_left Float.min infinity xs;
      max = List.fold_left Float.max neg_infinity xs;
      p50 = quantile 0.5 xs;
      p90 = quantile 0.9 xs;
      p99 = quantile 0.99 xs;
    }

let pp_summary fmt s =
  Format.fprintf fmt "n=%d mean=%.6g sd=%.3g min=%.6g p50=%.6g p90=%.6g p99=%.6g max=%.6g"
    s.count s.mean s.stddev s.min s.p50 s.p90 s.p99 s.max
