lib/bigint/bigint.ml: Format Nat Stdlib String
