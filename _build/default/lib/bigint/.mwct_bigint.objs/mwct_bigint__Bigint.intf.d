lib/bigint/bigint.mli: Format Nat
