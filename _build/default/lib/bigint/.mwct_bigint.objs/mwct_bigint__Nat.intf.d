lib/bigint/nat.mli: Format
