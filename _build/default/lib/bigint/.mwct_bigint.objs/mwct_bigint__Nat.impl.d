lib/bigint/nat.ml: Array Buffer Char Format List Printf Stdlib String
