(** Arbitrary-precision natural numbers.

    Little-endian limb arrays in base [2^30], canonical form (no trailing
    zero limb; zero is the empty array). This is the workhorse under
    {!Bigint} and {!Mwct_rational.Rational}; it exists because [zarith]
    is not available in the build environment (see DESIGN.md §6).

    All values are immutable; functions never mutate their arguments. *)

type t

val zero : t
val one : t
val two : t
val ten : t

(** [of_int n] for [n >= 0]. Raises [Invalid_argument] on negatives. *)
val of_int : int -> t

(** [to_int t] if it fits in an OCaml [int]. *)
val to_int : t -> int option

val is_zero : t -> bool

(** Number of significant bits; [num_bits zero = 0]. *)
val num_bits : t -> int

val compare : t -> t -> int
val equal : t -> t -> bool

val add : t -> t -> t

(** [sub a b] requires [a >= b]; raises [Invalid_argument] otherwise. *)
val sub : t -> t -> t

(** Product; switches from schoolbook to Karatsuba above ~6k bits (the measured crossover). *)
val mul : t -> t -> t

(** Schoolbook multiplication, exposed for cross-checking Karatsuba in
    tests and benches. *)
val mul_schoolbook : t -> t -> t

(** [divmod a b] is [(a / b, a mod b)] with Euclidean semantics.
    Raises [Division_by_zero] when [b] is zero. *)
val divmod : t -> t -> t * t

val div : t -> t -> t
val rem : t -> t -> t

(** Greatest common divisor; [gcd zero x = x]. *)
val gcd : t -> t -> t

(** [shift_left t k] is [t * 2^k]; [k >= 0]. *)
val shift_left : t -> int -> t

(** [shift_right t k] is [t / 2^k]; [k >= 0]. *)
val shift_right : t -> int -> t

(** [mul_int t k] with [0 <= k < 2^30]. *)
val mul_int : t -> int -> t

(** [add_int t k] with [0 <= k < 2^30]. *)
val add_int : t -> int -> t

(** [divmod_int t k] with [0 < k < 2^30]; the remainder is an [int]. *)
val divmod_int : t -> int -> t * int

(** [pow b e] is [b^e] for [e >= 0]. *)
val pow : t -> int -> t

(** Decimal parsing. Raises [Invalid_argument] on malformed input. *)
val of_string : string -> t

(** Decimal rendering. *)
val to_string : t -> string

val to_float : t -> float
val pp : Format.formatter -> t -> unit

(** Fowler–Noll–Vo style hash, suitable for [Hashtbl]. *)
val hash : t -> int
