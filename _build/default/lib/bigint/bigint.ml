type t = { sign : int; mag : Nat.t }

let make ~sign mag = if Nat.is_zero mag then { sign = 0; mag = Nat.zero } else { sign = (if sign < 0 then -1 else 1); mag }
let zero = { sign = 0; mag = Nat.zero }
let one = { sign = 1; mag = Nat.one }
let minus_one = { sign = -1; mag = Nat.one }
let of_nat n = make ~sign:1 n

let of_int n =
  if n = 0 then zero
  else if n > 0 then { sign = 1; mag = Nat.of_int n }
  else if n = min_int then
    (* -min_int overflows; build from magnitude via Nat arithmetic. *)
    { sign = -1; mag = Nat.add (Nat.of_int max_int) Nat.one }
  else { sign = -1; mag = Nat.of_int (-n) }

let to_int t =
  match Nat.to_int t.mag with
  | Some m -> Some (t.sign * m)
  | None ->
    (* min_int's magnitude is 2^62, one past what Nat.to_int accepts. *)
    if t.sign < 0 && Nat.equal t.mag (Nat.shift_left Nat.one 62) then Some min_int else None

let sign t = t.sign
let mag t = t.mag
let is_zero t = t.sign = 0

let compare a b =
  if a.sign <> b.sign then Stdlib.compare a.sign b.sign
  else if a.sign >= 0 then Nat.compare a.mag b.mag
  else Nat.compare b.mag a.mag

let equal a b = compare a b = 0
let neg t = { t with sign = -t.sign }
let abs t = { t with sign = Stdlib.abs t.sign }

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then { a with mag = Nat.add a.mag b.mag }
  else begin
    let c = Nat.compare a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then { sign = a.sign; mag = Nat.sub a.mag b.mag }
    else { sign = b.sign; mag = Nat.sub b.mag a.mag }
  end

let sub a b = add a (neg b)
let mul a b = if a.sign = 0 || b.sign = 0 then zero else { sign = a.sign * b.sign; mag = Nat.mul a.mag b.mag }

let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  let q, r = Nat.divmod a.mag b.mag in
  (make ~sign:(a.sign * b.sign) q, make ~sign:a.sign r)

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)
let gcd a b = of_nat (Nat.gcd a.mag b.mag)

let mul_int a k =
  if k = 0 || a.sign = 0 then zero
  else begin
    let ak = Stdlib.abs k in
    let mag = if ak < 1 lsl 30 then Nat.mul_int a.mag ak else Nat.mul a.mag (Nat.of_int ak) in
    { sign = (if k > 0 then a.sign else -a.sign); mag }
  end

let pow b e =
  if e < 0 then invalid_arg "Bigint.pow: negative exponent";
  let s = if b.sign < 0 && e land 1 = 1 then -1 else 1 in
  make ~sign:s (Nat.pow b.mag e)

let of_string s =
  let n = String.length s in
  if n = 0 then invalid_arg "Bigint.of_string: empty";
  if s.[0] = '-' then make ~sign:(-1) (Nat.of_string (String.sub s 1 (n - 1)))
  else if s.[0] = '+' then of_nat (Nat.of_string (String.sub s 1 (n - 1)))
  else of_nat (Nat.of_string s)

let to_string t = if t.sign < 0 then "-" ^ Nat.to_string t.mag else Nat.to_string t.mag
let to_float t = float_of_int t.sign *. Nat.to_float t.mag
let pp fmt t = Format.pp_print_string fmt (to_string t)
let hash t = (Nat.hash t.mag * 3) + t.sign + 1
