(** Arbitrary-precision signed integers, built on {!Nat}.

    Canonical form: zero has sign [0]; non-zero values have sign [-1] or
    [+1] and a non-zero magnitude. *)

type t

val zero : t
val one : t
val minus_one : t

val of_int : int -> t

(** [to_int t] if the value fits in an OCaml [int]. *)
val to_int : t -> int option

(** [of_nat n] embeds a natural number. *)
val of_nat : Nat.t -> t

(** [make ~sign mag] builds a canonical value; [sign] is clamped to the
    sign of the result ([0] when [mag] is zero). *)
val make : sign:int -> Nat.t -> t

(** Sign in [{-1, 0, 1}]. *)
val sign : t -> int

(** Magnitude as a natural number. *)
val mag : t -> Nat.t

val is_zero : t -> bool
val compare : t -> t -> int
val equal : t -> t -> bool
val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** Truncated division (rounds toward zero), like OCaml's [/] and
    [mod]: [a = (div a b) * b + rem a b] and [sign (rem a b) = sign a].
    Raises [Division_by_zero]. *)
val divmod : t -> t -> t * t

val div : t -> t -> t
val rem : t -> t -> t

(** Non-negative gcd of the magnitudes. *)
val gcd : t -> t -> t

val mul_int : t -> int -> t
val pow : t -> int -> t
val of_string : string -> t
val to_string : t -> string
val to_float : t -> float
val pp : Format.formatter -> t -> unit
val hash : t -> int
