(* Little-endian limbs, base 2^30, canonical (no trailing zero limb). *)

type t = int array

let base_bits = 30
let base = 1 lsl base_bits
let mask = base - 1
let zero : t = [||]

(* Strip trailing (most significant) zero limbs. *)
let normalize (a : int array) : t =
  let n = Array.length a in
  let rec top i = if i >= 0 && a.(i) = 0 then top (i - 1) else i in
  let hi = top (n - 1) in
  if hi = n - 1 then a else Array.sub a 0 (hi + 1)

let is_zero a = Array.length a = 0

let of_int n =
  if n < 0 then invalid_arg "Nat.of_int: negative";
  if n = 0 then zero
  else begin
    let rec count acc n = if n = 0 then acc else count (acc + 1) (n lsr base_bits) in
    let len = count 0 n in
    let a = Array.make len 0 in
    let rec fill i n =
      if n <> 0 then begin
        a.(i) <- n land mask;
        fill (i + 1) (n lsr base_bits)
      end
    in
    fill 0 n;
    a
  end

let one = of_int 1
let two = of_int 2
let ten = of_int 10

let num_bits a =
  let n = Array.length a in
  if n = 0 then 0
  else begin
    let top = a.(n - 1) in
    let rec width acc v = if v = 0 then acc else width (acc + 1) (v lsr 1) in
    ((n - 1) * base_bits) + width 0 top
  end

let to_int a =
  if num_bits a > 62 then None
  else begin
    let r = ref 0 in
    for i = Array.length a - 1 downto 0 do
      r := (!r lsl base_bits) lor a.(i)
    done;
    Some !r
  end

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let equal a b = compare a b = 0

let add a b =
  let la = Array.length a and lb = Array.length b in
  let lr = (if la > lb then la else lb) + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land mask;
    carry := s lsr base_bits
  done;
  normalize r

let sub a b =
  if compare a b < 0 then invalid_arg "Nat.sub: would be negative";
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let s = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    r.(i) <- s land mask;
    borrow := if s < 0 then 1 else 0
  done;
  normalize r

let mul_schoolbook a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      if ai <> 0 then begin
        for j = 0 to lb - 1 do
          (* ai*bj <= (2^30-1)^2 < 2^60; adding limb + carry stays < 2^62. *)
          let tmp = (ai * b.(j)) + r.(i + j) + !carry in
          r.(i + j) <- tmp land mask;
          carry := tmp lsr base_bits
        done;
        r.(i + lb) <- r.(i + lb) + !carry
      end
    done;
    normalize r
  end

(* Karatsuba above this limb count (~5700 bits, the measured crossover region); schoolbook below. *)
let karatsuba_threshold = 192

(* Split into (low k limbs, rest). *)
let split a k =
  let la = Array.length a in
  if la <= k then (a, zero)
  else (normalize (Array.sub a 0 k), Array.sub a k (la - k))

let shift_limbs a k =
  if is_zero a then zero
  else begin
    let la = Array.length a in
    let r = Array.make (la + k) 0 in
    Array.blit a 0 r k la;
    r
  end

let rec mul a b =
  let la = Array.length a and lb = Array.length b in
  if Stdlib.min la lb < karatsuba_threshold then mul_schoolbook a b
  else begin
    (* Karatsuba: a = a1·B^k + a0, b = b1·B^k + b0,
       a·b = z2·B^2k + z1·B^k + z0 with z1 = (a0+a1)(b0+b1) − z0 − z2. *)
    let k = Stdlib.max la lb / 2 in
    let a0, a1 = split a k and b0, b1 = split b k in
    let z0 = mul a0 b0 in
    let z2 = mul a1 b1 in
    let z1 = sub (mul (add a0 a1) (add b0 b1)) (add z0 z2) in
    add (add z0 (shift_limbs z1 k)) (shift_limbs z2 (2 * k))
  end

let mul_int a k =
  if k < 0 || k >= base then invalid_arg "Nat.mul_int: limb out of range";
  if k = 0 || is_zero a then zero
  else begin
    let la = Array.length a in
    let r = Array.make (la + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let tmp = (a.(i) * k) + !carry in
      r.(i) <- tmp land mask;
      carry := tmp lsr base_bits
    done;
    r.(la) <- !carry;
    normalize r
  end

let add_int a k =
  if k < 0 || k >= base then invalid_arg "Nat.add_int: limb out of range";
  add a (of_int k)

let shift_left a k =
  if k < 0 then invalid_arg "Nat.shift_left: negative";
  if is_zero a || k = 0 then a
  else begin
    let limbs = k / base_bits and bits = k mod base_bits in
    let la = Array.length a in
    let r = Array.make (la + limbs + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let v = (a.(i) lsl bits) lor !carry in
      r.(i + limbs) <- v land mask;
      carry := v lsr base_bits
    done;
    r.(la + limbs) <- !carry;
    normalize r
  end

let shift_right a k =
  if k < 0 then invalid_arg "Nat.shift_right: negative";
  if is_zero a || k = 0 then a
  else begin
    let limbs = k / base_bits and bits = k mod base_bits in
    let la = Array.length a in
    if limbs >= la then zero
    else begin
      let lr = la - limbs in
      let r = Array.make lr 0 in
      for i = 0 to lr - 1 do
        let lo = a.(i + limbs) lsr bits in
        let hi = if i + limbs + 1 < la && bits > 0 then (a.(i + limbs + 1) lsl (base_bits - bits)) land mask else 0 in
        r.(i) <- lo lor hi
      done;
      normalize r
    end
  end

let divmod_int a k =
  if k <= 0 || k >= base then invalid_arg "Nat.divmod_int: divisor out of range";
  let la = Array.length a in
  let q = Array.make la 0 in
  let rem = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!rem lsl base_bits) lor a.(i) in
    q.(i) <- cur / k;
    rem := cur mod k
  done;
  (normalize q, !rem)

(* Knuth TAOCP vol. 2, Algorithm 4.3.1 D. *)
let divmod_big u v =
  let n = Array.length v in
  (* Normalize so the top limb of v has its high bit set. *)
  let shift =
    let rec go s top = if top land (1 lsl (base_bits - 1)) <> 0 then s else go (s + 1) (top lsl 1) in
    go 0 v.(n - 1)
  in
  let u' = shift_left u shift in
  let v' = shift_left v shift in
  let m = Array.length u' - n in
  if m < 0 then (zero, u)
  else begin
    (* Working copy of u' with one extra top limb. *)
    let w = Array.make (Array.length u' + 1) 0 in
    Array.blit u' 0 w 0 (Array.length u');
    let q = Array.make (m + 1) 0 in
    let vtop = v'.(n - 1) in
    let vsec = if n >= 2 then v'.(n - 2) else 0 in
    for j = m downto 0 do
      (* Estimate the quotient digit. *)
      let num = (w.(j + n) lsl base_bits) lor w.(j + n - 1) in
      let qhat = ref (num / vtop) in
      let rhat = ref (num mod vtop) in
      if !qhat >= base then begin
        qhat := base - 1;
        rhat := num - (!qhat * vtop)
      end;
      let continue = ref true in
      while !continue && !rhat < base do
        let lhs = !qhat * vsec in
        let rhs = (!rhat lsl base_bits) lor (if j + n - 2 >= 0 then w.(j + n - 2) else 0) in
        if lhs > rhs then begin
          decr qhat;
          rhat := !rhat + vtop
        end
        else continue := false
      done;
      (* Multiply-subtract w[j..j+n] -= qhat * v'. *)
      let borrow = ref 0 in
      let carry = ref 0 in
      for i = 0 to n - 1 do
        let p = (!qhat * v'.(i)) + !carry in
        carry := p lsr base_bits;
        let s = w.(i + j) - (p land mask) - !borrow in
        w.(i + j) <- s land mask;
        borrow := if s < 0 then 1 else 0
      done;
      let s = w.(j + n) - !carry - !borrow in
      w.(j + n) <- s land mask;
      if s < 0 then begin
        (* qhat was one too large: add v' back. *)
        decr qhat;
        let carry = ref 0 in
        for i = 0 to n - 1 do
          let t = w.(i + j) + v'.(i) + !carry in
          w.(i + j) <- t land mask;
          carry := t lsr base_bits
        done;
        w.(j + n) <- (w.(j + n) + !carry) land mask
      end;
      q.(j) <- !qhat
    done;
    let r = normalize (Array.sub w 0 n) in
    (normalize q, shift_right r shift)
  end

let divmod a b =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else if Array.length b = 1 then begin
    let q, r = divmod_int a b.(0) in
    (q, of_int r)
  end
  else divmod_big a b

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let rec gcd a b = if is_zero b then a else gcd b (rem a b)

let pow b e =
  if e < 0 then invalid_arg "Nat.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else begin
      let acc = if e land 1 = 1 then mul acc b else acc in
      go acc (mul b b) (e lsr 1)
    end
  in
  go one b e

let of_string s =
  if String.length s = 0 then invalid_arg "Nat.of_string: empty";
  let acc = ref zero in
  String.iter
    (fun c ->
      if c < '0' || c > '9' then invalid_arg "Nat.of_string: not a digit";
      acc := add_int (mul_int !acc 10) (Char.code c - Char.code '0'))
    s;
  !acc

let to_string a =
  if is_zero a then "0"
  else begin
    let chunks = ref [] in
    let cur = ref a in
    while not (is_zero !cur) do
      let q, r = divmod_int !cur 1_000_000_000 in
      chunks := r :: !chunks;
      cur := q
    done;
    match !chunks with
    | [] -> "0"
    | first :: rest ->
      let buf = Buffer.create 16 in
      Buffer.add_string buf (string_of_int first);
      List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest;
      Buffer.contents buf
  end

let to_float a =
  let la = Array.length a in
  if la = 0 then 0.
  else begin
    (* Use the top 3 limbs (90 bits) for the mantissa, scale the rest. *)
    let hi = Stdlib.min la 3 in
    let v = ref 0. in
    for i = la - 1 downto la - hi do
      v := (!v *. float_of_int base) +. float_of_int a.(i)
    done;
    let exp = (la - hi) * base_bits in
    !v *. (2. ** float_of_int exp)
  end

let pp fmt a = Format.pp_print_string fmt (to_string a)

let hash a =
  Array.fold_left (fun acc limb -> (acc * 16777619) lxor limb) 2166136261 a land max_int
