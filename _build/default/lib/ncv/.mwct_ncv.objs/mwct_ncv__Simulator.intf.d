lib/ncv/simulator.mli: Mwct_core Mwct_field Mwct_rational Policy
