lib/ncv/simulator.ml: Array List Mwct_core Mwct_field Mwct_rational Policy Printf
