lib/ncv/policy.mli: Mwct_field
