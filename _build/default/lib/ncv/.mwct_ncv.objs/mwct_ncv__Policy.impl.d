lib/ncv/policy.ml: List Mwct_field Stdlib
