(** Non-clairvoyant allocation policies.

    A policy sees only what a real runtime would see: the set of
    currently-alive tasks with their weights and caps — never the
    remaining volumes. It returns a share (a fractional processor
    count) per alive task; the simulator guarantees the shares are
    clipped to the caps and to the total capacity before use, so a
    policy returning slightly-infeasible shares is still safe.

    [Wdeq] is Algorithm 1 of the paper; [Deq] its unweighted special
    case; [Equi] ignores caps in the fair share (then gets clipped) —
    the classical equipartition; [Priority_weight] gives everything to
    the heaviest alive tasks first (a greedy non-clairvoyant
    heuristic). *)

module Make (F : Mwct_field.Field.S) = struct
  (** What a policy may observe about one alive task. *)
  type view = { id : int; weight : F.t; cap : F.t }

  type t = Wdeq | Deq | Equi | Priority_weight

  let name = function
    | Wdeq -> "wdeq"
    | Deq -> "deq"
    | Equi -> "equi"
    | Priority_weight -> "priority-weight"

  let all = [ Wdeq; Deq; Equi; Priority_weight ]

  (* Weighted water-filling fixpoint (Algorithm 1): saturate tasks whose
     proportional share exceeds their cap, redistribute, repeat. *)
  let rec wdeq_shares remaining_p remaining_w saturated = function
    | [] -> saturated
    | unsat ->
      let violating, rest =
        List.partition (fun v -> F.compare (F.mul v.cap remaining_w) (F.mul v.weight remaining_p) < 0) unsat
      in
      (match violating with
      | [] ->
        saturated
        @ List.map
            (fun v ->
              (v.id, if F.sign remaining_w > 0 then F.div (F.mul v.weight remaining_p) remaining_w else F.zero))
            rest
      | _ ->
        let p' = List.fold_left (fun acc v -> F.sub acc v.cap) remaining_p violating in
        let w' = List.fold_left (fun acc v -> F.sub acc v.weight) remaining_w violating in
        wdeq_shares p' w' (List.map (fun v -> (v.id, v.cap)) violating @ saturated) rest)

  (** [shares policy ~capacity views] — the allocation for this
      instant. Always returns every alive id exactly once, with
      non-negative shares summing to at most [capacity]. *)
  let shares (policy : t) ~(capacity : F.t) (views : view list) : (int * F.t) list =
    match views with
    | [] -> []
    | _ -> (
      match policy with
      | Wdeq ->
        let w0 = List.fold_left (fun acc v -> F.add acc v.weight) F.zero views in
        wdeq_shares capacity w0 [] views
      | Deq ->
        let unw = List.map (fun v -> { v with weight = F.one }) views in
        let w0 = F.of_int (List.length views) in
        wdeq_shares capacity w0 [] unw
      | Equi ->
        (* Plain 1/n share clipped to the cap; surplus is wasted (the
           point of comparing against DEQ). *)
        let fair = F.div capacity (F.of_int (List.length views)) in
        List.map (fun v -> (v.id, F.min fair v.cap)) views
      | Priority_weight ->
        (* Heaviest first, each up to its cap, until capacity runs out. *)
        let sorted =
          List.sort (fun a b ->
              let c = F.compare b.weight a.weight in
              if c <> 0 then c else Stdlib.compare a.id b.id)
            views
        in
        let remaining = ref capacity in
        List.map
          (fun v ->
            let give = F.min v.cap !remaining in
            let give = F.max F.zero give in
            remaining := F.sub !remaining give;
            (v.id, give))
          sorted)
end
