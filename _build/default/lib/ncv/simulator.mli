(** Event-driven non-clairvoyant simulator with task arrivals.

    Generalizes the core WDEQ simulation: tasks arrive at release
    dates; shares are recomputed at every arrival and completion.
    Policies never see volumes (the simulator uses them only to locate
    completion events), preserving non-clairvoyance. *)

module Make (F : Mwct_field.Field.S) : sig
  module T : module type of Mwct_core.Types.Make (F)
  module P : module type of Policy.Make (F)

  type event = Arrival of int | Completion of int

  type record = {
    release : F.t;
    completion : F.t;
    segments : (F.t * F.t * F.t) list;
        (** chronological piecewise-constant rates [(from, to, share)] *)
  }

  type trace = {
    instance : T.instance;
    policy : P.t;
    events : (F.t * event) list;  (** chronological *)
    records : record array;
  }

  (** Simulate to completion. [releases] defaults to all zeros. *)
  val run : ?releases:F.t array -> T.instance -> P.t -> trace

  (** [Σ w_i C_i]. *)
  val weighted_completion_time : trace -> F.t

  (** [Σ w_i (C_i − r_i)]. *)
  val weighted_flow_time : trace -> F.t

  val makespan : trace -> F.t

  (** Integrated rate per task (equals the volumes). *)
  val processed_volume : trace -> F.t array

  (** Validity: caps, capacity at every instant, no work before
      release, volume conservation. *)
  val check : trace -> (unit, string) result

  (** Collapse a zero-release trace to a column schedule for the core
      checkers. *)
  val to_column_schedule : trace -> T.column_schedule
end

(** Pre-applied engines. *)
module Float : module type of Make (Mwct_field.Field.Float_field)

module Exact : module type of Make (Mwct_rational.Rational.Rat_field)
