(** Shared experiment sizing: [Quick] keeps the whole battery around a
    minute for bench runs; [Full] uses paper-scale sample counts. *)
type t = Quick | Full
