lib/experiments/sensitivity.ml: Experiments_scale List Mwct_core Mwct_util Mwct_workload Printf
