lib/experiments/ablation.ml: Array Experiments_scale Float List Mwct_core Mwct_rational Mwct_util Mwct_workload Printf Sys
