lib/experiments/experiments_scale.ml:
