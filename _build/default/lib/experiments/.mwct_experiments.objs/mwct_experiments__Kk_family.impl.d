lib/experiments/kk_family.ml: Array Experiments_scale Float List Mwct_core Mwct_util Printf String
