lib/experiments/experiments.mli: Experiments_scale Mwct_util
