lib/experiments/organ_pipe.ml: Array Experiments_scale List Mwct_core Mwct_util Mwct_workload Printf
