(** E13 — probing the Kawaguchi–Kyan bound (Table I's LRF row).

    With [δ_i = 1] and [w_i = p_i] every job has the same Smith ratio,
    so {e every} order is a valid LRF tie-break — the adversary picks
    the worst one. By McNaughton's theorem preemption does not improve
    [Σ w_i C_i] on identical machines, so the optimum is the best list
    schedule; for [n <= 9] both extremes are exact by enumerating the
    [n!] list orders.

    A hill climb over the job sizes then searches for the instance
    maximizing [worst-LRF / OPT]. The Kawaguchi–Kyan bound says this
    ratio is below [(1+√2)/2 ≈ 1.2071] always; it is known to be
    approached only asymptotically, so small-[n] values strictly below
    it (but visibly above 1) are the expected, correct shape.

    Amusingly, the "natural" tight-looking family — P long jobs plus
    k·P unit jobs — has {e exactly} ratio 1 between its two extreme
    orders: with [w = p] the objective of a list order equals that of
    the reversed order (the same reversal symmetry as Conjecture 13).
    The bad instances are asymmetric, which is what the search finds. *)

module EF = Mwct_core.Engine.Float
module Rng = Mwct_util.Rng
module Tablefmt = Mwct_util.Tablefmt

(* Objective of the list schedule of [sizes] (p = w, delta = 1) on [p]
   machines, in the given order: each job goes to the least-loaded
   machine. *)
let list_objective ~procs (sizes : float array) (order : int array) : float =
  let load = Array.make procs 0. in
  let obj = ref 0. in
  Array.iter
    (fun i ->
      let best = ref 0 in
      for m = 1 to procs - 1 do
        if load.(m) < load.(!best) then best := m
      done;
      load.(!best) <- load.(!best) +. sizes.(i);
      obj := !obj +. (sizes.(i) *. load.(!best)))
    order;
  !obj

(* (worst over orders, best over orders). *)
let extremes ~procs (sizes : float array) : float * float =
  let n = Array.length sizes in
  let module O = EF.Orderings in
  O.fold_permutations n
    (fun (worst, best) order ->
      let v = list_objective ~procs sizes order in
      (Float.max worst v, Float.min best v))
    (0., infinity)

let ratio ~procs sizes =
  let worst, best = extremes ~procs sizes in
  if best <= 0. then 1. else worst /. best

(* Hill climb on the dyadic size grid. *)
let hunt ~procs ~n ~restarts ~steps seed =
  let den = 8 in
  let rng = Rng.create seed in
  let random_sizes () = Array.init n (fun _ -> float_of_int (Rng.dyadic rng ~den) /. float_of_int den) in
  let mutate sizes =
    let s = Array.copy sizes in
    let i = Rng.int rng n in
    let bump = float_of_int (1 + Rng.int rng 3) /. float_of_int den in
    s.(i) <- Float.max (1. /. float_of_int den) (if Rng.bool rng then s.(i) +. bump else s.(i) -. bump);
    s
  in
  let best_ratio = ref 1. and best_sizes = ref (random_sizes ()) in
  for _ = 1 to restarts do
    let cur = ref (random_sizes ()) in
    let cur_score = ref (ratio ~procs !cur) in
    for _ = 1 to steps do
      let cand = mutate !cur in
      let score = ratio ~procs cand in
      if score >= !cur_score then begin
        cur := cand;
        cur_score := score
      end
    done;
    if !cur_score > !best_ratio then begin
      best_ratio := !cur_score;
      best_sizes := !cur
    end
  done;
  (!best_ratio, !best_sizes)

let table scale =
  let restarts, steps, sizes_of_n =
    match scale with
    | Experiments_scale.Quick -> (6, 60, [ (2, 5); (2, 6); (3, 6); (3, 7) ])
    | Full -> (10, 120, [ (2, 5); (2, 6); (2, 7); (3, 6); (3, 7); (3, 8); (4, 8) ])
  in
  let t =
    Tablefmt.create
      ~title:
        "E13 / Kawaguchi-Kyan probe: worst LRF tie-break vs OPT on w=p, delta=1 instances (bound 1.20711)"
      [ "P"; "n"; "worst ratio found"; "witness sizes" ]
  in
  Tablefmt.set_align t [ Tablefmt.Right; Tablefmt.Right; Tablefmt.Right; Tablefmt.Left ];
  List.iteri
    (fun k (procs, n) ->
      let r, sizes = hunt ~procs ~n ~restarts ~steps (13_000 + k) in
      Tablefmt.add_row t
        [
          string_of_int procs;
          string_of_int n;
          Printf.sprintf "%.5f" r;
          String.concat " " (Array.to_list (Array.map (Printf.sprintf "%.3f") sizes));
        ])
    sizes_of_n;
  t
