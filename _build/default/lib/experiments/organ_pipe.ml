(** E14 — the organ-pipe conjecture (a new observation, beyond the
    paper).

    The E3 survey shows the optimal greedy order on the Section V-B
    class follows an organ-pipe pattern over the delta ranks
    (1,3,5,…,6,4,2). This experiment quantifies it: how often is the
    organ-pipe order {e exactly} optimal, and how much does it lose
    when it is not? The paper proves the pattern for n <= 3 and
    (modulo its typo) n = 4; for n >= 5 it itself notes the optimum
    depends on the delta values, so the organ-pipe can only be a
    heuristic — a very good one, as the numbers show. *)

module EF = Mwct_core.Engine.Float
module G = Mwct_workload.Generator
module Rng = Mwct_util.Rng
module Spec = Mwct_core.Spec
module Tablefmt = Mwct_util.Tablefmt

let table scale =
  let draws = match scale with Experiments_scale.Quick -> 60 | Full -> 400 in
  let t =
    Tablefmt.create
      ~title:"E14 / organ-pipe order on the homogeneous class: optimality rate and worst loss"
      [ "tasks"; "draws"; "organ-pipe optimal"; "max relative loss"; "mean relative loss" ]
  in
  Tablefmt.set_align t (List.init 5 (fun _ -> Tablefmt.Right));
  List.iter
    (fun n ->
      let rng = Rng.create (14_000 + n) in
      let optimal = ref 0 in
      let max_loss = ref 0. and total_loss = ref 0. in
      for _ = 1 to draws do
        let ds = G.homogeneous_deltas (Rng.split rng) ~n ~den:4096 () in
        let deltas = Array.map (fun (r : Spec.rat) -> float_of_int r.Spec.num /. float_of_int r.Spec.den) ds in
        let pipe = EF.Homogeneous.total deltas (EF.Homogeneous.organ_pipe deltas) in
        let best = ref infinity in
        EF.Orderings.fold_permutations n
          (fun () order ->
            let v = EF.Homogeneous.total deltas order in
            if v < !best then best := v)
          ();
        let loss = (pipe -. !best) /. !best in
        if loss <= 1e-9 then incr optimal;
        if loss > !max_loss then max_loss := loss;
        total_loss := !total_loss +. loss
      done;
      Tablefmt.add_row t
        [
          string_of_int n;
          string_of_int draws;
          Printf.sprintf "%d/%d" !optimal draws;
          Printf.sprintf "%.2e" !max_loss;
          Printf.sprintf "%.2e" (!total_loss /. float_of_int draws);
        ])
    [ 3; 4; 5; 6; 7 ];
  t
