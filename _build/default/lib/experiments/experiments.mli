(** Regeneration of every table and experiment of the paper
    (see DESIGN.md §5 for the experiment index E1–E10, and
    EXPERIMENTS.md for paper-vs-measured records).

    Each function runs one experiment and returns the rendered table;
    [run_all] executes the whole battery. [scale] trades coverage for
    time: [Quick] keeps the full battery under ~1 minute (bench runs),
    [Full] reproduces the paper's sample sizes (e.g. the 10,000-instance
    Section V-A search). *)

type scale = Experiments_scale.t = Quick | Full

(** E1 — Table I: every row exercised by the corresponding algorithm
    and compared against its claimed guarantee. *)
val table1 : scale -> Mwct_util.Tablefmt.t

(** E2 — §V-A: best greedy vs LP optimum on uniform random instances of
    2–5 tasks (the paper's 10,000-instance experiment). *)
val greedy_vs_opt : scale -> Mwct_util.Tablefmt.t

(** E3 — §V-B: optimal-order patterns for n = 2..4 (including the
    paper's printed-pattern discrepancy, see EXPERIMENTS.md) and the
    n = 5 necessary condition. *)
val optimal_orders : scale -> Mwct_util.Tablefmt.t

(** E4 — Conjecture 13 verified exactly (rationals) up to 15 tasks. *)
val conjecture13 : scale -> Mwct_util.Tablefmt.t

(** E5 — Theorems 9/10: allocation changes vs [n] and preemptions vs
    [3n] on WF normal forms. *)
val preemptions : scale -> Mwct_util.Tablefmt.t

(** E6 — Theorem 4: WDEQ competitive ratio against the exact optimum
    (small n) and against twice the mixed lower bound (large n). *)
val wdeq_ratio : scale -> Mwct_util.Tablefmt.t

(** E7 — Figure 1: bandwidth-sharing policy comparison. *)
val bandwidth : scale -> Mwct_util.Tablefmt.t

(** E8 — Table I row Cmax: optimal makespan tightness. *)
val makespan : scale -> Mwct_util.Tablefmt.t

(** E9 — Table I row Lmax: lateness minimization via WF + search. *)
val lmax : scale -> Mwct_util.Tablefmt.t

(** E10 — the paper's open question: greedy performance when
    [w_i = V_i = 1]. *)
val smith_greedy : scale -> Mwct_util.Tablefmt.t

(** E11 — adversarial hill-climbing search for worst-case ratios of
    WDEQ, DEQ, LRF and best-greedy (see {!Adversarial}). *)
val adversarial : scale -> Mwct_util.Tablefmt.t

(** E12a — ablation: raw per-column wrap vs the Lemma-10 sticky
    processor assignment. *)
val ablation_assignment : scale -> Mwct_util.Tablefmt.t

(** E12b — ablation: float engine vs exact rational engine. *)
val ablation_engine : scale -> Mwct_util.Tablefmt.t

(** E13 — the Kawaguchi–Kyan tight family for the LRF row of Table I:
    adversarial tie-breaking pushes the ratio toward (1+√2)/2. *)
val kk_family : scale -> Mwct_util.Tablefmt.t

(** E14 — the organ-pipe order (a pattern this reproduction discovered
    in E3): optimality rate on the homogeneous class. *)
val organ_pipe : scale -> Mwct_util.Tablefmt.t

(** E15 — model ablation: the malleable LP optimum vs the best moldable
    (fixed-width) and rigid schedules. *)
val malleability : scale -> Mwct_util.Tablefmt.t

(** E16 — robustness: key ratios re-measured on heavy-tailed, bimodal
    and mixed workloads. *)
val sensitivity : scale -> Mwct_util.Tablefmt.t

(** All experiments in order, printed to stdout. *)
val run_all : scale -> unit

(** Look an experiment up by its id (e.g. ["table1"], ["greedy_vs_opt"]).
    Returns [None] for unknown names. *)
val by_name : string -> (scale -> Mwct_util.Tablefmt.t) option

(** All experiment ids, in E1..E10 order. *)
val names : string list
