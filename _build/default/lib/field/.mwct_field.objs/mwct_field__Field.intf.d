lib/field/field.mli: Format
