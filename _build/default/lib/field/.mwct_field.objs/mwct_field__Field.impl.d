lib/field/field.ml: Array Float Format List Stdlib
