(** Task orderings: permutation enumeration and the classical priority
    rules used as greedy orders and baselines (Section V, Table I). *)

module Make (F : Mwct_field.Field.S) = struct
  module T = Types.Make (F)
  module I = Instance.Make (F)
  open T

  let identity n = Array.init n (fun i -> i)

  (** [fold_permutations n f acc] folds [f] over all permutations of
      [{0..n-1}] (Heap's algorithm). The array passed to [f] is reused
      between calls — copy it if it must survive. *)
  let fold_permutations n f acc =
    let a = identity n in
    let acc = ref (f acc a) in
    let c = Array.make n 0 in
    let i = ref 0 in
    while !i < n do
      if c.(!i) < !i then begin
        let j = if !i land 1 = 0 then 0 else c.(!i) in
        let tmp = a.(j) in
        a.(j) <- a.(!i);
        a.(!i) <- tmp;
        acc := f !acc a;
        c.(!i) <- c.(!i) + 1;
        i := 0
      end
      else begin
        c.(!i) <- 0;
        incr i
      end
    done;
    !acc

  (** Number of permutations visited by [fold_permutations]. *)
  let factorial n =
    let rec go acc k = if k <= 1 then acc else go (acc * k) (k - 1) in
    go 1 n

  let sort_by inst cmp =
    let idx = identity (I.num_tasks inst) in
    Array.sort
      (fun a b ->
        let c = cmp a b in
        if c <> 0 then c else Stdlib.compare a b)
      idx;
    idx

  (** Smith / LRF order: non-decreasing [V_i / w_i] (equivalently,
      largest ratio [w_i / V_i] first — Kawaguchi–Kyan). *)
  let smith (inst : instance) =
    sort_by inst (fun a b ->
        F.compare
          (F.mul inst.tasks.(a).volume inst.tasks.(b).weight)
          (F.mul inst.tasks.(b).volume inst.tasks.(a).weight))

  (** Shortest volume first (SPT). *)
  let shortest_volume (inst : instance) =
    sort_by inst (fun a b -> F.compare inst.tasks.(a).volume inst.tasks.(b).volume)

  (** Largest weight first. *)
  let largest_weight (inst : instance) =
    sort_by inst (fun a b -> F.compare inst.tasks.(b).weight inst.tasks.(a).weight)

  (** Non-increasing delta (widest task first). *)
  let largest_delta (inst : instance) =
    sort_by inst (fun a b -> F.compare inst.tasks.(b).delta inst.tasks.(a).delta)

  (** Non-decreasing delta. *)
  let smallest_delta (inst : instance) =
    sort_by inst (fun a b -> F.compare inst.tasks.(a).delta inst.tasks.(b).delta)

  (** Shortest height [V_i/δ_i] first. *)
  let shortest_height (inst : instance) =
    sort_by inst (fun a b -> F.compare (I.height inst a) (I.height inst b))

  let reverse (sigma : int array) =
    let n = Array.length sigma in
    Array.init n (fun i -> sigma.(n - 1 - i))

  (** Uniform random permutation. *)
  let random (rng : Mwct_util.Rng.t) n =
    let a = identity n in
    Mwct_util.Rng.shuffle rng a;
    a
end
