(** Instance construction and elementary quantities. *)

module Make (F : Mwct_field.Field.S) = struct
  module T = Types.Make (F)
  module O = Mwct_field.Field.Ops (F)
  open T

  let of_rat (r : Spec.rat) = F.of_q r.Spec.num r.Spec.den

  (** Convert a field-neutral spec into a field instance. *)
  let of_spec (s : Spec.t) : instance =
    (match Spec.validate s with Ok () -> () | Error msg -> invalid_arg ("Instance.of_spec: " ^ msg));
    {
      procs = F.of_int s.Spec.procs;
      tasks =
        Array.map
          (fun (tk : Spec.task) ->
            { volume = of_rat tk.Spec.volume; weight = of_rat tk.Spec.weight; delta = F.of_int tk.Spec.delta })
          s.Spec.tasks;
    }

  (** Build directly from field values (weights default to 1). *)
  let make ~procs tasks : instance = { procs; tasks = Array.of_list tasks }

  let task ?weight ~volume ~delta () =
    let weight = match weight with Some w -> w | None -> F.one in
    { volume; weight; delta }

  let num_tasks (i : instance) = Array.length i.tasks

  (** Structural validity over the field: everything strictly positive,
      [δ_i >= 1]. Deltas above [P] are allowed (they behave as [P]). *)
  let validate (i : instance) =
    if F.sign i.procs <= 0 then Error "procs must be positive"
    else begin
      let bad = ref None in
      Array.iteri
        (fun k t ->
          if Option.is_none !bad then
            if F.sign t.volume <= 0 then bad := Some (Printf.sprintf "task %d: volume must be positive" k)
            else if F.sign t.weight <= 0 then bad := Some (Printf.sprintf "task %d: weight must be positive" k)
            else if F.compare t.delta F.one < 0 then
              bad := Some (Printf.sprintf "task %d: delta must be >= 1" k))
        i.tasks;
      match !bad with None -> Ok () | Some m -> Error m
    end

  (** Total work [Σ V_i]. *)
  let total_volume (i : instance) = O.sum_array (Array.map (fun t -> t.volume) i.tasks)

  (** Total weight [Σ w_i]. *)
  let total_weight (i : instance) = O.sum_array (Array.map (fun t -> t.weight) i.tasks)

  (** Effective parallelism cap: [min δ_i P]; a task can never use more
      than all processors. *)
  let effective_delta (i : instance) k = F.min i.tasks.(k).delta i.procs

  (** The height [h_i = V_i / δ_i] of task [i] (Definition 6). *)
  let height (i : instance) k = F.div i.tasks.(k).volume (effective_delta i k)

  (** Smith ratio [V_i / w_i]; the squashed-area bound sorts by it. *)
  let smith_ratio (i : instance) k = F.div i.tasks.(k).volume i.tasks.(k).weight

  (** [sub_instance i volumes] is the paper's subinstance [I[V'_i]]:
      same tasks with modified volumes. Tasks whose new volume is zero
      are kept (with zero volume) so indices are stable; quantities like
      the squashed-area bound ignore them naturally. *)
  let sub_instance (i : instance) (volumes : num array) : instance =
    if Array.length volumes <> num_tasks i then invalid_arg "Instance.sub_instance: length mismatch";
    { i with tasks = Array.mapi (fun k t -> { t with volume = volumes.(k) }) i.tasks }

  (** Render for logs. *)
  let to_string (i : instance) =
    let t_to_string t =
      Printf.sprintf "(V=%s w=%s d=%s)" (F.to_string t.volume) (F.to_string t.weight) (F.to_string t.delta)
    in
    Printf.sprintf "P=%s %s" (F.to_string i.procs)
      (String.concat " " (Array.to_list (Array.map t_to_string i.tasks)))
end
