(** Task orderings: permutation enumeration (Heap's algorithm) and the
    classical priority rules used as greedy insertion orders and
    baselines. *)

module Make (F : Mwct_field.Field.S) : sig
  val identity : int -> int array

  (** Fold over all [n!] permutations of [{0..n−1}]. The array passed
      to the callback is {e reused} — copy it if it must survive. *)
  val fold_permutations : int -> ('a -> int array -> 'a) -> 'a -> 'a

  val factorial : int -> int

  (** Smith / LRF order: non-decreasing [V_i / w_i] (largest ratio
      [w/V] first), ties by index. *)
  val smith : Types.Make(F).instance -> int array

  (** Shortest volume first (SPT). *)
  val shortest_volume : Types.Make(F).instance -> int array

  val largest_weight : Types.Make(F).instance -> int array
  val largest_delta : Types.Make(F).instance -> int array
  val smallest_delta : Types.Make(F).instance -> int array

  (** Non-decreasing height [V_i / min(δ_i, P)]. *)
  val shortest_height : Types.Make(F).instance -> int array

  val reverse : int array -> int array

  (** Uniform random permutation from the given generator. *)
  val random : Mwct_util.Rng.t -> int -> int array
end
