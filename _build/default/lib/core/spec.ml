type rat = { num : int; den : int }

type task = { volume : rat; weight : rat; delta : int }
type t = { procs : int; tasks : task array }

let rat num den =
  if den <= 0 then invalid_arg "Spec.rat: denominator must be positive";
  { num; den }

let rat_of_int n = { num = n; den = 1 }
let task ?(weight = rat_of_int 1) ~volume ~delta () = { volume; weight; delta }
let make ~procs tasks = { procs; tasks = Array.of_list tasks }
let num_tasks t = Array.length t.tasks

let validate t =
  if t.procs < 1 then Error "procs must be >= 1"
  else begin
    let check i tk =
      if tk.volume.num <= 0 || tk.volume.den <= 0 then Error (Printf.sprintf "task %d: volume must be positive" i)
      else if tk.weight.num <= 0 || tk.weight.den <= 0 then
        Error (Printf.sprintf "task %d: weight must be positive" i)
      else if tk.delta < 1 then Error (Printf.sprintf "task %d: delta must be >= 1" i)
      else Ok ()
    in
    let rec go i =
      if i >= Array.length t.tasks then Ok ()
      else begin
        match check i t.tasks.(i) with Ok () -> go (i + 1) | Error _ as e -> e
      end
    in
    go 0
  end

let rat_to_string r = if r.den = 1 then string_of_int r.num else Printf.sprintf "%d/%d" r.num r.den

let to_string t =
  let task_to_string tk =
    Printf.sprintf "(V=%s w=%s d=%d)" (rat_to_string tk.volume) (rat_to_string tk.weight) tk.delta
  in
  Printf.sprintf "P=%d %s" t.procs (String.concat " " (Array.to_list (Array.map task_to_string t.tasks)))

let pp fmt t = Format.pp_print_string fmt (to_string t)
