lib/core/lateness.ml: Array Instance Makespan Mwct_field Types Water_filling
