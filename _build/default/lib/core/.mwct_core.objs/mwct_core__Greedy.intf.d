lib/core/greedy.mli: Mwct_field Types
