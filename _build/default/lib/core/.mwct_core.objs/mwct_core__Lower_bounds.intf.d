lib/core/lower_bounds.mli: Mwct_field Types
