lib/core/lp_schedule.mli: Mwct_field Types
