lib/core/orderings.mli: Mwct_field Mwct_util Types
