lib/core/makespan.ml: Array Instance Mwct_field Types Water_filling
