lib/core/integerize.ml: Array Float Instance List Mwct_field Option Schedule Types
