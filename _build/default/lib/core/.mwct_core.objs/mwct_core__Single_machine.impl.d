lib/core/single_machine.ml: Array Float Instance Mwct_field Orderings Types
