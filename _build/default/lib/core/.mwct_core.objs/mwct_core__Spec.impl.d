lib/core/spec.ml: Array Format Printf String
