lib/core/homogeneous.ml: Array List Mwct_field Orderings Stdlib Types
