lib/core/lower_bounds.ml: Array Instance List Mwct_field Types
