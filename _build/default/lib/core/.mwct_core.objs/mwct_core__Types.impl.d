lib/core/types.ml: Mwct_field
