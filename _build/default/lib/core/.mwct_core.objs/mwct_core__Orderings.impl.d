lib/core/orderings.ml: Array Instance Mwct_field Mwct_util Stdlib Types
