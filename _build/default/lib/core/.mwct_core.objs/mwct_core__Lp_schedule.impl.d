lib/core/lp_schedule.ml: Array Greedy Instance List Mwct_field Mwct_simplex Orderings Printf Schedule Types
