lib/core/schedule.mli: Mwct_field Types
