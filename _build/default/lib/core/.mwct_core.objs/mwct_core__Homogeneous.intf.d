lib/core/homogeneous.mli: Mwct_field Types
