lib/core/assignment.ml: Array Float List Mwct_field Printf Types
