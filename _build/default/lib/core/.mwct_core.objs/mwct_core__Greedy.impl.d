lib/core/greedy.ml: Array Instance List Mwct_field Schedule Types
