lib/core/instance.mli: Mwct_field Spec Types
