lib/core/water_filling.mli: Mwct_field Types
