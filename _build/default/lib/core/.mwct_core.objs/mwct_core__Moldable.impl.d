lib/core/moldable.ml: Array Instance List Mwct_field Orderings Printf Stdlib Types
