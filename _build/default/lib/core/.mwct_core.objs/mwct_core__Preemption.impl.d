lib/core/preemption.ml: Array Mwct_field Option Schedule Types
