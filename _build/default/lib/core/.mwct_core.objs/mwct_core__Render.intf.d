lib/core/render.mli: Mwct_field Types
