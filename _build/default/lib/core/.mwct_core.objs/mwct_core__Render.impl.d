lib/core/render.ml: Array Buffer Bytes Char Float List Mwct_field Printf Schedule Stdlib String Types
