lib/core/water_filling.ml: Array Instance List Mwct_field Printf Schedule Types
