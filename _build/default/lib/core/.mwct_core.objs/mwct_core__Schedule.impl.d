lib/core/schedule.ml: Array Buffer Instance Mwct_field Printf Stdlib Types
