lib/core/preemption.mli: Mwct_field Types
