lib/core/wdeq.ml: Array Instance List Mwct_field Schedule Stdlib Types
