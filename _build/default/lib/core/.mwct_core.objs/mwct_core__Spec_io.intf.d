lib/core/spec_io.mli: Spec
