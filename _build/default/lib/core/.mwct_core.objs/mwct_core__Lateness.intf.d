lib/core/lateness.mli: Mwct_field Types
