lib/core/moldable.mli: Mwct_field Types
