lib/core/makespan.mli: Mwct_field Types
