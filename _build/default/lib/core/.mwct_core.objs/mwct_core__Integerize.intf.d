lib/core/integerize.mli: Mwct_field Types
