lib/core/spec.mli: Format
