lib/core/release_dates.ml: Array Instance List Makespan Mwct_field Mwct_simplex Printf Types
