lib/core/single_machine.mli: Mwct_field Types
