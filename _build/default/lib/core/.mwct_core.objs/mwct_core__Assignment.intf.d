lib/core/assignment.mli: Mwct_field Types
