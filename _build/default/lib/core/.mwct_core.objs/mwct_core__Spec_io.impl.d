lib/core/spec_io.ml: Array Buffer In_channel List Option Printf Spec String
