lib/core/wdeq.mli: Mwct_field Types
