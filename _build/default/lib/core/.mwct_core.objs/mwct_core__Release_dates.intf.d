lib/core/release_dates.mli: Mwct_field Types
