lib/core/instance.ml: Array Mwct_field Option Printf Spec String Types
