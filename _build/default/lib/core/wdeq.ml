(** WDEQ — Weighted Dynamic EQuipartition (Algorithm 1, Section III).

    The non-clairvoyant policy: at every instant the platform is shared
    between alive tasks in proportion to their weights; a task whose
    proportional share exceeds its cap [δ_i] is clipped to [δ_i] and
    the surplus redistributed among the others, repeatedly, until a
    fixpoint. Shares are recomputed whenever a task completes.

    The module {e simulates} the policy on a clairvoyant instance
    (volumes are used only to find the next completion event, exactly
    as a real execution would reveal it) and records the diagnostics
    needed to check Lemma 2's bound
    [TC_WD(I) <= 2·(A(I[VF̄]) + H(I[VF]))]. *)

module Make (F : Mwct_field.Field.S) = struct
  module T = Types.Make (F)
  module I = Instance.Make (F)
  module S = Schedule.Make (F)
  open T

  (** Per-run diagnostics: for each task, the volume it processed while
      running at its full allocation [δ_i] ([full_volume], the paper's
      [VF_i]) and while limited by equipartition ([limited_volume], the
      paper's [VF̄_i]). The two sum to [V_i]. *)
  type diagnostics = { full_volume : F.t array; limited_volume : F.t array }

  (** One round of Algorithm 1: shares for the alive tasks.
      [alive] gives (index, weight, delta); the result maps each alive
      index to its share. Total shares never exceed [p]. *)
  let shares ~p alive : (int * F.t) list =
    (* Iteratively saturate tasks whose fair share exceeds delta. *)
    let rec go unsat saturated r w =
      (* r = remaining processors, w = remaining weight. *)
      let violating, rest =
        List.partition (fun (_, wi, di) -> F.compare (F.mul di w) (F.mul wi r) < 0) unsat
      in
      match violating with
      | [] ->
        let give =
          List.map (fun (i, wi, _) -> (i, if F.sign w > 0 then F.div (F.mul wi r) w else F.zero)) rest
        in
        saturated @ give
      | _ ->
        let r' = List.fold_left (fun acc (_, _, di) -> F.sub acc di) r violating in
        let w' = List.fold_left (fun acc (_, wi, _) -> F.sub acc wi) w violating in
        go rest (List.map (fun (i, _, di) -> (i, di)) violating @ saturated) r' w'
    in
    let w0 = List.fold_left (fun acc (_, wi, _) -> F.add acc wi) F.zero alive in
    go alive [] p w0

  (** Simulate a dynamic-equipartition run. [use_weights = false] gives
      plain DEQ (Deng et al.), the unweighted special case. *)
  let simulate ?(use_weights = true) (inst : instance) : column_schedule * diagnostics =
    let n = I.num_tasks inst in
    let remaining = Array.map (fun t -> t.volume) inst.tasks in
    let alive = Array.make n true in
    let full_volume = Array.make n F.zero in
    let limited_volume = Array.make n F.zero in
    let order = Array.make n 0 in
    let finish = Array.make n F.zero in
    let alloc = Array.make_matrix n n F.zero in
    let t_now = ref F.zero in
    let col = ref 0 in
    while !col < n do
      let alive_list =
        List.filter_map
          (fun i ->
            if alive.(i) then
              Some (i, (if use_weights then inst.tasks.(i).weight else F.one), I.effective_delta inst i)
            else None)
          (List.init n (fun i -> i))
      in
      let share_list = shares ~p:inst.procs alive_list in
      (* Time to the next completion. *)
      let dt =
        List.fold_left
          (fun acc (i, s) ->
            if F.sign s > 0 then begin
              let ti = F.div remaining.(i) s in
              match acc with None -> Some ti | Some a -> Some (F.min a ti)
            end
            else acc)
          None share_list
      in
      let dt = match dt with Some d -> d | None -> invalid_arg "Wdeq.simulate: no task can progress" in
      let t_end = F.add !t_now dt in
      (* Record the column's allocations and advance volumes. *)
      let deltas = Array.map (fun _ -> F.zero) remaining in
      List.iter (fun (i, s) -> deltas.(i) <- s) share_list;
      let finished = ref [] in
      List.iter
        (fun (i, s) ->
          let processed = F.mul s dt in
          remaining.(i) <- F.sub remaining.(i) processed;
          let saturated = F.equal_approx s (I.effective_delta inst i) in
          if saturated then full_volume.(i) <- F.add full_volume.(i) processed
          else limited_volume.(i) <- F.add limited_volume.(i) processed;
          if F.leq_approx remaining.(i) F.zero then finished := i :: !finished)
        share_list;
      let finished = List.sort Stdlib.compare !finished in
      (match finished with
      | [] -> invalid_arg "Wdeq.simulate: no completion at event (numeric drift)"
      | _ -> ());
      (* One column per completed task: the first carries the duration,
         simultaneous completions give zero-length columns. *)
      List.iteri
        (fun k i ->
          let j = !col + k in
          order.(j) <- i;
          finish.(j) <- t_end;
          alive.(i) <- false;
          if k = 0 then Array.iteri (fun i' s -> alloc.(i').(j) <- s) deltas)
        finished;
      col := !col + List.length finished;
      t_now := t_end
    done;
    ({ instance = inst; order; finish; alloc }, { full_volume; limited_volume })

  (** WDEQ schedule of an instance. *)
  let wdeq inst = simulate ~use_weights:true inst

  (** DEQ (unweighted dynamic equipartition) on the same instance; the
      schedule ignores weights but the objective can still be evaluated
      with them. *)
  let deq inst = simulate ~use_weights:false inst
end
