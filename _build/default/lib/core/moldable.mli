(** Extension: moldable tasks — fixed width chosen at start, no
    reallocation (the weaker model the paper's introduction contrasts
    with malleability). Used by experiment E15 to quantify what
    malleability buys. *)

module Make (F : Mwct_field.Field.S) : sig
  (** One placed rectangle ([width] processors over
      [[start, finish)]). *)
  type placement = { task : int; width : int; start : F.t; finish : F.t }

  (** Rigid list scheduling with fixed per-task [widths] in insertion
      [order]: each task starts as early as its width fits. Widths are
      clamped to [[1, min(δ_i, P)]]. *)
  val schedule :
    Types.Make(F).instance -> widths:int array -> order:int array -> placement array

  (** [Σ w_i C_i] of a placement set (indexed by task). *)
  val objective : Types.Make(F).instance -> placement array -> F.t

  val makespan : placement array -> F.t

  (** Capacity, width-cap and duration checks. *)
  val check : Types.Make(F).instance -> placement array -> (unit, string) result

  (** All tasks at full width [min(δ_i, P)]. *)
  val widths_full : Types.Make(F).instance -> int array

  (** All tasks at width 1. *)
  val widths_one : Types.Make(F).instance -> int array

  (** ±1 local search on widths for a fixed order; returns the improved
      widths and their objective. *)
  val improve_widths :
    ?max_rounds:int ->
    Types.Make(F).instance ->
    order:int array ->
    int array ->
    int array * F.t

  (** Best moldable objective found (Smith order, several width seeds,
      local search). *)
  val best_heuristic : Types.Make(F).instance -> F.t
end
