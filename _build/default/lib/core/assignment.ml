(** Processor assignment with few preemptions (Lemmas 6 and 10).

    Input: an {!Types.Make.integer_schedule} (per-task integer demand
    profiles). Output: a concrete Gantt chart in which a processor,
    once granted to a task, is kept until the task's demand drops —
    the strategy of Lemma 10. Together with the wrap construction this
    realizes Theorem 10: at most [3n] preemptions in total for a
    WF-normal-form schedule.

    A {e preemption} is counted whenever a processor is taken away from
    a task strictly before the task's completion time. *)

module Make (F : Mwct_field.Field.S) = struct
  module T = Types.Make (F)
  open T

  (** [assign is] maps demands to named processors. Raises
      [Invalid_argument] if at some instant the total demand exceeds
      [P] (the input was not a valid integer schedule). *)
  let assign (is : integer_schedule) : gantt =
    let n = Array.length is.demands in
    let nb_procs =
      match F.to_float is.instance.procs with
      | p when Float.is_integer p && p >= 1. -> int_of_float p
      | _ -> invalid_arg "Assignment.assign: P must be an integer"
    in
    (* Event sweep over all segment boundaries. *)
    let times =
      List.sort_uniq F.compare
        (List.concat_map
           (fun segs -> List.concat_map (fun seg -> [ seg.start_time; seg.end_time ]) segs)
           (Array.to_list is.demands))
    in
    let demand_at i t =
      (* Demand of task i on [t, next); segments are half-open. *)
      let rec go = function
        | seg :: rest ->
          if F.compare seg.start_time t <= 0 && F.compare t seg.end_time < 0 then seg.procs else go rest
        | [] -> 0
      in
      go is.demands.(i)
    in
    (* State: which task each processor currently serves (-1 = idle),
       and since when; completed bookings per processor. *)
    let serving = Array.make nb_procs (-1) in
    let since = Array.make nb_procs F.zero in
    let done_bookings = Array.make nb_procs [] in
    let held = Array.make n [] in
    (* procs currently held by each task, most recent first *)
    let release_proc t p =
      let task = serving.(p) in
      if task >= 0 then begin
        if F.compare since.(p) t < 0 then
          done_bookings.(p) <- { task; from_time = since.(p); to_time = t } :: done_bookings.(p);
        held.(task) <- List.filter (fun q -> q <> p) held.(task);
        serving.(p) <- -1
      end
    in
    let grant_proc t p task =
      serving.(p) <- task;
      since.(p) <- t;
      held.(task) <- p :: held.(task)
    in
    let rec sweep = function
      | [] -> ()
      | t :: rest ->
        (* Phase 1: releases (demand decreased or task finished). *)
        for i = 0 to n - 1 do
          let want = demand_at i t in
          let have = List.length held.(i) in
          if want < have then begin
            (* Release the most recently acquired processors first:
               long-held processors keep running, which concentrates
               preemptions on the short bookings. *)
            let to_release = have - want in
            let rec rel k =
              if k > 0 then begin
                match held.(i) with
                | p :: _ ->
                  release_proc t p;
                  rel (k - 1)
                | [] -> assert false
              end
            in
            rel to_release
          end
        done;
        (* Phase 2: grants from the pool of idle processors. *)
        for i = 0 to n - 1 do
          let want = demand_at i t in
          let have = List.length held.(i) in
          if want > have then begin
            let needed = ref (want - have) in
            let p = ref 0 in
            while !needed > 0 && !p < nb_procs do
              if serving.(!p) < 0 then begin
                grant_proc t !p i;
                decr needed
              end;
              incr p
            done;
            if !needed > 0 then invalid_arg "Assignment.assign: demand exceeds P"
          end
        done;
        sweep rest
    in
    sweep times;
    (* Close any booking still open at the horizon (all demands end at
       a boundary, so everything should be released already). *)
    Array.iteri (fun p task -> if task >= 0 then invalid_arg (Printf.sprintf "Assignment.assign: processor %d never released (task %d)" p task)) serving;
    { instance = is.instance; processors = Array.map List.rev done_bookings }

  (** Completion time of each task in a Gantt chart. *)
  let completion_times (g : gantt) : F.t array =
    let n = Array.length g.instance.tasks in
    let c = Array.make n F.zero in
    Array.iter
      (List.iter (fun b -> if F.compare b.to_time c.(b.task) > 0 then c.(b.task) <- b.to_time))
      g.processors;
    c

  (** Count preemptions: bookings that end strictly before their task's
      completion time. *)
  let preemptions (g : gantt) : int =
    let c = completion_times g in
    Array.fold_left
      (fun acc bookings ->
        List.fold_left
          (fun acc b -> if F.compare b.to_time c.(b.task) < 0 then acc + 1 else acc)
          acc bookings)
      0 g.processors

  (** Sanity: bookings on one processor never overlap. *)
  let no_overlap (g : gantt) : bool =
    Array.for_all
      (fun bookings ->
        let rec ok = function
          | a :: (b :: _ as rest) -> F.leq_approx a.to_time b.from_time && ok rest
          | _ -> true
        in
        ok (List.sort (fun a b -> F.compare a.from_time b.from_time) bookings))
      g.processors

  (** Total booked time of each task (must equal its volume). *)
  let booked_volume (g : gantt) : F.t array =
    let n = Array.length g.instance.tasks in
    let v = Array.make n F.zero in
    Array.iter
      (List.iter (fun b -> v.(b.task) <- F.add v.(b.task) (F.sub b.to_time b.from_time)))
      g.processors;
    v
end
