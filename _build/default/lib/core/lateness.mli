(** Maximum lateness (Table I row [Lmax]): [L] is achievable iff WF
    accepts the targets [d_i + L] (Theorem 8), so feasibility is
    monotone in [L] and binary search finds the optimum to any
    tolerance at [O(n log n)] per probe. *)

module Make (F : Mwct_field.Field.S) : sig
  (** Is lateness [l] feasible for the given due dates? *)
  val feasible : Types.Make(F).instance -> F.t array -> F.t -> bool

  (** Trivial lower/upper bounds on the optimal lateness. *)
  val bounds : Types.Make(F).instance -> F.t array -> F.t * F.t

  (** Binary search to within [tol] (default [1e-6] as a field value):
      [(lo, hi, schedule_at_hi)] with [hi] feasible and [hi − lo <=
      tol]. *)
  val minimize :
    ?tol:F.t ->
    Types.Make(F).instance ->
    F.t array ->
    F.t * F.t * Types.Make(F).column_schedule
end
