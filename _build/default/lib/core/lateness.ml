(** Maximum lateness (Table I row [Lmax]).

    With due dates [d_i] and all release dates zero, the lateness of a
    schedule is [max_i (C_i − d_i)]. By Theorem 8, a target lateness
    [L] is achievable iff WF accepts the completion times [d_i + L]:
    making every target later only helps, so feasibility is monotone in
    [L] and binary search applies — the [O(n log n)]-per-probe
    procedure the paper mentions as a consequence of WF.

    [minimize] returns an interval of width [<= tol] bracketing the
    optimum together with the schedule built at its upper end. *)

module Make (F : Mwct_field.Field.S) = struct
  module T = Types.Make (F)
  module I = Instance.Make (F)
  module WF = Water_filling.Make (F)
  open T

  let deadlines_of due l = Array.map (fun d -> F.add d l) due

  (** Is lateness [l] feasible for due dates [due]? *)
  let feasible (inst : instance) (due : F.t array) (l : F.t) : bool =
    WF.feasible inst (deadlines_of due l)

  (** Trivial bounds on the optimal lateness: below, no task can end
      before [max(V_i/δ_i - d_i)] nor can the whole load beat the area
      bound; above, the makespan-optimal schedule gives lateness
      [T* - min d_i]. *)
  let bounds (inst : instance) (due : F.t array) : F.t * F.t =
    let module M = Makespan.Make (F) in
    let n = I.num_tasks inst in
    if Array.length due <> n then invalid_arg "Lateness.bounds: due length mismatch";
    let t_star = M.optimal inst in
    let lower =
      (* Each task alone needs C_i >= V_i/δ_i, so L >= V_i/δ_i - d_i. *)
      let rec go acc i =
        if i >= n then acc else go (F.max acc (F.sub (I.height inst i) due.(i))) (i + 1)
      in
      (* And someone finishes at or after t_star... only the latest due
         date is guaranteed: L >= t_star - max_i d_i. *)
      let max_due = Array.fold_left F.max due.(0) due in
      go (F.sub t_star max_due) 0
    in
    let min_due = Array.fold_left F.min due.(0) due in
    (lower, F.sub t_star min_due)

  (** Binary search for the minimal feasible lateness, to within [tol].
      Returns [(lo, hi, schedule_at_hi)] with [hi - lo <= tol],
      [lo] infeasible-or-optimal and [hi] feasible. *)
  let minimize ?(tol = F.of_q 1 1_000_000) (inst : instance) (due : F.t array) :
      F.t * F.t * column_schedule =
    let lo, hi = bounds inst due in
    if not (feasible inst due hi) then invalid_arg "Lateness.minimize: upper bound infeasible (bug)";
    let rec search lo hi =
      if F.compare (F.sub hi lo) tol <= 0 then (lo, hi)
      else begin
        let mid = F.div (F.add lo hi) (F.of_int 2) in
        if feasible inst due mid then search lo mid else search mid hi
      end
    in
    let lo, hi = if feasible inst due lo then (lo, lo) else search lo hi in
    match WF.build inst (deadlines_of due hi) with
    | Ok s -> (lo, hi, s)
    | Error _ -> assert false
end
