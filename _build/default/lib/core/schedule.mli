(** Column-based fractional schedules (MWCT-CB-F, Definition 2):
    accessors, objectives, and the full validity checker. *)

module Make (F : Mwct_field.Field.S) : sig
  (** Number of columns (one per task). *)
  val num_columns : Types.Make(F).column_schedule -> int

  (** Left edge of column [j] ([0] for the first column). *)
  val column_start : Types.Make(F).column_schedule -> int -> F.t

  (** Duration [l_j = C_j − C_{j−1}]; zero for simultaneous
      completions. *)
  val column_length : Types.Make(F).column_schedule -> int -> F.t

  (** Column at whose end task [i] completes. Raises
      [Invalid_argument] if [i] is not in the order. *)
  val position : Types.Make(F).column_schedule -> int -> int

  (** Completion time [C_i]. *)
  val completion_time : Types.Make(F).column_schedule -> int -> F.t

  (** All completion times, indexed by task. *)
  val completion_times : Types.Make(F).column_schedule -> F.t array

  (** The paper's objective [Σ w_i C_i]. *)
  val weighted_completion_time : Types.Make(F).column_schedule -> F.t

  (** Unweighted [Σ C_i]. *)
  val sum_completion_time : Types.Make(F).column_schedule -> F.t

  (** Makespan [max C_i]. *)
  val makespan : Types.Make(F).column_schedule -> F.t

  (** Volume actually processed for task [i] (equals [V_i] in a valid
      schedule). *)
  val processed_volume : Types.Make(F).column_schedule -> int -> F.t

  (** Total allocated area (equals [Σ V_i] in a valid schedule). *)
  val total_area : Types.Make(F).column_schedule -> F.t

  (** Busy fraction of the [P × makespan] rectangle, in [[0, 1]]. *)
  val utilization : Types.Make(F).column_schedule -> F.t

  (** Idle processor-time up to the makespan. *)
  val idle_area : Types.Make(F).column_schedule -> F.t

  (** First violated condition of Definition 2, if any. *)
  type violation =
    | Bad_shape of string
    | Not_sorted of int
    | Negative_alloc of int * int
    | Over_delta of int * int
    | Over_capacity of int
    | Late_alloc of int * int
    | Volume_mismatch of int

  val violation_to_string : violation -> string

  (** Full validity check. [~exact:true] uses strict comparisons
      (rational engine); the default tolerates the field's epsilon. *)
  val check : ?exact:bool -> Types.Make(F).column_schedule -> (unit, violation) result

  val is_valid : ?exact:bool -> Types.Make(F).column_schedule -> bool

  (** Task indices sorted by target completion time (stable: ties by
      index), the canonical completion order used by WF and friends. *)
  val sorted_order : F.t array -> int array

  (** Compact multi-line rendering (columns + allocation matrix). *)
  val to_string : Types.Make(F).column_schedule -> string
end
