(** Algorithm Greedy(σ) (Algorithm 3 of Section V): insert tasks one by
    one; each runs as early and as wide as possible,
    [min(δ_i, available(t))] at every instant, until its volume is
    done. *)

module Make (F : Mwct_field.Field.S) : sig
  (** [run inst sigma] builds the greedy schedule for insertion order
      [sigma] (a permutation of the task indices; raises
      [Invalid_argument] otherwise). The result is a valid column
      schedule over the sorted completion times; with integral [P] and
      [δ_i] all allocations are integers. *)
  val run : Types.Make(F).instance -> int array -> Types.Make(F).column_schedule

  (** Objective [Σ w_i C_i] of [run inst sigma]. *)
  val objective : Types.Make(F).instance -> int array -> F.t
end
