(** Instance construction and elementary per-task quantities
    (Definition 1 of the paper). *)

module Make (F : Mwct_field.Field.S) : sig
  (** Conversion of a spec rational. *)
  val of_rat : Spec.rat -> F.t

  (** Convert a field-neutral {!Spec.t} (validated) into a field
      instance. Raises [Invalid_argument] on invalid specs. *)
  val of_spec : Spec.t -> Types.Make(F).instance

  (** Build directly from field values. *)
  val make : procs:F.t -> Types.Make(F).task list -> Types.Make(F).instance

  (** Task constructor; [weight] defaults to [1]. *)
  val task : ?weight:F.t -> volume:F.t -> delta:F.t -> unit -> Types.Make(F).task

  val num_tasks : Types.Make(F).instance -> int

  (** Structural validity over the field: everything strictly positive,
      [δ_i >= 1]. Deltas above [P] are allowed (they act as [P]). *)
  val validate : Types.Make(F).instance -> (unit, string) result

  (** Total work [Σ V_i]. *)
  val total_volume : Types.Make(F).instance -> F.t

  (** Total weight [Σ w_i]. *)
  val total_weight : Types.Make(F).instance -> F.t

  (** Effective parallelism cap [min δ_i P] of task [k]. *)
  val effective_delta : Types.Make(F).instance -> int -> F.t

  (** Height [h_k = V_k / min(δ_k, P)] (Definition 6). *)
  val height : Types.Make(F).instance -> int -> F.t

  (** Smith ratio [V_k / w_k]. *)
  val smith_ratio : Types.Make(F).instance -> int -> F.t

  (** [sub_instance i volumes] is the paper's subinstance [I[V'_i]]:
      same tasks, modified volumes (zero volumes allowed). *)
  val sub_instance : Types.Make(F).instance -> F.t array -> Types.Make(F).instance

  (** One-line rendering for logs. *)
  val to_string : Types.Make(F).instance -> string
end
