(** Polynomial special cases of Table I: Smith's rule for [δ_i = P]
    (weighted single-machine at speed [P]) and SPT on [P] machines for
    [δ_i = 1] with equal weights. *)

module Make (F : Mwct_field.Field.S) : sig
  (** Optimal [Σ w_i C_i] under the relaxation [δ_i = P]; returns
      [(objective, completion times)]. Equals the squashed-area bound
      [A(I)] by construction. *)
  val smith : Types.Make(F).instance -> F.t * F.t array

  (** Optimal [Σ C_i] under [δ_i = 1] (weights ignored): SPT list
      scheduling. Raises [Invalid_argument] if [P] is not an
      integer. *)
  val spt : Types.Make(F).instance -> F.t * F.t array
end
