(** Theorem 3: constructive equivalence between fractional column
    schedules and integer per-processor schedules.

    [of_columns] lays each column's task areas consecutively over the
    processor×time rectangle (a per-column McNaughton wrap, the
    construction of the paper's Figure 2): every task then holds either
    [⌊d_{i,j}⌋] or [⌈d_{i,j}⌉] processors at every instant.
    [to_columns] is the averaging direction. *)

module Make (F : Mwct_field.Field.S) : sig
  (** Wrap construction. Returns the per-task integer demand profiles
      (for {!Assignment}) and the concrete per-processor Gantt chart of
      the wrap itself. Raises [Invalid_argument] when [P] is not an
      integer or a column overflows it. *)
  val of_columns :
    Types.Make(F).column_schedule -> Types.Make(F).integer_schedule * Types.Make(F).gantt

  (** Averaging direction: collapse integer demands to the column
      schedule with the same completion times. *)
  val to_columns : Types.Make(F).integer_schedule -> Types.Make(F).column_schedule

  (** Check the floor/ceil invariant of Theorem 3 on a wrap output;
      returns the first violating task, or [None]. (Float-based
      comparisons; intended for tests.) *)
  val check_floor_ceil :
    Types.Make(F).column_schedule -> Types.Make(F).integer_schedule -> int option
end
