(** Optimal schedules through linear programming (Corollary 1): for a
    fixed completion order the best schedule is an LP; the global
    optimum enumerates orders. Exact when instantiated with
    rationals — the ground truth of the Section V-A experiments. *)

module Make (F : Mwct_field.Field.S) : sig
  (** Best schedule whose completion order is [pi] ([pi.(j)] finishes
      [j]-th), as [(objective, schedule)]. [None] if the LP is
      infeasible (cannot happen for valid instances). *)
  val optimal_for_order :
    Types.Make(F).instance -> int array -> (F.t * Types.Make(F).column_schedule) option

  (** Global optimum by enumerating all [n!] completion orders;
      guarded to [n <= max_tasks] (default 8, raises
      [Invalid_argument] beyond). *)
  val optimal : ?max_tasks:int -> Types.Make(F).instance -> F.t * Types.Make(F).column_schedule

  (** Best greedy objective and insertion order over all [n!] orders
      (the Section V-A quantity), same guard. *)
  val best_greedy : ?max_tasks:int -> Types.Make(F).instance -> F.t * int array
end
