(** Preemption accounting (Section IV-B).

    For fractional column schedules we count {e allocation changes}: a
    task changes when its (fractional) processor count differs between
    two consecutive positive-length columns in which it is active.
    Starting and finishing do not count, matching the paper's
    convention. Theorem 9: WF schedules have at most [n] changes in
    total.

    Integer-schedule preemption counting lives in {!Assignment}, which
    realizes Theorem 10's [3n] bound. *)

module Make (F : Mwct_field.Field.S) = struct
  module T = Types.Make (F)
  module S = Schedule.Make (F)
  open T

  (** Allocation-change count of a single task: transitions between
      consecutive positive-length columns, within the window from its
      first activity to its completion column, where the allocation
      value differs. The initial rise from zero and the final drop to
      zero are free. *)
  let task_changes (s : column_schedule) i =
    let n = Array.length s.finish in
    let pos =
      let p = ref (n - 1) in
      Array.iteri (fun j t -> if t = i then p := j) s.order;
      !p
    in
    (* Walk positive-length columns up to [pos]; remember the previous
       allocation once the task has started. *)
    let changes = ref 0 in
    let prev = ref None in
    for j = 0 to pos do
      (* Skip zero-length columns, including float near-ties. *)
      if not (F.equal_approx (S.column_length s j) F.zero) then begin
        let a = s.alloc.(i).(j) in
        (match !prev with
        | Some p when F.sign a > 0 && not (F.equal_approx a p) -> incr changes
        | _ -> ());
        if F.sign a > 0 then prev := Some a
        else if Option.is_some !prev then begin
          (* A gap: the task stopped and will restart — both count. *)
          prev := None;
          changes := !changes + 2
        end
      end
    done;
    !changes

  (** Total allocation changes of a schedule (the paper's [N_n]). *)
  let total_changes (s : column_schedule) =
    let n = Array.length s.finish in
    let rec go acc i = if i >= n then acc else go (acc + task_changes s i) (i + 1) in
    go 0 0

  (** Number of changes in the {e available} resource profile (the
      paper's [M_n]): transitions between consecutive positive-length
      columns where the total occupied height differs. *)
  let availability_changes (s : column_schedule) =
    let n = Array.length s.finish in
    let heights =
      Array.init n (fun j ->
          let t = ref F.zero in
          for i = 0 to n - 1 do
            t := F.add !t s.alloc.(i).(j)
          done;
          !t)
    in
    let changes = ref 0 in
    let prev = ref None in
    for j = 0 to n - 1 do
      if not (F.equal_approx (S.column_length s j) F.zero) then begin
        (match !prev with Some p when not (F.equal_approx heights.(j) p) -> incr changes | _ -> ());
        prev := Some heights.(j)
      end
    done;
    !changes
end
