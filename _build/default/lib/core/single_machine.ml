(** Polynomial special cases of Table I.

    - [smith]: when every [δ_i = P] the malleable problem collapses to
      weighted single-machine scheduling at speed [P]; Smith's rule
      (non-decreasing [V_i/w_i]) is optimal [Smith 1956].
    - [spt]: when every [δ_i = 1] and weights are equal, shortest
      processing time first on [P] machines is optimal for [Σ C_i]
      [McNaughton 1959 / conservation arguments]. *)

module Make (F : Mwct_field.Field.S) = struct
  module T = Types.Make (F)
  module I = Instance.Make (F)
  module Ord = Orderings.Make (F)
  open T

  (** Optimal [Σ w_i C_i] under the relaxation [δ_i = P]: run the tasks
      back-to-back in Smith order at speed [P]. Returns the objective
      and the completion times. This equals the squashed-area bound
      [A(I)] by construction. *)
  let smith (inst : instance) : F.t * F.t array =
    let order = Ord.smith inst in
    let n = I.num_tasks inst in
    let c = Array.make n F.zero in
    let t = ref F.zero in
    Array.iter
      (fun i ->
        t := F.add !t (F.div inst.tasks.(i).volume inst.procs);
        c.(i) <- !t)
      order;
    let obj = ref F.zero in
    for i = 0 to n - 1 do
      obj := F.add !obj (F.mul inst.tasks.(i).weight c.(i))
    done;
    (!obj, c)

  (** Optimal [Σ C_i] under [δ_i = 1]: SPT list scheduling on the [P]
      processors (no preemption needed). Returns the objective and the
      completion times. Weights are ignored, as in the Table I row. *)
  let spt (inst : instance) : F.t * F.t array =
    let nb_procs =
      match F.to_float inst.procs with
      | p when Float.is_integer p && p >= 1. -> int_of_float p
      | _ -> invalid_arg "Single_machine.spt: P must be an integer"
    in
    let order = Ord.shortest_volume inst in
    let n = I.num_tasks inst in
    let c = Array.make n F.zero in
    let load = Array.make nb_procs F.zero in
    Array.iter
      (fun i ->
        (* Next machine = the least loaded (SPT round-robin). *)
        let best = ref 0 in
        for m = 1 to nb_procs - 1 do
          if F.compare load.(m) load.(!best) < 0 then best := m
        done;
        load.(!best) <- F.add load.(!best) inst.tasks.(i).volume;
        c.(i) <- load.(!best))
      order;
    let obj = Array.fold_left F.add F.zero c in
    (obj, c)
end
