(** Field-neutral instance descriptions.

    Generators and file formats produce specs with small integer
    rationals; {!Instance.Make.of_spec} converts them into any field.
    Using exact integer fractions (rather than floats) means the same
    instance is represented {e identically} in the float engine and the
    exact rational engine, so cross-engine comparisons are meaningful. *)

(** An exact rational given by two machine integers, [den > 0]. *)
type rat = { num : int; den : int }

type task = {
  volume : rat;  (** total work [V_i > 0] *)
  weight : rat;  (** objective weight [w_i > 0] *)
  delta : int;  (** parallelism cap [δ_i >= 1], in processors *)
}

type t = {
  procs : int;  (** number of identical processors [P >= 1] *)
  tasks : task array;
}

val rat : int -> int -> rat
val rat_of_int : int -> rat

(** [task ~volume ~weight ~delta] with [weight] defaulting to [1]. *)
val task : ?weight:rat -> volume:rat -> delta:int -> unit -> task

val make : procs:int -> task list -> t
val num_tasks : t -> int

(** Structural sanity: positive volumes, weights, deltas, procs.
    Returns an error message for the first violation. *)
val validate : t -> (unit, string) result

(** One-line rendering, e.g. for experiment logs. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit
