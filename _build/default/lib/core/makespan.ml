(** Optimal makespan for malleable work-preserving tasks
    (Table I row [Cmax]; Drozdowski's result, realized here through WF
    in [O(n log n)]).

    With all release dates zero, the optimal makespan is the classical
    lower bound [T* = max(Σ V_i / P, max_i V_i / δ_i)]: giving every
    task the target completion time [T*] makes WF allocate each one a
    constant [V_i / T*] processors, which is feasible precisely at
    [T*]. *)

module Make (F : Mwct_field.Field.S) = struct
  module T = Types.Make (F)
  module I = Instance.Make (F)
  module WF = Water_filling.Make (F)
  open T

  (** The optimal makespan [T*]. *)
  let optimal (inst : instance) : F.t =
    let n = I.num_tasks inst in
    let area = F.div (I.total_volume inst) inst.procs in
    let rec max_height acc i =
      if i >= n then acc else max_height (F.max acc (I.height inst i)) (i + 1)
    in
    max_height area 0

  (** A schedule achieving [T*]: WF with every completion at [T*]. *)
  let schedule (inst : instance) : column_schedule =
    let t_star = optimal inst in
    let times = Array.make (I.num_tasks inst) t_star in
    match WF.build inst times with
    | Ok s -> s
    | Error _ -> invalid_arg "Makespan.schedule: WF rejected the optimal makespan (impossible)"
end
