(** Processor assignment with few preemptions (Lemmas 6/10,
    Theorem 10): processors stick to their task until the task's demand
    drops, so a WF normal form integerized by {!Integerize} incurs at
    most [3n] preemptions. *)

module Make (F : Mwct_field.Field.S) : sig
  (** Map integer demand profiles onto named processors. Raises
      [Invalid_argument] when total demand ever exceeds [P] (invalid
      input). *)
  val assign : Types.Make(F).integer_schedule -> Types.Make(F).gantt

  (** Completion time of each task in a Gantt chart. *)
  val completion_times : Types.Make(F).gantt -> F.t array

  (** Number of preemptions: bookings ending strictly before their
      task's completion. *)
  val preemptions : Types.Make(F).gantt -> int

  (** Sanity: no processor runs two bookings at once. *)
  val no_overlap : Types.Make(F).gantt -> bool

  (** Total booked time per task (equals the volumes for valid
      inputs). *)
  val booked_volume : Types.Make(F).gantt -> F.t array
end
