(** Schedule rendering: ASCII Gantt charts for terminals, SVG for
    reports (the library's analogue of the paper's Figures 2–7). *)

module Make (F : Mwct_field.Field.S) : sig
  (** The letter used for task [t] (['A' + t mod 26]). *)
  val task_letter : int -> char

  (** ASCII Gantt: one row per processor, ['.'] = idle. *)
  val gantt_to_ascii : ?width:int -> Types.Make(F).gantt -> string

  (** ASCII column profile: interval, ending task and allocations per
      column. *)
  val columns_to_ascii : Types.Make(F).column_schedule -> string

  (** SVG Gantt chart (one lane per processor, tooltips on
      bookings). *)
  val gantt_to_svg : ?width:int -> ?lane_height:int -> Types.Make(F).gantt -> string

  (** SVG stacked-band view of a column schedule, with the capacity
      line. *)
  val columns_to_svg : ?width:int -> ?height:int -> Types.Make(F).column_schedule -> string
end
