(** Allocation-change accounting for fractional schedules
    (Section IV-B). A task "changes" when its processor count differs
    between two consecutive positive-length columns in which it is
    active; starting and finishing are free, a gap (stop + restart)
    costs two. Theorem 9: WF normal forms have at most [n] changes in
    total. *)

module Make (F : Mwct_field.Field.S) : sig
  (** Changes of one task. *)
  val task_changes : Types.Make(F).column_schedule -> int -> int

  (** Total changes (the paper's [N_n]). *)
  val total_changes : Types.Make(F).column_schedule -> int

  (** Changes of the {e available} height profile between consecutive
      positive-length columns (the paper's [M_n]). *)
  val availability_changes : Types.Make(F).column_schedule -> int
end
