(** Plain-text instance format:

    {v
    # comments and blank lines are ignored
    procs 4
    task 6 3 4        # volume weight delta
    task 1/2 1 1      # rationals as p/q
    v}

    Volumes and weights are rationals ([p] or [p/q]); [procs] and
    [delta] are positive integers. *)

(** Parse one rational token. *)
val parse_rat : string -> (Spec.rat, string) result

(** Parse a full instance description; the error carries the offending
    line. The result is validated ({!Spec.validate}). *)
val of_string : string -> (Spec.t, string) result

(** Render in the same format (parse ∘ print is the identity). *)
val to_string : Spec.t -> string

(** Read an instance from a file. *)
val load : string -> (Spec.t, string) result
