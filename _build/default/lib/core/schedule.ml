(** Column-based fractional schedules (MWCT-CB-F, Definition 2):
    accessors, the weighted-completion-time objective, and a full
    validity checker used pervasively in tests.

    The validity conditions are exactly those of Definition 2:
    non-decreasing column ends, per-column capacity [Σ_i d_{i,j} <= P],
    per-task caps [d_{i,j} <= δ_i], volume conservation
    [Σ_j d_{i,j}·l_j = V_i], and no allocation after a task's own
    completion column. *)

module Make (F : Mwct_field.Field.S) = struct
  module T = Types.Make (F)
  module I = Instance.Make (F)
  module O = Mwct_field.Field.Ops (F)
  open T

  (** Number of columns (= number of tasks). *)
  let num_columns (s : column_schedule) = Array.length s.finish

  (** [column_start s j] is the left edge of column [j]. *)
  let column_start (s : column_schedule) j = if j = 0 then F.zero else s.finish.(j - 1)

  (** [column_length s j] is [l_j = C_j - C_{j-1}]; may be zero when two
      tasks complete simultaneously. *)
  let column_length (s : column_schedule) j = F.sub s.finish.(j) (column_start s j)

  (** [position s i] is the column at whose end task [i] completes. *)
  let position (s : column_schedule) i =
    let rec go j =
      if j >= Array.length s.order then invalid_arg "Schedule.position: task not in order"
      else if s.order.(j) = i then j
      else go (j + 1)
    in
    go 0

  (** Completion time [C_i] of task [i]. *)
  let completion_time (s : column_schedule) i = s.finish.(position s i)

  (** All completion times, indexed by task. *)
  let completion_times (s : column_schedule) =
    let n = num_columns s in
    let c = Array.make n F.zero in
    Array.iteri (fun j i -> c.(i) <- s.finish.(j)) s.order;
    c

  (** The paper's objective [Σ w_i C_i]. *)
  let weighted_completion_time (s : column_schedule) =
    let c = completion_times s in
    O.sum_up_to (Array.length c) (fun i -> F.mul s.instance.tasks.(i).weight c.(i))

  (** Unweighted [Σ C_i]. *)
  let sum_completion_time (s : column_schedule) =
    O.sum_array (completion_times s)

  (** Makespan [max C_i]. *)
  let makespan (s : column_schedule) =
    let n = num_columns s in
    if n = 0 then F.zero else s.finish.(n - 1)

  (** Volume processed for task [i] (should equal [V_i]). *)
  let processed_volume (s : column_schedule) i =
    O.sum_up_to (num_columns s) (fun j -> F.mul s.alloc.(i).(j) (column_length s j))

  (** Total allocated area [Σ_i Σ_j d_{i,j}·l_j] (equals [Σ V_i] in a
      valid schedule). *)
  let total_area (s : column_schedule) =
    O.sum_up_to (num_columns s) (fun j ->
        let len = column_length s j in
        O.sum_up_to (num_columns s) (fun i -> F.mul s.alloc.(i).(j) len))

  (** Fraction of the [P × makespan] rectangle that is busy. *)
  let utilization (s : column_schedule) =
    let span = makespan s in
    if F.sign span <= 0 then F.zero else F.div (total_area s) (F.mul s.instance.procs span)

  (** Idle processor-time up to the makespan. *)
  let idle_area (s : column_schedule) =
    F.sub (F.mul s.instance.procs (makespan s)) (total_area s)

  type violation =
    | Bad_shape of string
    | Not_sorted of int  (** column whose end precedes its start *)
    | Negative_alloc of int * int
    | Over_delta of int * int
    | Over_capacity of int
    | Late_alloc of int * int  (** allocation after the task's completion column *)
    | Volume_mismatch of int

  let violation_to_string = function
    | Bad_shape m -> "bad shape: " ^ m
    | Not_sorted j -> Printf.sprintf "column %d ends before it starts" j
    | Negative_alloc (i, j) -> Printf.sprintf "task %d has negative allocation in column %d" i j
    | Over_delta (i, j) -> Printf.sprintf "task %d exceeds its delta in column %d" i j
    | Over_capacity j -> Printf.sprintf "column %d exceeds P processors" j
    | Late_alloc (i, j) -> Printf.sprintf "task %d allocated in column %d after its completion" i j
    | Volume_mismatch i -> Printf.sprintf "task %d volume mismatch" i

  (** Full validity check. With [~exact:true] every comparison is
      strict; otherwise the field's approximate comparisons are used
      (needed for the float engine). *)
  let check ?(exact = false) (s : column_schedule) : (unit, violation) result =
    let le a b = if exact then F.compare a b <= 0 else F.leq_approx a b in
    let eq a b = if exact then F.equal a b else F.equal_approx a b in
    let n = I.num_tasks s.instance in
    let exception Bad of violation in
    try
      if Array.length s.order <> n then raise (Bad (Bad_shape "order length"));
      if Array.length s.finish <> n then raise (Bad (Bad_shape "finish length"));
      if Array.length s.alloc <> n then raise (Bad (Bad_shape "alloc rows"));
      Array.iter (fun row -> if Array.length row <> n then raise (Bad (Bad_shape "alloc cols"))) s.alloc;
      (* order must be a permutation *)
      let seen = Array.make n false in
      Array.iter
        (fun i ->
          if i < 0 || i >= n || seen.(i) then raise (Bad (Bad_shape "order not a permutation"));
          seen.(i) <- true)
        s.order;
      (* columns sorted, starting at or after 0 *)
      for j = 0 to n - 1 do
        if not (le (column_start s j) s.finish.(j)) then raise (Bad (Not_sorted j))
      done;
      (* per-column constraints *)
      let positions = Array.make n 0 in
      Array.iteri (fun j i -> positions.(i) <- j) s.order;
      for j = 0 to n - 1 do
        let col_total = ref F.zero in
        for i = 0 to n - 1 do
          let a = s.alloc.(i).(j) in
          if not (le F.zero a) then raise (Bad (Negative_alloc (i, j)));
          if not (le a (I.effective_delta s.instance i)) then raise (Bad (Over_delta (i, j)));
          if j > positions.(i) && F.sign a > 0 && not (eq a F.zero) then raise (Bad (Late_alloc (i, j)));
          col_total := F.add !col_total a
        done;
        (* A zero-length column carries no work; its allocations are
           irrelevant but we still bound them for hygiene. *)
        if not (le !col_total s.instance.procs) then raise (Bad (Over_capacity j))
      done;
      (* volume conservation *)
      for i = 0 to n - 1 do
        if not (eq (processed_volume s i) s.instance.tasks.(i).volume) then raise (Bad (Volume_mismatch i))
      done;
      Ok ()
    with Bad v -> Error v

  (** [is_valid s] is [check] collapsed to a boolean. *)
  let is_valid ?exact s = match check ?exact s with Ok () -> true | Error _ -> false

  (** Sort order for building schedules: sorts task indices by target
      completion time, ties broken by index for determinism. *)
  let sorted_order (times : num array) : int array =
    let idx = Array.init (Array.length times) (fun i -> i) in
    Array.sort
      (fun a b ->
        let c = F.compare times.(a) times.(b) in
        if c <> 0 then c else Stdlib.compare a b)
      idx;
    idx

  (** Render a compact per-column allocation table (tests, demos). *)
  let to_string (s : column_schedule) =
    let n = num_columns s in
    let buf = Buffer.create 256 in
    Buffer.add_string buf "columns:";
    for j = 0 to n - 1 do
      Buffer.add_string buf
        (Printf.sprintf " [%s..%s]->T%d" (F.to_string (column_start s j)) (F.to_string s.finish.(j)) s.order.(j))
    done;
    Buffer.add_char buf '\n';
    for i = 0 to n - 1 do
      Buffer.add_string buf (Printf.sprintf "T%d:" i);
      for j = 0 to n - 1 do
        Buffer.add_string buf (" " ^ F.to_string s.alloc.(i).(j))
      done;
      Buffer.add_char buf '\n'
    done;
    Buffer.contents buf
end
