(** The homogeneous instances of Section V-B: [P = 1], [V_i = w_i = 1],
    fractional rates [δ_i ∈ [1/2, 1]]. Greedy schedules obey a closed
    recurrence; Conjecture 13 states order-reversal symmetry of the
    total completion time. *)

module Make (F : Mwct_field.Field.S) : sig
  (** All [1/2 <= δ_i <= 1]? *)
  val valid_deltas : F.t array -> bool

  (** Completion times of the greedy schedule for [order], by the
      Section V-B recurrence. *)
  val completion_times : F.t array -> int array -> F.t array

  (** Sum of completion times for [order]. *)
  val total : F.t array -> int array -> F.t

  (** [total σ − total (reverse σ)]; zero by Conjecture 13. *)
  val reversal_gap : F.t array -> int array -> F.t

  (** Exhaustive best order. Exponential. *)
  val best_order : F.t array -> F.t * int array

  (** All exhaustively-optimal orders. Exponential. *)
  val optimal_orders : F.t array -> F.t * int array list

  (** The equivalent library instance ([P = 1], [V = w = 1]); its δ
      are fractional, which every algorithm of the library supports. *)
  val to_instance : F.t array -> Types.Make(F).instance

  (** The paper's [n = 5] necessary optimality condition
      [(δ_l − δ_j)(δ_i − δ_m) <= 0]. Raises on other lengths. *)
  val five_task_condition : F.t array -> int array -> bool

  (** The organ-pipe order over delta ranks (largest, 3rd, 5th, …,
      back down …, 4th, 2nd) — the dominant optimal pattern found by
      experiment E3; provably-looking optimal for [n <= 4] and a
      sub-0.4%-loss heuristic beyond (see EXPERIMENTS.md E14). *)
  val organ_pipe : F.t array -> int array
end
