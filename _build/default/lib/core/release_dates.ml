(** Extension: release dates (the [r_i] of Table I's Cmax row, after
    Drozdowski's application of Muntz–Coffman [10]).

    With release dates, schedules are still column-based, but columns
    are delimited by release times as well as completions. For the
    makespan objective the structure is simple enough for an exact LP:
    fix the columns at the distinct release times plus the (variable)
    horizon [T]; only the last column's length depends on [T], so
    minimizing [T] subject to capacity, caps and volume conservation is
    linear. The LP has O(n²) variables — polynomial, in the spirit of
    the O(n²) combinatorial algorithm the paper cites.

    [feasible ~deadline] answers the decision version ("can all tasks
    released at [r_i] finish by [deadline]?"), which also powers a
    maximum-lateness-with-release-dates search. *)

module Make (F : Mwct_field.Field.S) = struct
  module T = Types.Make (F)
  module I = Instance.Make (F)
  module Sx = Mwct_simplex.Simplex.Make (F)
  open T

  (** Distinct sorted release points (always includes 0). *)
  let release_points (releases : F.t array) : F.t list =
    let pts = Array.to_list releases in
    let pts = F.zero :: pts in
    List.sort_uniq F.compare pts

  (* Build the feasibility/optimization LP. [deadline = None] adds a
     variable horizon and minimizes it; [Some d] fixes the horizon. *)
  let build_lp (inst : instance) (releases : F.t array) (deadline : F.t option) =
    let n = I.num_tasks inst in
    if Array.length releases <> n then invalid_arg "Release_dates: releases length mismatch";
    let pts = release_points releases in
    (* Drop release points at or beyond a fixed deadline. *)
    let pts = match deadline with None -> pts | Some d -> List.filter (fun p -> F.compare p d < 0) pts in
    let pts = Array.of_list pts in
    let k = Array.length pts in
    (* Columns 0..k-1; column j spans [pts.(j), pts.(j+1)), the last
       spans [pts.(k-1), T). *)
    let p = Sx.create () in
    let t_var = match deadline with None -> Some (Sx.add_var ~name:"T" p) | Some _ -> None in
    let x = Array.init n (fun i -> Array.init k (fun j -> Sx.add_var ~name:(Printf.sprintf "x_%d_%d" i j) p)) in
    (* Column length terms: fixed length for j < k-1; last column is
       T - pts.(k-1) (or deadline - pts.(k-1)). *)
    let fixed_len j = if j < k - 1 then Some (F.sub pts.(j + 1) pts.(j)) else None in
    let last_start = pts.(k - 1) in
    (* T must not precede the last release point. *)
    (match t_var with
    | Some t -> Sx.add_constraint p [ (t, F.one) ] Sx.Geq last_start
    | None -> ());
    (* Capacity and caps per column. *)
    for j = 0 to k - 1 do
      let cap_terms = ref [] in
      for i = 0 to n - 1 do
        cap_terms := (x.(i).(j), F.one) :: !cap_terms
      done;
      (match (fixed_len j, t_var, deadline) with
      | Some len, _, _ -> Sx.add_constraint p !cap_terms Sx.Leq (F.mul inst.procs len)
      | None, Some t, _ ->
        (* Σ x - P·T <= -P·last_start *)
        Sx.add_constraint p ((t, F.neg inst.procs) :: !cap_terms) Sx.Leq (F.mul inst.procs (F.neg last_start))
      | None, None, Some d -> Sx.add_constraint p !cap_terms Sx.Leq (F.mul inst.procs (F.sub d last_start))
      | None, None, None -> assert false);
      for i = 0 to n - 1 do
        let delta = I.effective_delta inst i in
        (match (fixed_len j, t_var, deadline) with
        | Some len, _, _ -> Sx.add_constraint p [ (x.(i).(j), F.one) ] Sx.Leq (F.mul delta len)
        | None, Some t, _ ->
          Sx.add_constraint p [ (x.(i).(j), F.one); (t, F.neg delta) ] Sx.Leq (F.mul delta (F.neg last_start))
        | None, None, Some d -> Sx.add_constraint p [ (x.(i).(j), F.one) ] Sx.Leq (F.mul delta (F.sub d last_start))
        | None, None, None -> assert false);
        (* No work before the task's release. *)
        if F.compare pts.(j) releases.(i) < 0 && (match fixed_len j with Some _ -> true | None -> false) then begin
          (* Column j starts before r_i. If it also ends at or before
             r_i, the task gets nothing; partial columns cannot happen
             because all r_i are column boundaries. *)
          if F.compare (match fixed_len j with Some l -> F.add pts.(j) l | None -> assert false) releases.(i) <= 0
          then Sx.add_constraint p [ (x.(i).(j), F.one) ] Sx.Leq F.zero
          else assert false
        end
        else if F.compare pts.(j) releases.(i) < 0 then
          (* Last column starting before r_i: impossible since r_i is a
             release point <= last_start. *)
          assert false
      done
    done;
    (* Volumes. *)
    for i = 0 to n - 1 do
      let terms = ref [] in
      for j = 0 to k - 1 do
        terms := (x.(i).(j), F.one) :: !terms
      done;
      Sx.add_constraint p !terms Sx.Eq inst.tasks.(i).volume
    done;
    (match t_var with Some t -> Sx.set_objective p [ (t, F.one) ] | None -> Sx.set_objective p []);
    (p, t_var)

  (** Minimal makespan with release dates (exact over rationals). *)
  let optimal_makespan (inst : instance) (releases : F.t array) : F.t =
    let p, t_var = build_lp inst releases None in
    match (Sx.solve p, t_var) with
    | Sx.Optimal { objective; _ }, Some _ -> objective
    | _ -> invalid_arg "Release_dates.optimal_makespan: LP failed (invalid instance?)"

  (** Can every task, released at [releases.(i)], finish by
      [deadline]? *)
  let feasible (inst : instance) (releases : F.t array) ~(deadline : F.t) : bool =
    if Array.exists (fun r -> F.compare deadline r < 0) releases then false
    else begin
      let p, _ = build_lp inst releases (Some deadline) in
      match Sx.solve p with Sx.Optimal _ -> true | Sx.Infeasible -> false | Sx.Unbounded -> false
    end

  (** Lower bound used in tests: the no-release-dates optimum plus the
      latest release, and each task's own [r_i + V_i/δ_i]. *)
  let makespan_lower_bound (inst : instance) (releases : F.t array) : F.t =
    let module M = Makespan.Make (F) in
    let n = I.num_tasks inst in
    let per_task = ref F.zero in
    for i = 0 to n - 1 do
      per_task := F.max !per_task (F.add releases.(i) (I.height inst i))
    done;
    F.max (M.optimal inst) !per_task
end
