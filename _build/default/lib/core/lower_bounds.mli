(** Lower bounds on the optimal weighted completion time
    (Definitions 5–6 and Lemma 1 of Section III). *)

module Make (F : Mwct_field.Field.S) : sig
  (** Squashed-area bound [A(I)]: the single-machine (speed [P]) Smith
      optimum; ignores the [δ_i]. Zero-volume tasks contribute
      nothing. *)
  val squashed_area : Types.Make(F).instance -> F.t

  (** Height bound [H(I) = Σ w_i V_i / min(δ_i, P)]: the [P = ∞]
      optimum. *)
  val height_bound : Types.Make(F).instance -> F.t

  (** Mixed bound (Lemma 1): [A(I[v1]) + H(I[v2])] for a volume
      subdivision [v1 + v2 = V] (checked; raises [Invalid_argument]
      otherwise). *)
  val mixed : Types.Make(F).instance -> F.t array -> F.t array -> F.t

  (** [max (squashed_area i) (height_bound i)]. *)
  val best : Types.Make(F).instance -> F.t
end
