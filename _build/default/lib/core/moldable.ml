(** Extension: moldable tasks — the weaker model the paper's
    introduction contrasts with malleability.

    A {e moldable} task picks a fixed width [q_i ∈ {1..δ_i}] when it
    starts and keeps it to completion (duration [V_i/q_i], no
    preemption, no reallocation). Scheduling is rigid-rectangle list
    scheduling. Comparing the best moldable schedule against the
    malleable optimum quantifies what malleability buys — the model
    ablation behind experiment E15.

    Minimizing [Σ w_i C_i] for moldable tasks is NP-hard even with the
    widths fixed; this module provides list scheduling for given widths
    and orders, plus small-instance searches (width local search,
    order enumeration). *)

module Make (F : Mwct_field.Field.S) = struct
  module T = Types.Make (F)
  module I = Instance.Make (F)
  module Ord = Orderings.Make (F)
  open T

  (* Availability profile: sorted [(start, avail)] segments, last one
     extends to infinity. Unlike the malleable greedy profile, it is
     NOT monotone (rectangles come and go). *)
  type profile = (F.t * F.t) list

  let initial_profile (inst : instance) : profile = [ (F.zero, inst.procs) ]

  (* Earliest start >= 0 at which [q] processors are free during a
     window of length [d]. *)
  let earliest_fit (profile : profile) ~q ~d : F.t =
    (* Candidate starts are the segment starts; scan each and check the
       window. *)
    let rec avail_at t last = function
      | (s, a) :: rest when F.compare s t <= 0 -> avail_at t a rest
      | _ -> last
    in
    let window_ok t =
      let t_end = F.add t d in
      (* Check the availability on [t, t_end): at t itself and at every
         segment start inside the window. *)
      let ok_at u = F.compare q (avail_at u F.zero profile) <= 0 in
      ok_at t
      && List.for_all
           (fun (s, _) -> if F.compare t s < 0 && F.compare s t_end < 0 then ok_at s else true)
           profile
    in
    let candidates = List.map fst profile in
    let rec first = function
      | [] -> invalid_arg "Moldable.earliest_fit: no feasible start (q > P?)"
      | t :: rest -> if window_ok t then t else first rest
    in
    first candidates

  (* Subtract [q] processors on [t0, t1) from the profile. *)
  let reserve (profile : profile) ~q ~t0 ~t1 : profile =
    let points = List.sort_uniq F.compare (t0 :: t1 :: List.map fst profile) in
    let avail_at t =
      let rec go last = function
        | (s, a) :: rest when F.compare s t <= 0 -> go a rest
        | _ -> last
      in
      match profile with [] -> F.zero | (_, a0) :: rest -> go a0 rest
    in
    let raw =
      List.map
        (fun t ->
          let a = avail_at t in
          if F.compare t0 t <= 0 && F.compare t t1 < 0 then (t, F.sub a q) else (t, a))
        points
    in
    let rec dedup = function
      | (t1', a1) :: (_, a2) :: rest when F.equal a1 a2 -> dedup ((t1', a1) :: rest)
      | x :: rest -> x :: dedup rest
      | [] -> []
    in
    dedup raw

  (** One placed rectangle. *)
  type placement = { task : int; width : int; start : F.t; finish : F.t }

  (** List-schedule with fixed [widths] (per task, clamped to
      [[1, min(δ_i, P)]]) in insertion order [order]. Each task starts
      at the earliest time its width fits. Returns the placements,
      indexed by task. *)
  let schedule (inst : instance) ~(widths : int array) ~(order : int array) : placement array =
    let n = I.num_tasks inst in
    if Array.length widths <> n then invalid_arg "Moldable.schedule: widths length mismatch";
    if Array.length order <> n then invalid_arg "Moldable.schedule: order length mismatch";
    let placements = Array.make n { task = 0; width = 0; start = F.zero; finish = F.zero } in
    let profile = ref (initial_profile inst) in
    Array.iter
      (fun i ->
        let cap = I.effective_delta inst i in
        let w = Stdlib.max 1 widths.(i) in
        let w = if F.compare (F.of_int w) cap > 0 then int_of_float (F.to_float cap) else w in
        let q = F.of_int w in
        let d = F.div inst.tasks.(i).volume q in
        let start = earliest_fit !profile ~q ~d in
        let finish = F.add start d in
        placements.(i) <- { task = i; width = w; start; finish };
        profile := reserve !profile ~q ~t0:start ~t1:finish)
      order;
    placements

  (** [Σ w_i C_i] of a placement set. *)
  let objective (inst : instance) (placements : placement array) : F.t =
    let acc = ref F.zero in
    Array.iteri (fun i p -> acc := F.add !acc (F.mul inst.tasks.(i).weight p.finish)) placements;
    !acc

  let makespan (placements : placement array) : F.t =
    Array.fold_left (fun acc p -> F.max acc p.finish) F.zero placements

  (** Validity: capacity respected at every placement boundary, widths
      within caps, durations consistent. *)
  let check (inst : instance) (placements : placement array) : (unit, string) result =
    let exception Bad of string in
    try
      Array.iteri
        (fun i p ->
          if p.width < 1 then raise (Bad (Printf.sprintf "task %d: width < 1" i));
          if F.compare (F.of_int p.width) (I.effective_delta inst i) > 0 then
            raise (Bad (Printf.sprintf "task %d: width above delta" i));
          let expected = F.div inst.tasks.(i).volume (F.of_int p.width) in
          if not (F.equal_approx (F.sub p.finish p.start) expected) then
            raise (Bad (Printf.sprintf "task %d: wrong duration" i)))
        placements;
      let points =
        List.sort_uniq F.compare
          (List.concat_map (fun p -> [ p.start; p.finish ]) (Array.to_list placements))
      in
      List.iter
        (fun t ->
          let load = ref F.zero in
          Array.iter
            (fun p ->
              if F.compare p.start t <= 0 && F.compare t p.finish < 0 then
                load := F.add !load (F.of_int p.width))
            placements;
          if not (F.leq_approx !load inst.procs) then raise (Bad "capacity exceeded"))
        points;
      Ok ()
    with Bad m -> Error m

  (** Heuristic widths. *)
  let widths_full (inst : instance) =
    Array.init (I.num_tasks inst) (fun i -> int_of_float (F.to_float (I.effective_delta inst i)))

  let widths_one (inst : instance) = Array.make (I.num_tasks inst) 1

  (** Local search on widths for a fixed order: repeatedly try ±1 on
      each task's width, keep improvements, until a fixpoint (at most
      [max_rounds]). *)
  let improve_widths ?(max_rounds = 10) (inst : instance) ~(order : int array) (widths : int array) :
      int array * F.t =
    let n = I.num_tasks inst in
    let best_w = Array.copy widths in
    let best = ref (objective inst (schedule inst ~widths:best_w ~order)) in
    let improved = ref true in
    let rounds = ref 0 in
    while !improved && !rounds < max_rounds do
      improved := false;
      incr rounds;
      for i = 0 to n - 1 do
        List.iter
          (fun dw ->
            let w = best_w.(i) + dw in
            let cap = int_of_float (F.to_float (I.effective_delta inst i)) in
            if w >= 1 && w <= cap then begin
              let saved = best_w.(i) in
              best_w.(i) <- w;
              let v = objective inst (schedule inst ~widths:best_w ~order) in
              if F.compare v !best < 0 then begin
                best := v;
                improved := true
              end
              else best_w.(i) <- saved
            end)
          [ -1; 1 ]
      done
    done;
    (best_w, !best)

  (** Best moldable schedule found: Smith order, three width seeds,
      local search on each. Returns the objective. *)
  let best_heuristic (inst : instance) : F.t =
    let order = Ord.smith inst in
    let seeds = [ widths_full inst; widths_one inst ] in
    List.fold_left
      (fun acc seed ->
        let _, v = improve_widths inst ~order seed in
        F.min acc v)
      (objective inst (schedule inst ~widths:(widths_full inst) ~order))
      seeds
end
