(** Extension: release dates (the [r_i] of Table I's Cmax row).
    Columns are fixed at the release points; only the horizon is
    variable, so minimal makespan and deadline feasibility are linear
    programs (exact over rationals). *)

module Make (F : Mwct_field.Field.S) : sig
  (** Distinct sorted release points, always including [0]. *)
  val release_points : F.t array -> F.t list

  (** Minimal makespan with per-task release dates. *)
  val optimal_makespan : Types.Make(F).instance -> F.t array -> F.t

  (** Can every task, released at [releases.(i)], finish by
      [deadline]? *)
  val feasible : Types.Make(F).instance -> F.t array -> deadline:F.t -> bool

  (** The larger of the no-release-dates [T*] and
      [max_i (r_i + V_i/δ_i)] — a valid lower bound, used in tests. *)
  val makespan_lower_bound : Types.Make(F).instance -> F.t array -> F.t
end
