open Mwct_bigint

type t = { num : Bigint.t; den : Bigint.t (* > 0, coprime with num *) }

let make num den =
  if Bigint.is_zero den then raise Division_by_zero;
  if Bigint.is_zero num then { num = Bigint.zero; den = Bigint.one }
  else begin
    let num, den = if Bigint.sign den < 0 then (Bigint.neg num, Bigint.neg den) else (num, den) in
    let g = Bigint.gcd num den in
    if Bigint.equal g Bigint.one then { num; den } else { num = Bigint.div num g; den = Bigint.div den g }
  end

let zero = { num = Bigint.zero; den = Bigint.one }
let one = { num = Bigint.one; den = Bigint.one }
let of_bigint n = { num = n; den = Bigint.one }
let of_int n = of_bigint (Bigint.of_int n)
let of_q n d = make (Bigint.of_int n) (Bigint.of_int d)
let num t = t.num
let den t = t.den

let add a b =
  make (Bigint.add (Bigint.mul a.num b.den) (Bigint.mul b.num a.den)) (Bigint.mul a.den b.den)

let sub a b =
  make (Bigint.sub (Bigint.mul a.num b.den) (Bigint.mul b.num a.den)) (Bigint.mul a.den b.den)

let mul a b = make (Bigint.mul a.num b.num) (Bigint.mul a.den b.den)

let div a b =
  if Bigint.is_zero b.num then raise Division_by_zero;
  make (Bigint.mul a.num b.den) (Bigint.mul a.den b.num)

let neg a = { a with num = Bigint.neg a.num }
let abs a = { a with num = Bigint.abs a.num }

let inv a =
  if Bigint.is_zero a.num then raise Division_by_zero;
  make a.den a.num

let compare a b = Bigint.compare (Bigint.mul a.num b.den) (Bigint.mul b.num a.den)
let equal a b = Bigint.equal a.num b.num && Bigint.equal a.den b.den
let sign a = Bigint.sign a.num
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b
let is_integer a = Bigint.equal a.den Bigint.one

let floor a =
  let q, r = Bigint.divmod a.num a.den in
  if Bigint.sign r < 0 then Bigint.sub q Bigint.one else q

let ceil a =
  let q, r = Bigint.divmod a.num a.den in
  if Bigint.sign r > 0 then Bigint.add q Bigint.one else q

let to_float a =
  (* Scale so both parts fit comfortably in doubles before dividing. *)
  let nb = Nat.num_bits (Bigint.mag a.num) and db = Nat.num_bits (Bigint.mag a.den) in
  let extra = Stdlib.max 0 (Stdlib.max nb db - 900) in
  if extra = 0 then Bigint.to_float a.num /. Bigint.to_float a.den
  else begin
    let scale_down b = Bigint.make ~sign:(Bigint.sign b) (Nat.shift_right (Bigint.mag b) extra) in
    Bigint.to_float (scale_down a.num) /. Bigint.to_float (scale_down a.den)
  end

let to_string a = if is_integer a then Bigint.to_string a.num else Bigint.to_string a.num ^ "/" ^ Bigint.to_string a.den

let of_float f =
  if Float.is_integer f && Float.abs f < 1e15 then of_bigint (Bigint.of_int (int_of_float f))
  else if not (Float.is_finite f) then invalid_arg "Rational.of_float: not finite"
  else begin
    (* Exact dyadic decomposition: f = m·2^e with m a 53-bit integer. *)
    let m, e = Float.frexp f in
    let mant = Int64.of_float (Float.ldexp m 53) in
    let num = Bigint.of_int (Int64.to_int mant) in
    let exp = e - 53 in
    if exp >= 0 then of_bigint (Bigint.mul num (Bigint.pow (Bigint.of_int 2) exp))
    else make num (Bigint.pow (Bigint.of_int 2) (-exp))
  end

let of_string s =
  match String.index_opt s '/' with
  | None -> of_bigint (Bigint.of_string s)
  | Some i ->
    let n = Bigint.of_string (String.sub s 0 i) in
    let d = Bigint.of_string (String.sub s (i + 1) (String.length s - i - 1)) in
    make n d

let pp fmt a = Format.pp_print_string fmt (to_string a)
let hash a = (Bigint.hash a.num * 31) + Bigint.hash a.den

module Rat_field = struct
  type nonrec t = t

  let zero = zero
  let one = one
  let of_int = of_int
  let of_q = of_q
  let add = add
  let sub = sub
  let mul = mul
  let div = div
  let neg = neg
  let abs = abs
  let compare = compare
  let equal = equal
  let sign = sign
  let min = min
  let max = max
  let to_float = to_float
  let to_string = to_string
  let pp = pp
  let leq_approx a b = compare a b <= 0
  let equal_approx = equal
end
