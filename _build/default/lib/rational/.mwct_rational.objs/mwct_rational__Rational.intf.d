lib/rational/rational.mli: Bigint Format Mwct_bigint Mwct_field
