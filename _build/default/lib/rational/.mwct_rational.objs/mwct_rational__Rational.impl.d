lib/rational/rational.ml: Bigint Float Format Int64 Mwct_bigint Nat Stdlib String
