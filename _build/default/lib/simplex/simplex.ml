module Make (F : Mwct_field.Field.S) = struct
  module O = Mwct_field.Field.Ops (F)

  type var = int
  type relation = Leq | Geq | Eq

  type constr = { coeffs : (var * F.t) list; rel : relation; rhs : F.t }

  type problem = {
    maximize : bool;
    mutable nvars : int;
    mutable names : string list; (* reversed *)
    mutable constraints : constr list; (* reversed *)
    mutable objective : (var * F.t) list;
  }

  type outcome =
    | Optimal of { objective : F.t; values : F.t array; duals : F.t array }
    | Infeasible
    | Unbounded

  let create ?(maximize = false) () =
    { maximize; nvars = 0; names = []; constraints = []; objective = [] }

  let add_var ?name p =
    let v = p.nvars in
    p.nvars <- v + 1;
    let name = match name with Some n -> n | None -> Printf.sprintf "x%d" v in
    p.names <- name :: p.names;
    v

  let num_vars p = p.nvars
  let var_name p v = List.nth p.names (p.nvars - 1 - v)

  let add_constraint p coeffs rel rhs =
    List.iter
      (fun (v, _) -> if v < 0 || v >= p.nvars then invalid_arg "Simplex.add_constraint: unknown variable")
      coeffs;
    p.constraints <- { coeffs; rel; rhs } :: p.constraints

  let set_objective p coeffs =
    List.iter
      (fun (v, _) -> if v < 0 || v >= p.nvars then invalid_arg "Simplex.set_objective: unknown variable")
      coeffs;
    p.objective <- coeffs

  let is_zero x = F.equal_approx x F.zero

  (* Dense tableau in "dictionary" form.

     Layout: columns 0 .. total-1 are structural, slack, then artificial
     variables; column [total] is the right-hand side. Row i of [rows]
     is the equation expressing basic variable [basis.(i)]. [obj] is the
     current reduced-cost row (cost of each column under the current
     basis), [obj_const] the current objective value (negated
     convention: objective = obj_const). *)
  type tableau = {
    rows : F.t array array;
    basis : int array;
    obj : F.t array;
    mutable obj_const : F.t;
    total : int;
  }

  let pivot (t : tableau) ~row ~col =
    let m = Array.length t.rows in
    let piv = t.rows.(row).(col) in
    let prow = t.rows.(row) in
    let width = t.total + 1 in
    (* Normalize the pivot row. *)
    for j = 0 to width - 1 do
      prow.(j) <- F.div prow.(j) piv
    done;
    for i = 0 to m - 1 do
      if i <> row then begin
        let f = t.rows.(i).(col) in
        if not (F.equal f F.zero) then begin
          let r = t.rows.(i) in
          for j = 0 to width - 1 do
            r.(j) <- F.sub r.(j) (F.mul f prow.(j))
          done;
          (* Re-zero the pivot column entry exactly (floats drift). *)
          r.(col) <- F.zero
        end
      end
    done;
    let f = t.obj.(col) in
    if not (F.equal f F.zero) then begin
      for j = 0 to t.total - 1 do
        t.obj.(j) <- F.sub t.obj.(j) (F.mul f prow.(j))
      done;
      t.obj_const <- F.sub t.obj_const (F.mul f prow.(t.total));
      t.obj.(col) <- F.zero
    end;
    t.basis.(row) <- col

  type pivot_rule = Bland | Dantzig

  (* Entering column: Bland = least index with negative reduced cost
     (anti-cycling, the exactness-safe default); Dantzig = most
     negative reduced cost (fewer iterations in practice, can cycle on
     degenerate problems — callers using it get a Bland fallback via
     [solve]'s degeneracy counter... in this implementation we simply
     keep Bland for the guarantee and expose Dantzig for the ablation
     bench). Leaving row: tightest ratio, ties by least basic index. *)
  let rec iterate ?(rule = Bland) ?(budget = max_int) (t : tableau) ~allowed =
    (* A Dantzig run that exhausts its budget (possible cycling on a
       degenerate basis) restarts from the current tableau with Bland,
       which terminates from any basis. *)
    let rule = if budget <= 0 then Bland else rule in
    let entering =
      match rule with
      | Bland ->
        let rec find j =
          if j >= allowed then None
          else if F.compare t.obj.(j) F.zero < 0 && not (is_zero t.obj.(j)) then Some j
          else find (j + 1)
        in
        find 0
      | Dantzig ->
        let best = ref None in
        for j = 0 to allowed - 1 do
          if F.compare t.obj.(j) F.zero < 0 && not (is_zero t.obj.(j)) then begin
            match !best with
            | Some (v, _) when F.compare v t.obj.(j) <= 0 -> ()
            | _ -> best := Some (t.obj.(j), j)
          end
        done;
        Option.map snd !best
    in
    match entering with
    | None -> `Optimal
    | Some col ->
      let m = Array.length t.rows in
      let best = ref None in
      for i = 0 to m - 1 do
        let a = t.rows.(i).(col) in
        if F.compare a F.zero > 0 && not (is_zero a) then begin
          let ratio = F.div t.rows.(i).(t.total) a in
          match !best with
          | None -> best := Some (ratio, i)
          | Some (r, i') ->
            let c = F.compare ratio r in
            if c < 0 || (c = 0 && t.basis.(i) < t.basis.(i')) then best := Some (ratio, i)
        end
      done;
      (match !best with
      | None -> `Unbounded
      | Some (_, row) ->
        pivot t ~row ~col;
        iterate ~rule ~budget:(budget - 1) t ~allowed)

  let solve ?(rule = Bland) p =
    let constraints = List.rev p.constraints in
    let m = List.length constraints in
    let n = p.nvars in
    (* Count slack and artificial columns. *)
    let num_slack = List.length (List.filter (fun c -> c.rel <> Eq) constraints) in
    let total = n + num_slack + m in
    (* Every row gets an artificial variable column (simpler and uniform;
       for Leq rows with non-negative rhs the slack could serve as the
       initial basis, but the artificial is harmless and removed by
       phase 1). *)
    let rows = Array.init m (fun _ -> Array.make (total + 1) F.zero) in
    let basis = Array.make m 0 in
    let flipped = Array.make m false in
    let slack_idx = ref n in
    List.iteri
      (fun i c ->
        let row = rows.(i) in
        (* Accumulate coefficients. *)
        List.iter (fun (v, coef) -> row.(v) <- F.add row.(v) coef) c.coeffs;
        row.(total) <- c.rhs;
        (match c.rel with
        | Leq ->
          row.(!slack_idx) <- F.one;
          incr slack_idx
        | Geq ->
          row.(!slack_idx) <- F.neg F.one;
          incr slack_idx
        | Eq -> ());
        (* Make rhs non-negative (remember the flip for dual
           recovery). *)
        if F.compare row.(total) F.zero < 0 then begin
          flipped.(i) <- true;
          for j = 0 to total do
            row.(j) <- F.neg row.(j)
          done
        end;
        (* Artificial variable for this row. *)
        let art = n + num_slack + i in
        row.(art) <- F.one;
        basis.(i) <- art)
      constraints;
    (* Phase 1: minimize the sum of artificials. Reduced costs: the
       artificial columns have cost 1, others 0; subtract basic rows. *)
    let obj = Array.make total F.zero in
    for j = n + num_slack to total - 1 do
      obj.(j) <- F.one
    done;
    let t = { rows; basis; obj; obj_const = F.zero; total } in
    (* Price out the initial basis (all artificial, cost 1 each). *)
    Array.iteri
      (fun i _ ->
        let r = rows.(i) in
        for j = 0 to total - 1 do
          t.obj.(j) <- F.sub t.obj.(j) r.(j)
        done;
        t.obj_const <- F.sub t.obj_const r.(total))
      rows;
    match iterate ~rule:Bland t ~allowed:total with
    | `Unbounded -> Infeasible (* phase 1 is bounded below by 0; cannot happen *)
    | `Optimal ->
    (* obj_const now holds -(sum of artificials) at optimum. *)
    if not (is_zero t.obj_const) then Infeasible
    else begin
      (* Drive any artificial still in the basis out (degenerate rows). *)
      let struct_cols = n + num_slack in
      Array.iteri
        (fun i b ->
          if b >= struct_cols then begin
            (* Find a non-zero structural entry to pivot on. *)
            let rec find j =
              if j >= struct_cols then None else if not (is_zero rows.(i).(j)) then Some j else find (j + 1)
            in
            match find 0 with
            | Some col -> pivot t ~row:i ~col
            | None -> () (* all-zero row: redundant constraint, leave it *)
          end)
        (Array.copy t.basis);
      (* Phase 2: install the real objective, priced out over the basis. *)
      let sign = if p.maximize then F.neg F.one else F.one in
      let cost = Array.make total F.zero in
      List.iter (fun (v, c) -> cost.(v) <- F.add cost.(v) (F.mul sign c)) p.objective;
      Array.blit cost 0 t.obj 0 total;
      t.obj_const <- F.zero;
      Array.iteri
        (fun i b ->
          if b < total && not (F.equal cost.(b) F.zero) then begin
            let cb = cost.(b) in
            let r = rows.(i) in
            for j = 0 to total - 1 do
              t.obj.(j) <- F.sub t.obj.(j) (F.mul cb r.(j))
            done;
            t.obj_const <- F.sub t.obj_const (F.mul cb r.(total))
          end)
        t.basis;
      (* Artificial columns are forbidden from re-entering. Dantzig can
         cycle on degenerate bases; guard with an iteration budget and
         restart with Bland if it trips. *)
      let budget = match rule with Bland -> max_int | Dantzig -> 100 * (m + total) in
      match iterate ~rule ~budget t ~allowed:struct_cols with
      | `Unbounded -> Unbounded
      | `Optimal ->
        let values = Array.make n F.zero in
        Array.iteri (fun i b -> if b < n then values.(b) <- rows.(i).(total)) t.basis;
        (* Minimization stored sign·c; objective value = -obj_const for
           the transformed problem, restore the user's sense. *)
        let v = F.neg t.obj_const in
        let objective = if p.maximize then F.neg v else v in
        (* Duals: the reduced cost of row i's artificial column is
           -y_i for the transformed (sign-normalized, minimized)
           problem; undo the row flips and the objective sense so that
           strong duality reads [objective = Σ duals·rhs] in the
           user's data. *)
        let duals =
          Array.init m (fun i ->
              let y = F.neg t.obj.(n + num_slack + i) in
              let y = if flipped.(i) then F.neg y else y in
              if p.maximize then F.neg y else y)
        in
        Optimal { objective; values; duals }
    end

  let value_of outcome v =
    match outcome with
    | Optimal { values; _ } -> values.(v)
    | Infeasible | Unbounded -> invalid_arg "Simplex.value_of: not optimal"

  let check_feasible p values ~slack =
    let le a b = if slack then F.leq_approx a b else F.compare a b <= 0 in
    let ok_nonneg = Array.for_all (fun x -> le F.zero x) values in
    ok_nonneg
    && List.for_all
         (fun c ->
           let lhs = O.sum (List.map (fun (v, coef) -> F.mul coef values.(v)) c.coeffs) in
           match c.rel with
           | Leq -> le lhs c.rhs
           | Geq -> le c.rhs lhs
           | Eq -> le lhs c.rhs && le c.rhs lhs)
         (List.rev p.constraints)
end
