lib/simplex/simplex.mli: Mwct_field
