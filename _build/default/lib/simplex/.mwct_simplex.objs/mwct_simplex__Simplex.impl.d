lib/simplex/simplex.ml: Array List Mwct_field Option Printf
