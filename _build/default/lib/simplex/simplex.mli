(** Linear programming by the two-phase primal simplex method,
    functorized over the number field.

    Instantiated with exact rationals this is an {e exact} LP solver —
    Bland's anti-cycling rule guarantees termination — which is what
    makes the Corollary-1 optimum of the paper a usable ground truth for
    the Section V-A experiments. Instantiated with floats it is a fast
    approximate solver for large experiment batches (pivot tolerances
    come from [F.equal_approx]).

    Problems are stated over non-negative variables:
    minimize (or maximize) [c·x] subject to [A x {<=,>=,=} b], [x >= 0].
    This matches the paper's LP, whose variables ([C_i] and [x_{i,j}])
    are all non-negative. *)

module Make (F : Mwct_field.Field.S) : sig
  type var = private int

  (** Mutable problem under construction. *)
  type problem

  type relation = Leq | Geq | Eq

  type outcome =
    | Optimal of { objective : F.t; values : F.t array; duals : F.t array }
        (** [values] is indexed by variable; [objective] is the value
            of the stated objective (even for maximization). [duals]
            has one multiplier per constraint, in insertion order,
            normalized so that strong duality reads
            [objective = Σ_i duals.(i)·rhs_i] on the user's data. *)
    | Infeasible
    | Unbounded

  (** [create ()] is an empty problem (minimization by default). *)
  val create : ?maximize:bool -> unit -> problem

  (** [add_var p] declares a fresh non-negative variable. *)
  val add_var : ?name:string -> problem -> var

  (** Number of variables declared so far. *)
  val num_vars : problem -> int

  val var_name : problem -> var -> string

  (** [add_constraint p coeffs rel rhs] adds [Σ c_i·x_i rel rhs].
      Mentioning the same variable twice accumulates its coefficients. *)
  val add_constraint : problem -> (var * F.t) list -> relation -> F.t -> unit

  (** [set_objective p coeffs] sets the linear objective. *)
  val set_objective : problem -> (var * F.t) list -> unit

  (** Pivot rule for phase 2: [Bland] (default) is anti-cycling and
      exactness-safe; [Dantzig] (most negative reduced cost) usually
      pivots fewer times and falls back to Bland if it exceeds an
      iteration budget on a degenerate basis. Phase 1 always uses
      Bland. *)
  type pivot_rule = Bland | Dantzig

  (** Solve with the two-phase simplex. *)
  val solve : ?rule:pivot_rule -> problem -> outcome

  (** [value_of outcome v] reads one variable from an [Optimal] outcome;
      raises [Invalid_argument] otherwise. *)
  val value_of : outcome -> var -> F.t

  (** [check_feasible p values ~slack] verifies that an assignment
      satisfies every constraint (used in tests and as a paranoia check
      of solver output); [slack] selects approximate comparison. *)
  val check_feasible : problem -> F.t array -> slack:bool -> bool
end
