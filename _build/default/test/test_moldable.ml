(* Tests for the moldable-task extension: rigid list scheduling with
   fixed widths, the width local search, and the dominance of the
   malleable optimum over every moldable schedule. *)

open Test_support
module EF = Support.EF
module Rng = Mwct_util.Rng

let f = Alcotest.(check (float 1e-9))

let test_single_rectangle () =
  let inst = Support.finst (Support.uspec ~procs:4 [ ((8, 1), 2) ]) in
  let p = EF.Moldable.schedule inst ~widths:[| 2 |] ~order:[| 0 |] in
  f "start" 0. p.(0).EF.Moldable.start;
  f "finish = V/q" 4. p.(0).EF.Moldable.finish;
  Alcotest.(check int) "width" 2 p.(0).EF.Moldable.width;
  Alcotest.(check (result unit string)) "valid" (Ok ()) (EF.Moldable.check inst p)

let test_widths_clamped () =
  (* Requested width above delta (and above P) is clamped. *)
  let inst = Support.finst (Support.uspec ~procs:4 [ ((6, 1), 3) ]) in
  let p = EF.Moldable.schedule inst ~widths:[| 99 |] ~order:[| 0 |] in
  Alcotest.(check int) "clamped to delta" 3 p.(0).EF.Moldable.width;
  let p = EF.Moldable.schedule inst ~widths:[| 0 |] ~order:[| 0 |] in
  Alcotest.(check int) "raised to 1" 1 p.(0).EF.Moldable.width

let test_sequentialization () =
  (* P=2: two width-2 rectangles cannot overlap. *)
  let inst = Support.finst (Support.uspec ~procs:2 [ ((4, 1), 2); ((2, 1), 2) ]) in
  let p = EF.Moldable.schedule inst ~widths:[| 2; 2 |] ~order:[| 0; 1 |] in
  f "first [0,2)" 2. p.(0).EF.Moldable.finish;
  f "second starts at 2" 2. p.(1).EF.Moldable.start;
  f "second ends at 3" 3. p.(1).EF.Moldable.finish;
  Alcotest.(check (result unit string)) "valid" (Ok ()) (EF.Moldable.check inst p)

let test_backfill () =
  (* P=3: a width-2 task [0,2), then a width-2 task must wait, but a
     width-1 task fits alongside immediately. *)
  let inst = Support.finst (Support.uspec ~procs:3 [ ((4, 1), 2); ((2, 1), 1) ]) in
  let p = EF.Moldable.schedule inst ~widths:[| 2; 1 |] ~order:[| 0; 1 |] in
  f "width-1 starts at 0" 0. p.(1).EF.Moldable.start;
  Alcotest.(check (result unit string)) "valid" (Ok ()) (EF.Moldable.check inst p)

let test_improve_widths_helps () =
  (* P=2, two tasks delta=2 V=2: full widths serialize (obj = 1+2 = 3),
     which beats the parallel width-1 schedule (2+2 = 4). Width (1,1)
     is a genuine local optimum of the ±1 neighborhood, so the
     multi-seed [best_heuristic] is what must reach 3. *)
  let inst = Support.finst (Support.uspec ~procs:2 [ ((2, 1), 2); ((2, 1), 2) ]) in
  let order = [| 0; 1 |] in
  let _, from_one = EF.Moldable.improve_widths inst ~order (EF.Moldable.widths_one inst) in
  Alcotest.(check bool) "width (1,1) is a local optimum at 4" true (Float.abs (from_one -. 4.) < 1e-9);
  let best = EF.Moldable.best_heuristic inst in
  Alcotest.(check (float 1e-9)) "multi-seed heuristic reaches the serial optimum" 3. best

(* ---------- properties ---------- *)

let gen = QCheck2.Gen.pair (Support.gen_spec ~max_procs:5 ~max_n:5 `Uniform) (QCheck2.Gen.int_bound 1_000_000)

let random_widths rng inst =
  Array.init
    (Array.length inst.EF.Types.tasks)
    (fun i -> 1 + Rng.int rng (int_of_float (EF.Instance.effective_delta inst i)))

let prop_schedules_valid =
  QCheck2.Test.make ~name:"moldable schedules are valid" ~count:200
    ~print:(fun (s, _) -> Support.print_spec s)
    gen
    (fun (spec, seed) ->
      let inst = Support.finst spec in
      let rng = Rng.create seed in
      let n = Array.length inst.EF.Types.tasks in
      let widths = random_widths rng inst in
      let order = EF.Orderings.random rng n in
      match EF.Moldable.check inst (EF.Moldable.schedule inst ~widths ~order) with
      | Ok () -> true
      | Error _ -> false)

let prop_malleable_dominates =
  QCheck2.Test.make ~name:"malleable optimum <= any moldable schedule" ~count:60
    ~print:(fun (s, _) -> Support.print_spec s)
    QCheck2.Gen.(pair (Support.gen_spec ~max_procs:4 ~max_n:4 `Uniform) (int_bound 1_000_000))
    (fun (spec, seed) ->
      let inst = Support.finst spec in
      let rng = Rng.create seed in
      let n = Array.length inst.EF.Types.tasks in
      let widths = random_widths rng inst in
      let order = EF.Orderings.random rng n in
      let mold = EF.Moldable.objective inst (EF.Moldable.schedule inst ~widths ~order) in
      let opt, _ = EF.Lp_schedule.optimal inst in
      opt <= mold +. 1e-6)

let prop_local_search_improves =
  QCheck2.Test.make ~name:"width local search never worsens the seed" ~count:100
    ~print:(fun (s, _) -> Support.print_spec s)
    gen
    (fun (spec, seed) ->
      let inst = Support.finst spec in
      let rng = Rng.create seed in
      let n = Array.length inst.EF.Types.tasks in
      let order = EF.Orderings.random rng n in
      let seed_w = random_widths rng inst in
      let before = EF.Moldable.objective inst (EF.Moldable.schedule inst ~widths:seed_w ~order) in
      let _, after = EF.Moldable.improve_widths inst ~order seed_w in
      after <= before +. 1e-9)

let prop_makespan_above_malleable =
  QCheck2.Test.make ~name:"moldable makespan >= malleable T*" ~count:150
    ~print:(fun (s, _) -> Support.print_spec s)
    gen
    (fun (spec, seed) ->
      let inst = Support.finst spec in
      let rng = Rng.create seed in
      let n = Array.length inst.EF.Types.tasks in
      let widths = random_widths rng inst in
      let order = EF.Orderings.random rng n in
      EF.Moldable.makespan (EF.Moldable.schedule inst ~widths ~order)
      >= EF.Makespan.optimal inst -. 1e-6)

let () =
  let q tests = List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests in
  Alcotest.run "moldable"
    [
      ( "unit",
        [
          Alcotest.test_case "single rectangle" `Quick test_single_rectangle;
          Alcotest.test_case "width clamping" `Quick test_widths_clamped;
          Alcotest.test_case "sequentialization" `Quick test_sequentialization;
          Alcotest.test_case "backfill" `Quick test_backfill;
          Alcotest.test_case "local search" `Quick test_improve_widths_helps;
        ] );
      ( "properties",
        q
          [
            prop_schedules_valid;
            prop_malleable_dominates;
            prop_local_search_improves;
            prop_makespan_above_malleable;
          ] );
    ]
