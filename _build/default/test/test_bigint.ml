(* Tests for the arbitrary-precision substrate: Nat, Bigint, Rational.
   Strategy: property tests against OCaml's native int arithmetic on
   moderate values, plus hand-picked large-value cases that exercise
   multi-limb code paths (carries, Knuth division, gcd). *)

open Mwct_bigint
module Q = Mwct_rational.Rational

let nat = Alcotest.testable (Fmt.of_to_string Nat.to_string) Nat.equal
let bigint = Alcotest.testable (Fmt.of_to_string Bigint.to_string) Bigint.equal
let rational = Alcotest.testable (Fmt.of_to_string Q.to_string) Q.equal

(* ---------- Nat unit tests ---------- *)

let test_nat_basic () =
  Alcotest.(check nat) "0 + 0" Nat.zero (Nat.add Nat.zero Nat.zero);
  Alcotest.(check nat) "1 + 1 = 2" Nat.two (Nat.add Nat.one Nat.one);
  Alcotest.(check (option int)) "to_int round trip" (Some 123456789) (Nat.to_int (Nat.of_int 123456789));
  Alcotest.(check string) "to_string zero" "0" (Nat.to_string Nat.zero);
  Alcotest.(check string) "to_string small" "42" (Nat.to_string (Nat.of_int 42));
  Alcotest.(check bool) "is_zero zero" true (Nat.is_zero Nat.zero);
  Alcotest.(check bool) "is_zero one" false (Nat.is_zero Nat.one)

let test_nat_large_decimal () =
  let s = "123456789012345678901234567890123456789012345678901234567890" in
  Alcotest.(check string) "decimal round trip" s (Nat.to_string (Nat.of_string s));
  let a = Nat.of_string s in
  let b = Nat.of_string "999999999999999999999999999999" in
  let product = Nat.mul a b in
  (* (a * b) / b = a with remainder 0. *)
  let q, r = Nat.divmod product b in
  Alcotest.(check nat) "mul/div round trip quotient" a q;
  Alcotest.(check nat) "mul/div round trip remainder" Nat.zero r

let test_nat_pow () =
  Alcotest.(check string) "2^100"
    "1267650600228229401496703205376"
    (Nat.to_string (Nat.pow Nat.two 100));
  Alcotest.(check nat) "x^0 = 1" Nat.one (Nat.pow (Nat.of_int 7919) 0);
  Alcotest.(check string) "10^30 = shift in decimal"
    ("1" ^ String.make 30 '0')
    (Nat.to_string (Nat.pow Nat.ten 30))

let test_nat_shift () =
  let a = Nat.of_string "987654321987654321987654321" in
  Alcotest.(check nat) "shift left/right cancel" a (Nat.shift_right (Nat.shift_left a 67) 67);
  Alcotest.(check nat) "shift_left = mul 2^k" (Nat.mul a (Nat.pow Nat.two 67)) (Nat.shift_left a 67);
  Alcotest.(check nat) "shift_right drops floor" (Nat.div a (Nat.pow Nat.two 13)) (Nat.shift_right a 13)

let test_nat_division_edge () =
  (* Divisor that forces the add-back branch of Knuth D is hard to hit at
     random; at least pin down the classical tricky shape. *)
  let b30 = Nat.pow Nat.two 30 in
  let u = Nat.sub (Nat.mul b30 (Nat.mul b30 b30)) Nat.one in
  (* u = 2^90 - 1 *)
  let v = Nat.sub (Nat.mul b30 b30) Nat.one in
  (* v = 2^60 - 1; u = v * 2^30 + (2^30 - 1) ... check identity instead *)
  let q, r = Nat.divmod u v in
  Alcotest.(check nat) "identity u = q*v + r" u (Nat.add (Nat.mul q v) r);
  Alcotest.(check bool) "remainder < divisor" true (Nat.compare r v < 0);
  (* Division by a single-limb divisor. *)
  let q, r = Nat.divmod u (Nat.of_int 1000003) in
  Alcotest.(check nat) "single limb identity" u (Nat.add (Nat.mul q (Nat.of_int 1000003)) r)

let test_nat_gcd () =
  let a = Nat.mul (Nat.of_string "123456789123456789") (Nat.of_int 600851475) in
  let b = Nat.mul (Nat.of_string "987654321987654321") (Nat.of_int 600851475) in
  let g = Nat.gcd a b in
  Alcotest.(check nat) "gcd divides a" Nat.zero (Nat.rem a g);
  Alcotest.(check nat) "gcd divides b" Nat.zero (Nat.rem b g);
  Alcotest.(check nat) "gcd with zero" a (Nat.gcd a Nat.zero)

let test_nat_num_bits () =
  Alcotest.(check int) "bits of 0" 0 (Nat.num_bits Nat.zero);
  Alcotest.(check int) "bits of 1" 1 (Nat.num_bits Nat.one);
  Alcotest.(check int) "bits of 2^100" 101 (Nat.num_bits (Nat.pow Nat.two 100));
  Alcotest.(check int) "bits of 2^100-1" 100 (Nat.num_bits (Nat.sub (Nat.pow Nat.two 100) Nat.one))

let test_nat_to_float () =
  Alcotest.(check (float 1e-6)) "to_float small" 123456.0 (Nat.to_float (Nat.of_int 123456));
  let x = Nat.to_float (Nat.pow Nat.two 100) in
  Alcotest.(check (float 1e20)) "to_float 2^100" (2. ** 100.) x

(* ---------- Nat property tests ---------- *)

let small_nat_gen = QCheck2.Gen.map Nat.of_int (QCheck2.Gen.int_bound 1_000_000_000)
let int_pair = QCheck2.Gen.pair (QCheck2.Gen.int_bound 1_000_000_000) (QCheck2.Gen.int_bound 1_000_000_000)

let prop_add_matches_int =
  QCheck2.Test.make ~name:"nat add matches int" ~count:500 int_pair (fun (a, b) ->
      Nat.to_int (Nat.add (Nat.of_int a) (Nat.of_int b)) = Some (a + b))

let prop_mul_matches_int =
  QCheck2.Test.make ~name:"nat mul matches int" ~count:500
    (QCheck2.Gen.pair (QCheck2.Gen.int_bound 2_000_000) (QCheck2.Gen.int_bound 2_000_000))
    (fun (a, b) -> Nat.to_int (Nat.mul (Nat.of_int a) (Nat.of_int b)) = Some (a * b))

let prop_divmod_matches_int =
  QCheck2.Test.make ~name:"nat divmod matches int" ~count:500
    (QCheck2.Gen.pair (QCheck2.Gen.int_bound 1_000_000_000) (QCheck2.Gen.int_range 1 100_000))
    (fun (a, b) ->
      let q, r = Nat.divmod (Nat.of_int a) (Nat.of_int b) in
      Nat.to_int q = Some (a / b) && Nat.to_int r = Some (a mod b))

let prop_mul_commutative =
  QCheck2.Test.make ~name:"nat mul commutative (multi-limb)" ~count:200
    (QCheck2.Gen.pair small_nat_gen small_nat_gen)
    (fun (a, b) ->
      let a = Nat.mul a (Nat.pow Nat.two 75) in
      Nat.equal (Nat.mul a b) (Nat.mul b a))

let prop_division_identity =
  QCheck2.Test.make ~name:"nat division identity on large operands" ~count:200
    (QCheck2.Gen.quad (QCheck2.Gen.int_bound 1_000_000_000) (QCheck2.Gen.int_bound 1_000_000_000)
       (QCheck2.Gen.int_bound 1_000_000_000)
       (QCheck2.Gen.int_range 1 1_000_000_000))
    (fun (a, b, c, d) ->
      (* u spans ~4 limbs, v spans ~2 limbs. *)
      let u = Nat.add (Nat.mul (Nat.of_int a) (Nat.pow Nat.two 64)) (Nat.mul (Nat.of_int b) (Nat.of_int c)) in
      let v = Nat.add (Nat.mul (Nat.of_int d) (Nat.pow Nat.two 31)) (Nat.of_int c) in
      let q, r = Nat.divmod u v in
      Nat.equal u (Nat.add (Nat.mul q v) r) && Nat.compare r v < 0)

let prop_karatsuba_matches_schoolbook =
  (* Operands large enough (hundreds of limbs) to exercise the
     Karatsuba path, including asymmetric sizes. *)
  QCheck2.Test.make ~name:"karatsuba = schoolbook on large operands" ~count:30
    (QCheck2.Gen.triple (QCheck2.Gen.int_bound 1_000_000_000) (QCheck2.Gen.int_range 200 350)
       (QCheck2.Gen.int_range 200 600))
    (fun (seed, la, lb) ->
      (* Deterministic pseudo-random limb patterns from the seed. *)
      let gen_nat len salt =
        let x = ref (Nat.of_int ((seed lxor salt) + 1)) in
        for i = 1 to len do
          x := Nat.add_int (Nat.mul_int !x ((seed + (i * salt)) land 0x3FFFFFF lor 1)) (i land 0xFFFF)
        done;
        !x
      in
      let a = gen_nat la 7919 and b = gen_nat lb 104729 in
      Nat.equal (Nat.mul a b) (Nat.mul_schoolbook a b))

let test_karatsuba_edge_cases () =
  let big = Nat.pow Nat.two 4000 in
  (* power-of-two operands with many zero limbs *)
  Alcotest.(check nat) "2^4000 * 2^4000 = 2^8000" (Nat.pow Nat.two 8000) (Nat.mul big big);
  Alcotest.(check nat) "big * 0" Nat.zero (Nat.mul big Nat.zero);
  Alcotest.(check nat) "big * 1" big (Nat.mul big Nat.one);
  (* asymmetric: huge times single limb *)
  Alcotest.(check nat) "big * 3 = big + big + big" (Nat.add big (Nat.add big big)) (Nat.mul big (Nat.of_int 3))

let prop_string_roundtrip =
  QCheck2.Test.make ~name:"nat decimal round trip" ~count:200
    (QCheck2.Gen.pair (QCheck2.Gen.int_bound 1_000_000_000) (QCheck2.Gen.int_bound 80))
    (fun (a, k) ->
      let x = Nat.mul (Nat.of_int a) (Nat.pow Nat.ten k) in
      Nat.equal x (Nat.of_string (Nat.to_string x)))

(* ---------- Bigint tests ---------- *)

let test_bigint_signs () =
  let a = Bigint.of_int (-17) and b = Bigint.of_int 5 in
  Alcotest.(check (option int)) "div trunc" (Some (-3)) (Bigint.to_int (Bigint.div a b));
  Alcotest.(check (option int)) "rem sign" (Some (-2)) (Bigint.to_int (Bigint.rem a b));
  Alcotest.(check bigint) "neg involutive" a (Bigint.neg (Bigint.neg a));
  Alcotest.(check (option int)) "min_int round trip" (Some min_int) (Bigint.to_int (Bigint.of_int min_int));
  Alcotest.(check (option int)) "max_int round trip" (Some max_int) (Bigint.to_int (Bigint.of_int max_int))

let test_bigint_pow_parity () =
  Alcotest.(check (option int)) "(-2)^3" (Some (-8)) (Bigint.to_int (Bigint.pow (Bigint.of_int (-2)) 3));
  Alcotest.(check (option int)) "(-2)^4" (Some 16) (Bigint.to_int (Bigint.pow (Bigint.of_int (-2)) 4))

let gen_small_signed = QCheck2.Gen.int_range (-1_000_000_000) 1_000_000_000

let prop_bigint_ring =
  QCheck2.Test.make ~name:"bigint ring ops match int" ~count:500
    (QCheck2.Gen.triple gen_small_signed gen_small_signed gen_small_signed)
    (fun (a, b, c) ->
      let ba = Bigint.of_int a and bb = Bigint.of_int b and bc = Bigint.of_int c in
      Bigint.to_int (Bigint.add ba (Bigint.mul bb bc)) = Some (a + (b * c))
      && Bigint.to_int (Bigint.sub ba bb) = Some (a - b))

let prop_bigint_divmod =
  QCheck2.Test.make ~name:"bigint divmod matches int (trunc)" ~count:500
    (QCheck2.Gen.pair gen_small_signed (QCheck2.Gen.int_range 1 1_000_000))
    (fun (a, b) ->
      let b = if a land 1 = 0 then b else -b in
      let q, r = Bigint.divmod (Bigint.of_int a) (Bigint.of_int b) in
      Bigint.to_int q = Some (a / b) && Bigint.to_int r = Some (a mod b))

(* ---------- Rational tests ---------- *)

let test_rational_normalization () =
  Alcotest.(check rational) "6/4 = 3/2" (Q.of_q 3 2) (Q.of_q 6 4);
  Alcotest.(check rational) "-6/-4 = 3/2" (Q.of_q 3 2) (Q.of_q (-6) (-4));
  Alcotest.(check rational) "6/-4 = -3/2" (Q.of_q (-3) 2) (Q.of_q 6 (-4));
  Alcotest.(check string) "print integer" "5" (Q.to_string (Q.of_q 10 2));
  Alcotest.(check string) "print fraction" "-3/2" (Q.to_string (Q.of_q 6 (-4)));
  Alcotest.(check rational) "parse fraction" (Q.of_q 22 7) (Q.of_string "22/7")

let test_rational_arith () =
  Alcotest.(check rational) "1/3 + 1/6 = 1/2" (Q.of_q 1 2) (Q.add (Q.of_q 1 3) (Q.of_q 1 6));
  Alcotest.(check rational) "2/3 * 3/4 = 1/2" (Q.of_q 1 2) (Q.mul (Q.of_q 2 3) (Q.of_q 3 4));
  Alcotest.(check rational) "div inverse" (Q.of_q 1 2) (Q.div (Q.of_q 1 3) (Q.of_q 2 3));
  Alcotest.check Alcotest.bool "1/3 < 1/2" true (Q.compare (Q.of_q 1 3) (Q.of_q 1 2) < 0);
  Alcotest.(check (float 1e-12)) "to_float 1/3" (1. /. 3.) (Q.to_float (Q.of_q 1 3))

let test_rational_floor_ceil () =
  Alcotest.(check bigint) "floor 7/2" (Bigint.of_int 3) (Q.floor (Q.of_q 7 2));
  Alcotest.(check bigint) "ceil 7/2" (Bigint.of_int 4) (Q.ceil (Q.of_q 7 2));
  Alcotest.(check bigint) "floor -7/2" (Bigint.of_int (-4)) (Q.floor (Q.of_q (-7) 2));
  Alcotest.(check bigint) "ceil -7/2" (Bigint.of_int (-3)) (Q.ceil (Q.of_q (-7) 2));
  Alcotest.(check bigint) "floor integer" (Bigint.of_int 5) (Q.floor (Q.of_int 5));
  Alcotest.(check bigint) "ceil integer" (Bigint.of_int 5) (Q.ceil (Q.of_int 5))

let test_of_float () =
  Alcotest.(check rational) "0.5" (Q.of_q 1 2) (Q.of_float 0.5);
  Alcotest.(check rational) "-0.75" (Q.of_q (-3) 4) (Q.of_float (-0.75));
  Alcotest.(check rational) "integers" (Q.of_int 42) (Q.of_float 42.);
  Alcotest.(check rational) "0" Q.zero (Q.of_float 0.);
  (* 0.1 is NOT 1/10 in binary: the exact value differs. *)
  Alcotest.(check bool) "0.1 is not 1/10" false (Q.equal (Q.of_float 0.1) (Q.of_q 1 10));
  Alcotest.(check (float 0.)) "roundtrip 0.1 exactly" 0.1 (Q.to_float (Q.of_float 0.1));
  Alcotest.check_raises "nan rejected" (Invalid_argument "Rational.of_float: not finite") (fun () ->
      ignore (Q.of_float Float.nan))

let prop_of_float_roundtrip =
  QCheck2.Test.make ~name:"of_float/to_float is the identity on doubles" ~count:300
    QCheck2.Gen.(map (fun (a, b) -> float_of_int a /. float_of_int (abs b + 1)) (pair int int))
    (fun f -> Float.is_finite f = false || Q.to_float (Q.of_float f) = f)

let gen_q =
  QCheck2.Gen.map
    (fun (n, d) -> Q.of_q n d)
    (QCheck2.Gen.pair (QCheck2.Gen.int_range (-10000) 10000) (QCheck2.Gen.int_range 1 10000))

let prop_field_laws =
  QCheck2.Test.make ~name:"rational field laws" ~count:300 (QCheck2.Gen.triple gen_q gen_q gen_q)
    (fun (a, b, c) ->
      Q.equal (Q.add a (Q.add b c)) (Q.add (Q.add a b) c)
      && Q.equal (Q.mul a (Q.add b c)) (Q.add (Q.mul a b) (Q.mul a c))
      && Q.equal (Q.add a (Q.neg a)) Q.zero
      && (Q.sign a = 0 || Q.equal (Q.mul a (Q.inv a)) Q.one))

let prop_compare_antisym =
  QCheck2.Test.make ~name:"rational compare total order" ~count:300 (QCheck2.Gen.pair gen_q gen_q)
    (fun (a, b) ->
      Q.compare a b = -Q.compare b a
      && (Q.compare a b <> 0 || Q.equal a b)
      && Q.to_float (Q.sub a b) *. float_of_int (Q.compare a b) >= -1e-9)

let prop_floor_ceil =
  QCheck2.Test.make ~name:"rational floor/ceil bracket" ~count:300 gen_q (fun a ->
      let f = Q.of_bigint (Q.floor a) and c = Q.of_bigint (Q.ceil a) in
      Q.compare f a <= 0 && Q.compare a c <= 0 && Q.compare (Q.sub c f) Q.one <= 0)

let () =
  let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests in
  Alcotest.run "bigint"
    [
      ( "nat",
        [
          Alcotest.test_case "basic" `Quick test_nat_basic;
          Alcotest.test_case "large decimal" `Quick test_nat_large_decimal;
          Alcotest.test_case "pow" `Quick test_nat_pow;
          Alcotest.test_case "shift" `Quick test_nat_shift;
          Alcotest.test_case "division edge" `Quick test_nat_division_edge;
          Alcotest.test_case "gcd" `Quick test_nat_gcd;
          Alcotest.test_case "num_bits" `Quick test_nat_num_bits;
          Alcotest.test_case "karatsuba edges" `Quick test_karatsuba_edge_cases;
          Alcotest.test_case "to_float" `Quick test_nat_to_float;
        ] );
      ( "nat-props",
        qsuite
          [
            prop_add_matches_int;
            prop_mul_matches_int;
            prop_divmod_matches_int;
            prop_mul_commutative;
            prop_division_identity;
            prop_karatsuba_matches_schoolbook;
            prop_string_roundtrip;
          ] );
      ( "bigint",
        [
          Alcotest.test_case "signs" `Quick test_bigint_signs;
          Alcotest.test_case "pow parity" `Quick test_bigint_pow_parity;
        ] );
      ("bigint-props", qsuite [ prop_bigint_ring; prop_bigint_divmod ]);
      ( "rational",
        [
          Alcotest.test_case "normalization" `Quick test_rational_normalization;
          Alcotest.test_case "arithmetic" `Quick test_rational_arith;
          Alcotest.test_case "floor/ceil" `Quick test_rational_floor_ceil;
          Alcotest.test_case "of_float" `Quick test_of_float;
        ] );
      ( "rational-props",
        qsuite [ prop_field_laws; prop_compare_antisym; prop_floor_ceil; prop_of_float_roundtrip ] );
    ]
