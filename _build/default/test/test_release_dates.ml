(* Tests for the release-dates extension (Cmax with r_i, the Table I
   row generalization): LP correctness against hand-computed cases,
   reduction to the closed-form T* when all releases are zero, lower
   bounds, and feasibility monotonicity. *)

open Test_support
module EF = Support.EF
module EQ = Support.EQ
module Q = Support.Q
module Rng = Mwct_util.Rng

let f = Alcotest.(check (float 1e-6))

let test_zero_releases_reduce () =
  let spec = Support.uspec ~procs:2 [ ((4, 1), 1); ((2, 1), 2) ] in
  let inst = Support.finst spec in
  let zeros = [| 0.; 0. |] in
  f "equals closed-form T*" (EF.Makespan.optimal inst) (EF.Release_dates.optimal_makespan inst zeros)

let test_late_release_dominates () =
  (* P=1, one unit task released at 10: makespan 11. *)
  let spec = Support.uspec ~procs:1 [ ((1, 1), 1) ] in
  let inst = Support.finst spec in
  f "r + V/delta" 11. (EF.Release_dates.optimal_makespan inst [| 10. |])

let test_hand_two_tasks () =
  (* P=1; T0: V=2 released 0; T1: V=1 released 1. Total work 3,
     capacity 1: T* = 3 (no idle needed: T0 runs [0,1] and [2,3] or
     any split; T1 [1,2]). *)
  let spec = Support.uspec ~procs:1 [ ((2, 1), 1); ((1, 1), 1) ] in
  let inst = Support.finst spec in
  f "packed" 3. (EF.Release_dates.optimal_makespan inst [| 0.; 1. |]);
  (* Same but T1 released at 5: idle [2,5]; T* = 6. *)
  f "forced idle" 6. (EF.Release_dates.optimal_makespan inst [| 0.; 5. |])

let test_delta_binds_after_release () =
  (* P=4; T0: V=8 delta=2 released at 1: T* = 1 + 8/2 = 5. *)
  let spec = Support.uspec ~procs:4 [ ((8, 1), 2) ] in
  let inst = Support.finst spec in
  f "release + height" 5. (EF.Release_dates.optimal_makespan inst [| 1. |])

let test_feasibility () =
  let spec = Support.uspec ~procs:1 [ ((2, 1), 1); ((1, 1), 1) ] in
  let inst = Support.finst spec in
  let r = [| 0.; 1. |] in
  Alcotest.(check bool) "feasible at T*" true (EF.Release_dates.feasible inst r ~deadline:3.);
  Alcotest.(check bool) "infeasible below" false (EF.Release_dates.feasible inst r ~deadline:2.9);
  Alcotest.(check bool) "deadline before a release" false (EF.Release_dates.feasible inst r ~deadline:0.5)

let test_exact_release_dates () =
  let spec = Support.uspec ~procs:2 [ ((3, 1), 2); ((1, 1), 1) ] in
  let inst = Support.qinst spec in
  let r = [| Q.zero; Q.of_q 1 2 |] in
  let t = EQ.Release_dates.optimal_makespan inst r in
  (* Work 4 on P=2 = 2; T1 needs 1/2 + 1 = 3/2; area binds: exactly 2. *)
  Alcotest.(check string) "exact optimum 2" "2" (Q.to_string t)

(* ---------- properties ---------- *)

let gen = QCheck2.Gen.pair (Support.gen_spec ~max_procs:4 ~max_n:4 `Uniform) (QCheck2.Gen.int_bound 1_000_000)

let releases_of rng n = Array.init n (fun _ -> float_of_int (Rng.dyadic rng ~den:8) /. 8.)

let prop_above_lower_bound =
  QCheck2.Test.make ~name:"optimum above the lower bound, tight without releases" ~count:80
    ~print:(fun (s, _) -> Support.print_spec s)
    gen
    (fun (spec, seed) ->
      let inst = Support.finst spec in
      let n = Array.length inst.EF.Types.tasks in
      let r = releases_of (Rng.create seed) n in
      let t = EF.Release_dates.optimal_makespan inst r in
      let lb = EF.Release_dates.makespan_lower_bound inst r in
      t >= lb -. 1e-6)

let prop_monotone_in_releases =
  QCheck2.Test.make ~name:"delaying releases never helps" ~count:80
    ~print:(fun (s, _) -> Support.print_spec s)
    gen
    (fun (spec, seed) ->
      let inst = Support.finst spec in
      let n = Array.length inst.EF.Types.tasks in
      let r = releases_of (Rng.create seed) n in
      let t0 = EF.Release_dates.optimal_makespan inst (Array.make n 0.) in
      let t1 = EF.Release_dates.optimal_makespan inst r in
      let t2 = EF.Release_dates.optimal_makespan inst (Array.map (fun x -> 2. *. x) r) in
      t0 <= t1 +. 1e-6 && t1 <= t2 +. 1e-6)

let prop_feasibility_matches_optimum =
  QCheck2.Test.make ~name:"feasible exactly from the optimum on" ~count:60
    ~print:(fun (s, _) -> Support.print_spec s)
    gen
    (fun (spec, seed) ->
      let inst = Support.finst spec in
      let n = Array.length inst.EF.Types.tasks in
      let r = releases_of (Rng.create seed) n in
      let t = EF.Release_dates.optimal_makespan inst r in
      EF.Release_dates.feasible inst r ~deadline:(t +. 1e-6)
      && not (EF.Release_dates.feasible inst r ~deadline:(t *. 0.99 -. 1e-6)))

let prop_simulator_respects_optimum =
  (* The ncv simulator with arrivals can never beat the clairvoyant
     optimal makespan. *)
  QCheck2.Test.make ~name:"ncv makespan >= optimal makespan with releases" ~count:60
    ~print:(fun (s, _) -> Support.print_spec s)
    gen
    (fun (spec, seed) ->
      let inst = Support.finst spec in
      let n = Array.length inst.EF.Types.tasks in
      let r = releases_of (Rng.create seed) n in
      let t_opt = EF.Release_dates.optimal_makespan inst r in
      let module Sim = Mwct_ncv.Simulator.Float in
      let tr = Sim.run ~releases:r inst Sim.P.Wdeq in
      Sim.makespan tr >= t_opt -. 1e-6)

let () =
  let q tests = List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests in
  Alcotest.run "release_dates"
    [
      ( "unit",
        [
          Alcotest.test_case "zero releases reduce" `Quick test_zero_releases_reduce;
          Alcotest.test_case "late release" `Quick test_late_release_dominates;
          Alcotest.test_case "hand two tasks" `Quick test_hand_two_tasks;
          Alcotest.test_case "delta after release" `Quick test_delta_binds_after_release;
          Alcotest.test_case "feasibility" `Quick test_feasibility;
          Alcotest.test_case "exact" `Quick test_exact_release_dates;
        ] );
      ( "properties",
        q
          [
            prop_above_lower_bound;
            prop_monotone_in_releases;
            prop_feasibility_matches_optimum;
            prop_simulator_respects_optimum;
          ] );
    ]
