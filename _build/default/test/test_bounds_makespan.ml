(* Tests for the lower bounds (Definitions 5-6, Lemma 1), the optimal
   makespan (Table I Cmax row), Lmax (Table I row), and the polynomial
   single-machine special cases. *)

open Test_support
module EF = Support.EF
module EQ = Support.EQ
module Q = Support.Q
module Rng = Mwct_util.Rng

let f = Alcotest.(check (float 1e-9))

(* ---------- lower bounds ---------- *)

let test_squashed_area_hand () =
  (* P=2; tasks (V=2,w=1), (V=4,w=4): Smith ratios 2 and 1 -> order
     T1 then T0. A = 4*(4/2) + 1*(4/2 + 2/2) = 8 + 3 = 11. *)
  let inst = Support.finst (Support.spec ~procs:2 [ ((2, 1), (1, 1), 1); ((4, 1), (4, 1), 2) ]) in
  f "A(I)" 11. (EF.Lower_bounds.squashed_area inst);
  (* H = 1*(2/1) + 4*(4/2) = 10. *)
  f "H(I)" 10. (EF.Lower_bounds.height_bound inst);
  f "best is max" 11. (EF.Lower_bounds.best inst)

let test_squashed_area_equals_smith () =
  (* A(I) is by definition the Smith optimum with delta = P. *)
  let spec = Support.spec ~procs:3 [ ((1, 2), (1, 1), 1); ((3, 2), (2, 1), 2); ((5, 4), (1, 2), 3) ] in
  let inst = Support.finst spec in
  let smith_obj, _ = EF.Single_machine.smith inst in
  f "A = Smith" smith_obj (EF.Lower_bounds.squashed_area inst)

let test_mixed_bound_degenerate () =
  let inst = Support.finst (Support.spec ~procs:2 [ ((2, 1), (1, 1), 1); ((4, 1), (4, 1), 2) ]) in
  let v = Array.map (fun (t : EF.Types.task) -> t.EF.Types.volume) inst.EF.Types.tasks in
  let zeros = Array.map (fun _ -> 0.) v in
  (* All volume on the A side = A(I); all on the H side = H(I). *)
  f "mixed(V, 0) = A" (EF.Lower_bounds.squashed_area inst) (EF.Lower_bounds.mixed inst v zeros);
  f "mixed(0, V) = H" (EF.Lower_bounds.height_bound inst) (EF.Lower_bounds.mixed inst zeros v);
  Alcotest.check_raises "bad subdivision rejected"
    (Invalid_argument "Lower_bounds.mixed: subdivision does not sum to V") (fun () ->
      ignore (EF.Lower_bounds.mixed inst zeros zeros))

let prop_bounds_below_optimal =
  QCheck2.Test.make ~name:"A and H are lower bounds of OPT" ~count:50 ~print:Support.print_spec
    (Support.gen_spec ~max_procs:5 ~max_n:4 `Uniform)
    (fun spec ->
      let inst = Support.finst spec in
      let opt, _ = EF.Lp_schedule.optimal inst in
      EF.Lower_bounds.squashed_area inst <= opt +. 1e-6
      && EF.Lower_bounds.height_bound inst <= opt +. 1e-6)

let prop_mixed_below_optimal =
  QCheck2.Test.make ~name:"Lemma 1: mixed bound below OPT (random split)" ~count:50
    ~print:(fun (s, _) -> Support.print_spec s)
    QCheck2.Gen.(pair (Support.gen_spec ~max_procs:5 ~max_n:4 `Uniform) (int_bound 1_000_000))
    (fun (spec, seed) ->
      let inst = Support.finst spec in
      let rng = Rng.create seed in
      let v1 =
        Array.map
          (fun (t : EF.Types.task) ->
            t.EF.Types.volume *. (float_of_int (Rng.int_in rng 0 16) /. 16.))
          inst.EF.Types.tasks
      in
      let v2 = Array.mapi (fun i (t : EF.Types.task) -> t.EF.Types.volume -. v1.(i)) inst.EF.Types.tasks in
      let opt, _ = EF.Lp_schedule.optimal inst in
      EF.Lower_bounds.mixed inst v1 v2 <= opt +. 1e-6)

(* ---------- makespan ---------- *)

let test_makespan_hand () =
  (* P=2; volumes 4 (d=1) and 2 (d=2): T* = max(6/2, 4/1, 2/2) = 4. *)
  let inst = Support.finst (Support.uspec ~procs:2 [ ((4, 1), 1); ((2, 1), 2) ]) in
  f "T*" 4. (EF.Makespan.optimal inst);
  let s = EF.Makespan.schedule inst in
  Alcotest.(check bool) "schedule valid" true (EF.Schedule.is_valid s);
  f "makespan achieved" 4. (EF.Schedule.makespan s)

let test_makespan_area_bound_binds () =
  (* Wide tasks: area dominates. P=2, V=3 d=2 twice: T* = 3. *)
  let inst = Support.finst (Support.uspec ~procs:2 [ ((3, 1), 2); ((3, 1), 2) ]) in
  f "T* = area" 3. (EF.Makespan.optimal inst)

let prop_makespan_tight =
  QCheck2.Test.make ~name:"T* feasible; (1-eps)T* infeasible" ~count:150 ~print:Support.print_spec
    (Support.gen_spec `Uniform)
    (fun spec ->
      let inst = Support.finst spec in
      let t_star = EF.Makespan.optimal inst in
      let n = Array.length inst.EF.Types.tasks in
      let all v = Array.make n v in
      EF.Water_filling.feasible inst (all t_star)
      && not (EF.Water_filling.feasible inst (all (t_star *. 0.99))))

let prop_makespan_below_any_schedule =
  QCheck2.Test.make ~name:"T* below every heuristic's makespan" ~count:150
    ~print:(fun (s, _) -> Support.print_spec s)
    QCheck2.Gen.(pair (Support.gen_spec `Uniform) (int_bound 1_000_000))
    (fun (spec, seed) ->
      let inst = Support.finst spec in
      let n = Array.length inst.EF.Types.tasks in
      let sigma = EF.Orderings.random (Rng.create seed) n in
      let t_star = EF.Makespan.optimal inst in
      let g = EF.Greedy.run inst sigma in
      let w, _ = EF.Wdeq.wdeq inst in
      t_star <= EF.Schedule.makespan g +. 1e-6 && t_star <= EF.Schedule.makespan w +. 1e-6)

let test_makespan_exact () =
  let inst = Support.qinst (Support.uspec ~procs:2 [ ((4, 1), 1); ((2, 1), 2) ]) in
  Alcotest.(check string) "T* exact" "4" (Q.to_string (EQ.Makespan.optimal inst));
  let s = EQ.Makespan.schedule inst in
  Alcotest.(check bool) "strictly valid" true (EQ.Schedule.is_valid ~exact:true s)

(* ---------- lateness ---------- *)

let test_lateness_hand () =
  (* P=1, two unit tasks delta=1, due dates 1 and 2: schedule them in
     EDF order -> lateness 0. Due dates 1 and 1 -> someone is late by
     1. *)
  let inst = Support.finst (Support.uspec ~procs:1 [ ((1, 1), 1); ((1, 1), 1) ]) in
  Alcotest.(check bool) "L=0 feasible with staggered due dates" true
    (EF.Lateness.feasible inst [| 1.; 2. |] 0.);
  Alcotest.(check bool) "L=0 infeasible with equal due dates" false
    (EF.Lateness.feasible inst [| 1.; 1. |] 0.);
  let lo, hi, s = EF.Lateness.minimize ~tol:1e-6 inst [| 1.; 1. |] in
  Alcotest.(check bool) "Lmax close to 1" true (lo <= 1. && 1. <= hi +. 1e-6 && hi -. 1. < 1e-5);
  Alcotest.(check bool) "schedule valid" true (EF.Schedule.is_valid s)

let prop_lateness_bracket =
  QCheck2.Test.make ~name:"lateness search brackets a feasible point" ~count:60
    ~print:(fun (s, _) -> Support.print_spec s)
    QCheck2.Gen.(pair (Support.gen_spec ~max_procs:5 ~max_n:5 `Uniform) (int_bound 1_000_000))
    (fun (spec, seed) ->
      let inst = Support.finst spec in
      let n = Array.length inst.EF.Types.tasks in
      let rng = Rng.create seed in
      let due =
        Array.init n (fun _ -> float_of_int (Rng.dyadic rng ~den:64) /. 64. *. 4.)
      in
      let lo, hi, s = EF.Lateness.minimize ~tol:1e-6 inst due in
      lo <= hi
      && hi -. lo <= 1e-5
      && EF.Lateness.feasible inst due hi
      && ((not (EF.Lateness.feasible inst due (lo -. 1e-3))) || Float.abs (hi -. lo) < 1e-9)
      && EF.Schedule.is_valid s)

(* ---------- single machine special cases ---------- *)

let test_smith_hand () =
  (* P=1, (V=2,w=1) and (V=1,w=2): Smith order T1 T0:
     obj = 2*1 + 1*3 = 5. *)
  let inst = Support.finst (Support.spec ~procs:1 [ ((2, 1), (1, 1), 1); ((1, 1), (2, 1), 1) ]) in
  let obj, c = EF.Single_machine.smith inst in
  f "objective" 5. obj;
  f "C1 first" 1. c.(1);
  f "C0 second" 3. c.(0)

let test_spt_hand () =
  (* P=2, volumes 1,2,3, delta irrelevant: SPT loads: m0 <- 1, m1 <- 2,
     m0 <- 1+3. objective = 1 + 2 + 4 = 7. *)
  let inst = Support.finst (Support.uspec ~procs:2 [ ((1, 1), 1); ((2, 1), 1); ((3, 1), 1) ]) in
  let obj, _ = EF.Single_machine.spt inst in
  f "objective" 7. obj

let prop_smith_optimal_when_wide =
  (* With all deltas = P the LP optimum equals Smith. *)
  QCheck2.Test.make ~name:"Smith = OPT when deltas = P" ~count:30 ~print:Support.print_spec
    (Support.gen_spec ~max_procs:4 ~max_n:4 `Uniform)
    (fun spec ->
      (* Force deltas to P. *)
      let spec =
        Mwct_core.Spec.make ~procs:spec.Mwct_core.Spec.procs
          (Array.to_list
             (Array.map
                (fun (t : Mwct_core.Spec.task) -> { t with Mwct_core.Spec.delta = spec.Mwct_core.Spec.procs })
                spec.Mwct_core.Spec.tasks))
      in
      let inst = Support.finst spec in
      let opt, _ = EF.Lp_schedule.optimal inst in
      let smith_obj, _ = EF.Single_machine.smith inst in
      Float.abs (opt -. smith_obj) < 1e-6)

let prop_spt_optimal_when_narrow =
  (* With all deltas = 1 and unit weights, the LP optimum equals SPT. *)
  QCheck2.Test.make ~name:"SPT = OPT when deltas = 1 (unweighted)" ~count:30 ~print:Support.print_spec
    (Support.gen_spec ~max_procs:4 ~max_n:4 `Unweighted)
    (fun spec ->
      let spec =
        Mwct_core.Spec.make ~procs:spec.Mwct_core.Spec.procs
          (Array.to_list
             (Array.map
                (fun (t : Mwct_core.Spec.task) -> { t with Mwct_core.Spec.delta = 1 })
                spec.Mwct_core.Spec.tasks))
      in
      let inst = Support.finst spec in
      let opt, _ = EF.Lp_schedule.optimal inst in
      let spt_obj, _ = EF.Single_machine.spt inst in
      Float.abs (opt -. spt_obj) < 1e-6)

let () =
  let q tests = List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests in
  Alcotest.run "bounds_makespan"
    [
      ( "bounds",
        [
          Alcotest.test_case "squashed area hand" `Quick test_squashed_area_hand;
          Alcotest.test_case "A equals Smith" `Quick test_squashed_area_equals_smith;
          Alcotest.test_case "mixed degenerate" `Quick test_mixed_bound_degenerate;
        ] );
      ("bounds-props", q [ prop_bounds_below_optimal; prop_mixed_below_optimal ]);
      ( "makespan",
        [
          Alcotest.test_case "hand" `Quick test_makespan_hand;
          Alcotest.test_case "area binds" `Quick test_makespan_area_bound_binds;
          Alcotest.test_case "exact" `Quick test_makespan_exact;
        ] );
      ("makespan-props", q [ prop_makespan_tight; prop_makespan_below_any_schedule ]);
      ("lateness", [ Alcotest.test_case "hand" `Quick test_lateness_hand ]);
      ("lateness-props", q [ prop_lateness_bracket ]);
      ( "single-machine",
        [
          Alcotest.test_case "smith hand" `Quick test_smith_hand;
          Alcotest.test_case "spt hand" `Quick test_spt_hand;
        ] );
      ("single-machine-props", q [ prop_smith_optimal_when_wide; prop_spt_optimal_when_narrow ]);
    ]
