test/support/support.ml: Alcotest Engine List Mwct_core Mwct_rational Mwct_util Mwct_workload QCheck2 Spec
