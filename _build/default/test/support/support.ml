(* Shared helpers for the core test suites. *)

open Mwct_core
module EF = Engine.Float
module EQ = Engine.Exact
module Rng = Mwct_util.Rng
module Q = Mwct_rational.Rational

let finst spec = EF.Instance.of_spec spec
let qinst spec = EQ.Instance.of_spec spec

(* Hand-rolled spec: volumes/weights given as (num, den) pairs. *)
let spec ~procs tasks =
  Spec.make ~procs
    (List.map (fun ((vn, vd), (wn, wd), d) -> Spec.task ~volume:(Spec.rat vn vd) ~weight:(Spec.rat wn wd) ~delta:d ()) tasks)

(* Unweighted shortcut. *)
let uspec ~procs tasks =
  Spec.make ~procs (List.map (fun ((vn, vd), d) -> Spec.task ~volume:(Spec.rat vn vd) ~delta:d ()) tasks)

(* QCheck generators of specs driven by the deterministic workload
   generators: a random seed selects the instance. *)
let gen_spec ?(max_procs = 8) ?(max_n = 6) ?(den = 64) kind =
  let open QCheck2.Gen in
  let* seed = int_bound 1_000_000_000 in
  let* procs = int_range 2 max_procs in
  let* n = int_range 1 max_n in
  let rng = Rng.create seed in
  return
    (match kind with
    | `Uniform -> Mwct_workload.Generator.uniform rng ~procs ~n ~den ()
    | `Unweighted -> Mwct_workload.Generator.uniform_unweighted rng ~procs ~n ~den ()
    | `Wide -> Mwct_workload.Generator.wide rng ~procs ~n ~den ()
    | `Unit -> Mwct_workload.Generator.unit_tasks rng ~procs ~n ()
    | `Mixed -> Mwct_workload.Generator.mixed rng ~procs ~n ~den ())

let check_close ?(tol = 1e-6) name expected actual =
  Alcotest.(check (float tol)) name expected actual

(* Render a spec into a qcheck print function. *)
let print_spec = Spec.to_string
