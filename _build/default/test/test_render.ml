(* Tests for the schedule renderer: structural checks on the ASCII
   output (right shapes, every task visible) and well-formedness of the
   SVG (balanced document, one rect per booking/allocation). *)

open Test_support
module EF = Support.EF
module Rng = Mwct_util.Rng

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = if i + m > n then false else if String.sub s i m = sub then true else go (i + 1) in
  go 0

let count_occurrences s sub =
  let n = String.length s and m = String.length sub in
  let rec go i acc =
    if i + m > n then acc else if String.sub s i m = sub then go (i + 1) (acc + 1) else go (i + 1) acc
  in
  go 0 0

let sample () =
  let spec = Support.uspec ~procs:3 [ ((3, 1), 2); ((5, 1), 2); ((2, 1), 1) ] in
  let inst = Support.finst spec in
  let s = EF.Water_filling.normalize (EF.Greedy.run inst [| 0; 1; 2 |]) in
  let integer_schedule, _ = EF.Integerize.of_columns s in
  (s, EF.Assignment.assign integer_schedule)

let test_ascii_gantt_shape () =
  let _, g = sample () in
  let out = EF.Render.gantt_to_ascii ~width:40 g in
  let lines = String.split_on_char '\n' out |> List.filter (fun l -> l <> "") in
  (* one line per processor + the axis line *)
  Alcotest.(check int) "3 lanes + axis" 4 (List.length lines);
  Alcotest.(check bool) "lane P0 present" true (contains out "P0  |");
  (* every task letter appears somewhere *)
  List.iter
    (fun c -> Alcotest.(check bool) (Printf.sprintf "task %c drawn" c) true (contains out (String.make 1 c)))
    [ 'A'; 'B'; 'C' ]

let test_ascii_columns () =
  let s, _ = sample () in
  let out = EF.Render.columns_to_ascii s in
  Alcotest.(check int) "one line per column" 3 (List.length (String.split_on_char '\n' out) - 1);
  Alcotest.(check bool) "mentions column 0" true (contains out "column  0")

let test_svg_gantt_well_formed () =
  let _, g = sample () in
  let out = EF.Render.gantt_to_svg g in
  Alcotest.(check bool) "opens svg" true (contains out "<svg");
  Alcotest.(check bool) "closes svg" true (contains out "</svg>");
  let bookings = Array.fold_left (fun acc l -> acc + List.length l) 0 g.EF.Types.processors in
  (* one rect per booking plus the background *)
  Alcotest.(check int) "rect count" (bookings + 1) (count_occurrences out "<rect");
  Alcotest.(check bool) "has tooltips" true (contains out "<title>")

let test_svg_columns_well_formed () =
  let s, _ = sample () in
  let out = EF.Render.columns_to_svg s in
  Alcotest.(check bool) "opens svg" true (contains out "<svg");
  Alcotest.(check bool) "closes svg" true (contains out "</svg>");
  Alcotest.(check bool) "capacity line" true (contains out "P=3")

let prop_render_total =
  (* Rendering never raises, whatever the schedule. *)
  QCheck2.Test.make ~name:"rendering is total" ~count:100
    ~print:(fun (s, _) -> Support.print_spec s)
    QCheck2.Gen.(pair (Support.gen_spec `Uniform) (int_bound 1_000_000))
    (fun (spec, seed) ->
      let inst = Support.finst spec in
      let n = Array.length inst.EF.Types.tasks in
      let sigma = EF.Orderings.random (Rng.create seed) n in
      let s = EF.Water_filling.normalize (EF.Greedy.run inst sigma) in
      let is, wrap = EF.Integerize.of_columns s in
      let g = EF.Assignment.assign is in
      String.length (EF.Render.columns_to_ascii s) > 0
      && String.length (EF.Render.gantt_to_ascii g) > 0
      && String.length (EF.Render.gantt_to_ascii wrap) > 0
      && String.length (EF.Render.gantt_to_svg g) > 0
      && String.length (EF.Render.columns_to_svg s) > 0)

let () =
  let q tests = List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests in
  Alcotest.run "render"
    [
      ( "ascii",
        [
          Alcotest.test_case "gantt shape" `Quick test_ascii_gantt_shape;
          Alcotest.test_case "columns" `Quick test_ascii_columns;
        ] );
      ( "svg",
        [
          Alcotest.test_case "gantt well-formed" `Quick test_svg_gantt_well_formed;
          Alcotest.test_case "columns well-formed" `Quick test_svg_columns_well_formed;
        ] );
      ("properties", q [ prop_render_total ]);
    ]
