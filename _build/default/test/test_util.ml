(* Tests for the util substrate: RNG determinism and bounds, statistics,
   table rendering. *)

module Rng = Mwct_util.Rng
module Stats = Mwct_util.Stats
module Tablefmt = Mwct_util.Tablefmt

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.bits a) (Rng.bits b)
  done;
  let c = Rng.create 43 in
  Alcotest.(check bool) "different seed differs" true (Rng.bits (Rng.create 42) <> Rng.bits c)

let test_rng_copy_split () =
  let a = Rng.create 7 in
  let b = Rng.copy a in
  Alcotest.(check int) "copy same next" (Rng.bits a) (Rng.bits b);
  let a = Rng.create 7 in
  let s = Rng.split a in
  Alcotest.(check bool) "split independent" true (Rng.bits s <> Rng.bits (Rng.create 7))

let test_rng_bounds () =
  let t = Rng.create 1 in
  for _ = 1 to 1000 do
    let v = Rng.int t 17 in
    Alcotest.(check bool) "int in [0,17)" true (v >= 0 && v < 17);
    let v = Rng.int_in t (-3) 5 in
    Alcotest.(check bool) "int_in bounds" true (v >= -3 && v <= 5);
    let f = Rng.float t 2.5 in
    Alcotest.(check bool) "float in [0,2.5)" true (f >= 0. && f < 2.5);
    let d = Rng.dyadic t ~den:1024 in
    Alcotest.(check bool) "dyadic in [1,1024]" true (d >= 1 && d <= 1024)
  done

let test_rng_uniformity () =
  (* Crude chi-square-free check: each of 8 buckets gets 8-20% of draws. *)
  let t = Rng.create 99 in
  let buckets = Array.make 8 0 in
  let n = 8000 in
  for _ = 1 to n do
    let v = Rng.int t 8 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iter
    (fun c -> Alcotest.(check bool) "bucket roughly uniform" true (c > n / 13 && c < n / 5))
    buckets

let test_shuffle_permutation () =
  let t = Rng.create 5 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle t a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "shuffle is a permutation" (Array.init 50 (fun i -> i)) sorted

let test_stats () =
  let xs = [ 1.; 2.; 3.; 4.; 5. ] in
  Alcotest.(check (float 1e-9)) "mean" 3.0 (Stats.mean xs);
  Alcotest.(check (float 1e-9)) "median" 3.0 (Stats.quantile 0.5 xs);
  Alcotest.(check (float 1e-9)) "q0" 1.0 (Stats.quantile 0. xs);
  Alcotest.(check (float 1e-9)) "q1" 5.0 (Stats.quantile 1. xs);
  Alcotest.(check (float 1e-9)) "q0.25 interpolated" 2.0 (Stats.quantile 0.25 xs);
  let s = Stats.summarize xs in
  Alcotest.(check int) "count" 5 s.Stats.count;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.Stats.min;
  Alcotest.(check (float 1e-9)) "max" 5.0 s.Stats.max;
  Alcotest.(check (float 1e-9)) "stddev" (sqrt 2.) s.Stats.stddev;
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats.mean: empty") (fun () ->
      ignore (Stats.mean []))

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = if i + m > n then false else if String.sub s i m = sub then true else go (i + 1) in
  go 0

let test_table_render () =
  let t = Tablefmt.create ~title:"demo" [ "name"; "value" ] in
  Tablefmt.set_align t [ Tablefmt.Left; Tablefmt.Right ];
  Tablefmt.add_row t [ "alpha"; "1" ];
  Tablefmt.add_row t [ "b"; "12345" ];
  let out = Tablefmt.render t in
  Alcotest.(check bool) "contains title" true (contains out "== demo ==");
  Alcotest.(check bool) "contains header" true (contains out "| name  |");
  Alcotest.(check bool) "right-aligns value" true (contains out "|     1 |");
  Alcotest.check_raises "row width mismatch" (Invalid_argument "Tablefmt.add_row: width mismatch")
    (fun () -> Tablefmt.add_row t [ "only-one" ])

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "copy/split" `Quick test_rng_copy_split;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "uniformity" `Quick test_rng_uniformity;
          Alcotest.test_case "shuffle" `Quick test_shuffle_permutation;
        ] );
      ("stats", [ Alcotest.test_case "summaries" `Quick test_stats ]);
      ("table", [ Alcotest.test_case "render" `Quick test_table_render ]);
    ]
