(* Tests for the instance generators: structural validity, the
   advertised parameter ranges, determinism, and exactness of the
   dyadic encoding in both engines. *)

open Test_support
module G = Mwct_workload.Generator
module Rng = Mwct_util.Rng
module Spec = Mwct_core.Spec
module EF = Support.EF
module EQ = Support.EQ
module Q = Support.Q

let test_determinism () =
  let a = G.uniform (Rng.create 5) ~procs:4 ~n:6 () in
  let b = G.uniform (Rng.create 5) ~procs:4 ~n:6 () in
  Alcotest.(check string) "same seed, same instance" (Spec.to_string a) (Spec.to_string b);
  let c = G.uniform (Rng.create 6) ~procs:4 ~n:6 () in
  Alcotest.(check bool) "different seed differs" true (Spec.to_string a <> Spec.to_string c)

let test_uniform_ranges () =
  let rng = Rng.create 11 in
  for _ = 1 to 50 do
    let s = G.uniform rng ~procs:5 ~n:4 () in
    Alcotest.(check bool) "spec valid" true (Result.is_ok (Spec.validate s));
    Array.iter
      (fun (t : Spec.task) ->
        Alcotest.(check bool) "delta < P" true (t.Spec.delta >= 1 && t.Spec.delta <= 4);
        Alcotest.(check bool) "volume in (0,1]" true (t.Spec.volume.Spec.num >= 1 && t.Spec.volume.Spec.num <= t.Spec.volume.Spec.den);
        Alcotest.(check bool) "weight in (0,1]" true (t.Spec.weight.Spec.num >= 1 && t.Spec.weight.Spec.num <= t.Spec.weight.Spec.den))
      s.Spec.tasks
  done

let test_unweighted () =
  let s = G.uniform_unweighted (Rng.create 3) ~procs:3 ~n:5 () in
  Array.iter
    (fun (t : Spec.task) ->
      Alcotest.(check int) "weight num 1" 1 t.Spec.weight.Spec.num;
      Alcotest.(check int) "weight den 1" 1 t.Spec.weight.Spec.den)
    s.Spec.tasks

let test_wide_deltas () =
  let rng = Rng.create 17 in
  for _ = 1 to 50 do
    let s = G.wide rng ~procs:6 ~n:4 () in
    Array.iter
      (fun (t : Spec.task) -> Alcotest.(check bool) "delta > P/2" true (t.Spec.delta > 3 && t.Spec.delta <= 6))
      s.Spec.tasks
  done

let test_unit_tasks () =
  let rng = Rng.create 23 in
  for _ = 1 to 50 do
    let s = G.unit_tasks rng ~procs:5 ~n:4 () in
    Array.iter
      (fun (t : Spec.task) ->
        Alcotest.(check int) "V = 1" 1 t.Spec.volume.Spec.num;
        Alcotest.(check bool) "delta >= ceil(P/2)" true (t.Spec.delta >= 3 && t.Spec.delta <= 5))
      s.Spec.tasks
  done

let test_homogeneous_deltas_range () =
  let rng = Rng.create 29 in
  let ds = G.homogeneous_deltas rng ~n:100 ~den:256 () in
  Array.iter
    (fun (r : Spec.rat) ->
      Alcotest.(check bool) "1/2 <= d <= 1" true (2 * r.Spec.num >= r.Spec.den && r.Spec.num <= r.Spec.den))
    ds

let test_pow2_guard () =
  Alcotest.check_raises "den must be a power of two"
    (Invalid_argument "Generator: den must be a power of two") (fun () ->
      ignore (G.uniform (Rng.create 1) ~procs:3 ~n:2 ~den:1000 ()))

let test_due_dates () =
  let d = G.due_dates (Rng.create 31) ~n:20 ~spread:4 () in
  Alcotest.(check int) "length" 20 (Array.length d);
  Array.iter (fun (r : Spec.rat) -> Alcotest.(check bool) "positive" true (r.Spec.num > 0)) d

(* The dyadic encoding makes the float and exact engines see identical
   numbers. *)
let prop_dyadic_exact_in_floats =
  QCheck2.Test.make ~name:"dyadic instances identical in both engines" ~count:200
    ~print:Support.print_spec (Support.gen_spec `Uniform)
    (fun spec ->
      let fi = Support.finst spec and qi = Support.qinst spec in
      Array.for_all2
        (fun (ft : EF.Types.task) (qt : EQ.Types.task) ->
          ft.EF.Types.volume = Q.to_float qt.EQ.Types.volume
          && ft.EF.Types.weight = Q.to_float qt.EQ.Types.weight
          && ft.EF.Types.delta = Q.to_float qt.EQ.Types.delta)
        fi.EF.Types.tasks qi.EQ.Types.tasks)

let test_heavy_tailed () =
  let rng = Rng.create 41 in
  let seen_small = ref false and seen_big = ref false in
  for _ = 1 to 30 do
    let s = G.heavy_tailed rng ~procs:4 ~n:10 () in
    Alcotest.(check bool) "valid" true (Result.is_ok (Spec.validate s));
    Array.iter
      (fun (t : Spec.task) ->
        (* volumes are 1/2^k *)
        Alcotest.(check int) "volume numerator 1" 1 t.Spec.volume.Spec.num;
        if t.Spec.volume.Spec.den >= 16 then seen_small := true;
        if t.Spec.volume.Spec.den = 1 then seen_big := true)
      s.Spec.tasks
  done;
  Alcotest.(check bool) "tail reached" true !seen_small;
  Alcotest.(check bool) "head reached" true !seen_big

let test_bimodal () =
  let s = G.bimodal (Rng.create 43) ~procs:6 ~n:8 () in
  Alcotest.(check bool) "valid" true (Result.is_ok (Spec.validate s));
  Array.iteri
    (fun k (t : Spec.task) ->
      if k land 1 = 0 then begin
        Alcotest.(check int) "mouse narrow" 1 t.Spec.delta;
        Alcotest.(check bool) "mouse tiny" true (t.Spec.volume.Spec.num * 8 <= t.Spec.volume.Spec.den)
      end
      else begin
        Alcotest.(check int) "elephant wide" 5 t.Spec.delta;
        Alcotest.(check bool) "elephant heavy" true (t.Spec.volume.Spec.num > t.Spec.volume.Spec.den)
      end)
    s.Spec.tasks

let prop_mixed_valid =
  QCheck2.Test.make ~name:"mixed instances validate" ~count:200 ~print:Support.print_spec
    (Support.gen_spec `Mixed)
    (fun spec -> Result.is_ok (Spec.validate spec))

let () =
  let q tests = List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests in
  Alcotest.run "workload"
    [
      ( "generators",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "uniform ranges" `Quick test_uniform_ranges;
          Alcotest.test_case "unweighted" `Quick test_unweighted;
          Alcotest.test_case "wide deltas" `Quick test_wide_deltas;
          Alcotest.test_case "unit tasks" `Quick test_unit_tasks;
          Alcotest.test_case "homogeneous deltas" `Quick test_homogeneous_deltas_range;
          Alcotest.test_case "pow2 guard" `Quick test_pow2_guard;
          Alcotest.test_case "due dates" `Quick test_due_dates;
          Alcotest.test_case "heavy tailed" `Quick test_heavy_tailed;
          Alcotest.test_case "bimodal" `Quick test_bimodal;
        ] );
      ("properties", q [ prop_dyadic_exact_in_floats; prop_mixed_valid ]);
    ]
