(* Tests for the two-phase simplex, on both the float and the exact
   rational instantiations. Cross-checking the two engines on random
   LPs is the strongest test here: the rational solver is exact, so any
   disagreement beyond float tolerance is a bug. *)

module FF = Mwct_field.Field.Float_field
module QF = Mwct_rational.Rational.Rat_field
module Q = Mwct_rational.Rational
module SF = Mwct_simplex.Simplex.Make (FF)
module SQ = Mwct_simplex.Simplex.Make (QF)

let check_float = Alcotest.(check (float 1e-6))

(* max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18 -> 36 at (2,6). *)
let test_textbook_max () =
  let p = SF.create ~maximize:true () in
  let x = SF.add_var ~name:"x" p and y = SF.add_var ~name:"y" p in
  SF.add_constraint p [ (x, 1.) ] SF.Leq 4.;
  SF.add_constraint p [ (y, 2.) ] SF.Leq 12.;
  SF.add_constraint p [ (x, 3.); (y, 2.) ] SF.Leq 18.;
  SF.set_objective p [ (x, 3.); (y, 5.) ];
  match SF.solve p with
  | SF.Optimal { objective; values; _ } ->
    check_float "objective" 36. objective;
    check_float "x" 2. values.(0);
    check_float "y" 6. values.(1);
    Alcotest.(check bool) "feasible" true (SF.check_feasible p values ~slack:true)
  | _ -> Alcotest.fail "expected optimal"

(* min x + y st x + 2y >= 4, 3x + y >= 6 -> optimum 2.8 at (1.6,1.2). *)
let test_textbook_min () =
  let p = SF.create () in
  let x = SF.add_var p and y = SF.add_var p in
  SF.add_constraint p [ (x, 1.); (y, 2.) ] SF.Geq 4.;
  SF.add_constraint p [ (x, 3.); (y, 1.) ] SF.Geq 6.;
  SF.set_objective p [ (x, 1.); (y, 1.) ];
  match SF.solve p with
  | SF.Optimal { objective; values; _ } ->
    check_float "objective" 2.8 objective;
    check_float "x" 1.6 values.(0);
    check_float "y" 1.2 values.(1)
  | _ -> Alcotest.fail "expected optimal"

let test_equality_constraints () =
  (* min 2x + 3y st x + y = 10, x - y = 2 -> x=6, y=4, obj=24. *)
  let p = SF.create () in
  let x = SF.add_var p and y = SF.add_var p in
  SF.add_constraint p [ (x, 1.); (y, 1.) ] SF.Eq 10.;
  SF.add_constraint p [ (x, 1.); (y, -1.) ] SF.Eq 2.;
  SF.set_objective p [ (x, 2.); (y, 3.) ];
  match SF.solve p with
  | SF.Optimal { objective; values; _ } ->
    check_float "objective" 24. objective;
    check_float "x" 6. values.(0);
    check_float "y" 4. values.(1)
  | _ -> Alcotest.fail "expected optimal"

let test_infeasible () =
  let p = SF.create () in
  let x = SF.add_var p in
  SF.add_constraint p [ (x, 1.) ] SF.Leq 1.;
  SF.add_constraint p [ (x, 1.) ] SF.Geq 2.;
  SF.set_objective p [ (x, 1.) ];
  match SF.solve p with
  | SF.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible"

let test_unbounded () =
  let p = SF.create ~maximize:true () in
  let x = SF.add_var p and y = SF.add_var p in
  SF.add_constraint p [ (x, 1.); (y, -1.) ] SF.Leq 1.;
  SF.set_objective p [ (x, 1.) ];
  match SF.solve p with
  | SF.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded"

let test_degenerate () =
  (* Degenerate vertex: redundant constraints meeting at the optimum.
     Bland's rule must not cycle. *)
  let p = SF.create ~maximize:true () in
  let x = SF.add_var p and y = SF.add_var p in
  SF.add_constraint p [ (x, 1.); (y, 1.) ] SF.Leq 1.;
  SF.add_constraint p [ (x, 2.); (y, 2.) ] SF.Leq 2.;
  SF.add_constraint p [ (x, 1.) ] SF.Leq 1.;
  SF.set_objective p [ (x, 1.); (y, 1.) ];
  match SF.solve p with
  | SF.Optimal { objective; _ } -> check_float "objective" 1. objective
  | _ -> Alcotest.fail "expected optimal"

let test_zero_objective () =
  (* Pure feasibility problem. *)
  let p = SF.create () in
  let x = SF.add_var p in
  SF.add_constraint p [ (x, 1.) ] SF.Geq 3.;
  SF.set_objective p [];
  match SF.solve p with
  | SF.Optimal { objective; values; _ } ->
    check_float "objective" 0. objective;
    Alcotest.(check bool) "x >= 3" true (values.(0) >= 3. -. 1e-9)
  | _ -> Alcotest.fail "expected optimal"

let test_exact_rational () =
  (* Same textbook problem, exact: optimum is exactly 36. *)
  let p = SQ.create ~maximize:true () in
  let x = SQ.add_var p and y = SQ.add_var p in
  SQ.add_constraint p [ (x, Q.of_int 1) ] SQ.Leq (Q.of_int 4);
  SQ.add_constraint p [ (y, Q.of_int 2) ] SQ.Leq (Q.of_int 12);
  SQ.add_constraint p [ (x, Q.of_int 3); (y, Q.of_int 2) ] SQ.Leq (Q.of_int 18);
  SQ.set_objective p [ (x, Q.of_int 3); (y, Q.of_int 5) ];
  match SQ.solve p with
  | SQ.Optimal { objective; values; _ } ->
    Alcotest.(check string) "objective exactly 36" "36" (Q.to_string objective);
    Alcotest.(check string) "x exactly 2" "2" (Q.to_string values.(0));
    Alcotest.(check string) "y exactly 6" "6" (Q.to_string values.(1))
  | _ -> Alcotest.fail "expected optimal"

let test_exact_fractional_solution () =
  (* min x+y st 3x + y >= 1, x + 3y >= 1: optimum 1/2 at (1/4, 1/4). *)
  let p = SQ.create () in
  let x = SQ.add_var p and y = SQ.add_var p in
  SQ.add_constraint p [ (x, Q.of_int 3); (y, Q.of_int 1) ] SQ.Geq Q.one;
  SQ.add_constraint p [ (x, Q.of_int 1); (y, Q.of_int 3) ] SQ.Geq Q.one;
  SQ.set_objective p [ (x, Q.one); (y, Q.one) ];
  match SQ.solve p with
  | SQ.Optimal { objective; values; _ } ->
    Alcotest.(check string) "objective exactly 1/2" "1/2" (Q.to_string objective);
    Alcotest.(check string) "x = 1/4" "1/4" (Q.to_string values.(0));
    Alcotest.(check string) "y = 1/4" "1/4" (Q.to_string values.(1))
  | _ -> Alcotest.fail "expected optimal"

(* Random LP generator: small integer data, bounded feasible region
   (ensured by adding x_i <= bound rows), minimize. *)
let gen_lp =
  let open QCheck2.Gen in
  let coeff = int_range (-5) 5 in
  let* nv = int_range 1 4 in
  let* nc = int_range 1 5 in
  let* rows = list_repeat nc (pair (list_repeat nv coeff) (int_range 0 20)) in
  let* obj = list_repeat nv (int_range 0 6) in
  return (nv, rows, obj)

let build_float (nv, rows, obj) =
  let p = SF.create () in
  let vars = Array.init nv (fun _ -> SF.add_var p) in
  List.iter
    (fun (coeffs, rhs) ->
      let cs = List.mapi (fun i c -> (vars.(i), float_of_int c)) coeffs in
      SF.add_constraint p cs SF.Geq (float_of_int rhs))
    rows;
  Array.iter (fun v -> SF.add_constraint p [ (v, 1.) ] SF.Leq 100.) vars;
  SF.set_objective p (List.mapi (fun i c -> (vars.(i), float_of_int c)) obj);
  p

let build_exact (nv, rows, obj) =
  let p = SQ.create () in
  let vars = Array.init nv (fun _ -> SQ.add_var p) in
  List.iter
    (fun (coeffs, rhs) ->
      let cs = List.mapi (fun i c -> (vars.(i), Q.of_int c)) coeffs in
      SQ.add_constraint p cs SQ.Geq (Q.of_int rhs))
    rows;
  Array.iter (fun v -> SQ.add_constraint p [ (v, Q.one) ] SQ.Leq (Q.of_int 100)) vars;
  SQ.set_objective p (List.mapi (fun i c -> (vars.(i), Q.of_int c)) obj);
  p

let prop_float_matches_exact =
  QCheck2.Test.make ~name:"float simplex matches exact simplex" ~count:200 gen_lp (fun spec ->
      let pf = build_float spec and pq = build_exact spec in
      match (SF.solve pf, SQ.solve pq) with
      | SF.Optimal { objective = fo; values; _ }, SQ.Optimal { objective = qo; _ } ->
        Float.abs (fo -. Q.to_float qo) < 1e-6 && SF.check_feasible pf values ~slack:true
      | SF.Infeasible, SQ.Infeasible -> true
      | SF.Unbounded, SQ.Unbounded -> true
      | _ -> false)

(* Strong duality: objective = sum duals*rhs, for both engines and both
   senses. An entirely independent certificate of optimality. *)
let test_duals_textbook () =
  let p = SF.create ~maximize:true () in
  let x = SF.add_var p and y = SF.add_var p in
  SF.add_constraint p [ (x, 1.) ] SF.Leq 4.;
  SF.add_constraint p [ (y, 2.) ] SF.Leq 12.;
  SF.add_constraint p [ (x, 3.); (y, 2.) ] SF.Leq 18.;
  SF.set_objective p [ (x, 3.); (y, 5.) ];
  match SF.solve p with
  | SF.Optimal { objective; duals; _ } ->
    (* Known duals of this classic: (0, 3/2, 1): 0*4 + 1.5*12 + 1*18 = 36. *)
    check_float "strong duality" objective ((duals.(0) *. 4.) +. (duals.(1) *. 12.) +. (duals.(2) *. 18.));
    check_float "y1" 1.5 duals.(1);
    check_float "y2" 1. duals.(2)
  | _ -> Alcotest.fail "expected optimal"

let prop_strong_duality_float =
  QCheck2.Test.make ~name:"strong duality (float)" ~count:200 gen_lp (fun spec ->
      let nv, rows, _ = spec in
      let p = build_float spec in
      match SF.solve p with
      | SF.Optimal { objective; duals; _ } ->
        (* rhs in insertion order: the Geq rows then the x <= 100 rows. *)
        let rhs = List.map (fun (_, b) -> float_of_int b) rows @ List.init nv (fun _ -> 100.) in
        let dual_value = List.fold_left2 (fun acc y b -> acc +. (y *. b)) 0. (Array.to_list duals) rhs in
        Float.abs (objective -. dual_value) < 1e-6
      | SF.Infeasible | SF.Unbounded -> true)

let prop_strong_duality_exact =
  QCheck2.Test.make ~name:"strong duality (exact, zero gap)" ~count:100 gen_lp (fun spec ->
      let nv, rows, _ = spec in
      let p = build_exact spec in
      match SQ.solve p with
      | SQ.Optimal { objective; duals; _ } ->
        let rhs = List.map (fun (_, b) -> Q.of_int b) rows @ List.init nv (fun _ -> Q.of_int 100) in
        let dual_value = List.fold_left2 (fun acc y b -> Q.add acc (Q.mul y b)) Q.zero (Array.to_list duals) rhs in
        Q.equal objective dual_value
      | SQ.Infeasible | SQ.Unbounded -> true)

let prop_pivot_rules_agree =
  QCheck2.Test.make ~name:"Dantzig and Bland reach the same optimum" ~count:150 gen_lp (fun spec ->
      let p1 = build_float spec and p2 = build_float spec in
      match (SF.solve ~rule:SF.Bland p1, SF.solve ~rule:SF.Dantzig p2) with
      | SF.Optimal { objective = a; _ }, SF.Optimal { objective = b; _ } -> Float.abs (a -. b) < 1e-6
      | SF.Infeasible, SF.Infeasible -> true
      | SF.Unbounded, SF.Unbounded -> true
      | _ -> false)

let prop_pivot_rules_agree_exact =
  QCheck2.Test.make ~name:"Dantzig and Bland agree exactly (rationals)" ~count:60 gen_lp (fun spec ->
      let p1 = build_exact spec and p2 = build_exact spec in
      match (SQ.solve ~rule:SQ.Bland p1, SQ.solve ~rule:SQ.Dantzig p2) with
      | SQ.Optimal { objective = a; _ }, SQ.Optimal { objective = b; _ } -> Q.equal a b
      | SQ.Infeasible, SQ.Infeasible -> true
      | SQ.Unbounded, SQ.Unbounded -> true
      | _ -> false)

let prop_solution_feasible_exact =
  QCheck2.Test.make ~name:"exact simplex returns feasible points" ~count:100 gen_lp (fun spec ->
      let pq = build_exact spec in
      match SQ.solve pq with
      | SQ.Optimal { values; _ } -> SQ.check_feasible pq values ~slack:false
      | SQ.Infeasible | SQ.Unbounded -> true)

let () =
  let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests in
  Alcotest.run "simplex"
    [
      ( "float",
        [
          Alcotest.test_case "textbook max" `Quick test_textbook_max;
          Alcotest.test_case "textbook min" `Quick test_textbook_min;
          Alcotest.test_case "equalities" `Quick test_equality_constraints;
          Alcotest.test_case "infeasible" `Quick test_infeasible;
          Alcotest.test_case "unbounded" `Quick test_unbounded;
          Alcotest.test_case "degenerate" `Quick test_degenerate;
          Alcotest.test_case "zero objective" `Quick test_zero_objective;
          Alcotest.test_case "textbook duals" `Quick test_duals_textbook;
        ] );
      ( "exact",
        [
          Alcotest.test_case "integral optimum" `Quick test_exact_rational;
          Alcotest.test_case "fractional optimum" `Quick test_exact_fractional_solution;
        ] );
      ( "cross-check",
        qsuite
          [
            prop_float_matches_exact;
            prop_solution_feasible_exact;
            prop_strong_duality_float;
            prop_strong_duality_exact;
            prop_pivot_rules_agree;
            prop_pivot_rules_agree_exact;
          ] );
    ]
