(* Tests for the field abstraction: Float_field semantics (including
   the approximate comparisons), the derived Ops functor, and agreement
   of the two Field instances on exact dyadic inputs. *)

module F = Mwct_field.Field.Float_field
module QF = Mwct_rational.Rational.Rat_field
module Q = Mwct_rational.Rational
module OpsF = Mwct_field.Field.Ops (Mwct_field.Field.Float_field)
module OpsQ = Mwct_field.Field.Ops (Mwct_rational.Rational.Rat_field)

let f = Alcotest.(check (float 1e-12))

let test_float_field_basics () =
  f "of_q" 0.75 (F.of_q 3 4);
  f "add" 3.5 (F.add 1.25 2.25);
  f "neg" (-2.) (F.neg 2.);
  f "abs" 2. (F.abs (-2.));
  Alcotest.(check int) "sign pos" 1 (F.sign 0.1);
  Alcotest.(check int) "sign neg" (-1) (F.sign (-0.1));
  Alcotest.(check int) "sign zero" 0 (F.sign 0.);
  Alcotest.check_raises "of_q zero den" Division_by_zero (fun () -> ignore (F.of_q 1 0));
  Alcotest.check_raises "div by zero" Division_by_zero (fun () -> ignore (F.div 1. 0.))

let test_float_approx_semantics () =
  Alcotest.(check bool) "leq within eps" true (F.leq_approx 1.0000000005 1.);
  Alcotest.(check bool) "leq beyond eps" false (F.leq_approx 1.1 1.);
  Alcotest.(check bool) "equal within eps" true (F.equal_approx 1. (1. +. (F.epsilon /. 2.)));
  Alcotest.(check bool) "equal beyond eps" false (F.equal_approx 1. 1.001)

let test_exact_approx_is_exact () =
  (* The rational field's approximate comparisons are exact. *)
  let tiny = Q.of_q 1 1_000_000_000 in
  Alcotest.(check bool) "no slack in leq" false (QF.leq_approx (Q.add Q.one tiny) Q.one);
  Alcotest.(check bool) "no slack in equal" false (QF.equal_approx (Q.add Q.one tiny) Q.one);
  Alcotest.(check bool) "equal on equal" true (QF.equal_approx (Q.of_q 2 4) (Q.of_q 1 2))

let test_ops_functor () =
  let open OpsF in
  f "infix chain" 7. ((2. * 3.) + 1.);
  f "division" 1.5 (3. / 2.);
  Alcotest.(check bool) "comparisons" true (1. < 2. && 2. <= 2. && 3. > 2. && 3. >= 3. && 2. <> 3.);
  f "sum list" 6. (sum [ 1.; 2.; 3. ]);
  f "sum_up_to" 10. (sum_up_to 5 float_of_int);
  f "sum_array" 6. (sum_array [| 1.; 2.; 3. |]);
  f "unary minus" (-5.) ~-.5.

let test_ops_exact () =
  let open OpsQ in
  Alcotest.(check string) "exact sum of thirds" "1"
    (Q.to_string (sum [ Q.of_q 1 3; Q.of_q 1 3; Q.of_q 1 3 ]));
  Alcotest.(check bool) "exact comparison" true (Q.of_q 1 3 < Q.of_q 1 2)

let prop_fields_agree_on_dyadics =
  QCheck2.Test.make ~name:"float and rational fields agree on dyadic arithmetic" ~count:300
    QCheck2.Gen.(quad (int_range (-4096) 4096) (int_range (-4096) 4096) (int_range 0 10) (int_range 0 10))
    (fun (a, b, ka, kb) ->
      let da = 1 lsl ka and db = 1 lsl kb in
      let xf = F.of_q a da and yf = F.of_q b db in
      let xq = QF.of_q a da and yq = QF.of_q b db in
      F.to_float (F.add xf yf) = QF.to_float (QF.add xq yq)
      && F.to_float (F.sub xf yf) = QF.to_float (QF.sub xq yq)
      && F.to_float (F.mul xf yf) = QF.to_float (QF.mul xq yq)
      && F.compare xf yf = QF.compare xq yq
      && F.sign xf = QF.sign xq)

let () =
  let q tests = List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests in
  Alcotest.run "field"
    [
      ( "float",
        [
          Alcotest.test_case "basics" `Quick test_float_field_basics;
          Alcotest.test_case "approx comparisons" `Quick test_float_approx_semantics;
        ] );
      ("exact", [ Alcotest.test_case "approx is exact" `Quick test_exact_approx_is_exact ]);
      ( "ops",
        [
          Alcotest.test_case "float ops" `Quick test_ops_functor;
          Alcotest.test_case "exact ops" `Quick test_ops_exact;
        ] );
      ("agreement", q [ prop_fields_agree_on_dyadics ]);
    ]
