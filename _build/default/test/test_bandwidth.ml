(* Tests for the Figure-1 bandwidth-sharing application: the
   equivalence between throughput maximization and weighted completion
   time minimization, and the policy comparisons the paper's
   introduction motivates. *)

module B = Mwct_bandwidth.Bandwidth.Float
module BQ = Mwct_bandwidth.Bandwidth.Exact
module Q = Mwct_rational.Rational
module Rng = Mwct_util.Rng

let f = Alcotest.(check (float 1e-9))

let scenario ~p ~horizon workers =
  {
    B.server_capacity = p;
    horizon;
    workers =
      List.map (fun (v, b, r) -> { B.code_size = v; bandwidth = b; rate = r }) workers |> Array.of_list;
  }

let test_throughput_hand () =
  (* One worker: V=2, bw=1, rate=3, horizon 5: C=2, work = 3*(5-2)=9. *)
  let sc = scenario ~p:2. ~horizon:5. [ (2., 1., 3.) ] in
  f "fifo" 9. (B.throughput sc B.Fifo);
  f "wdeq same for one worker" 9. (B.throughput sc B.Wdeq)

let test_completion_after_horizon_ignored () =
  (* A worker finishing after the horizon contributes zero (not
     negative). *)
  let sc = scenario ~p:1. ~horizon:1. [ (5., 1., 2.); (1., 1., 4.) ] in
  let tp = B.tasks_processed sc [| 5.; 0.5 |] in
  f "only the early worker counts" 2. tp

let test_equivalence_identity () =
  let sc = scenario ~p:2. ~horizon:10. [ (2., 1., 3.); (1., 2., 1.) ] in
  let c = B.completions sc B.Smith_greedy in
  f "throughput = W·T − ΣwC" 0. (B.equivalence_gap sc c)

let test_policies_ranked () =
  (* Smith greedy should beat FIFO and equal-split on a heterogeneous
     scenario; WDEQ sits between (2-approx of the best). *)
  let sc =
    scenario ~p:4. ~horizon:8.
      [ (4., 2., 1.); (1., 1., 5.); (2., 4., 2.); (3., 2., 1.) ]
  in
  let tp p = B.throughput sc p in
  Alcotest.(check bool) "smith-greedy >= fifo" true (tp B.Smith_greedy >= tp B.Fifo -. 1e-9);
  Alcotest.(check bool) "smith-greedy >= equal-split" true (tp B.Smith_greedy >= tp B.Equal_split -. 1e-9);
  Alcotest.(check bool) "wdeq >= equal-split" true (tp B.Wdeq >= tp B.Equal_split -. 1e-9)

let test_exact_engine () =
  let sc =
    {
      BQ.server_capacity = Q.of_int 2;
      horizon = Q.of_int 5;
      workers = [| { BQ.code_size = Q.of_int 2; bandwidth = Q.of_int 1; rate = Q.of_int 3 } |];
    }
  in
  Alcotest.(check string) "exact throughput" "9" (Q.to_string (BQ.throughput sc BQ.Fifo))

(* Property: maximizing throughput = minimizing weighted completion
   time — the schedule with smaller Σ w C has larger throughput, on
   scenarios where all completions are before the horizon. *)
let gen_scenario =
  let open QCheck2.Gen in
  let* seed = int_bound 1_000_000 in
  let* n = int_range 1 6 in
  let* p = int_range 2 6 in
  let rng = Rng.create seed in
  let workers =
    Array.init n (fun _ ->
        {
          B.code_size = float_of_int (Rng.dyadic rng ~den:64) /. 64. *. 4.;
          bandwidth = float_of_int (Rng.int_in rng 1 (p - 1));
          rate = float_of_int (Rng.dyadic rng ~den:64) /. 64.;
        })
  in
  (* Horizon large enough for any policy to finish everything. *)
  let total = Array.fold_left (fun a w -> a +. w.B.code_size) 0. workers in
  return { B.server_capacity = float_of_int p; horizon = (2. *. total) +. 4.; workers }

let prop_equivalence =
  QCheck2.Test.make ~name:"throughput identity holds for every policy" ~count:200 gen_scenario
    (fun sc ->
      List.for_all
        (fun p -> Float.abs (B.equivalence_gap sc (B.completions sc p)) < 1e-6)
        [ B.Fifo; B.Equal_split; B.Smith_greedy; B.Wdeq ])

let prop_smaller_objective_larger_throughput =
  QCheck2.Test.make ~name:"smaller Σ w C ⟺ larger throughput" ~count:200 gen_scenario (fun sc ->
      let weighted_completion c =
        let acc = ref 0. in
        Array.iteri (fun i wk -> acc := !acc +. (wk.B.rate *. c.(i))) sc.B.workers;
        !acc
      in
      let c1 = B.completions sc B.Smith_greedy and c2 = B.completions sc B.Fifo in
      let o1 = weighted_completion c1 and o2 = weighted_completion c2 in
      let t1 = B.tasks_processed sc c1 and t2 = B.tasks_processed sc c2 in
      (* identical ordering up to tolerance *)
      (o1 -. o2) *. (t2 -. t1) >= -1e-6)

let () =
  let q tests = List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests in
  Alcotest.run "bandwidth"
    [
      ( "unit",
        [
          Alcotest.test_case "throughput hand" `Quick test_throughput_hand;
          Alcotest.test_case "late completion ignored" `Quick test_completion_after_horizon_ignored;
          Alcotest.test_case "equivalence identity" `Quick test_equivalence_identity;
          Alcotest.test_case "policies ranked" `Quick test_policies_ranked;
          Alcotest.test_case "exact engine" `Quick test_exact_engine;
        ] );
      ("properties", q [ prop_equivalence; prop_smaller_objective_larger_throughput ]);
    ]
