(* Tests for the Section V-B homogeneous class: the recurrence, the
   small-case optimal patterns the paper reports, and Conjecture 13
   (order-reversal symmetry), verified exactly with rationals as the
   paper did with Sage. *)

open Test_support
module EF = Support.EF
module EQ = Support.EQ
module Q = Support.Q
module Rng = Mwct_util.Rng
module G = Mwct_workload.Generator

let qdeltas_of_spec = Array.map (fun (r : Mwct_core.Spec.rat) -> Q.of_q r.num r.den)

let test_recurrence_hand () =
  (* Two unit tasks with delta 1 and 1/2 on P=1.
     Order (0,1): C0 = 1; C1 = 1 + (1 - 0)/ (1/2) = 3. Total 4.
     Order (1,0): C1 = 2; C0 = 2 + (1 - (1/2)*2)/1 = 2. Total 4.
     (reversal symmetry visible by hand) *)
  let deltas = [| Q.one; Q.of_q 1 2 |] in
  let c01 = EQ.Homogeneous.completion_times deltas [| 0; 1 |] in
  Alcotest.(check string) "C0" "1" (Q.to_string c01.(0));
  Alcotest.(check string) "C1" "3" (Q.to_string c01.(1));
  let c10 = EQ.Homogeneous.completion_times deltas [| 1; 0 |] in
  Alcotest.(check string) "C1 first" "2" (Q.to_string c10.(0));
  Alcotest.(check string) "C0 second" "2" (Q.to_string c10.(1));
  Alcotest.(check string) "reversal gap zero" "0"
    (Q.to_string (EQ.Homogeneous.reversal_gap deltas [| 0; 1 |]))

let test_valid_deltas () =
  Alcotest.(check bool) "ok" true (EQ.Homogeneous.valid_deltas [| Q.of_q 1 2; Q.one |]);
  Alcotest.(check bool) "too small" false (EQ.Homogeneous.valid_deltas [| Q.of_q 1 4 |]);
  Alcotest.(check bool) "too large" false (EQ.Homogeneous.valid_deltas [| Q.of_q 3 2 |])

(* The paper's reported optimal-order patterns (deltas sorted
   non-increasing δ1 >= δ2 >= ...):
   - 3 tasks: 1,3,2 and 2,3,1 (smallest delta in the middle);
   - 4 tasks: 1,3,2,4 and 4,2,3,1.
   (1-based in the paper; 0-based here.) *)
let test_three_task_pattern () =
  let deltas = [| Q.of_q 9 10; Q.of_q 7 10; Q.of_q 3 5 |] in
  (* sorted non-increasing *)
  let _, orders = EQ.Homogeneous.optimal_orders deltas in
  let has o = List.exists (fun o' -> o' = o) orders in
  Alcotest.(check bool) "1,3,2 optimal" true (has [| 0; 2; 1 |]);
  Alcotest.(check bool) "2,3,1 optimal" true (has [| 1; 2; 0 |])

(* NOTE (reproduction finding, see EXPERIMENTS.md E3): the paper prints
   the optimal 4-task orders as "1,3,2,4 and 4,2,3,1". Exhaustive exact
   search — cross-checked against the independent LP optimum — shows the
   generic optimal pair is 1,3,4,2 and its reverse 2,4,3,1; the paper's
   line appears to be a typo. *)
let test_four_task_pattern () =
  let deltas = [| Q.of_q 31 32; Q.of_q 27 32; Q.of_q 23 32; Q.of_q 18 32 |] in
  let _, orders = EQ.Homogeneous.optimal_orders deltas in
  let has o = List.exists (fun o' -> o' = o) orders in
  Alcotest.(check bool) "1,3,4,2 optimal" true (has [| 0; 2; 3; 1 |]);
  Alcotest.(check bool) "2,4,3,1 optimal" true (has [| 1; 3; 2; 0 |]);
  Alcotest.(check bool) "paper's printed 1,3,2,4 is NOT optimal here" false (has [| 0; 2; 1; 3 |])

let test_two_task_both_orders_optimal () =
  let deltas = [| Q.of_q 4 5; Q.of_q 2 3 |] in
  let _, orders = EQ.Homogeneous.optimal_orders deltas in
  Alcotest.(check int) "both orders optimal" 2 (List.length orders)

let test_to_instance_cross_check () =
  let deltas = [| Q.of_q 3 4; Q.of_q 1 2; Q.one |] in
  let inst = EQ.Homogeneous.to_instance deltas in
  let order = [| 2; 0; 1 |] in
  let by_rec = EQ.Homogeneous.total deltas order in
  let by_greedy = EQ.Schedule.sum_completion_time (EQ.Greedy.run inst order) in
  Alcotest.(check string) "recurrence = greedy" (Q.to_string by_greedy) (Q.to_string by_rec)

(* ---------- properties ---------- *)

let gen_deltas =
  QCheck2.Gen.map
    (fun (seed, n) -> qdeltas_of_spec (G.homogeneous_deltas (Rng.create seed) ~n ~den:64 ()))
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 1 9))

let prop_conjecture13_exact =
  QCheck2.Test.make ~name:"Conjecture 13: total(order) = total(reversed) exactly" ~count:150
    gen_deltas
    (fun deltas ->
      let n = Array.length deltas in
      let order = EQ.Orderings.random (Rng.create (n * 7919)) n in
      Q.sign (EQ.Homogeneous.reversal_gap deltas order) = 0)

let prop_five_task_condition =
  QCheck2.Test.make ~name:"n=5 optimal orders satisfy the paper's necessary condition" ~count:25
    (QCheck2.Gen.map
       (fun seed -> qdeltas_of_spec (G.homogeneous_deltas (Rng.create seed) ~n:5 ~den:4096 ()))
       (QCheck2.Gen.int_bound 1_000_000))
    (fun deltas ->
      (* The condition is stated for generic instances; skip draws with
         tied deltas (ties admit degenerate optimal orders). *)
      let sorted = Array.copy deltas in
      Array.sort Q.compare sorted;
      let has_tie = ref false in
      for i = 0 to 3 do
        if Q.equal sorted.(i) sorted.(i + 1) then has_tie := true
      done;
      !has_tie
      ||
      let _, orders = EQ.Homogeneous.optimal_orders deltas in
      List.for_all (EQ.Homogeneous.five_task_condition deltas) orders)

let prop_best_order_vs_lp =
  (* On this class the best greedy order is the true optimum
     (Theorem 11 since delta >= P/2 = 1/2... strictly wide when > 1/2).
     Compare against the float LP for small n. *)
  QCheck2.Test.make ~name:"best greedy order matches LP optimum on the class" ~count:12
    (QCheck2.Gen.map
       (fun seed -> G.homogeneous_deltas (Rng.create seed) ~n:4 ~den:64 ())
       (QCheck2.Gen.int_bound 1_000_000))
    (fun deltas_spec ->
      let qdeltas = qdeltas_of_spec deltas_spec in
      let best, _ = EQ.Homogeneous.best_order qdeltas in
      (* Same instance through the float LP. *)
      let fdeltas = Array.map (fun (r : Mwct_core.Spec.rat) -> float_of_int r.num /. float_of_int r.den) deltas_spec in
      let inst = EF.Homogeneous.to_instance fdeltas in
      let opt, _ = EF.Lp_schedule.optimal inst in
      Float.abs (Q.to_float best -. opt) < 1e-6)

let test_organ_pipe_patterns () =
  (* Ranks over sorted-descending deltas: the known patterns. *)
  let deltas n = Array.init n (fun i -> Q.of_q (1024 - (i * 64)) 1024) in
  Alcotest.(check (array int)) "n=2" [| 0; 1 |] (EQ.Homogeneous.organ_pipe (deltas 2));
  Alcotest.(check (array int)) "n=3" [| 0; 2; 1 |] (EQ.Homogeneous.organ_pipe (deltas 3));
  Alcotest.(check (array int)) "n=4" [| 0; 2; 3; 1 |] (EQ.Homogeneous.organ_pipe (deltas 4));
  Alcotest.(check (array int)) "n=5" [| 0; 2; 4; 3; 1 |] (EQ.Homogeneous.organ_pipe (deltas 5));
  Alcotest.(check (array int)) "n=7" [| 0; 2; 4; 6; 5; 3; 1 |] (EQ.Homogeneous.organ_pipe (deltas 7));
  (* Unsorted input: the order is over ranks, returned as task indices. *)
  let unsorted = [| Q.of_q 3 4; Q.of_q 63 64; Q.of_q 1 2 |] in
  (* ranks: task 1 (63/64), task 0 (3/4), task 2 (1/2) -> organ-pipe 1, 2, 0 *)
  Alcotest.(check (array int)) "unsorted" [| 1; 2; 0 |] (EQ.Homogeneous.organ_pipe unsorted)

let prop_organ_pipe_optimal_small =
  (* Exactly optimal for n <= 4 (exact arithmetic). *)
  QCheck2.Test.make ~name:"organ-pipe is optimal for n <= 4 (exact)" ~count:40
    (QCheck2.Gen.map
       (fun (seed, n) -> qdeltas_of_spec (G.homogeneous_deltas (Rng.create seed) ~n ~den:256 ()))
       QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 2 4)))
    (fun deltas ->
      let best, _ = EQ.Homogeneous.best_order deltas in
      let pipe = EQ.Homogeneous.total deltas (EQ.Homogeneous.organ_pipe deltas) in
      Q.equal best pipe)

let prop_completion_monotone =
  (* Non-strict: with δ = 1/2 a follower can finish simultaneously with
     its predecessor (leftover volume exactly zero). *)
  QCheck2.Test.make ~name:"completion times are non-decreasing along the order" ~count:100 gen_deltas
    (fun deltas ->
      let n = Array.length deltas in
      let order = EQ.Orderings.identity n in
      let c = EQ.Homogeneous.completion_times deltas order in
      let ok = ref true in
      for i = 0 to n - 2 do
        if Q.compare c.(i) c.(i + 1) > 0 then ok := false
      done;
      !ok)

let () =
  let q tests = List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests in
  Alcotest.run "homogeneous"
    [
      ( "unit",
        [
          Alcotest.test_case "recurrence hand" `Quick test_recurrence_hand;
          Alcotest.test_case "valid deltas" `Quick test_valid_deltas;
          Alcotest.test_case "3-task pattern" `Quick test_three_task_pattern;
          Alcotest.test_case "4-task pattern" `Quick test_four_task_pattern;
          Alcotest.test_case "2-task symmetry" `Quick test_two_task_both_orders_optimal;
          Alcotest.test_case "recurrence = greedy" `Quick test_to_instance_cross_check;
          Alcotest.test_case "organ-pipe patterns" `Quick test_organ_pipe_patterns;
        ] );
      ( "properties",
        q
          [
            prop_conjecture13_exact;
            prop_five_task_condition;
            prop_best_order_vs_lp;
            prop_organ_pipe_optimal_small;
            prop_completion_monotone;
          ] );
    ]
