(* Tests for the Corollary-1 LP machinery: schedule reconstruction,
   optimality sandwiching (bounds <= OPT <= heuristics), exact/float
   agreement, and cross-validation of the enumeration. *)

open Test_support
module EF = Support.EF
module EQ = Support.EQ
module Q = Support.Q
module Rng = Mwct_util.Rng

let f = Alcotest.(check (float 1e-6))

(* Single task: optimum is height V/delta, schedule saturates. *)
let test_lp_single_task () =
  let inst = Support.finst (Support.uspec ~procs:4 [ ((8, 1), 2) ]) in
  let obj, s = EF.Lp_schedule.optimal inst in
  f "objective = V/delta" 4. obj;
  Alcotest.(check bool) "schedule valid" true (EF.Schedule.is_valid s)

(* Two unit tasks, P=1, delta=1: optimum is 1 + 2 = 3 (sequential). *)
let test_lp_sequential () =
  let inst = Support.finst (Support.uspec ~procs:1 [ ((1, 1), 1); ((1, 1), 1) ]) in
  let obj, s = EF.Lp_schedule.optimal inst in
  f "objective" 3. obj;
  Alcotest.(check bool) "schedule valid" true (EF.Schedule.is_valid s)

(* Weighted Smith case with delta = P: heavy-weight task first.
   P=1, T0 (V=1, w=1), T1 (V=1, w=10): optimal = run T1 first:
   1*10 + 2*1 = 12 (versus 1 + 2*10 = 21). *)
let test_lp_weights_matter () =
  let inst = Support.finst (Support.spec ~procs:1 [ ((1, 1), (1, 1), 1); ((1, 1), (10, 1), 1) ]) in
  let obj, _ = EF.Lp_schedule.optimal inst in
  f "objective" 12. obj

(* Exact optimum on a known fractional case: P=2, two tasks V=1,
   delta=1, and one wide task V=2, delta=2, all weight 1.
   (Checks the exact engine end-to-end through the LP.) *)
let test_lp_exact_small () =
  let inst = Support.qinst (Support.uspec ~procs:2 [ ((1, 1), 1); ((1, 1), 1); ((2, 1), 2) ]) in
  let obj, s = EQ.Lp_schedule.optimal inst in
  Alcotest.(check bool) "schedule valid" true (EQ.Schedule.is_valid s);
  (* Cross-check against best greedy (Conjecture 12 holds here). *)
  let bg, _ = EQ.Lp_schedule.best_greedy inst in
  Alcotest.(check string) "optimal = best greedy" (Q.to_string bg) (Q.to_string obj)

let test_lp_guard () =
  let inst = Support.finst (Support.uspec ~procs:2 (List.init 9 (fun _ -> ((1, 1), 1)))) in
  Alcotest.(check bool) "guard triggers" true
    (try
       ignore (EF.Lp_schedule.optimal inst);
       false
     with Invalid_argument _ -> true)

(* ---------- properties ---------- *)

let prop_lp_schedule_valid =
  QCheck2.Test.make ~name:"LP-optimal schedules are valid" ~count:60 ~print:Support.print_spec
    (Support.gen_spec ~max_procs:5 ~max_n:4 `Uniform)
    (fun spec ->
      let inst = Support.finst spec in
      let _, s = EF.Lp_schedule.optimal inst in
      EF.Schedule.is_valid s)

let prop_lp_sandwich =
  QCheck2.Test.make ~name:"bounds <= OPT <= heuristics" ~count:60 ~print:Support.print_spec
    (Support.gen_spec ~max_procs:5 ~max_n:4 `Uniform)
    (fun spec ->
      let inst = Support.finst spec in
      let opt, _ = EF.Lp_schedule.optimal inst in
      let lower = EF.Lower_bounds.best inst in
      let wdeq, _ = EF.Wdeq.wdeq inst in
      let wdeq_obj = EF.Schedule.weighted_completion_time wdeq in
      let smith_greedy = EF.Greedy.objective inst (EF.Orderings.smith inst) in
      lower <= opt +. 1e-6 && opt <= wdeq_obj +. 1e-6 && opt <= smith_greedy +. 1e-6)

let prop_lp_exact_matches_float =
  QCheck2.Test.make ~name:"exact LP optimum matches float LP optimum" ~count:25
    ~print:Support.print_spec
    (Support.gen_spec ~max_procs:4 ~max_n:3 ~den:16 `Uniform)
    (fun spec ->
      let fo, _ = EF.Lp_schedule.optimal (Support.finst spec) in
      let qo, _ = EQ.Lp_schedule.optimal (Support.qinst spec) in
      Float.abs (fo -. Q.to_float qo) < 1e-6)

let prop_optimal_below_every_order =
  QCheck2.Test.make ~name:"optimum below each single-order LP" ~count:40
    ~print:(fun (s, _) -> Support.print_spec s)
    QCheck2.Gen.(pair (Support.gen_spec ~max_procs:4 ~max_n:4 `Uniform) (int_bound 1_000_000))
    (fun (spec, seed) ->
      let inst = Support.finst spec in
      let opt, _ = EF.Lp_schedule.optimal inst in
      let n = Array.length inst.EF.Types.tasks in
      let pi = EF.Orderings.random (Rng.create seed) n in
      match EF.Lp_schedule.optimal_for_order inst pi with
      | None -> false
      | Some (obj, s) -> opt <= obj +. 1e-6 && EF.Schedule.is_valid s)

(* The LP for the order a greedy schedule realizes is never worse than
   that greedy schedule. *)
let prop_lp_improves_greedy_order =
  QCheck2.Test.make ~name:"LP on greedy's own order improves greedy" ~count:40
    ~print:(fun (s, _) -> Support.print_spec s)
    QCheck2.Gen.(pair (Support.gen_spec ~max_procs:4 ~max_n:4 `Uniform) (int_bound 1_000_000))
    (fun (spec, seed) ->
      let inst = Support.finst spec in
      let n = Array.length inst.EF.Types.tasks in
      let sigma = EF.Orderings.random (Rng.create seed) n in
      let g = EF.Greedy.run inst sigma in
      let completion_order = g.EF.Types.order in
      match EF.Lp_schedule.optimal_for_order inst completion_order with
      | None -> false
      | Some (obj, _) -> obj <= EF.Schedule.weighted_completion_time g +. 1e-6)

let () =
  let q tests = List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests in
  Alcotest.run "lp_schedule"
    [
      ( "unit",
        [
          Alcotest.test_case "single task" `Quick test_lp_single_task;
          Alcotest.test_case "sequential" `Quick test_lp_sequential;
          Alcotest.test_case "weights matter" `Quick test_lp_weights_matter;
          Alcotest.test_case "exact small" `Quick test_lp_exact_small;
          Alcotest.test_case "enumeration guard" `Quick test_lp_guard;
        ] );
      ( "properties",
        q
          [
            prop_lp_schedule_valid;
            prop_lp_sandwich;
            prop_lp_exact_matches_float;
            prop_optimal_below_every_order;
            prop_lp_improves_greedy_order;
          ] );
    ]
