(* Tests for the non-clairvoyant event simulator (lib/ncv): policy
   share computations, trace validity, agreement with the core WDEQ
   simulator on zero-release instances, and arrival handling. *)

open Test_support
module EF = Support.EF
module Sim = Mwct_ncv.Simulator.Float
module SimQ = Mwct_ncv.Simulator.Exact
module Pol = Sim.P
module Q = Support.Q
module Rng = Mwct_util.Rng

let f = Alcotest.(check (float 1e-9))

let test_policy_shares_wdeq () =
  (* P=4; ids 0 (w=1, cap=1) and 1 (w=1, cap=4): clipped share 1 and
     surplus 3. *)
  let views = [ { Pol.id = 0; weight = 1.; cap = 1. }; { Pol.id = 1; weight = 1.; cap = 4. } ] in
  let shares = Pol.shares Pol.Wdeq ~capacity:4. views in
  f "task 0 clipped" 1. (List.assoc 0 shares);
  f "task 1 surplus" 3. (List.assoc 1 shares)

let test_policy_shares_equi_wastes () =
  (* EQUI gives min(P/n, cap) and wastes the surplus. *)
  let views = [ { Pol.id = 0; weight = 1.; cap = 1. }; { Pol.id = 1; weight = 1.; cap = 4. } ] in
  let shares = Pol.shares Pol.Equi ~capacity:4. views in
  f "task 0" 1. (List.assoc 0 shares);
  f "task 1 fair only" 2. (List.assoc 1 shares)

let test_policy_priority () =
  let views =
    [
      { Pol.id = 0; weight = 1.; cap = 3. };
      { Pol.id = 1; weight = 5.; cap = 3. };
      { Pol.id = 2; weight = 3.; cap = 3. };
    ]
  in
  let shares = Pol.shares Pol.Priority_weight ~capacity:4. views in
  f "heaviest gets cap" 3. (List.assoc 1 shares);
  f "second gets rest" 1. (List.assoc 2 shares);
  f "lightest starves" 0. (List.assoc 0 shares)

let test_simulator_matches_core_wdeq () =
  let spec = Support.spec ~procs:4 [ ((1, 1), (1, 1), 1); ((6, 1), (1, 1), 4); ((2, 1), (3, 1), 2) ] in
  let inst = Support.finst spec in
  let tr = Sim.run inst Pol.Wdeq in
  Alcotest.(check (result unit string)) "trace valid" (Ok ()) (Sim.check tr);
  let core, _ = EF.Wdeq.wdeq inst in
  f "objective matches core simulator"
    (EF.Schedule.weighted_completion_time core)
    (Sim.weighted_completion_time tr)

let test_arrivals () =
  (* P=1; two unit tasks delta=1; second released at t=5: it runs
     alone after the first finishes at 1... but arrives at 5. *)
  let spec = Support.uspec ~procs:1 [ ((1, 1), 1); ((1, 1), 1) ] in
  let inst = Support.finst spec in
  let tr = Sim.run ~releases:[| 0.; 5. |] inst Pol.Wdeq in
  Alcotest.(check (result unit string)) "trace valid" (Ok ()) (Sim.check tr);
  f "first completes at 1" 1. tr.Sim.records.(0).Sim.completion;
  f "second completes at 6" 6. tr.Sim.records.(1).Sim.completion;
  f "flow time = 1 + 1" 2. (Sim.weighted_flow_time tr);
  (* Events in order: arrival 0, completion 0, arrival 1, completion 1. *)
  let kinds = List.map snd tr.Sim.events in
  Alcotest.(check int) "four events" 4 (List.length kinds);
  (match kinds with
  | [ Sim.Arrival 0; Sim.Completion 0; Sim.Arrival 1; Sim.Completion 1 ] -> ()
  | _ -> Alcotest.fail "unexpected event order")

let test_arrival_preempts_shares () =
  (* P=2, task 0 (V=4, d=2) alone until task 1 (V=1, d=2, w=1) arrives
     at t=1: shares drop from 2 to 1 each. *)
  let spec = Support.uspec ~procs:2 [ ((4, 1), 2); ((1, 1), 2) ] in
  let inst = Support.finst spec in
  let tr = Sim.run ~releases:[| 0.; 1. |] inst Pol.Wdeq in
  (* Task 0: rate 2 on [0,1], then 1 until task 1 finishes at t=2, then
     2 again: remaining at t=1 is 2; at t=2 is 1, finishes 1+? ...
     t=2: task1 done (V=1 at rate 1). task0 has 1 left at rate 2: ends 2.5. *)
  f "task 1 completes at 2" 2. tr.Sim.records.(1).Sim.completion;
  f "task 0 completes at 2.5" 2.5 tr.Sim.records.(0).Sim.completion;
  Alcotest.(check (result unit string)) "trace valid" (Ok ()) (Sim.check tr)

let test_exact_simulator () =
  let spec = Support.spec ~procs:4 [ ((1, 1), (1, 1), 1); ((6, 1), (1, 1), 4) ] in
  let inst = Support.qinst spec in
  let tr = SimQ.run inst SimQ.P.Wdeq in
  Alcotest.(check string) "C1 = 7/4" "7/4" (Q.to_string tr.SimQ.records.(1).SimQ.completion)

(* ---------- properties ---------- *)

let gen_with_releases =
  let open QCheck2.Gen in
  let* spec = Support.gen_spec `Uniform in
  let* seed = int_bound 1_000_000 in
  return (spec, seed)

let releases_of rng n = Array.init n (fun _ -> float_of_int (Rng.dyadic rng ~den:16) /. 8.)

let prop_traces_valid =
  QCheck2.Test.make ~name:"all policies produce valid traces (with arrivals)" ~count:150
    ~print:(fun (s, _) -> Support.print_spec s)
    gen_with_releases
    (fun (spec, seed) ->
      let inst = Support.finst spec in
      let n = Array.length inst.EF.Types.tasks in
      let releases = releases_of (Rng.create seed) n in
      List.for_all
        (fun p ->
          let tr = Sim.run ~releases inst p in
          match Sim.check tr with Ok () -> true | Error _ -> false)
        Pol.all)

let prop_zero_release_matches_core =
  QCheck2.Test.make ~name:"zero-release WDEQ trace = core WDEQ schedule" ~count:150
    ~print:Support.print_spec (Support.gen_spec `Uniform)
    (fun spec ->
      let inst = Support.finst spec in
      let tr = Sim.run inst Pol.Wdeq in
      let s = Sim.to_column_schedule tr in
      let core, _ = EF.Wdeq.wdeq inst in
      EF.Schedule.is_valid s
      && Float.abs (Sim.weighted_completion_time tr -. EF.Schedule.weighted_completion_time core) < 1e-6)

let prop_completions_after_release =
  QCheck2.Test.make ~name:"completions never precede release + height" ~count:150
    ~print:(fun (s, _) -> Support.print_spec s)
    gen_with_releases
    (fun (spec, seed) ->
      let inst = Support.finst spec in
      let n = Array.length inst.EF.Types.tasks in
      let releases = releases_of (Rng.create seed) n in
      let tr = Sim.run ~releases inst Pol.Wdeq in
      Array.for_all
        (fun i ->
          tr.Sim.records.(i).Sim.completion +. 1e-9
          >= releases.(i) +. EF.Instance.height inst i)
        (Array.init n (fun i -> i)))

let prop_deq_beats_equi =
  (* With equal weights, DEQ's share dominates EQUI's pointwise (the
     redistributed surplus is never wasted), so every completion — and
     the makespan — is no later. With unequal weights this fails: WDEQ
     can starve a light straggler that EQUI would treat fairly. *)
  QCheck2.Test.make ~name:"DEQ makespan <= EQUI makespan (unweighted)" ~count:150
    ~print:Support.print_spec (Support.gen_spec `Unweighted)
    (fun spec ->
      let inst = Support.finst spec in
      let m p = Sim.makespan (Sim.run inst p) in
      m Pol.Deq <= m Pol.Equi +. 1e-6)

let () =
  let q tests = List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests in
  Alcotest.run "ncv"
    [
      ( "policies",
        [
          Alcotest.test_case "wdeq shares" `Quick test_policy_shares_wdeq;
          Alcotest.test_case "equi wastes" `Quick test_policy_shares_equi_wastes;
          Alcotest.test_case "priority" `Quick test_policy_priority;
        ] );
      ( "simulator",
        [
          Alcotest.test_case "matches core wdeq" `Quick test_simulator_matches_core_wdeq;
          Alcotest.test_case "arrivals" `Quick test_arrivals;
          Alcotest.test_case "arrival reshare" `Quick test_arrival_preempts_shares;
          Alcotest.test_case "exact engine" `Quick test_exact_simulator;
        ] );
      ( "properties",
        q
          [
            prop_traces_valid;
            prop_zero_release_matches_core;
            prop_completions_after_release;
            prop_deq_beats_equi;
          ] );
    ]
