(* Benchmark harness.

   Part 1 regenerates every table/experiment of the paper (E1-E10, see
   DESIGN.md §5 and EXPERIMENTS.md) at Quick scale — run
   `mwct experiment all --full` for paper-scale sample sizes.

   Part 2 runs bechamel micro-benchmarks (B1-B8) over the computational
   kernels: Water-Filling normalization, Greedy, WDEQ simulation, the
   Corollary-1 LP, integerization + assignment, the homogeneous
   recurrence, and the exact-arithmetic substrate.

   Part 3 measures the online runtime: sustained input-event throughput
   of the incremental engine on a churning 1000-alive-task stream
   (BENCH_3.json).

   Part 4 tracks the engine data plane (DESIGN.md §12): before/after
   rows for the three targets of the allocation-free hot path —
   simulate wall time at n=5000, serve event throughput, and minor
   words allocated per steady-state Advance (BENCH_4.json).

   Part 5 prices the generalized rate model: batch WDEQ on the same
   linear workload through the float fast path and through the generic
   concave path (identity speedup curves), BENCH_5.json.

   `--quick` is the CI smoke mode: experiments are skipped, the
   bechamel quota is cut, and the throughput run is shortened — every
   BENCH_*.json is still produced. `--min-events-per-sec F` turns the
   part-3 throughput row into a hard floor (non-zero exit below it), so
   CI can fail on engine regressions against the checked-in baseline. *)

open Bechamel
open Toolkit
module EF = Mwct_core.Engine.Float
module EQ = Mwct_core.Engine.Exact
module SF = Mwct_solver.Solver.Float
module G = Mwct_workload.Generator
module Rng = Mwct_util.Rng
module Q = Mwct_rational.Rational
module Nat = Mwct_bigint.Nat

(* ---------- part 1: experiment tables ---------- *)

let run_experiments () =
  print_endline "================================================================";
  print_endline " Paper experiment regeneration (Quick scale; --full via the CLI)";
  print_endline "================================================================";
  print_newline ();
  Mwct_experiments.Experiments.run_all Mwct_experiments.Experiments.Quick

(* ---------- part 2: micro-benchmarks ---------- *)

let instance_of_size n =
  EF.Instance.of_spec (G.uniform (Rng.create (n * 31 + 7)) ~procs:16 ~n ())

let exact_instance_of_size n =
  EQ.Instance.of_spec (G.uniform (Rng.create (n * 31 + 7)) ~procs:16 ~n ())

(* B1: WF normalization, n = 100. *)
let bench_wf =
  let inst = instance_of_size 100 in
  let sigma = EF.Orderings.smith inst in
  let times = EF.Schedule.completion_times (EF.Greedy.run inst sigma) in
  Test.make ~name:"B1 water_filling.build n=100" (Staged.stage (fun () ->
      match EF.Water_filling.build inst times with Ok _ -> () | Error _ -> assert false))

(* B2: Greedy, n = 100. *)
let bench_greedy =
  let inst = instance_of_size 100 in
  let sigma = EF.Orderings.smith inst in
  Test.make ~name:"B2 greedy.run n=100" (Staged.stage (fun () -> ignore (EF.Greedy.run inst sigma)))

(* B3: WDEQ simulation, n = 100 — resolved once through the registry,
   timing the same kernel as before. *)
let wdeq_solve = (SF.find_exn "wdeq").SF.solve

let bench_wdeq =
  let inst = instance_of_size 100 in
  Test.make ~name:"B3 wdeq.simulate n=100" (Staged.stage (fun () -> ignore (wdeq_solve inst)))

(* B4: one Corollary-1 LP, n = 6 (float). *)
let bench_lp =
  let inst = instance_of_size 6 in
  let pi = EF.Orderings.identity 6 in
  Test.make ~name:"B4 lp.optimal_for_order n=6" (Staged.stage (fun () ->
      ignore (EF.Lp_schedule.optimal_for_order inst pi)))

(* B5: integerize + assignment, n = 50. *)
let bench_integerize =
  let inst = instance_of_size 50 in
  let sigma = EF.Orderings.smith inst in
  let s = EF.Water_filling.normalize (EF.Greedy.run inst sigma) in
  Test.make ~name:"B5 integerize+assign n=50" (Staged.stage (fun () ->
      let is, _ = EF.Integerize.of_columns s in
      ignore (EF.Assignment.assign is)))

(* B6: homogeneous recurrence, n = 1000, exact rationals. *)
let bench_homogeneous =
  let deltas =
    Array.map
      (fun (r : Mwct_core.Spec.rat) -> Q.of_q r.Mwct_core.Spec.num r.Mwct_core.Spec.den)
      (G.homogeneous_deltas (Rng.create 99) ~n:150 ~den:1024 ())
  in
  let order = EQ.Orderings.identity 150 in
  Test.make ~name:"B6 homogeneous.total n=150 exact" (Staged.stage (fun () ->
      ignore (EQ.Homogeneous.total deltas order)))

(* B7: exact WDEQ (rational arithmetic end-to-end), n = 20. *)
let bench_exact_wdeq =
  let inst = exact_instance_of_size 20 in
  let solve = (Mwct_solver.Solver.Exact.find_exn "wdeq").Mwct_solver.Solver.Exact.solve in
  Test.make ~name:"B7 wdeq.simulate n=20 exact" (Staged.stage (fun () -> ignore (solve inst)))

(* B8: bignum substrate: 300-digit multiply + divide. *)
let bench_bigint =
  let a = Nat.of_string (String.concat "" (List.init 30 (fun i -> string_of_int (1000000000 + (i * 7))))) in
  let b = Nat.of_string (String.concat "" (List.init 15 (fun i -> string_of_int (2000000000 - (i * 13))))) in
  Test.make ~name:"B8 nat.mul+divmod 300 digits" (Staged.stage (fun () ->
      let p = Nat.mul a b in
      ignore (Nat.divmod p b)))

(* B9: Karatsuba vs schoolbook at ~4500 digits. *)
let big_a = Nat.pow (Nat.of_string "123456789123456789") 1000
let big_b = Nat.pow (Nat.of_string "987654321987654321") 1000

let bench_karatsuba =
  Test.make ~name:"B9a nat.mul karatsuba 17k digits" (Staged.stage (fun () -> ignore (Nat.mul big_a big_b)))

let bench_schoolbook =
  Test.make ~name:"B9b nat.mul schoolbook 17k digits"
    (Staged.stage (fun () -> ignore (Nat.mul_schoolbook big_a big_b)))

(* B10: release-dates LP, n = 12. *)
let bench_release_dates =
  let inst = instance_of_size 12 in
  let releases = Array.init 12 (fun i -> float_of_int (i mod 4) /. 8.) in
  Test.make ~name:"B10 release_dates.optimal_makespan n=12" (Staged.stage (fun () ->
      ignore (EF.Release_dates.optimal_makespan inst releases)))

(* B11: moldable heuristic, n = 12. *)
let bench_moldable =
  let inst = instance_of_size 12 in
  Test.make ~name:"B11 moldable.best_heuristic n=12" (Staged.stage (fun () ->
      ignore (EF.Moldable.best_heuristic inst)))

(* B12: ncv simulator with arrivals, n = 100. *)
let bench_ncv =
  let inst = instance_of_size 100 in
  let module Sim = Mwct_ncv.Simulator.Float in
  let releases = Array.init 100 (fun i -> float_of_int (i mod 10) /. 16.) in
  Test.make ~name:"B12 ncv.run wdeq+arrivals n=100" (Staged.stage (fun () ->
      ignore (Sim.run ~releases inst Sim.P.Wdeq)))

(* B13: simplex pivot-rule ablation on a dense random LP. *)
module SxF = Mwct_simplex.Simplex.Make (Mwct_field.Field.Float_field)

let build_pivot_lp () =
  let rng = Rng.create 1313 in
  let p = SxF.create () in
  let vars = Array.init 20 (fun _ -> SxF.add_var p) in
  for _ = 1 to 30 do
    let terms = Array.to_list (Array.map (fun v -> (v, float_of_int (Rng.int_in rng (-4) 5))) vars) in
    SxF.add_constraint p terms SxF.Geq (float_of_int (Rng.int_in rng 0 10))
  done;
  Array.iter (fun v -> SxF.add_constraint p [ (v, 1.) ] SxF.Leq 50.) vars;
  SxF.set_objective p (Array.to_list (Array.map (fun v -> (v, 1.)) vars));
  p

let bench_bland =
  Test.make ~name:"B13a simplex bland 20v/50c" (Staged.stage (fun () ->
      ignore (SxF.solve ~rule:SxF.Bland (build_pivot_lp ()))))

let bench_dantzig =
  Test.make ~name:"B13b simplex dantzig 20v/50c" (Staged.stage (fun () ->
      ignore (SxF.solve ~rule:SxF.Dantzig (build_pivot_lp ()))))

(* B14: the event-driven WDEQ simulation at scale. The O(n log n)
   share kernel plus sparse columns keep a full n=1000 run in the
   milliseconds and make n=5000 feasible at all (the seed's dense
   O(n^3) path allocated n^2 floats per schedule and re-ran the
   List.partition fixpoint per event). *)
let bench_wdeq_1000 =
  let inst = instance_of_size 1000 in
  Test.make ~name:"B14a wdeq.simulate n=1000" (Staged.stage (fun () -> ignore (wdeq_solve inst)))

let bench_wdeq_5000 =
  let inst = instance_of_size 5000 in
  Test.make ~name:"B14b wdeq.simulate n=5000" (Staged.stage (fun () -> ignore (wdeq_solve inst)))

(* Seed baseline for B14: the pre-sparse simulate, verbatim from the
   growth seed — List.partition share fixpoint re-run per event and a
   dense n x n allocation matrix. Kept here (not in lib/) purely to
   measure the speedup of the event-driven kernels. *)
module Seed_wdeq = struct
  module F = Mwct_field.Field.Float_field

  let shares ~p alive : (int * F.t) list =
    let rec go unsat saturated r w =
      let violating, rest =
        List.partition (fun (_, wi, di) -> F.compare (F.mul di w) (F.mul wi r) < 0) unsat
      in
      match violating with
      | [] ->
        let give =
          List.map (fun (i, wi, _) -> (i, if F.sign w > 0 then F.div (F.mul wi r) w else F.zero)) rest
        in
        saturated @ give
      | _ ->
        let r' = List.fold_left (fun acc (_, _, di) -> F.sub acc di) r violating in
        let w' = List.fold_left (fun acc (_, wi, _) -> F.sub acc wi) w violating in
        go rest (List.map (fun (i, _, di) -> (i, di)) violating @ saturated) r' w'
    in
    let w0 = List.fold_left (fun acc (_, wi, _) -> F.add acc wi) F.zero alive in
    go alive [] p w0

  let simulate (inst : EF.Types.instance) =
    let n = Array.length inst.EF.Types.tasks in
    let remaining = Array.map (fun (t : EF.Types.task) -> t.EF.Types.volume) inst.EF.Types.tasks in
    let alive = Array.make n true in
    let finish = Array.make n F.zero in
    let alloc = Array.make_matrix n n F.zero in
    let t_now = ref F.zero in
    let col = ref 0 in
    while !col < n do
      let alive_list =
        List.filter_map
          (fun i ->
            if alive.(i) then
              Some (i, inst.EF.Types.tasks.(i).EF.Types.weight, EF.Instance.effective_delta inst i)
            else None)
          (List.init n (fun i -> i))
      in
      let share_list = shares ~p:inst.EF.Types.procs alive_list in
      let dt =
        List.fold_left
          (fun acc (i, s) ->
            if F.sign s > 0 then begin
              let ti = F.div remaining.(i) s in
              match acc with None -> Some ti | Some a -> Some (F.min a ti)
            end
            else acc)
          None share_list
      in
      let dt = match dt with Some d -> d | None -> assert false in
      let t_end = F.add !t_now dt in
      let deltas = Array.make n F.zero in
      List.iter (fun (i, s) -> deltas.(i) <- s) share_list;
      let finished = ref [] in
      List.iter
        (fun (i, s) ->
          remaining.(i) <- F.sub remaining.(i) (F.mul s dt);
          if F.leq_approx remaining.(i) F.zero then finished := i :: !finished)
        share_list;
      let finished = List.sort Stdlib.compare !finished in
      List.iteri
        (fun k i ->
          let j = !col + k in
          finish.(j) <- t_end;
          alive.(i) <- false;
          if k = 0 then Array.iteri (fun i' s -> alloc.(i').(j) <- s) deltas)
        finished;
      col := !col + List.length finished;
      t_now := t_end
    done;
    (finish, alloc)
end

let bench_wdeq_seed_100 =
  let inst = instance_of_size 100 in
  Test.make ~name:"B14c wdeq.simulate seed-baseline n=100" (Staged.stage (fun () ->
      ignore (Seed_wdeq.simulate inst)))

let bench_wdeq_seed_1000 =
  let inst = instance_of_size 1000 in
  Test.make ~name:"B14d wdeq.simulate seed-baseline n=1000" (Staged.stage (fun () ->
      ignore (Seed_wdeq.simulate inst)))

(* B15: one share computation, fast kernel vs the seed's List.partition
   fixpoint, at n=100 and n=1000 — the per-event cost behind B14. On
   benign uniform instances the reference converges in a couple of
   rounds, so a standalone fast call (which pays a fresh sort) can
   lose; simulate wins because the ratio sort is hoisted out of the
   event loop and the worst case drops from O(n^2) to O(log n). *)
let alive_of_size n =
  let inst = instance_of_size n in
  ( inst.EF.Types.procs,
    List.init n (fun i ->
        (i, inst.EF.Types.tasks.(i).EF.Types.weight, EF.Instance.effective_delta inst i)) )

let bench_shares_fast_100 =
  let p, alive = alive_of_size 100 in
  Test.make ~name:"B15a wdeq.shares fast n=100" (Staged.stage (fun () ->
      ignore (EF.Wdeq.shares ~p alive)))

let bench_shares_ref_100 =
  let p, alive = alive_of_size 100 in
  Test.make ~name:"B15b wdeq.shares reference n=100" (Staged.stage (fun () ->
      ignore (EF.Wdeq.shares_reference ~p alive)))

let bench_shares_fast_1000 =
  let p, alive = alive_of_size 1000 in
  Test.make ~name:"B15c wdeq.shares fast n=1000" (Staged.stage (fun () ->
      ignore (EF.Wdeq.shares ~p alive)))

let bench_shares_ref_1000 =
  let p, alive = alive_of_size 1000 in
  Test.make ~name:"B15d wdeq.shares reference n=1000" (Staged.stage (fun () ->
      ignore (EF.Wdeq.shares_reference ~p alive)))

(* Registry-driven solver benchmarks: every solver in the registry is
   timed automatically — registering a new algorithm adds its row here
   (and to BENCH_2.json) with no bench edit. Enumerative solvers get a
   small instance (the LP guard is n = 8); the rest run at n = 50. *)
let registry_tests =
  let inst_small = instance_of_size 6 in
  let inst_big = instance_of_size 50 in
  List.map
    (fun (s : SF.t) ->
      let enumerative = SF.has_cap Mwct_solver.Solver.Enumerative s in
      let inst = if enumerative then inst_small else inst_big in
      let n = if enumerative then 6 else 50 in
      Test.make
        ~name:(Printf.sprintf "REG %s n=%d" s.SF.info.Mwct_solver.Solver.name n)
        (Staged.stage (fun () -> ignore (s.SF.solve inst))))
    SF.all

let benchmark ~quota =
  let tests =
    [
      bench_wf; bench_greedy; bench_wdeq; bench_lp; bench_integerize; bench_homogeneous;
      bench_exact_wdeq; bench_bigint; bench_karatsuba; bench_schoolbook; bench_release_dates;
      bench_moldable; bench_ncv; bench_bland; bench_dantzig; bench_wdeq_1000; bench_wdeq_5000;
      bench_wdeq_seed_100; bench_wdeq_seed_1000; bench_shares_fast_100; bench_shares_ref_100;
      bench_shares_fast_1000; bench_shares_ref_1000;
    ]
    @ registry_tests
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~stabilize:true () in
  let raw_results =
    Benchmark.all cfg instances (Test.make_grouped ~name:"mwct" ~fmt:"%s %s" tests)
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw_results in
  print_endline "================================================================";
  print_endline " Micro-benchmarks (ns per run, OLS on monotonic clock)";
  print_endline "================================================================";
  let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  List.iter
    (fun (name, v) ->
      match Analyze.OLS.estimates v with
      | Some [ est ] -> Printf.printf "  %-40s %12.0f ns/run\n" name est
      | _ -> Printf.printf "  %-40s (no estimate)\n" name)
    rows;
  rows

(* Machine-readable results: kernel name -> ns/run, for regression
   tracking across PRs. *)
let emit_json path rows =
  let oc = open_out path in
  let escape s =
    String.concat "" (List.map (function '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
        (List.init (String.length s) (String.get s)))
  in
  output_string oc "{\n";
  let entries =
    List.filter_map
      (fun (name, v) ->
        match Analyze.OLS.estimates v with
        | Some [ est ] -> Some (Printf.sprintf "  \"%s\": %.1f" (escape name) est)
        | _ -> None)
      rows
  in
  output_string oc (String.concat ",\n" entries);
  output_string oc "\n}\n";
  close_out oc;
  Printf.printf "\nWrote %d benchmark rows to %s\n" (List.length entries) path

(* "mwct REG <solver> n=..." rows come from the registry loop; they go
   to BENCH_2.json so the hand-written kernel rows of BENCH_1.json stay
   comparable across PRs. *)
let is_registry_row (name, _) =
  String.length name >= 9 && String.sub name 0 9 = "mwct REG "

(* ---------- part 3: online engine event throughput ---------- *)

module EnF = Mwct_runtime.Engine.Float
module PF = Mwct_ncv.Simulator.Float.P

(* Sustained input-event throughput of the incremental engine on a
   churning stream that holds the alive set at [alive_target]: each
   round refills the alive set, cancels the oldest task every few
   rounds, and advances virtual time far enough that a batch of tasks
   completes inside the window. Segment recording is off (the realistic
   long-lived-server configuration); the warm-up fill and initial
   reshare happen before the clock starts. *)
let engine_throughput ~rounds ~alive_target =
  let policy = PF.engine_policy PF.Wdeq in
  let eng =
    EnF.create ~record_segments:false
      ?kinetic:(PF.engine_kinetic PF.Wdeq)
      ~capacity:64.0 ~policy ()
  in
  let rng = Rng.create 20120515 in
  let next_id = ref 0 in
  let events = ref 0 in
  let completions = ref 0 in
  let apply ev =
    match EnF.apply eng ev with
    | Ok notes ->
      incr events;
      completions := !completions + List.length notes
    | Error e -> failwith ("engine_throughput: " ^ EnF.error_to_string e)
  in
  let submit_one () =
    let id = !next_id in
    incr next_id;
    apply
      (EnF.Submit
         {
           id;
           volume = 0.5 +. (float_of_int (Rng.int_in rng 0 64) /. 16.);
           weight = float_of_int (1 + Rng.int_in rng 0 10);
           cap = float_of_int (1 + Rng.int_in rng 0 4);
           speedup = None;
           deps = [];
         })
  in
  while EnF.alive_count eng < alive_target do
    submit_one ()
  done;
  apply (EnF.Advance 0.0);
  let t0 = Unix.gettimeofday () in
  let e0 = !events and c0 = !completions in
  for _ = 1 to rounds do
    (* Withdraw the four oldest tasks (clients killing jobs), refill the
       slots they and the previous window's completions freed, then let
       time pass. *)
    (match EnF.alive_ids eng with
    | a :: b :: c :: d :: _ -> List.iter (fun id -> apply (EnF.Cancel id)) [ a; b; c; d ]
    | _ -> ());
    while EnF.alive_count eng < alive_target do
      submit_one ()
    done;
    apply (EnF.Advance 0.25)
  done;
  let elapsed_s = Unix.gettimeofday () -. t0 in
  (!events - e0, !completions - c0, elapsed_s)

let run_throughput ~quick =
  let alive_target = 1000 in
  let rounds = if quick then 300 else 2000 in
  let input_events, completions, elapsed_s = engine_throughput ~rounds ~alive_target in
  let events_per_sec = float_of_int input_events /. elapsed_s in
  print_endline "================================================================";
  print_endline " Online engine event throughput (BENCH_3.json)";
  print_endline "================================================================";
  Printf.printf
    "  alive=%d rounds=%d input_events=%d completions=%d elapsed=%.3fs -> %.0f events/s\n"
    alive_target rounds input_events completions elapsed_s events_per_sec;
  let oc = open_out "BENCH_3.json" in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"engine event throughput (wdeq policy, churning alive set)\",\n\
    \  \"alive_target\": %d,\n\
    \  \"rounds\": %d,\n\
    \  \"input_events\": %d,\n\
    \  \"completions\": %d,\n\
    \  \"elapsed_s\": %.6f,\n\
    \  \"events_per_sec\": %.1f,\n\
    \  \"target_events_per_sec\": 10000.0,\n\
    \  \"sustained_10k\": %b\n\
     }\n"
    alive_target rounds input_events completions elapsed_s events_per_sec
    (events_per_sec >= 10000.0);
  close_out oc;
  Printf.printf "\nWrote throughput results to BENCH_3.json\n";
  events_per_sec

(* ---------- part 4: engine data plane (DESIGN.md §12) ---------- *)

(* One event-driven WDEQ simulate at n=5000 under a tuned GC (64 Mw
   minor heap, space_overhead 800 — the n=5000 trace materializes a
   ~100 Mw column structure, so a roomy young generation and a lazy
   major collector avoid copying the output repeatedly), one warm-up
   run to fault in the enlarged heap, then best of three. Returns
   [(wall_s, cpu_s)]: on shared single-vCPU containers the wall clock
   includes paging and scheduling noise, so the process CPU time is
   the stable number and the one the target is checked against. The
   tuning is scoped to this row and restored after. *)
let simulate_5000_time () =
  let inst = instance_of_size 5000 in
  let ctrl = Gc.get () in
  Gc.set { ctrl with Gc.minor_heap_size = 64 * 1024 * 1024; space_overhead = 800 };
  Gc.compact ();
  ignore (wdeq_solve inst);
  let best_wall = ref infinity and best_cpu = ref infinity in
  for _ = 1 to 3 do
    let c0 = (Unix.times ()).Unix.tms_utime in
    let t0 = Unix.gettimeofday () in
    ignore (wdeq_solve inst);
    let wall = Unix.gettimeofday () -. t0 in
    let cpu = (Unix.times ()).Unix.tms_utime -. c0 in
    if wall < !best_wall then best_wall := wall;
    if cpu < !best_cpu then best_cpu := cpu
  done;
  Gc.set ctrl;
  Gc.compact ();
  (!best_wall, !best_cpu)

(* Minor words allocated per steady-state [Advance] on the float engine
   (kinetic WDEQ, no segment recording, no completions inside the
   window), measured against an identically-shaped empty window so the
   boxes allocated by [Gc.minor_words] itself cancel out. The
   struct-of-arrays hot path makes this exactly zero. *)
let advance_minor_words () =
  let eng =
    EnF.create ~record_segments:false
      ?kinetic:(PF.engine_kinetic PF.Wdeq)
      ~capacity:64.0
      ~policy:(PF.engine_policy PF.Wdeq) ()
  in
  for i = 0 to 49 do
    match EnF.submit eng ~id:i ~volume:1e9 ~weight:(float_of_int (1 + (i mod 7))) ~cap:2. () with
    | Ok () -> ()
    | Error e -> failwith (EnF.error_to_string e)
  done;
  let ev = EnF.Advance 0.25 in
  let apply () = match EnF.apply eng ev with Ok _ -> () | Error e -> failwith (EnF.error_to_string e) in
  for _ = 1 to 8 do apply () done;
  let iters = 10_000 in
  let b0 = Gc.minor_words () in
  for _ = 1 to iters do () done;
  let b1 = Gc.minor_words () in
  let w0 = Gc.minor_words () in
  for _ = 1 to iters do apply () done;
  let w1 = Gc.minor_words () in
  (w1 -. w0 -. (b1 -. b0)) /. float_of_int iters

let run_data_plane ~events_per_sec ~nshards ~sharded_eps ~scaling ~lat ~ingest =
  (* The "before" column is the pre-data-plane baseline: B14b from the
     PR-3 CI run of BENCH_1.json (4.66 s), the PR-4 CI run of
     BENCH_3.json (12.7k events/s), and minor words per input event
     measured on the list-policy record-store engine (23,159). *)
  let sim_before = 4.66 and serve_before = 12700.0 and words_before = 23159.0 in
  let sim_wall, sim_cpu = simulate_5000_time () in
  let words = advance_minor_words () in
  print_endline "================================================================";
  print_endline " Engine data plane (BENCH_4.json)";
  print_endline "================================================================";
  Printf.printf "  wdeq.simulate n=5000 (tuned GC, warm) %.3fs wall / %.3fs cpu (before %.2fs)\n"
    sim_wall sim_cpu sim_before;
  Printf.printf "  serve throughput                      %.0f events/s (before %.0f)\n"
    events_per_sec serve_before;
  Printf.printf "  minor words / steady-state Advance    %.2f (before %.0f)\n" words words_before;
  let scaling_json =
    String.concat ",\n"
      (List.map
         (fun (s, eps) ->
           Printf.sprintf "    { \"shards\": %d, \"events_per_sec\": %.1f }" s eps)
         scaling)
  in
  let p50, p90, p99, p999 = lat in
  let ingest_before, ingest_after = ingest in
  let oc = open_out "BENCH_4.json" in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"engine data plane: SoA task store + kinetic share frontier + sharded serve\",\n\
    \  \"gc_tuning\": \"simulate row only: minor_heap_size=64M words, space_overhead=800, compact + one warm-up run, best of 3; pass is checked on process CPU time (wall on shared 1-vCPU containers includes paging/scheduling noise)\",\n\
    \  \"wdeq_simulate_n5000\": { \"before_s\": %.2f, \"after_wall_s\": %.6f, \"after_cpu_s\": %.6f,\n\
    \                           \"target_s\": 1.0, \"pass\": %b },\n\
    \  \"serve_throughput\": { \"before_events_per_sec\": %.1f, \"after_events_per_sec\": %.1f,\n\
    \                        \"target_events_per_sec\": 38100.0, \"pass\": %b },\n\
    \  \"advance_minor_words\": { \"before_words_per_event\": %.1f, \"after_words_per_advance\": %.2f,\n\
    \                           \"target_words\": 0.0, \"pass\": %b },\n\
    \  \"sharded_serve\": { \"shards\": %d, \"events_per_sec\": %.1f,\n\
    \                     \"target_events_per_sec\": 100000.0, \"pass\": %b },\n\
    \  \"shard_scaling\": [\n%s\n  ],\n\
    \  \"event_latency_us\": { \"shards\": %d, \"p50\": %.1f, \"p90\": %.1f, \"p99\": %.1f, \"p999\": %.1f },\n\
    \  \"stdin_ingest\": { \"input_line_lines_per_sec\": %.1f, \"chunked_lines_per_sec\": %.1f,\n\
    \                    \"speedup\": %.3f }\n\
     }\n"
    sim_before sim_wall sim_cpu
    (sim_cpu < 1.0)
    serve_before events_per_sec
    (events_per_sec >= 38100.0)
    words_before words (words < 1.0)
    nshards sharded_eps
    (sharded_eps >= 100000.0)
    scaling_json nshards p50 p90 p99 p999 ingest_before ingest_after
    (ingest_after /. ingest_before);
  close_out oc;
  Printf.printf "\nWrote data-plane results to BENCH_4.json\n"

(* ---------- part 6: sharded serve (rows into BENCH_4.json) ---------- *)

module StF = Mwct_runtime.Shard.Float
module Ingest = Mwct_runtime.Ingest

(* The part-3 churn stream through the sharded store: same seed, same
   submit distribution, same cancel-4-oldest/refill/advance round, so
   the events/s numbers are directly comparable to [engine_throughput].
   Ids route with [Mod] (ids are dense, so tenants spread evenly). The
   store has no [alive_ids]; the bench keeps its own submission queue
   and skips ids that completed before their cancel came up. With
   [latency:true] every event is timed into the store's histogram —
   that run prices the gettimeofday pair per event, so the throughput
   row is measured with it off. *)
let sharded_throughput ?(latency = false) ~rounds ~alive_target ~nshards () =
  let st =
    StF.create ~record_segments:false ~nshards ~route:StF.Mod ~capacity:64.0
      ~allocator:(PF.engine_policy PF.Wdeq)
      ~policy:(PF.engine_policy PF.Wdeq)
      ~kinetic:(fun () -> PF.engine_kinetic PF.Wdeq)
      ~policy_label:"wdeq" ()
  in
  let rng = Rng.create 20120515 in
  let next_id = ref 0 in
  let events = ref 0 in
  let completions = ref 0 in
  let apply ev =
    let t0 = if latency then Unix.gettimeofday () else 0. in
    (match StF.apply st ev with
    | Ok notes ->
      incr events;
      completions := !completions + List.length notes
    | Error e -> failwith ("sharded_throughput: " ^ StF.En.error_to_string e));
    if latency then StF.observe_latency st (Unix.gettimeofday () -. t0)
  in
  let oldest = Queue.create () in
  let submit_one () =
    let id = !next_id in
    incr next_id;
    Queue.push id oldest;
    apply
      (StF.En.Submit
         {
           id;
           volume = 0.5 +. (float_of_int (Rng.int_in rng 0 64) /. 16.);
           weight = float_of_int (1 + Rng.int_in rng 0 10);
           cap = float_of_int (1 + Rng.int_in rng 0 4);
           speedup = None;
           deps = [];
         })
  in
  while StF.alive_count st < alive_target do
    submit_one ()
  done;
  apply (StF.En.Advance 0.0);
  let t0 = Unix.gettimeofday () in
  let e0 = !events and c0 = !completions in
  for _ = 1 to rounds do
    let cancelled = ref 0 in
    while !cancelled < 4 && not (Queue.is_empty oldest) do
      let id = Queue.pop oldest in
      if StF.remaining st id <> None then begin
        apply (StF.En.Cancel id);
        incr cancelled
      end
    done;
    while StF.alive_count st < alive_target do
      submit_one ()
    done;
    apply (StF.En.Advance 0.25)
  done;
  let elapsed_s = Unix.gettimeofday () -. t0 in
  let out = (!events - e0, !completions - c0, elapsed_s, st) in
  out

let run_sharded ~quick ~nshards =
  let alive_target = 1000 in
  let rounds = if quick then 300 else 2000 in
  print_endline "================================================================";
  print_endline " Sharded serve throughput (rows into BENCH_4.json)";
  print_endline "================================================================";
  (* Scaling sweep: the single-engine row (shards=1 goes through the
     store's transparent shim) up to the requested width. On one core
     the win is algorithmic — per-tick budgets confine each
     completion's reshare to its own shard, O(alive/S) instead of
     O(alive) — so events/s climbs with S even without domains. *)
  let widths =
    let base = if quick then [ 1; 2 ] else [ 1; 2; 4; 8 ] in
    if List.mem nshards base then base else base @ [ nshards ]
  in
  let scaling =
    List.map
      (fun s ->
        let input_events, completions, elapsed_s, st =
          sharded_throughput ~rounds ~alive_target ~nshards:s ()
        in
        StF.shutdown st;
        let eps = float_of_int input_events /. elapsed_s in
        Printf.printf
          "  shards=%d input_events=%d completions=%d elapsed=%.3fs -> %.0f events/s\n" s
          input_events completions elapsed_s eps;
        (s, eps))
      widths
  in
  let sharded_eps = List.assoc nshards scaling in
  (* Tail-latency histogram: a shorter timed run (the gettimeofday pair
     is part of the measured cost, so it stays out of the throughput
     rows). Quantiles are log-bucket upper edges in microseconds. *)
  let _, _, _, st =
    sharded_throughput ~latency:true ~rounds:(max 50 (rounds / 4)) ~alive_target ~nshards ()
  in
  let q p = match StF.M.latency_quantile (StF.metrics st) p with Some us -> us | None -> nan in
  let lat = (q 0.50, q 0.90, q 0.99, q 0.999) in
  let p50, p90, p99, p999 = lat in
  Printf.printf "  event latency (shards=%d): p50=%.1fus p90=%.1fus p99=%.1fus p999=%.1fus\n"
    nshards p50 p90 p99 p999;
  StF.shutdown st;
  (sharded_eps, scaling, lat)

(* Stdin ingestion: lines/s of the seed's per-line [input_line] loop vs
   the 64 KiB chunked reader serve now uses, over the same temp file of
   serve-sized JSONL lines. *)
let run_ingest ~quick =
  let lines = if quick then 100_000 else 1_000_000 in
  let path = Filename.temp_file "mwct_bench_ingest" ".jsonl" in
  let oc = open_out path in
  for i = 0 to lines - 1 do
    Printf.fprintf oc
      "{\"event\":\"submit\",\"id\":%d,\"volume\":%d.5,\"weight\":%d,\"cap\":%d}\n" i
      (1 + (i mod 7)) (1 + (i mod 10)) (1 + (i mod 4))
  done;
  close_out oc;
  let time_lines read =
    let ic = open_in path in
    let t0 = Unix.gettimeofday () in
    let n = read ic in
    let dt = Unix.gettimeofday () -. t0 in
    close_in ic;
    assert (n = lines);
    float_of_int n /. dt
  in
  let before_lps =
    time_lines (fun ic ->
        let n = ref 0 in
        (try
           while true do
             ignore (Sys.opaque_identity (input_line ic));
             incr n
           done
         with End_of_file -> ());
        !n)
  in
  let after_lps =
    time_lines (fun ic ->
        let r = Ingest.create ic in
        let n = ref 0 in
        let rec go () =
          match Ingest.next_line r with
          | Some l ->
            ignore (Sys.opaque_identity l);
            incr n;
            go ()
          | None -> ()
        in
        go ();
        !n)
  in
  Sys.remove path;
  Printf.printf "  stdin ingestion over %d lines: input_line %.0f lines/s, chunked %.0f lines/s (x%.2f)\n"
    lines before_lps after_lps (after_lps /. before_lps);
  (before_lps, after_lps)

(* ---------- part 5: generalized rate model (BENCH_5.json) ---------- *)

(* The same linear workload twice through batch WDEQ: once as plain
   linear tasks (dispatching to the monomorphic float kernel) and once
   with every task wearing the identity speedup curve s(a) = a as a
   single breakpoint (delta, delta) — the same rate law semantically,
   but [has_curves] routes it through the generic concave reference
   path. The ratio prices the generality seam, and the fast-path row
   doubles as a regression guard: the pre-refactor kernel numbers must
   survive the rate-model generalization. *)
let identity_curved (inst : EF.Types.instance) : EF.Types.instance =
  {
    inst with
    EF.Types.tasks =
      Array.map
        (fun (t : EF.Types.task) ->
          {
            t with
            EF.Types.speedup =
              EF.Types.Curve { bx = [| t.EF.Types.delta |]; by = [| t.EF.Types.delta |] };
          })
        inst.EF.Types.tasks;
  }

let run_speedup_bench ~quick =
  let n = if quick then 500 else 2000 in
  let inst = instance_of_size n in
  let curved = identity_curved inst in
  let time f =
    ignore (f ());
    let best = ref infinity in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      ignore (f ());
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  let fast_s = time (fun () -> EF.Wdeq.wdeq inst) in
  let generic_s = time (fun () -> EF.Wdeq.wdeq curved) in
  let ratio = if fast_s > 0. then generic_s /. fast_s else nan in
  print_endline "================================================================";
  print_endline " Generalized rate model: generic concave path vs fast path (BENCH_5.json)";
  print_endline "================================================================";
  Printf.printf
    "  wdeq n=%d linear law: fast path %.4fs, identity-curve generic path %.4fs (x%.2f)\n" n
    fast_s generic_s ratio;
  let oc = open_out "BENCH_5.json" in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"generalized rate model: WDEQ on the linear law, float fast path vs identity-curve generic path\",\n\
    \  \"tasks\": %d,\n\
    \  \"fast_path_s\": %.6f,\n\
    \  \"generic_path_s\": %.6f,\n\
    \  \"generic_over_fast\": %.3f\n\
     }\n"
    n fast_s generic_s ratio;
  close_out oc;
  Printf.printf "\nWrote rate-model results to BENCH_5.json\n"

(* ---------- part 7: precedence subsystem (BENCH_6.json) ---------- *)

(* [dag_serve]: a layered DAG churn stream through the online engine —
   every round submits a wave of tasks, each dormant on one task of the
   previous wave, then advances; activations ride the completion sweep.
   The events/s is directly comparable to BENCH_3's independent churn:
   the gap prices the dormant bookkeeping. [dag_simulate] times the
   batch frontier policy on a layered instance against plain WDEQ on
   the same tasks with the edges erased. *)
let dag_serve_throughput ~rounds ~wave =
  let eng =
    EnF.create ~record_segments:false
      ?kinetic:(PF.engine_kinetic PF.Wdeq)
      ~capacity:64.0
      ~policy:(PF.engine_policy PF.Wdeq) ()
  in
  let rng = Rng.create 20120515 in
  let next_id = ref 0 in
  let events = ref 0 in
  let completions = ref 0 in
  let apply ev =
    match EnF.apply eng ev with
    | Ok notes ->
      incr events;
      completions := !completions + List.length notes
    | Error e -> failwith ("dag_serve: " ^ EnF.error_to_string e)
  in
  let submit_wave prev =
    List.init wave (fun j ->
        let id = !next_id in
        incr next_id;
        let deps = match prev with [] -> [] | l -> [ List.nth l (j mod List.length l) ] in
        apply
          (EnF.Submit
             {
               id;
               volume = 0.5 +. (float_of_int (Rng.int_in rng 0 16) /. 16.);
               weight = float_of_int (1 + Rng.int_in rng 0 7);
               cap = float_of_int (1 + Rng.int_in rng 0 3);
               speedup = None;
               deps;
             });
        id)
  in
  let prev = ref (submit_wave []) in
  apply (EnF.Advance 0.0);
  let t0 = Unix.gettimeofday () in
  let e0 = !events in
  for _ = 1 to rounds do
    prev := submit_wave !prev;
    apply (EnF.Advance 0.5)
  done;
  apply EnF.Drain;
  let elapsed_s = Unix.gettimeofday () -. t0 in
  (!events - e0, !completions, elapsed_s)

let layered_dag (inst : EF.Types.instance) ~width : EF.Types.instance =
  {
    inst with
    EF.Types.tasks =
      Array.mapi
        (fun i (t : EF.Types.task) ->
          let deps =
            if i < width then [||]
            else begin
              let layer0 = i - width - (i mod width) in
              let p = layer0 + (i mod width) in
              if (i + i / width) mod 2 = 0 || layer0 + width >= i then [| p |]
              else [| p; layer0 + ((i + 1) mod width) |]
            end
          in
          { t with EF.Types.deps })
        inst.EF.Types.tasks;
  }

let run_dag_bench ~quick =
  let rounds = if quick then 300 else 2000 in
  let wave = 8 in
  let input_events, completions, elapsed_s = dag_serve_throughput ~rounds ~wave in
  let events_per_sec = float_of_int input_events /. elapsed_s in
  let n = if quick then 500 else 2000 in
  let bag = instance_of_size n in
  let dag = layered_dag bag ~width:16 in
  let time f =
    ignore (f ());
    let best = ref infinity in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      ignore (f ());
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  let bag_s = time (fun () -> EF.Wdeq.wdeq bag) in
  let dag_s = time (fun () -> EF.Dag.wdeq dag) in
  let ratio = if bag_s > 0. then dag_s /. bag_s else nan in
  print_endline "================================================================";
  print_endline " Precedence subsystem: layered DAG churn and frontier policy (BENCH_6.json)";
  print_endline "================================================================";
  Printf.printf
    "  dag_serve: wave=%d rounds=%d input_events=%d completions=%d elapsed=%.3fs -> %.0f events/s\n"
    wave rounds input_events completions elapsed_s events_per_sec;
  Printf.printf "  dag_simulate n=%d: bag wdeq %.4fs, layered wdeq-dag %.4fs (x%.2f)\n" n bag_s
    dag_s ratio;
  let oc = open_out "BENCH_6.json" in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"precedence subsystem: layered DAG churn through the online engine, batch frontier policy vs independent bag\",\n\
    \  \"dag_serve\": {\n\
    \    \"wave\": %d,\n\
    \    \"rounds\": %d,\n\
    \    \"input_events\": %d,\n\
    \    \"completions\": %d,\n\
    \    \"elapsed_s\": %.6f,\n\
    \    \"events_per_sec\": %.1f\n\
    \  },\n\
    \  \"dag_simulate\": {\n\
    \    \"tasks\": %d,\n\
    \    \"bag_wdeq_s\": %.6f,\n\
    \    \"dag_wdeq_s\": %.6f,\n\
    \    \"dag_over_bag\": %.3f\n\
    \  }\n\
     }\n"
    wave rounds input_events completions elapsed_s events_per_sec n bag_s dag_s ratio;
  close_out oc;
  Printf.printf "\nWrote precedence results to BENCH_6.json\n"

(* ---------- part 8: what-if subsystem (BENCH_7.json) ---------- *)

module BrF = Mwct_runtime.Branch.Float
module LF = Mwct_runtime.Loadgen.Float

(* [fork_cost]: price one snapshot+fork of a steady engine with
   [alive] tasks — wall µs (best of three batches) and minor words
   (Gc differential over the middle batch). The what-if service forks
   once per branch, so this is its setup cost; the ceiling flag
   [--max-fork-micros] lets CI fail on copy-path regressions.
   [branch_replay]: drive a full B.run (diurnal load, four branches:
   straight line, policy switch, tenant scaling, injection) and report
   replayed events/s across all branches — directly comparable to
   BENCH_3's single-engine throughput; the gap prices journaling and
   divergence tracking. *)
let run_whatif_bench ~quick =
  let alive = if quick then 250 else 1000 in
  let eng =
    EnF.create ~record_segments:false
      ?kinetic:(PF.engine_kinetic PF.Wdeq)
      ~capacity:64.0
      ~policy:(PF.engine_policy PF.Wdeq) ()
  in
  for i = 0 to alive - 1 do
    match
      EnF.submit eng ~id:i ~volume:1e9 ~weight:(float_of_int (1 + (i mod 7))) ~cap:2.0 ()
    with
    | Ok () -> ()
    | Error e -> failwith ("whatif bench: " ^ EnF.error_to_string e)
  done;
  (match EnF.apply eng (EnF.Advance 0.25) with
  | Ok _ -> ()
  | Error e -> failwith ("whatif bench: " ^ EnF.error_to_string e));
  let forks = if quick then 50 else 200 in
  let batch () =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to forks do
      ignore (Sys.opaque_identity (EnF.fork ?kinetic:(PF.engine_kinetic PF.Wdeq) (EnF.snapshot eng)))
    done;
    (Unix.gettimeofday () -. t0) *. 1e6 /. float_of_int forks
  in
  ignore (batch ());
  let w0 = Gc.minor_words () in
  let micros_b = batch () in
  let words_per_fork = (Gc.minor_words () -. w0) /. float_of_int forks in
  let fork_micros = Stdlib.min micros_b (Stdlib.min (batch ()) (batch ())) in
  let nevents = if quick then 2_000 else 20_000 in
  let events = LF.generate ~pattern:LF.Diurnal ~seed:11 ~tenants:4 ~events:nevents () in
  let resolve name =
    Option.map (fun p -> PF.engine_policy p) (PF.of_name name)
  in
  let kinetic_for name =
    Option.bind (PF.of_name name) (fun p -> PF.engine_kinetic p)
  in
  let branches =
    List.map
      (fun s -> match BrF.parse_spec s with Ok b -> b | Error m -> failwith m)
      [ "idle"; "deq:policy=deq"; "scale:scale=1:2"; "inject:submit=999983:8:4:2,advance=1/2" ]
  in
  let t0 = Unix.gettimeofday () in
  let report =
    match
      BrF.run ~resolve ~kinetic_for ~tenants:4 ~capacity:64.0 ~policy:"wdeq" ~events
        ~fork_at:(nevents / 2) ~branches ()
    with
    | Ok r -> r
    | Error m -> failwith ("whatif bench: " ^ m)
  in
  let elapsed_s = Unix.gettimeofday () -. t0 in
  let applied = List.fold_left (fun a (o : BrF.outcome) -> a + o.BrF.applied) 0 report.BrF.branches in
  (* the baseline replay processes the whole stream once, too *)
  let replayed = applied + List.length events in
  let replay_eps = float_of_int replayed /. elapsed_s in
  print_endline "================================================================";
  print_endline " What-if subsystem: fork cost and branch replay (BENCH_7.json)";
  print_endline "================================================================";
  Printf.printf "  fork: alive=%d -> %.1f us/fork, %.0f minor words/fork\n" alive fork_micros
    words_per_fork;
  Printf.printf
    "  branch replay: %d events, fork at %d, %d branches -> %d replayed events in %.3fs (%.0f \
     events/s)\n"
    (List.length events) (nevents / 2) (List.length branches) replayed elapsed_s replay_eps;
  let oc = open_out "BENCH_7.json" in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"what-if subsystem: snapshot/fork cost on a steady engine, branch replay throughput over a diurnal load\",\n\
    \  \"fork\": {\n\
    \    \"alive_tasks\": %d,\n\
    \    \"micros_per_fork\": %.3f,\n\
    \    \"minor_words_per_fork\": %.1f\n\
    \  },\n\
    \  \"branch_replay\": {\n\
    \    \"events\": %d,\n\
    \    \"fork_at\": %d,\n\
    \    \"branches\": %d,\n\
    \    \"replayed_events\": %d,\n\
    \    \"elapsed_s\": %.6f,\n\
    \    \"events_per_sec\": %.1f\n\
    \  }\n\
     }\n"
    alive fork_micros words_per_fork (List.length events) (nevents / 2) (List.length branches)
    replayed elapsed_s replay_eps;
  close_out oc;
  Printf.printf "\nWrote what-if results to BENCH_7.json\n";
  fork_micros

let () =
  let argv = Array.to_list Sys.argv in
  let quick = List.mem "--quick" argv in
  let opt_arg name =
    let rec go = function
      | key :: v :: _ when key = name -> Some v
      | _ :: rest -> go rest
      | [] -> None
    in
    go argv
  in
  let floor = Option.map float_of_string (opt_arg "--min-events-per-sec") in
  let sharded_floor = Option.map float_of_string (opt_arg "--min-sharded-events-per-sec") in
  let nshards =
    match Option.map int_of_string (opt_arg "--shards") with
    | Some s when s >= 1 -> s
    | Some _ | None -> 4
  in
  if (not quick) && not (List.mem "--no-experiments" argv) then run_experiments ();
  let rows = benchmark ~quota:(if quick then 0.05 else 0.5) in
  let registry_rows, kernel_rows = List.partition is_registry_row rows in
  emit_json "BENCH_1.json" kernel_rows;
  emit_json "BENCH_2.json" registry_rows;
  let events_per_sec = run_throughput ~quick in
  let sharded_eps, scaling, lat = run_sharded ~quick ~nshards in
  let ingest = run_ingest ~quick in
  run_data_plane ~events_per_sec ~nshards ~sharded_eps ~scaling ~lat ~ingest;
  run_speedup_bench ~quick;
  run_dag_bench ~quick;
  let fork_micros = run_whatif_bench ~quick in
  let max_fork_micros = Option.map float_of_string (opt_arg "--max-fork-micros") in
  let check what floor measured =
    match floor with
    | Some f when measured < f ->
      Printf.eprintf "FAIL: %s %.0f events/s is below the floor %.0f events/s\n" what measured f;
      exit 1
    | Some f -> Printf.printf "%s floor satisfied: %.0f >= %.0f events/s\n" what measured f
    | None -> ()
  in
  check "engine throughput" floor events_per_sec;
  check "sharded throughput" sharded_floor sharded_eps;
  match max_fork_micros with
  | Some ceiling when fork_micros > ceiling ->
    Printf.eprintf "FAIL: fork cost %.1f us is above the ceiling %.1f us\n" fork_micros ceiling;
    exit 1
  | Some ceiling -> Printf.printf "fork-cost ceiling satisfied: %.1f <= %.1f us\n" fork_micros ceiling
  | None -> ()
