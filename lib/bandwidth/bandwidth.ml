(** The Figure-1 application: bandwidth sharing in a master–worker
    platform.

    A server with outgoing capacity [P] distributes code of size [V_i]
    to workers [P_1..P_n]; worker [i] has incoming bandwidth [δ_i] and,
    once its code is fully received (at time [C_i]), processes tasks at
    rate [w_i] until the horizon [T]. The number of tasks processed is
    [Σ_i w_i·(T − C_i)⁺] — maximizing it is exactly minimizing
    [Σ w_i C_i] when every transfer ends before the horizon, which is
    the paper's motivation for the weighted objective.

    The module maps scenarios onto scheduling instances (transfers are
    work-preserving malleable tasks: TCP-style bandwidth shares may
    change at any time) and evaluates distribution policies. *)

module Make (F : Mwct_field.Field.S) = struct
  module E = Mwct_core.Engine.Make (F)

  (** One worker: code to receive, link capacity, processing rate. *)
  type worker = { code_size : F.t; bandwidth : F.t; rate : F.t }

  type scenario = { server_capacity : F.t; horizon : F.t; workers : worker array }

  (** The scheduling instance of a scenario: transfers are tasks with
      [V = code_size], [δ = bandwidth], [w = rate]. *)
  let to_instance (sc : scenario) : E.Types.instance =
    {
      E.Types.procs = sc.server_capacity;
      E.Types.tasks =
        Array.map
          (fun wk ->
            {
              E.Types.volume = wk.code_size;
              E.Types.weight = wk.rate;
              E.Types.delta = wk.bandwidth;
              E.Types.speedup = E.Types.Linear_delta;
              E.Types.deps = [||];
            })
          sc.workers;
    }

  (** Tasks processed by the horizon for given completion times:
      [Σ w_i·(T − C_i)⁺]. *)
  let tasks_processed (sc : scenario) (completions : F.t array) : F.t =
    let acc = ref F.zero in
    Array.iteri
      (fun i wk ->
        let slack = F.sub sc.horizon completions.(i) in
        if F.sign slack > 0 then acc := F.add !acc (F.mul wk.rate slack))
      sc.workers;
    !acc

  (** The identity behind the reduction: when every completion is
      before the horizon, [Σ w_i (T − C_i) = (Σ w_i)·T − Σ w_i C_i]. *)
  let equivalence_gap (sc : scenario) (completions : F.t array) : F.t =
    let all_before = Array.for_all (fun c -> F.compare c sc.horizon <= 0) completions in
    if not all_before then invalid_arg "Bandwidth.equivalence_gap: some completion after horizon";
    let w_total = Array.fold_left (fun acc wk -> F.add acc wk.rate) F.zero sc.workers in
    let weighted_completion =
      let acc = ref F.zero in
      Array.iteri (fun i wk -> acc := F.add !acc (F.mul wk.rate completions.(i))) sc.workers;
      !acc
    in
    F.sub (tasks_processed sc completions) (F.sub (F.mul w_total sc.horizon) weighted_completion)

  (** Distribution policies. [Fifo] sends one code at a time at the
      worker's full link speed (the naive baseline); [Equal_split]
      statically divides the server capacity; [Smith_greedy] runs
      Algorithm Greedy on Smith's order; [Wdeq] is the paper's
      non-clairvoyant policy. *)
  type policy = Fifo | Equal_split | Smith_greedy | Wdeq

  let policy_name = function
    | Fifo -> "fifo"
    | Equal_split -> "equal-split"
    | Smith_greedy -> "smith-greedy"
    | Wdeq -> "wdeq"

  (** Completion times of all transfers under a policy. *)
  let completions (sc : scenario) (policy : policy) : F.t array =
    let inst = to_instance sc in
    let n = Array.length sc.workers in
    match policy with
    | Fifo ->
      (* Workers in index order, one at a time, each at min(δ, P). *)
      let c = Array.make n F.zero in
      let t = ref F.zero in
      for i = 0 to n - 1 do
        let speed = F.min sc.workers.(i).bandwidth sc.server_capacity in
        t := F.add !t (F.div sc.workers.(i).code_size speed);
        c.(i) <- !t
      done;
      c
    | Equal_split ->
      (* Static share min(δ_i, P/n), never recomputed. *)
      let fair = F.div sc.server_capacity (F.of_int n) in
      Array.mapi
        (fun i wk -> F.div sc.workers.(i).code_size (F.min wk.bandwidth fair))
        sc.workers
    | Smith_greedy ->
      let sigma = E.Orderings.smith inst in
      E.Schedule.completion_times (E.Greedy.run inst sigma)
    | Wdeq ->
      let s, _ = E.Wdeq.wdeq inst in
      E.Schedule.completion_times s

  (** Throughput of a policy on a scenario. *)
  let throughput (sc : scenario) (policy : policy) : F.t = tasks_processed sc (completions sc policy)
end

(** Float instantiation (the usual one for simulations). *)
module Float = Make (Mwct_field.Field.Float_field)

(** Exact instantiation. *)
module Exact = Make (Mwct_rational.Rational.Rat_field)
