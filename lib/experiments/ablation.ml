(** Ablation studies (E12) for the design choices DESIGN.md calls out.

    - {b Assignment}: Theorem 10 rests on the Lemma-10 "sticky"
      processor assignment. Ablating it — counting preemptions directly
      on the per-column wrap Gantt, where processors are re-dealt every
      column — shows how much the assignment buys.
    - {b Engine}: the same algorithms run on floats and on exact
      rationals; the ablation measures the cost of exactness (and
      checks the results agree). *)

module EF = Mwct_core.Engine.Float
module EQ = Mwct_core.Engine.Exact
module SF = Mwct_solver.Solver.Float
module SQ = Mwct_solver.Solver.Exact
module G = Mwct_workload.Generator
module Rng = Mwct_util.Rng
module Q = Mwct_rational.Rational
module Tablefmt = Mwct_util.Tablefmt

(* Preemptions counted directly on a gantt (bookings that end before
   their task completes) — used on the raw wrap output. *)
let gantt_preemptions (g : EF.Types.gantt) : int = EF.Assignment.preemptions g

let assignment_table scale =
  let per_size = match scale with Experiments_scale.Quick -> 25 | Full -> 200 in
  let t =
    Tablefmt.create
      ~title:"E12a / ablation: preemptions of the raw per-column wrap vs the Lemma-10 sticky assignment"
      [ "tasks"; "procs"; "wrap mean"; "wrap max"; "sticky mean"; "sticky max"; "bound 3n" ]
  in
  Tablefmt.set_align t (List.init 7 (fun _ -> Tablefmt.Right));
  List.iter
    (fun (n, procs) ->
      let rng = Rng.create (12_000 + n) in
      let wrap_tot = ref 0 and wrap_max = ref 0 in
      let stick_tot = ref 0 and stick_max = ref 0 in
      for _ = 1 to per_size do
        let spec = G.uniform (Rng.split rng) ~procs ~n () in
        let inst = EF.Instance.of_spec spec in
        let sigma = EF.Orderings.random (Rng.split rng) n in
        let s = EF.Water_filling.normalize (EF.Greedy.run inst sigma) in
        let is, wrap_gantt = EF.Integerize.of_columns s in
        let wrap_p = gantt_preemptions wrap_gantt in
        let stick_p = EF.Assignment.preemptions (EF.Assignment.assign is) in
        wrap_tot := !wrap_tot + wrap_p;
        wrap_max := max !wrap_max wrap_p;
        stick_tot := !stick_tot + stick_p;
        stick_max := max !stick_max stick_p
      done;
      let mean x = float_of_int x /. float_of_int per_size in
      Tablefmt.add_row t
        [
          string_of_int n;
          string_of_int procs;
          Printf.sprintf "%.1f" (mean !wrap_tot);
          string_of_int !wrap_max;
          Printf.sprintf "%.1f" (mean !stick_tot);
          string_of_int !stick_max;
          string_of_int (3 * n);
        ])
    [ (5, 4); (10, 8); (20, 16) ];
  t

let time f =
  let t0 = Sys.time () in
  let r = f () in
  (r, Sys.time () -. t0)

let engine_table scale =
  let reps = match scale with Experiments_scale.Quick -> 5 | Full -> 30 in
  let t =
    Tablefmt.create ~title:"E12b / ablation: float engine vs exact rational engine (same instances)"
      [ "kernel"; "n"; "float (ms/run)"; "exact (ms/run)"; "slowdown"; "results agree" ]
  in
  Tablefmt.set_align t [ Tablefmt.Left; Tablefmt.Right; Tablefmt.Right; Tablefmt.Right; Tablefmt.Right; Tablefmt.Left ];
  let row label n frun qrun =
    (* Warm up once to factor allocation of the instance out. *)
    let vf, tf =
      time (fun () ->
          let v = ref 0. in
          for _ = 1 to reps do
            v := frun ()
          done;
          !v)
    in
    let vq, tq =
      time (fun () ->
          let v = ref Q.zero in
          for _ = 1 to reps do
            v := qrun ()
          done;
          !v)
    in
    let agree = Float.abs (vf -. Q.to_float vq) < 1e-6 in
    Tablefmt.add_row t
      [
        label;
        string_of_int n;
        Printf.sprintf "%.3f" (tf /. float_of_int reps *. 1000.);
        Printf.sprintf "%.3f" (tq /. float_of_int reps *. 1000.);
        Printf.sprintf "%.0fx" (tq /. Float.max 1e-9 tf);
        string_of_bool agree;
      ]
  in
  let n = 30 in
  let spec = G.uniform (Rng.create 12_345) ~procs:8 ~n () in
  let fi = EF.Instance.of_spec spec and qi = EQ.Instance.of_spec spec in
  (* The same registry entry runs on both engines — the ablation is
     exactly the same algorithm under two fields. *)
  row "greedy objective" n
    (fun () -> SF.objective "greedy" fi)
    (fun () -> SQ.objective "greedy" qi);
  row "wdeq objective" n
    (fun () -> SF.objective "wdeq" fi)
    (fun () -> SQ.objective "wdeq" qi);
  row "WF makespan schedule" n
    (fun () -> EF.Schedule.makespan (fst (SF.solve_exn "wf-cmax" fi)))
    (fun () -> EQ.Schedule.makespan (fst (SQ.solve_exn "wf-cmax" qi)));
  t
