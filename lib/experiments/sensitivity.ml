(** E16 — distribution sensitivity (robustness check, beyond the
    paper).

    The paper's experiments use one uniform family; this experiment
    re-measures the WDEQ competitive ratio and the best-greedy-vs-OPT
    gap on structurally different workloads (heavy-tailed volumes,
    bimodal mice-and-elephants, the mixed Figure-1 shape) to confirm
    that the conclusions are not artifacts of the generator. *)

module EF = Mwct_core.Engine.Float
module SF = Mwct_solver.Solver.Float
module G = Mwct_workload.Generator
module Rng = Mwct_util.Rng
module Stats = Mwct_util.Stats
module Tablefmt = Mwct_util.Tablefmt

let families : (string * (Rng.t -> procs:int -> n:int -> Mwct_core.Spec.t)) list =
  [
    ("uniform", fun rng ~procs ~n -> G.uniform rng ~procs ~n ());
    ("heavy-tailed", fun rng ~procs ~n -> G.heavy_tailed rng ~procs ~n ());
    ("bimodal", fun rng ~procs ~n -> G.bimodal rng ~procs ~n ());
    ("mixed", fun rng ~procs ~n -> G.mixed rng ~procs ~n ());
  ]

let table scale =
  let count = match scale with Experiments_scale.Quick -> 80 | Full -> 600 in
  let t =
    Tablefmt.create
      ~title:"E16 / distribution sensitivity: WDEQ ratio and greedy gap across workload families (n=4, P=4)"
      [ "family"; "instances"; "wdeq/opt mean"; "wdeq/opt max"; "greedy = opt" ]
  in
  Tablefmt.set_align t [ Tablefmt.Left; Tablefmt.Right; Tablefmt.Right; Tablefmt.Right; Tablefmt.Right ];
  List.iteri
    (fun k (name, gen) ->
      let rng = Rng.create (16_000 + k) in
      let ratios = ref [] in
      let greedy_opt = ref 0 in
      for _ = 1 to count do
        let spec = gen (Rng.split rng) ~procs:4 ~n:4 in
        let inst = EF.Instance.of_spec spec in
        let opt = SF.objective "optimal" inst in
        let wdeq = SF.objective "wdeq" inst in
        ratios := (wdeq /. opt) :: !ratios;
        let bg = SF.objective "best-greedy" inst in
        if (bg -. opt) /. opt <= 1e-7 then incr greedy_opt
      done;
      let s = Stats.summarize !ratios in
      Tablefmt.add_row t
        [
          name;
          string_of_int count;
          Printf.sprintf "%.4f" s.Stats.mean;
          Printf.sprintf "%.4f" s.Stats.max;
          Printf.sprintf "%d/%d" !greedy_opt count;
        ])
    families;
  t
