(** E15 — the value of malleability (a model ablation beyond the
    paper).

    The introduction motivates malleable tasks against weaker models;
    this experiment quantifies the gap on random instances:
    the exact malleable optimum (Corollary-1 LP) vs the best moldable
    schedule found (fixed width per task, local search) vs two rigid
    baselines (all-widths-δ and all-widths-1 list schedules).
    Malleability can only help; the measured ratios say by how much. *)

module EF = Mwct_core.Engine.Float
module SF = Mwct_solver.Solver.Float
module G = Mwct_workload.Generator
module Rng = Mwct_util.Rng
module Stats = Mwct_util.Stats
module Tablefmt = Mwct_util.Tablefmt

let table scale =
  let count = match scale with Experiments_scale.Quick -> 60 | Full -> 400 in
  let t =
    Tablefmt.create
      ~title:"E15 / value of malleability: objective ratios over the malleable optimum (LP)"
      [ "tasks"; "procs"; "moldable best"; "rigid width=delta"; "rigid width=1" ]
  in
  Tablefmt.set_align t (List.init 5 (fun _ -> Tablefmt.Right));
  List.iter
    (fun (n, procs) ->
      let rng = Rng.create (15_000 + n) in
      let mold = ref [] and full = ref [] and one = ref [] in
      for _ = 1 to count do
        let spec = G.uniform (Rng.split rng) ~procs ~n () in
        let inst = EF.Instance.of_spec spec in
        let opt = SF.objective "optimal" inst in
        let order = EF.Orderings.smith inst in
        mold := (EF.Moldable.best_heuristic inst /. opt) :: !mold;
        full :=
          (EF.Moldable.objective inst (EF.Moldable.schedule inst ~widths:(EF.Moldable.widths_full inst) ~order)
          /. opt)
          :: !full;
        one :=
          (EF.Moldable.objective inst (EF.Moldable.schedule inst ~widths:(EF.Moldable.widths_one inst) ~order)
          /. opt)
          :: !one
      done;
      let fmt l =
        let s = Stats.summarize l in
        Printf.sprintf "mean %.3f / max %.3f" s.Stats.mean s.Stats.max
      in
      Tablefmt.add_row t
        [ string_of_int n; string_of_int procs; fmt !mold; fmt !full; fmt !one ])
    [ (3, 4); (4, 4); (5, 6) ];
  t
