type scale = Experiments_scale.t = Quick | Full

module EF = Mwct_core.Engine.Float
module EQ = Mwct_core.Engine.Exact
module SF = Mwct_solver.Solver.Float
module Spec = Mwct_core.Spec
module G = Mwct_workload.Generator
module B = Mwct_bandwidth.Bandwidth.Float
module Rng = Mwct_util.Rng
module Stats = Mwct_util.Stats
module Tablefmt = Mwct_util.Tablefmt
module Q = Mwct_rational.Rational

let objective = EF.Schedule.weighted_completion_time

(* Force a spec into a variant: all deltas to one value, or weights/volumes to 1. *)
let with_deltas spec d =
  Spec.make ~procs:spec.Spec.procs
    (Array.to_list (Array.map (fun (t : Spec.task) -> { t with Spec.delta = d }) spec.Spec.tasks))

let with_unit_weights spec =
  Spec.make ~procs:spec.Spec.procs
    (Array.to_list (Array.map (fun (t : Spec.task) -> { t with Spec.weight = Spec.rat_of_int 1 }) spec.Spec.tasks))

let with_unit_volumes spec =
  Spec.make ~procs:spec.Spec.procs
    (Array.to_list (Array.map (fun (t : Spec.task) -> { t with Spec.volume = Spec.rat_of_int 1 }) spec.Spec.tasks))

(* Ratio of an algorithm against a reference optimum over random
   instances; returns (mean, max) of ratio and match count within tol. *)
let ratio_study ~seed ~count ~gen ~algo ~reference =
  let rng = Rng.create seed in
  let ratios = ref [] in
  let matches = ref 0 in
  for _ = 1 to count do
    let spec = gen (Rng.split rng) in
    let inst = EF.Instance.of_spec spec in
    let v = algo inst and r = reference inst in
    let ratio = v /. r in
    ratios := ratio :: !ratios;
    if Float.abs (v -. r) <= 1e-6 *. Float.max 1. r then incr matches
  done;
  (Stats.summarize !ratios, !matches)

let fmt_ratio (s : Stats.summary) = Printf.sprintf "mean %.4f / max %.4f" s.Stats.mean s.Stats.max

(* Algorithms under study come from the solver registry — one
   registration covers the CLI, the bench loop and these tables. *)
let lp_opt = SF.objective "optimal"
let wdeq_obj = SF.objective "wdeq"
let deq_obj = SF.objective "deq"
let smith_greedy_obj = SF.objective "greedy-smith"
let best_greedy_obj = SF.objective "best-greedy"

(* ------------------------------------------------------------------ *)
(* E1 — Table I                                                        *)
(* ------------------------------------------------------------------ *)

let table1 scale =
  let count = match scale with Quick -> 60 | Full -> 400 in
  let t =
    Tablefmt.create ~title:"E1 / Table I: each row exercised against its claimed guarantee"
      [ "row (delta, V, objective, context)"; "claim"; "measured ratio"; "holds" ]
  in
  Tablefmt.set_align t [ Tablefmt.Left; Tablefmt.Left; Tablefmt.Right; Tablefmt.Left ];
  let add_row label claim (stats : Stats.summary) bound =
    Tablefmt.add_row t [ label; claim; fmt_ratio stats; string_of_bool (stats.Stats.max <= bound +. 1e-6) ]
  in
  let uni rng = G.uniform rng ~procs:4 ~n:(1 + Rng.int rng 4) () in

  (* N-C rows *)
  let s, _ = ratio_study ~seed:101 ~count ~gen:uni ~algo:wdeq_obj ~reference:lp_opt in
  add_row "(diff, diff, sum wC, N-C) WDEQ [this paper]" "2-approx" s 2.;
  let s, _ =
    ratio_study ~seed:102 ~count
      ~gen:(fun rng -> with_deltas (with_unit_weights (uni rng)) 1)
      ~algo:deq_obj
      ~reference:(fun inst -> fst (EF.Single_machine.spt inst))
  in
  add_row "(=1, diff, sum C, N-C) DEQ [12]" "2-approx" s 2.;
  let s, _ =
    ratio_study ~seed:103 ~count ~gen:(fun rng -> with_unit_weights (uni rng)) ~algo:deq_obj ~reference:lp_opt
  in
  add_row "(diff, diff, sum C, N-C) DEQ [13]" "2-approx" s 2.;
  let s, _ =
    ratio_study ~seed:104 ~count
      ~gen:(fun rng -> with_deltas (uni rng) 4)
      ~algo:wdeq_obj
      ~reference:(fun inst -> fst (EF.Single_machine.smith inst))
  in
  add_row "(=P, diff, sum wC, N-C) WRR/WDEQ [14]" "2-approx" s 2.;

  (* clairvoyant polynomial rows: ratio must be exactly 1 *)
  let s, _ =
    ratio_study ~seed:105 ~count
      ~gen:(fun rng -> with_deltas (uni rng) 4)
      ~algo:(fun inst -> fst (EF.Single_machine.smith inst))
      ~reference:lp_opt
  in
  add_row "(=P, diff, sum wC, C) Smith [15]" "polynomial (opt)" s 1.;
  let s, _ =
    ratio_study ~seed:106 ~count
      ~gen:(fun rng -> with_deltas (with_unit_weights (uni rng)) 1)
      ~algo:(fun inst -> fst (EF.Single_machine.spt inst))
      ~reference:lp_opt
  in
  add_row "(=1, diff, sum C, C) SPT/McNaughton [16]" "polynomial (opt)" s 1.;

  (* Cmax: WF-schedule makespan over the trivial lower bound. *)
  let s, _ =
    ratio_study ~seed:107 ~count ~gen:uni
      ~algo:(fun inst -> EF.Schedule.makespan (fst (SF.solve_exn "wf-cmax" inst)))
      ~reference:EF.Makespan.optimal
  in
  add_row "(diff, diff, Cmax, C) WF makespan [10]" "O(n log n) (opt)" s 1.;

  (* Lmax: the search bracket collapses onto a feasible optimum. *)
  let rng = Rng.create 108 in
  let widths = ref [] in
  for _ = 1 to count do
    let spec = uni rng in
    let inst = EF.Instance.of_spec spec in
    let n = Array.length inst.EF.Types.tasks in
    let due = Array.init n (fun _ -> float_of_int (Rng.dyadic rng ~den:64) /. 16.) in
    let lo, hi, _ = EF.Lateness.minimize ~tol:1e-7 inst due in
    widths := (1. +. (hi -. lo)) :: !widths
  done;
  add_row "(diff, diff, Lmax, C) WF + search [2]" "O(n log n) probe" (Stats.summarize !widths) 1.;

  (* Kawaguchi-Kyan: LRF with delta = 1. *)
  let s, _ =
    ratio_study ~seed:109 ~count
      ~gen:(fun rng -> with_deltas (uni rng) 1)
      ~algo:smith_greedy_obj ~reference:lp_opt
  in
  add_row "(=1, diff, sum wC, C) LRF [17,18]" "(1+sqrt 2)/2-approx" s ((1. +. sqrt 2.) /. 2.);

  (* Open row: equal volumes, sum C. *)
  let s, eq =
    ratio_study ~seed:110 ~count
      ~gen:(fun rng -> with_unit_volumes (with_unit_weights (uni rng)))
      ~algo:best_greedy_obj ~reference:lp_opt
  in
  Tablefmt.add_row t
    [
      "(diff, =, sum C, C) best greedy [open]";
      "conjectured opt";
      fmt_ratio s;
      Printf.sprintf "%d/%d exact" eq count;
    ];
  t

(* ------------------------------------------------------------------ *)
(* E2 — Section V-A                                                    *)
(* ------------------------------------------------------------------ *)

let greedy_vs_opt scale =
  let per_size = match scale with Quick -> 150 | Full -> 10_000 in
  let t =
    Tablefmt.create
      ~title:"E2 / SecV-A: best greedy vs LP optimum, uniform random instances (paper: indistinguishable)"
      [ "tasks"; "instances"; "greedy = opt"; "max rel gap" ]
  in
  Tablefmt.set_align t [ Tablefmt.Right; Tablefmt.Right; Tablefmt.Right; Tablefmt.Right ];
  for n = 2 to 5 do
    let rng = Rng.create (1000 + n) in
    let matches = ref 0 in
    let max_gap = ref 0. in
    for _ = 1 to per_size do
      let spec = G.uniform (Rng.split rng) ~procs:4 ~n () in
      let inst = EF.Instance.of_spec spec in
      let opt = lp_opt inst in
      let bg = best_greedy_obj inst in
      let gap = (bg -. opt) /. opt in
      if gap <= 1e-7 then incr matches;
      if gap > !max_gap then max_gap := gap
    done;
    Tablefmt.add_row t
      [
        string_of_int n;
        string_of_int per_size;
        Printf.sprintf "%d" !matches;
        Printf.sprintf "%.2e" !max_gap;
      ]
  done;
  t

(* ------------------------------------------------------------------ *)
(* E3 — Section V-B small-case optimal orders                          *)
(* ------------------------------------------------------------------ *)

let optimal_orders scale =
  let draws = match scale with Quick -> 80 | Full -> 500 in
  let t =
    Tablefmt.create
      ~title:"E3 / SecV-B: optimal greedy orders on the homogeneous class (deltas sorted descending)"
      [ "tasks"; "observed optimal patterns (freq)"; "note" ]
  in
  Tablefmt.set_align t [ Tablefmt.Right; Tablefmt.Left; Tablefmt.Left ];
  let pattern_survey n =
    let tbl = Hashtbl.create 16 in
    let rng = Rng.create (3000 + n) in
    for _ = 1 to draws do
      let ds = G.homogeneous_deltas (Rng.split rng) ~n ~den:4096 () in
      let deltas = Array.map (fun (r : Spec.rat) -> Q.of_q r.Spec.num r.Spec.den) ds in
      Array.sort (fun a b -> Q.compare b a) deltas;
      let _, orders = EQ.Homogeneous.optimal_orders deltas in
      List.iter
        (fun o ->
          let key = String.concat "," (Array.to_list (Array.map (fun i -> string_of_int (i + 1)) o)) in
          Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)))
        orders
    done;
    let entries = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
    let entries = List.sort (fun (_, a) (_, b) -> compare b a) entries in
    String.concat "  " (List.map (fun (k, v) -> Printf.sprintf "%s(%d)" k v) (List.filteri (fun i _ -> i < 4) entries))
  in
  Tablefmt.add_row t [ "2"; pattern_survey 2; "paper: 1,2 and 2,1" ];
  Tablefmt.add_row t [ "3"; pattern_survey 3; "paper: 1,3,2 and 2,3,1 (confirmed)" ];
  Tablefmt.add_row t
    [ "4"; pattern_survey 4; "paper prints 1,3,2,4 / 4,2,3,1; we measure 1,3,4,2 / 2,4,3,1 (typo in paper)" ];
  (* n = 5 necessary condition *)
  let rng = Rng.create 3005 in
  let viol = ref 0 and total = ref 0 in
  for _ = 1 to draws / 2 do
    let ds = G.homogeneous_deltas (Rng.split rng) ~n:5 ~den:4096 () in
    let deltas = Array.map (fun (r : Spec.rat) -> Q.of_q r.Spec.num r.Spec.den) ds in
    let _, orders = EQ.Homogeneous.optimal_orders deltas in
    List.iter
      (fun o ->
        incr total;
        if not (EQ.Homogeneous.five_task_condition deltas o) then incr viol)
      orders
  done;
  Tablefmt.add_row t
    [
      "5";
      Printf.sprintf "condition (dl-dj)(di-dm)<=0 violated %d/%d" !viol !total;
      "paper: necessary condition (confirmed)";
    ];
  (* Beyond the paper: the dominant patterns for n = 5..7, discovered
     with the float recurrence (exhaustive order enumeration). *)
  let float_survey n =
    let tbl = Hashtbl.create 16 in
    let rng = Rng.create (3100 + n) in
    for _ = 1 to draws / 2 do
      let ds = G.homogeneous_deltas (Rng.split rng) ~n ~den:4096 () in
      let deltas = Array.map (fun (r : Spec.rat) -> float_of_int r.Spec.num /. float_of_int r.Spec.den) ds in
      Array.sort (fun a b -> compare b a) deltas;
      let best = ref infinity and best_order = ref [||] in
      EF.Orderings.fold_permutations n
        (fun () order ->
          let v = EF.Homogeneous.total deltas order in
          if v < !best -. 1e-12 then begin
            best := v;
            best_order := Array.copy order
          end)
        ();
      let key = String.concat "," (Array.to_list (Array.map (fun i -> string_of_int (i + 1)) !best_order)) in
      Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))
    done;
    let entries = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
    let entries = List.sort (fun (_, a) (_, b) -> compare b a) entries in
    String.concat "  " (List.map (fun (k, v) -> Printf.sprintf "%s(%d)" k v) (List.filteri (fun i _ -> i < 3) entries))
  in
  List.iter
    (fun n ->
      Tablefmt.add_row t
        [ string_of_int n; float_survey n; "beyond the paper: first enumerated optimum only" ])
    [ 5; 6; 7 ];
  t

(* ------------------------------------------------------------------ *)
(* E4 — Conjecture 13                                                  *)
(* ------------------------------------------------------------------ *)

let conjecture13 scale =
  let orders_per_n = match scale with Quick -> 5 | Full -> 50 in
  let t =
    Tablefmt.create ~title:"E4 / Conjecture 13: total(order) - total(reversed), exact rationals"
      [ "tasks"; "orders tested"; "max |gap|"; "verdict" ]
  in
  Tablefmt.set_align t [ Tablefmt.Right; Tablefmt.Right; Tablefmt.Right; Tablefmt.Left ];
  let rng = Rng.create 4000 in
  for n = 2 to 15 do
    let all_zero = ref true in
    for _ = 1 to orders_per_n do
      let ds = G.homogeneous_deltas (Rng.split rng) ~n ~den:1024 () in
      let deltas = Array.map (fun (r : Spec.rat) -> Q.of_q r.Spec.num r.Spec.den) ds in
      let order = EQ.Orderings.random (Rng.split rng) n in
      if Q.sign (EQ.Homogeneous.reversal_gap deltas order) <> 0 then all_zero := false
    done;
    Tablefmt.add_row t
      [
        string_of_int n;
        string_of_int orders_per_n;
        (if !all_zero then "0 (exact)" else "NON-ZERO");
        (if !all_zero then "holds" else "VIOLATED");
      ]
  done;
  t

(* ------------------------------------------------------------------ *)
(* E5 — preemption bounds                                              *)
(* ------------------------------------------------------------------ *)

let preemptions scale =
  let per_size = match scale with Quick -> 30 | Full -> 200 in
  let t =
    Tablefmt.create ~title:"E5 / Thm 9-10: allocation changes (<= n) and preemptions (<= 3n) in WF normal forms"
      [ "tasks"; "procs"; "max changes"; "bound n"; "max preemptions"; "bound 3n" ]
  in
  Tablefmt.set_align t (List.init 6 (fun _ -> Tablefmt.Right));
  List.iter
    (fun (n, procs) ->
      let rng = Rng.create (5000 + n) in
      let max_changes = ref 0 and max_preempt = ref 0 in
      for _ = 1 to per_size do
        let spec = G.uniform (Rng.split rng) ~procs ~n () in
        let inst = EF.Instance.of_spec spec in
        let sigma = EF.Orderings.random (Rng.split rng) n in
        let s = EF.Water_filling.normalize (EF.Greedy.run inst sigma) in
        max_changes := max !max_changes (EF.Preemption.total_changes s);
        let is, _ = EF.Integerize.of_columns s in
        let gantt = EF.Assignment.assign is in
        max_preempt := max !max_preempt (EF.Assignment.preemptions gantt)
      done;
      Tablefmt.add_row t
        [
          string_of_int n;
          string_of_int procs;
          string_of_int !max_changes;
          string_of_int n;
          string_of_int !max_preempt;
          string_of_int (3 * n);
        ])
    [ (5, 4); (10, 8); (20, 16); (40, 16) ];
  t

(* ------------------------------------------------------------------ *)
(* E6 — WDEQ ratio                                                     *)
(* ------------------------------------------------------------------ *)

let wdeq_ratio scale =
  let count = match scale with Quick -> 100 | Full -> 2000 in
  let t =
    Tablefmt.create ~title:"E6 / Thm 4: WDEQ competitive ratio (guarantee: 2)"
      [ "reference"; "tasks"; "instances"; "mean"; "p99"; "max" ]
  in
  Tablefmt.set_align t [ Tablefmt.Left; Tablefmt.Right; Tablefmt.Right; Tablefmt.Right; Tablefmt.Right; Tablefmt.Right ];
  (* Against the true optimum for small n. *)
  for n = 2 to 5 do
    let rng = Rng.create (6000 + n) in
    let ratios = ref [] in
    for _ = 1 to count do
      let spec = G.uniform (Rng.split rng) ~procs:4 ~n () in
      let inst = EF.Instance.of_spec spec in
      ratios := (wdeq_obj inst /. lp_opt inst) :: !ratios
    done;
    let s = Stats.summarize !ratios in
    Tablefmt.add_row t
      [
        "LP optimum";
        string_of_int n;
        string_of_int count;
        Printf.sprintf "%.4f" s.Stats.mean;
        Printf.sprintf "%.4f" s.Stats.p99;
        Printf.sprintf "%.4f" s.Stats.max;
      ]
  done;
  (* Against the Lemma 2 upper bound for large n: the ratio
     TC / 2(A(VF-bar)+H(VF)) must stay <= 1. *)
  List.iter
    (fun n ->
      let rng = Rng.create (6100 + n) in
      let ratios = ref [] in
      for _ = 1 to count do
        let spec = G.uniform (Rng.split rng) ~procs:8 ~n () in
        let inst = EF.Instance.of_spec spec in
        let s, meta = SF.solve_exn "wdeq" inst in
        let d = Option.get meta.SF.wdeq_diagnostics in
        let bound =
          2.
          *. (EF.Lower_bounds.squashed_area (EF.Instance.sub_instance inst d.EF.Wdeq.limited_volume)
             +. EF.Lower_bounds.height_bound (EF.Instance.sub_instance inst d.EF.Wdeq.full_volume))
        in
        ratios := (objective s /. bound) :: !ratios
      done;
      let s = Stats.summarize !ratios in
      Tablefmt.add_row t
        [
          "2(A+H) Lemma-2 bound";
          string_of_int n;
          string_of_int count;
          Printf.sprintf "%.4f" s.Stats.mean;
          Printf.sprintf "%.4f" s.Stats.p99;
          Printf.sprintf "%.4f" s.Stats.max;
        ])
    [ 20; 50 ];
  t

(* ------------------------------------------------------------------ *)
(* E7 — bandwidth sharing                                              *)
(* ------------------------------------------------------------------ *)

let bandwidth scale =
  let scenarios = match scale with Quick -> 50 | Full -> 500 in
  let t =
    Tablefmt.create ~title:"E7 / Fig 1: tasks processed by the horizon, normalized to the best policy"
      [ "policy"; "mean (normalized)"; "min (normalized)"; "wins" ]
  in
  Tablefmt.set_align t [ Tablefmt.Left; Tablefmt.Right; Tablefmt.Right; Tablefmt.Right ];
  let policies = [ B.Fifo; B.Equal_split; B.Wdeq; B.Smith_greedy ] in
  let acc = List.map (fun p -> (p, ref [])) policies in
  let wins = List.map (fun p -> (p, ref 0)) policies in
  let rng = Rng.create 7000 in
  for _ = 1 to scenarios do
    let n = Rng.int_in rng 3 10 in
    let p = Rng.int_in rng 4 12 in
    let workers =
      Array.init n (fun _ ->
          {
            B.code_size = float_of_int (Rng.dyadic rng ~den:16) /. 4.;
            bandwidth = float_of_int (Rng.int_in rng 1 (p - 1));
            rate = float_of_int (Rng.dyadic rng ~den:16) /. 4.;
          })
    in
    let total = Array.fold_left (fun a w -> a +. w.B.code_size) 0. workers in
    let sc = { B.server_capacity = float_of_int p; horizon = (total /. 2.) +. 2.; workers } in
    let tps = List.map (fun pol -> (pol, B.throughput sc pol)) policies in
    let best = List.fold_left (fun a (_, v) -> Float.max a v) 0. tps in
    if best > 0. then begin
      List.iter (fun (pol, v) -> List.assoc pol acc := (v /. best) :: !(List.assoc pol acc)) tps;
      let winner, _ = List.fold_left (fun (bp, bv) (p', v) -> if v > bv then (p', v) else (bp, bv)) (B.Fifo, -1.) tps in
      incr (List.assoc winner wins)
    end
  done;
  List.iter
    (fun pol ->
      let s = Stats.summarize !(List.assoc pol acc) in
      Tablefmt.add_row t
        [
          B.policy_name pol;
          Printf.sprintf "%.4f" s.Stats.mean;
          Printf.sprintf "%.4f" s.Stats.min;
          string_of_int !(List.assoc pol wins);
        ])
    policies;
  t

(* ------------------------------------------------------------------ *)
(* E8 — makespan                                                       *)
(* ------------------------------------------------------------------ *)

let makespan scale =
  let count = match scale with Quick -> 100 | Full -> 1000 in
  let t =
    Tablefmt.create ~title:"E8 / Cmax row: WF makespan tightness"
      [ "tasks"; "T* feasible"; "0.99 T* infeasible"; "greedy/T* mean"; "wdeq/T* mean" ]
  in
  Tablefmt.set_align t (List.init 5 (fun _ -> Tablefmt.Right));
  List.iter
    (fun n ->
      let rng = Rng.create (8000 + n) in
      let feas = ref 0 and infeas = ref 0 in
      let greedy_ratio = ref [] and wdeq_r = ref [] in
      for _ = 1 to count do
        let spec = G.uniform (Rng.split rng) ~procs:6 ~n () in
        let inst = EF.Instance.of_spec spec in
        let t_star = EF.Makespan.optimal inst in
        let all v = Array.make n v in
        if EF.Water_filling.feasible inst (all t_star) then incr feas;
        if not (EF.Water_filling.feasible inst (all (0.99 *. t_star))) then incr infeas;
        let sigma = EF.Orderings.random (Rng.split rng) n in
        greedy_ratio := (EF.Schedule.makespan (EF.Greedy.run inst sigma) /. t_star) :: !greedy_ratio;
        let w = fst (SF.solve_exn "wdeq" inst) in
        wdeq_r := (EF.Schedule.makespan w /. t_star) :: !wdeq_r
      done;
      Tablefmt.add_row t
        [
          string_of_int n;
          Printf.sprintf "%d/%d" !feas count;
          Printf.sprintf "%d/%d" !infeas count;
          Printf.sprintf "%.4f" (Stats.summarize !greedy_ratio).Stats.mean;
          Printf.sprintf "%.4f" (Stats.summarize !wdeq_r).Stats.mean;
        ])
    [ 4; 8; 16 ];
  t

(* ------------------------------------------------------------------ *)
(* E9 — Lmax                                                           *)
(* ------------------------------------------------------------------ *)

let lmax scale =
  let count = match scale with Quick -> 60 | Full -> 500 in
  let t =
    Tablefmt.create ~title:"E9 / Lmax row: minimal lateness by WF feasibility search"
      [ "tasks"; "bracket <= tol"; "hi feasible"; "lo-eps infeasible"; "mean Lmax" ]
  in
  Tablefmt.set_align t (List.init 5 (fun _ -> Tablefmt.Right));
  List.iter
    (fun n ->
      let rng = Rng.create (9000 + n) in
      let ok_width = ref 0 and ok_hi = ref 0 and ok_lo = ref 0 in
      let lvals = ref [] in
      for _ = 1 to count do
        let spec = G.uniform (Rng.split rng) ~procs:4 ~n () in
        let inst = EF.Instance.of_spec spec in
        let due = Array.init n (fun _ -> float_of_int (Rng.dyadic rng ~den:64) /. 32.) in
        let lo, hi, _ = EF.Lateness.minimize ~tol:1e-7 inst due in
        if hi -. lo <= 1e-6 then incr ok_width;
        if EF.Lateness.feasible inst due hi then incr ok_hi;
        if (not (EF.Lateness.feasible inst due (lo -. 1e-4))) || hi -. lo < 1e-12 then incr ok_lo;
        lvals := hi :: !lvals
      done;
      Tablefmt.add_row t
        [
          string_of_int n;
          Printf.sprintf "%d/%d" !ok_width count;
          Printf.sprintf "%d/%d" !ok_hi count;
          Printf.sprintf "%d/%d" !ok_lo count;
          Printf.sprintf "%.4f" (Stats.summarize !lvals).Stats.mean;
        ])
    [ 4; 8 ];
  t

(* ------------------------------------------------------------------ *)
(* E10 — greedy on w = V = 1 (the open question)                       *)
(* ------------------------------------------------------------------ *)

let smith_greedy scale =
  let count = match scale with Quick -> 120 | Full -> 2000 in
  let t =
    Tablefmt.create
      ~title:"E10 / open question: greedy on w=V=1 instances (worst observed ratios vs optimum)"
      [ "tasks"; "best-greedy/opt max"; "worst-greedy/opt max"; "largest-delta-first/opt max" ]
  in
  Tablefmt.set_align t (List.init 4 (fun _ -> Tablefmt.Right));
  for n = 2 to 5 do
    let rng = Rng.create (10_000 + n) in
    let best_r = ref 0. and worst_r = ref 0. and ldf_r = ref 0. in
    for _ = 1 to count do
      let spec = G.unit_tasks (Rng.split rng) ~procs:8 ~n () in
      let inst = EF.Instance.of_spec spec in
      let opt = lp_opt inst in
      let best = ref infinity and worst = ref 0. in
      EF.Orderings.fold_permutations n
        (fun () sigma ->
          let v = EF.Greedy.objective inst sigma in
          if v < !best then best := v;
          if v > !worst then worst := v)
        ();
      let ldf = EF.Greedy.objective inst (EF.Orderings.largest_delta inst) in
      best_r := Float.max !best_r (!best /. opt);
      worst_r := Float.max !worst_r (!worst /. opt);
      ldf_r := Float.max !ldf_r (ldf /. opt)
    done;
    Tablefmt.add_row t
      [
        string_of_int n;
        Printf.sprintf "%.6f" !best_r;
        Printf.sprintf "%.6f" !worst_r;
        Printf.sprintf "%.6f" !ldf_r;
      ]
  done;
  t

(* ------------------------------------------------------------------ *)

let adversarial = Adversarial.table
let ablation_assignment = Ablation.assignment_table
let ablation_engine = Ablation.engine_table
let kk_family = Kk_family.table
let organ_pipe = Organ_pipe.table
let malleability = Malleability.table
let sensitivity = Sensitivity.table

let all_experiments =
  [
    ("table1", table1);
    ("greedy_vs_opt", greedy_vs_opt);
    ("optimal_orders", optimal_orders);
    ("conjecture13", conjecture13);
    ("preemptions", preemptions);
    ("wdeq_ratio", wdeq_ratio);
    ("bandwidth", bandwidth);
    ("makespan", makespan);
    ("lmax", lmax);
    ("smith_greedy", smith_greedy);
    ("adversarial", adversarial);
    ("ablation_assignment", ablation_assignment);
    ("ablation_engine", ablation_engine);
    ("kk_family", kk_family);
    ("organ_pipe", organ_pipe);
    ("malleability", malleability);
    ("sensitivity", sensitivity);
  ]

let names = List.map fst all_experiments
let by_name name = List.assoc_opt name all_experiments

let run_all scale =
  List.iter
    (fun (name, f) ->
      Printf.printf "[experiment %s]\n%!" name;
      Tablefmt.print (f scale))
    all_experiments
