(** Adversarial worst-case search (E11).

    Random instances barely stress approximation guarantees (E1/E6 find
    WDEQ below 1.4 where the proof allows 2). This module hunts for bad
    instances by hill climbing on the instance attributes — the
    standard empirical companion to worst-case analysis, and the
    natural follow-up to the open questions of the paper's conclusion.

    The search space is the dyadic grid of {!Mwct_workload.Generator}:
    volumes and weights with denominator [den], integer deltas. A move
    perturbs one attribute of one task; the score is
    [algorithm(I) / OPT(I)] with OPT from the Corollary-1 LP. *)

module EF = Mwct_core.Engine.Float
module SF = Mwct_solver.Solver.Float
module Spec = Mwct_core.Spec
module Rng = Mwct_util.Rng
module Tablefmt = Mwct_util.Tablefmt

type target = {
  label : string;
  (* objective value of the algorithm under study *)
  algo : EF.Types.instance -> float;
  (* transform applied to candidate specs (e.g. force delta = 1) *)
  project : Spec.t -> Spec.t;
  (* the guarantee the paper states (for the table) *)
  claim : string;
  bound : float;
  (* search geometry: LRF needs more tasks than processors to be
     stressed at all, the LP enumeration caps n *)
  procs : int;
  n : int;
}

let wdeq_target =
  {
    label = "WDEQ vs OPT";
    algo = SF.objective "wdeq";
    project = (fun s -> s);
    claim = "<= 2 (Thm 4)";
    bound = 2.;
    procs = 4;
    n = 4;
  }

let deq_unweighted_target =
  {
    label = "DEQ vs OPT (w = 1)";
    algo = SF.objective "deq";
    project =
      (fun s ->
        Spec.make ~procs:s.Spec.procs
          (Array.to_list (Array.map (fun (t : Spec.task) -> { t with Spec.weight = Spec.rat_of_int 1 }) s.Spec.tasks)));
    claim = "<= 2 [13]";
    bound = 2.;
    procs = 4;
    n = 4;
  }

let lrf_target =
  {
    label = "LRF vs OPT (delta = 1)";
    algo = SF.objective "greedy-smith";
    project =
      (fun s ->
        Spec.make ~procs:s.Spec.procs
          (Array.to_list (Array.map (fun (t : Spec.task) -> { t with Spec.delta = 1 }) s.Spec.tasks)));
    claim = "<= (1+sqrt 2)/2 [17]";
    bound = (1. +. sqrt 2.) /. 2.;
    procs = 2;
    n = 5;
  }

let best_greedy_target =
  {
    label = "best greedy vs OPT";
    algo = SF.objective "best-greedy";
    project = (fun s -> s);
    claim = "= 1 (Conjecture 12)";
    bound = 1.;
    procs = 4;
    n = 5;
  }

let targets = [ wdeq_target; deq_unweighted_target; lrf_target; best_greedy_target ]

let den = 16

(* One random spec on the search grid. *)
let random_spec rng ~procs ~n =
  Mwct_workload.Generator.uniform rng ~procs ~n ~den ()

(* Perturb one attribute of one task. *)
let mutate rng (s : Spec.t) : Spec.t =
  let tasks = Array.copy s.Spec.tasks in
  let i = Rng.int rng (Array.length tasks) in
  let t = tasks.(i) in
  let bump (r : Spec.rat) =
    let step = 1 + Rng.int rng 3 in
    let num = if Rng.bool rng then r.Spec.num + step else Stdlib.max 1 (r.Spec.num - step) in
    Spec.rat (Stdlib.min (2 * den) num) r.Spec.den
  in
  tasks.(i) <-
    (match Rng.int rng 3 with
    | 0 -> { t with Spec.volume = bump t.Spec.volume }
    | 1 -> { t with Spec.weight = bump t.Spec.weight }
    | _ ->
      let d = t.Spec.delta + (if Rng.bool rng then 1 else -1) in
      { t with Spec.delta = Stdlib.max 1 (Stdlib.min (s.Spec.procs - 1) d) });
  Spec.make ~procs:s.Spec.procs (Array.to_list tasks)

let score (target : target) (s : Spec.t) : float =
  let s = target.project s in
  let inst = EF.Instance.of_spec s in
  let opt = SF.objective "optimal" inst in
  if opt <= 0. then 1. else target.algo inst /. opt

(** Hill-climb [target] from [restarts] random starts. Returns the
    best (ratio, spec) found. *)
let hunt ~restarts ~steps (target : target) (seed : int) : float * Spec.t =
  let rng = Rng.create seed in
  let best_ratio = ref 0. and best_spec = ref None in
  for _ = 1 to restarts do
    let current = ref (random_spec (Rng.split rng) ~procs:target.procs ~n:target.n) in
    let current_score = ref (score target !current) in
    for _ = 1 to steps do
      let cand = mutate rng !current in
      let cand_score = score target cand in
      if cand_score >= !current_score then begin
        current := cand;
        current_score := cand_score
      end
    done;
    if !current_score > !best_ratio then begin
      best_ratio := !current_score;
      best_spec := Some !current
    end
  done;
  match !best_spec with Some s -> (!best_ratio, s) | None -> assert false

let table scale =
  let restarts, steps = match scale with Experiments_scale.Quick -> (4, 40) | Full -> (20, 300) in
  let t =
    Tablefmt.create ~title:"E11 / adversarial search: worst ratios found by hill climbing"
      [ "target"; "claimed bound"; "worst ratio found"; "witness instance" ]
  in
  Tablefmt.set_align t [ Tablefmt.Left; Tablefmt.Left; Tablefmt.Right; Tablefmt.Left ];
  List.iteri
    (fun k target ->
      let ratio, spec = hunt ~restarts ~steps target (11_000 + k) in
      let ok = ratio <= target.bound +. 1e-6 in
      Tablefmt.add_row t
        [
          target.label;
          target.claim ^ (if ok then "" else " VIOLATED");
          Printf.sprintf "%.4f" ratio;
          Spec.to_string spec;
        ])
    targets;
  t
