(** Sharded multi-tenant store: domain-parallel engine shards under a
    cross-shard WDEQ capacity allocator (DESIGN.md §14).

    Tasks are partitioned across [nshards] inner engines by a routing
    function of the task id ({!route}); each shard is a complete PR 6
    engine (SoA columns, kinetic frontier, zero-alloc advance) and never
    sees the other shards' tasks. Once per input tick — [Advance],
    [Advance_to], or each round of [Drain] — the {e allocator} (any
    {!Engine.Make.policy}, canonically the WDEQ kernel itself) splits
    the total capacity across the {e shards}, viewing shard [k] as a
    pseudo-task with weight [Σ weight] and cap [min (Σ cap) shard_cap]
    over its alive set. The budgets are applied through
    {!Engine.Make.set_capacity} and stay {e fixed for the whole tick}:
    shards advance to the same absolute target time independently (in
    parallel on OCaml 5 via {!Par}), so a completion's reshare and
    sweep cost O(n/S) inside its own shard instead of O(n) globally —
    that, not the domains, is also the sequential win.

    Budgets are per-tick, not per-completion, so the share profile is
    {e not} the flat single-engine WDEQ profile (hierarchical max-min
    differs from flat max-min whenever a shard's internal caps bind).
    Determinism is what the store promises instead, and the journals
    carry it:

    - the {e merged} journal tags every line with its owning shard
      ([init] and input-tick lines are untagged/global) and orders a
      tick as input line, changed budgets in ascending shard order,
      completions merged by (time, shard); re-running the input stream
      reproduces it byte for byte;
    - each {e per-shard} journal is a plain single-engine journal —
      init, [budget] re-assignments, absolute [advance_to] ticks, its
      own submits/cancels and [out] lines — and replays on an ordinary
      engine via {!Journal.replay} with no allocator logic at all.
      That replay is the sharding oracle: the replayed engine must
      reproduce the live shard's dump and objective exactly.

    With [nshards = 1] the store degenerates to a thin recording shim
    over a single engine: no allocator, no budget lines, no shard tags
    — journal bytes and dump fingerprints are bit-identical to driving
    the PR 6 engine directly.

    Absolute targets are assigned, not accumulated ({!Engine.Make}'s
    [Advance_to]), so every shard's clock holds the {e same float bits}
    as a single engine fed the same stream. {e Empty} shards (zero
    alive, zero dormant tasks) are left out of a tick entirely — no
    [Advance_to] dispatch, no per-shard journal line — and their clock
    lags; the store catches a lagging shard up with one absolute
    [advance_to] immediately before the next submit routed to it, so
    [submitted_at] still holds the lockstep bits. A tick that fails
    (engine error in any shard) records nothing and leaves the store
    poisoned, matching the engine's own error contract.

    {b Precedence.} A submit whose [deps] are unmet routes to the shard
    of its {e first} parent (all parents must live in one shard — the
    engine rejects a parent it cannot see as an unknown dependency),
    and the diverted id is remembered so cancels and lookups follow it.
    Dormant tasks are excluded from the allocator summaries until the
    engine activates them (detected after each tick's completions);
    cancel cascades ({!Engine.Make.cancel}) evict every closed id from
    the summaries at once. Steady ticks where no summary changed skip
    the allocator call altogether — budgets could not change, so the
    journals keep the exact bytes of the always-reallocate store. *)

module Make (F : Mwct_field.Field.S) = struct
  module En = Engine.Make (F)
  module J = Journal.Make (F)
  module M = Metrics.Make (F)

  (** How a task id picks its shard. [Hash] runs the id through a
      splitmix64 finalizer (good spread for clustered tenant ids);
      [Mod] is plain [id mod nshards] (deterministic round-robin when
      ids are dense — the bench and the tests use it for legibility).
      Cancels route identically to submits: same id, same shard. *)
  type route = Hash | Mod

  (* splitmix64 finalizer — full-avalanche bijection on 64 bits. *)
  let mix64 (z : int64) : int64 =
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let route_shard (r : route) (nshards : int) (id : int) : int =
    match r with
    | Mod -> (id mod nshards + nshards) mod nshards
    | Hash -> Int64.to_int (mix64 (Int64.of_int id)) land max_int mod nshards

  type t = {
    nshards : int;
    route : route;
    capacity : F.t;  (* total, what the allocator splits *)
    shard_cap : F.t;  (* per-shard budget ceiling *)
    allocator : En.policy;
    policy_label : string;  (* init-line policy name *)
    engines : En.t array;
    (* per-shard alive membership (id -> weight, cap): the allocator's
       summary sums are maintained incrementally from it, and it is the
       resync source when float drift trips the sign guard *)
    tasks : (int, F.t * F.t) Hashtbl.t array;
    (* dormant (precedence-blocked) tasks per shard: id -> (weight,
       cap), parked until the engine activates them — only then do they
       join [tasks] and the allocator sums *)
    dormant_meta : (int, F.t * F.t) Hashtbl.t array;
    (* ids routed away from their natural shard (dependents follow
       their first parent); absent means [route_shard] *)
    home : (int, int) Hashtbl.t;
    w_sum : F.t array;
    d_sum : F.t array;
    (* summaries changed since the last allocator run; a clean tick
       reuses the standing budgets without calling the allocator *)
    mutable alloc_dirty : bool;
    mutable now : F.t;
    mutable merged_seq : int;
    shard_seq : int array;
    merged_sink : (string -> unit) option;
    decision_sink : (string -> unit) option;
    shard_sink : (int -> string -> unit) option;
    pool : Par.t;
    results : (En.notification list, En.error) result array;  (* Par scratch *)
    agg : M.t;  (* aggregated metrics + the serve latency histogram *)
    mutable events : int;  (* store-level input events *)
    single : bool;  (* nshards = 1: plain-engine delegation mode *)
  }

  (* ---------- journal emission ---------- *)

  (* Sequence counters always advance, sinks or not: the numbering is
     part of the deterministic output, so attaching a journal to a
     fresh run of the same stream reproduces the same bytes. *)

  let memit t ?shard (e : J.entry) : unit =
    let seq = t.merged_seq in
    t.merged_seq <- seq + 1;
    if t.merged_sink <> None || t.decision_sink <> None then begin
      let line = J.to_line ?shard ~seq e in
      (match t.merged_sink with Some f -> f line | None -> ());
      match (e, t.decision_sink) with
      | J.Output _, Some f -> f line
      | _ -> ()
    end

  let semit t k (e : J.entry) : unit =
    let seq = t.shard_seq.(k) in
    t.shard_seq.(k) <- seq + 1;
    match t.shard_sink with Some f -> f k (J.to_line ~seq e) | None -> ()

  (* A tick's lines are buffered and flushed only on success: a failed
     tick records nothing (the engine error already left the store
     inconsistent; the journals at least stay replayable up to it). *)
  type pend = {
    mutable pm : (int option * J.entry) list;  (* merged, reverse *)
    ps : J.entry list array;  (* per shard, reverse *)
  }

  let pend_create nshards = { pm = []; ps = Array.make nshards [] }
  let push_m p shard e = p.pm <- (shard, e) :: p.pm
  let push_s p k e = p.ps.(k) <- e :: p.ps.(k)

  let flush t p =
    List.iter (fun (shard, e) -> memit t ?shard e) (List.rev p.pm);
    for k = 0 to t.nshards - 1 do
      List.iter (fun e -> semit t k e) (List.rev p.ps.(k))
    done

  (* ---------- construction ---------- *)

  (** [create ~nshards ~route ~capacity ~allocator ~policy ~kinetic
      ~policy_label ()].

      [allocator] splits the total capacity across shard views each
      tick; [policy] (plus a fresh [kinetic ()] per shard — the
      incremental rule is stateful, so it is a factory) runs inside
      each engine. [shard_cap] (default: the total capacity) caps any
      single shard's budget. [merged_sink] receives every merged
      journal line; [decision_sink] only the [out] lines (same bytes
      and sequence numbers — serve points it at stdout); [shard_sink k]
      the per-shard journal lines. *)
  let create ?(record_segments = true) ?shard_cap ?merged_sink ?decision_sink ?shard_sink
      ~nshards ~route ~capacity ~allocator ~policy ~kinetic ~policy_label () : t =
    if nshards < 1 then invalid_arg "Shard.create: nshards must be >= 1";
    if F.sign capacity <= 0 then invalid_arg "Shard.create: capacity must be positive";
    let shard_cap = match shard_cap with Some c -> c | None -> capacity in
    if F.sign shard_cap <= 0 then invalid_arg "Shard.create: shard_cap must be positive";
    let engines =
      Array.init nshards (fun _ ->
          En.create ~record_segments ?kinetic:(kinetic ()) ~capacity ~policy ())
    in
    let t =
      {
        nshards;
        route;
        capacity;
        shard_cap;
        allocator;
        policy_label;
        engines;
        tasks = Array.init nshards (fun _ -> Hashtbl.create 64);
        dormant_meta = Array.init nshards (fun _ -> Hashtbl.create 16);
        home = Hashtbl.create 64;
        w_sum = Array.make nshards F.zero;
        d_sum = Array.make nshards F.zero;
        alloc_dirty = true;
        now = F.zero;
        merged_seq = 0;
        shard_seq = Array.make nshards 0;
        merged_sink;
        decision_sink;
        shard_sink;
        pool = Par.create nshards;
        results = Array.make nshards (Ok []);
        agg = M.create ();
        events = 0;
        single = nshards = 1;
      }
    in
    (* Every journal opens with the same init line: total capacity and
       the policy label (shard budgets are re-assigned before any work
       runs, so the initial capacity only needs to be replayable). *)
    memit t (J.Init { capacity; policy = policy_label });
    for k = 0 to nshards - 1 do
      semit t k (J.Init { capacity; policy = policy_label })
    done;
    t

  (* ---------- accessors ---------- *)

  let nshards t = t.nshards
  let now t = if t.single then En.now t.engines.(0) else t.now
  let capacity t = t.capacity
  let engines t = t.engines
  let shard_of t id =
    if t.single then 0
    else
      match Hashtbl.find_opt t.home id with
      | Some k -> k
      | None -> route_shard t.route t.nshards id

  let alive_count t =
    let n = ref 0 in
    for k = 0 to t.nshards - 1 do
      n := !n + En.alive_count t.engines.(k)
    done;
    !n

  let dormant_count t =
    let n = ref 0 in
    for k = 0 to t.nshards - 1 do
      n := !n + En.dormant_count t.engines.(k)
    done;
    !n

  (* A shard participates in a tick iff it holds any task at all; a
     dormant task implies an alive one in the same shard (its minimal
     unmet parent), so alive alone would do — the dormant check is
     belt and braces. *)
  let shard_active t k =
    En.alive_count t.engines.(k) > 0 || En.dormant_count t.engines.(k) > 0

  let remaining t id = En.remaining t.engines.(shard_of t id) id
  let find_closed t id = En.find_closed t.engines.(shard_of t id) id

  (** The store's metrics record: in sharded mode the persistent
      aggregate (refreshed by {!metrics_json}), holding the serve
      latency histogram; with one shard, the engine's own record. *)
  let metrics t = if t.single then En.metrics t.engines.(0) else t.agg

  (** Record one observed per-event service latency (seconds) into the
      store's histogram ({!Metrics.Make.observe_latency}). *)
  let observe_latency t secs = M.observe_latency (metrics t) secs

  let refresh_agg t =
    let m = t.agg in
    let sub = ref 0 and comp = ref 0 and canc = ref 0 in
    let resh = ref 0 and ac = ref 0 in
    let wc = ref F.zero and wf = ref F.zero in
    for k = 0 to t.nshards - 1 do
      let em = En.metrics t.engines.(k) in
      sub := !sub + em.M.submitted;
      comp := !comp + em.M.completed;
      canc := !canc + em.M.cancelled;
      resh := !resh + em.M.reshares;
      ac := !ac + em.M.alloc_changes;
      wc := F.add !wc em.M.weighted_completion;
      wf := F.add !wf em.M.weighted_flow
    done;
    m.M.events <- t.events;
    m.M.submitted <- !sub;
    m.M.completed <- !comp;
    m.M.cancelled <- !canc;
    m.M.reshares <- !resh;
    m.M.alloc_changes <- !ac;
    m.M.weighted_completion <- !wc;
    m.M.weighted_flow <- !wf

  let weighted_completion t =
    if t.single then En.weighted_completion t.engines.(0)
    else begin
      refresh_agg t;
      t.agg.M.weighted_completion
    end

  let completed_count t =
    let n = ref 0 in
    for k = 0 to t.nshards - 1 do
      n := !n + En.completed_count t.engines.(k)
    done;
    !n

  let metrics_json ?events_per_sec t =
    if t.single then En.metrics_json ?events_per_sec t.engines.(0)
    else begin
      refresh_agg t;
      M.to_json ?events_per_sec ~alive:(alive_count t) ~now:t.now t.agg
    end

  (** Deterministic fingerprint: with one shard, exactly the engine's
      {!Engine.Make.dump}; otherwise the per-shard dumps under
      [-- shard k --] headers. *)
  let dump t =
    if t.single then En.dump t.engines.(0)
    else begin
      let b = Buffer.create 256 in
      for k = 0 to t.nshards - 1 do
        Buffer.add_string b (Printf.sprintf "-- shard %d --\n" k);
        Buffer.add_string b (En.dump t.engines.(k))
      done;
      Buffer.contents b
    end

  (** Join the worker domains (no-op on sequential builds). *)
  let shutdown t = Par.shutdown t.pool

  (* ---------- summaries & allocation ---------- *)

  (* A closed (completed or cancelled) task leaves the allocator's
     summary sums. Exact on the rational field; on float the subtraction
     leaves ulp residue, so an emptied shard snaps back to exact zero
     and [reallocate]'s sign guard resyncs from the membership table if
     drift ever makes a sum non-positive while tasks remain. *)
  let forget_task t k id =
    (match Hashtbl.find_opt t.tasks.(k) id with
    | Some (w, c) ->
      Hashtbl.remove t.tasks.(k) id;
      t.w_sum.(k) <- F.sub t.w_sum.(k) w;
      t.d_sum.(k) <- F.sub t.d_sum.(k) c;
      t.alloc_dirty <- true
    | None -> ());
    Hashtbl.remove t.dormant_meta.(k) id;
    if En.alive_count t.engines.(k) = 0 then begin
      t.w_sum.(k) <- F.zero;
      t.d_sum.(k) <- F.zero
    end

  (* After a shard completed tasks, any of its parked dormant tasks may
     have been activated (or cascade-cancelled) by the engine; fold the
     activated ones into the allocator summary. *)
  let promote_activated t k =
    if Hashtbl.length t.dormant_meta.(k) > 0 then begin
      let moved = ref [] in
      Hashtbl.iter
        (fun id wc ->
          if En.waiting_on t.engines.(k) id = None then moved := (id, wc) :: !moved)
        t.dormant_meta.(k);
      List.iter
        (fun (id, (w, c)) ->
          Hashtbl.remove t.dormant_meta.(k) id;
          t.alloc_dirty <- true;
          (* still present in the engine => activated; gone => it was
             closed (cascade cancel) and has nothing to contribute *)
          if En.remaining t.engines.(k) id <> None then begin
            Hashtbl.replace t.tasks.(k) id (w, c);
            t.w_sum.(k) <- F.add t.w_sum.(k) w;
            t.d_sum.(k) <- F.add t.d_sum.(k) c
          end)
        !moved
    end

  (* Split the total capacity across the nonempty shards and apply the
     budgets. Only an actual change dirties a shard (set_capacity is a
     no-op on equal budgets), so a quiet stretch of ticks keeps every
     shard on its allocation-free advance path. Changed budgets are
     recorded in ascending shard order.

     Steady-state short-circuit: the allocator is a pure function of
     the summaries (and alive-ness, which only changes with them), so
     when no summary moved since the last run the budgets it would
     compute are the standing ones — skip the call entirely. The
     journals cannot tell: equal budgets emit no lines either way. *)
  let reallocate t p =
    if not t.alloc_dirty then ()
    else begin
    t.alloc_dirty <- false;
    for k = 0 to t.nshards - 1 do
      if
        En.alive_count t.engines.(k) > 0
        && (F.sign t.w_sum.(k) <= 0 || F.sign t.d_sum.(k) <= 0)
      then begin
        let w = ref F.zero and d = ref F.zero in
        Hashtbl.iter
          (fun _ (wt, cp) ->
            w := F.add !w wt;
            d := F.add !d cp)
          t.tasks.(k);
        t.w_sum.(k) <- !w;
        t.d_sum.(k) <- !d
      end
    done;
    let views = ref [] in
    for k = t.nshards - 1 downto 0 do
      if En.alive_count t.engines.(k) > 0 then begin
        let cap =
          if F.compare t.d_sum.(k) t.shard_cap <= 0 then t.d_sum.(k) else t.shard_cap
        in
        views := { En.id = k; weight = t.w_sum.(k); cap } :: !views
      end
    done;
    if !views <> [] then begin
      let out = t.allocator ~capacity:t.capacity !views in
      let desired = Array.make t.nshards None in
      List.iter
        (fun (k, b) -> if k >= 0 && k < t.nshards && F.sign b >= 0 then desired.(k) <- Some b)
        out;
      for k = 0 to t.nshards - 1 do
        match desired.(k) with
        | Some b when En.set_capacity t.engines.(k) b ->
          push_s p k (J.Budget b);
          push_m p (Some k) (J.Budget b)
        | _ -> ()
      done
    end
    end

  (* ---------- tick machinery ---------- *)

  (* Lowest-index error wins, like ascending-order sequential
     execution would surface it. *)
  let first_error t : En.error option =
    let err = ref None in
    for k = t.nshards - 1 downto 0 do
      match t.results.(k) with Error e -> err := Some e | Ok _ -> ()
    done;
    !err

  (* Merge the shards' completion lists into one stream ordered by
     (time, shard) — within a shard the list is already chronological,
     and the sort is stable, so simultaneous completions keep shard
     order and same-shard order. *)
  let merge_notes t : (int * En.notification) list =
    let all = ref [] in
    for k = t.nshards - 1 downto 0 do
      match t.results.(k) with
      | Ok notes -> all := List.rev_append (List.rev_map (fun n -> (k, n)) notes) !all
      | Error _ -> ()
    done;
    List.stable_sort
      (fun (k1, (n1 : En.notification)) (k2, n2) ->
        let c = F.compare n1.En.at n2.En.at in
        if c <> 0 then c else Stdlib.compare k1 k2)
      !all

  (* Advance the active shards to [target] in parallel; empty shards
     are skipped (lazy clock sync — they catch up before their next
     submit) and contribute an empty result. *)
  let advance_all t target =
    Par.run t.pool (fun k ->
        t.results.(k) <-
          (if shard_active t k then En.apply t.engines.(k) (En.Advance_to target) else Ok []))

  (* One input tick: re-budget, drive every active shard to the same
     absolute target, merge. *)
  let tick t (input_ev : En.event) (target : F.t) : (En.notification list, En.error) result =
    let p = pend_create t.nshards in
    push_m p None (J.Input input_ev);
    reallocate t p;
    for k = 0 to t.nshards - 1 do
      if shard_active t k then push_s p k (J.Input (En.Advance_to target))
    done;
    advance_all t target;
    match first_error t with
    | Some e -> Error e
    | None ->
      let notes = merge_notes t in
      List.iter
        (fun (k, (n : En.notification)) ->
          forget_task t k n.En.id;
          push_m p (Some k) (J.Output { id = n.En.id; at = n.En.at });
          push_s p k (J.Output { id = n.En.id; at = n.En.at }))
        notes;
      List.iter (fun (k, _) -> promote_activated t k) notes;
      t.now <- target;
      flush t p;
      t.events <- t.events + 1;
      Ok (List.map snd notes)

  let stall_budget = 64

  (* Drain: repeatedly re-budget, peek every shard's next completion
     estimate ({!Engine.Make.next_eta} — the advance loop's own
     arithmetic, so the global minimum is exactly where the owning
     shard's next step lands), and advance everyone there. Zero-budget
     (starved) shards peek [None] and simply ride along; if every
     nonempty shard is starved the drain deadlocks, same as the
     engine. The stall budget absorbs float-residue rounds where the
     minimum shard's completion needs an extra nudge. *)
  let drain t : (En.notification list, En.error) result =
    let p = pend_create t.nshards in
    push_m p None (J.Input En.Drain);
    let all = ref [] in
    let stall = ref 0 in
    let err = ref None in
    while alive_count t > 0 && !err = None do
      reallocate t p;
      let best = ref None in
      for k = 0 to t.nshards - 1 do
        if En.alive_count t.engines.(k) > 0 then
          match En.next_eta t.engines.(k) with
          | Some eta -> (
            match !best with
            | Some b when F.compare b eta <= 0 -> ()
            | _ -> best := Some eta)
          | None -> ()
      done;
      match !best with
      | None -> err := Some (En.Invalid "deadlock: alive tasks but no positive share")
      | Some eta -> (
        for k = 0 to t.nshards - 1 do
          if shard_active t k then push_s p k (J.Input (En.Advance_to eta))
        done;
        advance_all t eta;
        match first_error t with
        | Some e -> err := Some e
        | None ->
          t.now <- eta;
          let notes = merge_notes t in
          if notes = [] then begin
            incr stall;
            if !stall > stall_budget then
              err := Some (En.Invalid "no progress: completion estimate does not converge")
          end
          else begin
            stall := 0;
            List.iter
              (fun (k, (n : En.notification)) ->
                forget_task t k n.En.id;
                push_m p (Some k) (J.Output { id = n.En.id; at = n.En.at });
                push_s p k (J.Output { id = n.En.id; at = n.En.at }))
              notes;
            List.iter (fun (k, _) -> promote_activated t k) notes;
            all := List.rev_append notes !all
          end)
    done;
    match !err with
    | Some e -> Error e
    | None ->
      flush t p;
      t.events <- t.events + 1;
      Ok (List.rev_map snd !all)

  (* ---------- input events ---------- *)

  (** Apply one input event; notifications are the completions it
      triggered, merged across shards in chronological order. Failures
      record nothing. With one shard this delegates straight to
      {!Engine.Make.apply} (identical results, journal bytes and error
      strings); submit/cancel failures are per-event and leave the
      store untouched, while a failed advance/drain tick poisons it,
      matching the engine's own contract. *)
  let apply t (e : En.event) : (En.notification list, En.error) result =
    if t.single then begin
      match En.apply t.engines.(0) e with
      | Error _ as err -> err
      | Ok notes ->
        memit t (J.Input e);
        List.iter (fun (n : En.notification) -> memit t (J.Output { id = n.En.id; at = n.En.at })) notes;
        Ok notes
    end
    else
      match e with
      | En.Submit { id; weight; cap; deps; _ } -> (
        (* A dependent task must see its parents: route it to the first
           parent's shard (the engine rejects parents it cannot see).
           The diverted id is remembered in [home] for later lookups. *)
        let natural = route_shard t.route t.nshards id in
        let k = match deps with [] -> natural | p :: _ -> shard_of t p in
        (* Lazy clock sync: an empty shard skipped recent ticks; bring
           its clock to store time so [submitted_at] gets the same bits
           as the always-advance store. *)
        if F.compare (En.now t.engines.(k)) t.now < 0 then begin
          (match En.apply t.engines.(k) (En.Advance_to t.now) with
          | Ok _ -> ()
          | Error e ->
            invalid_arg ("Shard.apply: clock catch-up failed: " ^ En.error_to_string e));
          semit t k (J.Input (En.Advance_to t.now))
        end;
        match En.apply t.engines.(k) e with
        | Error _ as err -> err
        | Ok _ ->
          if k <> natural then Hashtbl.replace t.home id k;
          (match En.waiting_on t.engines.(k) id with
          | Some _ ->
            (* dormant: parked out of the allocator summaries until the
               engine activates it *)
            Hashtbl.replace t.dormant_meta.(k) id (weight, cap)
          | None ->
            Hashtbl.replace t.tasks.(k) id (weight, cap);
            t.w_sum.(k) <- F.add t.w_sum.(k) weight;
            t.d_sum.(k) <- F.add t.d_sum.(k) cap);
          t.alloc_dirty <- true;
          memit t ~shard:k (J.Input e);
          semit t k (J.Input e);
          t.events <- t.events + 1;
          Ok [])
      | En.Cancel id -> (
        let k = shard_of t id in
        match En.cancel t.engines.(k) id with
        | Error e -> Error e
        | Ok cascaded ->
          (* [En.cancel] bypasses [En.apply]'s event count; bump it so
             the shard dump still fingerprints like a replayed one *)
          let m = En.metrics t.engines.(k) in
          m.M.events <- m.M.events + 1;
          List.iter (fun cid -> forget_task t k cid) cascaded;
          memit t ~shard:k (J.Input e);
          semit t k (J.Input e);
          t.events <- t.events + 1;
          Ok [])
      | En.Advance dt ->
        if F.sign dt < 0 then Error (En.Invalid "advance: negative dt")
        else tick t e (F.add t.now dt)
      | En.Advance_to target ->
        if F.compare target t.now < 0 then
          Error
            (En.Invalid
               (Printf.sprintf "advance into the past (target %s < now %s)" (F.to_string target)
                  (F.to_string t.now)))
        else tick t e target
      | En.Drain -> drain t
end

(** Pre-applied stores, mirroring the rest of the library. *)
module Float = Make (Mwct_field.Field.Float_field)

module Exact = Make (Mwct_rational.Rational.Rat_field)
