(** JSONL event journal for the online engine.

    One JSON object per line, each carrying a monotonically increasing
    [seq] number. Four line kinds:

    - [init]   — engine parameters (capacity, policy name); always first.
    - [in]     — an input event ([submit] / [cancel] / [advance] /
                 [advance_to] / [drain]).
    - [out]    — an emitted decision: task [id] completed at time [t].
    - [budget] — a mid-stream capacity re-assignment (the sharded
                 store's per-tick processor budget for this shard).
    - [policy] — a mid-stream share-rule switch (the what-if branch
                 runner's policy mutation, DESIGN.md §16): replay forks
                 the engine in place under the new rule.

    Lines of a sharded store's merged journal additionally carry a
    [shard] field naming the owning shard ({!to_line}'s [?shard];
    {!of_line_tagged} surfaces it). Untagged lines are byte-identical
    to single-engine journals.

    Numeric payloads follow the library's dual-rendering convention: a
    decimal [float] field for tooling plus an exact [_repr] string
    ({!Mwct_field.Field.S.repr}) that survives the round trip
    bit-for-bit. {!replay} reads the [_repr] fields only, so replaying
    a journal reconstructs the {e exact} final engine state and
    objective — crash recovery and debugging for free. [out] lines are
    verified against the decisions the replayed engine emits; a
    mismatch is reported as corruption instead of being ignored.

    The parser is a minimal flat-object JSON reader (string / number /
    literal values, no nesting) — the journal grammar needs nothing
    more, and the repo deliberately has no JSON dependency. *)

module Make (F : Mwct_field.Field.S) = struct
  module En = Engine.Make (F)

  type entry =
    | Init of { capacity : F.t; policy : string }
    | Input of En.event
    | Output of { id : int; at : F.t }
    | Budget of F.t
        (** capacity re-assignment mid-stream ({!Engine.set_capacity}):
            the sharded store records each shard's per-tick processor
            budget so a per-shard journal replays on a plain single
            engine. *)
    | Policy of string
        (** share-rule switch mid-stream: from here on the engine runs
            under the named policy (state carried over bit-faithfully
            via {!Engine.Make.fork}). Written by the what-if branch
            runner so a policy-switch branch's journal is
            self-contained and replayable. *)

  (* ---------- encoding ---------- *)

  let escape s =
    let buf = Buffer.create (String.length s) in
    String.iter
      (function
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  (* Dual rendering of one field value: "k":<decimal>,"k_repr":"<exact>". *)
  let num_fields k x =
    [
      (k, Printf.sprintf "%.12g" (F.to_float x));
      (k ^ "_repr", Printf.sprintf "\"%s\"" (escape (F.repr x)));
    ]

  let obj fields =
    "{" ^ String.concat "," (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" k v) fields) ^ "}"

  (** One journal line (no trailing newline). [shard], when given, tags
      the line with the owning shard of a sharded store's merged
      journal; untagged lines are byte-identical to single-engine
      journals. *)
  let to_line ?shard ~seq (e : entry) : string =
    let seq_field = ("seq", string_of_int seq) in
    let seq_field =
      match shard with
      | None -> [ seq_field ]
      | Some k -> [ seq_field; ("shard", string_of_int k) ]
    in
    match e with
    | Init { capacity; policy } ->
      obj
        (seq_field @ [ ("type", "\"init\"") ]
        @ num_fields "capacity" capacity
        @ [ ("policy", Printf.sprintf "\"%s\"" (escape policy)) ])
    | Input (En.Submit { id; volume; weight; cap; speedup; deps }) ->
      (* The curve is rendered as a string of space-separated "x:y"
         breakpoints — the flat-object parser has no arrays — with the
         usual dual decimal / [_repr] convention. Linear submits carry
         no speedup fields, keeping their lines byte-identical to
         pre-curve journals. Dependency edges likewise render as a
         space-separated id string, and only when present. *)
      let speedup_fields =
        match speedup with
        | None -> []
        | Some (bx, by) ->
          let render f =
            String.concat " "
              (List.map2
                 (fun x y -> f x ^ ":" ^ f y)
                 (Array.to_list bx) (Array.to_list by))
          in
          [
            ("speedup", Printf.sprintf "\"%s\"" (escape (render (fun x -> Printf.sprintf "%.12g" (F.to_float x)))));
            ("speedup_repr", Printf.sprintf "\"%s\"" (escape (render F.repr)));
          ]
      in
      let deps_fields =
        match deps with
        | [] -> []
        | ds ->
          [ ("deps", Printf.sprintf "\"%s\"" (String.concat " " (List.map string_of_int ds))) ]
      in
      obj
        (seq_field @ [ ("type", "\"submit\""); ("id", string_of_int id) ]
        @ num_fields "volume" volume @ num_fields "weight" weight @ num_fields "cap" cap
        @ speedup_fields @ deps_fields)
    | Input (En.Cancel id) -> obj (seq_field @ [ ("type", "\"cancel\""); ("id", string_of_int id) ])
    | Input (En.Advance dt) -> obj (seq_field @ [ ("type", "\"advance\"") ] @ num_fields "dt" dt)
    | Input (En.Advance_to at) -> obj (seq_field @ [ ("type", "\"advance_to\"") ] @ num_fields "t" at)
    | Input En.Drain -> obj (seq_field @ [ ("type", "\"drain\"") ])
    | Output { id; at } ->
      obj (seq_field @ [ ("type", "\"complete\""); ("id", string_of_int id) ] @ num_fields "t" at)
    | Budget c -> obj (seq_field @ [ ("type", "\"budget\"") ] @ num_fields "capacity" c)
    | Policy p ->
      obj (seq_field @ [ ("type", "\"policy\""); ("policy", Printf.sprintf "\"%s\"" (escape p)) ])

  (* ---------- flat-object JSON parsing ---------- *)

  exception Parse of string

  let parse_object (line : string) : (string * string) list =
    (* Returns raw values: strings are unescaped without quotes, other
       scalars (numbers, true/false/null) verbatim. *)
    let n = String.length line in
    let pos = ref 0 in
    let fail msg = raise (Parse (Printf.sprintf "%s at column %d" msg !pos)) in
    let skip_ws () = while !pos < n && (line.[!pos] = ' ' || line.[!pos] = '\t') do incr pos done in
    let expect c =
      skip_ws ();
      if !pos < n && line.[!pos] = c then incr pos else fail (Printf.sprintf "expected '%c'" c)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string"
        else
          match line.[!pos] with
          | '"' -> incr pos
          | '\\' ->
            if !pos + 1 >= n then fail "dangling escape";
            (match line.[!pos + 1] with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | c -> fail (Printf.sprintf "unsupported escape '\\%c'" c));
            pos := !pos + 2;
            go ()
          | c ->
            Buffer.add_char buf c;
            incr pos;
            go ()
      in
      go ();
      Buffer.contents buf
    in
    let parse_scalar () =
      skip_ws ();
      if !pos < n && line.[!pos] = '"' then parse_string ()
      else begin
        let start = !pos in
        while
          !pos < n
          && (match line.[!pos] with
             | ',' | '}' | ' ' | '\t' -> false
             | _ -> true)
        do
          incr pos
        done;
        if !pos = start then fail "empty value";
        String.sub line start (!pos - start)
      end
    in
    expect '{';
    skip_ws ();
    let fields = ref [] in
    if !pos < n && line.[!pos] = '}' then incr pos
    else begin
      let continue = ref true in
      while !continue do
        let k = parse_string () in
        expect ':';
        let v = parse_scalar () in
        fields := (k, v) :: !fields;
        skip_ws ();
        if !pos < n && line.[!pos] = ',' then incr pos
        else begin
          expect '}';
          continue := false
        end
      done
    end;
    List.rev !fields

  (** Parse one line, surfacing the optional shard tag of a merged
      sharded journal. *)
  let of_line_tagged (line : string) : (int * int option * entry, string) result =
    try
      let fields = parse_object line in
      let get k =
        match List.assoc_opt k fields with
        | Some v -> v
        | None -> raise (Parse (Printf.sprintf "missing field %S" k))
      in
      let get_int k =
        match int_of_string_opt (get k) with
        | Some i -> i
        | None -> raise (Parse (Printf.sprintf "field %S: not an integer" k))
      in
      let get_num k =
        (* The exact [_repr] string is authoritative; the decimal field
           is only a fallback for hand-written journals. *)
        let raw = match List.assoc_opt (k ^ "_repr") fields with Some r -> r | None -> get k in
        match F.of_repr raw with
        | Some x -> x
        | None -> raise (Parse (Printf.sprintf "field %S: unparseable number %S" k raw))
      in
      let seq = get_int "seq" in
      let entry =
        match get "type" with
        | "init" -> Init { capacity = get_num "capacity"; policy = get "policy" }
        | "submit" ->
          (* Optional speedup: the exact [_repr] rendering wins, the
             decimal field is the hand-written-journal fallback. *)
          let speedup =
            let raw =
              match List.assoc_opt "speedup_repr" fields with
              | Some r -> Some r
              | None -> List.assoc_opt "speedup" fields
            in
            match raw with
            | None -> None
            | Some s ->
              let parse_num what r =
                match F.of_repr r with
                | Some x -> x
                | None -> raise (Parse (Printf.sprintf "speedup %s: unparseable number %S" what r))
              in
              let pairs =
                String.split_on_char ' ' s
                |> List.filter (fun p -> p <> "")
                |> List.map (fun p ->
                       match String.index_opt p ':' with
                       | None -> raise (Parse (Printf.sprintf "speedup: not a breakpoint %S" p))
                       | Some i ->
                         ( parse_num "allocation" (String.sub p 0 i),
                           parse_num "rate" (String.sub p (i + 1) (String.length p - i - 1)) ))
              in
              if pairs = [] then raise (Parse "speedup: empty breakpoint list")
              else
                Some
                  ( Array.of_list (List.map fst pairs),
                    Array.of_list (List.map snd pairs) )
          in
          let deps =
            match List.assoc_opt "deps" fields with
            | None -> []
            | Some s ->
              String.split_on_char ' ' s
              |> List.filter (fun p -> p <> "")
              |> List.map (fun p ->
                     match int_of_string_opt p with
                     | Some d -> d
                     | None -> raise (Parse (Printf.sprintf "deps: not a task id %S" p)))
          in
          Input
            (En.Submit
               {
                 id = get_int "id";
                 volume = get_num "volume";
                 weight = get_num "weight";
                 cap = get_num "cap";
                 speedup;
                 deps;
               })
        | "cancel" -> Input (En.Cancel (get_int "id"))
        | "advance" -> Input (En.Advance (get_num "dt"))
        | "advance_to" -> Input (En.Advance_to (get_num "t"))
        | "drain" -> Input En.Drain
        | "complete" -> Output { id = get_int "id"; at = get_num "t" }
        | "budget" -> Budget (get_num "capacity")
        | "policy" -> Policy (get "policy")
        | ty -> raise (Parse (Printf.sprintf "unknown line type %S" ty))
      in
      let shard =
        match List.assoc_opt "shard" fields with
        | None -> None
        | Some s -> (
          match int_of_string_opt s with
          | Some k -> Some k
          | None -> raise (Parse "field \"shard\": not an integer"))
      in
      Ok (seq, shard, entry)
    with Parse msg -> Error msg

  let of_line (line : string) : (int * entry, string) result =
    match of_line_tagged line with
    | Ok (seq, _, entry) -> Ok (seq, entry)
    | Error msg -> Error msg

  (* ---------- writer ---------- *)

  (** Append-only journal writer with its own monotonic sequence
      counter. Lines are flushed as written, so a crash loses at most
      the line being formatted. *)
  type writer = { oc : out_channel; mutable next_seq : int }

  let writer oc = { oc; next_seq = 0 }

  (** Write one entry; returns the sequence number it was stamped
      with. *)
  let record (w : writer) (e : entry) : int =
    let seq = w.next_seq in
    w.next_seq <- seq + 1;
    output_string w.oc (to_line ~seq e);
    output_char w.oc '\n';
    flush w.oc;
    seq

  (* ---------- loading & replay ---------- *)

  (** Parse a journal file. Blank lines are skipped; any malformed line
      aborts with its line number. *)
  let load (path : string) : ((int * entry) list, string) result =
    match open_in path with
    | exception Sys_error msg -> Error msg
    | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec go lineno acc =
            match input_line ic with
            | exception End_of_file -> Ok (List.rev acc)
            | "" -> go (lineno + 1) acc
            | line -> (
              match of_line line with
              | Ok e -> go (lineno + 1) (e :: acc)
              | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg))
          in
          go 1 [])

  (** Rebuild an engine from a journal: the first entry must be [init]
      (resolved to a policy via [resolve]), sequence numbers must be
      strictly increasing, input events are re-applied in order, and
      every [out] line must match the decision the replayed engine
      emits at that point — same task, identical ([F.equal]) time.
      Because the engine is deterministic, the result has the exact
      final state, metrics and objective of the recorded run. *)
  let replay ~(resolve : string -> En.policy option) (entries : (int * entry) list) :
      (En.t, string) result =
    let exception Fail of string in
    try
      let eng, rest =
        match entries with
        | (_, Init { capacity; policy }) :: rest -> (
          match resolve policy with
          | Some p -> (ref (En.create ~capacity ~policy:p ()), rest)
          | None -> raise (Fail (Printf.sprintf "unknown policy %S" policy)))
        | _ -> raise (Fail "journal must start with an init line")
      in
      let last_seq = ref (match entries with (s, _) :: _ -> s | [] -> -1) in
      (* Decisions the engine emitted that have not yet been matched
         against an [out] line. *)
      let pending : En.notification list ref = ref [] in
      List.iter
        (fun (seq, entry) ->
          if seq <= !last_seq then
            raise (Fail (Printf.sprintf "sequence numbers not increasing at seq %d" seq));
          last_seq := seq;
          match entry with
          | Init _ -> raise (Fail (Printf.sprintf "seq %d: duplicate init line" seq))
          | Budget c ->
            (* the recorded per-tick budget of a sharded run's shard:
               re-apply it so the plain engine reproduces the shard's
               completions exactly *)
            if F.sign c < 0 then raise (Fail (Printf.sprintf "seq %d: negative budget" seq))
            else ignore (En.set_capacity !eng c)
          | Policy name -> (
            (* mid-stream share-rule switch: fork the engine in place
               under the new rule (state carried over bit-faithfully) *)
            match resolve name with
            | Some p -> eng := En.fork ~policy:p (En.snapshot !eng)
            | None -> raise (Fail (Printf.sprintf "seq %d: unknown policy %S" seq name)))
          | Input e -> (
            match En.apply !eng e with
            | Ok notes -> pending := !pending @ notes
            | Error err ->
              raise (Fail (Printf.sprintf "seq %d: %s" seq (En.error_to_string err))))
          | Output { id; at } -> (
            match !pending with
            | [] ->
              raise (Fail (Printf.sprintf "seq %d: out line with no matching decision" seq))
            | note :: rest ->
              if note.En.id <> id || not (F.equal note.En.at at) then
                raise
                  (Fail
                     (Printf.sprintf
                        "seq %d: decision mismatch (journal: task %d at %s; replay: task %d at %s)"
                        seq id (F.to_string at) note.En.id (F.to_string note.En.at)));
              pending := rest))
        rest;
      Ok !eng
    with Fail msg -> Error msg
end

(** Pre-applied journals. *)
module Float = Make (Mwct_field.Field.Float_field)

module Exact = Make (Mwct_rational.Rational.Rat_field)
