(** N-way fork-join for the sharded store.

    [run pool f] executes [f 0 .. f (n-1)] — each index must touch
    disjoint mutable state — and returns only when all have finished.
    On OCaml 5 the pool spawns [min (n-1) (cores-1)] long-lived worker
    domains at [create] time (a domain per [run] call would cost more
    than a shard tick) and distributes indices round-robin, the caller
    taking part; on OCaml 4.14 (or a single-core box) it degenerates to
    a plain sequential loop. Both implementations produce identical
    results for disjoint-state bodies — the build selects
    [par.domains.ml-src] or [par.seq.ml-src] via a versioned dune rule,
    and the sequential CI leg pins the equivalence. *)

type t

val parallel : bool
(** Whether this build can actually run bodies concurrently. *)

val create : int -> t
(** [create n] — a pool for [n]-way runs ([n >= 1]). *)

val run : t -> (int -> unit) -> unit
(** Barrier semantics: every [f i] has returned when [run] does. An
    exception in any body is re-raised (first one wins) after the
    barrier; the pool remains usable. *)

val shutdown : t -> unit
(** Join the worker domains (no-op on the sequential build). Idempotent;
    [run] after [shutdown] falls back to the sequential loop. *)
