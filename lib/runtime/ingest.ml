(* Buffered line ingestion for [serve]. [input_line] reads the
   underlying fd one character at a time through the channel's small
   buffer refill path; at serve's event rates the syscall + bounds
   checks per byte show up in the profile. This reader pulls 64KiB
   chunks with [input] and scans for newlines in the chunk, so the
   per-line cost is one [Bytes.index_from] plus a substring.

   Semantics match [input_line]: the returned string excludes the
   terminating '\n'; a final line without a trailing newline is still
   returned; [next_line] yields [None] (instead of raising
   [End_of_file]) once the stream is exhausted. '\r' is not treated
   specially, same as [input_line]. *)

let chunk_size = 65536

type t = {
  ic : in_channel;
  buf : bytes;  (* current chunk *)
  mutable pos : int;  (* next unconsumed byte in [buf] *)
  mutable len : int;  (* valid bytes in [buf] *)
  mutable eof : bool;
  pending : Buffer.t;  (* prefix of a line split across chunks *)
}

let create ic =
  {
    ic;
    buf = Bytes.create chunk_size;
    pos = 0;
    len = 0;
    eof = false;
    pending = Buffer.create 256;
  }

let refill t =
  let n = input t.ic t.buf 0 chunk_size in
  t.pos <- 0;
  t.len <- n;
  if n = 0 then t.eof <- true

let rec next_line t : string option =
  if t.pos < t.len then begin
    let nl =
      try
        let i = Bytes.index_from t.buf t.pos '\n' in
        if i < t.len then Some i else None
      with Not_found -> None
    in
    match nl with
    | Some i ->
      let line =
        if Buffer.length t.pending = 0 then
          Bytes.sub_string t.buf t.pos (i - t.pos)
        else begin
          Buffer.add_subbytes t.pending t.buf t.pos (i - t.pos);
          let s = Buffer.contents t.pending in
          Buffer.clear t.pending;
          s
        end
      in
      t.pos <- i + 1;
      Some line
    | None ->
      (* rest of the chunk is an unterminated prefix *)
      Buffer.add_subbytes t.pending t.buf t.pos (t.len - t.pos);
      t.pos <- t.len;
      next_line t
  end
  else if not t.eof then begin
    refill t;
    next_line t
  end
  else if Buffer.length t.pending > 0 then begin
    let s = Buffer.contents t.pending in
    Buffer.clear t.pending;
    Some s
  end
  else None
