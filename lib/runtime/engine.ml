(** Incremental online scheduler.

    The engine holds the alive-task set and advances virtual time event
    by event: [Submit] adds a task (volume, weight, parallelism cap),
    [Cancel] withdraws one, [Advance dt] moves time forward processing
    any completions that fall inside the window, [Drain] runs the
    remaining work to completion. Shares are recomputed {e only} on
    state changes (submit / cancel / completion) through a pluggable
    policy — any non-clairvoyant share rule, e.g. WDEQ's O(n log n)
    kernel via {!Mwct_ncv.Policy} — and cached between events, so a
    long [Advance] over a stable alive set costs one pass.

    The per-step arithmetic is {e exactly} the batch simulator's
    (absolute completion estimates [eta = now + remaining/share],
    first-min selection, [remaining -= share·dt], [leq_approx]
    completion detection), which is what lets
    {!Mwct_ncv.Simulator.run} be a thin wrapper over this engine with
    bit-identical output. All state transitions are deterministic
    functions of the event sequence — the replay invariant
    {!Journal.replay} relies on (no wall clock, no hash-order
    iteration: views are built in increasing task-id order from a
    sorted alive list). *)

module Make (F : Mwct_field.Field.S) = struct
  module M = Metrics.Make (F)

  (** What the policy observes about one alive task — never the
      remaining volume (non-clairvoyance). *)
  type view = { id : int; weight : F.t; cap : F.t }

  (** A share rule: non-negative shares, one per view, within caps,
      summing to at most [capacity]. *)
  type policy = capacity:F.t -> view list -> (int * F.t) list

  (** Input events, the journal's vocabulary. *)
  type event =
    | Submit of { id : int; volume : F.t; weight : F.t; cap : F.t }
    | Cancel of int
    | Advance of F.t  (** relative: advance virtual time by [dt >= 0] *)
    | Drain  (** run the alive set to completion *)

  type error =
    | Unknown_task of int  (** cancel of an id never submitted or already closed *)
    | Duplicate_task of int  (** submit of an id that is alive or closed *)
    | Invalid of string  (** bad payload (negative dt, non-positive volume), deadlock, no progress *)

  let error_to_string = function
    | Unknown_task id -> Printf.sprintf "unknown task %d" id
    | Duplicate_task id -> Printf.sprintf "duplicate task %d" id
    | Invalid msg -> msg

  (** Why a task left the alive set. *)
  type outcome = Completed | Cancelled

  (** Closed-task record: everything the engine knew about the task,
      with its piecewise-constant rate history (chronological). *)
  type closed = {
    volume : F.t;
    weight : F.t;
    cap : F.t;
    submitted_at : F.t;
    closed_at : F.t;
    outcome : outcome;
    segments : (F.t * F.t * F.t) list;  (** [(from, to, share)], chronological *)
    share_changes : int;  (** times this task's allocation changed while alive *)
  }

  type task_state = {
    ts_volume : F.t;
    ts_weight : F.t;
    ts_cap : F.t;
    ts_submitted_at : F.t;
    mutable ts_remaining : F.t;
    mutable ts_share : F.t;
    mutable ts_segments : (F.t * F.t * F.t) list;  (* reverse chronological *)
    mutable ts_share_changes : int;
  }

  (** An emitted decision: the engine completed task [id] at virtual
      time [at]. Returned (in order) by the event-applying calls so
      front-ends can stream them out. *)
  type notification = { id : int; at : F.t }

  type t = {
    capacity : F.t;
    policy : policy;
    record_segments : bool;
    mutable now : F.t;
    alive : (int, task_state) Hashtbl.t;
    mutable alive_entries : (int * task_state) list;  (* strictly increasing ids *)
    closed_tbl : (int, closed) Hashtbl.t;
    (* Share cache in policy output order, with the task states resolved
       once per reshare so the hot advance loop never touches the
       hashtable. Only consulted when not dirty — every entry is then
       alive and ids are distinct. *)
    mutable shares : (int * task_state * F.t) list;
    mutable dirty : bool;
    metrics : M.t;
  }

  (** [create ~capacity ~policy ()]. [record_segments] (default [true])
      keeps per-task rate histories; switch it off for long-lived
      high-throughput processes where the history is unbounded. *)
  let create ?(record_segments = true) ~capacity ~policy () =
    if F.sign capacity <= 0 then invalid_arg "Engine.create: capacity must be positive";
    {
      capacity;
      policy;
      record_segments;
      now = F.zero;
      alive = Hashtbl.create 64;
      alive_entries = [];
      closed_tbl = Hashtbl.create 64;
      shares = [];
      dirty = false;
      metrics = M.create ();
    }

  (* ---------- accessors ---------- *)

  let now t = t.now
  let capacity t = t.capacity
  let alive_count t = Hashtbl.length t.alive
  let completed_count t = t.metrics.M.completed
  let cancelled_count t = t.metrics.M.cancelled
  let alive_ids t = List.map fst t.alive_entries
  let metrics t = t.metrics
  let weighted_completion t = t.metrics.M.weighted_completion
  let weighted_flow t = t.metrics.M.weighted_flow

  let remaining t id =
    match Hashtbl.find_opt t.alive id with Some ts -> Some ts.ts_remaining | None -> None

  let find_closed t id = Hashtbl.find_opt t.closed_tbl id

  (** Closed tasks sorted by id. *)
  let closed t =
    Hashtbl.fold (fun id c acc -> (id, c) :: acc) t.closed_tbl []
    |> List.sort (fun (a, _) (b, _) -> Stdlib.compare a b)

  (** Completion times sorted by id (completed tasks only). *)
  let completions t =
    List.filter_map
      (fun (id, c) -> if c.outcome = Completed then Some (id, c.closed_at) else None)
      (closed t)

  let metrics_json ?events_per_sec t =
    M.to_json ?events_per_sec ~alive:(alive_count t) ~now:t.now t.metrics

  (** Deterministic textual fingerprint of the whole state (exact
      [repr] renderings): equal strings iff equal states. Shares are
      excluded — they are a cache, recomputed lazily. *)
  let dump t =
    let b = Buffer.create 256 in
    Buffer.add_string b (Printf.sprintf "now=%s capacity=%s\n" (F.repr t.now) (F.repr t.capacity));
    List.iter
      (fun (id, ts) ->
        Buffer.add_string b
          (Printf.sprintf "alive id=%d rem=%s w=%s cap=%s submitted=%s changes=%d\n" id
             (F.repr ts.ts_remaining) (F.repr ts.ts_weight) (F.repr ts.ts_cap)
             (F.repr ts.ts_submitted_at) ts.ts_share_changes))
      t.alive_entries;
    List.iter
      (fun (id, c) ->
        Buffer.add_string b
          (Printf.sprintf "closed id=%d at=%s outcome=%s segments=%d changes=%d\n" id
             (F.repr c.closed_at)
             (match c.outcome with Completed -> "completed" | Cancelled -> "cancelled")
             (List.length c.segments) c.share_changes))
      (closed t);
    let m = t.metrics in
    Buffer.add_string b
      (Printf.sprintf
         "metrics events=%d submitted=%d completed=%d cancelled=%d reshares=%d alloc_changes=%d \
          wc=%s wflow=%s\n"
         m.M.events m.M.submitted m.M.completed m.M.cancelled m.M.reshares m.M.alloc_changes
         (F.repr m.M.weighted_completion) (F.repr m.M.weighted_flow));
    Buffer.contents b

  (* ---------- share cache ---------- *)

  (* Views in increasing id order — the same order the batch simulator
     fed its policy, and deterministic across runs. *)
  let recompute_if_dirty t =
    if t.dirty then begin
      let views =
        List.map
          (fun (id, ts) -> { id; weight = ts.ts_weight; cap = ts.ts_cap })
          t.alive_entries
      in
      let raw = t.policy ~capacity:t.capacity views in
      let shares =
        List.filter_map
          (fun (id, s) ->
            match Hashtbl.find_opt t.alive id with
            | None -> None (* policy named a dead task; drop it *)
            | Some ts ->
              if not (F.equal ts.ts_share s) then begin
                ts.ts_share <- s;
                ts.ts_share_changes <- ts.ts_share_changes + 1;
                t.metrics.M.alloc_changes <- t.metrics.M.alloc_changes + 1
              end;
              Some (id, ts, s))
          raw
      in
      t.shares <- shares;
      t.metrics.M.reshares <- t.metrics.M.reshares + 1;
      t.dirty <- false
    end

  (* ---------- closing tasks ---------- *)

  let remove_alive t id =
    Hashtbl.remove t.alive id;
    t.alive_entries <- List.filter (fun (i, _) -> i <> id) t.alive_entries

  let close t id (ts : task_state) outcome =
    remove_alive t id;
    Hashtbl.replace t.closed_tbl id
      {
        volume = ts.ts_volume;
        weight = ts.ts_weight;
        cap = ts.ts_cap;
        submitted_at = ts.ts_submitted_at;
        closed_at = t.now;
        outcome;
        segments = List.rev ts.ts_segments;
        share_changes = ts.ts_share_changes;
      };
    t.dirty <- true;
    match outcome with
    | Completed ->
      t.metrics.M.completed <- t.metrics.M.completed + 1;
      t.metrics.M.weighted_completion <-
        F.add t.metrics.M.weighted_completion (F.mul ts.ts_weight t.now);
      t.metrics.M.weighted_flow <-
        F.add t.metrics.M.weighted_flow (F.mul ts.ts_weight (F.sub t.now ts.ts_submitted_at))
    | Cancelled -> t.metrics.M.cancelled <- t.metrics.M.cancelled + 1

  (* ---------- the time-stepping core ---------- *)

  (* Earliest absolute completion estimate over the cached shares —
     first-min over the policy's output order, exactly like the batch
     loop (the min value is order-independent; fold order only matters
     for which task the estimate belongs to, which we never use). *)
  let next_completion t =
    List.fold_left
      (fun acc (_, ts, s) ->
        if F.sign s > 0 then begin
          let eta = F.add t.now (F.div ts.ts_remaining s) in
          match acc with Some best when F.compare best eta <= 0 -> acc | _ -> Some eta
        end
        else acc)
      None t.shares

  (* Advance every positively-shared task to absolute time [t_next],
     recording segments; then sweep the share list for completions
     ([leq_approx], matching the batch simulator's tolerance). Returns
     the completions in share-list order. *)
  let advance_and_sweep t t_next =
    let dt = F.sub t_next t.now in
    if F.sign dt > 0 then
      List.iter
        (fun (_, ts, s) ->
          if F.sign s > 0 then begin
            if t.record_segments then ts.ts_segments <- (t.now, t_next, s) :: ts.ts_segments;
            ts.ts_remaining <- F.sub ts.ts_remaining (F.mul s dt)
          end)
        t.shares;
    t.now <- t_next;
    let completed = ref [] in
    List.iter
      (fun (id, ts, s) ->
        if F.sign s > 0 && F.leq_approx ts.ts_remaining F.zero then begin
          close t id ts Completed;
          completed := { id; at = t.now } :: !completed
        end)
      t.shares;
    List.rev !completed

  (* Floating-point residue can leave [remaining] a few ulps above zero
     after advancing to a task's own estimate; the estimate then shrinks
     geometrically, so a handful of extra iterations settles it. The
     budget bounds pathological non-convergence. *)
  let no_progress_budget = 64

  (** Advance to absolute time [target], processing every completion on
      the way. The engine lands exactly at [target] (absolute times are
      assigned, not accumulated, so [advance_to] after [advance_to]
      reproduces the batch simulator's arithmetic bit for bit). *)
  let advance_to t target : (notification list, error) result =
    if F.compare target t.now < 0 then
      Error (Invalid (Printf.sprintf "advance into the past (target %s < now %s)" (F.to_string target) (F.to_string t.now)))
    else begin
      let notes = ref [] in
      let stall = ref 0 in
      let err = ref None in
      let continue = ref true in
      while !continue && !err = None do
        recompute_if_dirty t;
        match next_completion t with
        | Some eta when F.compare eta target <= 0 ->
          let completed = advance_and_sweep t eta in
          notes := List.rev_append completed !notes;
          if completed = [] then begin
            incr stall;
            if !stall > no_progress_budget then
              err := Some (Invalid "no progress: completion estimate does not converge")
          end
          else stall := 0
        | _ ->
          (* No completion inside the window: land on the target. *)
          let completed = advance_and_sweep t target in
          notes := List.rev_append completed !notes;
          continue := false
      done;
      match !err with Some e -> Error e | None -> Ok (List.rev !notes)
    end

  (** Run the alive set to completion. Fails with [Invalid "deadlock"]
      when alive tasks remain but none has a positive share (a policy
      that starves everything). *)
  let drain t : (notification list, error) result =
    let notes = ref [] in
    let stall = ref 0 in
    let err = ref None in
    while Hashtbl.length t.alive > 0 && !err = None do
      recompute_if_dirty t;
      match next_completion t with
      | None -> err := Some (Invalid "deadlock: alive tasks but no positive share")
      | Some eta ->
        let completed = advance_and_sweep t eta in
        notes := List.rev_append completed !notes;
        if completed = [] then begin
          incr stall;
          if !stall > no_progress_budget then
            err := Some (Invalid "no progress: completion estimate does not converge")
        end
        else stall := 0
    done;
    match !err with Some e -> Error e | None -> Ok (List.rev !notes)

  (* ---------- input events ---------- *)

  let insert_sorted id ts entries =
    let rec go = function
      | [] -> [ (id, ts) ]
      | ((x, _) :: rest as l) -> if id < x then (id, ts) :: l else List.hd l :: go rest
    in
    go entries

  let submit t ~id ~volume ~weight ~cap : (unit, error) result =
    if Hashtbl.mem t.alive id || Hashtbl.mem t.closed_tbl id then Error (Duplicate_task id)
    else if F.sign volume <= 0 then Error (Invalid (Printf.sprintf "task %d: volume must be positive" id))
    else if F.sign weight <= 0 then Error (Invalid (Printf.sprintf "task %d: weight must be positive" id))
    else if F.sign cap <= 0 then Error (Invalid (Printf.sprintf "task %d: cap must be positive" id))
    else begin
      let ts =
        {
          ts_volume = volume;
          ts_weight = weight;
          ts_cap = cap;
          ts_submitted_at = t.now;
          ts_remaining = volume;
          ts_share = F.zero;
          ts_segments = [];
          ts_share_changes = 0;
        }
      in
      Hashtbl.replace t.alive id ts;
      t.alive_entries <- insert_sorted id ts t.alive_entries;
      t.dirty <- true;
      t.metrics.M.submitted <- t.metrics.M.submitted + 1;
      Ok ()
    end

  let cancel t id : (unit, error) result =
    match Hashtbl.find_opt t.alive id with
    | None -> Error (Unknown_task id)
    | Some ts ->
      close t id ts Cancelled;
      Ok ()

  (** Apply one input event; the returned notifications are the
      completions it triggered, in chronological order. Every success
      bumps [metrics.events]; failures leave the state untouched. *)
  let apply t (e : event) : (notification list, error) result =
    let r =
      match e with
      | Submit { id; volume; weight; cap } ->
        Result.map (fun () -> []) (submit t ~id ~volume ~weight ~cap)
      | Cancel id -> Result.map (fun () -> []) (cancel t id)
      | Advance dt ->
        if F.sign dt < 0 then Error (Invalid "advance: negative dt")
        else advance_to t (F.add t.now dt)
      | Drain -> drain t
    in
    (match r with Ok _ -> t.metrics.M.events <- t.metrics.M.events + 1 | Error _ -> ());
    r
end

(** Pre-applied engines, mirroring the rest of the library. *)
module Float = Make (Mwct_field.Field.Float_field)

module Exact = Make (Mwct_rational.Rational.Rat_field)
