(** Incremental online scheduler.

    The engine holds the alive-task set and advances virtual time event
    by event: [Submit] adds a task (volume, weight, parallelism cap),
    [Cancel] withdraws one, [Advance dt] moves time forward processing
    any completions that fall inside the window, [Drain] runs the
    remaining work to completion. Shares are recomputed {e only} on
    state changes (submit / cancel / completion) through a pluggable
    policy — any non-clairvoyant share rule, e.g. WDEQ's O(n log n)
    kernel via {!Mwct_ncv.Policy} — and cached between events, so a
    long [Advance] over a stable alive set costs one pass.

    The per-step arithmetic is {e exactly} the batch simulator's
    (absolute completion estimates [eta = now + remaining/share],
    first-min selection, [remaining -= share·dt], [leq_approx]
    completion detection), which is what lets
    {!Mwct_ncv.Simulator.run} be a thin wrapper over this engine with
    bit-identical output. All state transitions are deterministic
    functions of the event sequence — the replay invariant
    {!Journal.replay} relies on (no wall clock, no hash-order
    iteration: views are built in increasing task-id order from a
    sorted alive list).

    Data plane (DESIGN.md §12): task state lives in parallel struct-of-
    arrays columns indexed by a dense slot number with free-list reuse.
    The alive set is the [by_id] slot array (ascending external id, the
    view-building order) and the share cache is the [order] slot array
    (policy output order, the advance/sweep order). On the float field
    the advance loop dispatches to a monomorphic kernel over the flat
    float columns — zero minor-heap allocation per steady-state
    [Advance] — selected through {!Mwct_field.Field.witness}. *)

module Make (F : Mwct_field.Field.S) = struct
  module M = Metrics.Make (F)

  (** What the policy observes about one alive task — never the
      remaining volume (non-clairvoyance). *)
  type view = { id : int; weight : F.t; cap : F.t }

  (** A share rule: non-negative shares, one per view, within caps,
      summing to at most [capacity]. *)
  type policy = capacity:F.t -> view list -> (int * F.t) list

  (** Incremental (kinetic) share rule: a stateful peer of {!policy}
      that tracks the alive set through [k_add]/[k_remove] callbacks
      keyed by the engine's slot numbers, and on each reshare fills the
      slot-indexed [share] column and the [order] array (its output
      order, the analogue of the {!policy} result-list order) for the
      [n] alive slots listed in [by_id] (ascending external id). The
      contract is bit-identity with the wrapped list policy: same
      shares, same output order. *)
  type kinetic = {
    k_add : slot:int -> id:int -> weight:F.t -> cap:F.t -> unit;
    k_remove : slot:int -> unit;
    k_shares : capacity:F.t -> n:int -> by_id:int array -> share:F.t array -> order:int array -> unit;
  }

  (** Input events, the journal's vocabulary. [speedup], when present,
      is the task's concave piecewise-linear rate law as parallel
      breakpoint arrays [(bx, by)] (allocations / rates, strictly
      increasing [bx], non-decreasing concave [by] through the origin);
      [None] is the linear law (rate = share), the paper's model.
      Breakpoints may extend beyond [cap]: shares never exceed the cap,
      so the tail is simply unused.

      [deps] lists precedence parents by task id. Every parent must
      already be known to the engine — alive, dormant, or completed
      (edges always point at earlier submissions, so the dependency
      graph is acyclic by construction). A submission with an unmet
      parent enters the {e dormant} state: it holds no share and does
      not advance; it becomes alive exactly when its last parent
      completes, with its release time re-stamped at that activation.
      A parent that was cancelled (or cancelling a parent later)
      cascades: the dependent is cancelled too. [[]] is the
      independent-task submission, byte-identical to the pre-DAG
      engine. *)
  type event =
    | Submit of {
        id : int;
        volume : F.t;
        weight : F.t;
        cap : F.t;
        speedup : (F.t array * F.t array) option;
        deps : int list;
      }
    | Cancel of int
    | Advance of F.t  (** relative: advance virtual time by [dt >= 0] *)
    | Advance_to of F.t
        (** absolute: advance to a target time [>= now]. The engine
            lands exactly on the target (assigned, not accumulated) —
            the sharded store drives every shard with the same absolute
            targets so their clocks stay bit-identical. *)
    | Drain  (** run the alive set to completion *)

  type error =
    | Unknown_task of int  (** cancel of an id never submitted or already closed *)
    | Duplicate_task of int  (** submit of an id that is alive or closed *)
    | Invalid of string  (** bad payload (negative dt, non-positive volume), deadlock, no progress *)

  let error_to_string = function
    | Unknown_task id -> Printf.sprintf "unknown task %d" id
    | Duplicate_task id -> Printf.sprintf "duplicate task %d" id
    | Invalid msg -> msg

  (** Why a task left the alive set. *)
  type outcome = Completed | Cancelled

  (** Closed-task record: everything the engine knew about the task,
      with its piecewise-constant rate history (chronological). *)
  type closed = {
    volume : F.t;
    weight : F.t;
    cap : F.t;
    submitted_at : F.t;
    closed_at : F.t;
    outcome : outcome;
    segments : (F.t * F.t * F.t) list;  (** [(from, to, share)], chronological *)
    share_changes : int;  (** times this task's allocation changed while alive *)
  }

  (** An emitted decision: the engine completed task [id] at virtual
      time [at]. Returned (in order) by the event-applying calls so
      front-ends can stream them out. *)
  type notification = { id : int; at : F.t }

  (* Struct-of-arrays task store. A task occupies one slot across all
     [c_*] columns; slots are recycled through the [free] stack, so the
     columns stay dense and bounded by the alive high-water mark. [now]
     lives in a one-element column of its own: on the float field that
     makes every read/write in the monomorphic kernel an unboxed array
     access instead of a boxed record field. *)
  type t = {
    mutable capacity : F.t;  (* mutable: the sharded store re-budgets it each tick *)
    policy : policy;
    kinetic : kinetic option;
    record_segments : bool;
    now_cell : F.t array;  (* 1 element: current virtual time *)
    (* slot-indexed columns (parallel arrays, grown together) *)
    mutable c_volume : F.t array;
    mutable c_weight : F.t array;
    mutable c_cap : F.t array;
    mutable c_submitted : F.t array;
    mutable c_remaining : F.t array;
    mutable c_share : F.t array;  (* persists across reshares, like the old ts_share *)
    mutable c_new_share : F.t array;  (* reshare staging, compared against c_share *)
    mutable c_changes : int array;
    mutable c_segments : (F.t * F.t * F.t) list array;  (* reverse chronological *)
    mutable c_curve : (F.t array * F.t array) option array;  (* speedup breakpoints; None = linear *)
    mutable ncurved : int;  (* open tasks with a curve; 0 keeps the float fast path *)
    (* precedence lifecycle: [c_waiting] is the number of not-yet-
       completed parents — 0 means alive, > 0 dormant (holds a slot and
       an id but is absent from [by_id]/[order] and the kinetic state).
       [c_dependents] lists the ids (not slots: slots are recycled, ids
       never are) of dormant tasks waiting on this slot's completion;
       [c_deps] keeps the submission's parent list for dumps. *)
    mutable c_waiting : int array;
    mutable c_dependents : int list array;
    mutable c_deps : int list array;
    mutable ndormant : int;
    mutable cascade : int list;  (* ids closed by the current cancel, cascade order *)
    mutable c_id : int array;  (* external id of the slot's task *)
    mutable used : int;  (* slots ever handed out (high-water mark) *)
    mutable free : int array;  (* recycled-slot stack *)
    mutable nfree : int;
    (* alive index: slots sorted by ascending external id *)
    mutable by_id : int array;
    mutable nalive : int;
    (* share cache: slots in policy output order (only these advance) *)
    mutable order : int array;
    mutable norder : int;
    mutable scratch_done : int array;  (* completion-sweep staging *)
    fscratch : F.t array;  (* float-kernel registers: [0] target, [1] best eta *)
    iscratch : int array;  (* float-kernel registers: [0] seen-flag, [1] done-count *)
    slot_of_id : (int, int) Hashtbl.t;
    closed_tbl : (int, closed) Hashtbl.t;
    mutable dirty : bool;
    metrics : M.t;
  }

  let initial_slots = 64

  (** [create ~capacity ~policy ()]. [record_segments] (default [true])
      keeps per-task rate histories; switch it off for long-lived
      high-throughput processes where the history is unbounded (on the
      float field this also enables the allocation-free advance
      kernel). [kinetic], when given, replaces the list-policy call on
      each reshare with the incremental rule — it must be bit-identical
      to [policy], which remains the replay/documentation source of
      truth. *)
  let create ?(record_segments = true) ?kinetic ~capacity ~policy () =
    if F.sign capacity <= 0 then invalid_arg "Engine.create: capacity must be positive";
    let n = initial_slots in
    {
      capacity;
      policy;
      kinetic;
      record_segments;
      now_cell = Array.make 1 F.zero;
      c_volume = Array.make n F.zero;
      c_weight = Array.make n F.zero;
      c_cap = Array.make n F.zero;
      c_submitted = Array.make n F.zero;
      c_remaining = Array.make n F.zero;
      c_share = Array.make n F.zero;
      c_new_share = Array.make n F.zero;
      c_changes = Array.make n 0;
      c_segments = Array.make n [];
      c_curve = Array.make n None;
      ncurved = 0;
      c_waiting = Array.make n 0;
      c_dependents = Array.make n [];
      c_deps = Array.make n [];
      ndormant = 0;
      cascade = [];
      c_id = Array.make n 0;
      used = 0;
      free = Array.make n 0;
      nfree = 0;
      by_id = Array.make n 0;
      nalive = 0;
      order = Array.make n 0;
      norder = 0;
      scratch_done = Array.make n 0;
      fscratch = Array.make 2 F.zero;
      iscratch = Array.make 2 0;
      slot_of_id = Hashtbl.create 64;
      closed_tbl = Hashtbl.create 64;
      dirty = false;
      metrics = M.create ();
    }

  (* ---------- store plumbing ---------- *)

  let grow_columns t =
    let old = Array.length t.c_volume in
    let n = 2 * old in
    let g z a = let b = Array.make n z in Array.blit a 0 b 0 old; b in
    t.c_volume <- g F.zero t.c_volume;
    t.c_weight <- g F.zero t.c_weight;
    t.c_cap <- g F.zero t.c_cap;
    t.c_submitted <- g F.zero t.c_submitted;
    t.c_remaining <- g F.zero t.c_remaining;
    t.c_share <- g F.zero t.c_share;
    t.c_new_share <- g F.zero t.c_new_share;
    t.c_changes <- g 0 t.c_changes;
    t.c_segments <- g [] t.c_segments;
    t.c_curve <- g None t.c_curve;
    t.c_waiting <- g 0 t.c_waiting;
    t.c_dependents <- g [] t.c_dependents;
    t.c_deps <- g [] t.c_deps;
    t.c_id <- g 0 t.c_id;
    t.free <- g 0 t.free;
    t.by_id <- g 0 t.by_id;
    if Array.length t.order < n then begin
      t.order <- g 0 t.order;
      t.scratch_done <- g 0 t.scratch_done
    end

  let alloc_slot t =
    if t.nfree > 0 then begin
      t.nfree <- t.nfree - 1;
      t.free.(t.nfree)
    end
    else begin
      if t.used = Array.length t.c_volume then grow_columns t;
      let s = t.used in
      t.used <- t.used + 1;
      s
    end

  (* A pathological list policy may emit more entries than there are
     alive tasks (duplicate ids); the order/scratch arrays track that
     length, not the slot count. *)
  let ensure_order_capacity t n =
    if Array.length t.order < n then begin
      let m = Stdlib.max n (2 * Array.length t.order) in
      t.order <- Array.make m 0;
      t.scratch_done <- Array.make m 0
    end

  (* by_id is sorted by external id (ids are unique while alive), so
     membership maintenance is binary search + blit. *)
  let insert_by_id t slot id =
    let lo = ref 0 and hi = ref t.nalive in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.c_id.(t.by_id.(mid)) < id then lo := mid + 1 else hi := mid
    done;
    let pos = !lo in
    Array.blit t.by_id pos t.by_id (pos + 1) (t.nalive - pos);
    t.by_id.(pos) <- slot;
    t.nalive <- t.nalive + 1

  let remove_by_id t id =
    let lo = ref 0 and hi = ref (t.nalive - 1) in
    let pos = ref (-1) in
    while !pos < 0 && !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let v = t.c_id.(t.by_id.(mid)) in
      if v = id then pos := mid else if v < id then lo := mid + 1 else hi := mid - 1
    done;
    let pos = !pos in
    Array.blit t.by_id (pos + 1) t.by_id pos (t.nalive - 1 - pos);
    t.nalive <- t.nalive - 1

  (* ---------- speedup curves ---------- *)

  (* lib/runtime deliberately does not depend on mwct_core (the engine
     is the lower layer), so the concave curve evaluator is duplicated
     here. [Mwct_core.Instance.Make.eval_curve] is the reference copy;
     the cross-layer test pins the two to identical results. *)
  let eval_curve (bx : F.t array) (by : F.t array) (a : F.t) : F.t =
    let last = Array.length bx - 1 in
    if F.sign a <= 0 then F.zero
    else if F.compare a bx.(last) >= 0 then by.(last)
    else begin
      let j = ref 0 in
      while F.compare a bx.(!j) > 0 do
        incr j
      done;
      let j = !j in
      let px = if j = 0 then F.zero else bx.(j - 1) in
      let py = if j = 0 then F.zero else by.(j - 1) in
      if F.compare a px = 0 then py
      else F.add py (F.div (F.mul (F.sub a px) (F.sub by.(j) py)) (F.sub bx.(j) px))
    end

  (* Progress rate of the task in [slot] at share [s]: the share itself
     under the linear law — the match keeps the linear arithmetic
     byte-identical to the pre-curve engine. *)
  let slot_rate t slot s =
    match t.c_curve.(slot) with None -> s | Some (bx, by) -> eval_curve bx by s

  (* Structural validation of a submitted curve, mirroring
     [Mwct_core.Instance.Make.validate] (same error strings, prefixed
     with the task id). *)
  let check_curve id (bx : F.t array) (by : F.t array) : string option =
    let n = Array.length bx in
    let fail msg = Some (Printf.sprintf "task %d: %s" id msg) in
    if n = 0 || Array.length by <> n then fail "speedup breakpoint arrays must match and be non-empty"
    else begin
      let bad = ref None in
      let px = ref F.zero and py = ref F.zero in
      let pslope = ref None in
      (try
         for j = 0 to n - 1 do
           if F.sign bx.(j) <= 0 || F.sign by.(j) <= 0 then begin
             bad := fail "speedup breakpoints must be positive";
             raise Exit
           end;
           if F.compare !px bx.(j) >= 0 then begin
             bad := fail "speedup allocations must be strictly increasing";
             raise Exit
           end;
           if F.compare !py by.(j) > 0 then begin
             bad := fail "speedup rate must be non-decreasing";
             raise Exit
           end;
           let dx = F.sub bx.(j) !px and dy = F.sub by.(j) !py in
           (match !pslope with
           | None ->
             if F.compare by.(j) bx.(j) > 0 then begin
               bad := fail "speedup rate cannot exceed allocation";
               raise Exit
             end
           | Some (pdx, pdy) ->
             if F.compare (F.mul dy pdx) (F.mul pdy dx) > 0 then begin
               bad := fail "speedup must be concave";
               raise Exit
             end);
           pslope := Some (dx, dy);
           px := bx.(j);
           py := by.(j)
         done
       with Exit -> ());
      !bad
    end

  (* ---------- accessors ---------- *)

  let now t = t.now_cell.(0)
  let capacity t = t.capacity

  (** [set_capacity t c] — re-budget the engine to capacity [c >= 0]
      (zero is legal here, unlike [create]: a sharded store may starve
      a shard for a tick). Returns whether the capacity actually
      changed; only a change invalidates the share cache, so re-setting
      the same budget keeps steady-state [Advance] allocation-free. *)
  let set_capacity t c : bool =
    if F.sign c < 0 then invalid_arg "Engine.set_capacity: capacity must be non-negative";
    if F.equal t.capacity c then false
    else begin
      t.capacity <- c;
      t.dirty <- true;
      true
    end

  let alive_count t = t.nalive
  let dormant_count t = t.ndormant
  let completed_count t = t.metrics.M.completed
  let cancelled_count t = t.metrics.M.cancelled

  let alive_ids t =
    let rec go i acc = if i < 0 then acc else go (i - 1) (t.c_id.(t.by_id.(i)) :: acc) in
    go (t.nalive - 1) []

  (* Dormant slots in ascending id order (the hashtable's iteration
     order is not deterministic, so collect and sort). *)
  let dormant_slots t =
    if t.ndormant = 0 then []
    else
      Hashtbl.fold (fun _ s acc -> if t.c_waiting.(s) > 0 then s :: acc else acc) t.slot_of_id []
      |> List.sort (fun a b -> Stdlib.compare t.c_id.(a) t.c_id.(b))

  let dormant_ids t = List.map (fun s -> t.c_id.(s)) (dormant_slots t)

  (** [Some n] when [id] is dormant with [n] unmet parents. *)
  let waiting_on t id =
    match Hashtbl.find_opt t.slot_of_id id with
    | Some s when t.c_waiting.(s) > 0 -> Some t.c_waiting.(s)
    | _ -> None

  let metrics t = t.metrics
  let weighted_completion t = t.metrics.M.weighted_completion
  let weighted_flow t = t.metrics.M.weighted_flow

  let remaining t id =
    match Hashtbl.find_opt t.slot_of_id id with
    | Some s -> Some t.c_remaining.(s)
    | None -> None

  let find_closed t id = Hashtbl.find_opt t.closed_tbl id

  (** Closed tasks sorted by id. *)
  let closed t =
    Hashtbl.fold (fun id c acc -> (id, c) :: acc) t.closed_tbl []
    |> List.sort (fun (a, _) (b, _) -> Stdlib.compare a b)

  (** Completion times sorted by id (completed tasks only). *)
  let completions t =
    List.filter_map
      (fun (id, c) -> if c.outcome = Completed then Some (id, c.closed_at) else None)
      (closed t)

  let metrics_json ?events_per_sec t =
    M.to_json ?events_per_sec ~alive:(alive_count t) ~now:(now t) t.metrics

  (** Deterministic textual fingerprint of the whole state (exact
      [repr] renderings): equal strings iff equal states. Shares are
      excluded — they are a cache, recomputed lazily. *)
  let dump t =
    let b = Buffer.create 256 in
    Buffer.add_string b (Printf.sprintf "now=%s capacity=%s\n" (F.repr (now t)) (F.repr t.capacity));
    for i = 0 to t.nalive - 1 do
      let s = t.by_id.(i) in
      (* curved tasks carry their breakpoints; linear lines are
         byte-identical to the pre-curve engine *)
      let curve =
        match t.c_curve.(s) with
        | None -> ""
        | Some (bx, by) ->
          " s="
          ^ String.concat ","
              (List.map2
                 (fun x y -> F.repr x ^ ":" ^ F.repr y)
                 (Array.to_list bx) (Array.to_list by))
      in
      Buffer.add_string b
        (Printf.sprintf "alive id=%d rem=%s w=%s cap=%s submitted=%s changes=%d%s\n" t.c_id.(s)
           (F.repr t.c_remaining.(s)) (F.repr t.c_weight.(s)) (F.repr t.c_cap.(s))
           (F.repr t.c_submitted.(s)) t.c_changes.(s) curve)
    done;
    (* dormant tasks fingerprint their unmet-parent count and edge
       list; the block is absent entirely on dep-free runs, keeping
       those dumps byte-identical to the pre-DAG engine *)
    List.iter
      (fun s ->
        Buffer.add_string b
          (Printf.sprintf "dormant id=%d rem=%s w=%s cap=%s submitted=%s waiting=%d deps=%s\n"
             t.c_id.(s) (F.repr t.c_remaining.(s)) (F.repr t.c_weight.(s)) (F.repr t.c_cap.(s))
             (F.repr t.c_submitted.(s)) t.c_waiting.(s)
             (String.concat "," (List.map string_of_int t.c_deps.(s)))))
      (dormant_slots t);
    List.iter
      (fun (id, c) ->
        Buffer.add_string b
          (Printf.sprintf "closed id=%d at=%s outcome=%s segments=%d changes=%d\n" id
             (F.repr c.closed_at)
             (match c.outcome with Completed -> "completed" | Cancelled -> "cancelled")
             (List.length c.segments) c.share_changes))
      (closed t);
    let m = t.metrics in
    Buffer.add_string b
      (Printf.sprintf
         "metrics events=%d submitted=%d completed=%d cancelled=%d reshares=%d alloc_changes=%d \
          wc=%s wflow=%s\n"
         m.M.events m.M.submitted m.M.completed m.M.cancelled m.M.reshares m.M.alloc_changes
         (F.repr m.M.weighted_completion) (F.repr m.M.weighted_flow));
    Buffer.contents b

  (* ---------- snapshot / fork (DESIGN.md §16) ---------- *)

  (* Deep structural copy of the whole store. Every mutable array is
     duplicated; element values (field scalars, immutable segment and
     dependency lists, breakpoint array pairs) are shared — the engine
     never mutates them in place, it only replaces whole cells. Both
     hashtables are copied, and the metrics record is deep-copied
     including the latency histogram ([Metrics.copy] shares [lat] for
     its memo; here observations on a fork must not bleed into the
     parent). The share cache ([c_share], [order], [norder]) and the
     [dirty] flag are carried over exactly as they stand: forcing a
     reshare on the copy would bump [metrics.reshares] and diverge its
     dump fingerprint from the straight-line engine's. *)
  let copy_state (t : t) ~policy ~kinetic : t =
    let m = t.metrics in
    let metrics = { m with M.lat = Array.copy m.M.lat; snap_state = None; snap = "" } in
    {
      capacity = t.capacity;
      policy;
      kinetic;
      record_segments = t.record_segments;
      now_cell = Array.copy t.now_cell;
      c_volume = Array.copy t.c_volume;
      c_weight = Array.copy t.c_weight;
      c_cap = Array.copy t.c_cap;
      c_submitted = Array.copy t.c_submitted;
      c_remaining = Array.copy t.c_remaining;
      c_share = Array.copy t.c_share;
      c_new_share = Array.copy t.c_new_share;
      c_changes = Array.copy t.c_changes;
      c_segments = Array.copy t.c_segments;
      c_curve = Array.copy t.c_curve;
      ncurved = t.ncurved;
      c_waiting = Array.copy t.c_waiting;
      c_dependents = Array.copy t.c_dependents;
      c_deps = Array.copy t.c_deps;
      ndormant = t.ndormant;
      cascade = t.cascade;
      c_id = Array.copy t.c_id;
      used = t.used;
      free = Array.copy t.free;
      nfree = t.nfree;
      by_id = Array.copy t.by_id;
      nalive = t.nalive;
      order = Array.copy t.order;
      norder = t.norder;
      scratch_done = Array.copy t.scratch_done;
      fscratch = Array.copy t.fscratch;
      iscratch = Array.copy t.iscratch;
      slot_of_id = Hashtbl.copy t.slot_of_id;
      closed_tbl = Hashtbl.copy t.closed_tbl;
      dirty = t.dirty;
      metrics;
    }

  (** A frozen, self-contained copy of an engine's entire state. Taking
      one never disturbs the parent; [fork] copies {e again}, so one
      snapshot can seed any number of branches. *)
  type snapshot = { frozen : t }

  let snapshot (t : t) : snapshot = { frozen = copy_state t ~policy:t.policy ~kinetic:None }

  (** Number of alive tasks in the frozen state (cheap introspection
      for branch reports). *)
  let snapshot_alive (s : snapshot) = s.frozen.nalive

  (** Virtual time of the frozen state. *)
  let snapshot_now (s : snapshot) = s.frozen.now_cell.(0)

  (** [fork snap] — a live engine whose straight-line future is
      byte-identical to the parent's: same journal output lines, same
      dump fingerprint, same metrics counters, event for event.

      [?kinetic] re-attaches an incremental share rule: its membership
      is rebuilt by re-adding the alive slots in [by_id] order, which
      reproduces the parent's kinetic answers bit for bit (the
      incremental rule is a pure function of the alive membership; its
      internal order is insertion-independent). [?policy] switches the
      share rule for the branch — a genuine state change, so it marks
      the share cache dirty; without it the cache is inherited clean
      and the next [Advance] costs exactly what the parent's would. *)
  let fork ?policy ?kinetic (s : snapshot) : t =
    let src = s.frozen in
    let t =
      copy_state src ~policy:(match policy with Some p -> p | None -> src.policy) ~kinetic
    in
    (match kinetic with
    | Some k ->
      for i = 0 to t.nalive - 1 do
        let slot = t.by_id.(i) in
        k.k_add ~slot ~id:t.c_id.(slot) ~weight:t.c_weight.(slot) ~cap:t.c_cap.(slot)
      done
    | None -> ());
    (match policy with Some _ -> t.dirty <- true | None -> ());
    t

  (* ---------- share cache ---------- *)

  (* Views in increasing id order — the same order the batch simulator
     fed its policy, and deterministic across runs. The kinetic rule
     fills the staging column directly; the list policy goes through
     the id indirection once per reshare. Either way the commit sweep
     below is the single place share changes are counted. *)
  let recompute_if_dirty t =
    if t.dirty then begin
      (match t.kinetic with
      | Some k ->
        k.k_shares ~capacity:t.capacity ~n:t.nalive ~by_id:t.by_id ~share:t.c_new_share
          ~order:t.order;
        t.norder <- t.nalive
      | None ->
        let views = ref [] in
        for i = t.nalive - 1 downto 0 do
          let s = t.by_id.(i) in
          views := { id = t.c_id.(s); weight = t.c_weight.(s); cap = t.c_cap.(s) } :: !views
        done;
        let raw = t.policy ~capacity:t.capacity !views in
        ensure_order_capacity t (List.length raw);
        let n = ref 0 in
        List.iter
          (fun (id, s) ->
            match Hashtbl.find_opt t.slot_of_id id with
            | None -> () (* policy named a dead task; drop it *)
            | Some slot ->
              t.c_new_share.(slot) <- s;
              t.order.(!n) <- slot;
              incr n)
          raw;
        t.norder <- !n);
      for i = 0 to t.norder - 1 do
        let s = t.order.(i) in
        let ns = t.c_new_share.(s) in
        if not (F.equal t.c_share.(s) ns) then begin
          t.c_share.(s) <- ns;
          t.c_changes.(s) <- t.c_changes.(s) + 1;
          t.metrics.M.alloc_changes <- t.metrics.M.alloc_changes + 1
        end
      done;
      t.metrics.M.reshares <- t.metrics.M.reshares + 1;
      t.dirty <- false
    end

  (* ---------- closing tasks ---------- *)

  (* Closing an alive task leaves the share structures; closing a
     dormant one (cancel cascade only — dormant tasks never complete)
     touches neither [by_id] nor the kinetic state nor the dirty flag,
     since a dormant task holds no share. Either way the slot is freed
     and the lifecycle hooks run: a completion releases this task's
     dormant dependents (the last release activates them, stamping
     their release time to [now]); a cancellation cascades to them. *)
  let rec close t slot outcome =
    let id = t.c_id.(slot) in
    let nowv = t.now_cell.(0) in
    let w = t.c_weight.(slot) in
    let was_alive = t.c_waiting.(slot) = 0 in
    Hashtbl.replace t.closed_tbl id
      {
        volume = t.c_volume.(slot);
        weight = w;
        cap = t.c_cap.(slot);
        submitted_at = t.c_submitted.(slot);
        closed_at = nowv;
        outcome;
        segments = List.rev t.c_segments.(slot);
        share_changes = t.c_changes.(slot);
      };
    if was_alive then begin
      remove_by_id t id;
      match t.kinetic with Some k -> k.k_remove ~slot | None -> ()
    end
    else begin
      t.ndormant <- t.ndormant - 1;
      t.c_waiting.(slot) <- 0
    end;
    Hashtbl.remove t.slot_of_id id;
    (match t.c_curve.(slot) with
    | Some _ ->
      t.c_curve.(slot) <- None;
      t.ncurved <- t.ncurved - 1
    | None -> ());
    t.c_segments.(slot) <- [];
    let dependents = t.c_dependents.(slot) in
    t.c_dependents.(slot) <- [];
    t.c_deps.(slot) <- [];
    t.free.(t.nfree) <- slot;
    t.nfree <- t.nfree + 1;
    if was_alive then t.dirty <- true;
    (match outcome with
    | Completed ->
      t.metrics.M.completed <- t.metrics.M.completed + 1;
      t.metrics.M.weighted_completion <- F.add t.metrics.M.weighted_completion (F.mul w nowv);
      t.metrics.M.weighted_flow <-
        F.add t.metrics.M.weighted_flow (F.mul w (F.sub nowv t.c_submitted.(slot)))
    | Cancelled ->
      t.metrics.M.cancelled <- t.metrics.M.cancelled + 1;
      t.cascade <- id :: t.cascade);
    (* Dependents are dormant by invariant; a stale id (already
       cascade-cancelled through another parent) misses the table and
       is skipped. *)
    match dependents with
    | [] -> ()
    | deps -> (
      match outcome with
      | Completed ->
        List.iter
          (fun did ->
            match Hashtbl.find_opt t.slot_of_id did with
            | Some dslot when t.c_waiting.(dslot) > 0 ->
              t.c_waiting.(dslot) <- t.c_waiting.(dslot) - 1;
              if t.c_waiting.(dslot) = 0 then activate t dslot
            | _ -> ())
          deps
      | Cancelled ->
        List.iter
          (fun did ->
            match Hashtbl.find_opt t.slot_of_id did with
            | Some dslot when t.c_waiting.(dslot) > 0 -> close t dslot Cancelled
            | _ -> ())
          deps)

  (* The last parent completed: the task joins the alive set. Its
     release time is re-stamped to the activation instant, so weighted
     flow measures time-in-system from readiness (the precedence
     model's release date). *)
  and activate t slot =
    let id = t.c_id.(slot) in
    t.ndormant <- t.ndormant - 1;
    t.c_submitted.(slot) <- t.now_cell.(0);
    insert_by_id t slot id;
    (match t.kinetic with
    | Some k -> k.k_add ~slot ~id ~weight:t.c_weight.(slot) ~cap:t.c_cap.(slot)
    | None -> ());
    t.dirty <- true

  (* ---------- the time-stepping core ---------- *)

  (* Rate histories coalesce adjacent segments with the same share, so
     a task resharing to an identical rate keeps one segment — the
     piecewise-constant function is unchanged, only its representation
     is minimal. *)
  let push_segment t slot t0 t1 s =
    match t.c_segments.(slot) with
    | (u0, u1, s') :: rest when F.equal u1 t0 && F.equal s' s ->
      t.c_segments.(slot) <- (u0, t1, s) :: rest
    | l -> t.c_segments.(slot) <- (t0, t1, s) :: l

  (* Earliest absolute completion estimate over the cached shares —
     first-min over the policy's output order, exactly like the batch
     loop (the min value is order-independent; fold order only matters
     for which task the estimate belongs to, which we never use).
     Estimates divide by the task's {e rate} at its share — the share
     itself under the linear law, so linear instances compute the
     pre-curve values bit for bit. *)
  let next_completion t =
    let nowv = t.now_cell.(0) in
    let best = ref None in
    for i = 0 to t.norder - 1 do
      let slot = t.order.(i) in
      let s = t.c_share.(slot) in
      if F.sign s > 0 then begin
        let r = slot_rate t slot s in
        if F.sign r > 0 then begin
          let eta = F.add_div nowv t.c_remaining.(slot) r in
          match !best with
          | Some b when F.compare b eta <= 0 -> ()
          | _ -> best := Some eta
        end
      end
    done;
    !best

  (** Earliest absolute completion estimate under the current shares
      (recomputing them if stale), [None] when nothing is running. The
      sharded store peeks every shard to find the global next event;
      the arithmetic is the advance loop's own ([add_div] first-min),
      so the peeked time is exactly where the next step will land. *)
  let next_eta t : F.t option =
    recompute_if_dirty t;
    next_completion t

  (* Advance every positively-shared task to absolute time [t_next],
     recording segments; then sweep the share list for completions
     ([leq_approx], matching the batch simulator's tolerance). Returns
     the completions in share-list order. *)
  let advance_and_sweep t t_next =
    let nowv = t.now_cell.(0) in
    let dt = F.sub t_next nowv in
    if F.sign dt > 0 then
      for i = 0 to t.norder - 1 do
        let slot = t.order.(i) in
        let s = t.c_share.(slot) in
        if F.sign s > 0 then begin
          (* segments record allocations (shares); volume drains at the
             task's rate — identical under the linear law *)
          if t.record_segments then push_segment t slot nowv t_next s;
          t.c_remaining.(slot) <- F.sub_mul t.c_remaining.(slot) (slot_rate t slot s) dt
        end
      done;
    t.now_cell.(0) <- t_next;
    let ndone = ref 0 in
    for i = 0 to t.norder - 1 do
      let slot = t.order.(i) in
      if F.sign t.c_share.(slot) > 0 && F.leq_approx t.c_remaining.(slot) F.zero then begin
        t.scratch_done.(!ndone) <- slot;
        incr ndone
      end
    done;
    let completed = ref [] in
    let at = t.now_cell.(0) in
    for k = 0 to !ndone - 1 do
      let slot = t.scratch_done.(k) in
      let id = t.c_id.(slot) in
      if Hashtbl.mem t.slot_of_id id then begin
        close t slot Completed;
        completed := { id; at } :: !completed
      end
    done;
    List.rev !completed

  (* Floating-point residue can leave [remaining] a few ulps above zero
     after advancing to a task's own estimate; the estimate then shrinks
     geometrically, so a handful of extra iterations settles it. The
     budget bounds pathological non-convergence. *)
  let no_progress_budget = 64

  let advance_to_generic t target : (notification list, error) result =
    if F.compare target (now t) < 0 then
      Error
        (Invalid
           (Printf.sprintf "advance into the past (target %s < now %s)" (F.to_string target)
              (F.to_string (now t))))
    else begin
      let notes = ref [] in
      let stall = ref 0 in
      let err = ref None in
      let continue = ref true in
      while !continue && !err = None do
        recompute_if_dirty t;
        match next_completion t with
        | Some eta when F.compare eta target <= 0 ->
          let completed = advance_and_sweep t eta in
          notes := List.rev_append completed !notes;
          if completed = [] then begin
            incr stall;
            if !stall > no_progress_budget then
              err := Some (Invalid "no progress: completion estimate does not converge")
          end
          else stall := 0
        | _ ->
          (* No completion inside the window: land on the target. *)
          let completed = advance_and_sweep t target in
          notes := List.rev_append completed !notes;
          continue := false
      done;
      match !err with Some e -> Error e | None -> Ok (List.rev !notes)
    end

  let drain_generic t : (notification list, error) result =
    let notes = ref [] in
    let stall = ref 0 in
    let err = ref None in
    while t.nalive > 0 && !err = None do
      recompute_if_dirty t;
      match next_completion t with
      | None -> err := Some (Invalid "deadlock: alive tasks but no positive share")
      | Some eta ->
        let completed = advance_and_sweep t eta in
        notes := List.rev_append completed !notes;
        if completed = [] then begin
          incr stall;
          if !stall > no_progress_budget then
            err := Some (Invalid "no progress: completion estimate does not converge")
        end
        else stall := 0
    done;
    match !err with Some e -> Error e | None -> Ok (List.rev !notes)

  (* ---------- float fast path ---------- *)

  (* Monomorphic advance loop for [F.t = float], recovered through the
     field witness. Selected only with [record_segments = false] (the
     generic loop keeps the history bookkeeping): one step is then two
     branch-light sweeps over flat float columns with all intermediates
     unboxed — registers live in [fscratch]/[iscratch] cells rather
     than local refs so no boxing survives even without flambda — and a
     steady-state [Advance] (no completions, clean cache) allocates
     nothing on the minor heap.

     Arithmetic is kept literally the generic loop's: [Float.compare]
     first-min, [eta = now +. rem /. s] ([add_div]), [rem -. s *. dt]
     ([sub_mul]; OCaml never contracts to an FMA), completion when
     [rem <= 0. +. epsilon] ([leq_approx] against zero) — so the two
     paths are bit-identical, which the cross-engine journal tests pin.
     The tolerance is {!Mwct_field.Field.Float_field.epsilon}: the
     float witness has a single inhabitant in this library. *)

  type fops = {
    f_advance_rel : t -> F.t -> (notification list, error) result;
    f_advance_abs : t -> F.t -> (notification list, error) result;
    f_drain : t -> (notification list, error) result;
  }

  let float_ops : fops option =
    match F.witness with
    | Mwct_field.Field.Any -> None
    | Mwct_field.Field.Float ->
      (* In this branch [F.t = float]: every column is a flat float
         array and the code below compiles monomorphically. *)
      let eps_zero = 0. +. Mwct_field.Field.Float_field.epsilon in
      (* One step: first-min eta scan, then either land on the target
         (code 1) or advance to the eta; volume sweep; completion scan
         into [scratch_done]. Returns [(ndone lsl 2) lor code] with
         code 0 = stepped, 1 = landed, 2 = deadlock (drain only). *)
      let f_step (t : t) (has_target : bool) : int =
        let order = t.order and share = t.c_share and remaining = t.c_remaining in
        let n = t.norder in
        let nowv = t.now_cell.(0) in
        t.iscratch.(0) <- 0;
        t.fscratch.(1) <- 0.;
        for i = 0 to n - 1 do
          let slot = Array.unsafe_get order i in
          let s = Array.unsafe_get share slot in
          if s > 0. then begin
            let eta = nowv +. (Array.unsafe_get remaining slot /. s) in
            if t.iscratch.(0) = 0 || Float.compare t.fscratch.(1) eta > 0 then begin
              t.fscratch.(1) <- eta;
              t.iscratch.(0) <- 1
            end
          end
        done;
        let seen = t.iscratch.(0) = 1 in
        if (not has_target) && not seen then 2
        else begin
          let best = t.fscratch.(1) in
          let landed =
            has_target && not (seen && Float.compare best t.fscratch.(0) <= 0)
          in
          let step_to = if landed then t.fscratch.(0) else best in
          let dt = step_to -. nowv in
          if dt > 0. then
            for i = 0 to n - 1 do
              let slot = Array.unsafe_get order i in
              let s = Array.unsafe_get share slot in
              if s > 0. then
                Array.unsafe_set remaining slot (Array.unsafe_get remaining slot -. (s *. dt))
            done;
          t.now_cell.(0) <- step_to;
          t.iscratch.(1) <- 0;
          for i = 0 to n - 1 do
            let slot = Array.unsafe_get order i in
            if
              Array.unsafe_get share slot > 0.
              && Array.unsafe_get remaining slot <= eps_zero
            then begin
              t.scratch_done.(t.iscratch.(1)) <- slot;
              t.iscratch.(1) <- t.iscratch.(1) + 1
            end
          done;
          (t.iscratch.(1) lsl 2) lor (if landed then 1 else 0)
        end
      in
      let finish acc : (notification list, error) result =
        match acc with [] -> Ok [] | l -> Ok (List.rev l)
      in
      let rec run (t : t) (has_target : bool) acc stall =
        if (not has_target) && t.nalive = 0 then finish acc
        else begin
          recompute_if_dirty t;
          let r = f_step t has_target in
          let code = r land 3 and ndone = r lsr 2 in
          if code = 2 then Error (Invalid "deadlock: alive tasks but no positive share")
          else begin
            let acc =
              if ndone = 0 then acc
              else begin
                let at = t.now_cell.(0) in
                let acc = ref acc in
                for k = 0 to ndone - 1 do
                  let slot = t.scratch_done.(k) in
                  let id = t.c_id.(slot) in
                  if Hashtbl.mem t.slot_of_id id then begin
                    close t slot Completed;
                    acc := { id; at } :: !acc
                  end
                done;
                !acc
              end
            in
            if code = 1 then finish acc
            else begin
              let stall = if ndone = 0 then stall + 1 else 0 in
              if stall > no_progress_budget then
                Error (Invalid "no progress: completion estimate does not converge")
              else run t has_target acc stall
            end
          end
        end
      in
      (* [start] reads the absolute target from [t.fscratch.(0)] rather
         than taking it as an argument: without flambda a float argument
         to a non-inlined call is boxed, and this is the per-event hot
         path that must not allocate. *)
      let start (t : t) =
        let nowv = t.now_cell.(0) in
        if Float.compare t.fscratch.(0) nowv < 0 then
          Error
            (Invalid
               (Printf.sprintf "advance into the past (target %s < now %s)"
                  (F.to_string t.fscratch.(0)) (F.to_string nowv)))
        else run t true [] 0
      in
      Some
        {
          f_advance_rel =
            (fun t dt ->
              t.fscratch.(0) <- t.now_cell.(0) +. dt;
              start t);
          f_advance_abs =
            (fun t target ->
              t.fscratch.(0) <- target;
              start t);
          f_drain = (fun t -> run t false [] 0);
        }

  (** Advance to absolute time [target], processing every completion on
      the way. The engine lands exactly at [target] (absolute times are
      assigned, not accumulated, so [advance_to] after [advance_to]
      reproduces the batch simulator's arithmetic bit for bit). *)
  let advance_to t target : (notification list, error) result =
    match float_ops with
    | Some ops when (not t.record_segments) && t.ncurved = 0 -> ops.f_advance_abs t target
    | _ -> advance_to_generic t target

  (** Run the alive set to completion. Fails with [Invalid "deadlock"]
      when alive tasks remain but none has a positive share (a policy
      that starves everything). *)
  let drain t : (notification list, error) result =
    match float_ops with
    | Some ops when (not t.record_segments) && t.ncurved = 0 -> ops.f_drain t
    | _ -> drain_generic t

  (* ---------- input events ---------- *)

  (* Dependency edges reference task ids the engine already knows —
     alive, dormant or completed. Returns the unmet (not-yet-completed)
     parents, deduplicated, or a diagnostic. A parent that was
     cancelled is an error: its subtree was cascade-cancelled when it
     closed, so a new dependent on it can never run. *)
  let check_deps t id deps : (int list, string) result =
    let fail msg = Error (Printf.sprintf "task %d: %s" id msg) in
    let rec go unmet = function
      | [] -> Ok (List.rev unmet)
      | d :: rest ->
        if d = id then fail "task cannot depend on itself"
        else if Hashtbl.mem t.slot_of_id d then go (d :: unmet) rest
        else begin
          match Hashtbl.find_opt t.closed_tbl d with
          | Some { outcome = Completed; _ } -> go unmet rest
          | Some { outcome = Cancelled; _ } ->
            fail (Printf.sprintf "dependency %d was cancelled" d)
          | None -> fail (Printf.sprintf "unknown dependency %d" d)
        end
    in
    go [] (List.sort_uniq Stdlib.compare deps)

  let submit t ?speedup ?(deps = []) ~id ~volume ~weight ~cap () : (unit, error) result =
    if Hashtbl.mem t.slot_of_id id || Hashtbl.mem t.closed_tbl id then Error (Duplicate_task id)
    else if F.sign volume <= 0 then
      Error (Invalid (Printf.sprintf "task %d: volume must be positive" id))
    else if F.sign weight <= 0 then
      Error (Invalid (Printf.sprintf "task %d: weight must be positive" id))
    else if F.sign cap <= 0 then Error (Invalid (Printf.sprintf "task %d: cap must be positive" id))
    else
      match
        match speedup with None -> None | Some (bx, by) -> check_curve id bx by
      with
      | Some msg -> Error (Invalid msg)
      | None -> begin
      match check_deps t id deps with
      | Error msg -> Error (Invalid msg)
      | Ok unmet ->
      let slot = alloc_slot t in
      t.c_volume.(slot) <- volume;
      t.c_weight.(slot) <- weight;
      t.c_cap.(slot) <- cap;
      t.c_submitted.(slot) <- t.now_cell.(0);
      t.c_remaining.(slot) <- volume;
      t.c_share.(slot) <- F.zero;
      t.c_new_share.(slot) <- F.zero;
      t.c_changes.(slot) <- 0;
      t.c_segments.(slot) <- [];
      t.c_curve.(slot) <- speedup;
      (match speedup with Some _ -> t.ncurved <- t.ncurved + 1 | None -> ());
      t.c_deps.(slot) <- deps;
      t.c_id.(slot) <- id;
      Hashtbl.replace t.slot_of_id id slot;
      (match unmet with
      | [] ->
        (* every parent already completed (or there are none): alive
           immediately — the pre-DAG submission path, bit for bit *)
        insert_by_id t slot id;
        (match t.kinetic with Some k -> k.k_add ~slot ~id ~weight ~cap | None -> ());
        t.dirty <- true
      | parents ->
        (* dormant: no share, no reshare — register with each unmet
           parent and wait for the last completion *)
        t.c_waiting.(slot) <- List.length parents;
        t.ndormant <- t.ndormant + 1;
        List.iter
          (fun p ->
            let ps = Hashtbl.find t.slot_of_id p in
            t.c_dependents.(ps) <- id :: t.c_dependents.(ps))
          parents);
      t.metrics.M.submitted <- t.metrics.M.submitted + 1;
      Ok ()
    end

  (** Cancel a task (alive or dormant). Cancellation {e cascades}: every
      dormant task waiting (transitively) on the cancelled one is
      cancelled with it — a task whose parent can never complete can
      never run. Returns the closed ids in cascade order, the requested
      id first. *)
  let cancel t id : (int list, error) result =
    match Hashtbl.find_opt t.slot_of_id id with
    | None -> Error (Unknown_task id)
    | Some slot ->
      t.cascade <- [];
      close t slot Cancelled;
      let ids = List.rev t.cascade in
      t.cascade <- [];
      Ok ids

  (** Apply one input event; the returned notifications are the
      completions it triggered, in chronological order. Every success
      bumps [metrics.events]; failures leave the state untouched. *)
  let apply t (e : event) : (notification list, error) result =
    let r =
      match e with
      | Submit { id; volume; weight; cap; speedup; deps } ->
        Result.map (fun () -> []) (submit t ?speedup ~deps ~id ~volume ~weight ~cap ())
      | Cancel id -> Result.map (fun _ -> []) (cancel t id)
      | Advance dt ->
        if F.sign dt < 0 then Error (Invalid "advance: negative dt")
        else begin
          match float_ops with
          | Some ops when (not t.record_segments) && t.ncurved = 0 -> ops.f_advance_rel t dt
          | _ -> advance_to_generic t (F.add (now t) dt)
        end
      | Advance_to target -> advance_to t target
      | Drain -> drain t
    in
    (match r with Ok _ -> t.metrics.M.events <- t.metrics.M.events + 1 | Error _ -> ());
    r
end

(** Pre-applied engines, mirroring the rest of the library. *)
module Float = Make (Mwct_field.Field.Float_field)

module Exact = Make (Mwct_rational.Rational.Rat_field)
