(** Deterministic seeded load generator (DESIGN.md §16).

    Produces tenant-clustered engine event streams under three arrival
    patterns, for `mwct whatif` (generate → record → fork) and as the
    stress driver for the sharded store:

    - {e burst} — long advance-only stretches punctuated by clumps of
      submissions from a single tenant (the "tenant doubles its load"
      shape the what-if service prices).
    - {e diurnal} — tenants take turns being "daytime": submission mass
      rotates through the tenant set on a fixed period, so every tenant
      alternates between hot and idle windows.
    - {e adversarial} — a reshare-heavy worst case: small volumes at
      cap 1 (completions arrive constantly), cancels of just-submitted
      tasks, and tiny advances, so the share frontier churns on nearly
      every event.

    Streams are deterministic functions of [(pattern, seed, tenants,
    events)]: the generator runs on an inline SplitMix64 (a reference
    copy of {!Mwct_util.Rng} — lib/runtime deliberately depends only on
    the field layers) and every numeric payload is dyadic via [F.of_q],
    so the same parameters draw the same rational event stream on both
    fields and render byte-identical journal lines on every OCaml
    version. Task ids encode the tenant as
    [id mod tenants] (per-tenant counters, ids unique), cancels target
    only tasks submitted since the last advance (provably not yet
    completed, so streams apply cleanly to any engine), and the stream
    ends in [Drain] unless [~drain:false]. *)

module Make (F : Mwct_field.Field.S) = struct
  module En = Engine.Make (F)

  type pattern = Burst | Diurnal | Adversarial

  let pattern_name = function
    | Burst -> "burst"
    | Diurnal -> "diurnal"
    | Adversarial -> "adversarial"

  let pattern_of_string = function
    | "burst" -> Some Burst
    | "diurnal" -> Some Diurnal
    | "adversarial" -> Some Adversarial
    | _ -> None

  (* ---------- SplitMix64 (reference copy of Mwct_util.Rng) ---------- *)

  (* Identical constants and finalizer; draws use modulo rather than
     rejection sampling (bias is irrelevant here — only determinism
     matters, and the modulo path takes exactly one [next64] per draw,
     which keeps the stream a pure function of the draw count). *)

  type rng = { mutable state : int64 }

  let golden_gamma = 0x9E3779B97F4A7C15L

  let mix64 z =
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let rng_create seed = { state = mix64 (Int64.of_int seed) }

  let next64 r =
    r.state <- Int64.add r.state golden_gamma;
    mix64 r.state

  (* Uniform-ish draw in [lo, hi] (inclusive); top 62 bits, one next64. *)
  let draw r lo hi =
    if hi <= lo then lo
    else lo + Int64.to_int (Int64.shift_right_logical (next64 r) 2) mod (hi - lo + 1)

  (* ---------- generation ---------- *)

  (** [generate ~pattern ~seed ~tenants ~events ()] — [events] input
      events plus a trailing [Drain] (omitted with [~drain:false]).
      With [~deps:true] roughly a third of submissions carry one parent
      drawn from the settled set (tasks that survived an advance), the
      same single-parent discipline as the sharded-store streams. *)
  let generate ?(deps = false) ?(drain = true) ~pattern ~seed ~tenants ~events () :
      En.event list =
    if tenants <= 0 then invalid_arg "Loadgen.generate: tenants must be positive";
    if events < 0 then invalid_arg "Loadgen.generate: events must be non-negative";
    let r = rng_create seed in
    let bases = Array.init tenants (fun _ -> draw r 1 8) in
    let counters = Array.make tenants 0 in
    let fresh = ref [] in
    let nfresh = ref 0 in
    let settled = ref [||] in
    let submit ?volume ?cap tenant =
      let id = (counters.(tenant) * tenants) + tenant in
      counters.(tenant) <- counters.(tenant) + 1;
      fresh := id :: !fresh;
      incr nfresh;
      let parents =
        if (not deps) || Array.length !settled = 0 || draw r 0 2 > 0 then []
        else [ !settled.(draw r 0 (Array.length !settled - 1)) ]
      in
      let volume = match volume with Some v -> v | None -> F.of_q (draw r 1 32) 4 in
      let cap = match cap with Some c -> c | None -> F.of_int (draw r 1 4) in
      En.Submit
        { id; volume; weight = F.of_int bases.(tenant); cap; speedup = None; deps = parents }
    in
    let advance q den =
      settled := Array.append !settled (Array.of_list !fresh);
      fresh := [];
      nfresh := 0;
      En.Advance (F.of_q q den)
    in
    let cancel_or ~alt () =
      if !nfresh = 0 then alt ()
      else begin
        let k = draw r 0 (!nfresh - 1) in
        let id = List.nth !fresh k in
        fresh := List.filter (fun i -> i <> id) !fresh;
        decr nfresh;
        En.Cancel id
      end
    in
    let burst_tenant = ref 0 in
    let event i =
      match pattern with
      | Burst ->
        (* 16-event cycle: a 6-submit clump from one tenant, then a
           quiet stretch of advances with a stray cancel. *)
        let pos = i mod 16 in
        if pos = 0 then burst_tenant := draw r 0 (tenants - 1);
        if pos < 6 then submit !burst_tenant
        else if pos = 14 then cancel_or ~alt:(fun () -> advance (draw r 1 8) 4) ()
        else advance (draw r 1 8) 4
      | Diurnal ->
        (* the "daytime" tenant rotates every 8 events; its window is
           submit-heavy, everyone else's traffic is the residue *)
        let day = i / 8 mod tenants in
        let d = draw r 0 9 in
        if d < 5 then submit day
        else if d < 7 then submit (draw r 0 (tenants - 1))
        else if d = 7 then cancel_or ~alt:(fun () -> submit day) ()
        else advance (draw r 0 6) 4
      | Adversarial ->
        (* churn the frontier: tiny volumes at cap 1 complete fast,
           cancels hit just-submitted tasks, advances are slivers *)
        let d = draw r 0 9 in
        if d < 5 then
          submit ~volume:(F.of_q (draw r 1 8) 8) ~cap:F.one (draw r 0 (tenants - 1))
        else if d < 8 then cancel_or ~alt:(fun () -> advance (draw r 1 4) 8) ()
        else advance (draw r 1 4) 8
    in
    let stream = List.init events event in
    if drain then stream @ [ En.Drain ] else stream
end

(** Pre-applied generators. *)
module Float = Make (Mwct_field.Field.Float_field)

module Exact = Make (Mwct_rational.Rational.Rat_field)
