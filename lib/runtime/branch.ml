(** What-if branch runner (DESIGN.md §16).

    Replays an input-event stream to a fork point, snapshots the
    engine, then runs K branches from that snapshot — each under a
    mutation set — and prices every branch against the straight-line
    baseline: ΔΣw·C, ΔΣw·(C−r), the first-divergence time (earliest
    completion where the branch's decision stream departs from the
    baseline's) and per-tenant objective deltas.

    Mutations:
    - {e policy switch} — the branch continues under a different share
      rule ([Engine.fork ~policy], recorded as a [policy] journal line
      so the branch journal replays self-contained);
    - {e tenant load scaling} — every suffix submission of a tenant
      ([id mod tenants]) has its volume scaled by a rational factor;
    - {e event injection} — extra [Submit]/[Cancel]/[Advance] events
      applied at the fork point, before the recorded suffix.

    Each branch produces its own complete journal (init, prefix,
    optional policy line, injected inputs, mutated suffix, out lines —
    one monotone seq counter), which {!Journal.Make.replay} accepts:
    recomputing Σw·C from a branch's journal must reproduce the
    report's figure, and the fuzz harness pins exactly that.

    Policies arrive as callbacks ([resolve] names a share rule,
    [kinetic_for] optionally supplies a fresh incremental rule per
    engine) — lib/runtime stays below the policy layer. Suffix events
    that no longer apply after mutation (e.g. the recorded stream
    cancels a task an injected Cancel already removed) are {e dropped}
    and counted, never journaled, so branch journals stay replayable. *)

module Make (F : Mwct_field.Field.S) = struct
  module En = Engine.Make (F)
  module J = Journal.Make (F)

  type scale = { tenant : int; num : int; den : int }

  type mutation =
    | Set_policy of string
    | Scale_tenant of scale
    | Inject of En.event

  type spec = { label : string; mutations : mutation list }

  (* ---------- branch spec grammar ---------- *)

  (* SPEC := LABEL [":" CLAUSE ("," CLAUSE)*]
     CLAUSE := "policy=" NAME
             | "scale=" TENANT ":" Q      (volume factor, e.g. 1:2 or 0:3/2)
             | "cancel=" ID
             | "advance=" Q
             | "submit=" ID ":" Q ":" Q ":" Q   (volume, weight, cap)
     Q := INT | INT "/" INT — every number is rational, so specs mean
     the same thing on both fields. A bare LABEL is a straight-line
     branch (no mutations): its report prices replay fidelity. *)

  let parse_q what (s : string) : (int * int, string) result =
    let int_of what s =
      match int_of_string_opt s with
      | Some n -> Ok n
      | None -> Error (Printf.sprintf "%s: not an integer %S" what s)
    in
    match String.index_opt s '/' with
    | None -> Result.map (fun n -> (n, 1)) (int_of what s)
    | Some i -> (
      match
        ( int_of what (String.sub s 0 i),
          int_of what (String.sub s (i + 1) (String.length s - i - 1)) )
      with
      | Ok n, Ok d when d > 0 -> Ok (n, d)
      | Ok _, Ok _ -> Error (Printf.sprintf "%s: denominator must be positive in %S" what s)
      | (Error _ as e), _ | _, (Error _ as e) -> e)

  let parse_pos_q what s : (int * int, string) result =
    match parse_q what s with
    | Ok (n, _) when n <= 0 -> Error (Printf.sprintf "%s: must be positive in %S" what s)
    | r -> r

  let parse_clause (c : string) : (mutation, string) result =
    let ( let* ) = Result.bind in
    match String.index_opt c '=' with
    | None -> Error (Printf.sprintf "clause %S: expected key=value" c)
    | Some i -> (
      let key = String.sub c 0 i in
      let v = String.sub c (i + 1) (String.length c - i - 1) in
      match key with
      | "policy" -> if v = "" then Error "policy=: empty name" else Ok (Set_policy v)
      | "scale" -> (
        match String.index_opt v ':' with
        | None -> Error (Printf.sprintf "scale=%s: expected TENANT:FACTOR" v)
        | Some j ->
          let* tenant =
            match int_of_string_opt (String.sub v 0 j) with
            | Some t when t >= 0 -> Ok t
            | _ -> Error (Printf.sprintf "scale=%s: bad tenant" v)
          in
          let* num, den =
            parse_pos_q "scale factor" (String.sub v (j + 1) (String.length v - j - 1))
          in
          Ok (Scale_tenant { tenant; num; den }))
      | "cancel" -> (
        match int_of_string_opt v with
        | Some id -> Ok (Inject (En.Cancel id))
        | None -> Error (Printf.sprintf "cancel=%s: bad task id" v))
      | "advance" ->
        let* n, d = parse_q "advance" v in
        if n < 0 then Error (Printf.sprintf "advance=%s: negative dt" v)
        else Ok (Inject (En.Advance (F.of_q n d)))
      | "submit" -> (
        match String.split_on_char ':' v with
        | [ id; vol; w; cap ] ->
          let* id =
            match int_of_string_opt id with
            | Some i -> Ok i
            | None -> Error (Printf.sprintf "submit=%s: bad task id" v)
          in
          let* vn, vd = parse_pos_q "submit volume" vol in
          let* wn, wd = parse_pos_q "submit weight" w in
          let* cn, cd = parse_pos_q "submit cap" cap in
          Ok
            (Inject
               (En.Submit
                  {
                    id;
                    volume = F.of_q vn vd;
                    weight = F.of_q wn wd;
                    cap = F.of_q cn cd;
                    speedup = None;
                    deps = [];
                  }))
        | _ -> Error (Printf.sprintf "submit=%s: expected ID:VOLUME:WEIGHT:CAP" v))
      | k -> Error (Printf.sprintf "unknown clause %S" k))

  let parse_spec (s : string) : (spec, string) result =
    let label, rest =
      match String.index_opt s ':' with
      | None -> (s, "")
      | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
    in
    if label = "" then Error (Printf.sprintf "branch spec %S: empty label" s)
    else if rest = "" then Ok { label; mutations = [] }
    else begin
      let rec go acc = function
        | [] -> Ok { label; mutations = List.rev acc }
        | c :: cs -> (
          match parse_clause c with
          | Ok m -> go (m :: acc) cs
          | Error msg -> Error (Printf.sprintf "branch %S: %s" label msg))
      in
      go [] (String.split_on_char ',' rest)
    end

  (* ---------- running ---------- *)

  type outcome = {
    label : string;
    policy : string;  (** share rule in effect after the fork *)
    applied : int;  (** injected + suffix events applied on the branch *)
    dropped : int;  (** suffix events refused after mutation (never journaled) *)
    sum_wc : F.t;
    sum_wflow : F.t;
    d_wc : F.t;  (** branch − baseline *)
    d_wflow : F.t;
    first_divergence : F.t option;
        (** earliest completion time at which the branch's decision
            stream departs from the baseline's; [None] = identical *)
    tenant_d_wc : F.t array;  (** ΔΣw·C per tenant ([id mod tenants]) *)
    lines : string list;  (** the branch's own journal, replayable *)
  }

  type report = {
    fork_at : int;
    tenants : int;
    baseline_wc : F.t;
    baseline_wflow : F.t;
    baseline_lines : string list;
    branches : outcome list;
  }

  let ( let* ) = Result.bind

  (* Apply [events] in order, journaling each accepted input and its
     completions and collecting (id, at) decisions. [lenient] drops
     refused events (counted) instead of failing. *)
  let drive ~lenient eng emit outs events : (int * int, string) result =
    let applied = ref 0 and dropped = ref 0 in
    let err = ref None in
    List.iteri
      (fun i ev ->
        if !err = None then
          match En.apply eng ev with
          | Ok notes ->
            incr applied;
            emit (J.Input ev);
            List.iter
              (fun (n : En.notification) ->
                outs := (n.En.id, n.En.at) :: !outs;
                emit (J.Output { id = n.En.id; at = n.En.at }))
              notes
          | Error e ->
            if lenient then incr dropped
            else err := Some (Printf.sprintf "event %d: %s" i (En.error_to_string e)))
      events;
    match !err with Some m -> Error m | None -> Ok (!applied, !dropped)

  let split_at n l =
    let rec go i acc = function
      | rest when i = n -> (List.rev acc, rest)
      | [] -> (List.rev acc, [])
      | x :: rest -> go (i + 1) (x :: acc) rest
    in
    go 0 [] l

  (* Σw·C per tenant over completed tasks. *)
  let tenant_wc ~tenants eng =
    let a = Array.make tenants F.zero in
    List.iter
      (fun (id, (c : En.closed)) ->
        if c.En.outcome = En.Completed then begin
          let t = id mod tenants in
          a.(t) <- F.add a.(t) (F.mul c.En.weight c.En.closed_at)
        end)
      (En.closed eng);
    a

  (* Earliest completion where the two decision streams differ: first
     index with a different (id, time) pair — report the earlier of the
     two times — or the time of the first unmatched tail element. *)
  let first_divergence base branch : F.t option =
    let rec go a b =
      match (a, b) with
      | [], [] -> None
      | (_, at) :: _, [] | [], (_, at) :: _ -> Some at
      | (i, x) :: a', (j, y) :: b' ->
        if i = j && F.equal x y then go a' b'
        else Some (if F.compare x y <= 0 then x else y)
    in
    go base branch

  (** [run ~resolve ~kinetic_for ~tenants ~capacity ~policy ~events
      ~fork_at ~branches ()] — baseline replay plus one engine per
      branch, all forked from a single snapshot taken after the first
      [fork_at] input events. *)
  let run ~(resolve : string -> En.policy option)
      ~(kinetic_for : string -> En.kinetic option) ?(tenants = 4) ~capacity ~policy
      ~(events : En.event list) ~fork_at ~(branches : spec list) () : (report, string) result =
    if tenants <= 0 then Error "tenants must be positive"
    else if fork_at < 0 || fork_at > List.length events then
      Error
        (Printf.sprintf "fork point %d out of range (stream has %d events)" fork_at
           (List.length events))
    else
      let* p0 =
        match resolve policy with
        | Some p -> Ok p
        | None -> Error (Printf.sprintf "unknown policy %S" policy)
      in
      (* baseline: the straight-line run over the whole stream *)
      let* baseline_rev_lines, baseline_outs, baseline_wc, baseline_wflow, baseline_tenant =
        let eng = En.create ~capacity ~policy:p0 ?kinetic:(kinetic_for policy) () in
        let lines = ref [] and seq = ref 0 in
        let emit e =
          lines := J.to_line ~seq:!seq e :: !lines;
          incr seq
        in
        emit (J.Init { capacity; policy });
        let outs = ref [] in
        let* _ = Result.map_error (fun m -> "baseline: " ^ m) (drive ~lenient:false eng emit outs events) in
        Ok
          ( !lines,
            List.rev !outs,
            En.weighted_completion eng,
            En.weighted_flow eng,
            tenant_wc ~tenants eng )
      in
      (* prefix: replay to the fork point once, snapshot *)
      let prefix_events, suffix_events = split_at fork_at events in
      let* snap, prefix_rev_lines, prefix_seq, prefix_outs_rev =
        let eng = En.create ~capacity ~policy:p0 ?kinetic:(kinetic_for policy) () in
        let lines = ref [] and seq = ref 0 in
        let emit e =
          lines := J.to_line ~seq:!seq e :: !lines;
          incr seq
        in
        emit (J.Init { capacity; policy });
        let outs = ref [] in
        let* _ =
          Result.map_error (fun m -> "prefix: " ^ m) (drive ~lenient:false eng emit outs prefix_events)
        in
        Ok (En.snapshot eng, !lines, !seq, !outs)
      in
      let run_branch (sp : spec) : (outcome, string) result =
        let new_policy =
          List.fold_left
            (fun acc m -> match m with Set_policy p -> Some p | _ -> acc)
            None sp.mutations
        in
        let scales = List.filter_map (function Scale_tenant s -> Some s | _ -> None) sp.mutations in
        let injections = List.filter_map (function Inject e -> Some e | _ -> None) sp.mutations in
        let* eff_policy, eng =
          match new_policy with
          | None -> Ok (policy, En.fork ?kinetic:(kinetic_for policy) snap)
          | Some name -> (
            match resolve name with
            | Some p -> Ok (name, En.fork ~policy:p ?kinetic:(kinetic_for name) snap)
            | None -> Error (Printf.sprintf "branch %S: unknown policy %S" sp.label name))
        in
        let lines = ref prefix_rev_lines and seq = ref prefix_seq in
        let emit e =
          lines := J.to_line ~seq:!seq e :: !lines;
          incr seq
        in
        if new_policy <> None then emit (J.Policy eff_policy);
        let outs = ref prefix_outs_rev in
        let* injected, _ =
          Result.map_error
            (fun m -> Printf.sprintf "branch %S: injection %s" sp.label m)
            (drive ~lenient:false eng emit outs injections)
        in
        let suffix =
          if scales = [] then suffix_events
          else
            List.map
              (function
                | En.Submit { id; volume; weight; cap; speedup; deps } ->
                  let volume =
                    List.fold_left
                      (fun v (s : scale) ->
                        if id mod tenants = s.tenant then
                          F.div (F.mul v (F.of_int s.num)) (F.of_int s.den)
                        else v)
                      volume scales
                  in
                  En.Submit { id; volume; weight; cap; speedup; deps }
                | ev -> ev)
              suffix_events
        in
        let* applied, dropped = drive ~lenient:true eng emit outs suffix in
        let sum_wc = En.weighted_completion eng and sum_wflow = En.weighted_flow eng in
        let bt = baseline_tenant and t = tenant_wc ~tenants eng in
        Ok
          {
            label = sp.label;
            policy = eff_policy;
            applied = injected + applied;
            dropped;
            sum_wc;
            sum_wflow;
            d_wc = F.sub sum_wc baseline_wc;
            d_wflow = F.sub sum_wflow baseline_wflow;
            first_divergence = first_divergence baseline_outs (List.rev !outs);
            tenant_d_wc = Array.init tenants (fun k -> F.sub t.(k) bt.(k));
            lines = List.rev !lines;
          }
      in
      let rec all acc = function
        | [] -> Ok (List.rev acc)
        | sp :: rest ->
          let* o = run_branch sp in
          all (o :: acc) rest
      in
      let* branches = all [] branches in
      Ok
        {
          fork_at;
          tenants;
          baseline_wc;
          baseline_wflow;
          baseline_lines = List.rev baseline_rev_lines;
          branches;
        }

  (* ---------- JSONL report rendering ---------- *)

  (* Dual decimal + [_repr] convention, same helpers as the journal. *)

  let baseline_json (r : report) : string =
    J.obj
      ([
         ("type", "\"baseline\"");
         ("fork_at", string_of_int r.fork_at);
         ("tenants", string_of_int r.tenants);
         ("branches", string_of_int (List.length r.branches));
       ]
      @ J.num_fields "sum_wc" r.baseline_wc
      @ J.num_fields "sum_wflow" r.baseline_wflow)

  let outcome_json (o : outcome) : string =
    let tenant_str render =
      String.concat " "
        (List.mapi (fun t d -> string_of_int t ^ ":" ^ render d) (Array.to_list o.tenant_d_wc))
    in
    J.obj
      ([
         ("type", "\"branch\"");
         ("label", Printf.sprintf "\"%s\"" (J.escape o.label));
         ("policy", Printf.sprintf "\"%s\"" (J.escape o.policy));
         ("applied", string_of_int o.applied);
         ("dropped", string_of_int o.dropped);
       ]
      @ J.num_fields "sum_wc" o.sum_wc
      @ J.num_fields "sum_wflow" o.sum_wflow
      @ J.num_fields "d_wc" o.d_wc
      @ J.num_fields "d_wflow" o.d_wflow
      @ (match o.first_divergence with None -> [] | Some t -> J.num_fields "first_divergence" t)
      @ [
          ( "tenant_d_wc",
            Printf.sprintf "\"%s\""
              (J.escape (tenant_str (fun d -> Printf.sprintf "%.12g" (F.to_float d)))) );
          ("tenant_d_wc_repr", Printf.sprintf "\"%s\"" (J.escape (tenant_str F.repr)));
        ])

  (** The whole report as JSONL: one baseline line, one line per
      branch. *)
  let report_jsonl (r : report) : string list =
    baseline_json r :: List.map outcome_json r.branches
end

(** Pre-applied branch runners. *)
module Float = Make (Mwct_field.Field.Float_field)

module Exact = Make (Mwct_rational.Rational.Rat_field)
