(** Runtime counters and gauges for the online engine.

    A plain mutable record the engine bumps as events flow through it,
    plus a JSON snapshot following the library's dual-rendering
    convention (decimal [float] field + exact [_repr] string). The
    snapshot is deliberately deterministic — wall-clock derived gauges
    (events per second) are optional parameters supplied by the caller,
    so golden tests of the [serve] front-end stay byte-stable. *)

module Make (F : Mwct_field.Field.S) = struct
  type t = {
    mutable events : int;  (** input events applied (submit/cancel/advance/drain) *)
    mutable submitted : int;
    mutable completed : int;
    mutable cancelled : int;
    mutable reshares : int;  (** share recomputations (state changes) *)
    mutable alloc_changes : int;  (** individual per-task share changes *)
    mutable weighted_completion : F.t;  (** [Σ w_i C_i] over completed tasks *)
    mutable weighted_flow : F.t;  (** [Σ w_i (C_i − submit_i)] over completed tasks *)
    (* Log-bucketed service-time histogram: bucket [i] counts
       observations in [2^i, 2^(i+1)) nanoseconds. Observations only
       ever accumulate, so [lat_count] alone keys memo validity. *)
    lat : int array;
    mutable lat_count : int;
    (* Snapshot memo, keyed on the event counter plus the remaining
       counters (the direct engine API can mutate state between event
       bumps): polling [to_json] on an idle engine costs a string
       reuse, not a rebuild. [snap_state = None] means "no snapshot
       cached". *)
    mutable snap_state : t option;
    mutable snap_alive : int;
    mutable snap_now : F.t;
    mutable snap : string;
  }

  let lat_buckets = 64

  let create () =
    {
      events = 0;
      submitted = 0;
      completed = 0;
      cancelled = 0;
      reshares = 0;
      alloc_changes = 0;
      weighted_completion = F.zero;
      weighted_flow = F.zero;
      lat = Array.make lat_buckets 0;
      lat_count = 0;
      snap_state = None;
      snap_alive = 0;
      snap_now = F.zero;
      snap = "";
    }

  (* Copies drop the memo so snapshot chains never retain each other.
     The histogram array is shared — memo validity compares only
     [lat_count], which pins the (append-only) bucket contents. *)
  let copy (m : t) = { m with snap_state = None; snap = "" }

  let equal (a : t) (b : t) =
    a.events = b.events && a.submitted = b.submitted && a.completed = b.completed
    && a.cancelled = b.cancelled && a.reshares = b.reshares && a.alloc_changes = b.alloc_changes
    && a.lat_count = b.lat_count
    && F.equal a.weighted_completion b.weighted_completion
    && F.equal a.weighted_flow b.weighted_flow

  (* ---------- tail-latency histogram ---------- *)

  (* [observe_latency m secs] files one per-event service time (seconds,
     wall clock) into the log-bucketed histogram. Sub-nanosecond and
     non-finite observations land in bucket 0; anything beyond ~2^63 ns
     in the last. *)
  let observe_latency (m : t) (secs : float) : unit =
    let ns = secs *. 1e9 in
    let b =
      if not (ns >= 1.) then 0
      else begin
        let i = int_of_float (Float.log2 ns) in
        if i < 0 then 0 else if i >= lat_buckets then lat_buckets - 1 else i
      end
    in
    m.lat.(b) <- m.lat.(b) + 1;
    m.lat_count <- m.lat_count + 1

  (** [latency_quantile m q] — upper edge (microseconds) of the bucket
      holding the [q]-quantile observation, [None] while the histogram
      is empty. Log bucketing means the value is exact to within a
      factor of 2 — the right resolution for a tail-latency gauge. *)
  let latency_quantile (m : t) (q : float) : float option =
    if m.lat_count = 0 then None
    else begin
      let rank =
        let r = int_of_float (ceil (q *. float_of_int m.lat_count)) in
        if r < 1 then 1 else if r > m.lat_count then m.lat_count else r
      in
      let acc = ref 0 and b = ref 0 in
      while !acc < rank && !b < lat_buckets do
        acc := !acc + m.lat.(!b);
        incr b
      done;
      (* bucket !b - 1 covers [2^(b-1), 2^b) ns; report the upper edge in µs *)
      Some (Float.pow 2. (float_of_int !b) /. 1e3)
    end

  let json_escape s =
    let buf = Buffer.create (String.length s) in
    String.iter
      (function
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let json_num x = Printf.sprintf "%.12g" x

  (** One JSONL metrics line (no trailing newline). [alive] and [now]
      are gauges owned by the engine; [events_per_sec] is wall-clock
      derived and only included when the caller measured it. *)
  let to_json ?events_per_sec ~alive ~now (m : t) : string =
    (* Wall-clock gauges bypass the memo (they vary at a fixed counter
       state); everything else in the snapshot is a pure function of
       the counters and the [alive]/[now] gauges compared here. *)
    let memo_valid =
      events_per_sec = None
      && (match m.snap_state with
         | Some s -> equal m s && alive = m.snap_alive && F.equal now m.snap_now
         | None -> false)
    in
    if memo_valid then m.snap
    else begin
    let fields =
      [
        ("type", "\"metrics\"");
        ("now", json_num (F.to_float now));
        ("now_repr", Printf.sprintf "\"%s\"" (json_escape (F.repr now)));
        ("alive", string_of_int alive);
        ("submitted", string_of_int m.submitted);
        ("completed", string_of_int m.completed);
        ("cancelled", string_of_int m.cancelled);
        ("events", string_of_int m.events);
        ("reshares", string_of_int m.reshares);
        ("alloc_changes", string_of_int m.alloc_changes);
        ("sum_wc", json_num (F.to_float m.weighted_completion));
        ("sum_wc_repr", Printf.sprintf "\"%s\"" (json_escape (F.repr m.weighted_completion)));
        ("sum_wflow", json_num (F.to_float m.weighted_flow));
        ("sum_wflow_repr", Printf.sprintf "\"%s\"" (json_escape (F.repr m.weighted_flow)));
      ]
      @ (if m.lat_count = 0 then []
         (* Latency fields appear only once something was observed, so
            runs that never time events keep pre-histogram snapshot
            bytes. The quantiles are pure functions of the (append-only)
            histogram, hence memo-safe. *)
         else begin
           let q name p =
             match latency_quantile m p with
             | Some us -> [ (name, json_num us) ]
             | None -> []
           in
           [ ("lat_events", string_of_int m.lat_count) ]
           @ q "lat_p50_us" 0.50 @ q "lat_p90_us" 0.90 @ q "lat_p99_us" 0.99
           @ q "lat_p999_us" 0.999
         end)
      @ (match events_per_sec with None -> [] | Some r -> [ ("events_per_sec", json_num r) ])
    in
    let s =
      "{" ^ String.concat "," (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" k v) fields) ^ "}"
    in
    if events_per_sec = None then begin
      m.snap_state <- Some (copy m);
      m.snap_alive <- alive;
      m.snap_now <- now;
      m.snap <- s
    end;
    s
    end
end
