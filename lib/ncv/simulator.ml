(** Event-driven non-clairvoyant simulator with task arrivals.

    Generalizes {!Mwct_core.Engine.Make.Wdeq} (which assumes all tasks
    present at time 0): tasks arrive at release dates; whenever a task
    arrives or completes, the policy's shares are recomputed from the
    alive set. Volumes are used by the simulator only to detect
    completions — the policy never sees them, preserving
    non-clairvoyance.

    The output is an event trace plus per-task records; helpers compute
    the paper's objective and convert the trace to segment form for
    validity checking. *)

module Make (F : Mwct_field.Field.S) = struct
  module T = Mwct_core.Types.Make (F)
  module I = Mwct_core.Instance.Make (F)
  module P = Policy.Make (F)

  type event = Arrival of int | Completion of int

  type record = {
    release : F.t;
    completion : F.t;
    (* Piecewise-constant rates: (from, to, share), chronological. *)
    segments : (F.t * F.t * F.t) list;
  }

  type trace = {
    instance : T.instance;
    policy : P.t;
    events : (F.t * event) list;  (** chronological *)
    records : record array;
  }

  (** Simulate [policy] on [inst] with [releases] (defaults to all
      zeros). Raises [Invalid_argument] if a task can never progress
      (impossible for the provided policies: every alive task has a
      positive weight and cap... except [Priority_weight], which can
      starve tasks while heavier ones run — starvation resolves when
      the heavy tasks finish, so progress is still guaranteed). *)
  let run ?releases (inst : T.instance) (policy : P.t) : trace =
    let n = I.num_tasks inst in
    let releases = match releases with Some r -> r | None -> Array.make n F.zero in
    if Array.length releases <> n then invalid_arg "Simulator.run: releases length mismatch";
    let remaining = Array.map (fun (t : T.task) -> t.T.volume) inst.T.tasks in
    let completed = Array.make n false in
    let alive = Array.make n false in
    let segments = Array.make n [] in
    let completion = Array.make n F.zero in
    let events = ref [] in
    (* Pending arrivals sorted by release. *)
    let pending =
      List.sort
        (fun a b -> F.compare releases.(a) releases.(b))
        (List.init n (fun i -> i))
      |> ref
    in
    let t_now = ref F.zero in
    (* Pop arrivals due at or before now. *)
    let admit_due () =
      let rec go () =
        match !pending with
        | i :: rest when F.compare releases.(i) !t_now <= 0 ->
          pending := rest;
          alive.(i) <- true;
          events := (releases.(i), Arrival i) :: !events;
          go ()
        | _ -> ()
      in
      go ()
    in
    admit_due ();
    let n_done = ref 0 in
    let guard = ref 0 in
    while !n_done < n do
      incr guard;
      if !guard > 4 * n + 16 then invalid_arg "Simulator.run: event-loop guard tripped (no progress)";
      let views =
        List.filter_map
          (fun i ->
            if alive.(i) then
              Some { P.id = i; weight = inst.T.tasks.(i).T.weight; cap = I.effective_delta inst i }
            else None)
          (List.init n (fun i -> i))
      in
      let share_list = P.shares policy ~capacity:inst.T.procs views in
      (* Next completion among alive tasks with positive shares. *)
      let next_completion =
        List.fold_left
          (fun acc (i, s) ->
            if F.sign s > 0 then begin
              let eta = F.add !t_now (F.div remaining.(i) s) in
              match acc with Some best when F.compare best eta <= 0 -> acc | _ -> Some eta
            end
            else acc)
          None share_list
      in
      (* Next arrival. *)
      let next_arrival = match !pending with [] -> None | i :: _ -> Some releases.(i) in
      let t_next =
        match (next_completion, next_arrival) with
        | None, None -> invalid_arg "Simulator.run: deadlock (alive tasks but nothing can progress)"
        | Some c, None -> c
        | None, Some a -> a
        | Some c, Some a -> F.min c a
      in
      let dt = F.sub t_next !t_now in
      (* Advance everyone; record segments. *)
      List.iter
        (fun (i, s) ->
          if F.sign s > 0 && F.sign dt > 0 then begin
            segments.(i) <- (!t_now, t_next, s) :: segments.(i);
            remaining.(i) <- F.sub remaining.(i) (F.mul s dt)
          end)
        share_list;
      t_now := t_next;
      (* Completions at t_next. *)
      List.iter
        (fun (i, s) ->
          if F.sign s > 0 && F.leq_approx remaining.(i) F.zero && not completed.(i) then begin
            completed.(i) <- true;
            alive.(i) <- false;
            completion.(i) <- !t_now;
            incr n_done;
            events := (!t_now, Completion i) :: !events
          end)
        share_list;
      admit_due ()
    done;
    let records =
      Array.init n (fun i ->
          { release = releases.(i); completion = completion.(i); segments = List.rev segments.(i) })
    in
    { instance = inst; policy; events = List.rev !events; records }

  (** The paper's objective on a trace. *)
  let weighted_completion_time (tr : trace) : F.t =
    let acc = ref F.zero in
    Array.iteri
      (fun i r -> acc := F.add !acc (F.mul tr.instance.T.tasks.(i).T.weight r.completion))
      tr.records;
    !acc

  (** Weighted flow time [Σ w_i (C_i − r_i)] — the objective the
      related-work row [14] targets. *)
  let weighted_flow_time (tr : trace) : F.t =
    let acc = ref F.zero in
    Array.iteri
      (fun i r ->
        acc := F.add !acc (F.mul tr.instance.T.tasks.(i).T.weight (F.sub r.completion r.release)))
      tr.records;
    !acc

  let makespan (tr : trace) : F.t =
    Array.fold_left (fun acc r -> F.max acc r.completion) F.zero tr.records

  (** Processed volume per task (should equal the instance volumes). *)
  let processed_volume (tr : trace) : F.t array =
    Array.map
      (fun r ->
        List.fold_left (fun acc (a, b, s) -> F.add acc (F.mul s (F.sub b a))) F.zero r.segments)
      tr.records

  (** Validity of a trace: shares within caps, capacity respected at
      every instant, no work before release, volumes conserved. *)
  let check (tr : trace) : (unit, string) result =
    let n = Array.length tr.records in
    let exception Bad of string in
    try
      (* Per-task checks. *)
      Array.iteri
        (fun i r ->
          List.iter
            (fun (a, b, s) ->
              if F.compare a b >= 0 then raise (Bad (Printf.sprintf "task %d: empty segment" i));
              if F.compare a r.release < 0 then raise (Bad (Printf.sprintf "task %d: runs before release" i));
              if not (F.leq_approx s (I.effective_delta tr.instance i)) then
                raise (Bad (Printf.sprintf "task %d: share above cap" i));
              if F.sign s < 0 then raise (Bad (Printf.sprintf "task %d: negative share" i)))
            r.segments)
        tr.records;
      (* Volumes. *)
      let pv = processed_volume tr in
      Array.iteri
        (fun i v ->
          if not (F.equal_approx v tr.instance.T.tasks.(i).T.volume) then
            raise (Bad (Printf.sprintf "task %d: volume mismatch" i)))
        pv;
      (* Capacity at segment boundaries (shares are piecewise constant
         between consecutive boundaries). *)
      let boundaries =
        List.sort_uniq F.compare
          (List.concat_map
             (fun (r : record) -> List.concat_map (fun (a, b, _) -> [ a; b ]) r.segments)
             (Array.to_list tr.records))
      in
      let rec pairs = function
        | a :: (b :: _ as rest) ->
          let mid_lo = a and mid_hi = b in
          let total = ref F.zero in
          for i = 0 to n - 1 do
            List.iter
              (fun (s0, s1, s) ->
                if F.compare s0 mid_lo <= 0 && F.compare mid_hi s1 <= 0 then total := F.add !total s)
              tr.records.(i).segments
          done;
          if not (F.leq_approx !total tr.instance.T.procs) then
            raise (Bad "capacity exceeded between events");
          pairs rest
        | _ -> ()
      in
      pairs boundaries;
      Ok ()
    with Bad msg -> Error msg

  (** Collapse a zero-release trace to a column schedule so the core
      checkers/objective agree with the simulator's. *)
  let to_column_schedule (tr : trace) : T.column_schedule =
    let module S = Mwct_core.Schedule.Make (F) in
    let completion = Array.map (fun r -> r.completion) tr.records in
    let order = S.sorted_order completion in
    let finish = Array.map (fun i -> completion.(i)) order in
    let columns = S.columns_of_segments ~finish (Array.map (fun r -> r.segments) tr.records) in
    { T.instance = tr.instance; order; finish; columns }
end

(** Pre-applied engines. *)
module Float = Make (Mwct_field.Field.Float_field)

module Exact = Make (Mwct_rational.Rational.Rat_field)
