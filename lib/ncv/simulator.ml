(** Event-driven non-clairvoyant simulator with task arrivals.

    Generalizes {!Mwct_core.Engine.Make.Wdeq} (which assumes all tasks
    present at time 0): tasks arrive at release dates; whenever a task
    arrives or completes, the policy's shares are recomputed from the
    alive set. Volumes are used only to detect completions — the policy
    never sees them, preserving non-clairvoyance.

    Since the online runtime landed, [run] is a thin wrapper over the
    incremental {!Mwct_runtime.Engine}: releases are fed as
    [Submit]/advance events and the trace is read back from the
    engine's closed-task records. The engine reproduces this module's
    historical event-loop arithmetic exactly (absolute completion
    estimates, first-min selection, [leq_approx] completion detection,
    views in increasing id order), so the traces are bit-identical to
    the pre-runtime batch loop — one scheduling loop, not two.

    The output is an event trace plus per-task records; helpers compute
    the paper's objective and convert the trace to segment form for
    validity checking. *)

module Make (F : Mwct_field.Field.S) = struct
  module T = Mwct_core.Types.Make (F)
  module I = Mwct_core.Instance.Make (F)
  module P = Policy.Make (F)
  module En = Mwct_runtime.Engine.Make (F)

  type event = Arrival of int | Completion of int

  type record = {
    release : F.t;
    completion : F.t;
    (* Piecewise-constant rates: (from, to, share), chronological. *)
    segments : (F.t * F.t * F.t) list;
  }

  type trace = {
    instance : T.instance;
    policy : P.t;
    events : (F.t * event) list;  (** chronological *)
    records : record array;
  }

  (** Simulate [policy] on [inst] with [releases] (defaults to all
      zeros). Raises [Invalid_argument] if a task can never progress
      (impossible for the provided policies: every alive task has a
      positive weight and cap... except [Priority_weight], which can
      starve tasks while heavier ones run — starvation resolves when
      the heavy tasks finish, so progress is still guaranteed). *)
  let run ?releases (inst : T.instance) (policy : P.t) : trace =
    let n = I.num_tasks inst in
    let releases = match releases with Some r -> r | None -> Array.make n F.zero in
    if Array.length releases <> n then invalid_arg "Simulator.run: releases length mismatch";
    let eng =
      En.create ?kinetic:(P.engine_kinetic policy) ~capacity:inst.T.procs
        ~policy:(P.engine_policy policy) ()
    in
    let events = ref [] in
    let fail err = invalid_arg ("Simulator.run: " ^ En.error_to_string err) in
    let push_completions notes =
      List.iter (fun (nt : En.notification) -> events := (nt.En.at, Completion nt.En.id) :: !events) notes
    in
    (* Pending arrivals sorted by release (stable, so ties keep id
       order — as the historical batch loop did). *)
    let pending =
      List.sort
        (fun a b -> F.compare releases.(a) releases.(b))
        (List.init n (fun i -> i))
      |> ref
    in
    (* Submit arrivals due at or before the engine clock. *)
    let admit_due () =
      let rec go () =
        match !pending with
        | i :: rest when F.compare releases.(i) (En.now eng) <= 0 ->
          pending := rest;
          (match
             En.submit eng
               ?speedup:(I.speedup_arrays inst i)
               ~id:i ~volume:inst.T.tasks.(i).T.volume ~weight:inst.T.tasks.(i).T.weight
               ~cap:(I.effective_delta inst i) ()
           with
          | Ok () -> ()
          | Error e -> fail e);
          events := (releases.(i), Arrival i) :: !events;
          go ()
        | _ -> ()
      in
      go ()
    in
    admit_due ();
    (* Advance arrival to arrival (the engine handles the completions
       in between), then drain the tail. *)
    let rec loop () =
      if En.completed_count eng < n then begin
        match !pending with
        | [] -> ( match En.drain eng with Ok notes -> push_completions notes | Error e -> fail e)
        | i :: _ ->
          (match En.advance_to eng releases.(i) with
          | Ok notes -> push_completions notes
          | Error e -> fail e);
          admit_due ();
          loop ()
      end
    in
    loop ();
    let records =
      Array.init n (fun i ->
          match En.find_closed eng i with
          | Some c ->
            { release = releases.(i); completion = c.En.closed_at; segments = c.En.segments }
          | None -> invalid_arg "Simulator.run: task never completed")
    in
    { instance = inst; policy; events = List.rev !events; records }

  (** The paper's objective on a trace. *)
  let weighted_completion_time (tr : trace) : F.t =
    let acc = ref F.zero in
    Array.iteri
      (fun i r -> acc := F.add !acc (F.mul tr.instance.T.tasks.(i).T.weight r.completion))
      tr.records;
    !acc

  (** Weighted flow time [Σ w_i (C_i − r_i)] — the objective the
      related-work row [14] targets. *)
  let weighted_flow_time (tr : trace) : F.t =
    let acc = ref F.zero in
    Array.iteri
      (fun i r ->
        acc := F.add !acc (F.mul tr.instance.T.tasks.(i).T.weight (F.sub r.completion r.release)))
      tr.records;
    !acc

  let makespan (tr : trace) : F.t =
    Array.fold_left (fun acc r -> F.max acc r.completion) F.zero tr.records

  (** Processed volume per task (should equal the instance volumes).
      Segments record allocations; the volume drained is the task's
      {e rate} at that allocation times the duration — the allocation
      itself under the linear law. *)
  let processed_volume (tr : trace) : F.t array =
    Array.mapi
      (fun i r ->
        List.fold_left
          (fun acc (a, b, s) -> F.add acc (F.mul (I.rate_at tr.instance i s) (F.sub b a)))
          F.zero r.segments)
      tr.records

  (** Validity of a trace: shares within caps, capacity respected at
      every instant, no work before release, volumes conserved. *)
  let check (tr : trace) : (unit, string) result =
    let n = Array.length tr.records in
    let exception Bad of string in
    try
      (* Per-task checks. *)
      Array.iteri
        (fun i r ->
          List.iter
            (fun (a, b, s) ->
              if F.compare a b >= 0 then raise (Bad (Printf.sprintf "task %d: empty segment" i));
              if F.compare a r.release < 0 then raise (Bad (Printf.sprintf "task %d: runs before release" i));
              if not (F.leq_approx s (I.effective_delta tr.instance i)) then
                raise (Bad (Printf.sprintf "task %d: share above cap" i));
              if F.sign s < 0 then raise (Bad (Printf.sprintf "task %d: negative share" i)))
            r.segments)
        tr.records;
      (* Volumes. *)
      let pv = processed_volume tr in
      Array.iteri
        (fun i v ->
          if not (F.equal_approx v tr.instance.T.tasks.(i).T.volume) then
            raise (Bad (Printf.sprintf "task %d: volume mismatch" i)))
        pv;
      (* Capacity at segment boundaries (shares are piecewise constant
         between consecutive boundaries). *)
      let boundaries =
        List.sort_uniq F.compare
          (List.concat_map
             (fun (r : record) -> List.concat_map (fun (a, b, _) -> [ a; b ]) r.segments)
             (Array.to_list tr.records))
      in
      let rec pairs = function
        | a :: (b :: _ as rest) ->
          let mid_lo = a and mid_hi = b in
          let total = ref F.zero in
          for i = 0 to n - 1 do
            List.iter
              (fun (s0, s1, s) ->
                if F.compare s0 mid_lo <= 0 && F.compare mid_hi s1 <= 0 then total := F.add !total s)
              tr.records.(i).segments
          done;
          if not (F.leq_approx !total tr.instance.T.procs) then
            raise (Bad "capacity exceeded between events");
          pairs rest
        | _ -> ()
      in
      pairs boundaries;
      Ok ()
    with Bad msg -> Error msg

  (** Collapse a zero-release trace to a column schedule so the core
      checkers/objective agree with the simulator's. *)
  let to_column_schedule (tr : trace) : T.column_schedule =
    let module S = Mwct_core.Schedule.Make (F) in
    let completion = Array.map (fun r -> r.completion) tr.records in
    let order = S.sorted_order completion in
    let finish = Array.map (fun i -> completion.(i)) order in
    let columns = S.columns_of_segments ~finish (Array.map (fun r -> r.segments) tr.records) in
    { T.instance = tr.instance; order; finish; columns }
end

(** Pre-applied engines. *)
module Float = Make (Mwct_field.Field.Float_field)

module Exact = Make (Mwct_rational.Rational.Rat_field)
