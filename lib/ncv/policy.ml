(** Non-clairvoyant allocation policies.

    A policy sees only what a real runtime would see: the set of
    currently-alive tasks with their weights and caps — never the
    remaining volumes. It returns a share (a fractional processor
    count) per alive task; the simulator guarantees the shares are
    clipped to the caps and to the total capacity before use, so a
    policy returning slightly-infeasible shares is still safe.

    [Wdeq] is Algorithm 1 of the paper; [Deq] its unweighted special
    case; [Equi] ignores caps in the fair share (then gets clipped) —
    the classical equipartition; [Priority_weight] gives everything to
    the heaviest alive tasks first (a greedy non-clairvoyant
    heuristic). *)

module Make (F : Mwct_field.Field.S) = struct
  module En = Mwct_runtime.Engine.Make (F)

  (** What a policy may observe about one alive task. *)
  type view = { id : int; weight : F.t; cap : F.t }

  type t = Wdeq | Deq | Equi | Priority_weight

  let name = function
    | Wdeq -> "wdeq"
    | Deq -> "deq"
    | Equi -> "equi"
    | Priority_weight -> "priority-weight"

  let all = [ Wdeq; Deq; Equi; Priority_weight ]

  (** Lookup by {!name}; [None] for unknown names. *)
  let of_name s = List.find_opt (fun p -> String.equal (name p) s) all

  (* Weighted water-filling fixpoint (Algorithm 1) over a residual
     pool: sort the views by saturation ratio [cap/weight] and
     binary-search the clipping frontier over prefix sums of caps and
     weights (the monotone-threshold argument of {!Mwct_core.Wdeq},
     DESIGN.md §6.1). [r]/[w] are the pool's residual capacity and
     weight. *)
  let frontier_shares r w (pool : view list) : (int * F.t) list =
    let arr = Array.of_list pool in
    Array.sort
      (fun a b ->
        let c = F.compare (F.mul a.cap b.weight) (F.mul b.cap a.weight) in
        if c <> 0 then c else Stdlib.compare a.id b.id)
      arr;
    let m = Array.length arr in
    let pd = Array.make (m + 1) F.zero and pw = Array.make (m + 1) F.zero in
    for k = 0 to m - 1 do
      pd.(k + 1) <- F.add pd.(k) arr.(k).cap;
      pw.(k + 1) <- F.add pw.(k) arr.(k).weight
    done;
    let sat_ok k =
      k = m
      ||
      let r' = F.sub r pd.(k) and w' = F.sub w pw.(k) in
      F.sign w' <= 0 || F.compare (F.mul arr.(k).cap w') (F.mul arr.(k).weight r') >= 0
    in
    let lo = ref 0 and hi = ref m in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if sat_ok mid then hi := mid else lo := mid + 1
    done;
    let ksat = !lo in
    let r' = F.sub r pd.(ksat) and w' = F.sub w pw.(ksat) in
    let positive_w = F.sign w' > 0 in
    List.init m (fun k ->
        let v = arr.(k) in
        ( v.id,
          if k < ksat then v.cap
          else if positive_w then F.div (F.mul v.weight r') w'
          else F.zero ))

  (* Adaptive WDEQ shares: on real view sets the clipping fixpoint
     almost always settles within a round or two, and a plain
     List.partition round is cheaper than a fresh sort — so run the
     iterative fixpoint with a small round budget and fall back to the
     sorted frontier (worst-case O(n log n) instead of the fixpoint's
     O(n²)) only if clipping cascades. Both paths compute the same
     fixpoint. *)
  let wdeq_shares capacity (views : view list) : (int * F.t) list =
    let rec go budget unsat saturated r w =
      if budget = 0 then List.rev_append saturated (frontier_shares r w unsat)
      else begin
        let violating, rest =
          List.partition (fun v -> F.compare (F.mul v.cap w) (F.mul v.weight r) < 0) unsat
        in
        match violating with
        | [] ->
          List.rev_append saturated
            (List.map
               (fun v -> (v.id, if F.sign w > 0 then F.div (F.mul v.weight r) w else F.zero))
               rest)
        | _ ->
          let r' = List.fold_left (fun acc v -> F.sub acc v.cap) r violating in
          let w' = List.fold_left (fun acc v -> F.sub acc v.weight) w violating in
          go (budget - 1) rest
            (List.rev_append (List.map (fun v -> (v.id, v.cap)) violating) saturated)
            r' w'
      end
    in
    let w0 = List.fold_left (fun acc v -> F.add acc v.weight) F.zero views in
    go 2 views [] capacity w0

  (** [shares policy ~capacity views] — the allocation for this
      instant. Always returns every alive id exactly once, with
      non-negative shares summing to at most [capacity]. *)
  let shares (policy : t) ~(capacity : F.t) (views : view list) : (int * F.t) list =
    match views with
    | [] -> []
    | _ -> (
      match policy with
      | Wdeq -> wdeq_shares capacity views
      | Deq ->
        let unw = List.map (fun v -> { v with weight = F.one }) views in
        wdeq_shares capacity unw
      | Equi ->
        (* Plain 1/n share clipped to the cap; surplus is wasted (the
           point of comparing against DEQ). *)
        let fair = F.div capacity (F.of_int (List.length views)) in
        List.map (fun v -> (v.id, F.min fair v.cap)) views
      | Priority_weight ->
        (* Heaviest first, each up to its cap, until capacity runs out. *)
        let sorted =
          List.sort (fun a b ->
              let c = F.compare b.weight a.weight in
              if c <> 0 then c else Stdlib.compare a.id b.id)
            views
        in
        let remaining = ref capacity in
        List.map
          (fun v ->
            let give = F.min v.cap !remaining in
            let give = F.max F.zero give in
            remaining := F.sub !remaining give;
            (v.id, give))
          sorted)

  (** The policy as the online runtime's share function — the bridge
      between this module's view records and
      {!Mwct_runtime.Engine.Make}. Applicative functors keep the field
      types shared, so no conversion beyond the record relabeling. *)
  let engine_policy (p : t) : En.policy =
   fun ~capacity views ->
    shares p ~capacity
      (List.map (fun (v : En.view) -> { id = v.En.id; weight = v.En.weight; cap = v.En.cap }) views)

  (** Incremental (kinetic) WDEQ/DEQ: the saturation-ratio frontier
      maintained across events instead of rebuilt per reshare.

      {!wdeq_shares} is two [List.partition] rounds in id order plus —
      only when clipping cascades — a frontier over the residual pool
      sorted by the saturation ratio [cap/weight]. The partitions are
      cheap linear sweeps, but the fallback sort is the O(n log n) term
      paid on every reshare. Here the ratio order is {e kinetic} state:
      a slot-indexed sorted array updated by binary-search
      insert/remove as tasks arrive and leave (O(n) blit per event),
      so a reshare is pure linear sweeps — the frontier order is read
      off the maintained array (the comparator is a strict total order,
      ids breaking ties, so the maintained order restricted to any
      subset {e is} the fresh sort {!frontier_shares} would compute).

      Bit-identity with {!wdeq_shares} is the contract: same partition
      predicates in the same id order, the same sequential residual
      folds, the same fresh prefix sums and binary-searched clipping
      frontier — verified term by term by the differential tests. *)
  module Incremental = struct
    type state = {
      use_weights : bool;  (** [false] maps every weight to [F.one] (DEQ) *)
      (* slot-indexed task attributes, mirroring the engine's columns *)
      mutable w : F.t array;
      mutable d : F.t array;
      mutable ids : int array;
      (* the kinetic frontier: alive slots sorted by [d/w] ratio, id tie-break *)
      mutable rank : int array;
      mutable n : int;
      (* reshare scratch (no allocation per call once grown) *)
      mutable status : int array;  (* 0 unsaturated, 1 round-1 clip, 2 round-2 clip *)
      mutable rest2 : int array;  (* residual pool in rank order *)
      mutable pd : F.t array;  (* prefix caps over [rest2] *)
      mutable pw : F.t array;  (* prefix weights over [rest2] *)
    }

    let create ~use_weights () =
      let n = 64 in
      {
        use_weights;
        w = Array.make n F.zero;
        d = Array.make n F.zero;
        ids = Array.make n 0;
        rank = Array.make n 0;
        n = 0;
        status = Array.make n 0;
        rest2 = Array.make n 0;
        pd = Array.make (n + 1) F.zero;
        pw = Array.make (n + 1) F.zero;
      }

    let ensure st slot =
      let len = Array.length st.w in
      if slot >= len then begin
        let m = Stdlib.max (2 * len) (slot + 1) in
        let g z a = let b = Array.make m z in Array.blit a 0 b 0 len; b in
        st.w <- g F.zero st.w;
        st.d <- g F.zero st.d;
        st.ids <- g 0 st.ids;
        st.rank <- g 0 st.rank;
        st.status <- g 0 st.status;
        st.rest2 <- g 0 st.rest2;
        st.pd <- (let b = Array.make (m + 1) F.zero in Array.blit st.pd 0 b 0 (len + 1); b);
        st.pw <- (let b = Array.make (m + 1) F.zero in Array.blit st.pw 0 b 0 (len + 1); b)
      end

    (* The frontier order: strict total (ids are unique while alive),
       exactly {!frontier_shares}'s comparator. *)
    let cmp st a b =
      let c = F.compare (F.mul st.d.(a) st.w.(b)) (F.mul st.d.(b) st.w.(a)) in
      if c <> 0 then c else Stdlib.compare st.ids.(a) st.ids.(b)

    let add st ~slot ~id ~weight ~cap =
      ensure st slot;
      st.w.(slot) <- (if st.use_weights then weight else F.one);
      st.d.(slot) <- cap;
      st.ids.(slot) <- id;
      let lo = ref 0 and hi = ref st.n in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if cmp st st.rank.(mid) slot < 0 then lo := mid + 1 else hi := mid
      done;
      let pos = !lo in
      Array.blit st.rank pos st.rank (pos + 1) (st.n - pos);
      st.rank.(pos) <- slot;
      st.n <- st.n + 1

    let remove st ~slot =
      let lo = ref 0 and hi = ref (st.n - 1) in
      let pos = ref (-1) in
      while !pos < 0 && !lo <= !hi do
        let mid = (!lo + !hi) / 2 in
        let c = cmp st st.rank.(mid) slot in
        if c = 0 then pos := mid else if c < 0 then lo := mid + 1 else hi := mid - 1
      done;
      let pos = !pos in
      if pos >= 0 then begin
        Array.blit st.rank (pos + 1) st.rank pos (st.n - 1 - pos);
        st.n <- st.n - 1
      end

    (* Replicates [wdeq_shares capacity views] with [views] the [n]
       slots of [by_id] in ascending-id order: fills [share] (slot-
       indexed) and [order] (output order — clipped round 1 in id
       order, then clipped round 2 in id order, then the frontier pool
       in ratio order), exactly the list the adaptive kernel returns. *)
    let shares_into st ~capacity ~n ~(by_id : int array) ~(share : F.t array) ~(order : int array)
        =
      if n > 0 then begin
        let w0 = ref F.zero in
        for i = 0 to n - 1 do
          w0 := F.add !w0 st.w.(by_id.(i))
        done;
        let w0 = !w0 in
        (* round 1: who clips at the fair share r0/w0? *)
        let nv1 = ref 0 in
        for i = 0 to n - 1 do
          let s = by_id.(i) in
          if F.compare (F.mul st.d.(s) w0) (F.mul st.w.(s) capacity) < 0 then begin
            st.status.(s) <- 1;
            incr nv1
          end
          else st.status.(s) <- 0
        done;
        if !nv1 = 0 then begin
          (* nobody clips: plain weighted equipartition, id order *)
          let pos = F.sign w0 > 0 in
          for i = 0 to n - 1 do
            let s = by_id.(i) in
            order.(i) <- s;
            share.(s) <- (if pos then F.div (F.mul st.w.(s) capacity) w0 else F.zero)
          done
        end
        else begin
          let r1 = ref capacity and w1 = ref w0 in
          for i = 0 to n - 1 do
            let s = by_id.(i) in
            if st.status.(s) = 1 then begin
              r1 := F.sub !r1 st.d.(s);
              w1 := F.sub !w1 st.w.(s)
            end
          done;
          let r1 = !r1 and w1 = !w1 in
          (* round 2 over the survivors *)
          let nv2 = ref 0 in
          for i = 0 to n - 1 do
            let s = by_id.(i) in
            if st.status.(s) = 0 && F.compare (F.mul st.d.(s) w1) (F.mul st.w.(s) r1) < 0 then begin
              st.status.(s) <- 2;
              incr nv2
            end
          done;
          let j = ref 0 in
          for i = 0 to n - 1 do
            let s = by_id.(i) in
            if st.status.(s) = 1 then begin
              order.(!j) <- s;
              incr j;
              share.(s) <- st.d.(s)
            end
          done;
          if !nv2 = 0 then begin
            (* round 2 settles: survivors share the residual, id order *)
            let pos = F.sign w1 > 0 in
            for i = 0 to n - 1 do
              let s = by_id.(i) in
              if st.status.(s) = 0 then begin
                order.(!j) <- s;
                incr j;
                share.(s) <- (if pos then F.div (F.mul st.w.(s) r1) w1 else F.zero)
              end
            done
          end
          else begin
            (* cascade: clip round 2 (id order), frontier on the rest *)
            let r2 = ref r1 and w2 = ref w1 in
            for i = 0 to n - 1 do
              let s = by_id.(i) in
              if st.status.(s) = 2 then begin
                r2 := F.sub !r2 st.d.(s);
                w2 := F.sub !w2 st.w.(s)
              end
            done;
            let r2 = !r2 and w2 = !w2 in
            for i = 0 to n - 1 do
              let s = by_id.(i) in
              if st.status.(s) = 2 then begin
                order.(!j) <- s;
                incr j;
                share.(s) <- st.d.(s)
              end
            done;
            (* the residual pool in ratio order, read off the kinetic
               array instead of sorted afresh *)
            let m = ref 0 in
            for k = 0 to st.n - 1 do
              let s = st.rank.(k) in
              if st.status.(s) = 0 then begin
                st.rest2.(!m) <- s;
                incr m
              end
            done;
            let m = !m in
            st.pd.(0) <- F.zero;
            st.pw.(0) <- F.zero;
            for k = 0 to m - 1 do
              let s = st.rest2.(k) in
              st.pd.(k + 1) <- F.add st.pd.(k) st.d.(s);
              st.pw.(k + 1) <- F.add st.pw.(k) st.w.(s)
            done;
            let sat_ok k =
              k = m
              ||
              let s = st.rest2.(k) in
              let r' = F.sub r2 st.pd.(k) and w' = F.sub w2 st.pw.(k) in
              F.sign w' <= 0 || F.compare (F.mul st.d.(s) w') (F.mul st.w.(s) r') >= 0
            in
            let lo = ref 0 and hi = ref m in
            while !lo < !hi do
              let mid = (!lo + !hi) / 2 in
              if sat_ok mid then hi := mid else lo := mid + 1
            done;
            let ksat = !lo in
            let r' = F.sub r2 st.pd.(ksat) and w' = F.sub w2 st.pw.(ksat) in
            let pos = F.sign w' > 0 in
            for k = 0 to m - 1 do
              let s = st.rest2.(k) in
              order.(!j) <- s;
              incr j;
              share.(s) <-
                (if k < ksat then st.d.(s)
                 else if pos then F.div (F.mul st.w.(s) r') w'
                 else F.zero)
            done
          end
        end
      end

    let kinetic ~use_weights () : En.kinetic =
      let st = create ~use_weights () in
      {
        En.k_add = (fun ~slot ~id ~weight ~cap -> add st ~slot ~id ~weight ~cap);
        En.k_remove = (fun ~slot -> remove st ~slot);
        En.k_shares =
          (fun ~capacity ~n ~by_id ~share ~order -> shares_into st ~capacity ~n ~by_id ~share ~order);
      }
  end

  (** The incremental counterpart of {!engine_policy}, for the engine's
      [?kinetic] slot — a fresh kinetic state per call (states are
      per-engine). [None] for policies without an incremental rule
      (they fall back to the list path). *)
  let engine_kinetic (p : t) : En.kinetic option =
    match p with
    | Wdeq -> Some (Incremental.kinetic ~use_weights:true ())
    | Deq -> Some (Incremental.kinetic ~use_weights:false ())
    | Equi | Priority_weight -> None

  (** One-shot run of the incremental rule over a view list: builds a
      fresh kinetic state (slot [i] = the [i]-th view), reshares once,
      and returns the output list. Differentially testable against
      [shares p ~capacity (views sorted by id)] — the engine always
      feeds views in ascending-id order, so that is the order the
      contract is stated in. [None] for policies without an incremental
      rule. *)
  let shares_incremental (p : t) ~(capacity : F.t) (views : view list) : (int * F.t) list option
      =
    match p with
    | Equi | Priority_weight -> None
    | Wdeq | Deq ->
      let st = Incremental.create ~use_weights:(p = Wdeq) () in
      List.iteri (fun i v -> Incremental.add st ~slot:i ~id:v.id ~weight:v.weight ~cap:v.cap) views;
      let n = List.length views in
      let by_id = Array.init n (fun i -> i) in
      Array.sort (fun a b -> Stdlib.compare st.Incremental.ids.(a) st.Incremental.ids.(b)) by_id;
      let share = Array.make (Stdlib.max n 1) F.zero in
      let order = Array.make (Stdlib.max n 1) 0 in
      Incremental.shares_into st ~capacity ~n ~by_id ~share ~order;
      Some
        (List.init n (fun k ->
             let s = order.(k) in
             (st.Incremental.ids.(s), share.(s))))
end
