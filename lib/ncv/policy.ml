(** Non-clairvoyant allocation policies.

    A policy sees only what a real runtime would see: the set of
    currently-alive tasks with their weights and caps — never the
    remaining volumes. It returns a share (a fractional processor
    count) per alive task; the simulator guarantees the shares are
    clipped to the caps and to the total capacity before use, so a
    policy returning slightly-infeasible shares is still safe.

    [Wdeq] is Algorithm 1 of the paper; [Deq] its unweighted special
    case; [Equi] ignores caps in the fair share (then gets clipped) —
    the classical equipartition; [Priority_weight] gives everything to
    the heaviest alive tasks first (a greedy non-clairvoyant
    heuristic). *)

module Make (F : Mwct_field.Field.S) = struct
  module En = Mwct_runtime.Engine.Make (F)

  (** What a policy may observe about one alive task. *)
  type view = { id : int; weight : F.t; cap : F.t }

  type t = Wdeq | Deq | Equi | Priority_weight

  let name = function
    | Wdeq -> "wdeq"
    | Deq -> "deq"
    | Equi -> "equi"
    | Priority_weight -> "priority-weight"

  let all = [ Wdeq; Deq; Equi; Priority_weight ]

  (** Lookup by {!name}; [None] for unknown names. *)
  let of_name s = List.find_opt (fun p -> String.equal (name p) s) all

  (* Weighted water-filling fixpoint (Algorithm 1) over a residual
     pool: sort the views by saturation ratio [cap/weight] and
     binary-search the clipping frontier over prefix sums of caps and
     weights (the monotone-threshold argument of {!Mwct_core.Wdeq},
     DESIGN.md §6.1). [r]/[w] are the pool's residual capacity and
     weight. *)
  let frontier_shares r w (pool : view list) : (int * F.t) list =
    let arr = Array.of_list pool in
    Array.sort
      (fun a b ->
        let c = F.compare (F.mul a.cap b.weight) (F.mul b.cap a.weight) in
        if c <> 0 then c else Stdlib.compare a.id b.id)
      arr;
    let m = Array.length arr in
    let pd = Array.make (m + 1) F.zero and pw = Array.make (m + 1) F.zero in
    for k = 0 to m - 1 do
      pd.(k + 1) <- F.add pd.(k) arr.(k).cap;
      pw.(k + 1) <- F.add pw.(k) arr.(k).weight
    done;
    let sat_ok k =
      k = m
      ||
      let r' = F.sub r pd.(k) and w' = F.sub w pw.(k) in
      F.sign w' <= 0 || F.compare (F.mul arr.(k).cap w') (F.mul arr.(k).weight r') >= 0
    in
    let lo = ref 0 and hi = ref m in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if sat_ok mid then hi := mid else lo := mid + 1
    done;
    let ksat = !lo in
    let r' = F.sub r pd.(ksat) and w' = F.sub w pw.(ksat) in
    let positive_w = F.sign w' > 0 in
    List.init m (fun k ->
        let v = arr.(k) in
        ( v.id,
          if k < ksat then v.cap
          else if positive_w then F.div (F.mul v.weight r') w'
          else F.zero ))

  (* Adaptive WDEQ shares: on real view sets the clipping fixpoint
     almost always settles within a round or two, and a plain
     List.partition round is cheaper than a fresh sort — so run the
     iterative fixpoint with a small round budget and fall back to the
     sorted frontier (worst-case O(n log n) instead of the fixpoint's
     O(n²)) only if clipping cascades. Both paths compute the same
     fixpoint. *)
  let wdeq_shares capacity (views : view list) : (int * F.t) list =
    let rec go budget unsat saturated r w =
      if budget = 0 then List.rev_append saturated (frontier_shares r w unsat)
      else begin
        let violating, rest =
          List.partition (fun v -> F.compare (F.mul v.cap w) (F.mul v.weight r) < 0) unsat
        in
        match violating with
        | [] ->
          List.rev_append saturated
            (List.map
               (fun v -> (v.id, if F.sign w > 0 then F.div (F.mul v.weight r) w else F.zero))
               rest)
        | _ ->
          let r' = List.fold_left (fun acc v -> F.sub acc v.cap) r violating in
          let w' = List.fold_left (fun acc v -> F.sub acc v.weight) w violating in
          go (budget - 1) rest
            (List.rev_append (List.map (fun v -> (v.id, v.cap)) violating) saturated)
            r' w'
      end
    in
    let w0 = List.fold_left (fun acc v -> F.add acc v.weight) F.zero views in
    go 2 views [] capacity w0

  (** [shares policy ~capacity views] — the allocation for this
      instant. Always returns every alive id exactly once, with
      non-negative shares summing to at most [capacity]. *)
  let shares (policy : t) ~(capacity : F.t) (views : view list) : (int * F.t) list =
    match views with
    | [] -> []
    | _ -> (
      match policy with
      | Wdeq -> wdeq_shares capacity views
      | Deq ->
        let unw = List.map (fun v -> { v with weight = F.one }) views in
        wdeq_shares capacity unw
      | Equi ->
        (* Plain 1/n share clipped to the cap; surplus is wasted (the
           point of comparing against DEQ). *)
        let fair = F.div capacity (F.of_int (List.length views)) in
        List.map (fun v -> (v.id, F.min fair v.cap)) views
      | Priority_weight ->
        (* Heaviest first, each up to its cap, until capacity runs out. *)
        let sorted =
          List.sort (fun a b ->
              let c = F.compare b.weight a.weight in
              if c <> 0 then c else Stdlib.compare a.id b.id)
            views
        in
        let remaining = ref capacity in
        List.map
          (fun v ->
            let give = F.min v.cap !remaining in
            let give = F.max F.zero give in
            remaining := F.sub !remaining give;
            (v.id, give))
          sorted)

  (** The policy as the online runtime's share function — the bridge
      between this module's view records and
      {!Mwct_runtime.Engine.Make}. Applicative functors keep the field
      types shared, so no conversion beyond the record relabeling. *)
  let engine_policy (p : t) : En.policy =
   fun ~capacity views ->
    shares p ~capacity
      (List.map (fun (v : En.view) -> { id = v.En.id; weight = v.En.weight; cap = v.En.cap }) views)
end
