(** Non-clairvoyant allocation policies: what a runtime that cannot see
    remaining volumes can decide at each instant. *)

module Make (F : Mwct_field.Field.S) : sig
  (** What a policy observes about one alive task. *)
  type view = { id : int; weight : F.t; cap : F.t }

  (** [Wdeq] — Algorithm 1 of the paper (weighted equipartition with
      cap clipping and surplus redistribution); [Deq] — its unweighted
      special case; [Equi] — plain [P/n] clipped to the cap, surplus
      wasted; [Priority_weight] — heaviest tasks first up to their
      caps. *)
  type t = Wdeq | Deq | Equi | Priority_weight

  val name : t -> string

  (** All policies, for sweeps. *)
  val all : t list

  (** Lookup by {!name}; [None] for unknown names. *)
  val of_name : string -> t option

  (** [shares policy ~capacity views]: one share per alive id;
      non-negative, within caps, summing to at most [capacity]. *)
  val shares : t -> capacity:F.t -> view list -> (int * F.t) list

  (** The policy as the online runtime's share function (the engine's
      pluggable policy slot). *)
  val engine_policy :
    t -> capacity:F.t -> Mwct_runtime.Engine.Make(F).view list -> (int * F.t) list

  (** Incremental (kinetic) WDEQ/DEQ: the saturation-ratio order kept
      sorted across task arrivals/departures, making each reshare a set
      of linear sweeps. Bit-identical to {!shares} by contract; the
      full kernel stays the oracle in the differential tests. *)
  module Incremental : sig
    type state

    (** [create ~use_weights ()] — an empty kinetic state;
        [use_weights:false] is DEQ (every weight treated as [1]). *)
    val create : use_weights:bool -> unit -> state

    (** Track a task. [slot] is the caller's dense index (the engine's
        slot number); [id] breaks ratio ties, keeping the order total. *)
    val add : state -> slot:int -> id:int -> weight:F.t -> cap:F.t -> unit

    (** Forget a task. [slot]'s attributes must still be those of the
        matching {!add} (the engine removes before any slot reuse). *)
    val remove : state -> slot:int -> unit

    (** Fill [share] (slot-indexed) and [order] (output order) for the
        [n] tracked slots listed in [by_id] (ascending external id) —
        the exact shares and output order of
        [shares ~capacity (views in by_id order)]. *)
    val shares_into :
      state ->
      capacity:F.t ->
      n:int ->
      by_id:int array ->
      share:F.t array ->
      order:int array ->
      unit

    (** A fresh state wrapped as the engine's kinetic interface. *)
    val kinetic : use_weights:bool -> unit -> Mwct_runtime.Engine.Make(F).kinetic
  end

  (** The incremental counterpart of {!engine_policy} for the engine's
      [?kinetic] slot (fresh state per call — states are per-engine);
      [None] for policies without an incremental rule. *)
  val engine_kinetic : t -> Mwct_runtime.Engine.Make(F).kinetic option

  (** One-shot incremental reshare over a view list, for differential
      testing against [shares] on the same views sorted by id (the
      order the engine feeds). [None] when the policy has no
      incremental rule. *)
  val shares_incremental : t -> capacity:F.t -> view list -> (int * F.t) list option
end
