(** Non-clairvoyant allocation policies: what a runtime that cannot see
    remaining volumes can decide at each instant. *)

module Make (F : Mwct_field.Field.S) : sig
  (** What a policy observes about one alive task. *)
  type view = { id : int; weight : F.t; cap : F.t }

  (** [Wdeq] — Algorithm 1 of the paper (weighted equipartition with
      cap clipping and surplus redistribution); [Deq] — its unweighted
      special case; [Equi] — plain [P/n] clipped to the cap, surplus
      wasted; [Priority_weight] — heaviest tasks first up to their
      caps. *)
  type t = Wdeq | Deq | Equi | Priority_weight

  val name : t -> string

  (** All policies, for sweeps. *)
  val all : t list

  (** Lookup by {!name}; [None] for unknown names. *)
  val of_name : string -> t option

  (** [shares policy ~capacity views]: one share per alive id;
      non-negative, within caps, summing to at most [capacity]. *)
  val shares : t -> capacity:F.t -> view list -> (int * F.t) list

  (** The policy as the online runtime's share function (the engine's
      pluggable policy slot). *)
  val engine_policy :
    t -> capacity:F.t -> Mwct_runtime.Engine.Make(F).view list -> (int * F.t) list
end
