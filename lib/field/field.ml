(* Runtime type witness: lets field-generic code recover [t = float] at
   functor-application time and branch into monomorphic float kernels
   (unboxed arithmetic over flat float arrays) without changing any
   functor arity. Fields other than the float one answer [Any]. *)
type 'a witness = Float : float witness | Any : 'a witness

module type S = sig
  type t

  (** Type identity of [t], for dispatching to specialized kernels. *)
  val witness : t witness

  val zero : t
  val one : t
  val of_int : int -> t
  val of_q : int -> int -> t
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val neg : t -> t
  val abs : t -> t
  val compare : t -> t -> int
  val equal : t -> t -> bool
  val sign : t -> int
  val min : t -> t -> t
  val max : t -> t -> t
  val to_float : t -> float
  val to_string : t -> string
  val repr : t -> string
  val of_repr : string -> t option
  val pp : Format.formatter -> t -> unit
  val leq_approx : t -> t -> bool
  val equal_approx : t -> t -> bool

  (** [sub_mul a b c] is [a - b*c]; [add_div a b c] is [a + b/c]
      ([Division_by_zero] when [c] is zero). Semantically the two-op
      composition — float fields must not contract to an FMA — but
      exact fields may canonicalize the fused expression once instead
      of once per operation. *)
  val sub_mul : t -> t -> t -> t

  val add_div : t -> t -> t -> t
end

module Ops (F : S) = struct
  let ( + ) = F.add
  let ( - ) = F.sub
  let ( * ) = F.mul
  let ( / ) = F.div
  let ( ~- ) = F.neg
  let ( = ) a b = F.equal a b
  let ( < ) a b = F.compare a b < 0
  let ( <= ) a b = F.compare a b <= 0
  let ( > ) a b = F.compare a b > 0
  let ( >= ) a b = F.compare a b >= 0
  let ( <> ) a b = not (F.equal a b)
  let sum l = List.fold_left F.add F.zero l

  let sum_up_to n f =
    let rec go acc i = if Stdlib.( >= ) i n then acc else go (F.add acc (f i)) (Stdlib.( + ) i 1) in
    go F.zero 0

  let sum_array a = Array.fold_left F.add F.zero a
end

module Float_field = struct
  type t = float

  let witness : t witness = Float
  let epsilon = 1e-9
  let zero = 0.
  let one = 1.
  let of_int = float_of_int
  let of_q n d = if d = 0 then raise Division_by_zero else float_of_int n /. float_of_int d
  let add = ( +. )
  let sub = ( -. )
  let mul = ( *. )
  let div a b = if b = 0. then raise Division_by_zero else a /. b
  let neg = Stdlib.( ~-. )
  let abs = Float.abs
  let compare = Float.compare
  let equal = Float.equal
  let sign x = if x > 0. then 1 else if x < 0. then -1 else 0
  let min = Float.min
  let max = Float.max
  let to_float x = x
  let to_string = string_of_float

  (* Hexadecimal floats round-trip exactly through float_of_string;
     decimal renderings (string_of_float's %.12g) do not. *)
  let repr x = Printf.sprintf "%h" x

  let of_repr s =
    match float_of_string_opt s with
    | Some x -> Some x
    | None -> (
      (* "p/q" ratio notation, for symmetry with the exact engine. *)
      match String.index_opt s '/' with
      | None -> None
      | Some i -> (
        let num = float_of_string_opt (String.sub s 0 i) in
        let den = float_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) in
        match (num, den) with
        | Some n, Some d when d <> 0. -> Some (n /. d)
        | _ -> None))
  let pp fmt x = Format.fprintf fmt "%g" x
  let leq_approx a b = a <= b +. epsilon
  let equal_approx a b = Float.abs (a -. b) <= epsilon

  (* Kept as the plain two-op sequence: OCaml never contracts to an
     FMA, so these are bit-identical to [sub (mul b c)] / [add (div b c)]. *)
  let sub_mul a b c = a -. (b *. c)
  let add_div a b c = if c = 0. then raise Division_by_zero else a +. (b /. c)
end
