module type S = sig
  type t

  val zero : t
  val one : t
  val of_int : int -> t
  val of_q : int -> int -> t
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val neg : t -> t
  val abs : t -> t
  val compare : t -> t -> int
  val equal : t -> t -> bool
  val sign : t -> int
  val min : t -> t -> t
  val max : t -> t -> t
  val to_float : t -> float
  val to_string : t -> string
  val repr : t -> string
  val of_repr : string -> t option
  val pp : Format.formatter -> t -> unit
  val leq_approx : t -> t -> bool
  val equal_approx : t -> t -> bool
end

module Ops (F : S) = struct
  let ( + ) = F.add
  let ( - ) = F.sub
  let ( * ) = F.mul
  let ( / ) = F.div
  let ( ~- ) = F.neg
  let ( = ) a b = F.equal a b
  let ( < ) a b = F.compare a b < 0
  let ( <= ) a b = F.compare a b <= 0
  let ( > ) a b = F.compare a b > 0
  let ( >= ) a b = F.compare a b >= 0
  let ( <> ) a b = not (F.equal a b)
  let sum l = List.fold_left F.add F.zero l

  let sum_up_to n f =
    let rec go acc i = if Stdlib.( >= ) i n then acc else go (F.add acc (f i)) (Stdlib.( + ) i 1) in
    go F.zero 0

  let sum_array a = Array.fold_left F.add F.zero a
end

module Float_field = struct
  type t = float

  let epsilon = 1e-9
  let zero = 0.
  let one = 1.
  let of_int = float_of_int
  let of_q n d = if d = 0 then raise Division_by_zero else float_of_int n /. float_of_int d
  let add = ( +. )
  let sub = ( -. )
  let mul = ( *. )
  let div a b = if b = 0. then raise Division_by_zero else a /. b
  let neg = Stdlib.( ~-. )
  let abs = Float.abs
  let compare = Float.compare
  let equal = Float.equal
  let sign x = if x > 0. then 1 else if x < 0. then -1 else 0
  let min = Float.min
  let max = Float.max
  let to_float x = x
  let to_string = string_of_float

  (* Hexadecimal floats round-trip exactly through float_of_string;
     decimal renderings (string_of_float's %.12g) do not. *)
  let repr x = Printf.sprintf "%h" x

  let of_repr s =
    match float_of_string_opt s with
    | Some x -> Some x
    | None -> (
      (* "p/q" ratio notation, for symmetry with the exact engine. *)
      match String.index_opt s '/' with
      | None -> None
      | Some i -> (
        let num = float_of_string_opt (String.sub s 0 i) in
        let den = float_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) in
        match (num, den) with
        | Some n, Some d when d <> 0. -> Some (n /. d)
        | _ -> None))
  let pp fmt x = Format.fprintf fmt "%g" x
  let leq_approx a b = a <= b +. epsilon
  let equal_approx a b = Float.abs (a -. b) <= epsilon
end
