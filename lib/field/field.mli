(** Ordered-field abstraction over which every scheduling algorithm of the
    library is written.

    The paper's algorithms (WDEQ, Water-Filling, Greedy, the Corollary-1
    linear program) only use field operations and comparisons, so they can
    be instantiated both with floating-point numbers (fast, approximate)
    and with exact rationals (slow, exact — the analogue of the paper's
    Sage verification). *)

(** Runtime type witness for a field's carrier. Matching a field's
    {!S.witness} against [Float] refines [t = float] in that branch,
    letting generic code dispatch into monomorphic float kernels
    (unboxed arithmetic over flat float arrays) while keeping every
    functor signature unchanged. All non-float fields answer [Any]. *)
type 'a witness = Float : float witness | Any : 'a witness

(** Signature of an ordered field with conversions. *)
module type S = sig
  type t

  (** Type identity of [t], for dispatching to specialized kernels. *)
  val witness : t witness

  val zero : t
  val one : t

  val of_int : int -> t

  (** [of_q num den] is the field element [num/den]. [den] must be
      non-zero. *)
  val of_q : int -> int -> t

  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t

  (** [div a b] divides. Raises [Division_by_zero] when [b] is zero. *)
  val div : t -> t -> t

  val neg : t -> t
  val abs : t -> t

  (** Total order compatible with the field operations. *)
  val compare : t -> t -> int

  val equal : t -> t -> bool

  (** [sign x] is [-1], [0] or [1]. *)
  val sign : t -> int

  val min : t -> t -> t
  val max : t -> t -> t

  val to_float : t -> float
  val to_string : t -> string

  (** [repr x] is an exact, machine-readable rendering:
      [of_repr (repr x)] reconstructs [x] bit-for-bit. The float field
      renders hexadecimal floats ([%h]); exact fields reuse their
      canonical [to_string]. Used by serialization layers (the runtime
      journal) that must survive a round trip without drift. *)
  val repr : t -> string

  (** Parse a {!repr} output. Also accepts the field's human notations:
      ["p/q"] ratios on both engines, decimal literals where the field
      can represent them exactly ([1.5] is [3/2]). [None] on anything
      else. *)
  val of_repr : string -> t option

  val pp : Format.formatter -> t -> unit

  (** [leq_approx a b] holds when [a <= b] up to the field's tolerance.
      Exact fields use the exact order; the float field allows an
      absolute slack of {!Float_field.epsilon}. Used only in validity
      checks, never in constructions. *)
  val leq_approx : t -> t -> bool

  (** [equal_approx a b] holds when [a = b] up to the field's
      tolerance. *)
  val equal_approx : t -> t -> bool

  (** [sub_mul a b c] is [a - b*c]. Semantically identical to the
      two-op composition — the float field must not contract to an FMA,
      so results are bit-for-bit those of [sub a (mul b c)] — but exact
      fields may canonicalize the fused expression once. The online
      engine's remaining-volume updates go through this. *)
  val sub_mul : t -> t -> t -> t

  (** [add_div a b c] is [a + b/c]; raises [Division_by_zero] when [c]
      is zero. Same contract as {!sub_mul}. The engine's completion
      estimates ([eta = now + remaining/share]) go through this. *)
  val add_div : t -> t -> t -> t
end

(** Derived infix operators and helpers for a field, for local [open]. *)
module Ops (F : S) : sig
  val ( + ) : F.t -> F.t -> F.t
  val ( - ) : F.t -> F.t -> F.t
  val ( * ) : F.t -> F.t -> F.t
  val ( / ) : F.t -> F.t -> F.t
  val ( ~- ) : F.t -> F.t
  val ( = ) : F.t -> F.t -> bool
  val ( < ) : F.t -> F.t -> bool
  val ( <= ) : F.t -> F.t -> bool
  val ( > ) : F.t -> F.t -> bool
  val ( >= ) : F.t -> F.t -> bool
  val ( <> ) : F.t -> F.t -> bool

  (** Sum of a list. *)
  val sum : F.t list -> F.t

  (** Sum of [f i] for [i] in [[0, n-1]]. *)
  val sum_up_to : int -> (int -> F.t) -> F.t

  (** Sum of an array. *)
  val sum_array : F.t array -> F.t
end

(** IEEE-754 double instantiation, with absolute tolerance
    {!Float_field.epsilon} in the approximate comparisons. *)
module Float_field : sig
  include S with type t = float

  (** Absolute tolerance used by [leq_approx] / [equal_approx]. *)
  val epsilon : float
end
