(** Uniform solver execution: run any registered solver and get one
    [report] — schedule, objective, makespan, the [A(I)]/[H(I)] lower
    bounds, ratio-to-bound, the structured {!Mwct_core.Schedule.Make.check}
    verdict and wall-clock timing. Every consumer (CLI, experiments,
    bench, tests) reads the same record instead of re-deriving the
    quantities by hand. *)

module Make (F : Mwct_field.Field.S) = struct
  module S = Solver.Make (F)
  module E = S.E

  type report = {
    solver : Solver.info;
    schedule : E.Types.column_schedule;
    meta : S.meta;
    objective : F.t;  (** [Σ w_i C_i] of the schedule *)
    makespan : F.t;
    squashed_area : F.t;  (** [A(I)] (Definition 5) *)
    height_bound : F.t;  (** [H(I)] (Definition 6) *)
    lower_bound : F.t;  (** [max (A(I)) (H(I))] — a bound on OPT *)
    ratio_to_bound : float option;
        (** [objective / lower_bound] as a float; [None] when the bound
            is zero (empty instances) *)
    check : (unit, E.Schedule.violation) result;
    elapsed_s : float;  (** wall-clock seconds spent in [solve] *)
  }

  (** Raised by {!run} when a solver is asked to schedule an instance
      outside its model — speedup curves without the
      {!Solver.General_speedup} capability, or dependency edges without
      {!Solver.Dag}. The message names both. *)
  exception Unsupported_model of string

  (** [supports solver inst]: can [solver] run on [inst]'s model?
      Linear independent instances run everywhere; curved instances
      need {!Solver.General_speedup}, precedence-constrained ones
      {!Solver.Dag}. *)
  let supports (solver : S.t) (inst : E.Types.instance) =
    ((not (E.Instance.has_curves inst)) || S.has_cap Solver.General_speedup solver)
    && ((not (E.Instance.has_deps inst)) || S.has_cap Solver.Dag solver)

  (** Run [solver] on [inst]. [~exact:true] makes the validity check
      strict (use with the rational engine). Only the [solve] call is
      timed; bounds and the check are recomputed outside the clock.
      Raises {!Unsupported_model} when the instance's model (speedup
      curves, dependency edges) exceeds the solver's capabilities. *)
  let run ?(exact = false) (solver : S.t) (inst : E.Types.instance) : report =
    if not (supports solver inst) then begin
      let caps =
        match Solver.caps_to_string solver.S.info with "" -> "-" | s -> s
      in
      let msg =
        if E.Instance.has_deps inst && not (S.has_cap Solver.Dag solver) then
          Printf.sprintf
            "algorithm %S does not handle precedence (caps: %s); this instance has dependency \
             edges — pick a dag-capable algorithm"
            solver.S.info.Solver.name caps
        else
          Printf.sprintf
            "algorithm %S supports only the linear rate model (caps: %s); this instance has \
             speedup curves — pick a general-speedup algorithm"
            solver.S.info.Solver.name caps
      in
      raise (Unsupported_model msg)
    end;
    let t0 = Unix.gettimeofday () in
    let schedule, meta = solver.S.solve inst in
    let elapsed_s = Unix.gettimeofday () -. t0 in
    let objective = E.Schedule.weighted_completion_time schedule in
    let squashed_area = E.Lower_bounds.squashed_area inst in
    let height_bound = E.Lower_bounds.height_bound inst in
    let lower_bound = F.max squashed_area height_bound in
    let ratio_to_bound =
      if F.sign lower_bound > 0 then Some (F.to_float objective /. F.to_float lower_bound) else None
    in
    {
      solver = solver.S.info;
      schedule;
      meta;
      objective;
      makespan = E.Schedule.makespan schedule;
      squashed_area;
      height_bound;
      lower_bound;
      ratio_to_bound;
      check = E.Schedule.check ~exact schedule;
      elapsed_s;
    }

  let valid (r : report) = match r.check with Ok () -> true | Error _ -> false

  (* ---------- JSON report ---------- *)

  let json_escape s =
    let buf = Buffer.create (String.length s) in
    String.iter
      (function
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let json_num x = Printf.sprintf "%.12g" x

  (** Machine-readable report. [~engine] labels the arithmetic
      ("float" / "exact"); numeric fields carry both a decimal [float]
      rendering and the field's own [*_repr] string (exact rationals
      survive the round trip). Timing is the only non-deterministic
      field. *)
  let to_json ~engine (r : report) : string =
    let n = Array.length r.schedule.E.Types.instance.E.Types.tasks in
    (* Per-task completion times in task-index order: task [order.(j)]
       completes at [finish.(j)]. *)
    let completions =
      let c = Array.make n F.zero in
      Array.iteri (fun j ti -> c.(ti) <- r.schedule.E.Types.finish.(j)) r.schedule.E.Types.order;
      c
    in
    let fields =
      [
        ("algo", Printf.sprintf "\"%s\"" (json_escape r.solver.Solver.name));
        ( "caps",
          Printf.sprintf "[%s]"
            (String.concat ", "
               (List.map (fun c -> Printf.sprintf "\"%s\"" (Solver.cap_to_string c)) r.solver.Solver.caps))
        );
        ("engine", Printf.sprintf "\"%s\"" (json_escape engine));
        ("tasks", string_of_int n);
        ("procs", json_num (F.to_float r.schedule.E.Types.instance.E.Types.procs));
        ("objective", json_num (F.to_float r.objective));
        ("objective_repr", Printf.sprintf "\"%s\"" (json_escape (F.to_string r.objective)));
        ("makespan", json_num (F.to_float r.makespan));
        ("makespan_repr", Printf.sprintf "\"%s\"" (json_escape (F.to_string r.makespan)));
        ( "completions",
          Printf.sprintf "[%s]"
            (String.concat ", "
               (List.map (fun c -> json_num (F.to_float c)) (Array.to_list completions))) );
        ( "completions_repr",
          Printf.sprintf "[%s]"
            (String.concat ", "
               (List.map
                  (fun c -> Printf.sprintf "\"%s\"" (json_escape (F.to_string c)))
                  (Array.to_list completions))) );
        ("squashed_area", json_num (F.to_float r.squashed_area));
        ("height_bound", json_num (F.to_float r.height_bound));
        ("lower_bound", json_num (F.to_float r.lower_bound));
        ("ratio_to_bound", match r.ratio_to_bound with Some x -> json_num x | None -> "null");
        ("valid", string_of_bool (valid r));
        ( "violation",
          match r.check with
          | Ok () -> "null"
          | Error v -> Printf.sprintf "\"%s\"" (json_escape (E.Schedule.violation_to_string v)) );
        ("elapsed_s", json_num r.elapsed_s);
      ]
    in
    "{\n"
    ^ String.concat ",\n" (List.map (fun (k, v) -> Printf.sprintf "  \"%s\": %s" k v) fields)
    ^ "\n}\n"
end

(** Pre-applied drivers over the two standard engines. *)
module Float = Make (Mwct_field.Field.Float_field)

module Exact = Make (Mwct_rational.Rational.Rat_field)
