(** Field-polymorphic solver registry: the single dispatch path shared
    by the CLI, the experiment battery, the benchmark harness and the
    property tests.

    A {e solver} is a packed value [{ info; solve }] — a name, a doc
    line, capability flags, and a function from an instance to a column
    schedule plus per-run metadata. [Make (F)] instantiates the whole
    registry over a field, so every registered algorithm is available
    on both engines with the types lined up (functors are applicative,
    exactly as in {!Mwct_core.Engine}).

    Adding an algorithm is {e one} registration here; the CLI enum,
    the bench loop, the cross-engine property tests and the experiment
    lookups all pick it up automatically. Capability flags let
    consumers filter: the bench loop shrinks instances for
    {!Enumerative} solvers, the CLI documents {!Needs_lp}, experiments
    select {!Non_clairvoyant} policies.

    Field-neutral metadata ([infos], [names], [find_info]) is exposed
    at the top level for consumers that only need names and flags
    (argument parsers, documentation generators). *)

(** Capability flags — coarse facts consumers dispatch on.

    - [Needs_lp]: runs the Corollary-1 LP (simplex) internally.
    - [Exact_recommended]: float results can be off by more than test
      tolerance on adversarial inputs; prefer the exact engine for
      ground truth.
    - [Non_clairvoyant]: never reads volumes except to locate the next
      completion event — an online policy in the paper's sense.
    - [Enumerative]: exponential in [n] (order enumeration); callers
      must keep [n] small (the LP enumeration guard is 8).
    - [General_speedup]: handles the generalized rate model (per-task
      concave speedup curves); solvers without it are restricted to
      the paper's linear law and {!Driver.Make.run} refuses curved
      instances for them.
    - [Dag]: handles precedence-constrained instances (dependency
      edges); {!Driver.Make.run} refuses instances with edges for
      solvers without it. *)
type cap = Needs_lp | Exact_recommended | Non_clairvoyant | Enumerative | General_speedup | Dag

let cap_to_string = function
  | Needs_lp -> "needs-lp"
  | Exact_recommended -> "exact-recommended"
  | Non_clairvoyant -> "non-clairvoyant"
  | Enumerative -> "enumerative"
  | General_speedup -> "general-speedup"
  | Dag -> "dag"

(** Field-neutral identity of a registered solver. *)
type info = { name : string; doc : string; caps : cap list }

let caps_to_string (i : info) = String.concat "," (List.map cap_to_string i.caps)

module Make (F : Mwct_field.Field.S) = struct
  module E = Mwct_core.Engine.Make (F)

  (** Per-run metadata beyond the schedule: WDEQ's Lemma-2 volume
      split, and the completion/insertion order for order-based
      solvers. Fields are [None] when the solver has nothing to
      report. *)
  type meta = {
    wdeq_diagnostics : E.Wdeq.diagnostics option;
    order : int array option;
  }

  let no_meta = { wdeq_diagnostics = None; order = None }

  type t = {
    info : info;
    solve : E.Types.instance -> E.Types.column_schedule * meta;
  }

  let make ~name ~doc ?(caps = []) solve = { info = { name; doc; caps }; solve }

  let of_greedy_order ~name ~doc ?caps order_of =
    make ~name ~doc ?caps (fun inst ->
        let sigma = order_of inst in
        (E.Greedy.run inst sigma, { no_meta with order = Some sigma }))

  let wdeq =
    make ~name:"wdeq" ~doc:"Weighted Dynamic EQuipartition (Algorithm 1), the 2-approximation"
      ~caps:[ Non_clairvoyant; General_speedup ] (fun inst ->
        let s, d = E.Wdeq.wdeq inst in
        (s, { no_meta with wdeq_diagnostics = Some d }))

  let deq =
    make ~name:"deq" ~doc:"unweighted Dynamic EQuipartition (Deng et al.)"
      ~caps:[ Non_clairvoyant; General_speedup ]
      (fun inst ->
        let s, d = E.Wdeq.deq inst in
        (s, { no_meta with wdeq_diagnostics = Some d }))

  let greedy_smith =
    of_greedy_order ~name:"greedy-smith" ~doc:"Greedy (Algorithm 3) in Smith/LRF order (largest w/V first)"
      ~caps:[ General_speedup ] E.Orderings.smith

  let greedy_identity =
    of_greedy_order ~name:"greedy" ~doc:"Greedy (Algorithm 3) in input order" ~caps:[ General_speedup ]
      (fun inst -> E.Orderings.identity (Array.length inst.E.Types.tasks))

  let greedy_height =
    of_greedy_order ~name:"greedy-height" ~doc:"Greedy in non-decreasing height V/min(delta,P) order"
      ~caps:[ General_speedup ] E.Orderings.shortest_height

  let greedy_ldf =
    of_greedy_order ~name:"greedy-ldf" ~doc:"Greedy in largest-delta-first order"
      ~caps:[ General_speedup ] E.Orderings.largest_delta

  let wf_cmax =
    make ~name:"wf-cmax"
      ~doc:"Water-Filling schedule at the optimal makespan T* (minimizes Cmax, not sum w.C)"
      ~caps:[ General_speedup ] (fun inst -> (E.Makespan.schedule inst, no_meta))

  let best_greedy =
    make ~name:"best-greedy" ~doc:"best Greedy over all n! insertion orders (Section V-A quantity)"
      ~caps:[ Enumerative ] (fun inst ->
        let _, sigma = E.Lp_schedule.best_greedy inst in
        (E.Greedy.run inst sigma, { no_meta with order = Some sigma }))

  let wdeq_dag =
    make ~name:"wdeq-dag"
      ~doc:"frontier-WDEQ over the precedence DAG (weights shared over ready tasks; GGKS)"
      ~caps:[ Non_clairvoyant; General_speedup; Dag ] (fun inst ->
        let s, d = E.Dag.wdeq inst in
        (s, { no_meta with wdeq_diagnostics = Some d }))

  let deq_dag =
    make ~name:"deq-dag" ~doc:"unweighted frontier equipartition over the precedence DAG"
      ~caps:[ Non_clairvoyant; General_speedup; Dag ] (fun inst ->
        let s, d = E.Dag.deq inst in
        (s, { no_meta with wdeq_diagnostics = Some d }))

  let optimal =
    make ~name:"optimal" ~doc:"exact optimum: Corollary-1 LP over all n! completion orders (n <= 8)"
      ~caps:[ Needs_lp; Exact_recommended; Enumerative ] (fun inst ->
        let _, s = E.Lp_schedule.optimal inst in
        (s, { no_meta with order = Some s.E.Types.order }))

  (** The registry. Order is the presentation order everywhere
      ([--list-algos], bench, README). *)
  let all =
    [
      wdeq; deq; greedy_smith; greedy_identity; greedy_height; greedy_ldf; wf_cmax; best_greedy;
      optimal; wdeq_dag; deq_dag;
    ]

  let infos = List.map (fun s -> s.info) all
  let names = List.map (fun s -> s.info.name) all
  let find name = List.find_opt (fun s -> s.info.name = name) all

  (** [find_exn name] raises [Invalid_argument] on unknown names —
      for callers that already validated the name (CLI enums,
      experiment code naming registered solvers). *)
  let find_exn name =
    match find name with
    | Some s -> s
    | None ->
      invalid_arg
        (Printf.sprintf "Solver.find_exn: unknown solver %S (known: %s)" name (String.concat ", " names))

  let has_cap c (s : t) = List.mem c s.info.caps

  (** [solve_exn name inst] — registry lookup + run in one call. *)
  let solve_exn name inst = (find_exn name).solve inst

  (** Objective [Σ w_i C_i] of the named solver's schedule. *)
  let objective name inst = E.Schedule.weighted_completion_time (fst (solve_exn name inst))
end

(** Pre-applied registries, mirroring {!Mwct_core.Engine}. *)
module Float = Make (Mwct_field.Field.Float_field)

module Exact = Make (Mwct_rational.Rational.Rat_field)

(** Field-neutral registry metadata (identical on every field — the
    registrations are shared code). *)
let infos = Float.infos

let names = Float.names
let find_info name = List.find_opt (fun i -> i.name = name) infos

(** Field-neutral capability test on registry metadata — what the
    online runtime uses to decide whether a named algorithm may drive
    the event engine. *)
let info_has_cap c (i : info) = List.mem c i.caps

(** Names of the registered solvers usable as online policies
    ({!Non_clairvoyant} capability). *)
let non_clairvoyant_names =
  List.filter_map (fun i -> if info_has_cap Non_clairvoyant i then Some i.name else None) infos
