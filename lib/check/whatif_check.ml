(** Replay oracles for snapshot/fork and the what-if branch runner
    (DESIGN.md §16).

    Both oracles run on a {e deterministic} event stream derived from a
    field-neutral {!Mwct_core.Spec.t} ({!stream_of_spec}) — no extra
    randomness — so the differential driver can run them on every
    fuzzed spec and the standard spec shrinker minimizes their
    counterexamples like any other oracle's:

    - {!check_fork_identity} — fork invariance. For every event index
      [k] (0 through the stream length inclusive), replaying the first
      [k] events, taking {!Mwct_runtime.Engine.Make.snapshot}, forking,
      and replaying the unmodified suffix must reproduce the
      straight-line run's journal bytes and dump fingerprint exactly.
      A fork is a bit-faithful copy: its future is the parent's.
    - {!check_branch_objective} — report/journal agreement. Running the
      branch runner with a deterministic mutation set (straight-line,
      policy switch, tenant scaling, event injection), every branch's
      own journal must {!Mwct_runtime.Journal.Make.replay} to the
      Σw·C and Σw·(C−r) figures its report line claims, and the
      reported ΔΣw·C must equal branch-minus-baseline. The report is
      priced off live engines; the journal is the persistent record —
      they must tell the same story.

    Streams run under WDEQ with the incremental frontier, the
    production configuration; branch policy switches exercise DEQ. *)

open Mwct_core

module Make (F : Mwct_field.Field.S) = struct
  module B = Mwct_runtime.Branch.Make (F)
  module En = B.En
  module J = B.J
  module P = Mwct_ncv.Policy.Make (F)

  let policy () = P.engine_policy P.Wdeq
  let kinetic () = P.engine_kinetic P.Wdeq

  let resolve name =
    if name = "wdeq" then Some (P.engine_policy P.Wdeq)
    else if name = "deq" then Some (P.engine_policy P.Deq)
    else None

  let kinetic_for name =
    if name = "wdeq" then P.engine_kinetic P.Wdeq
    else if name = "deq" then P.engine_kinetic P.Deq
    else None

  let of_rat (r : Spec.rat) = F.of_q r.Spec.num r.Spec.den

  (** The spec's tasks as a tenant-clustered online stream: task [i]
      submits with id [i] (tenant = id mod 4 downstream), curves and
      dependency edges carried over verbatim; every other submission is
      followed by a quarter-tick advance, and every fifth {e childless}
      task is cancelled right after submission (its cascade closes
      exactly itself, so later dependency edges stay resolvable). Ends
      in [Drain]. Purely a function of the spec — shrinking the spec
      shrinks the stream. *)
  let stream_of_spec (spec : Spec.t) : En.event list =
    let tasks = spec.Spec.tasks in
    let n = Array.length tasks in
    let has_child = Array.make n false in
    Array.iter (fun (t : Spec.task) -> List.iter (fun d -> has_child.(d) <- true) t.Spec.deps) tasks;
    let buf = ref [] in
    let push e = buf := e :: !buf in
    Array.iteri
      (fun i (t : Spec.task) ->
        let delta = max 1 t.Spec.delta in
        let cap =
          (* With a curve the last breakpoint sits at delta, so the cap
             stays there; linear tasks honour the spec's clamp. *)
          match t.Spec.capacity with
          | Some c when t.Spec.speedup = [] -> min (max 1 c) delta
          | _ -> delta
        in
        let speedup =
          match t.Spec.speedup with
          | [] -> None
          | bps ->
            Some
              ( Array.of_list (List.map (fun (x, _) -> of_rat x) bps),
                Array.of_list (List.map (fun (_, y) -> of_rat y) bps) )
        in
        push
          (En.Submit
             {
               id = i;
               volume = of_rat t.Spec.volume;
               weight = of_rat t.Spec.weight;
               cap = F.of_int cap;
               speedup;
               deps = t.Spec.deps;
             });
        if i mod 5 = 4 && not has_child.(i) then push (En.Cancel i)
        else if i mod 2 = 1 then push (En.Advance (F.of_q 1 4)))
      tasks;
    List.rev (En.Drain :: !buf)

  let ( let* ) = Result.bind

  (* Apply events strictly, journaling each input and its completions
     into [lines] (reverse order) under the shared [seq] counter. *)
  let apply_all eng lines seq events : (unit, string) result =
    let emit e =
      lines := J.to_line ~seq:!seq e :: !lines;
      incr seq
    in
    let err = ref None in
    List.iteri
      (fun i ev ->
        if !err = None then
          match En.apply eng ev with
          | Ok notes ->
            emit (J.Input ev);
            List.iter
              (fun (nt : En.notification) -> emit (J.Output { id = nt.En.id; at = nt.En.at }))
              notes
          | Error e -> err := Some (Printf.sprintf "event %d: %s" i (En.error_to_string e)))
      events;
    match !err with Some m -> Error m | None -> Ok ()

  (* ---------- fork identity ---------- *)

  (** Fork at {e every} event index of the spec's stream and replay the
      unmodified suffix: journal bytes and dump fingerprint must match
      the straight-line run at each of them. The walker engine advances
      one event per fork point, so each index costs one fork plus one
      suffix replay. *)
  let check_fork_identity (spec : Spec.t) : (unit, string) result =
    let events = stream_of_spec spec in
    let capacity = F.of_int spec.Spec.procs in
    let start lines seq =
      lines := J.to_line ~seq:!seq (J.Init { capacity; policy = "wdeq" }) :: !lines;
      incr seq;
      En.create ~capacity ?kinetic:(kinetic ()) ~policy:(policy ()) ()
    in
    let blines = ref [] and bseq = ref 0 in
    let base = start blines bseq in
    let* () = Result.map_error (fun m -> "baseline: " ^ m) (apply_all base blines bseq events) in
    let base_lines = List.rev !blines and base_dump = En.dump base in
    let wlines = ref [] and wseq = ref 0 in
    let walker = start wlines wseq in
    let rec go k suffix =
      let forked = En.fork ?kinetic:(kinetic ()) (En.snapshot walker) in
      let flines = ref !wlines and fseq = ref !wseq in
      let* () =
        Result.map_error
          (fun m -> Printf.sprintf "fork at %d: suffix replay: %s" k m)
          (apply_all forked flines fseq suffix)
      in
      let* () =
        if List.rev !flines <> base_lines then
          Error (Printf.sprintf "fork at %d: journal bytes differ from the straight line" k)
        else if En.dump forked <> base_dump then
          Error (Printf.sprintf "fork at %d: dump fingerprint differs from the straight line" k)
        else Ok ()
      in
      match suffix with
      | [] -> Ok ()
      | ev :: rest ->
        let* () =
          Result.map_error
            (fun m -> Printf.sprintf "walker event %d: %s" k m)
            (apply_all walker wlines wseq [ ev ])
        in
        go (k + 1) rest
    in
    go 0 events

  (* ---------- branch report vs branch journal ---------- *)

  (** The deterministic mutation set every spec is priced under:
      straight-line (replay fidelity), a DEQ policy switch, tenant
      scaling (the tenant index varies with the spec size), and an
      injected submit+advance pair at the fork point. *)
  let branches_of (spec : Spec.t) : B.spec list =
    let tenants = 4 in
    let n = Spec.num_tasks spec in
    [
      { B.label = "straight"; mutations = [] };
      { B.label = "deq"; mutations = [ B.Set_policy "deq" ] };
      { B.label = "scale"; mutations = [ B.Scale_tenant { tenant = n mod tenants; num = 3; den = 2 } ] };
      {
        B.label = "inject";
        mutations =
          [
            B.Inject
              (En.Submit
                 {
                   id = 1000 + n;
                   volume = F.of_q 3 4;
                   weight = F.of_int 2;
                   cap = F.one;
                   speedup = None;
                   deps = [];
                 });
            B.Inject (En.Advance (F.of_q 1 8));
          ];
      };
    ]

  (** Run the branch runner at the stream's midpoint and hold every
      branch to its own journal: parsing and replaying the journal must
      reproduce the reported Σw·C and Σw·(C−r) exactly ([F.equal]),
      and the reported deltas must be branch-minus-baseline. *)
  let check_branch_objective (spec : Spec.t) : (unit, string) result =
    let events = stream_of_spec spec in
    let capacity = F.of_int spec.Spec.procs in
    let fork_at = List.length events / 2 in
    let* report =
      B.run ~resolve ~kinetic_for ~tenants:4 ~capacity ~policy:"wdeq" ~events ~fork_at
        ~branches:(branches_of spec) ()
    in
    List.fold_left
      (fun acc (o : B.outcome) ->
        let* () = acc in
        let* entries =
          List.fold_left
            (fun acc line ->
              let* acc = acc in
              match J.of_line line with
              | Ok e -> Ok (e :: acc)
              | Error m -> Error (Printf.sprintf "branch %S: journal: %s" o.B.label m))
            (Ok []) o.B.lines
          |> Result.map List.rev
        in
        let* replayed =
          Result.map_error
            (fun m -> Printf.sprintf "branch %S: replay: %s" o.B.label m)
            (J.replay ~resolve entries)
        in
        if not (F.equal (En.weighted_completion replayed) o.B.sum_wc) then
          Error
            (Printf.sprintf "branch %S: replayed Σw·C %s differs from reported %s" o.B.label
               (F.to_string (En.weighted_completion replayed))
               (F.to_string o.B.sum_wc))
        else if not (F.equal (En.weighted_flow replayed) o.B.sum_wflow) then
          Error (Printf.sprintf "branch %S: replayed Σw·(C−r) differs from report" o.B.label)
        else if not (F.equal o.B.d_wc (F.sub o.B.sum_wc report.B.baseline_wc)) then
          Error (Printf.sprintf "branch %S: ΔΣw·C is not branch − baseline" o.B.label)
        else if not (F.equal o.B.d_wflow (F.sub o.B.sum_wflow report.B.baseline_wflow)) then
          Error (Printf.sprintf "branch %S: ΔΣw·(C−r) is not branch − baseline" o.B.label)
        else Ok ())
      (Ok ()) report.B.branches
end

(** Pre-applied checkers. *)
module Float = Make (Mwct_field.Field.Float_field)

module Exact = Make (Mwct_rational.Rational.Rat_field)
