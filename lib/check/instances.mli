(** Structural instance generators and shrinkers for the conformance
    fuzzer (DESIGN.md §11).

    Unlike {!Mwct_workload.Generator}, which is seeded by an opaque PRNG
    state, these builders construct instances {e structurally} from a
    stream of bounded integer draws: every volume, weight and delta is
    an explicit decision. That makes counterexamples shrinkable — the
    shrinker edits the failing {!Mwct_core.Spec.t} itself (removing
    tasks, rounding rationals toward [1], lowering [procs] and [δ])
    instead of perturbing a seed into an unrelated instance. *)

open Mwct_core

(** Adversarial instance families. The first five mirror the workload
    generator's experiment families; the rest are degenerate or
    near-tie shapes aimed at the theorems' edge cases. *)
type family =
  | Uniform  (** Section V-A: dyadic volumes/weights, [δ < P] *)
  | Unweighted  (** uniform with all weights 1 *)
  | Wide  (** Theorem 11 family: homogeneous weights, [δ > P/2] *)
  | Unit  (** [V = w = 1], [δ ∈ [⌈P/2⌉, P]] *)
  | Mixed  (** mice-and-elephants heterogeneous mix *)
  | Delta_one  (** [δ = 1] for every task (sequential chains) *)
  | Delta_full  (** [δ = P] for every task (fully malleable) *)
  | Near_tie  (** equal weights, volumes within [1/den] of each other *)
  | Tiny_den  (** volumes/weights with denominators in [[1, 4]] — not
                  dyadic, so the float engine rounds (cross-field
                  stress) *)
  | Concave_curves
      (** generalized rate model: most tasks carry a random valid
          concave speedup curve (non-increasing sixteenth slopes),
          the rest stay linear *)
  | Capacity_tight
      (** per-task [capacity] clauses at or below [δ] (the clamp
          binds), half the tasks also curved — exercises breakpoint
          truncation in [Instance.of_spec] *)
  | Multi_tenant
      (** tenant-clustered weights: each task inherits one of four
          shared weight bases, so weight mass arrives in clusters —
          the shape the sharded store's routing and cross-shard
          allocator see ({!Shard_check}) *)
  | Whatif_branch
      (** tenant-clustered weights plus per-task [capacity] clamps on
          half the tasks — the shape the what-if stream oracles
          ({!Whatif_check}) derive their branch streams from *)
  | Dag_layered
      (** precedence DAG in consecutive layers; each non-root task
          depends on one or two tasks of the previous layer *)
  | Dag_fork_join
      (** one root fanning out to the middle tasks, a final join
          depending on them all *)
  | Dag_random  (** sparse random backward edges (up to two parents) *)
  | Dag_chain  (** a single dependency path [0 -> 1 -> ... -> n-1] *)

val all_families : family list

val family_name : family -> string
val family_of_string : string -> family option

(** [draw lo hi] must return a uniform integer in [[lo, hi]]
    (inclusive). The caller supplies the randomness — a
    {!Mwct_util.Rng.t} in the fuzz driver, a [Random.State.t] in the
    QCheck harness — so the same structural logic backs both. *)
type draw = int -> int -> int

(** Build one instance of the family at an exact size. [den] (default
    64) is the dyadic grain of volumes and weights where the family
    uses it. *)
val sample_sized : draw -> procs:int -> n:int -> ?den:int -> family -> Spec.t

(** Draw [procs ∈ [2, max_procs]] (default 8) and [n ∈ [1, max_n]]
    (default 6), then {!sample_sized}. *)
val sample : draw -> ?max_procs:int -> ?max_n:int -> ?den:int -> family -> Spec.t

(** Structural shrink candidates of a spec, most aggressive first:
    remove one task (never below one), replace a curve by the linear
    law, drop a [capacity] clause, halve or decrement [procs], lower a
    task's [δ] (to 1, or halved — linear tasks only, since a curve's
    last breakpoint is pinned to [δ]), and round a volume or weight
    toward [1] (first to the nearest integer, then to [1] itself).
    Every candidate is strictly smaller under a fixed measure, so
    repeated shrinking terminates. *)
val shrink : Spec.t -> Spec.t Seq.t

(** Greedy fixpoint: repeatedly replace [spec] by its first shrink
    candidate on which [failing] still holds, until none does (or
    [max_steps] accepted steps, default 400). Returns the input
    unchanged when it does not fail. *)
val minimize : ?max_steps:int -> failing:(Spec.t -> bool) -> Spec.t -> Spec.t
