(** Differential driver: every registry solver against every applicable
    oracle, on both engines, plus the float-vs-exact cross-field
    objective comparison (DESIGN.md §11).

    The driver is field-{e spanning} rather than field-polymorphic: it
    instantiates {!Oracle.Make} over both engines and correlates the two
    runs through the shared field-neutral {!Mwct_core.Spec.t}. Solver
    selection is by name; {!Mwct_solver.Solver.Enumerative} solvers are
    size-gated so a fuzz loop never wanders into an [n!] enumeration on
    a large draw. *)

module Slv = Mwct_solver.Solver

type config = {
  oracles : string list option;  (** [None] = all catalogue oracles *)
  algos : string list option;  (** [None] = all registry solvers *)
  max_enum : int;
      (** skip {!Slv.Enumerative} solvers when [n] exceeds this on the
          float engine (the exact engine uses one less — LP enumeration
          over big rationals is an order of magnitude slower) *)
  inject_fault : bool;
      (** testing hook: fabricate a failing verdict on any instance with
          at least two tasks, attributed to the first selected oracle
          and solver. Exercises the reproduce/shrink/corpus pipeline in
          CI without carrying a real bug. *)
}

let default_config = { oracles = None; algos = None; max_enum = 5; inject_fault = false }

let selected sel name = match sel with None -> true | Some l -> List.mem name l

let known_oracle id = List.mem id Oracle.ids
let known_algo name = List.mem name Slv.names

(* Engine-specific oracle sets. *)
module Of = Oracle.Make (struct
  module F = Mwct_field.Field.Float_field

  let exact = false
  let engine = "float"
end)

module Oq = Oracle.Make (struct
  module F = Mwct_rational.Rational.Rat_field

  let exact = true
  let engine = "exact"
end)

(* Solvers without the [General_speedup] capability are restricted to
   the linear rate law, and solvers without [Dag] to independent bags
   ({!Mwct_solver.Driver.Make.run} refuses instances beyond a solver's
   model), so the matrix covers the applicable solvers only — running
   the rest would just report their documented refusal as a spurious
   failure. *)
let model_ok ~curved ?(deps = false) (i : Slv.info) =
  ((not curved) || Slv.info_has_cap Slv.General_speedup i)
  && ((not deps) || Slv.info_has_cap Slv.Dag i)

let solve_fail ~algo ~engine e =
  {
    Oracle.oracle = "solve";
    theorem = "-";
    algo;
    engine;
    status = Oracle.Fail { witness = "exception: " ^ Printexc.to_string e; slack = "-" };
  }

(* The two per-engine runners are textually parallel: [Of] and [Oq]
   have distinct (applicative) types, and a shared functor over the
   oracle module's full signature would cost more than these few
   lines. *)

let run_float cfg (spec : Mwct_core.Spec.t) : Oracle.verdict list =
  let inst = Of.E.Instance.of_spec spec in
  let n = Array.length inst.Of.E.Types.tasks in
  let curved = Mwct_core.Spec.has_curves spec in
  let deps = Mwct_core.Spec.has_deps spec in
  Of.S.all
  |> List.filter (fun s ->
         selected cfg.algos s.Of.S.info.Slv.name && model_ok ~curved ~deps s.Of.S.info)
  |> List.concat_map (fun s ->
         if List.mem Slv.Enumerative s.Of.S.info.Slv.caps && n > cfg.max_enum then []
         else
           match Of.solve s inst with
           | sv ->
             Of.all
             |> List.filter (fun o -> selected cfg.oracles o.Of.info.Oracle.id)
             |> List.map (fun o -> Of.run o sv)
           | exception e -> [ solve_fail ~algo:s.Of.S.info.Slv.name ~engine:"float" e ])

let run_exact cfg (spec : Mwct_core.Spec.t) : Oracle.verdict list =
  let inst = Oq.E.Instance.of_spec spec in
  let n = Array.length inst.Oq.E.Types.tasks in
  let max_enum = max 1 (cfg.max_enum - 1) in
  let curved = Mwct_core.Spec.has_curves spec in
  let deps = Mwct_core.Spec.has_deps spec in
  Oq.S.all
  |> List.filter (fun s ->
         selected cfg.algos s.Oq.S.info.Slv.name && model_ok ~curved ~deps s.Oq.S.info)
  |> List.concat_map (fun s ->
         if List.mem Slv.Enumerative s.Oq.S.info.Slv.caps && n > max_enum then []
         else
           match Oq.solve s inst with
           | sv ->
             Oq.all
             |> List.filter (fun o -> selected cfg.oracles o.Oq.info.Oracle.id)
             |> List.map (fun o -> Oq.run o sv)
           | exception e -> [ solve_fail ~algo:s.Oq.S.info.Slv.name ~engine:"exact" e ])

(* Cross-field agreement: the float and exact objectives of the same
   deterministic solver on the same spec must agree within 1e-6
   relative — the historical cross-engine test tolerance.
   [Exact_recommended] solvers are exempt by definition of the flag. *)
let cross_field cfg (spec : Mwct_core.Spec.t) : Oracle.verdict list =
  if not (selected cfg.oracles Oracle.cross_field_info.Oracle.id) then []
  else begin
    let finst = Of.E.Instance.of_spec spec in
    let qinst = Oq.E.Instance.of_spec spec in
    let n = Mwct_core.Spec.num_tasks spec in
    let max_enum = max 1 (cfg.max_enum - 1) in
    let curved = Mwct_core.Spec.has_curves spec in
    let deps = Mwct_core.Spec.has_deps spec in
    Slv.infos
    |> List.filter (fun (i : Slv.info) ->
           selected cfg.algos i.Slv.name && model_ok ~curved ~deps i)
    |> List.map (fun (i : Slv.info) ->
           let verdict status =
             {
               Oracle.oracle = Oracle.cross_field_info.Oracle.id;
               theorem = Oracle.cross_field_info.Oracle.theorem;
               algo = i.Slv.name;
               engine = "both";
               status;
             }
           in
           if Slv.info_has_cap Slv.Exact_recommended i then
             verdict (Oracle.Skip "exact-recommended: float drift expected")
           else if Slv.info_has_cap Slv.Enumerative i && n > max_enum then
             verdict (Oracle.Skip "enumerative solver above the size gate")
           else begin
             match
               ( Of.S.objective i.Slv.name finst,
                 Mwct_rational.Rational.to_float (Oq.S.objective i.Slv.name qinst) )
             with
             | fo, qo ->
               let slack = 1e-6 *. Float.max 1.0 (Float.max (Float.abs fo) (Float.abs qo)) in
               if Float.abs (fo -. qo) <= slack then verdict Oracle.Pass
               else
                 verdict
                   (Oracle.Fail
                      {
                        witness = Printf.sprintf "float=%.12g exact=%.12g" fo qo;
                        slack = Printf.sprintf "%.3g" (Float.abs (fo -. qo) -. slack);
                      })
             | exception e ->
               verdict (Oracle.Fail { witness = "exception: " ^ Printexc.to_string e; slack = "-" })
           end)
  end

(* Stream-replay oracles (DESIGN.md §16): whatif checks run on a
   deterministic online stream derived from the spec, once per engine.
   They exercise no registry solver — the stream runs under the WDEQ
   engine policy, which is what the [algo] column records. *)
let whatif cfg (spec : Mwct_core.Spec.t) : Oracle.verdict list =
  let one (info : Oracle.info) engine (check : Mwct_core.Spec.t -> (unit, string) result) =
    if not (selected cfg.oracles info.Oracle.id) then []
    else begin
      let status =
        match check spec with
        | Ok () -> Oracle.Pass
        | Error witness -> Oracle.Fail { witness; slack = "-" }
        | exception e ->
          Oracle.Fail { witness = "exception: " ^ Printexc.to_string e; slack = "-" }
      in
      [
        {
          Oracle.oracle = info.Oracle.id;
          theorem = info.Oracle.theorem;
          algo = "wdeq";
          engine;
          status;
        };
      ]
    end
  in
  one Oracle.fork_identity_info "float" Whatif_check.Float.check_fork_identity
  @ one Oracle.fork_identity_info "exact" Whatif_check.Exact.check_fork_identity
  @ one Oracle.whatif_branch_info "float" Whatif_check.Float.check_branch_objective
  @ one Oracle.whatif_branch_info "exact" Whatif_check.Exact.check_branch_objective

let injected cfg (spec : Mwct_core.Spec.t) : Oracle.verdict list =
  if not (cfg.inject_fault && Mwct_core.Spec.num_tasks spec >= 2) then []
  else begin
    let first sel fallback = match sel with Some (x :: _) -> x | _ -> fallback in
    [
      {
        Oracle.oracle = first cfg.oracles "injected-fault";
        theorem = "(injected)";
        algo = first cfg.algos "*";
        engine = "float";
        status =
          Oracle.Fail
            { witness = "fault injected by --inject-fault (self-test)"; slack = "-" };
      };
    ]
  end

(** All verdicts of one spec under [cfg]: float oracles, exact oracles,
    cross-field, the what-if stream oracles, plus any injected fault. *)
let run_spec cfg (spec : Mwct_core.Spec.t) : Oracle.verdict list =
  injected cfg spec @ run_float cfg spec @ run_exact cfg spec @ cross_field cfg spec
  @ whatif cfg spec

let failures verdicts = List.filter (fun v -> not (Oracle.passed v)) verdicts

(** [fails cfg spec] — does any verdict fail? The shrinking predicate. *)
let fails cfg spec = failures (run_spec cfg spec) <> []
