(** Invariant oracles — one named, machine-checkable predicate per
    paper theorem (DESIGN.md §11).

    An oracle inspects one {e solved} instance (a registry solver's
    schedule plus its metadata) and returns a structured {!status}:
    [Pass], [Skip] (with the reason the oracle does not apply), or
    [Fail] carrying a witness (the offending task/column/bound) and the
    slack by which the theorem's inequality is violated. A bare [bool]
    would make shrinking useless — the fuzz driver minimizes while
    preserving the {e specific} (oracle, solver, engine) failure.

    [Make] is functorized over the field like the rest of the library;
    the differential driver instantiates it over both engines. The
    float instantiation compares with a relative slack of [1e-6]
    (matching the historical test tolerances); the exact instantiation
    compares strictly. *)

module Slv = Mwct_solver.Solver

(** Outcome of one oracle on one solved instance. *)
type status =
  | Pass
  | Skip of string  (** oracle does not apply; the reason why *)
  | Fail of { witness : string; slack : string }

(** Field-neutral oracle identity. *)
type info = { id : string; theorem : string; doc : string }

(** One oracle run, fully labelled. [engine] is ["float"], ["exact"],
    or ["both"] for the cross-field oracle. *)
type verdict = { oracle : string; theorem : string; algo : string; engine : string; status : status }

let passed (v : verdict) = match v.status with Fail _ -> false | Pass | Skip _ -> true

let status_to_string = function
  | Pass -> "pass"
  | Skip reason -> "skip (" ^ reason ^ ")"
  | Fail { witness; slack } -> Printf.sprintf "FAIL witness=[%s] slack=[%s]" witness slack

let verdict_to_string (v : verdict) =
  Printf.sprintf "%s (%s) algo=%s engine=%s: %s" v.oracle v.theorem v.algo v.engine
    (status_to_string v.status)

(* The catalogue is the single source of truth for oracle names: the
   functor below attaches a check to each entry except [cross-field],
   which needs both engines at once and lives in Differential. *)
let coherence_info = { id = "coherence"; theorem = "Definition 2"; doc = "schedule satisfies every MWCT-CB-F validity condition" }
let bounds_info = { id = "bounds"; theorem = "Definitions 5-6"; doc = "objective dominates the A(I) and H(I) lower bounds" }
let thm3_info = { id = "thm3"; theorem = "Theorem 3"; doc = "fractional->integer wrap uses floor/ceil processors, books exact volumes, and never delays a completion" }
let lemma3_info = { id = "lemma3"; theorem = "Lemma 3"; doc = "WF normal form has non-increasing column heights" }
let thm9_info = { id = "thm9"; theorem = "Theorem 9"; doc = "WF normal form of an offline completion-time vector has at most n allocation changes" }
let thm10_info = { id = "thm10"; theorem = "Theorem 10"; doc = "integerized WF normal form has at most 3n preemptions" }
let thm4_info = { id = "thm4"; theorem = "Theorem 4 / Lemma 2"; doc = "WDEQ objective <= 2(A(I[VFbar]) + H(I[VF])) on its own volume split" }
let thm11_info = { id = "thm11"; theorem = "Theorem 11"; doc = "best greedy is optimal on wide instances with homogeneous weights" }
let cross_field_info = { id = "cross-field"; theorem = "DESIGN \xc2\xa79"; doc = "float and exact objectives agree within tolerance" }
let dag_precedence_info = { id = "dag-precedence"; theorem = "DESIGN \xc2\xa715"; doc = "no task receives a share before all its parents complete" }
let dag_closure_info = { id = "dag-closure"; theorem = "DESIGN \xc2\xa715"; doc = "completion order is a linear extension of the dependency DAG" }
let dag_zero_edge_info = { id = "dag-zero-edge"; theorem = "DESIGN \xc2\xa715"; doc = "frontier policies on edge-free instances are bit-identical to the independent-bag path" }
let fork_identity_info = { id = "fork-identity"; theorem = "DESIGN \xc2\xa716"; doc = "forking at any event index and replaying the unmodified suffix reproduces the straight-line journal bytes and dump" }
let whatif_branch_info = { id = "whatif-branch"; theorem = "DESIGN \xc2\xa716"; doc = "every branch report figure is reproduced by replaying the branch's own journal" }

let catalogue =
  [
    coherence_info; bounds_info; thm3_info; lemma3_info; thm9_info; thm10_info; thm4_info;
    thm11_info; cross_field_info; dag_precedence_info; dag_closure_info; dag_zero_edge_info;
    fork_identity_info; whatif_branch_info;
  ]

let ids = List.map (fun i -> i.id) catalogue
let find_info id = List.find_opt (fun i -> i.id = id) catalogue

module Make (C : sig
  module F : Mwct_field.Field.S

  val exact : bool
  val engine : string
end) =
struct
  module F = C.F
  module S = Slv.Make (F)
  module E = S.E

  type solved = {
    solver : S.t;
    inst : E.Types.instance;
    schedule : E.Types.column_schedule;
    meta : S.meta;
  }

  let solve (s : S.t) inst =
    let schedule, meta = s.S.solve inst in
    { solver = s; inst; schedule; meta }

  let name_of sv = sv.solver.S.info.Slv.name
  let num_tasks sv = Array.length sv.inst.E.Types.tasks

  (* The normalize/integerize pipeline amplifies small errors in the
     completion-time vector into structural faults (an extra column, a
     transient P+1 demand). On the float engine that makes
     [Exact_recommended] solvers (the simplex-based ones) unreliable
     inputs — which is precisely what the capability flag documents —
     so pipeline oracles skip them there; the exact engine covers them
     in the same differential run. *)
  let fragile_float sv =
    (not C.exact) && List.mem Slv.Exact_recommended sv.solver.S.info.Slv.caps

  let fragile_skip = Skip "exact-recommended solver on the float engine: pipeline oracles run exact"

  (* Theorems 9 and 10 bound *discrete* counts (allocation changes,
     preemptions). Float drift turns exact completion-time ties into
     epsilon-width columns, legitimately shifting those counts by O(1)
     — the cross-engine suite documents the same effect — so the sharp
     bounds are verified on the exact engine only, which sees every
     fuzzed spec in the same differential run. *)
  let counting_skip = Skip "sharp counting bound checked on the exact engine (float ties drift)"

  (* Theorems 3/4/9/10/11 and Lemma 3 are stated for the paper's linear
     rate law; their pipelines (normalize, integerize, the Lemma-2
     volume split, the LP) assume rate = allocation. Model-independent
     oracles (coherence, bounds) run on curved instances unchanged —
     the generalized validity checker and the A(I)/H(I) bounds hold for
     any concave speedup with first slope <= 1. *)
  let curved sv = E.Instance.has_curves sv.inst

  let curved_skip = Skip "linear-rate-model theorem (instance has speedup curves)"

  (* The same theorems are also stated for *independent* bags: the WF
     normal form and the Lemma-2 split freely reorder completions, which
     a precedence DAG forbids, so the pipeline oracles skip dependency
     instances. Coherence and bounds still apply — Definition 2 and the
     A(I)/H(I) bounds hold for any valid schedule, and edges only
     constrain the schedule further. *)
  let dag sv = E.Instance.has_deps sv.inst

  let dag_skip = Skip "independent-bag theorem (instance has dependency edges)"

  (* Comparisons with a relative slack on the float engine, strict on
     the exact one — the same convention as the historical suites. *)
  let tol = if C.exact then F.zero else F.of_q 1 1_000_000

  let leq a b =
    let scale = F.max F.one (F.max (F.abs a) (F.abs b)) in
    F.compare a (F.add b (F.mul tol scale)) <= 0

  let eq a b = leq a b && leq b a
  let fmt = F.to_string
  let diff a b = fmt (F.sub a b)

  type t = { info : info; check : solved -> status }

  let ok_or first = match first with None -> Pass | Some f -> f

  (* Definition 2: the full validity checker, strict on rationals. *)
  let coherence =
    { info = coherence_info;
      check =
        (fun sv ->
          match E.Schedule.check ~exact:C.exact sv.schedule with
          | Ok () -> Pass
          | Error v -> Fail { witness = E.Schedule.violation_to_string v; slack = "-" });
    }

  (* Definitions 5-6: any valid schedule's objective is at or above
     both lower bounds. *)
  let bounds =
    { info = bounds_info;
      check =
        (fun sv ->
          let obj = E.Schedule.weighted_completion_time sv.schedule in
          let a = E.Lower_bounds.squashed_area sv.inst in
          let h = E.Lower_bounds.height_bound sv.inst in
          if not (leq a obj) then
            Fail { witness = "objective below squashed area A(I)"; slack = diff a obj }
          else if not (leq h obj) then
            Fail { witness = "objective below height bound H(I)"; slack = diff h obj }
          else Pass);
    }

  (* Theorem 3: the per-column McNaughton wrap books floor/ceil
     processors without overlap, preserves every task's volume, and the
     averaging direction never pushes a completion later. (Strict
     equality does not hold in general: when tied tasks time-share a
     column, the wrap can finish one of them strictly earlier — the
     theorem's inequality direction.) *)
  let thm3 =
    { info = thm3_info;
      check =
        (fun sv ->
          if curved sv then curved_skip
          else if dag sv then dag_skip
          else if fragile_float sv then fragile_skip
          else begin
          let is, wrap = E.Integerize.of_columns sv.schedule in
          match E.Integerize.check_floor_ceil sv.schedule is with
          | Some i -> Fail { witness = Printf.sprintf "task %d outside floor/ceil band" i; slack = "-" }
          | None ->
            if not (E.Assignment.no_overlap wrap) then
              Fail { witness = "wrap books one processor twice"; slack = "-" }
            else begin
              let s' = E.Integerize.to_columns is in
              let c = E.Schedule.completion_times sv.schedule in
              let c' = E.Schedule.completion_times s' in
              let booked = E.Assignment.booked_volume wrap in
              let bad = ref None in
              Array.iteri
                (fun i (t : E.Types.task) ->
                  if !bad = None && not (eq booked.(i) t.E.Types.volume) then
                    bad :=
                      Some
                        (Fail
                           { witness = Printf.sprintf "task %d volume not preserved by wrap" i;
                             slack = diff booked.(i) t.E.Types.volume;
                           })
                  else if !bad = None && not (leq c'.(i) c.(i)) then
                    bad :=
                      Some
                        (Fail
                           { witness = Printf.sprintf "task %d completes later after integerization" i;
                             slack = diff c'.(i) c.(i);
                           }))
                sv.inst.E.Types.tasks;
              ok_or !bad
            end
          end);
    }

  let normal_form sv = E.Water_filling.normalize sv.schedule

  (* Lemma 3: occupied processors never increase across the
     positive-length columns of a WF normal form. *)
  let lemma3 =
    { info = lemma3_info;
      check =
        (fun sv ->
          if curved sv then curved_skip
          else if dag sv then dag_skip
          else if fragile_float sv then fragile_skip
          else begin
          let s = normal_form sv in
          let heights = E.Water_filling.column_heights s in
          let prev = ref None in
          let bad = ref None in
          Array.iteri
            (fun j h ->
              if F.sign (E.Schedule.column_length s j) > 0 then begin
                (match !prev with
                | Some (j0, h0) when !bad = None && not (leq h h0) ->
                  bad :=
                    Some
                      (Fail
                         { witness = Printf.sprintf "column %d -> %d height increases" j0 j;
                           slack = diff h h0;
                         })
                | _ -> ());
                prev := Some (j, h)
              end)
            heights;
          ok_or !bad
          end);
    }

  (* Theorem 9: at most n allocation changes in the normal form. The
     bound is for the paper's offline pipeline, where the completion
     times come from Greedy or the LP; WDEQ's event-driven completion
     vectors can leave delta-saturated steps in the availability
     profile that genuinely cost n+1 changes (fuzzer-found boundary,
     pinned in test/corpus/wdeq-thm9-boundary.spec), so non-clairvoyant
     solvers are out of scope. *)
  let thm9 =
    { info = thm9_info;
      check =
        (fun sv ->
          if curved sv then curved_skip
          else if dag sv then dag_skip
          else if not C.exact then counting_skip
          else if List.mem Slv.Non_clairvoyant sv.solver.S.info.Slv.caps then
            Skip "n-change bound applies to offline completion-time vectors"
          else begin
            let s = normal_form sv in
            let n = num_tasks sv in
            let changes = E.Preemption.total_changes s in
            if changes <= n then Pass
            else
              Fail
                { witness = Printf.sprintf "%d allocation changes for %d tasks" changes n;
                  slack = string_of_int (changes - n);
                }
          end);
    }

  (* Theorem 10: integerize + assignment of the normal form costs at
     most 3n preemptions. The proof piggybacks on Theorem 9 (n
     completions plus a constant number of preemptions per allocation
     change), so the oracle inherits Theorem 9's scope: offline
     completion-time vectors only. WDEQ/DEQ-derived normal forms
     genuinely exceed both bounds on tie-heavy instances (pinned in
     test/corpus/wdeq-thm9-boundary.spec). *)
  let thm10 =
    { info = thm10_info;
      check =
        (fun sv ->
          if curved sv then curved_skip
          else if dag sv then dag_skip
          else if not C.exact then counting_skip
          else if List.mem Slv.Non_clairvoyant sv.solver.S.info.Slv.caps then
            Skip "3n bound applies to offline completion-time vectors"
          else begin
          let s = normal_form sv in
          let n = num_tasks sv in
          let is, _ = E.Integerize.of_columns s in
          let g = E.Assignment.assign is in
          if not (E.Assignment.no_overlap g) then
            Fail { witness = "assignment books one processor twice"; slack = "-" }
          else begin
            let p = E.Assignment.preemptions g in
            if p <= 3 * n then Pass
            else
              Fail
                { witness = Printf.sprintf "%d preemptions for %d tasks" p n;
                  slack = string_of_int (p - (3 * n));
                }
          end
          end);
    }

  (* Theorem 4 via Lemma 2: WDEQ's own volume split certifies the
     2-approximation — TC <= 2(A(I[VFbar]) + H(I[VF])), and the split
     partitions each volume. *)
  let thm4 =
    { info = thm4_info;
      check =
        (fun sv ->
          if name_of sv <> "wdeq" then Skip "WDEQ-only oracle"
          else if curved sv then curved_skip
          else begin
            match sv.meta.S.wdeq_diagnostics with
            | None -> Skip "solver reported no WDEQ diagnostics"
            | Some d ->
              let bad = ref None in
              Array.iteri
                (fun i (t : E.Types.task) ->
                  let s = F.add d.E.Wdeq.full_volume.(i) d.E.Wdeq.limited_volume.(i) in
                  if !bad = None && not (eq s t.E.Types.volume) then
                    bad :=
                      Some
                        (Fail
                           { witness = Printf.sprintf "task %d: VF + VFbar <> V" i;
                             slack = diff s t.E.Types.volume;
                           }))
                sv.inst.E.Types.tasks;
              match !bad with
              | Some f -> f
              | None ->
                let obj = E.Schedule.weighted_completion_time sv.schedule in
                let a =
                  E.Lower_bounds.squashed_area
                    (E.Instance.sub_instance sv.inst d.E.Wdeq.limited_volume)
                in
                let h =
                  E.Lower_bounds.height_bound (E.Instance.sub_instance sv.inst d.E.Wdeq.full_volume)
                in
                let bound = F.mul (F.of_int 2) (F.add a h) in
                if leq obj bound then Pass
                else Fail { witness = "objective above the Lemma 2 bound"; slack = diff obj bound }
          end);
    }

  (* Theorem 11: on wide instances (effective delta > P/2) with
     homogeneous weights, the best greedy order is optimal. Applies to
     the enumerative best-greedy solver only, so the differential
     driver's size gate keeps the LP enumeration small. *)
  let thm11 =
    { info = thm11_info;
      check =
        (fun sv ->
          if name_of sv <> "best-greedy" then Skip "best-greedy-only oracle"
          else if curved sv then curved_skip
          else begin
            let tasks = sv.inst.E.Types.tasks in
            let homogeneous =
              Array.for_all (fun (t : E.Types.task) -> F.equal t.E.Types.weight tasks.(0).E.Types.weight) tasks
            in
            let wide =
              Array.for_all
                (fun i ->
                  F.compare
                    (F.mul (F.of_int 2) (E.Instance.effective_delta sv.inst i))
                    sv.inst.E.Types.procs
                  > 0)
                (Array.init (Array.length tasks) (fun i -> i))
            in
            if not homogeneous then Skip "weights not homogeneous"
            else if not wide then Skip "not a wide instance (some delta <= P/2)"
            else begin
              let best = E.Schedule.weighted_completion_time sv.schedule in
              let opt, _ = E.Lp_schedule.optimal sv.inst in
              if eq best opt then Pass
              else Fail { witness = "best greedy differs from the LP optimum"; slack = diff best opt }
            end
          end);
    }

  (* DESIGN §15: no task may receive a positive share in a
     positive-length column that starts before every parent has
     completed. Structural — applies to any solver's schedule on a
     dependency instance. *)
  let dag_precedence =
    { info = dag_precedence_info;
      check =
        (fun sv ->
          if not (dag sv) then Skip "instance has no dependency edges"
          else begin
            let c = E.Schedule.completion_times sv.schedule in
            let bad = ref None in
            Array.iteri
              (fun j allocs ->
                if !bad = None && F.sign (E.Schedule.column_length sv.schedule j) > 0 then begin
                  let start = E.Schedule.column_start sv.schedule j in
                  List.iter
                    (fun (i, r) ->
                      if !bad = None && F.sign r > 0 then
                        Array.iter
                          (fun p ->
                            if !bad = None && not (leq c.(p) start) then
                              bad :=
                                Some
                                  (Fail
                                     { witness =
                                         Printf.sprintf
                                           "task %d runs in column %d before parent %d completes" i j p;
                                       slack = diff c.(p) start;
                                     }))
                          sv.inst.E.Types.tasks.(i).E.Types.deps)
                    allocs
                end)
              sv.schedule.E.Types.columns;
            ok_or !bad
          end);
    }

  (* DESIGN §15: the completion order is a linear extension of the DAG —
     every parent completes no later than its child. Implied by
     [dag-precedence] for tasks with positive volume; kept separate so a
     violation on zero-work tasks (which never hold a share) is still
     caught. *)
  let dag_closure =
    { info = dag_closure_info;
      check =
        (fun sv ->
          if not (dag sv) then Skip "instance has no dependency edges"
          else begin
            let c = E.Schedule.completion_times sv.schedule in
            let bad = ref None in
            Array.iteri
              (fun i (t : E.Types.task) ->
                Array.iter
                  (fun p ->
                    if !bad = None && not (leq c.(p) c.(i)) then
                      bad :=
                        Some
                          (Fail
                             { witness =
                                 Printf.sprintf "parent %d completes after its child %d" p i;
                               slack = diff c.(p) c.(i);
                             }))
                  t.E.Types.deps)
              sv.inst.E.Types.tasks;
            ok_or !bad
          end);
    }

  (* DESIGN §15: on an edge-free instance the frontier policies must be
     bit-identical to the independent-bag WDEQ/DEQ (the Dag simulator
     dispatches to that code path, so equality is exact — no
     tolerance). *)
  let dag_zero_edge =
    { info = dag_zero_edge_info;
      check =
        (fun sv ->
          let reference =
            match name_of sv with
            | "wdeq-dag" -> Some E.Wdeq.wdeq
            | "deq-dag" -> Some E.Wdeq.deq
            | _ -> None
          in
          match reference with
          | None -> Skip "frontier-policy-only oracle"
          | Some _ when dag sv -> Skip "edge-free comparison (instance has dependency edges)"
          | Some reference ->
            let want, _ = reference sv.inst in
            let got = sv.schedule in
            if got.E.Types.order <> want.E.Types.order then
              Fail { witness = "completion order differs from the independent-bag path"; slack = "-" }
            else if not (Array.for_all2 F.equal got.E.Types.finish want.E.Types.finish) then
              Fail { witness = "column finish times differ from the independent-bag path"; slack = "-" }
            else begin
              let allocs_eq a b =
                List.length a = List.length b
                && List.for_all2 (fun (i, r) (i', r') -> i = i' && F.equal r r') a b
              in
              if not (Array.for_all2 allocs_eq got.E.Types.columns want.E.Types.columns) then
                Fail { witness = "column allocations differ from the independent-bag path"; slack = "-" }
              else Pass
            end);
    }

  let all =
    [ coherence; bounds; thm3; lemma3; thm9; thm10; thm4; thm11; dag_precedence; dag_closure;
      dag_zero_edge ]
  let find id = List.find_opt (fun o -> o.info.id = id) all

  (** Run one oracle, converting any exception into a [Fail] verdict —
      a crash on a generated instance is a finding, not a fuzzer
      error. *)
  let run (o : t) (sv : solved) : verdict =
    let status =
      try o.check sv
      with e -> Fail { witness = "exception: " ^ Printexc.to_string e; slack = "-" }
    in
    { oracle = o.info.id; theorem = o.info.theorem; algo = name_of sv; engine = C.engine; status }
end
