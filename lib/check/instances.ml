(* Structural generators and shrinkers over Spec.t — see instances.mli.

   Everything here is field-neutral: specs are exact integer rationals,
   so one sampled instance means the same thing to the float and the
   rational engine. *)

open Mwct_core

type family =
  | Uniform
  | Unweighted
  | Wide
  | Unit
  | Mixed
  | Delta_one
  | Delta_full
  | Near_tie
  | Tiny_den
  | Concave_curves
  | Capacity_tight
  | Multi_tenant
  | Whatif_branch
  | Dag_layered
  | Dag_fork_join
  | Dag_random
  | Dag_chain

let all_families =
  [
    Uniform; Unweighted; Wide; Unit; Mixed; Delta_one; Delta_full; Near_tie; Tiny_den;
    Concave_curves; Capacity_tight; Multi_tenant; Whatif_branch; Dag_layered; Dag_fork_join;
    Dag_random; Dag_chain;
  ]

let family_name = function
  | Uniform -> "uniform"
  | Unweighted -> "unweighted"
  | Wide -> "wide"
  | Unit -> "unit"
  | Mixed -> "mixed"
  | Delta_one -> "delta-one"
  | Delta_full -> "delta-full"
  | Near_tie -> "near-tie"
  | Tiny_den -> "tiny-den"
  | Concave_curves -> "concave-curves"
  | Capacity_tight -> "capacity-tight"
  | Multi_tenant -> "multi-tenant"
  | Whatif_branch -> "whatif-branch"
  | Dag_layered -> "dag-layered"
  | Dag_fork_join -> "dag-fork-join"
  | Dag_random -> "dag-random"
  | Dag_chain -> "dag-chain"

let family_of_string s = List.find_opt (fun f -> family_name f = s) all_families

type draw = int -> int -> int

(* A random valid concave speedup for a task of parallelism [delta]:
   strictly increasing integer allocations ending at [delta], per-piece
   slopes drawn as non-increasing sixteenths with the first in
   [(0, 1]] — every {!Spec} curve constraint (positivity, monotone
   non-decreasing rate, concavity, first slope <= 1, last breakpoint at
   delta) holds by construction. *)
let curve (draw : draw) ~delta =
  let sden = 16 in
  let xs =
    if delta <= 1 then [ delta ]
    else begin
      let cuts = List.init (draw 0 2) (fun _ -> draw 1 (delta - 1)) in
      List.sort_uniq compare (delta :: cuts)
    end
  in
  let rec go px yd slope acc = function
    | [] -> List.rev acc
    | x :: rest ->
      let yd = yd + (slope * (x - px)) in
      go x yd (draw 0 slope) ((Spec.rat x 1, Spec.rat yd sden) :: acc) rest
  in
  go 0 0 (draw 1 sden) [] xs

let sample_sized (draw : draw) ~procs ~n ?(den = 64) family : Spec.t =
  let p = max 1 procs in
  let dyadic () = Spec.rat (draw 1 den) den in
  let one = Spec.rat 1 1 in
  (* Multi_tenant draws its per-tenant weight bases up front (gated so
     other families' draw streams are untouched): tasks of one tenant
     share a weight, so weight mass arrives in clusters — the shape the
     sharded store's routing and cross-shard allocator see in serve. *)
  let tenant_bases =
    match family with
    | Multi_tenant | Whatif_branch -> Array.init 4 (fun _ -> dyadic ())
    | _ -> [||]
  in
  let task () =
    match family with
    | Uniform ->
      Spec.task ~volume:(dyadic ()) ~weight:(dyadic ()) ~delta:(draw 1 (max 1 (p - 1))) ()
    | Unweighted -> Spec.task ~volume:(dyadic ()) ~delta:(draw 1 (max 1 (p - 1))) ()
    | Wide -> Spec.task ~volume:(dyadic ()) ~delta:(draw ((p / 2) + 1) p) ()
    | Unit -> Spec.task ~volume:one ~delta:(draw ((p + 1) / 2) p) ()
    | Mixed ->
      if draw 0 1 = 1 then
        (* elephant: large volume, wide *)
        Spec.task
          ~volume:(Spec.rat ((den / 2) + draw 1 (max 1 (den / 2))) den)
          ~weight:(dyadic ())
          ~delta:(draw (max 1 (p / 2)) p)
          ()
      else
        (* mouse: tiny volume, narrow *)
        Spec.task
          ~volume:(Spec.rat (draw 1 (max 1 (den / 8))) den)
          ~weight:(dyadic ())
          ~delta:(draw 1 (max 1 (p / 4)))
          ()
    | Delta_one -> Spec.task ~volume:(dyadic ()) ~weight:(dyadic ()) ~delta:1 ()
    | Delta_full -> Spec.task ~volume:(dyadic ()) ~weight:(dyadic ()) ~delta:p ()
    | Near_tie ->
      (* Equal weights and volumes one grain apart: completion ties
         everywhere, the worst case for order-sensitive code paths. *)
      Spec.task
        ~volume:(Spec.rat ((den / 2) + draw 0 1) den)
        ~delta:(draw (max 1 (p / 2)) p)
        ()
    | Tiny_den ->
      Spec.task
        ~volume:(Spec.rat (draw 1 4) (draw 1 4))
        ~weight:(Spec.rat (draw 1 4) (draw 1 4))
        ~delta:(draw 1 p)
        ()
    | Concave_curves ->
      (* Mostly curved tasks (2/3), the rest linear — mixed-model
         instances stress the generic/fast-path dispatch seams. *)
      let delta = draw 2 (max 2 p) in
      let speedup = if draw 0 2 > 0 then curve draw ~delta else [] in
      Spec.task ~volume:(dyadic ()) ~weight:(dyadic ()) ~speedup ~delta ()
    | Capacity_tight ->
      (* Per-task capacities at or below delta, so the clamp binds;
         half the tasks also carry a curve, exercising breakpoint
         truncation in [Instance.of_spec]. *)
      let delta = draw 2 (max 2 p) in
      let capacity = draw 1 delta in
      let speedup = if draw 0 1 = 1 then curve draw ~delta else [] in
      Spec.task ~volume:(dyadic ()) ~weight:(dyadic ()) ~speedup ~capacity ~delta ()
    | Multi_tenant ->
      (* Tenant-clustered weights: each task joins one of four tenants
         and inherits its weight base; volumes and widths stay
         individual. *)
      let tenant = draw 0 (Array.length tenant_bases - 1) in
      Spec.task ~volume:(dyadic ()) ~weight:tenant_bases.(tenant) ~delta:(draw 1 p) ()
    | Whatif_branch ->
      (* Multi_tenant's clustered weights plus per-task capacity clamps
         on half the tasks: the shape the what-if stream oracles see —
         the spec-derived stream drives tenant scaling and policy
         switches, and binding caps make the share profile (and hence
         the branch deltas) sensitive to both. *)
      let tenant = draw 0 (Array.length tenant_bases - 1) in
      let delta = draw 1 p in
      let capacity = if draw 0 1 = 1 then Some (draw 1 delta) else None in
      Spec.task ~volume:(dyadic ()) ~weight:tenant_bases.(tenant) ?capacity ~delta ()
    | Dag_layered | Dag_fork_join | Dag_random | Dag_chain ->
      (* DAG families share Uniform's numeric shape; the edges are
         attached below (extra draws happen after all tasks are drawn,
         so the base stream is deterministic per family). *)
      Spec.task ~volume:(dyadic ()) ~weight:(dyadic ()) ~delta:(draw 1 (max 1 (p - 1))) ()
  in
  let base = List.init (max 1 n) (fun _ -> task ()) in
  (* Dependency edges, always pointing at strictly earlier indices —
     acyclic by construction, so [Spec.validate] accepts every draw. *)
  let with_deps deps_of = List.mapi (fun i t -> { t with Spec.deps = deps_of i }) base in
  let nb = List.length base in
  let tasks =
    match family with
    | Dag_chain ->
      (* A single path: task i waits for task i-1. *)
      with_deps (fun i -> if i = 0 then [] else [ i - 1 ])
    | Dag_fork_join ->
      (* Root 0 fans out to the middle tasks; the last task joins them
         all. Degenerates gracefully below three tasks. *)
      with_deps (fun i ->
          if i = 0 then []
          else if i = nb - 1 && nb > 2 then List.init (nb - 2) (fun k -> k + 1)
          else [ 0 ])
    | Dag_layered ->
      (* Consecutive layers of drawn widths; each non-root task picks
         one or two parents from the previous layer. *)
      let layer = Array.make nb 0 in
      let l = ref 0 and width = ref 1 and filled = ref 0 in
      for i = 0 to nb - 1 do
        if !filled >= !width then begin
          incr l;
          width := draw 1 3;
          filled := 0
        end;
        layer.(i) <- !l;
        incr filled
      done;
      with_deps (fun i ->
          if layer.(i) = 0 then []
          else begin
            let prev = ref [] in
            for j = nb - 1 downto 0 do
              if layer.(j) = layer.(i) - 1 then prev := j :: !prev
            done;
            let prev = Array.of_list !prev in
            let np = Array.length prev in
            let k = min np (1 + draw 0 1) in
            let chosen = List.init k (fun _ -> prev.(draw 0 (np - 1))) in
            List.sort_uniq compare chosen
          end)
    | Dag_random ->
      (* Sparse random backward edges: up to two distinct parents drawn
         among the earlier tasks. *)
      with_deps (fun i ->
          if i = 0 then []
          else begin
            let k = draw 0 (min i 2) in
            let chosen = List.init k (fun _ -> draw 0 (i - 1)) in
            List.sort_uniq compare chosen
          end)
    | _ -> base
  in
  Spec.make ~procs:p tasks

let sample (draw : draw) ?(max_procs = 8) ?(max_n = 6) ?den family : Spec.t =
  let procs = draw 2 (max 2 max_procs) in
  let n = draw 1 (max 1 max_n) in
  sample_sized draw ~procs ~n ?den family

(* ---------- shrinking ---------- *)

let one = Spec.rat 1 1

(* Candidates for a rational, rounding toward 1: first the nearest
   integer at or above 1, then 1 itself. Each candidate is strictly
   smaller under [measure] below. *)
let rat_candidates (r : Spec.rat) =
  if r.Spec.num = 1 && r.Spec.den = 1 then []
  else begin
    let i = max 1 (r.Spec.num / r.Spec.den) in
    if i > 1 && r.Spec.den > 1 then [ one; Spec.rat i 1 ] else [ one ]
  end

(* Delete task [i], contracting its edges: tasks that depended on [i]
   inherit [i]'s parents (so reachability through [i] is preserved),
   and indices above [i] shift down. Valid deps stay valid — inherited
   parents are strictly below [i], hence strictly below the child. *)
let remove_task_contract (tasks : Spec.task list) (i : int) : Spec.task list =
  let removed = List.nth tasks i in
  let contract d =
    if d = i then removed.Spec.deps else [ d ]
  in
  tasks
  |> List.filteri (fun j _ -> j <> i)
  |> List.map (fun (t : Spec.task) ->
         let deps =
           List.concat_map contract t.Spec.deps
           |> List.map (fun d -> if d > i then d - 1 else d)
           |> List.sort_uniq compare
         in
         { t with Spec.deps })

let shrink (s : Spec.t) : Spec.t Seq.t =
  let tasks = Array.to_list s.Spec.tasks in
  let n = List.length tasks in
  let mk ?(procs = s.Spec.procs) tasks = Spec.make ~procs tasks in
  (* Edge deletion runs before task deletion: a counterexample that
     survives with fewer dependency edges is structurally simpler. *)
  let drop_edge =
    Seq.concat
      (Seq.init n (fun i ->
           let t = List.nth tasks i in
           List.to_seq t.Spec.deps
           |> Seq.map (fun d ->
                  let t' = { t with Spec.deps = List.filter (fun x -> x <> d) t.Spec.deps } in
                  mk (List.mapi (fun j tj -> if j = i then t' else tj) tasks))))
  in
  let remove =
    if n <= 1 then Seq.empty else Seq.init n (fun i -> mk (remove_task_contract tasks i))
  in
  let procs_smaller =
    if s.Spec.procs <= 1 then Seq.empty
    else begin
      let half = s.Spec.procs / 2 in
      let cands =
        if half >= 1 && half < s.Spec.procs - 1 then [ half; s.Spec.procs - 1 ]
        else [ s.Spec.procs - 1 ]
      in
      Seq.map (fun p -> mk ~procs:p tasks) (List.to_seq cands)
    end
  in
  let per_task f =
    Seq.concat
      (Seq.init n (fun i ->
           List.to_seq (f (List.nth tasks i))
           |> Seq.map (fun t -> mk (List.mapi (fun j tj -> if j = i then t else tj) tasks))))
  in
  (* Rate-model simplifications run before the numeric ones: a curved
     counterexample that survives linearization is a linear bug wearing
     a costume, and dropping the capacity clause is the analogous move
     for the clamp. *)
  let linearize =
    per_task (fun t -> if t.Spec.speedup = [] then [] else [ { t with Spec.speedup = [] } ])
  in
  let uncap =
    per_task (fun t ->
        match t.Spec.capacity with None -> [] | Some _ -> [ { t with Spec.capacity = None } ])
  in
  let deltas =
    (* The last curve breakpoint must sit at delta, so delta shrinking
       applies to linear tasks only (linearize runs first). *)
    per_task (fun t ->
        if t.Spec.speedup <> [] then []
        else if t.Spec.delta > 2 then [ { t with Spec.delta = 1 }; { t with Spec.delta = t.Spec.delta / 2 } ]
        else if t.Spec.delta = 2 then [ { t with Spec.delta = 1 } ]
        else [])
  in
  let volumes = per_task (fun t -> List.map (fun v -> { t with Spec.volume = v }) (rat_candidates t.Spec.volume)) in
  let weights = per_task (fun t -> List.map (fun w -> { t with Spec.weight = w }) (rat_candidates t.Spec.weight)) in
  Seq.concat
    (List.to_seq [ drop_edge; remove; linearize; uncap; procs_smaller; deltas; volumes; weights ])

let minimize ?(max_steps = 400) ~failing (spec : Spec.t) : Spec.t =
  let rec first_failing seq =
    match seq () with
    | Seq.Nil -> None
    | Seq.Cons (c, rest) -> if failing c then Some c else first_failing rest
  in
  let rec go steps spec =
    if steps >= max_steps then spec
    else begin
      match first_failing (shrink spec) with
      | Some c -> go (steps + 1) c
      | None -> spec
    end
  in
  if failing spec then go 0 spec else spec
