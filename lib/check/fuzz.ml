(** The conformance fuzz loop behind [mwct fuzz] (DESIGN.md §11).

    Draws instances from the {!Instances} families in rotation, runs the
    full {!Differential} matrix on each, and on the first failure
    narrows the configuration to the failing (oracle, solver) pair,
    shrinks the instance with {!Instances.minimize}, and reports a
    structured {!counterexample} — the caller (the CLI) renders the
    reproducer line and writes the corpus file.

    Randomness comes from {!Mwct_util.Rng} (SplitMix64), not
    [Stdlib.Random]: the stdlib generator changed algorithms between
    OCaml 4.14 and 5.x, and the CI matrix golden-tests fuzz output on
    both. *)

open Mwct_core
module Rng = Mwct_util.Rng

type counterexample = {
  case_no : int;  (** 1-based index of the failing draw *)
  family : Instances.family;
  spec : Spec.t;  (** the instance as drawn *)
  shrunk : Spec.t;  (** after {!Instances.minimize} *)
  verdicts : Oracle.verdict list;  (** failing verdicts on [shrunk] *)
}

type outcome = {
  cases : int;  (** instances executed *)
  verdicts : int;  (** total verdicts across all cases *)
  failures : counterexample option;  (** first failure, shrunk — [None] = clean run *)
  elapsed : float;  (** wall-clock seconds *)
}

(* Narrow a config to the failing verdicts' (oracle, algo) sets so the
   shrink predicate re-runs only what failed — minimizing under the
   full matrix would multiply every shrink candidate by ~9 solvers x 8
   oracles x 2 engines. Pseudo-verdicts ("solve" failures, injected
   faults attributed to "*") fall outside the selectable names and are
   dropped; if nothing selectable remains, the original selection
   stands. *)
let narrow (cfg : Differential.config) (failing : Oracle.verdict list) : Differential.config =
  let uniq l = List.sort_uniq String.compare l in
  let oracles =
    match uniq (List.filter Differential.known_oracle (List.map (fun v -> v.Oracle.oracle) failing)) with
    | [] -> cfg.Differential.oracles
    | l -> Some l
  in
  let algos =
    match uniq (List.filter Differential.known_algo (List.map (fun v -> v.Oracle.algo) failing)) with
    | [] -> cfg.Differential.algos
    | l -> Some l
  in
  { cfg with Differential.oracles; algos }

(** [run ?progress ~seed ~budget ~max_cases cfg] — fuzz until the time
    budget (seconds) or the case count runs out, stopping at the first
    failure. [progress] is called after every case with (cases run,
    verdicts so far). *)
let run ?(progress = fun _ _ -> ()) ~seed ~budget ~max_cases (cfg : Differential.config) : outcome
    =
  let rng = Rng.create seed in
  let draw lo hi = Rng.int_in rng lo hi in
  let families = Array.of_list Instances.all_families in
  let started = Unix.gettimeofday () in
  let elapsed () = Unix.gettimeofday () -. started in
  let rec go case verdict_count =
    if case >= max_cases || elapsed () > budget then
      { cases = case; verdicts = verdict_count; failures = None; elapsed = elapsed () }
    else begin
      let family = families.(case mod Array.length families) in
      let spec = Instances.sample draw family in
      let verdicts = Differential.run_spec cfg spec in
      let verdict_count = verdict_count + List.length verdicts in
      match Differential.failures verdicts with
      | [] ->
        progress (case + 1) verdict_count;
        go (case + 1) verdict_count
      | failing ->
        let narrowed = narrow cfg failing in
        let shrunk = Instances.minimize ~failing:(Differential.fails narrowed) spec in
        let final = Differential.failures (Differential.run_spec narrowed shrunk) in
        (* Shrinking preserves failure of the narrowed config by
           construction, but guard against a flaky oracle anyway. *)
        let final = if final = [] then failing else final in
        {
          cases = case + 1;
          verdicts = verdict_count;
          failures = Some { case_no = case + 1; family; spec; shrunk; verdicts = final };
          elapsed = elapsed ();
        }
    end
  in
  go 0 0

(** One-line deterministic reproducer for a counterexample: re-running
    it replays exactly the draws that produced the failure, regardless
    of wall-clock budget. *)
let reproducer ~seed (cfg : Differential.config) (cx : counterexample) : string =
  let opt flag = function
    | None -> ""
    | Some l -> Printf.sprintf " %s %s" flag (String.concat "," l)
  in
  Printf.sprintf "mwct fuzz --seed %d --cases %d%s%s%s" seed cx.case_no
    (opt "--oracle" cfg.Differential.oracles)
    (opt "--algo" cfg.Differential.algos)
    (if cfg.Differential.inject_fault then " --inject-fault" else "")

(** Corpus file name for a counterexample:
    [fuzz-seed<seed>-case<k>-<oracle>.spec]. *)
let corpus_name ~seed (cx : counterexample) : string =
  let oracle =
    match cx.verdicts with
    | v :: _ -> v.Oracle.oracle
    | [] -> "unknown"
  in
  Printf.sprintf "fuzz-seed%d-case%d-%s.spec" seed cx.case_no oracle

(** Write the shrunk instance to [dir] (created if missing), with the
    failing verdicts and the reproducer as header comments. Returns the
    file path. *)
let write_corpus ~dir ~seed (cfg : Differential.config) (cx : counterexample) : string =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let path = Filename.concat dir (corpus_name ~seed cx) in
  let oc = open_out path in
  Printf.fprintf oc "# %s\n" (reproducer ~seed cfg cx);
  List.iter (fun v -> Printf.fprintf oc "# %s\n" (Oracle.verdict_to_string v)) cx.verdicts;
  output_string oc (Spec_io.to_string cx.shrunk);
  close_out oc;
  path
