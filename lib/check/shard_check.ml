(** Replay oracles for the sharded store (DESIGN.md §14).

    The sharded store's share profile is hierarchical (per-tick WDEQ
    budgets over shards, WDEQ again inside each shard), which is {e
    not} the flat single-engine profile — so correctness is pinned as
    determinism and replayability rather than objective equality:

    - {!check_single_identity} — with one shard the store must be a
      transparent shim: journal bytes and dump fingerprint identical to
      driving a plain engine by hand.
    - {!check_shard_replay} — each per-shard journal (init / budget /
      absolute advances / submits / out lines) must replay on a plain
      single engine via {!Mwct_runtime.Journal.Make.replay} into the
      exact live shard state (dump equality, objective equality, and
      the shard objectives must sum to the store objective).
    - {!check_merged_determinism} — the merged journal's input lines,
      fed back through a fresh store, must reproduce every journal byte
      (merged and per-shard).
    - {!check_flat_agreement} — on a drained stream the completion
      {e set} (not times) must match a flat single engine's: sharding
      reorders work, it must never lose or invent a task.

    Streams come from {!gen_stream}: tenant-clustered random traffic
    (submit / cancel / advance) with ids dense per tenant, ending in a
    drain. Everything is driven by an {!Instances.draw}, so the fuzz
    harness and the unit tests share the generator. *)

module Make (F : Mwct_field.Field.S) = struct
  module St = Mwct_runtime.Shard.Make (F)
  module En = St.En
  module J = St.J
  module P = Mwct_ncv.Policy.Make (F)

  let policy () = P.engine_policy P.Wdeq
  let kinetic () = P.engine_kinetic P.Wdeq
  let resolve name = if name = "wdeq" then Some (policy ()) else None

  (* ---------- stream generation ---------- *)

  (** A tenant-clustered event stream: [len] random events (weighted
      toward submits, with cancels of live tasks and small advances)
      followed by [Drain]. Task ids are allocated densely, so tenant =
      id mod [tenants] — routing with [St.Mod] and [nshards = tenants]
      gives one shard per tenant; [St.Hash] scatters them. Weights are
      per-tenant bases (clustered mass), volumes and caps individual. *)
  let gen_stream (draw : Instances.draw) ?(tenants = 4) ?(deps = false) ~len () : En.event list =
    let bases = Array.init tenants (fun _ -> draw 1 8) in
    let next = ref 0 in
    (* Cancels target only tasks submitted since the last advance:
       volumes are positive and submit/cancel move no time, so those
       tasks provably haven't completed yet — the stream applies
       cleanly to any engine without simulating completions here.

       With [deps], a third of the submits list one parent drawn from
       [settled] — tasks that survived an advance. Settled ids are
       never cancelled (cancels target [fresh] only), so the stream
       never references a cascade-removed parent, and a fresh dormant
       task is never anyone's parent — a Cancel of it cascades to
       exactly itself. One parent, not several: the sharded store
       routes a dependent to its first parent's shard and requires the
       rest to be co-resident (multi-parent joins across shards are
       rejected by the shard engine as unknown dependencies), so
       cross-shard streams stay single-parent; the multi-parent
       lifecycle is covered by the single-engine suites. *)
    let fresh = ref [] in
    let nfresh = ref 0 in
    let settled = ref [||] in
    let submit () =
      let id = !next in
      incr next;
      fresh := id :: !fresh;
      incr nfresh;
      let parents =
        if (not deps) || Array.length !settled = 0 || draw 0 2 > 0 then []
        else [ !settled.(draw 0 (Array.length !settled - 1)) ]
      in
      En.Submit
        {
          id;
          volume = F.of_q (draw 1 32) 4;
          weight = F.of_int bases.(id mod tenants);
          cap = F.of_int (draw 1 4);
          speedup = None;
          deps = parents;
        }
    in
    let events =
      List.init len (fun _ ->
          match draw 0 9 with
          | 0 | 1 | 2 | 3 | 4 -> submit ()
          | 5 | 6 when !nfresh > 0 ->
            let k = draw 0 (!nfresh - 1) in
            let id = List.nth !fresh k in
            fresh := List.filter (fun i -> i <> id) !fresh;
            decr nfresh;
            En.Cancel id
          | 5 | 6 -> submit ()
          | _ ->
            settled := Array.append !settled (Array.of_list !fresh);
            fresh := [];
            nfresh := 0;
            En.Advance (F.of_q (draw 0 8) 4))
    in
    events @ [ En.Drain ]

  (* ---------- store / engine drivers ---------- *)

  type capture = {
    store : St.t;
    merged : string list;  (* chronological *)
    shards : string list array;  (* chronological, per shard *)
  }

  (** Run a stream through a sharded store, capturing every journal
      line. Engine errors are reported — generated streams must apply
      cleanly. *)
  let run_store ?(record_segments = true) ~nshards ~route ~capacity (stream : En.event list) :
      (capture, string) result =
    let merged = ref [] in
    let shards = Array.make nshards [] in
    let store =
      St.create ~record_segments ~nshards ~route ~capacity
        ~merged_sink:(fun l -> merged := l :: !merged)
        ~shard_sink:(fun k l -> shards.(k) <- l :: shards.(k))
        ~allocator:(policy ()) ~policy:(policy ()) ~kinetic ~policy_label:"wdeq" ()
    in
    let err = ref None in
    List.iteri
      (fun i ev ->
        if !err = None then
          match St.apply store ev with
          | Ok _ -> ()
          | Error e -> err := Some (Printf.sprintf "event %d: %s" i (En.error_to_string e)))
      stream;
    St.shutdown store;
    match !err with
    | Some msg -> Error msg
    | None ->
      Ok { store; merged = List.rev !merged; shards = Array.map List.rev shards }

  (** Drive a plain engine by hand, producing the same journal a
      single-shard store (or the pre-shard serve loop) would: init
      first, an input line per applied event, an out line per decision,
      one shared sequence counter. *)
  let run_plain ?(record_segments = true) ~capacity (stream : En.event list) :
      (En.t * string list, string) result =
    let eng = En.create ~record_segments ?kinetic:(kinetic ()) ~capacity ~policy:(policy ()) () in
    let lines = ref [] in
    let seq = ref 0 in
    let emit e =
      lines := J.to_line ~seq:!seq e :: !lines;
      incr seq
    in
    emit (J.Init { capacity; policy = "wdeq" });
    let err = ref None in
    List.iteri
      (fun i ev ->
        if !err = None then
          match En.apply eng ev with
          | Ok notes ->
            emit (J.Input ev);
            List.iter (fun (n : En.notification) -> emit (J.Output { id = n.En.id; at = n.En.at })) notes
          | Error e -> err := Some (Printf.sprintf "event %d: %s" i (En.error_to_string e)))
      stream;
    match !err with Some msg -> Error msg | None -> Ok (eng, List.rev !lines)

  let ( let* ) = Result.bind

  let diff_lines what a b =
    if a = b then Ok ()
    else begin
      let rec first i a b =
        match (a, b) with
        | [], [] -> Printf.sprintf "%s: length mismatch" what
        | x :: _, [] | [], x :: _ -> Printf.sprintf "%s: line %d only on one side: %s" what i x
        | x :: xs, y :: ys ->
          if x = y then first (i + 1) xs ys
          else Printf.sprintf "%s: line %d differs:\n  %s\n  %s" what i x y
      in
      Error (first 0 a b)
    end

  (* ---------- the oracles ---------- *)

  (** A one-shard store must be byte-identical to the plain engine:
      same journal lines, same dump fingerprint, same objective. *)
  let check_single_identity ?deps (draw : Instances.draw) ~len : (unit, string) result =
    let stream = gen_stream draw ?deps ~len () in
    let capacity = F.of_int 4 in
    let* c = run_store ~nshards:1 ~route:St.Mod ~capacity stream in
    let* eng, plain_lines = run_plain ~capacity stream in
    let* () = diff_lines "single-shard journal" c.merged plain_lines in
    if St.dump c.store <> En.dump eng then Error "single-shard dump differs from plain engine"
    else if not (F.equal (St.weighted_completion c.store) (En.weighted_completion eng)) then
      Error "single-shard objective differs from plain engine"
    else Ok ()

  (** Every per-shard journal must replay on a plain single engine into
      the exact live shard state, and the shard objectives must sum to
      the store objective ([F.equal] — the sum is in ascending shard
      order, the order {!Mwct_runtime.Shard.Make.metrics_json}
      aggregates in). *)
  let check_shard_replay ?deps (draw : Instances.draw) ~nshards ~route ~len : (unit, string) result =
    let stream = gen_stream draw ?deps ~len () in
    let capacity = F.of_int 4 in
    let* c = run_store ~nshards ~route ~capacity stream in
    let engines = St.engines c.store in
    let rec shard k acc_obj =
      if k = nshards then
        if F.equal acc_obj (St.weighted_completion c.store) then Ok ()
        else Error "shard objectives do not sum to the store objective"
      else begin
        let* entries =
          List.fold_left
            (fun acc line ->
              let* acc = acc in
              match J.of_line line with
              | Ok e -> Ok (e :: acc)
              | Error msg -> Error (Printf.sprintf "shard %d journal: %s" k msg))
            (Ok []) c.shards.(k)
          |> Result.map List.rev
        in
        let* replayed =
          Result.map_error (fun msg -> Printf.sprintf "shard %d replay: %s" k msg)
            (J.replay ~resolve entries)
        in
        if En.dump replayed <> En.dump engines.(k) then
          Error (Printf.sprintf "shard %d: replayed dump differs from live shard" k)
        else shard (k + 1) (F.add acc_obj (En.weighted_completion replayed))
      end
    in
    shard 0 F.zero

  (** Feeding the merged journal's input lines through a fresh store
      must reproduce every journal byte — merged and per-shard. *)
  let check_merged_determinism ?deps (draw : Instances.draw) ~nshards ~route ~len :
      (unit, string) result =
    let stream = gen_stream draw ?deps ~len () in
    let capacity = F.of_int 4 in
    let* c = run_store ~nshards ~route ~capacity stream in
    let* inputs =
      List.fold_left
        (fun acc line ->
          let* acc = acc in
          match J.of_line line with
          | Ok (_, J.Input ev) -> Ok (ev :: acc)
          | Ok (_, (J.Init _ | J.Output _ | J.Budget _ | J.Policy _)) -> Ok acc
          | Error msg -> Error (Printf.sprintf "merged journal: %s" msg))
        (Ok []) c.merged
      |> Result.map List.rev
    in
    let* c2 = run_store ~nshards ~route ~capacity inputs in
    let* () = diff_lines "merged journal (re-run)" c.merged c2.merged in
    let rec shards k =
      if k = nshards then Ok ()
      else
        let* () = diff_lines (Printf.sprintf "shard %d journal (re-run)" k) c.shards.(k) c2.shards.(k) in
        shards (k + 1)
    in
    shards 0

  (** On a drained stream the sharded completion set must equal the
      flat single engine's — same completed task ids, none lost to
      routing, none double-completed (times differ: hierarchical
      budgets are not the flat profile). *)
  let check_flat_agreement ?deps (draw : Instances.draw) ~nshards ~route ~len : (unit, string) result =
    let stream = gen_stream draw ?deps ~len () in
    let capacity = F.of_int 4 in
    let* c = run_store ~nshards ~route ~capacity stream in
    let* eng, _ = run_plain ~capacity stream in
    let completed_ids lines =
      List.filter_map
        (fun line -> match J.of_line line with Ok (_, J.Output { id; _ }) -> Some id | _ -> None)
        lines
      |> List.sort_uniq compare
    in
    let sharded = completed_ids c.merged in
    let flat = List.map fst (En.completions eng) in
    if sharded = flat then
      if St.alive_count c.store = 0 then Ok ()
      else Error "store not drained: alive tasks remain after Drain"
    else
      Error
        (Printf.sprintf "completion sets differ: %d sharded vs %d flat" (List.length sharded)
           (List.length flat))
end

(** Pre-applied checkers. *)
module Float = Make (Mwct_field.Field.Float_field)

module Exact = Make (Mwct_rational.Rational.Rat_field)
