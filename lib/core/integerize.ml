(** Theorem 3 — fractional column schedules ↔ integer allocations.

    [of_columns] is the constructive direction used in the paper's
    proof (Figure 2): within each column the tasks' areas are laid out
    consecutively over the processor×time rectangle, wrapping from one
    processor to the next (exactly McNaughton's wrap rule applied per
    column). Every task then uses either [⌊d_{i,j}⌋] or [⌈d_{i,j}⌉]
    processors at every instant, and its completion time is unchanged.

    [to_columns] is the averaging direction: any integer schedule
    collapses to a column schedule by giving each task its average
    allocation per column.

    The field needs a floor operation for nothing: the wrap is computed
    by walking processor bins sequentially with exact arithmetic. *)

module Make (F : Mwct_field.Field.S) = struct
  module T = Types.Make (F)
  module I = Instance.Make (F)
  module S = Schedule.Make (F)
  open T

  (** Per-task, per-column processor bookings of the wrap construction,
      plus the demand profile. Bookings are the concrete Gantt chart;
      demands feed {!Assignment}. *)
  let of_columns (s : column_schedule) : integer_schedule * gantt =
    let n = Array.length s.finish in
    let nb_procs =
      match F.to_float s.instance.procs with
      | p when Float.is_integer p && p >= 1. -> int_of_float p
      | _ -> invalid_arg "Integerize.of_columns: P must be an integer"
    in
    let bookings = Array.make nb_procs [] in
    (* Raw (unmerged) demand steps per task: (start, end, procs). *)
    let demand_raw = Array.make n [] in
    for j = 0 to n - 1 do
      let cstart = S.column_start s j in
      let len = S.column_length s j in
      (* The exact right edge of the column: the next column starts at
         [finish.(j)] (Schedule.column_start), so bookings are clamped
         to it below. [cstart + used + take] can land one ulp past it
         under floats, and that overhang would make the task's adjacent
         columns' demand segments overlap at the seam — Assignment then
         sees a transient demand of P+1. Exact fields are unchanged. *)
      let cend = s.finish.(j) in
      if F.sign len > 0 then begin
        (* Sequential fill: processor [p] is filled up to offset
           [used] (a time offset within the column, in [0, len]). *)
        let p = ref 0 in
        let used = ref F.zero in
        List.iter (fun (i, a) ->
          if F.sign a > 0 then begin
            let remaining_area = ref (F.mul a len) in
            (* This task's bookings inside the column. *)
            let mine = ref [] in
            (* The approximate comparison absorbs float drift in the
               accumulated areas; it is exact for rationals. *)
            while not (F.leq_approx !remaining_area F.zero) do
              if !p >= nb_procs then invalid_arg "Integerize.of_columns: column overflows P";
              let room = F.sub len !used in
              let take = F.min !remaining_area room in
              if F.sign take > 0 then begin
                let t0 = F.min (F.add cstart !used) cend in
                let t1 = F.min (F.add cstart (F.add !used take)) cend in
                if F.compare t0 t1 < 0 then begin
                  bookings.(!p) <- { task = i; from_time = t0; to_time = t1 } :: bookings.(!p);
                  mine := (t0, t1) :: !mine
                end;
                used := F.add !used take;
                remaining_area := F.sub !remaining_area take
              end;
              if F.sign (F.sub len !used) <= 0 then begin
                incr p;
                used := F.zero
              end
            done;
            (* Demand profile of this task within the column: sweep the
               booking endpoints. *)
            let points =
              List.sort_uniq F.compare (cstart :: cend :: List.concat_map (fun (a, b) -> [ a; b ]) !mine)
            in
            let rec emit = function
              | t0 :: (t1 :: _ as rest) ->
                let count =
                  List.fold_left
                    (fun acc (a, b) -> if F.compare a t0 <= 0 && F.compare t1 b <= 0 then acc + 1 else acc)
                    0 !mine
                in
                if count > 0 then demand_raw.(i) <- { start_time = t0; end_time = t1; procs = count } :: demand_raw.(i);
                emit rest
              | _ -> ()
            in
            emit points
          end)
          (S.column_allocs s j)
      end
    done;
    (* Sort and merge demands per task. *)
    let demands =
      Array.map
        (fun raw ->
          let sorted = List.sort (fun a b -> F.compare a.start_time b.start_time) raw in
          let rec merge = function
            | a :: b :: rest when a.procs = b.procs && F.equal a.end_time b.start_time ->
              merge ({ a with end_time = b.end_time } :: rest)
            | a :: rest -> a :: merge rest
            | [] -> []
          in
          merge sorted)
        demand_raw
    in
    let gantt = { instance = s.instance; processors = Array.map List.rev bookings } in
    ({ instance = s.instance; demands }, gantt)

  (** Averaging direction of Theorem 3: rebuild a column schedule from
      integer demands. Completion times are the last demand ends. *)
  let to_columns (is : integer_schedule) : column_schedule =
    let completion =
      Array.map
        (fun segs -> List.fold_left (fun acc seg -> F.max acc seg.end_time) F.zero segs)
        is.demands
    in
    let order = S.sorted_order completion in
    let finish = Array.map (fun i -> completion.(i)) order in
    let segments =
      Array.map
        (List.map (fun seg -> (seg.start_time, seg.end_time, F.of_int seg.procs)))
        is.demands
    in
    let columns = S.columns_of_segments ~finish segments in
    { instance = is.instance; order; finish; columns }

  (** Check the Theorem 3 invariant on a wrap output: at any instant a
      task holds either [⌊d⌋] or [⌈d⌉] processors of its fractional
      column allocation. Returns the first violating task or [None]. *)
  let check_floor_ceil (s : column_schedule) (is : integer_schedule) : int option =
    let n = Array.length s.finish in
    let bad = ref None in
    for i = 0 to n - 1 do
      if Option.is_none !bad then
        for j = 0 to n - 1 do
          if F.to_float (S.column_length s j) > 1e-9 then begin
            let cstart = F.to_float (S.column_start s j) and cend = F.to_float s.finish.(j) in
            let d = F.to_float (S.alloc s i j) in
            let lo = Float.floor (d -. 1e-6) and hi = Float.ceil (d +. 1e-6) in
            List.iter
              (fun seg ->
                (* Overlap of the segment interior with the column
                   interior (slack absorbs float drift at edges). *)
                let a = Float.max (F.to_float seg.start_time) cstart in
                let b = Float.min (F.to_float seg.end_time) cend in
                if b -. a > 1e-6 then begin
                  let q = float_of_int seg.procs in
                  if q < lo -. 0.5 || q > hi +. 0.5 then bad := Some i
                end)
              is.demands.(i)
          end
        done
    done;
    !bad
end
