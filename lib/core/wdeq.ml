(** WDEQ — Weighted Dynamic EQuipartition (Algorithm 1, Section III).

    The non-clairvoyant policy: at every instant the platform is shared
    between alive tasks in proportion to their weights; a task whose
    proportional share exceeds its cap [δ_i] is clipped to [δ_i] and
    the surplus redistributed among the others, repeatedly, until a
    fixpoint. Shares are recomputed whenever a task completes.

    {b Share computation.} The fixpoint of Algorithm 1 is a monotone
    threshold in the saturation ratio [ρ_i = δ_i / w_i]: a task is
    clipped at its cap iff [ρ_i < r/w] where [r]/[w] are the residual
    processors/weight of the unclipped pool. Sorting the alive tasks by
    [ρ] once, the clipped set is a prefix of that order and the
    frontier is found by binary search over prefix sums of caps and
    weights — [O(log n)] per event after an [O(n log n)] sort — instead
    of the seed's repeated [List.partition] fixpoint ([O(n²)] per
    event). See DESIGN.md §6 for the monotonicity argument.

    The module {e simulates} the policy on a clairvoyant instance
    (volumes are used only to find the next completion event, exactly
    as a real execution would reveal it) and records the diagnostics
    needed to check Lemma 2's bound
    [TC_WD(I) <= 2·(A(I[VF̄]) + H(I[VF]))]. Since [ρ] never changes
    during a run, {!simulate} sorts once and replays the frontier
    search per completion event: a full run is [O(n²)], dominated by
    emitting the (sparse) per-column shares. *)

module Make (F : Mwct_field.Field.S) = struct
  module T = Types.Make (F)
  module I = Instance.Make (F)
  module S = Schedule.Make (F)
  open T

  (** Per-run diagnostics: for each task, the volume it processed while
      running at its full allocation [δ_i] ([full_volume], the paper's
      [VF_i]) and while limited by equipartition ([limited_volume], the
      paper's [VF̄_i]). The two sum to [V_i]. *)
  type diagnostics = { full_volume : F.t array; limited_volume : F.t array }

  (** Reference implementation of one round of Algorithm 1, kept
      verbatim from the iterative [List.partition] fixpoint: saturate
      every currently-violating task, redistribute, repeat. [O(n²)]
      worst case. Used as ground truth by the cross-engine equivalence
      tests; production code goes through {!shares}. *)
  let shares_reference ~p alive : (int * F.t) list =
    let rec go unsat saturated r w =
      (* r = remaining processors, w = remaining weight. *)
      let violating, rest =
        List.partition (fun (_, wi, di) -> F.compare (F.mul di w) (F.mul wi r) < 0) unsat
      in
      match violating with
      | [] ->
        let give =
          List.map (fun (i, wi, _) -> (i, if F.sign w > 0 then F.div (F.mul wi r) w else F.zero)) rest
        in
        saturated @ give
      | _ ->
        let r' = List.fold_left (fun acc (_, _, di) -> F.sub acc di) r violating in
        let w' = List.fold_left (fun acc (_, wi, _) -> F.sub acc wi) w violating in
        go rest (List.map (fun (i, _, di) -> (i, di)) violating @ saturated) r' w'
    in
    let w0 = List.fold_left (fun acc (_, wi, _) -> F.add acc wi) F.zero alive in
    go alive [] p w0

  (* Saturation-frontier kernel over parallel arrays already sorted by
     [δ/w] ascending: [ws]/[ds] hold the weights/caps of the [m] alive
     tasks, [pd]/[pw] are scratch of length >= m+1. Writes each task's
     share into [out] (indexed like [ws]/[ds]). *)
  let frontier_shares ~p ~m ws ds pd pw (out : F.t array) =
    pd.(0) <- F.zero;
    pw.(0) <- F.zero;
    for k = 0 to m - 1 do
      pd.(k + 1) <- F.add pd.(k) ds.(k);
      pw.(k + 1) <- F.add pw.(k) ws.(k)
    done;
    let total_w = pw.(m) in
    (* P(k): with the first k tasks clipped at their caps, the next
       task (if any) is unclipped — equivalently the fixpoint's clipped
       set has size <= k. P is monotone in k, so binary search finds
       the fixpoint (the smallest k with P(k)). *)
    let sat_ok k =
      k = m
      ||
      let r = F.sub p pd.(k) and w = F.sub total_w pw.(k) in
      F.sign w <= 0 || F.compare (F.mul ds.(k) w) (F.mul ws.(k) r) >= 0
    in
    let lo = ref 0 and hi = ref m in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if sat_ok mid then hi := mid else lo := mid + 1
    done;
    let ksat = !lo in
    let r = F.sub p pd.(ksat) and w = F.sub total_w pw.(ksat) in
    let positive_w = F.sign w > 0 in
    for k = 0 to m - 1 do
      out.(k) <-
        (if k < ksat then ds.(k)
         else if positive_w then F.div (F.mul ws.(k) r) w
         else F.zero)
    done

  (** One round of Algorithm 1: shares for the alive tasks.
      [alive] gives (index, weight, delta); the result maps each alive
      index to its share. Total shares never exceed [p].
      [O(n log n)] — sort by saturation ratio, then one binary-searched
      threshold. Agrees with {!shares_reference} (exactly over exact
      fields). *)
  let shares ~p alive : (int * F.t) list =
    let arr = Array.of_list alive in
    Array.sort
      (fun (a, wa, da) (b, wb, db) ->
        let c = F.compare (F.mul da wb) (F.mul db wa) in
        if c <> 0 then c else Stdlib.compare a b)
      arr;
    let m = Array.length arr in
    let ws = Array.make m F.zero and ds = Array.make m F.zero in
    Array.iteri
      (fun k (_, w, d) ->
        ws.(k) <- w;
        ds.(k) <- d)
      arr;
    let pd = Array.make (m + 1) F.zero and pw = Array.make (m + 1) F.zero in
    let out = Array.make m F.zero in
    frontier_shares ~p ~m ws ds pd pw out;
    List.init m (fun k ->
        let i, _, _ = arr.(k) in
        (i, out.(k)))

  (** Field-generic simulation loop — the semantic source of truth for
      {!simulate}, which dispatches to a monomorphic float kernel when
      the field witness allows it. Exposed for the differential tests
      pinning the kernel bit-for-bit. *)
  let simulate_reference ?(use_weights = true) (inst : instance) : column_schedule * diagnostics =
    let n = I.num_tasks inst in
    let weight = if use_weights then fun i -> inst.tasks.(i).weight else fun _ -> F.one in
    let delta = Array.init n (fun i -> I.effective_delta inst i) in
    let remaining = Array.map (fun t -> t.volume) inst.tasks in
    let alive = Array.make n true in
    let full_volume = Array.make n F.zero in
    let limited_volume = Array.make n F.zero in
    let order = Array.make n 0 in
    let finish = Array.make n F.zero in
    let columns = Array.make n [] in
    (* The saturation ratio δ_i/w_i is static, so one sort serves every
       completion event. [by_ratio] and [by_index] hold the alive tasks
       (ρ-ascending and index-ascending respectively); completed tasks
       are compacted out after each event, so every per-event loop is
       O(alive), not O(n). *)
    let by_ratio = Array.init n (fun i -> i) in
    Array.sort
      (fun a b ->
        let c = F.compare (F.mul delta.(a) (weight b)) (F.mul delta.(b) (weight a)) in
        if c <> 0 then c else Stdlib.compare a b)
      by_ratio;
    let by_index = Array.init n (fun i -> i) in
    (* Reused scratch for the per-event frontier computation. *)
    let ws = Array.make n F.zero and ds = Array.make n F.zero in
    let pd = Array.make (n + 1) F.zero and pw = Array.make (n + 1) F.zero in
    let out = Array.make n F.zero in
    let share = Array.make n F.zero in
    (* Progress rate of each alive task at its current share; equals
       the share itself under the linear law, so every linear-instance
       value below is the historical one bit-for-bit. *)
    let rate = Array.make n F.zero in
    let t_now = ref F.zero in
    let col = ref 0 in
    let m = ref n in
    while !col < n do
      let m0 = !m in
      for k = 0 to m0 - 1 do
        let i = by_ratio.(k) in
        ws.(k) <- weight i;
        ds.(k) <- delta.(i)
      done;
      frontier_shares ~p:inst.procs ~m:m0 ws ds pd pw out;
      (* Time to the next completion; [t_best < 0] encodes "none yet". *)
      let t_best = ref F.zero in
      let seen = ref false in
      for k = 0 to m0 - 1 do
        let i = by_ratio.(k) in
        share.(i) <- out.(k);
        rate.(i) <- I.rate_at inst i out.(k);
        if F.sign rate.(i) > 0 then begin
          let ti = F.div remaining.(i) rate.(i) in
          if (not !seen) || F.compare ti !t_best < 0 then begin
            t_best := ti;
            seen := true
          end
        end
      done;
      if not !seen then invalid_arg "Wdeq.simulate: no task can progress";
      let dt = !t_best in
      let t_end = F.add !t_now dt in
      (* Advance volumes; split them into full-allocation vs limited
         volume for the Lemma 2 diagnostics; collect completions. *)
      let finished = ref [] in
      for k = 0 to m0 - 1 do
        let i = by_ratio.(k) in
        let s = out.(k) in
        let processed = F.mul rate.(i) dt in
        remaining.(i) <- F.sub remaining.(i) processed;
        let saturated = F.equal_approx s delta.(i) in
        if saturated then full_volume.(i) <- F.add full_volume.(i) processed
        else limited_volume.(i) <- F.add limited_volume.(i) processed;
        if F.leq_approx remaining.(i) F.zero then finished := i :: !finished
      done;
      let finished = List.sort Stdlib.compare !finished in
      (match finished with
      | [] -> invalid_arg "Wdeq.simulate: no completion at event (numeric drift)"
      | _ -> ());
      (* The sparse column: alive tasks with positive shares, by
         ascending task index. *)
      let column = ref [] in
      for k = m0 - 1 downto 0 do
        let i = by_index.(k) in
        if F.sign share.(i) > 0 then column := (i, share.(i)) :: !column
      done;
      (* One column per completed task: the first carries the duration,
         simultaneous completions give zero-length columns. *)
      List.iteri
        (fun k i ->
          let j = !col + k in
          order.(j) <- i;
          finish.(j) <- t_end;
          alive.(i) <- false;
          if k = 0 then columns.(j) <- !column)
        finished;
      col := !col + List.length finished;
      t_now := t_end;
      (* Compact the completed tasks out of both alive orders. *)
      let keep = ref 0 in
      for k = 0 to m0 - 1 do
        let i = by_ratio.(k) in
        if alive.(i) then begin
          by_ratio.(!keep) <- i;
          incr keep
        end
      done;
      let keep2 = ref 0 in
      for k = 0 to m0 - 1 do
        let i = by_index.(k) in
        if alive.(i) then begin
          by_index.(!keep2) <- i;
          incr keep2
        end
      done;
      m := !keep
    done;
    ({ instance = inst; order; finish; columns }, { full_volume; limited_volume })

  (* Monomorphic replica of {!simulate_reference} for [F.t = float],
     recovered through the field witness: flat float arrays, unboxed
     arithmetic, no per-event closure or option traffic. The arithmetic
     is kept literally the generic loop's — [Float.compare] selections,
     [remaining /. s] event horizons, [rem <= eps] completion and
     [abs (s -. delta) <= eps] saturation tolerances (the [leq_approx]
     / [equal_approx] of {!Mwct_field.Field.Float_field}, the witness's
     single float inhabitant), no FMA contraction — so the schedules
     are bit-identical, which the kernel equivalence tests pin. *)
  let simulate_float_opt :
      (use_weights:bool -> instance -> column_schedule * diagnostics) option =
    match F.witness with
    | Mwct_field.Field.Any -> None
    | Mwct_field.Field.Float ->
      let eps = Mwct_field.Field.Float_field.epsilon in
      Some
        (fun ~use_weights (inst : instance) ->
          let n = I.num_tasks inst in
          let p = inst.procs in
          let weight =
            Array.init n (fun i -> if use_weights then inst.tasks.(i).weight else 1.)
          in
          let delta = Array.init n (fun i -> I.effective_delta inst i) in
          let remaining = Array.map (fun t -> t.volume) inst.tasks in
          let alive = Array.make n true in
          let full_volume = Array.make n 0. in
          let limited_volume = Array.make n 0. in
          let order = Array.make n 0 in
          let finish = Array.make n 0. in
          let columns : (int * float) list array = Array.make n [] in
          let by_ratio = Array.init n (fun i -> i) in
          Array.sort
            (fun a b ->
              let c = Float.compare (delta.(a) *. weight.(b)) (delta.(b) *. weight.(a)) in
              if c <> 0 then c else Stdlib.compare a b)
            by_ratio;
          let by_index = Array.init n (fun i -> i) in
          let ws = Array.make n 0. and ds = Array.make n 0. in
          let pd = Array.make (n + 1) 0. and pw = Array.make (n + 1) 0. in
          let out = Array.make n 0. in
          let share = Array.make n 0. in
          let finished_buf = Array.make n 0 in
          let t_now = ref 0. in
          let col = ref 0 in
          let m = ref n in
          while !col < n do
            let m0 = !m in
            for k = 0 to m0 - 1 do
              let i = Array.unsafe_get by_ratio k in
              Array.unsafe_set ws k (Array.unsafe_get weight i);
              Array.unsafe_set ds k (Array.unsafe_get delta i)
            done;
            (* frontier_shares, monomorphic *)
            pd.(0) <- 0.;
            pw.(0) <- 0.;
            for k = 0 to m0 - 1 do
              Array.unsafe_set pd (k + 1) (Array.unsafe_get pd k +. Array.unsafe_get ds k);
              Array.unsafe_set pw (k + 1) (Array.unsafe_get pw k +. Array.unsafe_get ws k)
            done;
            let total_w = pw.(m0) in
            let sat_ok k =
              k = m0
              ||
              let r = p -. pd.(k) and w = total_w -. pw.(k) in
              w <= 0. || Float.compare (ds.(k) *. w) (ws.(k) *. r) >= 0
            in
            let lo = ref 0 and hi = ref m0 in
            while !lo < !hi do
              let mid = (!lo + !hi) / 2 in
              if sat_ok mid then hi := mid else lo := mid + 1
            done;
            let ksat = !lo in
            let r = p -. pd.(ksat) and w = total_w -. pw.(ksat) in
            let positive_w = w > 0. in
            for k = 0 to m0 - 1 do
              Array.unsafe_set out k
                (if k < ksat then Array.unsafe_get ds k
                 else if positive_w then Array.unsafe_get ws k *. r /. w
                 else 0.)
            done;
            (* time to the next completion *)
            let t_best = ref 0. in
            let seen = ref false in
            for k = 0 to m0 - 1 do
              let i = Array.unsafe_get by_ratio k in
              let s = Array.unsafe_get out k in
              Array.unsafe_set share i s;
              if s > 0. then begin
                let ti = Array.unsafe_get remaining i /. s in
                if (not !seen) || Float.compare ti !t_best < 0 then begin
                  t_best := ti;
                  seen := true
                end
              end
            done;
            if not !seen then invalid_arg "Wdeq.simulate: no task can progress";
            let dt = !t_best in
            let t_end = !t_now +. dt in
            let nfin = ref 0 in
            for k = 0 to m0 - 1 do
              let i = Array.unsafe_get by_ratio k in
              let s = Array.unsafe_get out k in
              let processed = s *. dt in
              let rem = Array.unsafe_get remaining i -. processed in
              Array.unsafe_set remaining i rem;
              let saturated = Float.abs (s -. Array.unsafe_get delta i) <= eps in
              if saturated then
                Array.unsafe_set full_volume i (Array.unsafe_get full_volume i +. processed)
              else Array.unsafe_set limited_volume i (Array.unsafe_get limited_volume i +. processed);
              if rem <= eps then begin
                finished_buf.(!nfin) <- i;
                incr nfin
              end
            done;
            if !nfin = 0 then invalid_arg "Wdeq.simulate: no completion at event (numeric drift)";
            (* finished tasks ascending, like the reference's List.sort *)
            let fin = Array.sub finished_buf 0 !nfin in
            Array.sort Stdlib.compare fin;
            let column = ref [] in
            for k = m0 - 1 downto 0 do
              let i = by_index.(k) in
              if share.(i) > 0. then column := (i, share.(i)) :: !column
            done;
            Array.iteri
              (fun k i ->
                let j = !col + k in
                order.(j) <- i;
                finish.(j) <- t_end;
                alive.(i) <- false;
                if k = 0 then columns.(j) <- !column)
              fin;
            col := !col + !nfin;
            t_now := t_end;
            let keep = ref 0 in
            for k = 0 to m0 - 1 do
              let i = by_ratio.(k) in
              if alive.(i) then begin
                by_ratio.(!keep) <- i;
                incr keep
              end
            done;
            let keep2 = ref 0 in
            for k = 0 to m0 - 1 do
              let i = by_index.(k) in
              if alive.(i) then begin
                by_index.(!keep2) <- i;
                incr keep2
              end
            done;
            m := !keep
          done;
          ({ instance = inst; order; finish; columns }, { full_volume; limited_volume }))

  (** Simulate a dynamic-equipartition run. [use_weights = false] gives
      plain DEQ (Deng et al.), the unweighted special case. On the
      float field with the linear rate law this runs the monomorphic
      kernel (bit-identical to {!simulate_reference}, several times
      faster at scale); speedup-curve instances take the generic
      path. *)
  let simulate ?(use_weights = true) (inst : instance) : column_schedule * diagnostics =
    match simulate_float_opt with
    | Some f when not (I.has_curves inst) -> f ~use_weights inst
    | _ -> simulate_reference ~use_weights inst

  (** WDEQ schedule of an instance. *)
  let wdeq inst = simulate ~use_weights:true inst

  (** DEQ (unweighted dynamic equipartition) on the same instance; the
      schedule ignores weights but the objective can still be evaluated
      with them. *)
  let deq inst = simulate ~use_weights:false inst
end
