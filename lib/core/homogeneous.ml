(** The homogeneous instances of Section V-B: [P = 1], [V_i = w_i = 1],
    [δ_i >= 1/2] (deltas are {e fractional} here — the section works on
    the normalized problem where the platform is one unit of bandwidth
    and [δ_i] is a rate in [[1/2, 1]]).

    On this class Theorem 11 applies, every optimal schedule is greedy,
    and the greedy schedule for an order [σ] obeys the closed
    recurrence

    [C_σ(1) = 1/δ_σ(1)], and for [i > 1]
    [C_σ(i) = C_σ(i−1) + (1 − (1−δ_σ(i−1))·(C_σ(i−1) − C_σ(i−2))) / δ_σ(i)].

    Conjecture 13 states the sum of completion times of an order equals
    that of the reversed order; the paper checked it with Sage up to 15
    tasks — {!reversal_gap} reproduces the check exactly when
    instantiated with rationals. *)

module Make (F : Mwct_field.Field.S) = struct
  module Ord = Orderings.Make (F)

  (** Validity of the class: all [1/2 <= δ_i <= 1]. *)
  let valid_deltas (deltas : F.t array) =
    Array.for_all
      (fun d -> F.compare (F.of_q 1 2) d <= 0 && F.compare d F.one <= 0)
      deltas

  (** Completion times of the greedy schedule for [order] (a
      permutation of the delta indices), by the Section V-B
      recurrence. *)
  let completion_times (deltas : F.t array) (order : int array) : F.t array =
    let n = Array.length order in
    if Array.length deltas <> n then invalid_arg "Homogeneous.completion_times: length mismatch";
    let c = Array.make n F.zero in
    for i = 0 to n - 1 do
      let d_i = deltas.(order.(i)) in
      if i = 0 then c.(0) <- F.div F.one d_i
      else begin
        let c1 = c.(i - 1) in
        let c2 = if i >= 2 then c.(i - 2) else F.zero in
        let d_prev = deltas.(order.(i - 1)) in
        let leftover = F.mul (F.sub F.one d_prev) (F.sub c1 c2) in
        c.(i) <- F.add c1 (F.div (F.sub F.one leftover) d_i)
      end
    done;
    c

  (** Sum of completion times of the greedy schedule for [order]. *)
  let total (deltas : F.t array) (order : int array) : F.t =
    Array.fold_left F.add F.zero (completion_times deltas order)

  (** [total σ − total (reverse σ)]; Conjecture 13 says it is zero. *)
  let reversal_gap (deltas : F.t array) (order : int array) : F.t =
    F.sub (total deltas order) (total deltas (Ord.reverse order))

  (** Exhaustive best order (and its objective). Exponential; intended
      for the small-case study of Section V-B. *)
  let best_order (deltas : F.t array) : F.t * int array =
    let n = Array.length deltas in
    let best =
      Ord.fold_permutations n
        (fun best order ->
          let v = total deltas order in
          match best with
          | Some (b, _) when F.compare b v <= 0 -> best
          | _ -> Some (v, Array.copy order))
        None
    in
    match best with Some r -> r | None -> invalid_arg "Homogeneous.best_order: empty"

  (** All optimal orders (for the small-case pattern study). *)
  let optimal_orders (deltas : F.t array) : F.t * int array list =
    let n = Array.length deltas in
    let best, orders =
      Ord.fold_permutations n
        (fun (best, acc) order ->
          let v = total deltas order in
          match best with
          | None -> (Some v, [ Array.copy order ])
          | Some b ->
            let c = F.compare v b in
            if c < 0 then (Some v, [ Array.copy order ])
            else if c = 0 then (best, Array.copy order :: acc)
            else (best, acc))
        (None, [])
    in
    match best with
    | Some b -> (b, List.rev orders)
    | None -> invalid_arg "Homogeneous.optimal_orders: empty"

  (** Build the equivalent library instance ([P=1], [V=w=1], the given
      deltas) so generic algorithms can cross-check the recurrence.
      Note the deltas violate the integer-δ convention of
      {!Instance.Make.validate}; this instance type is nonetheless
      meaningful for every algorithm of the library, which only ever
      compares δ with allocations. *)
  let to_instance (deltas : F.t array) =
    let module T = Types.Make (F) in
    {
      T.procs = F.one;
      T.tasks =
        Array.map
          (fun d ->
            { T.volume = F.one; T.weight = F.one; T.delta = d; T.speedup = T.Linear_delta; T.deps = [||] })
          deltas;
    }

  (** The necessary optimality condition the paper reports for [n = 5]:
      if [i,j,k,l,m] is an optimal order then
      [(δ_l − δ_j)·(δ_i − δ_m) <= 0]. *)
  let five_task_condition (deltas : F.t array) (order : int array) : bool =
    if Array.length order <> 5 then invalid_arg "Homogeneous.five_task_condition: needs 5 tasks";
    let d k = deltas.(order.(k)) in
    F.sign (F.mul (F.sub (d 3) (d 1)) (F.sub (d 0) (d 4))) <= 0

  (** The {e organ-pipe} order over delta {e ranks}: with tasks indexed
      by non-increasing delta (rank 0 = largest), play the odd-numbered
      ranks forward and the even-numbered ranks backward —
      [0,2,4,...,5,3,1]. This is the dominant optimal pattern our E3
      survey finds (1,3,2 at n=3; 1,3,4,2 at n=4; 1,3,5,4,2 at n=5; …,
      in the paper's 1-based notation) and generalizes the paper's
      small cases. [organ_pipe deltas] returns the order as task
      indices of the given (unsorted) [deltas]. *)
  let organ_pipe (deltas : F.t array) : int array =
    let n = Array.length deltas in
    let by_rank = Array.init n (fun i -> i) in
    Array.sort
      (fun a b ->
        let c = F.compare deltas.(b) deltas.(a) in
        if c <> 0 then c else Stdlib.compare a b)
      by_rank;
    let order = Array.make n 0 in
    let pos = ref 0 in
    (* even ranks ascending *)
    let rank = ref 0 in
    while !rank < n do
      order.(!pos) <- by_rank.(!rank);
      incr pos;
      rank := !rank + 2
    done;
    (* odd ranks descending *)
    let start = if n land 1 = 0 then n - 1 else n - 2 in
    let rank = ref start in
    while !rank >= 1 do
      order.(!pos) <- by_rank.(!rank);
      incr pos;
      rank := !rank - 2
    done;
    order
end
