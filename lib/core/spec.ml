type rat = { num : int; den : int }

type task = {
  volume : rat;
  weight : rat;
  delta : int;
  speedup : (rat * rat) list;
  capacity : int option;
  deps : int list;  (** indices of tasks that must complete first *)
}

type t = { procs : int; tasks : task array }

let rat num den =
  if den <= 0 then invalid_arg "Spec.rat: denominator must be positive";
  { num; den }

let rat_of_int n = { num = n; den = 1 }

let task ?(weight = rat_of_int 1) ?(speedup = []) ?capacity ?(deps = []) ~volume ~delta () =
  { volume; weight; delta; speedup; capacity; deps }

let make ~procs tasks = { procs; tasks = Array.of_list tasks }
let num_tasks t = Array.length t.tasks
let has_curves t = Array.exists (fun tk -> tk.speedup <> []) t.tasks
let has_deps t = Array.exists (fun tk -> tk.deps <> []) t.tasks

(* Exact comparisons on small rationals (denominators are positive by
   construction, so cross-multiplication preserves order). *)
let rat_cmp a b = compare (a.num * b.den) (b.num * a.den)
let rat_sub a b = { num = (a.num * b.den) - (b.num * a.den); den = a.den * b.den }
let rat_mul a b = { num = a.num * b.num; den = a.den * b.den }

(* A speedup breakpoint list is well-formed iff the allocations are
   positive and strictly increasing, the rates positive and
   non-decreasing, the segment slopes (with an implicit origin)
   non-increasing, the first slope at most 1, and the last allocation
   equals [delta] — so the curve's saturation point stays the task's
   parallelism cap. *)
let validate_speedup i ~delta pairs =
  let fail msg = Error (Printf.sprintf "task %d: %s" i msg) in
  let zero = rat_of_int 0 in
  (* [prev] is the previous breakpoint (starting at the implicit
     origin), [pslope] the previous segment's (dx, dy) when there is
     one. *)
  let rec go (px, py) pslope = function
    | [] ->
      if rat_cmp px (rat_of_int delta) <> 0 then fail "last speedup breakpoint must equal delta"
      else Ok ()
    | (x, y) :: rest ->
      if x.den <= 0 || y.den <= 0 || rat_cmp x zero <= 0 || rat_cmp y zero <= 0 then
        fail "speedup breakpoints must be positive"
      else if rat_cmp px x >= 0 then fail "speedup allocations must be strictly increasing"
      else if rat_cmp py y > 0 then fail "speedup rate must be non-decreasing"
      else begin
        let dx = rat_sub x px and dy = rat_sub y py in
        match pslope with
        | None ->
          (* first segment leaves the origin: slope y/x must be <= 1 *)
          if rat_cmp y x > 0 then fail "speedup rate cannot exceed allocation"
          else go (x, y) (Some (dx, dy)) rest
        | Some (pdx, pdy) ->
          (* dy/dx <= pdy/pdx  <=>  dy·pdx <= pdy·dx  (dx, pdx > 0) *)
          if rat_cmp (rat_mul dy pdx) (rat_mul pdy dx) > 0 then fail "speedup must be concave"
          else go (x, y) (Some (dx, dy)) rest
      end
  in
  match pairs with [] -> Ok () | _ -> go (zero, zero) None pairs

(* Dependency edges are task indices. Per-task checks catch unknown
   parents, self-edges and duplicate edges; a Kahn topological sort over
   the whole graph rejects cycles (naming one task on the cycle, so the
   diagnostic points somewhere actionable). *)
let validate_deps i ~n deps =
  let fail msg = Error (Printf.sprintf "task %d: %s" i msg) in
  let rec go seen = function
    | [] -> Ok ()
    | j :: rest ->
      if j < 0 || j >= n then fail (Printf.sprintf "unknown dependency %d (tasks are 0..%d)" j (n - 1))
      else if j = i then fail "task cannot depend on itself"
      else if List.mem j seen then fail (Printf.sprintf "duplicate dependency %d" j)
      else go (j :: seen) rest
  in
  go [] deps

let check_acyclic t =
  let n = Array.length t.tasks in
  let indeg = Array.make n 0 in
  let children = Array.make n [] in
  Array.iteri
    (fun i tk ->
      List.iter
        (fun j ->
          indeg.(i) <- indeg.(i) + 1;
          children.(j) <- i :: children.(j))
        tk.deps)
    t.tasks;
  let queue = Queue.create () in
  Array.iteri (fun i d -> if d = 0 then Queue.add i queue) indeg;
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    incr seen;
    List.iter
      (fun c ->
        indeg.(c) <- indeg.(c) - 1;
        if indeg.(c) = 0 then Queue.add c queue)
      children.(i)
  done;
  if !seen = n then Ok ()
  else begin
    (* every unsorted task sits on or behind a cycle; name the first *)
    let rec first i = if indeg.(i) > 0 then i else first (i + 1) in
    Error (Printf.sprintf "dependency cycle through task %d" (first 0))
  end

let validate t =
  if t.procs < 1 then Error "procs must be >= 1"
  else begin
    let n = Array.length t.tasks in
    let check i tk =
      if tk.volume.num <= 0 || tk.volume.den <= 0 then Error (Printf.sprintf "task %d: volume must be positive" i)
      else if tk.weight.num <= 0 || tk.weight.den <= 0 then
        Error (Printf.sprintf "task %d: weight must be positive" i)
      else if tk.delta < 1 then Error (Printf.sprintf "task %d: delta must be >= 1" i)
      else begin
        match tk.capacity with
        | Some c when c < 1 -> Error (Printf.sprintf "task %d: capacity must be >= 1" i)
        | _ -> (
          match validate_deps i ~n tk.deps with
          | Error _ as e -> e
          | Ok () -> validate_speedup i ~delta:tk.delta tk.speedup)
      end
    in
    let rec go i =
      if i >= Array.length t.tasks then check_acyclic t
      else begin
        match check i t.tasks.(i) with Ok () -> go (i + 1) | Error _ as e -> e
      end
    in
    go 0
  end

let rat_to_string r = if r.den = 1 then string_of_int r.num else Printf.sprintf "%d/%d" r.num r.den

let to_string t =
  let task_to_string tk =
    let base =
      Printf.sprintf "(V=%s w=%s d=%d" (rat_to_string tk.volume) (rat_to_string tk.weight) tk.delta
    in
    let speedup =
      match tk.speedup with
      | [] -> ""
      | ps ->
        " s=" ^ String.concat "," (List.map (fun (x, y) -> rat_to_string x ^ ":" ^ rat_to_string y) ps)
    in
    let cap = match tk.capacity with None -> "" | Some c -> Printf.sprintf " c=%d" c in
    let deps =
      match tk.deps with
      | [] -> ""
      | ds -> " deps=" ^ String.concat "," (List.map string_of_int ds)
    in
    base ^ speedup ^ cap ^ deps ^ ")"
  in
  Printf.sprintf "P=%d %s" t.procs (String.concat " " (Array.to_list (Array.map task_to_string t.tasks)))

let pp fmt t = Format.pp_print_string fmt (to_string t)
