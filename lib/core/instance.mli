(** Instance construction and elementary per-task quantities
    (Definition 1 of the paper, generalized with per-task concave
    speedup curves and allocation capacities). *)

module Make (F : Mwct_field.Field.S) : sig
  (** Conversion of a spec rational. *)
  val of_rat : Spec.rat -> F.t

  (** Convert a field-neutral {!Spec.t} (validated) into a field
      instance. Per-task [capacity] clauses are folded into the rate
      model: a linear task's delta is clamped, a curve is truncated at
      the capacity. Raises [Invalid_argument] on invalid specs. *)
  val of_spec : Spec.t -> Types.Make(F).instance

  (** Build directly from field values. *)
  val make : procs:F.t -> Types.Make(F).task list -> Types.Make(F).instance

  (** Task constructor; [weight] defaults to [1], [speedup] to the
      linear law, [deps] to no precedence parents. *)
  val task :
    ?weight:F.t ->
    ?speedup:Types.Make(F).speedup ->
    ?deps:int array ->
    volume:F.t ->
    delta:F.t ->
    unit ->
    Types.Make(F).task

  val num_tasks : Types.Make(F).instance -> int

  (** True iff any task has a non-linear rate law. *)
  val has_curves : Types.Make(F).instance -> bool

  (** True iff any task has a precedence parent. *)
  val has_deps : Types.Make(F).instance -> bool

  (** Structural validity over the field: everything strictly positive,
      [δ_i >= 1], well-formed speedup curves. Deltas above [P] are
      allowed (they act as [P]). *)
  val validate : Types.Make(F).instance -> (unit, string) result

  (** Total work [Σ V_i]. *)
  val total_volume : Types.Make(F).instance -> F.t

  (** Total weight [Σ w_i]. *)
  val total_weight : Types.Make(F).instance -> F.t

  (** Effective parallelism cap [min δ_i P] of task [k] — the
      allocation bound, identical under both rate laws. *)
  val effective_delta : Types.Make(F).instance -> int -> F.t

  (** Progress rate of task [k] at allocation [a]: [a] itself under
      the linear law, the piecewise-linear speedup otherwise. *)
  val rate_at : Types.Make(F).instance -> int -> F.t -> F.t

  (** Minimal allocation giving task [k] rate [r] (clamped to the
      achievable range); inverse of {!rate_at}. *)
  val inverse_rate : Types.Make(F).instance -> int -> F.t -> F.t

  (** Highest rate of task [k] on this machine:
      [rate_at k (effective_delta k)]. *)
  val max_rate : Types.Make(F).instance -> int -> F.t

  (** Speedup breakpoints of task [k], or [None] for the linear law —
      the runtime engine's submission format. *)
  val speedup_arrays : Types.Make(F).instance -> int -> (F.t array * F.t array) option

  (** Evaluate a raw breakpoint curve (as returned by
      {!speedup_arrays}) at an allocation. *)
  val curve_rate : F.t array * F.t array -> F.t -> F.t

  (** Child adjacency of the dependency DAG, in index order. *)
  val dep_children : Types.Make(F).instance -> int list array

  (** A canonical topological order (parents before children,
      lowest index first among ready tasks). Raises
      [Invalid_argument] on a cyclic edge set. *)
  val topo_order : Types.Make(F).instance -> int array

  (** DAG level of every task ([0] = no parents). *)
  val levels : Types.Make(F).instance -> int array

  (** Tasks not yet completed whose parents have all completed, in
      index order. *)
  val ready_frontier : Types.Make(F).instance -> completed:(int -> bool) -> int list

  (** Per-task transitive weight: own weight plus the weight of every
      transitive descendant, each counted once
      (Garg–Gupta–Kumar–Singla, arXiv:1905.02133). *)
  val transitive_weight : Types.Make(F).instance -> F.t array

  (** Height [h_k = V_k / max_rate k] (Definition 6;
      [V_k / min(δ_k, P)] under the linear law). *)
  val height : Types.Make(F).instance -> int -> F.t

  (** Per-task gated work: [Σ w_j · h_j] over each task's strict
      transitive descendants ([h_j] from {!height}, so speedup-curve-
      aware); unit [w_j] with [~use_weights:false]. The static term of
      the remaining-work transitive weighting in {!Dag.Make}. *)
  val gated_work : ?use_weights:bool -> Types.Make(F).instance -> F.t array

  (** Smith ratio [V_k / w_k]. *)
  val smith_ratio : Types.Make(F).instance -> int -> F.t

  (** [sub_instance i volumes] is the paper's subinstance [I[V'_i]]:
      same tasks, modified volumes (zero volumes allowed). *)
  val sub_instance : Types.Make(F).instance -> F.t array -> Types.Make(F).instance

  (** One-line rendering for logs. *)
  val to_string : Types.Make(F).instance -> string
end
