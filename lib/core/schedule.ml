(** Column-based fractional schedules (MWCT-CB-F, Definition 2):
    accessors, the weighted-completion-time objective, and a full
    validity checker used pervasively in tests.

    Allocations are sparse per column (see {!Types}); the accessors
    below are the only sanctioned way to read them, so producers are
    free to emit exactly the non-zero incidences and consumers stay
    representation-agnostic.

    The validity conditions are exactly those of Definition 2:
    non-decreasing column ends, per-column capacity [Σ_i d_{i,j} <= P],
    per-task caps [d_{i,j} <= δ_i], volume conservation
    [Σ_j d_{i,j}·l_j = V_i], and no allocation after a task's own
    completion column. *)

module Make (F : Mwct_field.Field.S) = struct
  module T = Types.Make (F)
  module I = Instance.Make (F)
  module O = Mwct_field.Field.Ops (F)
  open T

  (** Number of columns (= number of tasks). *)
  let num_columns (s : column_schedule) = Array.length s.finish

  (** [column_start s j] is the left edge of column [j]. *)
  let column_start (s : column_schedule) j = if j = 0 then F.zero else s.finish.(j - 1)

  (** [column_length s j] is [l_j = C_j - C_{j-1}]; may be zero when two
      tasks complete simultaneously. *)
  let column_length (s : column_schedule) j = F.sub s.finish.(j) (column_start s j)

  (** Sparse [(task, rate)] pairs of column [j], sorted by task. *)
  let column_allocs (s : column_schedule) j = s.columns.(j)

  (** [alloc s i j] is [d_{i,j}] — the (fractional) processor count of
      task [i] during column [j]; [0] when the task is not in the
      column. *)
  let alloc (s : column_schedule) i j =
    let rec find = function
      | [] -> F.zero
      | (i', a) :: rest -> if i' = i then a else if i' > i then F.zero else find rest
    in
    find s.columns.(j)

  (** Per-task rows: [task_rows s] maps each task to its
      [(column, rate)] incidences in increasing column order. One
      [O(size)] pass over the whole schedule — use this instead of [n]
      point lookups when traversing by task. *)
  let task_rows (s : column_schedule) : (int * num) list array =
    let n = num_columns s in
    let rows = Array.make n [] in
    for j = n - 1 downto 0 do
      List.iter (fun (i, a) -> rows.(i) <- (j, a) :: rows.(i)) s.columns.(j)
    done;
    rows

  (** Build a sparse schedule from a dense [alloc] matrix indexed
      [alloc.(task).(column)]. Zero entries are dropped; non-zero
      entries (including invalid negative ones, so the checker can
      still flag them) are kept. *)
  let of_dense ~instance ~order ~finish (alloc : num array array) : column_schedule =
    let n = Array.length finish in
    let columns =
      Array.init n (fun j ->
          let col = ref [] in
          for i = Array.length alloc - 1 downto 0 do
            let a = alloc.(i).(j) in
            if F.sign a <> 0 then col := (i, a) :: !col
          done;
          !col)
    in
    { instance; order; finish; columns }

  (** Densify (tests, debugging): the full [n × n] matrix indexed
      [task, column]. *)
  let dense_alloc (s : column_schedule) : num array array =
    let n = num_columns s in
    let m = Array.make_matrix n n F.zero in
    Array.iteri (fun j col -> List.iter (fun (i, a) -> m.(i).(j) <- a) col) s.columns;
    m

  (** Build sparse columns from per-task piecewise-constant rate
      profiles: [segments.(i)] lists [(t0, t1, rate)] stretches,
      chronological and non-overlapping, with positive rate. The rate
      recorded in a column is the task's {e average} rate there
      (area / length), which is exact whenever segment boundaries align
      with column boundaries. Zero-length columns get no entries.
      Runs in [O(n log n + size)]. *)
  let columns_of_segments ~(finish : num array) (segments : (num * num * num) list array) :
      (int * num) list array =
    let n = Array.length finish in
    let cols = Array.make n [] in
    (* First column whose end lies strictly after [t]. *)
    let first_column_after t =
      let lo = ref 0 and hi = ref n in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if F.compare finish.(mid) t <= 0 then lo := mid + 1 else hi := mid
      done;
      !lo
    in
    (* Accumulate area, merging with the head when the same task hits a
       column through several segments. *)
    let add cols_j i area =
      match cols_j with
      | (i', a') :: rest when i' = i -> (i', F.add a' area) :: rest
      | l -> (i, area) :: l
    in
    Array.iteri
      (fun i segs ->
        let j = ref (match segs with [] -> n | (a, _, _) :: _ -> first_column_after a) in
        List.iter
          (fun (a, b, r) ->
            while !j < n && F.compare finish.(!j) a <= 0 do
              incr j
            done;
            let k = ref !j in
            let continue = ref true in
            while !continue && !k < n do
              let cstart = if !k = 0 then F.zero else finish.(!k - 1) in
              if F.compare cstart b >= 0 then continue := false
              else begin
                let cend = finish.(!k) in
                let lo = F.max a cstart and hi = F.min b cend in
                if F.compare lo hi < 0 then cols.(!k) <- add cols.(!k) i (F.mul r (F.sub hi lo));
                incr k
              end
            done)
          segs)
      segments;
    (* Convert areas to rates; reversal restores increasing task order. *)
    Array.mapi
      (fun j col ->
        let len = F.sub finish.(j) (if j = 0 then F.zero else finish.(j - 1)) in
        List.rev_map (fun (i, area) -> (i, F.div area len)) col)
      cols

  (** [position s i] is the column at whose end task [i] completes. *)
  let position (s : column_schedule) i =
    let rec go j =
      if j >= Array.length s.order then invalid_arg "Schedule.position: task not in order"
      else if s.order.(j) = i then j
      else go (j + 1)
    in
    go 0

  (** Completion time [C_i] of task [i]. *)
  let completion_time (s : column_schedule) i = s.finish.(position s i)

  (** All completion times, indexed by task. *)
  let completion_times (s : column_schedule) =
    let n = num_columns s in
    let c = Array.make n F.zero in
    Array.iteri (fun j i -> c.(i) <- s.finish.(j)) s.order;
    c

  (** The paper's objective [Σ w_i C_i]. *)
  let weighted_completion_time (s : column_schedule) =
    let c = completion_times s in
    O.sum_up_to (Array.length c) (fun i -> F.mul s.instance.tasks.(i).weight c.(i))

  (** Unweighted [Σ C_i]. *)
  let sum_completion_time (s : column_schedule) =
    O.sum_array (completion_times s)

  (** Makespan [max C_i]. *)
  let makespan (s : column_schedule) =
    let n = num_columns s in
    if n = 0 then F.zero else s.finish.(n - 1)

  (** Volume processed for task [i] (should equal [V_i]): columns store
      allocations, so each contributes [s_i(d_{i,j})·l_j] — under the
      linear law the allocation itself times the length. Scans every
      column; to total all tasks at once use {!processed_volumes}. *)
  let processed_volume (s : column_schedule) i =
    O.sum_up_to (num_columns s) (fun j ->
        F.mul (I.rate_at s.instance i (alloc s i j)) (column_length s j))

  (** All processed volumes in one pass over the sparse columns. *)
  let processed_volumes (s : column_schedule) : num array =
    let n = num_columns s in
    let v = Array.make n F.zero in
    for j = 0 to n - 1 do
      let len = column_length s j in
      List.iter
        (fun (i, a) -> v.(i) <- F.add v.(i) (F.mul (I.rate_at s.instance i a) len))
        s.columns.(j)
    done;
    v

  (** Total allocated area [Σ_i Σ_j d_{i,j}·l_j] (equals [Σ V_i] in a
      valid linear-law schedule; an upper bound on it under concave
      speedup curves). *)
  let total_area (s : column_schedule) =
    O.sum_up_to (num_columns s) (fun j ->
        let len = column_length s j in
        List.fold_left (fun acc (_, a) -> F.add acc (F.mul a len)) F.zero s.columns.(j))

  (** Fraction of the [P × makespan] rectangle that is busy. *)
  let utilization (s : column_schedule) =
    let span = makespan s in
    if F.sign span <= 0 then F.zero else F.div (total_area s) (F.mul s.instance.procs span)

  (** Idle processor-time up to the makespan. *)
  let idle_area (s : column_schedule) =
    F.sub (F.mul s.instance.procs (makespan s)) (total_area s)

  type violation =
    | Bad_shape of string
    | Not_sorted of int  (** column whose end precedes its start *)
    | Negative_alloc of int * int
    | Over_delta of int * int
    | Over_capacity of int
    | Late_alloc of int * int  (** allocation after the task's completion column *)
    | Volume_mismatch of int

  let violation_to_string = function
    | Bad_shape m -> "bad shape: " ^ m
    | Not_sorted j -> Printf.sprintf "column %d ends before it starts" j
    | Negative_alloc (i, j) -> Printf.sprintf "task %d has negative allocation in column %d" i j
    | Over_delta (i, j) -> Printf.sprintf "task %d exceeds its delta in column %d" i j
    | Over_capacity j -> Printf.sprintf "column %d exceeds P processors" j
    | Late_alloc (i, j) -> Printf.sprintf "task %d allocated in column %d after its completion" i j
    | Volume_mismatch i -> Printf.sprintf "task %d volume mismatch" i

  (** Full validity check. With [~exact:true] every comparison is
      strict; otherwise the field's approximate comparisons are used
      (needed for the float engine). Runs in [O(n + size)]. *)
  let check ?(exact = false) (s : column_schedule) : (unit, violation) result =
    let le a b = if exact then F.compare a b <= 0 else F.leq_approx a b in
    let eq a b = if exact then F.equal a b else F.equal_approx a b in
    let n = I.num_tasks s.instance in
    let exception Bad of violation in
    try
      if Array.length s.order <> n then raise (Bad (Bad_shape "order length"));
      if Array.length s.finish <> n then raise (Bad (Bad_shape "finish length"));
      if Array.length s.columns <> n then raise (Bad (Bad_shape "columns length"));
      (* order must be a permutation *)
      let seen = Array.make n false in
      Array.iter
        (fun i ->
          if i < 0 || i >= n || seen.(i) then raise (Bad (Bad_shape "order not a permutation"));
          seen.(i) <- true)
        s.order;
      (* columns sorted, starting at or after 0 *)
      for j = 0 to n - 1 do
        if not (le (column_start s j) s.finish.(j)) then raise (Bad (Not_sorted j))
      done;
      (* per-column constraints *)
      let positions = Array.make n 0 in
      Array.iteri (fun j i -> positions.(i) <- j) s.order;
      let volumes = Array.make n F.zero in
      for j = 0 to n - 1 do
        let len = column_length s j in
        let col_total = ref F.zero in
        let last = ref (-1) in
        List.iter
          (fun (i, a) ->
            if i <= !last || i < 0 || i >= n then
              raise (Bad (Bad_shape (Printf.sprintf "column %d entries not strictly increasing" j)));
            last := i;
            if not (le F.zero a) then raise (Bad (Negative_alloc (i, j)));
            if not (le a (I.effective_delta s.instance i)) then raise (Bad (Over_delta (i, j)));
            if j > positions.(i) && F.sign a > 0 && not (eq a F.zero) then
              raise (Bad (Late_alloc (i, j)));
            col_total := F.add !col_total a;
            (* Progress accrues at the task's rate law; under the
               linear model the rate is the allocation itself. *)
            volumes.(i) <- F.add volumes.(i) (F.mul (I.rate_at s.instance i a) len))
          s.columns.(j);
        (* A zero-length column carries no work; its allocations are
           irrelevant but we still bound them for hygiene. *)
        if not (le !col_total s.instance.procs) then raise (Bad (Over_capacity j))
      done;
      (* volume conservation *)
      for i = 0 to n - 1 do
        if not (eq volumes.(i) s.instance.tasks.(i).volume) then raise (Bad (Volume_mismatch i))
      done;
      Ok ()
    with Bad v -> Error v

  (** [is_valid s] is [check] collapsed to a boolean. *)
  let is_valid ?exact s = match check ?exact s with Ok () -> true | Error _ -> false

  (** Sort order for building schedules: sorts task indices by target
      completion time, ties broken by index for determinism. *)
  let sorted_order (times : num array) : int array =
    let idx = Array.init (Array.length times) (fun i -> i) in
    Array.sort
      (fun a b ->
        let c = F.compare times.(a) times.(b) in
        if c <> 0 then c else Stdlib.compare a b)
      idx;
    idx

  (** Render a compact per-column allocation table (tests, demos). *)
  let to_string (s : column_schedule) =
    let n = num_columns s in
    let buf = Buffer.create 256 in
    Buffer.add_string buf "columns:";
    for j = 0 to n - 1 do
      Buffer.add_string buf
        (Printf.sprintf " [%s..%s]->T%d" (F.to_string (column_start s j)) (F.to_string s.finish.(j)) s.order.(j))
    done;
    Buffer.add_char buf '\n';
    let rows = task_rows s in
    Array.iteri
      (fun i row ->
        Buffer.add_string buf (Printf.sprintf "T%d:" i);
        List.iter (fun (j, a) -> Buffer.add_string buf (Printf.sprintf " %d:%s" j (F.to_string a))) row;
        Buffer.add_char buf '\n')
      rows;
    Buffer.contents buf
end
