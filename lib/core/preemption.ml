(** Preemption accounting (Section IV-B).

    For fractional column schedules we count {e allocation changes}: a
    task changes when its (fractional) processor count differs between
    two consecutive positive-length columns in which it is active.
    Starting and finishing do not count, matching the paper's
    convention. Theorem 9: WF schedules have at most [n] changes in
    total.

    Integer-schedule preemption counting lives in {!Assignment}, which
    realizes Theorem 10's [3n] bound. *)

module Make (F : Mwct_field.Field.S) = struct
  module T = Types.Make (F)
  module S = Schedule.Make (F)
  open T

  (** Allocation-change count of a single task: transitions between
      consecutive positive-length columns, within the window from its
      first activity to its completion column, where the allocation
      value differs. The initial rise from zero and the final drop to
      zero are free. *)
  (* Change count of one task given its (column, rate) row, the column
     it completes in, and a zero-length-column mask. *)
  let row_changes ~zero_len ~pos row =
    (* Walk positive-length columns up to [pos]; remember the previous
       allocation once the task has started. *)
    let changes = ref 0 in
    let prev = ref None in
    let row = ref row in
    for j = 0 to pos do
      (* Skip zero-length columns, including float near-ties. *)
      if not zero_len.(j) then begin
        let a =
          match !row with
          | (j', a) :: rest when j' = j ->
            row := rest;
            a
          | _ -> F.zero
        in
        (match !prev with
        | Some p when F.sign a > 0 && not (F.equal_approx a p) -> incr changes
        | _ -> ());
        if F.sign a > 0 then prev := Some a
        else if Option.is_some !prev then begin
          (* A gap: the task stopped and will restart — both count. *)
          prev := None;
          changes := !changes + 2
        end
      end
      else begin
        (* Consume (irrelevant) entries of zero-length columns. *)
        match !row with (j', _) :: rest when j' = j -> row := rest | _ -> ()
      end
    done;
    !changes

  let zero_len_mask (s : column_schedule) =
    Array.init (Array.length s.finish) (fun j -> F.equal_approx (S.column_length s j) F.zero)

  let positions (s : column_schedule) =
    let n = Array.length s.finish in
    let pos = Array.make n (n - 1) in
    Array.iteri (fun j t -> pos.(t) <- j) s.order;
    pos

  (** Allocation-change count of a single task: transitions between
      consecutive positive-length columns, within the window from its
      first activity to its completion column, where the allocation
      value differs. The initial rise from zero and the final drop to
      zero are free. *)
  let task_changes (s : column_schedule) i =
    row_changes ~zero_len:(zero_len_mask s) ~pos:(positions s).(i) (S.task_rows s).(i)

  (** Total allocation changes of a schedule (the paper's [N_n]),
      in one [O(n + size)] pass. *)
  let total_changes (s : column_schedule) =
    let zero_len = zero_len_mask s in
    let pos = positions s in
    let rows = S.task_rows s in
    let acc = ref 0 in
    Array.iteri (fun i row -> acc := !acc + row_changes ~zero_len ~pos:pos.(i) row) rows;
    !acc

  (** Number of changes in the {e available} resource profile (the
      paper's [M_n]): transitions between consecutive positive-length
      columns where the total occupied height differs. *)
  let availability_changes (s : column_schedule) =
    let n = Array.length s.finish in
    let heights =
      Array.map (List.fold_left (fun acc (_, a) -> F.add acc a) F.zero) s.columns
    in
    let changes = ref 0 in
    let prev = ref None in
    for j = 0 to n - 1 do
      if not (F.equal_approx (S.column_length s j) F.zero) then begin
        (match !prev with Some p when not (F.equal_approx heights.(j) p) -> incr changes | _ -> ());
        prev := Some heights.(j)
      end
    done;
    !changes
end
