(** Frontier equipartition for precedence-constrained (DAG) instances:
    WDEQ/DEQ shared over the ready frontier, after
    Garg–Gupta–Kumar–Singla (arXiv:1905.02133). *)

module Make (F : Mwct_field.Field.S) : sig
  (** Simulate a frontier-equipartition run: Algorithm 1's share rule
      over the tasks whose parents have all completed, resharing on
      every completion (which may release new tasks). Instances
      without edges dispatch to {!Wdeq.Make.simulate} — bit-identical
      schedules. [~use_weights:false] is the unweighted policy;
      [~transitive:true] shares by remaining gated work — own weight
      times remaining height plus [Σ w_j·h_j] over the transitive
      descendants ({!Instance.Make.gated_work}), speedup-curve-aware. *)
  val simulate :
    ?use_weights:bool ->
    ?transitive:bool ->
    Types.Make(F).instance ->
    Types.Make(F).column_schedule * Wdeq.Make(F).diagnostics

  (** Frontier-WDEQ schedule (plain per-task weights by default). *)
  val wdeq :
    ?transitive:bool ->
    Types.Make(F).instance ->
    Types.Make(F).column_schedule * Wdeq.Make(F).diagnostics

  (** Frontier-DEQ (unweighted). *)
  val deq :
    ?transitive:bool ->
    Types.Make(F).instance ->
    Types.Make(F).column_schedule * Wdeq.Make(F).diagnostics
end
