(** Optimal schedules through linear programming (Corollary 1).

    Once the completion {e order} is fixed, the best schedule with that
    order is a linear program over the column structure; the global
    optimum of MWCT-CB-F is the minimum over all [n!] orders. The paper
    uses this as the ground truth of its Section V-A experiments; so do
    we — exactly, when instantiated with rationals. *)

module Make (F : Mwct_field.Field.S) = struct
  module T = Types.Make (F)
  module I = Instance.Make (F)
  module S = Schedule.Make (F)
  module Sx = Mwct_simplex.Simplex.Make (F)
  module Ord = Orderings.Make (F)
  open T

  (** [optimal_for_order inst pi] solves the Corollary-1 LP for the
      completion order [pi] ([pi.(j)] completes [j]-th) and returns the
      objective and the reconstructed column schedule. [None] when the
      LP is infeasible (cannot happen for valid instances: stretching
      columns always yields a feasible point). *)
  let optimal_for_order (inst : instance) (pi : int array) : (F.t * column_schedule) option =
    let n = I.num_tasks inst in
    if Array.length pi <> n then invalid_arg "Lp_schedule.optimal_for_order: order length mismatch";
    let p = Sx.create () in
    (* Column end variables C_0 <= ... <= C_{n-1}. *)
    let c = Array.init n (fun j -> Sx.add_var ~name:(Printf.sprintf "C%d" j) p) in
    (* x.(i).(j): volume of task pi.(i) processed in column j <= i's
       position. Only j <= pos(i) exist. *)
    let pos = Array.make n 0 in
    Array.iteri (fun j i -> pos.(i) <- j) pi;
    let x = Array.make_matrix n n None in
    for i = 0 to n - 1 do
      for j = 0 to pos.(i) do
        x.(i).(j) <- Some (Sx.add_var ~name:(Printf.sprintf "x_%d_%d" i j) p)
      done
    done;
    (* Ordering: C_j - C_{j-1} >= 0 (C_0 >= 0 is implicit: vars are
       non-negative). *)
    for j = 1 to n - 1 do
      Sx.add_constraint p [ (c.(j), F.one); (c.(j - 1), F.neg F.one) ] Sx.Geq F.zero
    done;
    for j = 0 to n - 1 do
      (* Capacity: Σ_i x_{i,j} <= P·(C_j - C_{j-1}). *)
      let terms = ref [ (c.(j), F.neg inst.procs) ] in
      if j > 0 then terms := (c.(j - 1), inst.procs) :: !terms;
      for i = 0 to n - 1 do
        match x.(i).(j) with Some v -> terms := (v, F.one) :: !terms | None -> ()
      done;
      Sx.add_constraint p !terms Sx.Leq F.zero;
      (* Caps: x_{i,j} <= δ_i·(C_j - C_{j-1}). *)
      for i = 0 to n - 1 do
        match x.(i).(j) with
        | Some v ->
          let d = I.effective_delta inst i in
          let terms = ref [ (v, F.one); (c.(j), F.neg d) ] in
          if j > 0 then terms := (c.(j - 1), d) :: !terms;
          Sx.add_constraint p !terms Sx.Leq F.zero
        | None -> ()
      done
    done;
    (* Volumes: Σ_j x_{i,j} = V_i. *)
    for i = 0 to n - 1 do
      let terms = ref [] in
      for j = 0 to pos.(i) do
        match x.(i).(j) with Some v -> terms := (v, F.one) :: !terms | None -> ()
      done;
      Sx.add_constraint p !terms Sx.Eq inst.tasks.(i).volume
    done;
    (* Objective: Σ_i w_i·C_{pos(i)}. Accumulate per column. *)
    let obj = Array.make n F.zero in
    for i = 0 to n - 1 do
      obj.(pos.(i)) <- F.add obj.(pos.(i)) inst.tasks.(i).weight
    done;
    Sx.set_objective p (List.init n (fun j -> (c.(j), obj.(j))));
    match Sx.solve p with
    | Sx.Infeasible | Sx.Unbounded -> None
    | Sx.Optimal { objective; values; _ } ->
      let finish = Array.map (fun (v : Sx.var) -> values.((v :> int))) c in
      let columns =
        Array.init n (fun j ->
            let len = F.sub finish.(j) (if j = 0 then F.zero else finish.(j - 1)) in
            if F.sign len > 0 && not (F.equal_approx len F.zero) then begin
              let col = ref [] in
              for i = n - 1 downto 0 do
                match x.(i).(j) with
                | Some v ->
                  let a = F.div values.((v :> int)) len in
                  if F.sign a <> 0 then col := (i, a) :: !col
                | None -> ()
              done;
              !col
            end
            else [])
      in
      Some (objective, { instance = inst; order = Array.copy pi; finish; columns })

  (** Exact global optimum by enumerating all completion orders.
      Exponential: guarded to [n <= max_tasks] (default 8). *)
  let optimal ?(max_tasks = 8) (inst : instance) : F.t * column_schedule =
    let n = I.num_tasks inst in
    if n = 0 then invalid_arg "Lp_schedule.optimal: empty instance";
    if n > max_tasks then
      invalid_arg (Printf.sprintf "Lp_schedule.optimal: %d tasks exceed the enumeration guard %d" n max_tasks);
    let best =
      Ord.fold_permutations n
        (fun best pi ->
          match optimal_for_order inst pi with
          | None -> best
          | Some (obj, sched) -> (
            match best with
            | Some (b, _) when F.compare b obj <= 0 -> best
            | _ -> Some (obj, sched)))
        None
    in
    match best with
    | Some r -> r
    | None -> invalid_arg "Lp_schedule.optimal: no feasible order (invalid instance?)"

  (** Best greedy schedule over all insertion orders (the quantity the
      Section V-A experiment compares against the optimum). *)
  let best_greedy ?(max_tasks = 8) (inst : instance) : F.t * int array =
    let module G = Greedy.Make (F) in
    let n = I.num_tasks inst in
    if n > max_tasks then
      invalid_arg (Printf.sprintf "Lp_schedule.best_greedy: %d tasks exceed the enumeration guard %d" n max_tasks);
    let best =
      Ord.fold_permutations n
        (fun best sigma ->
          let obj = G.objective inst sigma in
          match best with
          | Some (b, _) when F.compare b obj <= 0 -> best
          | _ -> Some (obj, Array.copy sigma))
        None
    in
    match best with Some r -> r | None -> assert false
end
