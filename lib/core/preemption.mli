(** Allocation-change accounting for fractional schedules
    (Section IV-B). A task "changes" when its processor count differs
    between two consecutive positive-length columns in which it is
    active; starting and finishing are free, a gap (stop + restart)
    costs two. Theorem 9: the WF normal form of an {e offline}
    completion-time vector (greedy, LP) has at most [n] changes in
    total. The bound does not extend to event-driven vectors: WDEQ can
    need [n + 1] changes when completions tie
    (test/corpus/wdeq-thm9-boundary.spec). *)

module Make (F : Mwct_field.Field.S) : sig
  (** Changes of one task. *)
  val task_changes : Types.Make(F).column_schedule -> int -> int

  (** Total changes (the paper's [N_n]). *)
  val total_changes : Types.Make(F).column_schedule -> int

  (** Changes of the {e available} height profile between consecutive
      positive-length columns (the paper's [M_n]). *)
  val availability_changes : Types.Make(F).column_schedule -> int
end
