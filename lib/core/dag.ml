(** Frontier equipartition for precedence-constrained (DAG) instances —
    the WDEQ/DEQ port of Garg–Gupta–Kumar–Singla (arXiv:1905.02133) to
    the malleable-task model.

    The policy is Algorithm 1 restricted to the {e ready frontier}: at
    every instant the platform is shared (by the saturation-frontier
    rule of {!Wdeq.Make.shares}) among the tasks whose parents have all
    completed; a completion may release new tasks into the frontier,
    which trigger a reshare exactly like a completion does in the
    independent setting. Because dependency edges only ever point at
    earlier tasks of a validated instance ({!Instance.Make.validate}
    runs Kahn's algorithm), the frontier is nonempty until everything
    has completed — the loop cannot deadlock.

    Two weighting schemes:

    - {e plain} (the default): a ready task's share weight is its own
      [w_i]. This is the library's oracle for the precedence setting —
      the natural WDEQ generalization, and what the [wdeq-dag] /
      [deq-dag] registry entries run.
    - {e transitive} ([~transitive:true]): a ready task's share weight
      is the {e remaining gated work} behind it — its own weight times
      its remaining (speedup-curve-aware) height, plus [Σ w_j·h_j] over
      its transitive descendants — so a task gating a heavy subtree is
      served first, in proportion to the work it actually unlocks (the
      GGKS subtree weighting, refined from raw weight counts to
      remaining work). Exposed behind the flag for experiments; not a
      separate registry entry.

    Zero-edge instances dispatch straight to {!Wdeq.Make.simulate}, so
    their schedules are {e bit-identical} to the independent-bag path
    (including the monomorphic float kernel). *)

module Make (F : Mwct_field.Field.S) = struct
  module T = Types.Make (F)
  module I = Instance.Make (F)
  module W = Wdeq.Make (F)
  open T

  (* Share weights for one run: unit for DEQ, the task's own weight for
     WDEQ. The transitive variant prices *remaining gated work*,
     speedup-curve-aware: a ready task's share weight is its own weight
     times its remaining height [remaining_i / s_i(min(δ_i, P))] plus
     the static Σ w_j·h_j over its transitive descendants
     ({!Instance.Make.gated_work} — a descendant cannot start before
     its ancestor completes, so that term never drains while counted).
     Unit weights under the unweighted policy, so DEQ-transitive ranks
     by remaining descendant work rather than raw descendant counts. *)
  let run_weights ~use_weights ~transitive (inst : instance) :
      remaining:F.t array -> int -> F.t =
    match (use_weights, transitive) with
    | true, false -> fun ~remaining:_ i -> inst.tasks.(i).weight
    | false, false -> fun ~remaining:_ _ -> F.one
    | _, true ->
      let gated = I.gated_work ~use_weights inst in
      let w i = if use_weights then inst.tasks.(i).weight else F.one in
      fun ~remaining i ->
        F.add (F.mul (w i) (F.div remaining.(i) (I.max_rate inst i))) gated.(i)

  (** Simulate a frontier-equipartition run to completion.
      [~use_weights:false] gives the unweighted policy (frontier-DEQ);
      [~transitive:true] replaces each ready task's share weight with
      its transitive weight. Instances without edges take the
      independent-bag simulator verbatim ({!Wdeq.Make.simulate}) —
      same bits, same diagnostics. *)
  let simulate ?(use_weights = true) ?(transitive = false) (inst : instance) :
      column_schedule * W.diagnostics =
    if not (I.has_deps inst) then W.simulate ~use_weights inst
    else begin
      let n = I.num_tasks inst in
      let weight = run_weights ~use_weights ~transitive inst in
      let delta = Array.init n (fun i -> I.effective_delta inst i) in
      let remaining = Array.map (fun t -> t.volume) inst.tasks in
      let children = I.dep_children inst in
      let unmet = Array.init n (fun i -> Array.length inst.tasks.(i).deps) in
      let completed = Array.make n false in
      let full_volume = Array.make n F.zero in
      let limited_volume = Array.make n F.zero in
      let order = Array.make n 0 in
      let finish = Array.make n F.zero in
      let columns = Array.make n [] in
      let share = Array.make n F.zero in
      let t_now = ref F.zero in
      let col = ref 0 in
      while !col < n do
        (* Ready frontier in ascending index order. *)
        let alive = ref [] in
        for i = n - 1 downto 0 do
          if (not completed.(i)) && unmet.(i) = 0 then
            alive := (i, weight ~remaining i, delta.(i)) :: !alive
        done;
        let shared = W.shares ~p:inst.procs !alive in
        Array.fill share 0 n F.zero;
        (* Next completion among the frontier (shares are positive for
           at least one ready task: capacity is positive and the
           frontier is nonempty on a validated acyclic instance). *)
        let t_best = ref F.zero in
        let seen = ref false in
        List.iter
          (fun (i, s) ->
            share.(i) <- s;
            let r = I.rate_at inst i s in
            if F.sign r > 0 then begin
              let ti = F.div remaining.(i) r in
              if (not !seen) || F.compare ti !t_best < 0 then begin
                t_best := ti;
                seen := true
              end
            end)
          shared;
        if not !seen then invalid_arg "Dag.simulate: no ready task can progress";
        let dt = !t_best in
        let t_end = F.add !t_now dt in
        let finished = ref [] in
        List.iter
          (fun (i, s) ->
            let processed = F.mul (I.rate_at inst i s) dt in
            remaining.(i) <- F.sub remaining.(i) processed;
            if F.equal_approx s delta.(i) then full_volume.(i) <- F.add full_volume.(i) processed
            else limited_volume.(i) <- F.add limited_volume.(i) processed;
            if F.leq_approx remaining.(i) F.zero then finished := i :: !finished)
          shared;
        let finished = List.sort Stdlib.compare !finished in
        (match finished with
        | [] -> invalid_arg "Dag.simulate: no completion at event (numeric drift)"
        | _ -> ());
        let column = ref [] in
        for i = n - 1 downto 0 do
          if F.sign share.(i) > 0 then column := (i, share.(i)) :: !column
        done;
        List.iteri
          (fun k i ->
            let j = !col + k in
            order.(j) <- i;
            finish.(j) <- t_end;
            completed.(i) <- true;
            List.iter (fun c -> unmet.(c) <- unmet.(c) - 1) children.(i);
            if k = 0 then columns.(j) <- !column)
          finished;
        col := !col + List.length finished;
        t_now := t_end
      done;
      ({ instance = inst; order; finish; columns }, { W.full_volume; W.limited_volume })
    end

  (** Frontier-WDEQ schedule of a (possibly precedence-constrained)
      instance. *)
  let wdeq ?transitive inst = simulate ~use_weights:true ?transitive inst

  (** Frontier-DEQ (unweighted) on the same instance. *)
  let deq ?transitive inst = simulate ~use_weights:false ?transitive inst
end
