(** Lower bounds on the optimal weighted completion time (Section III).

    - [squashed_area] is [A(I)] (Definition 5): the optimum of the
      relaxation where every [δ_i = P], i.e. single-processor weighted
      scheduling at speed [P], solved by Smith's rule.
    - [height_bound] is [H(I)] (Definition 6): the optimum with
      [P = ∞], where each task just runs at its own cap.
    - [mixed] combines both on a volume subdivision (Lemma 1):
      [OPT(I) >= A(I[V¹]) + H(I[V²])] whenever [V¹_i + V²_i = V_i]. *)

module Make (F : Mwct_field.Field.S) = struct
  module T = Types.Make (F)
  module I = Instance.Make (F)
  open T

  (** [A(I) = Σ_i (Σ_{j >= i} w_j) V_i / P] with tasks sorted by
      non-decreasing Smith ratio [V_i/w_i]. Zero-volume tasks (from
      subinstances) contribute nothing and are skipped. *)
  let squashed_area (inst : instance) =
    let idx =
      List.filter (fun i -> F.sign inst.tasks.(i).volume > 0) (List.init (I.num_tasks inst) (fun i -> i))
    in
    let sorted =
      List.sort
        (fun a b ->
          (* V_a/w_a <= V_b/w_b  <=>  V_a·w_b <= V_b·w_a *)
          F.compare
            (F.mul inst.tasks.(a).volume inst.tasks.(b).weight)
            (F.mul inst.tasks.(b).volume inst.tasks.(a).weight))
        idx
    in
    (* Walk in Smith order, accumulating completion times of the
       squashed (speed-P single machine) schedule. *)
    let _, total =
      List.fold_left
        (fun (t, acc) i ->
          let t' = F.add t (F.div inst.tasks.(i).volume inst.procs) in
          (t', F.add acc (F.mul inst.tasks.(i).weight t')))
        (F.zero, F.zero) sorted
    in
    total

  (** [H(I) = Σ_i w_i · h_i] with [h_i] the task's height
      ({!Instance.Make.height}: [V_i / min(δ_i, P)] under the linear
      law, [V_i / s_i(min(δ_i, P))] under a speedup curve) — every
      task running alone still needs [h_i]. Routed through the one
      accessor so the rate model has a single seam. *)
  let height_bound (inst : instance) =
    let n = I.num_tasks inst in
    let rec go acc i =
      if i >= n then acc
      else begin
        let t = inst.tasks.(i) in
        go (F.add acc (F.mul t.weight (I.height inst i))) (i + 1)
      end
    in
    go F.zero 0

  (** [mixed inst v1 v2] is [A(I[v1]) + H(I[v2])]; requires
      [v1 + v2 = V] componentwise (checked approximately). *)
  let mixed (inst : instance) (v1 : F.t array) (v2 : F.t array) =
    let n = I.num_tasks inst in
    if Array.length v1 <> n || Array.length v2 <> n then invalid_arg "Lower_bounds.mixed: length mismatch";
    for i = 0 to n - 1 do
      if not (F.equal_approx (F.add v1.(i) v2.(i)) inst.tasks.(i).volume) then
        invalid_arg "Lower_bounds.mixed: subdivision does not sum to V"
    done;
    F.add (squashed_area (I.sub_instance inst v1)) (height_bound (I.sub_instance inst v2))

  (** Best of the two plain bounds. *)
  let best (inst : instance) = F.max (squashed_area inst) (height_bound inst)
end
