(** Algorithm WF — the paper's normal form (Section IV, Algorithm 2,
    Theorem 8).

    Rebuilds a valid column schedule from target completion times
    alone, by pouring each task (in completion order) like water over
    its admissible columns, subject to its cap [δ_i]. Succeeds exactly
    when {e some} valid schedule has the given completion times. *)

module Make (F : Mwct_field.Field.S) : sig
  (** Water level for one task: minimal [h <= cap] with
      [Σ_k l_k·s(clamp(h − h_k, 0, delta)) >= v], or [None] when even
      [h = cap] is insufficient (beyond the field tolerance).
      [?speedup] selects the rate law [s]: [None] is linear
      ([s(a) = a], the historical events byte-for-byte), [Some] a
      concave breakpoint curve, which only adds slope-change events at
      the curve's breakpoints. Exposed for white-box tests. *)
  val water_level :
    ?speedup:F.t array * F.t array ->
    heights:F.t array ->
    lengths:F.t array ->
    ncols:int ->
    delta:F.t ->
    cap:F.t ->
    F.t ->
    F.t option

  (** [build inst times] runs WF. [Error k] identifies the first task
      (by completion order) that cannot be allocated — Theorem 8's
      certificate that the times are infeasible. *)
  val build :
    Types.Make(F).instance -> F.t array -> (Types.Make(F).column_schedule, int) result

  (** Theorem 8 feasibility predicate. *)
  val feasible : Types.Make(F).instance -> F.t array -> bool

  (** Rebuild a valid schedule in normal form from its own completion
      times; preserves the objective. Raises [Invalid_argument] when
      the input schedule is itself invalid. *)
  val normalize : Types.Make(F).column_schedule -> Types.Make(F).column_schedule

  (** Occupied processors per column; non-increasing across
      positive-length columns for WF outputs (Lemma 3). *)
  val column_heights : Types.Make(F).column_schedule -> F.t array
end
