(** Schedule rendering: ASCII Gantt charts for terminals and SVG for
    reports.

    Renders the three artifact kinds of the library — column schedules
    (fractional allocations over columns), Gantt charts (per-processor
    bookings from {!Integerize} / {!Assignment}), and column-height
    profiles (the "water level" picture of Figure 3/4 in the paper). *)

module Make (F : Mwct_field.Field.S) = struct
  module T = Types.Make (F)
  module S = Schedule.Make (F)
  open T

  let task_letter t = Char.chr (Char.code 'A' + (t mod 26))

  (* ---------- ASCII ---------- *)

  (** ASCII Gantt: one row per processor, ['.'] for idle; task [k] is
      shown as the letter ['A' + k mod 26]. [width] characters span the
      horizon. *)
  let gantt_to_ascii ?(width = 60) (g : gantt) : string =
    let horizon =
      Array.fold_left
        (fun acc bs -> List.fold_left (fun acc b -> Float.max acc (F.to_float b.to_time)) acc bs)
        0. g.processors
    in
    let horizon = if horizon <= 0. then 1. else horizon in
    let buf = Buffer.create 1024 in
    Array.iteri
      (fun p bookings ->
        let row = Bytes.make width '.' in
        List.iter
          (fun b ->
            let x0 = int_of_float (F.to_float b.from_time /. horizon *. float_of_int width) in
            let x1 = int_of_float (F.to_float b.to_time /. horizon *. float_of_int width) in
            for x = x0 to Stdlib.min (width - 1) (x1 - 1) do
              Bytes.set row x (task_letter b.task)
            done)
          bookings;
        Buffer.add_string buf (Printf.sprintf "P%-2d |%s|\n" p (Bytes.to_string row)))
      g.processors;
    Buffer.add_string buf
      (Printf.sprintf "     0%s%.3f\n" (String.make (Stdlib.max 1 (width - 6)) ' ') horizon);
    Buffer.contents buf

  (** ASCII column profile: for each column, its interval, the ending
      task, and the per-task allocations. *)
  let columns_to_ascii (s : column_schedule) : string =
    let n = Array.length s.finish in
    let buf = Buffer.create 1024 in
    for j = 0 to n - 1 do
      Buffer.add_string buf
        (Printf.sprintf "column %2d [%8.3f, %8.3f] ends %c :" j
           (F.to_float (S.column_start s j))
           (F.to_float s.finish.(j))
           (task_letter s.order.(j)));
      List.iter
        (fun (i, a) ->
          if F.sign a > 0 then
            Buffer.add_string buf (Printf.sprintf " %c=%.3f" (task_letter i) (F.to_float a)))
        s.columns.(j);
      Buffer.add_char buf '\n'
    done;
    Buffer.contents buf

  (* ---------- SVG ---------- *)

  (* A small qualitative palette, cycled by task index. *)
  let palette =
    [|
      "#4e79a7"; "#f28e2b"; "#e15759"; "#76b7b2"; "#59a14f"; "#edc948"; "#b07aa1"; "#ff9da7";
      "#9c755f"; "#bab0ac";
    |]

  let color t = palette.(t mod Array.length palette)

  let svg_header ~w ~h =
    Printf.sprintf
      "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" viewBox=\"0 0 %d %d\" font-family=\"sans-serif\" font-size=\"11\">\n<rect width=\"%d\" height=\"%d\" fill=\"white\"/>\n"
      w h w h w h

  (** SVG Gantt chart: time on the x-axis, one lane per processor, one
      colored rectangle per booking, labeled with the task letter when
      wide enough. *)
  let gantt_to_svg ?(width = 720) ?(lane_height = 28) (g : gantt) : string =
    let nb = Array.length g.processors in
    let horizon =
      Array.fold_left
        (fun acc bs -> List.fold_left (fun acc b -> Float.max acc (F.to_float b.to_time)) acc bs)
        0. g.processors
    in
    let horizon = if horizon <= 0. then 1. else horizon in
    let margin_left = 36 and margin_top = 8 and margin_bottom = 22 in
    let plot_w = width - margin_left - 8 in
    let h = margin_top + (nb * lane_height) + margin_bottom in
    let x_of t = margin_left + int_of_float (t /. horizon *. float_of_int plot_w) in
    let buf = Buffer.create 4096 in
    Buffer.add_string buf (svg_header ~w:width ~h);
    Array.iteri
      (fun p bookings ->
        let y = margin_top + (p * lane_height) in
        Buffer.add_string buf
          (Printf.sprintf
             "<text x=\"4\" y=\"%d\" fill=\"#333\">P%d</text>\n<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"#ddd\"/>\n"
             (y + (lane_height / 2) + 4) p margin_left (y + lane_height) (margin_left + plot_w)
             (y + lane_height));
        List.iter
          (fun b ->
            let x0 = x_of (F.to_float b.from_time) and x1 = x_of (F.to_float b.to_time) in
            let w = Stdlib.max 1 (x1 - x0) in
            Buffer.add_string buf
              (Printf.sprintf
                 "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"%s\" stroke=\"white\" stroke-width=\"0.5\"><title>task %d: [%g, %g]</title></rect>\n"
                 x0 (y + 2) w (lane_height - 4) (color b.task) b.task (F.to_float b.from_time)
                 (F.to_float b.to_time));
            if w >= 14 then
              Buffer.add_string buf
                (Printf.sprintf
                   "<text x=\"%d\" y=\"%d\" fill=\"white\" text-anchor=\"middle\">%c</text>\n"
                   (x0 + (w / 2))
                   (y + (lane_height / 2) + 4)
                   (task_letter b.task)))
          bookings)
      g.processors;
    (* x axis ticks: 0 and horizon. *)
    let y_axis = margin_top + (nb * lane_height) + 14 in
    Buffer.add_string buf
      (Printf.sprintf "<text x=\"%d\" y=\"%d\" fill=\"#333\">0</text>\n" margin_left y_axis);
    Buffer.add_string buf
      (Printf.sprintf "<text x=\"%d\" y=\"%d\" fill=\"#333\" text-anchor=\"end\">%.3f</text>\n"
         (margin_left + plot_w) y_axis horizon);
    Buffer.add_string buf "</svg>\n";
    Buffer.contents buf

  (** SVG of a column schedule: stacked per-column allocation bands
      (the paper's Gantt-chart view of MWCT-CB-F). *)
  let columns_to_svg ?(width = 720) ?(height = 240) (s : column_schedule) : string =
    let n = Array.length s.finish in
    let horizon = if n = 0 then 1. else Float.max 1e-9 (F.to_float s.finish.(n - 1)) in
    let procs = F.to_float s.instance.procs in
    let margin_left = 36 and margin_top = 8 and margin_bottom = 22 in
    let plot_w = width - margin_left - 8 in
    let plot_h = height - margin_top - margin_bottom in
    let x_of t = margin_left + int_of_float (t /. horizon *. float_of_int plot_w) in
    let y_of load = margin_top + plot_h - int_of_float (load /. procs *. float_of_int plot_h) in
    let buf = Buffer.create 4096 in
    Buffer.add_string buf (svg_header ~w:width ~h:height);
    for j = 0 to n - 1 do
      let x0 = x_of (F.to_float (S.column_start s j)) and x1 = x_of (F.to_float s.finish.(j)) in
      if x1 > x0 then begin
        let stack = ref 0. in
        List.iter
          (fun (i, af) ->
            let a = F.to_float af in
            if a > 0. then begin
              let y1 = y_of !stack and y0 = y_of (!stack +. a) in
              Buffer.add_string buf
                (Printf.sprintf
                   "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"%s\" stroke=\"white\" stroke-width=\"0.5\"><title>task %d: %.3f procs</title></rect>\n"
                   x0 y0 (x1 - x0) (Stdlib.max 1 (y1 - y0)) (color i) i a);
              stack := !stack +. a
            end)
          s.columns.(j)
      end
    done;
    (* frame: capacity line and axis labels *)
    Buffer.add_string buf
      (Printf.sprintf
         "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"#c00\" stroke-dasharray=\"4 3\"/><text x=\"4\" y=\"%d\" fill=\"#c00\">P=%g</text>\n"
         margin_left (y_of procs) (margin_left + plot_w) (y_of procs) (y_of procs + 4) procs);
    Buffer.add_string buf
      (Printf.sprintf "<text x=\"%d\" y=\"%d\" fill=\"#333\">0</text>\n" margin_left (height - 6));
    Buffer.add_string buf
      (Printf.sprintf "<text x=\"%d\" y=\"%d\" fill=\"#333\" text-anchor=\"end\">%.3f</text>\n"
         (margin_left + plot_w) (height - 6) horizon);
    Buffer.add_string buf "</svg>\n";
    Buffer.contents buf
end
