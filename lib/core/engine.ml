(** One-stop instantiation of the whole scheduling core over a field.

    [Engine.Make (F)] assembles every module of the library applied to
    the same field, so all types line up (functor applications are
    applicative). Two engines are pre-applied:

    - {!Float} — IEEE doubles, for large experiment batches;
    - {!Exact} — arbitrary-precision rationals, for exact verification
      (the analogue of the paper's Sage checks).

    Typical use:
    {[
      module E = Mwct_core.Engine.Float
      let inst = E.Instance.of_spec spec
      let schedule, _ = E.Wdeq.wdeq inst
      let obj = E.Schedule.weighted_completion_time schedule
    ]} *)

module Make (F : Mwct_field.Field.S) = struct
  module Field = F
  module Types = Types.Make (F)
  module Instance = Instance.Make (F)
  module Schedule = Schedule.Make (F)
  module Water_filling = Water_filling.Make (F)
  module Greedy = Greedy.Make (F)
  module Wdeq = Wdeq.Make (F)
  module Dag = Dag.Make (F)
  module Lower_bounds = Lower_bounds.Make (F)
  module Preemption = Preemption.Make (F)
  module Integerize = Integerize.Make (F)
  module Assignment = Assignment.Make (F)
  module Orderings = Orderings.Make (F)
  module Lp_schedule = Lp_schedule.Make (F)
  module Makespan = Makespan.Make (F)
  module Lateness = Lateness.Make (F)
  module Release_dates = Release_dates.Make (F)
  module Single_machine = Single_machine.Make (F)
  module Homogeneous = Homogeneous.Make (F)
  module Render = Render.Make (F)
  module Moldable = Moldable.Make (F)
end

module Float = Make (Mwct_field.Field.Float_field)
module Exact = Make (Mwct_rational.Rational.Rat_field)
