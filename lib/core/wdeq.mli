(** WDEQ — Weighted Dynamic EQuipartition (Algorithm 1, Section III),
    the paper's non-clairvoyant 2-approximation (Theorem 4), simulated
    on clairvoyant instances (volumes are used only to locate the next
    completion event). *)

module Make (F : Mwct_field.Field.S) : sig
  (** Per-run diagnostics for the Lemma 2 bound: volume processed at
      full allocation ([full_volume], the paper's [VF]) and volume
      processed while limited by equipartition ([limited_volume],
      [VF̄]); the two sum to [V_i]. *)
  type diagnostics = { full_volume : F.t array; limited_volume : F.t array }

  (** One round of Algorithm 1: shares for the alive tasks, given
      [(index, weight, delta)] triples. Total shares never exceed [p].
      [O(n log n)]: sort by the saturation ratio [δ/w], then binary
      search the clipping frontier over prefix sums. *)
  val shares : p:F.t -> (int * F.t * F.t) list -> (int * F.t) list

  (** The seed's iterative [List.partition] fixpoint ([O(n²)] worst
      case), kept as ground truth for equivalence tests. Computes the
      same shares as {!shares} (identical over exact fields; the list
      order may differ). *)
  val shares_reference : p:F.t -> (int * F.t * F.t) list -> (int * F.t) list

  (** Simulate a dynamic-equipartition run to completion.
      [~use_weights:false] gives DEQ (the unweighted policy of Deng et
      al.). On the float field this dispatches (via the field witness)
      to a monomorphic kernel, bit-identical to
      {!simulate_reference}. *)
  val simulate :
    ?use_weights:bool ->
    Types.Make(F).instance ->
    Types.Make(F).column_schedule * diagnostics

  (** The field-generic simulation loop, the kernel's semantic source
      of truth — exposed so differential tests can pin the two
      bit-for-bit. *)
  val simulate_reference :
    ?use_weights:bool ->
    Types.Make(F).instance ->
    Types.Make(F).column_schedule * diagnostics

  (** WDEQ (weighted shares). *)
  val wdeq : Types.Make(F).instance -> Types.Make(F).column_schedule * diagnostics

  (** DEQ: unweighted shares; the objective can still be evaluated with
      the instance's weights. *)
  val deq : Types.Make(F).instance -> Types.Make(F).column_schedule * diagnostics
end
