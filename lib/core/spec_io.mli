(** Plain-text instance format:

    {v
    # comments and blank lines are ignored
    procs 4
    task 6 3 4        # volume weight delta
    task 1/2 1 1      # rationals as p/q
    speedup 1:1 2:3/2 # concave speedup curve of the preceding task
    capacity 2        # allocation bound of the preceding task
    v}

    Volumes and weights are rationals ([p] or [p/q]); [procs] and
    [delta] are positive integers. [speedup] and [capacity] lines
    attach to the task declared just above them (at most one of
    each). *)

(** Parse one rational token. *)
val parse_rat : string -> (Spec.rat, string) result

(** Parse one [allocation:rate] speedup breakpoint token. *)
val parse_breakpoint : string -> (Spec.rat * Spec.rat, string) result

(** Parse a full instance description; the error carries the offending
    line. The result is validated ({!Spec.validate}). *)
val of_string : string -> (Spec.t, string) result

(** Render in the same format (parse ∘ print is the identity). *)
val to_string : Spec.t -> string

(** Read an instance from a file. *)
val load : string -> (Spec.t, string) result
