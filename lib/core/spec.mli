(** Field-neutral instance descriptions.

    Generators and file formats produce specs with small integer
    rationals; {!Instance.Make.of_spec} converts them into any field.
    Using exact integer fractions (rather than floats) means the same
    instance is represented {e identically} in the float engine and the
    exact rational engine, so cross-engine comparisons are meaningful. *)

(** An exact rational given by two machine integers, [den > 0]. *)
type rat = { num : int; den : int }

type task = {
  volume : rat;  (** total work [V_i > 0] *)
  weight : rat;  (** objective weight [w_i > 0] *)
  delta : int;  (** parallelism cap [δ_i >= 1], in processors *)
  speedup : (rat * rat) list;
      (** concave piecewise-linear speedup breakpoints
          [(allocation, rate)]; [[]] means the paper's linear law
          [s(a) = a]. When non-empty the last allocation must equal
          [delta] (the saturation point). *)
  capacity : int option;
      (** optional per-task allocation bound (machine capacity);
          folded into the rate model by {!Instance.Make.of_spec}. *)
  deps : int list;
      (** precedence parents: indices of tasks that must complete
          before this one may start; [[]] is the paper's
          independent-task bag. {!validate} rejects unknown indices,
          self-edges, duplicates and cycles. *)
}

type t = {
  procs : int;  (** number of identical processors [P >= 1] *)
  tasks : task array;
}

val rat : int -> int -> rat
val rat_of_int : int -> rat

(** [task ~volume ~weight ~delta] with [weight] defaulting to [1],
    [speedup] to the linear law, [capacity] to unbounded, and [deps]
    to no precedence parents. *)
val task :
  ?weight:rat ->
  ?speedup:(rat * rat) list ->
  ?capacity:int ->
  ?deps:int list ->
  volume:rat ->
  delta:int ->
  unit ->
  task

val make : procs:int -> task list -> t
val num_tasks : t -> int

(** True iff any task carries a non-linear speedup curve. *)
val has_curves : t -> bool

(** True iff any task has a precedence parent. *)
val has_deps : t -> bool

(** Structural sanity: positive volumes, weights, deltas, procs;
    well-formed speedup curves (positive, strictly increasing
    allocations, non-decreasing rates, concave, first slope <= 1,
    last breakpoint at [delta]); capacities >= 1; dependency edges
    in range, self-edge-free, duplicate-free and acyclic
    (topological sort). Returns an error message for the first
    violation. *)
val validate : t -> (unit, string) result

val rat_to_string : rat -> string

(** One-line rendering, e.g. for experiment logs. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit
