(** Instance construction and elementary quantities. *)

module Make (F : Mwct_field.Field.S) = struct
  module T = Types.Make (F)
  module O = Mwct_field.Field.Ops (F)
  open T

  let of_rat (r : Spec.rat) = F.of_q r.Spec.num r.Spec.den

  (* Evaluate a raw breakpoint curve (through the origin, constant
     beyond the last breakpoint) at allocation [a]. Linear scan:
     curves have a handful of pieces. *)
  let eval_curve (bx : num array) (by : num array) (a : num) : num =
    let last = Array.length bx - 1 in
    if F.sign a <= 0 then F.zero
    else if F.compare a bx.(last) >= 0 then by.(last)
    else begin
      let j = ref 0 in
      while F.compare a bx.(!j) > 0 do
        incr j
      done;
      let j = !j in
      let px = if j = 0 then F.zero else bx.(j - 1) in
      let py = if j = 0 then F.zero else by.(j - 1) in
      if F.compare a px = 0 then py
      else F.add py (F.div (F.mul (F.sub a px) (F.sub by.(j) py)) (F.sub bx.(j) px))
    end

  (* Minimal allocation achieving rate [r] on the curve ([r] clamped to
     the achievable range). Flat segments invert to their left
     endpoint. *)
  let invert_curve (bx : num array) (by : num array) (r : num) : num =
    let last = Array.length bx - 1 in
    if F.sign r <= 0 then F.zero
    else if F.compare r by.(last) >= 0 then
      (* minimal allocation for the saturated rate: scan back over any
         flat tail *)
      begin
        let j = ref last in
        while !j > 0 && F.compare by.(!j - 1) by.(last) >= 0 do
          decr j
        done;
        bx.(!j)
      end
    else begin
      let j = ref 0 in
      while F.compare r by.(!j) > 0 do
        incr j
      done;
      let j = !j in
      let px = if j = 0 then F.zero else bx.(j - 1) in
      let py = if j = 0 then F.zero else by.(j - 1) in
      if F.compare r py <= 0 then px
      else F.add px (F.div (F.mul (F.sub r py) (F.sub bx.(j) px)) (F.sub by.(j) py))
    end

  (** Convert a field-neutral spec into a field instance. Per-task
      [capacity] clauses are folded into the rate model here: a linear
      task's delta is clamped to the capacity; a curve is truncated at
      the capacity (the new saturation allocation is the capacity, at
      the curve's rate there). *)
  let of_spec (s : Spec.t) : instance =
    (match Spec.validate s with Ok () -> () | Error msg -> invalid_arg ("Instance.of_spec: " ^ msg));
    {
      procs = F.of_int s.Spec.procs;
      tasks =
        Array.map
          (fun (tk : Spec.task) ->
            let delta = F.of_int tk.Spec.delta in
            let capped =
              match tk.Spec.capacity with Some c -> F.min delta (F.of_int c) | None -> delta
            in
            let speedup =
              match tk.Spec.speedup with
              | [] -> Linear_delta
              | pairs ->
                let bx = Array.of_list (List.map (fun (x, _) -> of_rat x) pairs) in
                let by = Array.of_list (List.map (fun (_, y) -> of_rat y) pairs) in
                if F.compare capped bx.(Array.length bx - 1) >= 0 then Curve { bx; by }
                else begin
                  (* truncate at the capacity *)
                  let keep = ref 0 in
                  while F.compare bx.(!keep) capped < 0 do
                    incr keep
                  done;
                  let k = !keep in
                  let bx' = Array.append (Array.sub bx 0 k) [| capped |] in
                  let by' = Array.append (Array.sub by 0 k) [| eval_curve bx by capped |] in
                  Curve { bx = bx'; by = by' }
                end
            in
            { volume = of_rat tk.Spec.volume; weight = of_rat tk.Spec.weight; delta = capped; speedup })
          s.Spec.tasks;
    }

  (** Build directly from field values (weights default to 1). *)
  let make ~procs tasks : instance = { procs; tasks = Array.of_list tasks }

  let task ?weight ?(speedup = Linear_delta) ~volume ~delta () =
    let weight = match weight with Some w -> w | None -> F.one in
    { volume; weight; delta; speedup }

  let num_tasks (i : instance) = Array.length i.tasks

  (** True iff any task has a non-linear rate law. *)
  let has_curves (i : instance) =
    Array.exists (fun t -> match t.speedup with Linear_delta -> false | Curve _ -> true) i.tasks

  (** Structural validity over the field: everything strictly positive,
      [δ_i >= 1]. Deltas above [P] are allowed (they behave as [P]).
      Speedup curves must satisfy the {!Types.Make.speedup} invariants
      (including the last breakpoint sitting at [delta]). *)
  let validate (i : instance) =
    if F.sign i.procs <= 0 then Error "procs must be positive"
    else begin
      let bad = ref None in
      let fail k msg = bad := Some (Printf.sprintf "task %d: %s" k msg) in
      let check_curve k bx by delta =
        let n = Array.length bx in
        if n = 0 || Array.length by <> n then fail k "speedup breakpoint arrays must match and be non-empty"
        else if F.compare bx.(n - 1) delta <> 0 then fail k "last speedup breakpoint must equal delta"
        else begin
          let px = ref F.zero and py = ref F.zero in
          let pslope = ref None in
          (try
             for j = 0 to n - 1 do
               if F.sign bx.(j) <= 0 || F.sign by.(j) <= 0 then begin
                 fail k "speedup breakpoints must be positive";
                 raise Exit
               end;
               if F.compare !px bx.(j) >= 0 then begin
                 fail k "speedup allocations must be strictly increasing";
                 raise Exit
               end;
               if F.compare !py by.(j) > 0 then begin
                 fail k "speedup rate must be non-decreasing";
                 raise Exit
               end;
               let dx = F.sub bx.(j) !px and dy = F.sub by.(j) !py in
               (match !pslope with
               | None ->
                 if F.compare by.(j) bx.(j) > 0 then begin
                   fail k "speedup rate cannot exceed allocation";
                   raise Exit
                 end
               | Some (pdx, pdy) ->
                 if F.compare (F.mul dy pdx) (F.mul pdy dx) > 0 then begin
                   fail k "speedup must be concave";
                   raise Exit
                 end);
               pslope := Some (dx, dy);
               px := bx.(j);
               py := by.(j)
             done
           with Exit -> ())
        end
      in
      Array.iteri
        (fun k t ->
          if Option.is_none !bad then
            if F.sign t.volume <= 0 then fail k "volume must be positive"
            else if F.sign t.weight <= 0 then fail k "weight must be positive"
            else if F.compare t.delta F.one < 0 then fail k "delta must be >= 1"
            else begin
              match t.speedup with
              | Linear_delta -> ()
              | Curve { bx; by } -> check_curve k bx by t.delta
            end)
        i.tasks;
      match !bad with None -> Ok () | Some m -> Error m
    end

  (** Total work [Σ V_i]. *)
  let total_volume (i : instance) = O.sum_array (Array.map (fun t -> t.volume) i.tasks)

  (** Total weight [Σ w_i]. *)
  let total_weight (i : instance) = O.sum_array (Array.map (fun t -> t.weight) i.tasks)

  (** Effective parallelism cap: [min δ_i P]; a task can never use more
      than all processors. *)
  let effective_delta (i : instance) k = F.min i.tasks.(k).delta i.procs

  (** Progress rate of task [k] at allocation [a]. The linear law
      returns [a] itself (allocations are clamped to
      [effective_delta] by the schedulers); curves evaluate the
      piecewise-linear speedup. *)
  let rate_at (i : instance) k (a : num) : num =
    match i.tasks.(k).speedup with Linear_delta -> a | Curve { bx; by } -> eval_curve bx by a

  (** Minimal allocation giving task [k] rate [r] (clamped to the
      achievable range). Inverse of {!rate_at}. *)
  let inverse_rate (i : instance) k (r : num) : num =
    match i.tasks.(k).speedup with Linear_delta -> r | Curve { bx; by } -> invert_curve bx by r

  (** Highest rate task [k] can reach on this machine:
      [rate_at (effective_delta k)]. Equals [effective_delta] under the
      linear law. *)
  let max_rate (i : instance) k = rate_at i k (effective_delta i k)

  (** The speedup breakpoints of task [k] as arrays, or [None] for the
      linear law — the runtime engine's submission format. *)
  let speedup_arrays (i : instance) k : (num array * num array) option =
    match i.tasks.(k).speedup with Linear_delta -> None | Curve { bx; by } -> Some (bx, by)

  (** Evaluate a raw breakpoint curve (as returned by
      {!speedup_arrays}) at allocation [a] — for code that carries the
      arrays without the instance. *)
  let curve_rate ((bx, by) : num array * num array) (a : num) : num = eval_curve bx by a

  (** The height [h_i = V_i / s_i(min(δ_i, P))] of task [i]
      (Definition 6; [V_i / min(δ_i, P)] under the linear law). *)
  let height (i : instance) k = F.div i.tasks.(k).volume (max_rate i k)

  (** Smith ratio [V_i / w_i]; the squashed-area bound sorts by it. *)
  let smith_ratio (i : instance) k = F.div i.tasks.(k).volume i.tasks.(k).weight

  (** [sub_instance i volumes] is the paper's subinstance [I[V'_i]]:
      same tasks with modified volumes. Tasks whose new volume is zero
      are kept (with zero volume) so indices are stable; quantities like
      the squashed-area bound ignore them naturally. *)
  let sub_instance (i : instance) (volumes : num array) : instance =
    if Array.length volumes <> num_tasks i then invalid_arg "Instance.sub_instance: length mismatch";
    { i with tasks = Array.mapi (fun k t -> { t with volume = volumes.(k) }) i.tasks }

  (** Render for logs. *)
  let to_string (i : instance) =
    let t_to_string t =
      let s =
        match t.speedup with
        | Linear_delta -> ""
        | Curve { bx; by } ->
          " s="
          ^ String.concat ","
              (List.map2
                 (fun x y -> F.to_string x ^ ":" ^ F.to_string y)
                 (Array.to_list bx) (Array.to_list by))
      in
      Printf.sprintf "(V=%s w=%s d=%s%s)" (F.to_string t.volume) (F.to_string t.weight)
        (F.to_string t.delta) s
    in
    Printf.sprintf "P=%s %s" (F.to_string i.procs)
      (String.concat " " (Array.to_list (Array.map t_to_string i.tasks)))
end
