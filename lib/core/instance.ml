(** Instance construction and elementary quantities. *)

module Make (F : Mwct_field.Field.S) = struct
  module T = Types.Make (F)
  module O = Mwct_field.Field.Ops (F)
  open T

  let of_rat (r : Spec.rat) = F.of_q r.Spec.num r.Spec.den

  (* Evaluate a raw breakpoint curve (through the origin, constant
     beyond the last breakpoint) at allocation [a]. Linear scan:
     curves have a handful of pieces. *)
  let eval_curve (bx : num array) (by : num array) (a : num) : num =
    let last = Array.length bx - 1 in
    if F.sign a <= 0 then F.zero
    else if F.compare a bx.(last) >= 0 then by.(last)
    else begin
      let j = ref 0 in
      while F.compare a bx.(!j) > 0 do
        incr j
      done;
      let j = !j in
      let px = if j = 0 then F.zero else bx.(j - 1) in
      let py = if j = 0 then F.zero else by.(j - 1) in
      if F.compare a px = 0 then py
      else F.add py (F.div (F.mul (F.sub a px) (F.sub by.(j) py)) (F.sub bx.(j) px))
    end

  (* Minimal allocation achieving rate [r] on the curve ([r] clamped to
     the achievable range). Flat segments invert to their left
     endpoint. *)
  let invert_curve (bx : num array) (by : num array) (r : num) : num =
    let last = Array.length bx - 1 in
    if F.sign r <= 0 then F.zero
    else if F.compare r by.(last) >= 0 then
      (* minimal allocation for the saturated rate: scan back over any
         flat tail *)
      begin
        let j = ref last in
        while !j > 0 && F.compare by.(!j - 1) by.(last) >= 0 do
          decr j
        done;
        bx.(!j)
      end
    else begin
      let j = ref 0 in
      while F.compare r by.(!j) > 0 do
        incr j
      done;
      let j = !j in
      let px = if j = 0 then F.zero else bx.(j - 1) in
      let py = if j = 0 then F.zero else by.(j - 1) in
      if F.compare r py <= 0 then px
      else F.add px (F.div (F.mul (F.sub r py) (F.sub bx.(j) px)) (F.sub by.(j) py))
    end

  (** Convert a field-neutral spec into a field instance. Per-task
      [capacity] clauses are folded into the rate model here: a linear
      task's delta is clamped to the capacity; a curve is truncated at
      the capacity (the new saturation allocation is the capacity, at
      the curve's rate there). *)
  let of_spec (s : Spec.t) : instance =
    (match Spec.validate s with Ok () -> () | Error msg -> invalid_arg ("Instance.of_spec: " ^ msg));
    {
      procs = F.of_int s.Spec.procs;
      tasks =
        Array.map
          (fun (tk : Spec.task) ->
            let delta = F.of_int tk.Spec.delta in
            let capped =
              match tk.Spec.capacity with Some c -> F.min delta (F.of_int c) | None -> delta
            in
            let speedup =
              match tk.Spec.speedup with
              | [] -> Linear_delta
              | pairs ->
                let bx = Array.of_list (List.map (fun (x, _) -> of_rat x) pairs) in
                let by = Array.of_list (List.map (fun (_, y) -> of_rat y) pairs) in
                if F.compare capped bx.(Array.length bx - 1) >= 0 then Curve { bx; by }
                else begin
                  (* truncate at the capacity *)
                  let keep = ref 0 in
                  while F.compare bx.(!keep) capped < 0 do
                    incr keep
                  done;
                  let k = !keep in
                  let bx' = Array.append (Array.sub bx 0 k) [| capped |] in
                  let by' = Array.append (Array.sub by 0 k) [| eval_curve bx by capped |] in
                  Curve { bx = bx'; by = by' }
                end
            in
            {
              volume = of_rat tk.Spec.volume;
              weight = of_rat tk.Spec.weight;
              delta = capped;
              speedup;
              deps = Array.of_list tk.Spec.deps;
            })
          s.Spec.tasks;
    }

  (** Build directly from field values (weights default to 1). *)
  let make ~procs tasks : instance = { procs; tasks = Array.of_list tasks }

  let task ?weight ?(speedup = Linear_delta) ?(deps = [||]) ~volume ~delta () =
    let weight = match weight with Some w -> w | None -> F.one in
    { volume; weight; delta; speedup; deps }

  let num_tasks (i : instance) = Array.length i.tasks

  (** True iff any task has a non-linear rate law. *)
  let has_curves (i : instance) =
    Array.exists (fun t -> match t.speedup with Linear_delta -> false | Curve _ -> true) i.tasks

  (** True iff any task has a precedence parent. *)
  let has_deps (i : instance) = Array.exists (fun t -> t.deps <> [||]) i.tasks

  (** Structural validity over the field: everything strictly positive,
      [δ_i >= 1]. Deltas above [P] are allowed (they behave as [P]).
      Speedup curves must satisfy the {!Types.Make.speedup} invariants
      (including the last breakpoint sitting at [delta]). *)
  let validate (i : instance) =
    if F.sign i.procs <= 0 then Error "procs must be positive"
    else begin
      let bad = ref None in
      let fail k msg = bad := Some (Printf.sprintf "task %d: %s" k msg) in
      let check_curve k bx by delta =
        let n = Array.length bx in
        if n = 0 || Array.length by <> n then fail k "speedup breakpoint arrays must match and be non-empty"
        else if F.compare bx.(n - 1) delta <> 0 then fail k "last speedup breakpoint must equal delta"
        else begin
          let px = ref F.zero and py = ref F.zero in
          let pslope = ref None in
          (try
             for j = 0 to n - 1 do
               if F.sign bx.(j) <= 0 || F.sign by.(j) <= 0 then begin
                 fail k "speedup breakpoints must be positive";
                 raise Exit
               end;
               if F.compare !px bx.(j) >= 0 then begin
                 fail k "speedup allocations must be strictly increasing";
                 raise Exit
               end;
               if F.compare !py by.(j) > 0 then begin
                 fail k "speedup rate must be non-decreasing";
                 raise Exit
               end;
               let dx = F.sub bx.(j) !px and dy = F.sub by.(j) !py in
               (match !pslope with
               | None ->
                 if F.compare by.(j) bx.(j) > 0 then begin
                   fail k "speedup rate cannot exceed allocation";
                   raise Exit
                 end
               | Some (pdx, pdy) ->
                 if F.compare (F.mul dy pdx) (F.mul pdy dx) > 0 then begin
                   fail k "speedup must be concave";
                   raise Exit
                 end);
               pslope := Some (dx, dy);
               px := bx.(j);
               py := by.(j)
             done
           with Exit -> ())
        end
      in
      let n = Array.length i.tasks in
      let check_deps k (deps : int array) =
        let seen = Hashtbl.create (Array.length deps) in
        Array.iter
          (fun j ->
            if Option.is_none !bad then
              if j < 0 || j >= n then
                fail k (Printf.sprintf "unknown dependency %d (tasks are 0..%d)" j (n - 1))
              else if j = k then fail k "task cannot depend on itself"
              else if Hashtbl.mem seen j then fail k (Printf.sprintf "duplicate dependency %d" j)
              else Hashtbl.add seen j ())
          deps
      in
      Array.iteri
        (fun k t ->
          if Option.is_none !bad then begin
            if F.sign t.volume <= 0 then fail k "volume must be positive"
            else if F.sign t.weight <= 0 then fail k "weight must be positive"
            else if F.compare t.delta F.one < 0 then fail k "delta must be >= 1"
            else begin
              match t.speedup with
              | Linear_delta -> ()
              | Curve { bx; by } -> check_curve k bx by t.delta
            end;
            if Option.is_none !bad then check_deps k t.deps
          end)
        i.tasks;
      (* Kahn topological sort over the edge set rejects cycles (specs
         built through [of_spec] already passed this in Spec.validate;
         directly-built instances get the same diagnostic here). *)
      if Option.is_none !bad then begin
        let indeg = Array.make n 0 in
        let children = Array.make n [] in
        Array.iteri
          (fun k t ->
            Array.iter
              (fun j ->
                indeg.(k) <- indeg.(k) + 1;
                children.(j) <- k :: children.(j))
              t.deps)
          i.tasks;
        let queue = Queue.create () in
        Array.iteri (fun k d -> if d = 0 then Queue.add k queue) indeg;
        let seen = ref 0 in
        while not (Queue.is_empty queue) do
          let k = Queue.pop queue in
          incr seen;
          List.iter
            (fun c ->
              indeg.(c) <- indeg.(c) - 1;
              if indeg.(c) = 0 then Queue.add c queue)
            children.(k)
        done;
        if !seen <> n then begin
          let rec first k = if indeg.(k) > 0 then k else first (k + 1) in
          let k = first 0 in
          fail k "dependency cycle through this task"
        end
      end;
      match !bad with None -> Ok () | Some m -> Error m
    end

  (** Total work [Σ V_i]. *)
  let total_volume (i : instance) = O.sum_array (Array.map (fun t -> t.volume) i.tasks)

  (** Total weight [Σ w_i]. *)
  let total_weight (i : instance) = O.sum_array (Array.map (fun t -> t.weight) i.tasks)

  (** Effective parallelism cap: [min δ_i P]; a task can never use more
      than all processors. *)
  let effective_delta (i : instance) k = F.min i.tasks.(k).delta i.procs

  (** Progress rate of task [k] at allocation [a]. The linear law
      returns [a] itself (allocations are clamped to
      [effective_delta] by the schedulers); curves evaluate the
      piecewise-linear speedup. *)
  let rate_at (i : instance) k (a : num) : num =
    match i.tasks.(k).speedup with Linear_delta -> a | Curve { bx; by } -> eval_curve bx by a

  (** Minimal allocation giving task [k] rate [r] (clamped to the
      achievable range). Inverse of {!rate_at}. *)
  let inverse_rate (i : instance) k (r : num) : num =
    match i.tasks.(k).speedup with Linear_delta -> r | Curve { bx; by } -> invert_curve bx by r

  (** Highest rate task [k] can reach on this machine:
      [rate_at (effective_delta k)]. Equals [effective_delta] under the
      linear law. *)
  let max_rate (i : instance) k = rate_at i k (effective_delta i k)

  (** The speedup breakpoints of task [k] as arrays, or [None] for the
      linear law — the runtime engine's submission format. *)
  let speedup_arrays (i : instance) k : (num array * num array) option =
    match i.tasks.(k).speedup with Linear_delta -> None | Curve { bx; by } -> Some (bx, by)

  (** Evaluate a raw breakpoint curve (as returned by
      {!speedup_arrays}) at allocation [a] — for code that carries the
      arrays without the instance. *)
  let curve_rate ((bx, by) : num array * num array) (a : num) : num = eval_curve bx by a

  (* ---------- precedence topology ---------- *)

  (** Child adjacency of the dependency DAG: [dep_children i].(j) lists
      the tasks that name [j] as a parent, in index order. *)
  let dep_children (i : instance) : int list array =
    let n = num_tasks i in
    let ch = Array.make n [] in
    for k = n - 1 downto 0 do
      Array.iter (fun p -> ch.(p) <- k :: ch.(p)) i.tasks.(k).deps
    done;
    ch

  (** A topological order of the tasks (parents before children),
      lowest-index-first among ready tasks so the order is canonical.
      Raises [Invalid_argument] on a cyclic edge set — [validate] /
      [of_spec] reject those up front. *)
  let topo_order (i : instance) : int array =
    let n = num_tasks i in
    let indeg = Array.map (fun t -> Array.length t.deps) i.tasks in
    let children = dep_children i in
    let module IS = Set.Make (Int) in
    let ready = ref (IS.of_list (List.filter (fun k -> indeg.(k) = 0) (List.init n Fun.id))) in
    let order = Array.make n 0 in
    for pos = 0 to n - 1 do
      match IS.min_elt_opt !ready with
      | None -> invalid_arg "Instance.topo_order: dependency cycle"
      | Some k ->
        ready := IS.remove k !ready;
        order.(pos) <- k;
        List.iter
          (fun c ->
            indeg.(c) <- indeg.(c) - 1;
            if indeg.(c) = 0 then ready := IS.add c !ready)
          children.(k)
    done;
    order

  (** DAG level of every task: [0] for tasks with no parents, else
      [1 + max (level parent)]. *)
  let levels (i : instance) : int array =
    let lvl = Array.make (num_tasks i) 0 in
    Array.iter
      (fun k ->
        Array.iter (fun p -> if lvl.(p) + 1 > lvl.(k) then lvl.(k) <- lvl.(p) + 1) i.tasks.(k).deps)
      (topo_order i);
    lvl

  (** The ready frontier under a completion predicate: tasks not yet
      completed whose parents have all completed, in index order. *)
  let ready_frontier (i : instance) ~(completed : int -> bool) : int list =
    let ready k =
      (not (completed k)) && Array.for_all completed i.tasks.(k).deps
    in
    List.filter ready (List.init (num_tasks i) Fun.id)

  (** Transitive weight of every task: its own weight plus the weight
      of every (transitive) descendant, each descendant counted once —
      the weight a dormant subtree adds to its currently-alive
      ancestors in the precedence-aware WDEQ variant
      (Garg–Gupta–Kumar–Singla, arXiv:1905.02133). O(n·E) via one
      ancestor walk per task; dependency graphs are sparse. *)
  let transitive_weight (i : instance) : num array =
    let n = num_tasks i in
    let tw = Array.map (fun t -> t.weight) i.tasks in
    let mark = Array.make n false in
    for j = 0 to n - 1 do
      if i.tasks.(j).deps <> [||] then begin
        Array.fill mark 0 n false;
        (* collect the strict ancestors of [j], each once *)
        let rec up k =
          Array.iter
            (fun p ->
              if not mark.(p) then begin
                mark.(p) <- true;
                up p
              end)
            i.tasks.(k).deps
        in
        up j;
        let wj = i.tasks.(j).weight in
        for p = 0 to n - 1 do
          if mark.(p) then tw.(p) <- F.add tw.(p) wj
        done
      end
    done;
    tw

  (** The height [h_i = V_i / s_i(min(δ_i, P))] of task [i]
      (Definition 6; [V_i / min(δ_i, P)] under the linear law). *)
  let height (i : instance) k = F.div i.tasks.(k).volume (max_rate i k)

  (** Per-task gated work: [Σ w_j · h_j] over the strict transitive
      descendants [j] of each task — the weighted, speedup-curve-aware
      work ({!height}, so curves and capacity clamps price in) that a
      task's completion unlocks. This is the static term of the
      remaining-work transitive weighting in {!Dag.Make.simulate}:
      descendants of a ready task cannot start before it completes, so
      their heights never drain while the term is in use. Unit [w_j]
      with [~use_weights:false], so the unweighted variant ranks by
      remaining descendant work rather than raw descendant counts.
      Same O(n·E) ancestor walk as {!transitive_weight}. *)
  let gated_work ?(use_weights = true) (i : instance) : num array =
    let n = num_tasks i in
    let gw = Array.make n F.zero in
    let mark = Array.make n false in
    for j = 0 to n - 1 do
      if i.tasks.(j).deps <> [||] then begin
        Array.fill mark 0 n false;
        let rec up k =
          Array.iter
            (fun p ->
              if not mark.(p) then begin
                mark.(p) <- true;
                up p
              end)
            i.tasks.(k).deps
        in
        up j;
        let wh = if use_weights then F.mul i.tasks.(j).weight (height i j) else height i j in
        for p = 0 to n - 1 do
          if mark.(p) then gw.(p) <- F.add gw.(p) wh
        done
      end
    done;
    gw

  (** Smith ratio [V_i / w_i]; the squashed-area bound sorts by it. *)
  let smith_ratio (i : instance) k = F.div i.tasks.(k).volume i.tasks.(k).weight

  (** [sub_instance i volumes] is the paper's subinstance [I[V'_i]]:
      same tasks with modified volumes. Tasks whose new volume is zero
      are kept (with zero volume) so indices are stable; quantities like
      the squashed-area bound ignore them naturally. *)
  let sub_instance (i : instance) (volumes : num array) : instance =
    if Array.length volumes <> num_tasks i then invalid_arg "Instance.sub_instance: length mismatch";
    { i with tasks = Array.mapi (fun k t -> { t with volume = volumes.(k) }) i.tasks }

  (** Render for logs. *)
  let to_string (i : instance) =
    let t_to_string t =
      let s =
        match t.speedup with
        | Linear_delta -> ""
        | Curve { bx; by } ->
          " s="
          ^ String.concat ","
              (List.map2
                 (fun x y -> F.to_string x ^ ":" ^ F.to_string y)
                 (Array.to_list bx) (Array.to_list by))
      in
      let d =
        match t.deps with
        | [||] -> ""
        | ds ->
          " deps="
          ^ String.concat "," (List.map string_of_int (Array.to_list ds))
      in
      Printf.sprintf "(V=%s w=%s d=%s%s%s)" (F.to_string t.volume) (F.to_string t.weight)
        (F.to_string t.delta) s d
    in
    Printf.sprintf "P=%s %s" (F.to_string i.procs)
      (String.concat " " (Array.to_list (Array.map t_to_string i.tasks)))
end
