(** Algorithm Greedy(σ) (Algorithm 3 of the paper).

    Tasks are inserted one by one in the order [σ]; each takes as much
    resource as possible, as early as possible: at every instant it
    runs at rate [min(δ_i, available(t))] until its volume is done.

    The availability profile is a non-decreasing step function of time
    whose breakpoints are completion times of previously inserted
    tasks, so the result is a genuine column schedule with respect to
    the sorted completion times of all tasks (see Section V). *)

module Make (F : Mwct_field.Field.S) = struct
  module T = Types.Make (F)
  module I = Instance.Make (F)
  module S = Schedule.Make (F)
  open T

  (* Availability profile: [(start, avail)] segments sorted by start;
     each extends to the next start; the last extends to infinity.
     Invariant: avail values are non-decreasing along the list and the
     last equals P. *)
  type profile = (num * num) list

  let initial_profile (inst : instance) : profile = [ (F.zero, inst.procs) ]

  (* Allocation of one task piecewise over the profile, and its
     completion time. Returns the allocation segments [(t0, t1, alloc)]
     with positive allocation and the completion time. [?speedup] is
     the task's rate law: progress accrues at [s(alloc)] — the
     allocation itself under the linear law ([None]), so the linear
     arithmetic is the historical one bit-for-bit. *)
  let place ?speedup (profile : profile) ~delta ~volume =
    let rate_of alloc = match speedup with None -> alloc | Some c -> I.curve_rate c alloc in
    let rec go acc remaining = function
      | [] -> invalid_arg "Greedy.place: profile exhausted (broken invariant)"
      | (t0, avail) :: rest ->
        let alloc = F.min delta avail in
        let rate = rate_of alloc in
        let seg_end = match rest with (t1, _) :: _ -> Some t1 | [] -> None in
        let finish_here =
          (* Time to finish the remaining volume at [rate], if it fits
             in this segment. *)
          if F.sign rate <= 0 then None
          else begin
            let t_fin = F.add t0 (F.div remaining rate) in
            match seg_end with
            | Some t1 when F.compare t_fin t1 > 0 -> None
            | _ -> Some t_fin
          end
        in
        match finish_here with
        | Some t_fin ->
          let acc = if F.sign alloc > 0 then (t0, t_fin, alloc) :: acc else acc in
          (List.rev acc, t_fin)
        | None ->
          let t1 = match seg_end with Some t1 -> t1 | None -> assert false in
          let processed = F.mul rate (F.sub t1 t0) in
          let acc = if F.sign alloc > 0 then (t0, t1, alloc) :: acc else acc in
          go acc (F.sub remaining processed) rest
    in
    go [] volume profile

  (* Subtract the task's rate segments from the profile. Rate segments
     share breakpoints with the profile except for the final completion
     time, which may split a profile segment. *)
  let consume (profile : profile) (segs : (num * num * num) list) : profile =
    (* Collect all breakpoints: profile starts + segment bounds. *)
    let points =
      List.sort_uniq F.compare
        (List.map fst profile @ List.concat_map (fun (a, b, _) -> [ a; b ]) segs)
    in
    let avail_at t =
      (* Last profile entry with start <= t. *)
      let rec go last = function
        | (s, a) :: rest when F.compare s t <= 0 -> go a rest
        | _ -> last
      in
      match profile with
      | [] -> invalid_arg "Greedy.consume: empty profile"
      | (_, a0) :: rest -> go a0 rest
    in
    let rate_at t =
      let rec go = function
        | (a, b, r) :: rest -> if F.compare a t <= 0 && F.compare t b < 0 then r else go rest
        | [] -> F.zero
      in
      go segs
    in
    let raw = List.map (fun t -> (t, F.sub (avail_at t) (rate_at t))) points in
    (* Merge consecutive entries with equal availability. *)
    let rec dedup = function
      | (t1, a1) :: (_, a2) :: rest when F.equal a1 a2 -> dedup ((t1, a1) :: rest)
      | x :: rest -> x :: dedup rest
      | [] -> []
    in
    dedup raw

  (** [run inst sigma] inserts tasks in order [sigma] and returns the
      resulting column schedule. [sigma] must be a permutation of the
      task indices. *)
  let run (inst : instance) (sigma : int array) : column_schedule =
    let n = I.num_tasks inst in
    if Array.length sigma <> n then invalid_arg "Greedy.run: order length mismatch";
    let seen = Array.make n false in
    Array.iter
      (fun i ->
        if i < 0 || i >= n || seen.(i) then invalid_arg "Greedy.run: order is not a permutation";
        seen.(i) <- true)
      sigma;
    let profile = ref (initial_profile inst) in
    let task_segs = Array.make n [] in
    let completion = Array.make n F.zero in
    Array.iter
      (fun i ->
        let delta = I.effective_delta inst i in
        let volume = inst.tasks.(i).volume in
        let segs, fin = place ?speedup:(I.speedup_arrays inst i) !profile ~delta ~volume in
        task_segs.(i) <- segs;
        completion.(i) <- fin;
        profile := consume !profile segs)
      sigma;
    (* Assemble the column schedule over sorted completion times. Each
       task's rate segments feed the sparse columns directly: the rate
       is constant within a column, so averaging is exact. *)
    let order = S.sorted_order completion in
    let finish = Array.map (fun i -> completion.(i)) order in
    let columns = S.columns_of_segments ~finish task_segs in
    { instance = inst; order; finish; columns }

  (** Objective of the greedy schedule for an order. *)
  let objective (inst : instance) (sigma : int array) =
    S.weighted_completion_time (run inst sigma)
end
