(** Algorithm WF — the paper's normal form (Section IV, Algorithm 2).

    Given an instance and a target completion time for every task, WF
    rebuilds a valid column schedule if one exists (Theorem 8): tasks
    are processed by non-decreasing completion time, and each is poured
    like water over the columns it may use, subject to its cap [δ_i]
    and to the current column heights. The resulting occupation is a
    non-increasing function of time (Lemma 3), which tests verify.

    The water level [h*] for a task solves
    [Σ_k l_k · clamp(h* − h_k, 0, δ_i) = V_i]; we find it by an event
    sweep over the sorted breakpoints [{h_k, h_k + δ_i}], so scheduling
    each task costs [O(n log n)] and the whole normal form
    [O(n² log n)] — the complexity improvement over Chen et al. that
    Section IV discusses. *)

module Make (F : Mwct_field.Field.S) = struct
  module T = Types.Make (F)
  module I = Instance.Make (F)
  module S = Schedule.Make (F)
  open T

  (** Water level for one task: minimal [h <= cap] such that
      [Σ l_k · s(clamp(h − h_k, 0, delta)) >= v], or [None] when even
      [h = cap] is not enough (up to the field's tolerance, in which
      case [cap] is returned). [s] is the task's rate law:
      [?speedup:None] is the linear law [s(a) = a] (the historical
      event construction, byte-for-byte); [Some (bx, by)] a concave
      breakpoint curve, which only adds slope-change events at the
      curve's breakpoints — the sweep itself is model-independent.
      Only the first [ncols] columns are considered; zero-length
      columns are ignored. *)
  let water_level ?speedup ~heights ~lengths ~ncols ~delta ~cap v =
    if F.sign v <= 0 then Some F.zero
    else begin
      (* Events: at level h_k the column k starts filling at the
         curve's first slope; the slope changes at [h_k + x_j] for each
         curve breakpoint and drops to zero at [h_k + delta]
         (saturation). Under the linear law that is (+l_k) at [h_k] and
         (-l_k) at [h_k + delta]. Levels beyond [cap] are cut. *)
      let events = ref [] in
      (* Slopes (m_1 .. m_J) of the curve's segments, with the implicit
         origin; [None] for the linear law (single slope 1). *)
      let curve_slopes =
        match speedup with
        | None -> None
        | Some (bx, by) ->
          let nj = Array.length bx in
          Some
            ( bx,
              Array.init nj (fun j ->
                  let px = if j = 0 then F.zero else bx.(j - 1) in
                  let py = if j = 0 then F.zero else by.(j - 1) in
                  F.div (F.sub by.(j) py) (F.sub bx.(j) px)) )
      in
      for k = 0 to ncols - 1 do
        if F.sign lengths.(k) > 0 then begin
          let h = heights.(k) in
          if F.compare h cap < 0 then begin
            match curve_slopes with
            | None ->
              events := (h, lengths.(k)) :: !events;
              let top = F.add h delta in
              if F.compare top cap < 0 then events := (top, F.neg lengths.(k)) :: !events
            | Some (bx, slopes) ->
              let nj = Array.length bx in
              events := (h, F.mul slopes.(0) lengths.(k)) :: !events;
              for j = 1 to nj - 1 do
                let at = F.add h bx.(j - 1) in
                if F.compare at cap < 0 then
                  events := (at, F.mul (F.sub slopes.(j) slopes.(j - 1)) lengths.(k)) :: !events
              done;
              let top = F.add h bx.(nj - 1) in
              if F.compare top cap < 0 then
                events := (top, F.neg (F.mul slopes.(nj - 1) lengths.(k))) :: !events
          end
        end
      done;
      let events = List.sort (fun (a, _) (b, _) -> F.compare a b) !events in
      (* Sweep. [level]/[filled] track the current point of the
         piecewise-linear function; [slope] its right derivative. *)
      let rec sweep level filled slope = function
        | [] ->
          (* Last stretch reaches up to [cap]. *)
          let at_cap = F.add filled (F.mul slope (F.sub cap level)) in
          if F.compare filled v >= 0 then Some level
          else if F.compare at_cap v >= 0 && F.sign slope > 0 then
            Some (F.add level (F.div (F.sub v filled) slope))
          else if F.leq_approx v at_cap then Some cap
          else None
        | (lv, dslope) :: rest ->
          if F.compare filled v >= 0 then Some level
          else begin
            let gained = F.mul slope (F.sub lv level) in
            let filled' = F.add filled gained in
            if F.compare filled' v >= 0 && F.sign slope > 0 then
              Some (F.add level (F.div (F.sub v filled) slope))
            else sweep lv filled' (F.add slope dslope) rest
          end
      in
      match events with
      | [] -> if F.leq_approx v F.zero then Some F.zero else None
      | (lv0, _) :: _ -> sweep lv0 F.zero F.zero events
    end

  (** [build inst times] runs Algorithm WF with target completion times
      [times] (indexed by task). Returns the normal-form schedule, or
      [Error k] where [k] is the first task (by completion order) that
      cannot be allocated — the certificate of Theorem 8 that {e no}
      valid schedule has these completion times. *)
  let build (inst : instance) (times : num array) : (column_schedule, int) result =
    let n = I.num_tasks inst in
    if Array.length times <> n then invalid_arg "Water_filling.build: times length mismatch";
    let order = S.sorted_order times in
    let finish = Array.map (fun i -> times.(i)) order in
    let lengths =
      Array.init n (fun j -> if j = 0 then finish.(0) else F.sub finish.(j) (finish.(j - 1)))
    in
    (* Sparse columns, accumulated as cons lists (tasks arrive in
       completion order) and sorted by task index on assembly. *)
    let columns = Array.make n [] in
    let heights = Array.make n F.zero in
    let exception Fail of int in
    try
      for j = 0 to n - 1 do
        let task_idx = order.(j) in
        let delta = I.effective_delta inst task_idx in
        let v = inst.tasks.(task_idx).volume in
        match
          water_level
            ?speedup:(I.speedup_arrays inst task_idx)
            ~heights ~lengths ~ncols:(j + 1) ~delta ~cap:inst.procs v
        with
        | None -> raise (Fail task_idx)
        | Some level ->
          for k = 0 to j do
            if F.sign lengths.(k) > 0 then begin
              let room = F.sub level heights.(k) in
              let a = F.max F.zero (F.min room delta) in
              (* Drop negligible slivers (float level an epsilon above a
                 column): they would register as spurious allocation
                 changes. Exact fields are unaffected. *)
              if F.sign a > 0 && not (F.equal_approx a F.zero) then begin
                columns.(k) <- (task_idx, a) :: columns.(k);
                (* Unsaturated columns are leveled to exactly [level]:
                   assigning it directly (rather than adding [a]) keeps
                   merged columns bit-identical under floats, which
                   later change-counting relies on. *)
                if F.compare room delta <= 0 then heights.(k) <- level
                else heights.(k) <- F.add heights.(k) a
              end
            end
          done
      done;
      let columns =
        Array.map (List.sort (fun (i, _) (i', _) -> Stdlib.compare i i')) columns
      in
      Ok { instance = inst; order; finish; columns }
    with Fail k -> Error k

  (** Theorem 8 feasibility test: do the given completion times admit a
      valid schedule? *)
  let feasible inst times = match build inst times with Ok _ -> true | Error _ -> false

  (** Normalization: rebuild any valid schedule in normal form from its
      completion times alone (the paper's central construction). The
      completion times — hence the objective — are preserved exactly. *)
  let normalize (s : column_schedule) : column_schedule =
    match build s.instance (S.completion_times s) with
    | Ok s' -> s'
    | Error k ->
      (* Theorem 8: impossible for a valid input schedule. *)
      invalid_arg (Printf.sprintf "Water_filling.normalize: input schedule invalid (task %d)" k)

  (** Column heights of a schedule (occupied processors per column),
      used to check Lemma 3 (non-increasing occupation). *)
  let column_heights (s : column_schedule) : num array =
    Array.map (List.fold_left (fun acc (_, a) -> F.add acc a) F.zero) s.columns
end
