(** Optimal makespan (Table I row [Cmax]): with zero release dates and
    the linear rate law,
    [T* = max(Σ V_i / P, max_i V_i / min(δ_i, P))], achieved by WF with
    all completion times at [T*]. Under concave speedup curves the
    capacity condition becomes [Σ_i s_i⁻¹(V_i/T) <= P], solved exactly
    by a breakpoint sweep. *)

module Make (F : Mwct_field.Field.S) : sig
  (** The optimal makespan [T*]. *)
  val optimal : Types.Make(F).instance -> F.t

  (** A schedule achieving [T*] (constant allocations [V_i/T*]). *)
  val schedule : Types.Make(F).instance -> Types.Make(F).column_schedule
end
