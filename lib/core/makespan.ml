(** Optimal makespan for malleable work-preserving tasks
    (Table I row [Cmax]; Drozdowski's result, realized here through WF
    in [O(n log n)]).

    With all release dates zero and the linear rate law, the optimal
    makespan is the classical lower bound
    [T* = max(Σ V_i / P, max_i V_i / δ_i)]: giving every task the
    target completion time [T*] makes WF allocate each one a constant
    [V_i / T*] processors, which is feasible precisely at [T*].

    Under concave speedup curves the same constant-allocation argument
    holds (by concavity, a constant allocation dominates any
    time-varying one with the same average), but the capacity condition
    becomes [Σ_i s_i⁻¹(V_i / T) <= P]. The left side is a convex,
    decreasing piecewise-linear function of [u = 1/T] in reverse — so
    [T*] is found by a breakpoint sweep over
    [g(u) = Σ_i s_i⁻¹(V_i · u)], whose kinks sit at [u = y_j / V_i]
    for the curves' breakpoint rates [y_j]. *)

module Make (F : Mwct_field.Field.S) = struct
  module T = Types.Make (F)
  module I = Instance.Make (F)
  module WF = Water_filling.Make (F)
  open T

  (* Classical closed form: max(Σ V_i / P, max_i h_i). Exact for the
     linear law. *)
  let optimal_linear (inst : instance) : F.t =
    let n = I.num_tasks inst in
    let area = F.div (I.total_volume inst) inst.procs in
    let rec max_height acc i =
      if i >= n then acc else max_height (F.max acc (I.height inst i)) (i + 1)
    in
    max_height area 0

  (* General concave case: solve [g(u) = Σ_i s_i⁻¹(V_i·u) = P] on
     [u ∈ (0, 1/h_max]], where [h_max = max_i h_i] bounds the rate any
     task can sustain. [g] is increasing, convex and piecewise linear
     with kinks at [u = y_j / V_i], so a sweep over the sorted kink
     candidates plus one linear interpolation is exact. *)
  let optimal_curved (inst : instance) : F.t =
    let n = I.num_tasks inst in
    let rec max_height acc i =
      if i >= n then acc else max_height (F.max acc (I.height inst i)) (i + 1)
    in
    let h_max = max_height F.zero 0 in
    if F.sign h_max <= 0 then F.zero
    else begin
      let u_max = F.div F.one h_max in
      let g u =
        let rec go acc i =
          if i >= n then acc
          else begin
            let v = inst.tasks.(i).volume in
            let a = if F.sign v > 0 then I.inverse_rate inst i (F.mul v u) else F.zero in
            go (F.add acc a) (i + 1)
          end
        in
        go F.zero 0
      in
      if F.compare (g u_max) inst.procs <= 0 then h_max
      else begin
        (* Kink candidates of g strictly inside (0, u_max). *)
        let cands = ref [] in
        for i = 0 to n - 1 do
          let v = inst.tasks.(i).volume in
          if F.sign v > 0 then
            match I.speedup_arrays inst i with
            | None -> ()
            | Some (_, by) ->
              Array.iter
                (fun y ->
                  let u = F.div y v in
                  if F.sign u > 0 && F.compare u u_max < 0 then cands := u :: !cands)
                by
        done;
        let cands = List.sort_uniq F.compare (u_max :: !cands) in
        (* Sweep: find the first candidate where g crosses P, then
           interpolate on the (linear) stretch before it. *)
        let rec sweep u_lo g_lo = function
          | [] ->
            (* g(u_max) > P was checked above, so a crossing exists. *)
            assert false
          | u_hi :: rest ->
            let g_hi = g u_hi in
            if F.compare g_hi inst.procs >= 0 then begin
              let du = F.sub u_hi u_lo and dg = F.sub g_hi g_lo in
              let u_star =
                if F.sign dg <= 0 then u_hi
                else F.add u_lo (F.div (F.mul (F.sub inst.procs g_lo) du) dg)
              in
              F.div F.one u_star
            end
            else sweep u_hi g_hi rest
        in
        sweep F.zero F.zero cands
      end
    end

  (** The optimal makespan [T*]. *)
  let optimal (inst : instance) : F.t =
    if I.has_curves inst then optimal_curved inst else optimal_linear inst

  (* Inexact-field detection through the approximate comparator: the
     float field's [equal_approx] has a 1e-9 window, the exact field's
     is strict equality. *)
  let inexact = F.equal_approx F.one (F.add F.one (F.of_q 1 1_000_000_000_000))

  (** A schedule achieving [T*]: WF with every completion at [T*].

      On the float field the curved sweep can place [T*] a few ulps
      below feasibility — [g] at [1/T*] lands an epsilon above [P] and WF's
      strict per-column checks reject it (test/corpus/
      makespan-curved-ulp.spec pins such an instance) — so rejection is
      retried with minimal relative inflation, doubling from [2^-40] and
      staying orders of magnitude inside every downstream tolerance.
      The exact field computes [T*] exactly and never retries. *)
  let schedule (inst : instance) : column_schedule =
    let t_star = optimal inst in
    let n = I.num_tasks inst in
    let attempt t = WF.build inst (Array.make n t) in
    let rec nudge eps tries =
      match if tries = 0 then Error 0 else attempt (F.mul t_star (F.add F.one eps)) with
      | Ok s -> s
      | Error _ when tries > 0 -> nudge (F.add eps eps) (tries - 1)
      | Error _ ->
        invalid_arg "Makespan.schedule: WF rejected the optimal makespan (impossible)"
    in
    match attempt t_star with
    | Ok s -> s
    | Error _ when inexact -> nudge (F.of_q 1 (1 lsl 40)) 16
    | Error _ -> invalid_arg "Makespan.schedule: WF rejected the optimal makespan (impossible)"
end
