(** Shared concrete types of the scheduling core, as one applicative
    functor over the field.

    Every other module of [mwct_core] instantiates [Types.Make (F)]
    internally; because OCaml functors are applicative, all instances
    over the same field [F] share these types, which keeps the rest of
    the library free of sharing constraints. Records are deliberately
    concrete: a schedule is data, and downstream code (checkers,
    pretty-printers, experiments) is expected to traverse it. *)

module Make (F : Mwct_field.Field.S) = struct
  type num = F.t

  (** Rate model of a task: how an allocation of processors translates
      into a progress rate.

      [Linear_delta] is the paper's law — a task on [a] processors
      progresses at rate [a] (allocations are already clamped to
      [min δ_i P] by the schedulers), so rate and allocation coincide.

      [Curve] is a concave piecewise-linear speedup function
      [s : allocation -> rate] through the origin: breakpoints
      [(bx.(j), by.(j))] with [bx] strictly increasing and positive,
      [by] positive and non-decreasing, segment slopes non-increasing
      (concavity) and the first slope at most [1] (a processor-second
      yields at most one unit of work, which keeps the squashed-area
      bound valid). Beyond the last breakpoint the rate stays constant
      at [by.(last)]. Invariant: the task's [delta] equals [bx.(last)]
      — the saturation allocation — so [Instance.effective_delta]
      remains the single allocation-cap seam for both models. *)
  type speedup = Linear_delta | Curve of { bx : num array; by : num array }

  (** A malleable work-preserving task: volume [V_i], weight [w_i] and
      parallelism cap [δ_i] (Definition 1 of the paper). [delta] is an
      integer number of processors but is stored in the field because
      the algorithms compare it with fractional allocations. [speedup]
      generalizes the rate law; [Linear_delta] is the paper's model.
      [deps] lists precedence parents (task indices that must complete
      before this task may start); [[||]] is the paper's
      independent-task bag. The edge set is acyclic by construction
      ({!Spec.validate} / [Instance.validate] reject cycles). *)
  type task = { volume : num; weight : num; delta : num; speedup : speedup; deps : int array }

  (** Problem instance [I = (P, (w_i), (V_i), (δ_i))]. *)
  type instance = { procs : num; tasks : task array }

  (** Column-based fractional schedule (Definition 2, MWCT-CB-F).

      Column [j] (0-based) is the time interval
      []finish.(j-1), finish.(j)]] (with [finish.(-1) = 0]);
      [order.(j)] is the index of the task completing at the end of
      column [j], so [finish] is non-decreasing.

      Allocations are stored {e sparsely, by column}: [columns.(j)] is
      the list of [(task, rate)] pairs of the tasks receiving a
      non-zero constant (fractional) number of processors during column
      [j]. Well-formed schedules keep each list sorted by strictly
      increasing task index and omit zero rates, so the total size is
      the number of (task, column) incidences — [O(n)] for the paper's
      normal-form schedules (Theorem 9) instead of the [O(n²)] of a
      dense matrix. No task may appear in a column after its own
      completion column. Use {!Schedule.Make.alloc} for point lookups
      and {!Schedule.Make.of_dense} to build from a dense matrix. *)
  type column_schedule = {
    instance : instance;
    order : int array;
    finish : num array;
    columns : (int * num) list array;
  }

  (** A maximal interval [[start_time, end_time)] during which a task
      occupies a constant integer number of processors. *)
  type demand_segment = { start_time : num; end_time : num; procs : int }

  (** Integer-allocation schedule: for each task, its demand profile as
      consecutive segments (Theorem 3 output, before processors are
      named). *)
  type integer_schedule = { instance : instance; demands : demand_segment list array }

  (** One booking of a named processor by a task. *)
  type booking = { task : int; from_time : num; to_time : num }

  (** Fully concrete Gantt chart: per-processor booking lists (sorted by
      time), as built by {!Assignment}. *)
  type gantt = { instance : instance; processors : booking list array }
end
