(** Plain-text instance format, for the CLI and for sharing instances
    between runs.

    {v
    # comments and blank lines are ignored
    procs 4
    task 6 3 4        # volume weight delta
    task 1/2 1 1      # rationals as p/q
    task 5/4 2/3 2
    speedup 1:1 2:3/2 # concave speedup curve of the preceding task
    capacity 2        # allocation bound of the preceding task
    deps 0 1          # the preceding task starts after tasks 0 and 1
    v}

    Volumes and weights are rationals ([p] or [p/q]); [procs] and
    [delta] are integers. A [speedup] line lists [allocation:rate]
    breakpoints (rationals) of a concave piecewise-linear speedup
    curve for the task declared just above it; a [capacity] line
    bounds that task's allocation; a [deps] line lists precedence
    parents (task indices, 0-based in declaration order) that must
    complete before it may run. All are optional and at most one of
    each may follow a task. Unknown parents, self-edges and dependency
    cycles are rejected by {!Spec.validate}. *)

let parse_rat s : (Spec.rat, string) result =
  match String.index_opt s '/' with
  | None -> (
    match int_of_string_opt s with
    | Some n -> Ok (Spec.rat_of_int n)
    | None -> Error (Printf.sprintf "not a number: %S" s))
  | Some i -> (
    let num = String.sub s 0 i and den = String.sub s (i + 1) (String.length s - i - 1) in
    match (int_of_string_opt num, int_of_string_opt den) with
    | Some n, Some d when d > 0 -> Ok (Spec.rat n d)
    | _ -> Error (Printf.sprintf "not a rational: %S" s))

(** Parse one [allocation:rate] breakpoint token. *)
let parse_breakpoint s : (Spec.rat * Spec.rat, string) result =
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "not a breakpoint (expected x:y): %S" s)
  | Some i -> (
    let x = String.sub s 0 i and y = String.sub s (i + 1) (String.length s - i - 1) in
    match (parse_rat x, parse_rat y) with
    | Ok x, Ok y -> Ok (x, y)
    | (Error _ as e), _ | _, (Error _ as e) -> e)

let strip_comment line = match String.index_opt line '#' with None -> line | Some i -> String.sub line 0 i

let tokens line =
  String.split_on_char ' ' (String.trim (strip_comment line)) |> List.filter (fun t -> t <> "")

(** Parse an instance description. *)
let of_string (text : string) : (Spec.t, string) result =
  let lines = String.split_on_char '\n' text in
  let procs = ref None in
  let tasks = ref [] in
  let error = ref None in
  List.iteri
    (fun lineno line ->
      if Option.is_none !error then begin
        let fail msg = error := Some (Printf.sprintf "line %d: %s" (lineno + 1) msg) in
        (* Attach a clause to the task declared most recently. *)
        let with_last_task what f =
          match !tasks with
          | [] -> fail (Printf.sprintf "%s before any task" what)
          | t :: rest -> ( match f t with Ok t' -> tasks := t' :: rest | Error msg -> fail msg)
        in
        match tokens line with
        | [] -> ()
        | [ "procs"; p ] -> (
          match int_of_string_opt p with
          | Some p when p >= 1 -> procs := Some p
          | _ -> fail "procs expects a positive integer")
        | [ "task"; v; w; d ] -> (
          match (parse_rat v, parse_rat w, int_of_string_opt d) with
          | Ok volume, Ok weight, Some delta when delta >= 1 ->
            tasks := Spec.task ~volume ~weight ~delta () :: !tasks
          | Error e, _, _ | _, Error e, _ -> fail e
          | _ -> fail "task expects: volume weight delta (delta a positive integer)")
        | "speedup" :: bps -> (
          if bps = [] then fail "speedup expects breakpoints: x1:y1 x2:y2 ..."
          else
            let rec parse acc = function
              | [] -> Ok (List.rev acc)
              | b :: rest -> (
                match parse_breakpoint b with Ok p -> parse (p :: acc) rest | Error _ as e -> e)
            in
            match parse [] bps with
            | Error e -> fail e
            | Ok pairs ->
              with_last_task "speedup" (fun (t : Spec.task) ->
                  if t.Spec.speedup <> [] then Error "duplicate speedup for task"
                  else Ok { t with Spec.speedup = pairs }))
        | [ "capacity"; c ] -> (
          match int_of_string_opt c with
          | Some c when c >= 1 ->
            with_last_task "capacity" (fun (t : Spec.task) ->
                if t.Spec.capacity <> None then Error "duplicate capacity for task"
                else Ok { t with Spec.capacity = Some c })
          | _ -> fail "capacity expects a positive integer")
        | "deps" :: ds -> (
          if ds = [] then fail "deps expects task indices: j k ..."
          else
            match List.map int_of_string_opt ds with
            | ids when List.for_all Option.is_some ids ->
              with_last_task "deps" (fun (t : Spec.task) ->
                  if t.Spec.deps <> [] then Error "duplicate deps for task"
                  else Ok { t with Spec.deps = List.filter_map Fun.id ids })
            | _ -> fail "deps expects task indices: j k ...")
        | t :: _ -> fail (Printf.sprintf "unknown directive %S" t)
      end)
    lines;
  match (!error, !procs) with
  | Some e, _ -> Error e
  | None, None -> Error "missing 'procs' line"
  | None, Some procs -> (
    let spec = Spec.make ~procs (List.rev !tasks) in
    match Spec.validate spec with Ok () -> Ok spec | Error e -> Error e)

(** Render an instance in the same format. *)
let to_string (s : Spec.t) : string =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (Printf.sprintf "procs %d\n" s.Spec.procs);
  Array.iter
    (fun (t : Spec.task) ->
      let rat = Spec.rat_to_string in
      Buffer.add_string buf (Printf.sprintf "task %s %s %d\n" (rat t.Spec.volume) (rat t.Spec.weight) t.Spec.delta);
      (match t.Spec.speedup with
      | [] -> ()
      | ps ->
        Buffer.add_string buf
          (Printf.sprintf "speedup %s\n"
             (String.concat " " (List.map (fun (x, y) -> rat x ^ ":" ^ rat y) ps))));
      (match t.Spec.capacity with
      | None -> ()
      | Some c -> Buffer.add_string buf (Printf.sprintf "capacity %d\n" c));
      match t.Spec.deps with
      | [] -> ()
      | ds ->
        Buffer.add_string buf
          (Printf.sprintf "deps %s\n" (String.concat " " (List.map string_of_int ds))))
    s.Spec.tasks;
  Buffer.contents buf

(** Read an instance from a file. *)
let load (path : string) : (Spec.t, string) result =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string text
  | exception Sys_error e -> Error e
