(** Column-based fractional schedules (MWCT-CB-F, Definition 2):
    accessors, objectives, and the full validity checker. Allocations
    are stored sparsely per column; these accessors are the sanctioned
    way to read them. *)

module Make (F : Mwct_field.Field.S) : sig
  (** Number of columns (one per task). *)
  val num_columns : Types.Make(F).column_schedule -> int

  (** Left edge of column [j] ([0] for the first column). *)
  val column_start : Types.Make(F).column_schedule -> int -> F.t

  (** Duration [l_j = C_j − C_{j−1}]; zero for simultaneous
      completions. *)
  val column_length : Types.Make(F).column_schedule -> int -> F.t

  (** Sparse [(task, rate)] pairs of column [j], sorted by task
      index. *)
  val column_allocs : Types.Make(F).column_schedule -> int -> (int * F.t) list

  (** [alloc s i j] is [d_{i,j}], the (fractional) processor count of
      task [i] during column [j]; [0] when absent. *)
  val alloc : Types.Make(F).column_schedule -> int -> int -> F.t

  (** Per-task rows: each task's [(column, rate)] incidences in
      increasing column order, computed in one pass over the whole
      schedule. *)
  val task_rows : Types.Make(F).column_schedule -> (int * F.t) list array

  (** Build a sparse schedule from a dense matrix indexed
      [alloc.(task).(column)]; zero entries are dropped (non-zero
      entries, even invalid negative ones, are kept so {!check} can
      flag them). *)
  val of_dense :
    instance:Types.Make(F).instance ->
    order:int array ->
    finish:F.t array ->
    F.t array array ->
    Types.Make(F).column_schedule

  (** Densify to the full [task × column] matrix (tests, debugging). *)
  val dense_alloc : Types.Make(F).column_schedule -> F.t array array

  (** Build sparse columns from per-task piecewise-constant rate
      profiles ([segments.(i)] lists chronological, non-overlapping
      [(t0, t1, rate)] stretches with positive rate), averaging each
      task's rate over each column. [O(n log n + size)]. *)
  val columns_of_segments :
    finish:F.t array -> (F.t * F.t * F.t) list array -> (int * F.t) list array

  (** Column at whose end task [i] completes. Raises
      [Invalid_argument] if [i] is not in the order. *)
  val position : Types.Make(F).column_schedule -> int -> int

  (** Completion time [C_i]. *)
  val completion_time : Types.Make(F).column_schedule -> int -> F.t

  (** All completion times, indexed by task. *)
  val completion_times : Types.Make(F).column_schedule -> F.t array

  (** The paper's objective [Σ w_i C_i]. *)
  val weighted_completion_time : Types.Make(F).column_schedule -> F.t

  (** Unweighted [Σ C_i]. *)
  val sum_completion_time : Types.Make(F).column_schedule -> F.t

  (** Makespan [max C_i]. *)
  val makespan : Types.Make(F).column_schedule -> F.t

  (** Volume actually processed for task [i] (equals [V_i] in a valid
      schedule). *)
  val processed_volume : Types.Make(F).column_schedule -> int -> F.t

  (** All processed volumes, in one pass over the sparse columns. *)
  val processed_volumes : Types.Make(F).column_schedule -> F.t array

  (** Total allocated area (equals [Σ V_i] in a valid schedule). *)
  val total_area : Types.Make(F).column_schedule -> F.t

  (** Busy fraction of the [P × makespan] rectangle, in [[0, 1]]. *)
  val utilization : Types.Make(F).column_schedule -> F.t

  (** Idle processor-time up to the makespan. *)
  val idle_area : Types.Make(F).column_schedule -> F.t

  (** First violated condition of Definition 2, if any. *)
  type violation =
    | Bad_shape of string
    | Not_sorted of int
    | Negative_alloc of int * int
    | Over_delta of int * int
    | Over_capacity of int
    | Late_alloc of int * int
    | Volume_mismatch of int

  val violation_to_string : violation -> string

  (** Full validity check. [~exact:true] uses strict comparisons
      (rational engine); the default tolerates the field's epsilon.
      Also enforces the sparse invariant (strictly increasing task
      indices per column). [O(n + size)]. *)
  val check : ?exact:bool -> Types.Make(F).column_schedule -> (unit, violation) result

  val is_valid : ?exact:bool -> Types.Make(F).column_schedule -> bool

  (** Task indices sorted by target completion time (stable: ties by
      index), the canonical completion order used by WF and friends. *)
  val sorted_order : F.t array -> int array

  (** Compact multi-line rendering (columns + sparse rows). *)
  val to_string : Types.Make(F).column_schedule -> string
end
