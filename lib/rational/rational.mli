(** Exact rational numbers over {!Mwct_bigint.Bigint}.

    Values are kept in canonical form: the denominator is positive and
    coprime with the numerator; zero is [0/1]. This module is the exact
    engine of the library — the reproduction of the paper's Sage checks
    (Conjecture 13) and the exact simplex both run on it. *)

open Mwct_bigint

type t

val zero : t
val one : t

(** [make num den] is the normalized fraction. Raises
    [Division_by_zero] when [den] is zero. *)
val make : Bigint.t -> Bigint.t -> t

val of_int : int -> t

(** [of_q num den] is [num/den] for OCaml ints. *)
val of_q : int -> int -> t

val of_bigint : Bigint.t -> t

(** Canonical numerator (sign-carrying). *)
val num : t -> Bigint.t

(** Canonical denominator (always positive). *)
val den : t -> Bigint.t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** Raises [Division_by_zero] on a zero divisor. *)
val div : t -> t -> t

val neg : t -> t
val abs : t -> t
val inv : t -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val min : t -> t -> t
val max : t -> t -> t
val is_integer : t -> bool

(** [is_small t] reports whether the value is held in the inlined
    native-int representation (numerator magnitude and denominator both
    below [2^30]) rather than as a pair of [Bigint]s. Diagnostic only:
    the representation is canonical, so it carries no semantic
    information beyond the size of the value. *)
val is_small : t -> bool

(** Largest integer [<= t] (floor), as a [Bigint]. *)
val floor : t -> Bigint.t

(** Smallest integer [>= t] (ceiling), as a [Bigint]. *)
val ceil : t -> Bigint.t

val to_float : t -> float

(** [of_float f] is the {e exact} rational value of the double [f]
    (every finite double is a dyadic rational). Raises
    [Invalid_argument] on NaN/infinity. *)
val of_float : float -> t

(** Renders ["p/q"] (or just ["p"] when integral). *)
val to_string : t -> string

(** Parses ["p"], ["-p"], or ["p/q"]. *)
val of_string : string -> t

val pp : Format.formatter -> t -> unit
val hash : t -> int

(** The {!Mwct_field.Field.S} instance. [leq_approx]/[equal_approx] are
    the exact comparisons. *)
module Rat_field : Mwct_field.Field.S with type t = t
