open Mwct_bigint

(* Two-representation rationals. The overwhelming majority of values
   flowing through the exact engine are tiny (task volumes like 7/64,
   schedule times in the hundreds): for those we keep numerator and
   denominator in native ints and never touch the Bigint allocator.

   Representation contract (the "small-rational overflow contract",
   DESIGN.md §6):

   - [S { n; d }] requires [d > 0], [gcd n d = 1], [abs n < small_bound]
     and [d < small_bound] with [small_bound = 2^30].
   - [B { num; den }] is the canonical Bigint form (den > 0, coprime)
     and is used {e only} when the value does not satisfy the [S]
     bounds.

   Because the representation of a value is unique, [equal], [compare]
   and [hash] can be implemented structurally per constructor, and the
   bound [2^30] guarantees that every intermediate product of two
   in-range components stays below [2^60] and every sum of two such
   products below [2^61] — comfortably inside OCaml's 63-bit native
   ints, so the small path needs no overflow detection at all. *)

type t =
  | S of { n : int; d : int }
  | B of { num : Bigint.t; den : Bigint.t }

let small_bound = 1 lsl 30

(* Plain Euclid on non-negative ints. *)
let rec igcd a b = if b = 0 then a else igcd b (a mod b)

(* Demote a canonical Bigint pair to [S] when it fits the bounds. *)
let of_big_canonical num den =
  match (Bigint.to_int num, Bigint.to_int den) with
  | Some n, Some d when Stdlib.abs n < small_bound && d < small_bound -> S { n; d }
  | _ -> B { num; den }

(* Canonicalize an arbitrary Bigint pair (den <> 0). *)
let make_big num den =
  if Bigint.is_zero den then raise Division_by_zero;
  if Bigint.is_zero num then S { n = 0; d = 1 }
  else begin
    let num, den = if Bigint.sign den < 0 then (Bigint.neg num, Bigint.neg den) else (num, den) in
    let g = Bigint.gcd num den in
    let num, den =
      if Bigint.equal g Bigint.one then (num, den) else (Bigint.div num g, Bigint.div den g)
    in
    of_big_canonical num den
  end

(* Canonicalize a native-int pair (den <> 0). Safe for any ints except
   [min_int] components, which are routed through the Bigint path
   (negating them would overflow). *)
let make_small n d =
  if d = 0 then raise Division_by_zero
  else if n = 0 then S { n = 0; d = 1 }
  else if n = Stdlib.min_int || d = Stdlib.min_int then
    make_big (Bigint.of_int n) (Bigint.of_int d)
  else begin
    let n, d = if d < 0 then (-n, -d) else (n, d) in
    let g = igcd (Stdlib.abs n) d in
    let n = n / g and d = d / g in
    if Stdlib.abs n < small_bound && d < small_bound then S { n; d }
    else B { num = Bigint.of_int n; den = Bigint.of_int d }
  end

let make num den = make_big num den

let zero = S { n = 0; d = 1 }
let one = S { n = 1; d = 1 }
let of_bigint n = make_big n Bigint.one

let of_int n =
  if Stdlib.abs n < small_bound then S { n; d = 1 } else B { num = Bigint.of_int n; den = Bigint.one }

let of_q n d = make_small n d
let num = function S { n; _ } -> Bigint.of_int n | B { num; _ } -> num
let den = function S { d; _ } -> Bigint.of_int d | B { den; _ } -> den

let add a b =
  match (a, b) with
  | S a, S b -> make_small ((a.n * b.d) + (b.n * a.d)) (a.d * b.d)
  | _ ->
    let an = num a and ad = den a and bn = num b and bd = den b in
    make_big (Bigint.add (Bigint.mul an bd) (Bigint.mul bn ad)) (Bigint.mul ad bd)

let sub a b =
  match (a, b) with
  | S a, S b -> make_small ((a.n * b.d) - (b.n * a.d)) (a.d * b.d)
  | _ ->
    let an = num a and ad = den a and bn = num b and bd = den b in
    make_big (Bigint.sub (Bigint.mul an bd) (Bigint.mul bn ad)) (Bigint.mul ad bd)

let mul a b =
  match (a, b) with
  | S a, S b ->
    (* Cross-reduce first so the products are already coprime. *)
    let g1 = igcd (Stdlib.abs a.n) b.d and g2 = igcd (Stdlib.abs b.n) a.d in
    let n = a.n / g1 * (b.n / g2) and d = a.d / g2 * (b.d / g1) in
    if Stdlib.abs n < small_bound && d < small_bound then S { n; d }
    else B { num = Bigint.of_int n; den = Bigint.of_int d }
  | _ -> make_big (Bigint.mul (num a) (num b)) (Bigint.mul (den a) (den b))

let div a b =
  match (a, b) with
  | S _, S b0 when b0.n = 0 -> raise Division_by_zero
  | S a, S b -> mul (S a) (make_small b.d b.n)
  | _ ->
    let bn = num b in
    if Bigint.is_zero bn then raise Division_by_zero;
    make_big (Bigint.mul (num a) (den b)) (Bigint.mul (den a) bn)

let neg = function
  | S { n; d } -> S { n = -n; d }
  | B { num; den } -> B { num = Bigint.neg num; den }

let abs = function
  | S { n; d } -> S { n = Stdlib.abs n; d }
  | B { num; den } -> B { num = Bigint.abs num; den }

let inv = function
  | S { n = 0; _ } -> raise Division_by_zero
  | S { n; d } -> if n > 0 then S { n = d; d = n } else S { n = -d; d = -n }
  | B { num; den } ->
    if Bigint.is_zero num then raise Division_by_zero;
    if Bigint.sign num < 0 then of_big_canonical (Bigint.neg den) (Bigint.neg num)
    else of_big_canonical den num

let compare a b =
  match (a, b) with
  | S a, S b -> Stdlib.compare (a.n * b.d) (b.n * a.d)
  | _ -> Bigint.compare (Bigint.mul (num a) (den b)) (Bigint.mul (num b) (den a))

let equal a b =
  match (a, b) with
  | S a, S b -> a.n = b.n && a.d = b.d
  | B a, B b -> Bigint.equal a.num b.num && Bigint.equal a.den b.den
  | _ -> false (* representations are canonical: mixed means distinct values *)

let sign = function S { n; _ } -> Stdlib.compare n 0 | B { num; _ } -> Bigint.sign num
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b
let is_integer = function S { d; _ } -> d = 1 | B { den; _ } -> Bigint.equal den Bigint.one
let is_small = function S _ -> true | B _ -> false

let floor = function
  | S { n; d } ->
    Bigint.of_int (if n >= 0 then n / d else -((-n + d - 1) / d))
  | B { num; den } ->
    let q, r = Bigint.divmod num den in
    if Bigint.sign r < 0 then Bigint.sub q Bigint.one else q

let ceil = function
  | S { n; d } ->
    Bigint.of_int (if n >= 0 then (n + d - 1) / d else -(-n / d))
  | B { num; den } ->
    let q, r = Bigint.divmod num den in
    if Bigint.sign r > 0 then Bigint.add q Bigint.one else q

let to_float = function
  | S { n; d } -> float_of_int n /. float_of_int d
  | B { num; den } ->
    (* Scale so both parts fit comfortably in doubles before dividing. *)
    let nb = Nat.num_bits (Bigint.mag num) and db = Nat.num_bits (Bigint.mag den) in
    let extra = Stdlib.max 0 (Stdlib.max nb db - 900) in
    if extra = 0 then Bigint.to_float num /. Bigint.to_float den
    else begin
      let scale_down b = Bigint.make ~sign:(Bigint.sign b) (Nat.shift_right (Bigint.mag b) extra) in
      Bigint.to_float (scale_down num) /. Bigint.to_float (scale_down den)
    end

let to_string a =
  match a with
  | S { n; d } -> if d = 1 then string_of_int n else string_of_int n ^ "/" ^ string_of_int d
  | B { num; den } ->
    if is_integer a then Bigint.to_string num else Bigint.to_string num ^ "/" ^ Bigint.to_string den

let of_float f =
  if Float.is_integer f && Float.abs f < 1e15 then of_bigint (Bigint.of_int (int_of_float f))
  else if not (Float.is_finite f) then invalid_arg "Rational.of_float: not finite"
  else begin
    (* Exact dyadic decomposition: f = m·2^e with m a 53-bit integer. *)
    let m, e = Float.frexp f in
    let mant = Int64.of_float (Float.ldexp m 53) in
    let num = Bigint.of_int (Int64.to_int mant) in
    let exp = e - 53 in
    if exp >= 0 then of_bigint (Bigint.mul num (Bigint.pow (Bigint.of_int 2) exp))
    else make num (Bigint.pow (Bigint.of_int 2) (-exp))
  end

let of_string s =
  match String.index_opt s '/' with
  | None -> of_bigint (Bigint.of_string s)
  | Some i ->
    let n = Bigint.of_string (String.sub s 0 i) in
    let d = Bigint.of_string (String.sub s (i + 1) (String.length s - i - 1)) in
    make n d

(* Fused small-path arithmetic. When every component fits in 20 bits,
   [a - b*c] and [a + b/c] are evaluated as a single native-int
   expression with one canonicalization instead of one per operation —
   the bound keeps every three-factor product below 2^60 and the final
   sum below 2^61, inside the small-representation overflow contract.
   Values are canonical and unique, so the fused result is identical to
   the composed one; anything out of range falls back to composition. *)
let fuse_bound = 1 lsl 20

let fits_fused = function
  | S { n; d } -> Stdlib.abs n < fuse_bound && d < fuse_bound
  | B _ -> false

let sub_mul a b c =
  match (a, b, c) with
  | S a', S b', S c' when fits_fused a && fits_fused b && fits_fused c ->
    make_small ((a'.n * b'.d * c'.d) - (b'.n * c'.n * a'.d)) (a'.d * b'.d * c'.d)
  | _ -> sub a (mul b c)

let add_div a b c =
  if sign c = 0 then raise Division_by_zero;
  match (a, b, c) with
  | S a', S b', S c' when fits_fused a && fits_fused b && fits_fused c ->
    make_small ((a'.n * b'.d * c'.n) + (b'.n * c'.d * a'.d)) (a'.d * b'.d * c'.n)
  | _ -> add a (div b c)

let pp fmt a = Format.pp_print_string fmt (to_string a)

let hash a = (Bigint.hash (num a) * 31) + Bigint.hash (den a)

module Rat_field = struct
  type nonrec t = t

  let witness : t Mwct_field.Field.witness = Mwct_field.Field.Any
  let zero = zero
  let one = one
  let of_int = of_int
  let of_q = of_q
  let add = add
  let sub = sub
  let mul = mul
  let div = div
  let neg = neg
  let abs = abs
  let compare = compare
  let equal = equal
  let sign = sign
  let min = min
  let max = max
  let to_float = to_float
  let to_string = to_string

  (* The canonical "p/q" rendering is already exact, so [repr] reuses
     it; [of_repr] additionally accepts finite decimal literals
     ("1.5" = 3/2), which are exact rationals. *)
  let repr = to_string

  let of_decimal s =
    match String.index_opt s '.' with
    | None -> None
    | Some i ->
      let negative = String.length s > 0 && s.[0] = '-' in
      let start = if negative || (String.length s > 0 && s.[0] = '+') then 1 else 0 in
      let int_part = String.sub s start (i - start) in
      let frac = String.sub s (i + 1) (String.length s - i - 1) in
      let digits t = String.length t > 0 && String.for_all (fun c -> c >= '0' && c <= '9') t in
      if i < start || not (digits int_part) || not (digits frac) then None
      else begin
        let mag = Bigint.of_string (int_part ^ frac) in
        let num = if negative then Bigint.neg mag else mag in
        let den = Bigint.pow (Bigint.of_int 10) (String.length frac) in
        Some (make num den)
      end

  let of_repr s =
    match of_decimal s with
    | Some q -> Some q
    | None -> ( try Some (of_string s) with _ -> None)

  let pp = pp
  let leq_approx a b = compare a b <= 0
  let equal_approx = equal
  let sub_mul = sub_mul
  let add_div = add_div
end
