(* Fault injection for Schedule.check: start from a valid hand-built
   schedule, corrupt it in each violation class, and assert the checker
   reports the *matching* structured violation — not just "invalid".
   This pins the diagnosis the CLI and the driver report surface to
   users. *)

open Test_support
module EF = Support.EF
module EQ = Support.EQ

(* procs = 2, two tasks with V = 2, w = 1, delta = 2. The canonical
   valid schedule runs task 0 alone on [0,1] at width 2, then task 1
   alone on [1,2] at width 2. *)
let spec = Support.spec ~procs:2 [ ((2, 1), (1, 1), 2); ((2, 1), (1, 1), 2) ]

(* Dense allocation matrix for the valid schedule; each test copies and
   corrupts it. *)
let base_alloc () = [| [| 2.; 0. |]; [| 0.; 2. |] |]

let build ?(order = [| 0; 1 |]) ?(finish = [| 1.; 2. |]) alloc =
  EF.Schedule.of_dense ~instance:(Support.finst spec) ~order ~finish alloc

let violation =
  Alcotest.testable
    (fun fmt v -> Format.pp_print_string fmt (EF.Schedule.violation_to_string v))
    ( = )

let check_result = Alcotest.(result unit violation)

let test_baseline_valid () =
  Alcotest.check check_result "uncorrupted schedule passes" (Ok ()) (EF.Schedule.check (build (base_alloc ())))

let test_negative_alloc () =
  let alloc = base_alloc () in
  alloc.(0).(0) <- -1.;
  Alcotest.check check_result "negative rate flagged"
    (Error (EF.Schedule.Negative_alloc (0, 0)))
    (EF.Schedule.check (build alloc))

let test_over_delta () =
  let alloc = base_alloc () in
  alloc.(0).(0) <- 3.;
  Alcotest.check check_result "rate above delta flagged"
    (Error (EF.Schedule.Over_delta (0, 0)))
    (EF.Schedule.check (build alloc))

let test_over_capacity () =
  (* both entries legal on their own (<= delta), but the column sums to
     2.5 > P = 2 *)
  let alloc = [| [| 1.5; 0.5 |]; [| 1.; 1.5 |] |] in
  Alcotest.check check_result "over-capacity column flagged"
    (Error (EF.Schedule.Over_capacity 0))
    (EF.Schedule.check (build alloc))

let test_late_alloc () =
  (* task 0 completes in column 0 but still holds processors in
     column 1 *)
  let alloc = base_alloc () in
  alloc.(0).(1) <- 1.;
  Alcotest.check check_result "allocation after completion flagged"
    (Error (EF.Schedule.Late_alloc (0, 1)))
    (EF.Schedule.check (build alloc))

let test_not_sorted () =
  (* second finish time precedes the first: column 1 ends before it
     starts *)
  Alcotest.check check_result "non-monotone finish times flagged"
    (Error (EF.Schedule.Not_sorted 1))
    (EF.Schedule.check (build ~finish:[| 1.; 0.5 |] (base_alloc ())))

let test_volume_mismatch () =
  let alloc = base_alloc () in
  alloc.(0).(0) <- 1.;
  Alcotest.check check_result "underdelivered volume flagged"
    (Error (EF.Schedule.Volume_mismatch 0))
    (EF.Schedule.check (build alloc))

let test_bad_shape () =
  Alcotest.check check_result "non-permutation order flagged"
    (Error (EF.Schedule.Bad_shape "order not a permutation"))
    (EF.Schedule.check (build ~order:[| 0; 0 |] (base_alloc ())))

let test_exact_strictness () =
  (* A volume short by 1/10^6: the exact checker must flag it — no
     approximate comparison can wave it through. *)
  let module Q = Support.Q in
  let inst = Support.qinst spec in
  let two = Q.of_int 2 in
  let short = Q.sub two (Q.of_q 1 1_000_000) in
  let alloc = [| [| short; Q.zero |]; [| Q.zero; two |] |] in
  let s =
    EQ.Schedule.of_dense ~instance:inst ~order:[| 0; 1 |] ~finish:[| Q.of_int 1; two |] alloc
  in
  Alcotest.(check bool) "exact check rejects a ppm-short volume" true
    (match EQ.Schedule.check ~exact:true s with
    | Error (EQ.Schedule.Volume_mismatch 0) -> true
    | _ -> false)

let test_violation_strings () =
  (* the rendered diagnosis names the offending task and column *)
  let msg v = EF.Schedule.violation_to_string v in
  Alcotest.(check string) "negative alloc message" "task 0 has negative allocation in column 1"
    (msg (EF.Schedule.Negative_alloc (0, 1)));
  Alcotest.(check string) "over capacity message" "column 3 exceeds P processors"
    (msg (EF.Schedule.Over_capacity 3))

let () =
  Alcotest.run "diagnostics"
    [
      ( "fault injection",
        [
          Alcotest.test_case "baseline valid" `Quick test_baseline_valid;
          Alcotest.test_case "negative allocation" `Quick test_negative_alloc;
          Alcotest.test_case "over delta" `Quick test_over_delta;
          Alcotest.test_case "over capacity" `Quick test_over_capacity;
          Alcotest.test_case "late allocation" `Quick test_late_alloc;
          Alcotest.test_case "non-monotone finishes" `Quick test_not_sorted;
          Alcotest.test_case "volume mismatch" `Quick test_volume_mismatch;
          Alcotest.test_case "bad shape" `Quick test_bad_shape;
          Alcotest.test_case "exact strictness" `Quick test_exact_strictness;
          Alcotest.test_case "violation rendering" `Quick test_violation_strings;
        ] );
    ]
