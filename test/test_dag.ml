(* Precedence subsystem tests (DESIGN.md §15): the runtime engine's
   dormant -> alive lifecycle (activation at the last parent's
   completion, release re-stamped at activation, cascade cancel), the
   journal round-trip of `deps` fields, zero-edge byte identity with the
   independent-bag engine, and the frontier Dag simulator against
   hand-checkable instances. *)

open Test_support
module Spec_io = Mwct_core.Spec_io
module EF = Support.EF
module SF = Mwct_solver.Solver.Float
module EnF = Mwct_runtime.Engine.Make (Mwct_field.Field.Float_field)
module JF = Mwct_runtime.Journal.Make (Mwct_field.Field.Float_field)
module SimF = Mwct_ncv.Simulator.Make (Mwct_field.Field.Float_field)

let wdeq_policy = SimF.P.engine_policy SimF.P.Wdeq
let resolve name = Option.map SimF.P.engine_policy (SimF.P.of_name name)
let fresh ~capacity = EnF.create ~capacity ~policy:wdeq_policy ()

let ok = function Ok x -> x | Error e -> Alcotest.fail (EnF.error_to_string e)

let submit eng ?(deps = []) ~id ~volume ~weight ~cap () =
  EnF.apply eng (EnF.Submit { id; volume; weight; cap; speedup = None; deps })

let parse text =
  match Spec_io.of_string text with
  | Ok spec -> spec
  | Error e -> Alcotest.failf "spec parse: %s" e

(* ---------- dormant lifecycle ---------- *)

(* Chain 0 -> 1 on 2 processors: task 1 is dormant until t=1 (task 0's
   completion), then runs alone for one unit. Its release is stamped at
   activation, so its weighted flow is 1, not 2. *)
let test_dormant_activation () =
  let eng = fresh ~capacity:2.0 in
  ignore (ok (submit eng ~id:0 ~volume:2.0 ~weight:1.0 ~cap:2.0 ()));
  ignore (ok (submit eng ~deps:[ 0 ] ~id:1 ~volume:1.0 ~weight:1.0 ~cap:1.0 ()));
  Alcotest.(check int) "one alive" 1 (EnF.alive_count eng);
  Alcotest.(check int) "one dormant" 1 (EnF.dormant_count eng);
  Alcotest.(check (option int)) "waiting on one parent" (Some 1) (EnF.waiting_on eng 1);
  Alcotest.(check bool) "dump fingerprints dormant state" true
    (let dump = EnF.dump eng in
     let re = Str.regexp_string "dormant id=1" in
     (try ignore (Str.search_forward re dump 0); true with Not_found -> false));
  let notes = ok (EnF.apply eng (EnF.Advance 1.0)) in
  Alcotest.(check (list (pair int (float 1e-9)))) "parent completes at 1" [ (0, 1.0) ]
    (List.map (fun (n : EnF.notification) -> (n.EnF.id, n.EnF.at)) notes);
  Alcotest.(check int) "child activated" 1 (EnF.alive_count eng);
  Alcotest.(check int) "no dormant left" 0 (EnF.dormant_count eng);
  Alcotest.(check (option int)) "no longer waiting" None (EnF.waiting_on eng 1);
  ignore (ok (EnF.apply eng EnF.Drain));
  Alcotest.(check (float 1e-9)) "completions 0@1, 1@2" 2.0 (List.assoc 1 (EnF.completions eng));
  (* flow(0) = 1 - 0; flow(1) = 2 - 1 (release re-stamped at activation) *)
  Alcotest.(check (float 1e-9)) "weighted flow counts activation release" 2.0
    (EnF.weighted_flow eng)

(* A task whose parent already completed must activate immediately on
   submit (deps on closed ids are satisfied, not unknown). *)
let test_deps_on_completed_parent () =
  let eng = fresh ~capacity:2.0 in
  ignore (ok (submit eng ~id:0 ~volume:1.0 ~weight:1.0 ~cap:2.0 ()));
  ignore (ok (EnF.apply eng EnF.Drain));
  ignore (ok (submit eng ~deps:[ 0 ] ~id:1 ~volume:1.0 ~weight:1.0 ~cap:1.0 ()));
  Alcotest.(check int) "immediately alive" 1 (EnF.alive_count eng);
  Alcotest.(check int) "not dormant" 0 (EnF.dormant_count eng)

let test_bad_deps_rejected () =
  let eng = fresh ~capacity:2.0 in
  (match submit eng ~deps:[ 7 ] ~id:0 ~volume:1.0 ~weight:1.0 ~cap:1.0 () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown parent accepted");
  (match submit eng ~deps:[ 0 ] ~id:0 ~volume:1.0 ~weight:1.0 ~cap:1.0 () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "self-dependency accepted");
  (* cancelled parents are gone: a later dep on them is unknown *)
  ignore (ok (submit eng ~id:1 ~volume:1.0 ~weight:1.0 ~cap:1.0 ()));
  ignore (ok (EnF.apply eng (EnF.Cancel 1)));
  match submit eng ~deps:[ 1 ] ~id:2 ~volume:1.0 ~weight:1.0 ~cap:1.0 () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "dep on cancelled parent accepted"

(* ---------- cascade cancel (pinned semantics) ---------- *)

(* Cancelling a task cancels its dormant dependents transitively: the
   chosen semantics is CASCADE, not reject. [cancel] reports the full
   cascade, requested id first. *)
let test_cancel_cascades () =
  let eng = fresh ~capacity:2.0 in
  ignore (ok (submit eng ~id:0 ~volume:2.0 ~weight:1.0 ~cap:2.0 ()));
  ignore (ok (submit eng ~deps:[ 0 ] ~id:1 ~volume:1.0 ~weight:1.0 ~cap:1.0 ()));
  ignore (ok (submit eng ~deps:[ 1 ] ~id:2 ~volume:1.0 ~weight:1.0 ~cap:1.0 ()));
  (match EnF.cancel eng 0 with
  | Ok ids -> Alcotest.(check (list int)) "cascade, requested id first" [ 0; 1; 2 ] ids
  | Error e -> Alcotest.fail (EnF.error_to_string e));
  Alcotest.(check int) "nothing alive" 0 (EnF.alive_count eng);
  Alcotest.(check int) "nothing dormant" 0 (EnF.dormant_count eng);
  Alcotest.(check int) "three cancelled" 3 (EnF.cancelled_count eng)

let prop_cancel_root_cascades_chain =
  QCheck2.Test.make ~count:60 ~name:"cancelling a chain's root cascades to every dormant dependent"
    QCheck2.Gen.(int_range 2 10)
    (fun n ->
      let eng = fresh ~capacity:2.0 in
      ignore (ok (submit eng ~id:0 ~volume:2.0 ~weight:1.0 ~cap:2.0 ()));
      for i = 1 to n - 1 do
        ignore (ok (submit eng ~deps:[ i - 1 ] ~id:i ~volume:1.0 ~weight:1.0 ~cap:1.0 ()))
      done;
      let ids = match EnF.cancel eng 0 with Ok ids -> ids | Error _ -> [] in
      ids = List.init n (fun i -> i)
      && EnF.alive_count eng = 0
      && EnF.dormant_count eng = 0
      && EnF.cancelled_count eng = n)

(* ---------- journal round-trip with deps ---------- *)

let diamond_stream () =
  let eng = fresh ~capacity:3.0 in
  let entries = ref [ JF.Init { capacity = 3.0; policy = "wdeq" } ] in
  let apply ev =
    match EnF.apply eng ev with
    | Ok notes ->
      entries := JF.Input ev :: !entries;
      List.iter
        (fun (nt : EnF.notification) ->
          entries := JF.Output { id = nt.EnF.id; at = nt.EnF.at } :: !entries)
        notes
    | Error e -> Alcotest.fail (EnF.error_to_string e)
  in
  let sub ?(deps = []) id volume cap =
    apply (EnF.Submit { id; volume; weight = 1.0; cap; speedup = None; deps })
  in
  sub 0 2.0 3.0;
  sub ~deps:[ 0 ] 1 1.0 2.0;
  sub ~deps:[ 0 ] 2 2.0 1.0;
  apply (EnF.Advance 0.5);
  sub ~deps:[ 1; 2 ] 3 1.0 3.0;
  apply (EnF.Advance 2.0);
  apply EnF.Drain;
  (List.mapi (fun i e -> (i, e)) (List.rev !entries), EnF.dump eng)

let test_journal_roundtrip_deps () =
  let entries, dump = diamond_stream () in
  let lines = List.map (fun (seq, e) -> JF.to_line ~seq e) entries in
  Alcotest.(check bool) "some journal line carries a deps field" true
    (List.exists (fun l -> Str.string_match (Str.regexp ".*\"deps\"") l 0) lines);
  let reparsed =
    List.map
      (fun line ->
        match JF.of_line line with
        | Ok se -> se
        | Error msg -> Alcotest.failf "of_line %S: %s" line msg)
      lines
  in
  List.iter2
    (fun line (seq, e) -> Alcotest.(check string) "codec round-trip" line (JF.to_line ~seq e))
    lines reparsed;
  match JF.replay ~resolve reparsed with
  | Error msg -> Alcotest.failf "replay: %s" msg
  | Ok eng -> Alcotest.(check string) "replayed state identical" dump (EnF.dump eng)

(* Replay must also verify through a *dormant* snapshot: cut the stream
   right after the dormant submits and compare dumps there. *)
let test_replay_dormant_prefix () =
  let eng = fresh ~capacity:3.0 in
  let entries = ref [ JF.Init { capacity = 3.0; policy = "wdeq" } ] in
  let apply ev =
    ignore (ok (EnF.apply eng ev));
    entries := JF.Input ev :: !entries
  in
  apply (EnF.Submit { id = 0; volume = 2.0; weight = 1.0; cap = 3.0; speedup = None; deps = [] });
  apply (EnF.Submit { id = 1; volume = 1.0; weight = 2.0; cap = 2.0; speedup = None; deps = [ 0 ] });
  let entries = List.mapi (fun i e -> (i, e)) (List.rev !entries) in
  match JF.replay ~resolve entries with
  | Error msg -> Alcotest.failf "replay: %s" msg
  | Ok replayed ->
    Alcotest.(check string) "dormant snapshot replays byte-identically" (EnF.dump eng)
      (EnF.dump replayed);
    Alcotest.(check int) "dormant survives replay" 1 (EnF.dormant_count replayed)

(* ---------- zero-edge byte identity ---------- *)

(* A stream that never uses deps must leave no trace of the precedence
   machinery: no "deps" field in any journal line, no dormant line in
   the dump (the PR's no-regression contract with the pre-DAG engine). *)
let test_zero_edge_no_trace () =
  let eng = fresh ~capacity:2.0 in
  let lines = ref [] in
  let apply seq ev =
    ignore (ok (EnF.apply eng ev));
    lines := JF.to_line ~seq (JF.Input ev) :: !lines
  in
  apply 0 (EnF.Submit { id = 0; volume = 2.0; weight = 1.0; cap = 2.0; speedup = None; deps = [] });
  apply 1 (EnF.Submit { id = 1; volume = 1.0; weight = 3.0; cap = 1.0; speedup = None; deps = [] });
  apply 2 (EnF.Advance 0.25);
  List.iter
    (fun l ->
      Alcotest.(check bool) "no deps field on zero-edge journal lines" false
        (Str.string_match (Str.regexp ".*\"deps\"") l 0))
    !lines;
  let dump = EnF.dump eng in
  Alcotest.(check bool) "no dormant line in zero-edge dump" false
    (try
       ignore (Str.search_forward (Str.regexp_string "dormant") dump 0);
       true
     with Not_found -> false)

(* ---------- frontier Dag simulator ---------- *)

let chain_spec =
  parse
    {|
procs 3
task 2 1 2
task 1 4 1
deps 0
task 3/2 2 3
deps 1
|}

(* Chain: each task runs alone at min(delta, P); completions are the
   prefix sums 1, 2, 2.5 and the order is forced. *)
let test_dag_chain_schedule () =
  let inst = Support.finst chain_spec in
  let s, _ = EF.Dag.wdeq inst in
  Alcotest.(check (array int)) "forced order" [| 0; 1; 2 |] s.EF.Types.order;
  Alcotest.(check (array (float 1e-9))) "prefix-sum finishes" [| 1.0; 2.0; 2.5 |]
    s.EF.Types.finish

let diamond_spec =
  parse
    {|
procs 4
task 2 3 2
task 3/2 1 2
deps 0
task 1 2 3
deps 0
task 5/2 4 4
deps 1 2
|}

(* The diamond respects precedence and matches the registry solver. *)
let test_dag_diamond_valid () =
  let inst = Support.finst diamond_spec in
  let s, _ = EF.Dag.wdeq inst in
  let c = EF.Schedule.completion_times s in
  Array.iteri
    (fun i (t : EF.Types.task) ->
      Array.iter
        (fun p ->
          Alcotest.(check bool)
            (Printf.sprintf "parent %d before child %d" p i)
            true
            (c.(p) <= c.(i) +. 1e-9))
        t.EF.Types.deps)
    inst.EF.Types.tasks;
  Alcotest.(check (float 1e-9)) "registry solver agrees"
    (EF.Schedule.weighted_completion_time s)
    (SF.objective "wdeq-dag" inst)

(* Zero-edge instances dispatch to the independent-bag code path —
   exact structural equality, not just objective agreement. *)
let prop_zero_edge_identity =
  QCheck2.Test.make ~count:80 ~name:"wdeq-dag = wdeq on zero-edge instances (exact equality)"
    ~print:Support.print_spec
    (Support.gen_spec ~max_n:8 `Uniform)
    (fun spec ->
      let inst = Support.finst spec in
      let d, _ = EF.Dag.wdeq inst in
      let w, _ = EF.Wdeq.wdeq inst in
      d.EF.Types.order = w.EF.Types.order
      && d.EF.Types.finish = w.EF.Types.finish
      && d.EF.Types.columns = w.EF.Types.columns)

(* Remaining-work transitive weighting (ROADMAP PR 9 follow-up): a
   gate's share weight is the work its completion unlocks, not the raw
   weight count of its subtree. On one processor, gate 0 fronts a
   heavy-weight but feather-light descendant (w=4, h=1/8) and gate 1 a
   light-weight mountain (w=1, h=8). Counting weights — the old
   behavior — rates the gates 5 : 2 and completes gate 0 first
   (t = 7/5 vs 7/2); pricing remaining gated work rates them
   1.5 : 9 and completes gate 1 first (t = 7/6 vs 7). Pinned so the
   orderings can never silently swap back. *)
let gated_work_spec =
  parse
    {|
procs 1
task 1 1 1
task 1 1 1
task 1/8 4 1
deps 0
task 8 1 1
deps 1
|}

let test_transitive_remaining_work () =
  let inst = Support.finst gated_work_spec in
  let gw = EF.Instance.gated_work inst in
  Alcotest.(check (float 1e-9)) "gate 0 gates w·h = 1/2" 0.5 gw.(0);
  Alcotest.(check (float 1e-9)) "gate 1 gates w·h = 8" 8.0 gw.(1);
  let s, _ = EF.Dag.wdeq ~transitive:true inst in
  Alcotest.(check int) "heavy-work gate completes first" 1 s.EF.Types.order.(0);
  (* the plain (non-transitive) run still starts with gate 0's side:
     equal own weights tie, and ties resolve nothing here — but the
     weight-count variant's preference is what the gated-work numbers
     above overturn *)
  let gw_unit = EF.Instance.gated_work ~use_weights:false inst in
  Alcotest.(check (float 1e-9)) "unweighted gated work is height" 0.125 gw_unit.(0);
  Alcotest.(check (float 1e-9)) "unweighted gated work is height" 8.0 gw_unit.(1)

(* Transitive weighting changes shares, never validity: the flagged
   variant must still satisfy the precedence oracle's invariant. *)
let test_transitive_variant_valid () =
  let inst = Support.finst diamond_spec in
  let s, _ = EF.Dag.wdeq ~transitive:true inst in
  let c = EF.Schedule.completion_times s in
  Array.iteri
    (fun i (t : EF.Types.task) ->
      Array.iter
        (fun p -> Alcotest.(check bool) "precedence holds" true (c.(p) <= c.(i) +. 1e-9))
        t.EF.Types.deps)
    inst.EF.Types.tasks

let () =
  let p = QCheck_alcotest.to_alcotest in
  Alcotest.run "dag"
    [
      ( "lifecycle",
        [
          Alcotest.test_case "dormant activation and release re-stamp" `Quick
            test_dormant_activation;
          Alcotest.test_case "deps on completed parent" `Quick test_deps_on_completed_parent;
          Alcotest.test_case "bad deps rejected" `Quick test_bad_deps_rejected;
        ] );
      ( "cancel",
        [
          Alcotest.test_case "cancel cascades through dormant chain" `Quick test_cancel_cascades;
          p prop_cancel_root_cascades_chain;
        ] );
      ( "journal",
        [
          Alcotest.test_case "deps round-trip and replay" `Quick test_journal_roundtrip_deps;
          Alcotest.test_case "dormant prefix replays" `Quick test_replay_dormant_prefix;
          Alcotest.test_case "zero-edge leaves no trace" `Quick test_zero_edge_no_trace;
        ] );
      ( "simulator",
        [
          Alcotest.test_case "chain schedule" `Quick test_dag_chain_schedule;
          Alcotest.test_case "diamond valid + registry agreement" `Quick test_dag_diamond_valid;
          Alcotest.test_case "transitive variant valid" `Quick test_transitive_variant_valid;
          Alcotest.test_case "transitive prices remaining work" `Quick
            test_transitive_remaining_work;
          p prop_zero_edge_identity;
        ] );
    ]
