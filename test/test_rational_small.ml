(* Randomized equivalence tests for the two-representation rationals:
   the native-int fast path must agree with an independent pure-Bigint
   reference on every operation, including at the 2^30 representation
   boundary and for components near max_int. *)

module R = Mwct_rational.Rational
module B = Mwct_bigint.Bigint

let bound = 1 lsl 30

(* ---------- independent reference: canonical Bigint pairs ---------- *)

type ref_q = { rnum : B.t; rden : B.t }

let ref_make num den =
  if B.is_zero den then raise Division_by_zero;
  let num, den = if B.sign den < 0 then (B.neg num, B.neg den) else (num, den) in
  if B.is_zero num then { rnum = B.zero; rden = B.one }
  else begin
    let g = B.gcd num den in
    { rnum = B.div num g; rden = B.div den g }
  end

let ref_of_q n d = ref_make (B.of_int n) (B.of_int d)
let ref_add a b = ref_make (B.add (B.mul a.rnum b.rden) (B.mul b.rnum a.rden)) (B.mul a.rden b.rden)
let ref_sub a b = ref_make (B.sub (B.mul a.rnum b.rden) (B.mul b.rnum a.rden)) (B.mul a.rden b.rden)
let ref_mul a b = ref_make (B.mul a.rnum b.rnum) (B.mul a.rden b.rden)

let ref_div a b =
  if B.is_zero b.rnum then raise Division_by_zero;
  ref_make (B.mul a.rnum b.rden) (B.mul a.rden b.rnum)

let ref_compare a b = B.compare (B.mul a.rnum b.rden) (B.mul b.rnum a.rden)
let agrees r q = B.equal (R.num r) q.rnum && B.equal (R.den r) q.rden

(* The S/B split is canonical: small iff both components fit the bound. *)
let representation_canonical r =
  let fits big = match B.to_int big with Some v -> Stdlib.abs v < bound | None -> false in
  R.is_small r = (fits (R.num r) && fits (R.den r))

(* ---------- generators ---------- *)

(* Components spanning the interesting magnitudes: tiny (the fast
   path), the 2^30 representation boundary, and near max_int (where a
   naive fast path would overflow). *)
let gen_component =
  let open QCheck2.Gen in
  oneof
    [
      int_range (-1000) 1000;
      (let* off = int_range (-3) 3 in
       let* sign = oneofl [ 1; -1 ] in
       return (sign * (bound + off)));
      (let* off = int_range 0 5 in
       let* sign = oneofl [ 1; -1 ] in
       return (sign * (max_int - off)));
      int_range (-(1 lsl 45)) (1 lsl 45);
    ]

let gen_rat =
  let open QCheck2.Gen in
  let* n = gen_component in
  let* d = gen_component in
  let d = if d = 0 then 1 else d in
  return (n, d)

let print_pair ((an, ad), (bn, bd)) = Printf.sprintf "%d/%d, %d/%d" an ad bn bd

let binop_test name fast reference =
  QCheck2.Test.make ~name ~count:2000 ~print:print_pair
    QCheck2.Gen.(pair gen_rat gen_rat)
    (fun ((an, ad), (bn, bd)) ->
      let a = R.of_q an ad and b = R.of_q bn bd in
      let ra = ref_of_q an ad and rb = ref_of_q bn bd in
      let r = fast a b in
      agrees r (reference ra rb) && representation_canonical r)

let prop_add = binop_test "add = Bigint reference" R.add ref_add
let prop_sub = binop_test "sub = Bigint reference" R.sub ref_sub
let prop_mul = binop_test "mul = Bigint reference" R.mul ref_mul

let prop_div =
  QCheck2.Test.make ~name:"div = Bigint reference" ~count:2000 ~print:print_pair
    QCheck2.Gen.(pair gen_rat gen_rat)
    (fun ((an, ad), (bn, bd)) ->
      let bn = if bn = 0 then 1 else bn in
      let a = R.of_q an ad and b = R.of_q bn bd in
      let r = R.div a b in
      agrees r (ref_div (ref_of_q an ad) (ref_of_q bn bd)) && representation_canonical r)

let prop_compare =
  QCheck2.Test.make ~name:"compare/equal/sign = Bigint reference" ~count:2000 ~print:print_pair
    QCheck2.Gen.(pair gen_rat gen_rat)
    (fun ((an, ad), (bn, bd)) ->
      let a = R.of_q an ad and b = R.of_q bn bd in
      let ra = ref_of_q an ad and rb = ref_of_q bn bd in
      let c = ref_compare ra rb in
      R.compare a b = c && R.equal a b = (c = 0) && R.sign a = B.sign ra.rnum)

let prop_canonical =
  QCheck2.Test.make ~name:"of_q is canonical (den > 0, coprime, right rep)" ~count:2000
    ~print:(fun (n, d) -> Printf.sprintf "%d/%d" n d)
    gen_rat
    (fun (n, d) ->
      let r = R.of_q n d in
      B.sign (R.den r) > 0
      && B.equal (B.gcd (R.num r) (R.den r)) (if R.sign r = 0 then R.den r else B.one)
      && representation_canonical r)

let prop_floor_ceil =
  QCheck2.Test.make ~name:"floor/ceil bracket the value" ~count:2000
    ~print:(fun (n, d) -> Printf.sprintf "%d/%d" n d)
    gen_rat
    (fun (n, d) ->
      let r = R.of_q n d in
      let fl = R.of_bigint (R.floor r) and cl = R.of_bigint (R.ceil r) in
      R.compare fl r <= 0
      && R.compare r cl <= 0
      && R.compare (R.sub cl fl) R.one <= 0
      && (not (R.is_integer r) || R.equal fl cl))

(* ---------- unit tests at the boundaries ---------- *)

let test_representation_boundary () =
  Alcotest.(check bool) "2^30 - 1 is small" true (R.is_small (R.of_q (bound - 1) 1));
  Alcotest.(check bool) "2^30 is big" false (R.is_small (R.of_q bound 1));
  Alcotest.(check bool) "1/(2^30 - 1) is small" true (R.is_small (R.of_q 1 (bound - 1)));
  Alcotest.(check bool) "1/2^30 is big" false (R.is_small (R.of_q 1 bound));
  Alcotest.(check bool) "-(2^30 - 1) is small" true (R.is_small (R.of_q (-(bound - 1)) 1));
  (* Reduction can bring an over-bound input back to the fast path. *)
  Alcotest.(check bool) "2^31/4 reduces to small" true (R.is_small (R.of_q (bound * 2) 4));
  Alcotest.(check bool) "2^31/2 stays big (reduces to 2^30)" false (R.is_small (R.of_q (bound * 2) 2))

let test_promotion_and_demotion () =
  let top = R.of_q (bound - 1) 1 in
  let sum = R.add top top in
  Alcotest.(check bool) "sum crosses into B" false (R.is_small sum);
  Alcotest.(check string) "sum is exact" "2147483646" (R.to_string sum);
  (* Arithmetic on B values demotes when the result fits again. *)
  Alcotest.(check bool) "B - B demotes" true (R.is_small (R.sub sum top));
  Alcotest.(check bool) "B - B = S value" true (R.equal (R.sub sum top) top);
  let big = R.of_q max_int 2 in
  Alcotest.(check bool) "big - big = 0 (small)" true (R.is_small (R.sub big big));
  Alcotest.(check bool) "big - big = 0" true (R.equal (R.sub big big) R.zero)

let test_mixed_rep_arithmetic () =
  (* S + B, compare across representations, equality never confuses
     distinct values. *)
  let s = R.of_q 1 3 and b = R.of_q max_int 1 in
  let x = R.add s b in
  Alcotest.(check bool) "S + B is big" false (R.is_small x);
  Alcotest.(check bool) "(S + B) - B = S" true (R.equal (R.sub x b) s);
  Alcotest.(check bool) "B > S" true (R.compare b s > 0);
  Alcotest.(check bool) "S <> B" false (R.equal s b);
  Alcotest.(check bool) "boundary compare" true (R.compare (R.of_q bound 1) (R.of_q (bound - 1) 1) > 0)

let test_min_int_components () =
  (* min_int cannot be negated in native ints: these must route through
     the Bigint path and still be exact. *)
  let a = R.of_q min_int 1 in
  Alcotest.(check string) "min_int value" (string_of_int min_int) (R.to_string a);
  let b = R.of_q 1 min_int in
  Alcotest.(check bool) "1/min_int is negative" true (R.sign b < 0);
  Alcotest.(check bool) "min_int * 1/min_int = 1" true (R.equal (R.mul a b) R.one)

let test_division_by_zero () =
  Alcotest.check_raises "div by zero (small)" Division_by_zero (fun () ->
      ignore (R.div R.one R.zero));
  Alcotest.check_raises "of_q zero den" Division_by_zero (fun () -> ignore (R.of_q 1 0));
  Alcotest.check_raises "inv zero" Division_by_zero (fun () -> ignore (R.inv R.zero))

let test_floor_ceil_signs () =
  let check name v expected = Alcotest.(check string) name expected (B.to_string v) in
  check "floor 7/2" (R.floor (R.of_q 7 2)) "3";
  check "ceil 7/2" (R.ceil (R.of_q 7 2)) "4";
  check "floor -7/2" (R.floor (R.of_q (-7) 2)) "-4";
  check "ceil -7/2" (R.ceil (R.of_q (-7) 2)) "-3";
  check "floor big" (R.floor (R.of_q max_int 2)) (string_of_int (max_int / 2));
  check "ceil big" (R.ceil (R.of_q max_int 2)) (string_of_int ((max_int / 2) + 1))

let () =
  let q tests = List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests in
  Alcotest.run "rational_small"
    [
      ( "boundaries",
        [
          Alcotest.test_case "representation boundary" `Quick test_representation_boundary;
          Alcotest.test_case "promotion and demotion" `Quick test_promotion_and_demotion;
          Alcotest.test_case "mixed representations" `Quick test_mixed_rep_arithmetic;
          Alcotest.test_case "min_int components" `Quick test_min_int_components;
          Alcotest.test_case "division by zero" `Quick test_division_by_zero;
          Alcotest.test_case "floor/ceil signs" `Quick test_floor_ceil_signs;
        ] );
      ( "properties",
        q
          [
            prop_add;
            prop_sub;
            prop_mul;
            prop_div;
            prop_compare;
            prop_canonical;
            prop_floor_ceil;
          ] );
    ]
