(* The solver registry and driver (lib/solver): registry integrity,
   equivalence with the direct engine entry points (the registry must
   be a pure re-packaging, bit-identical on the float engine), and
   coherence of the uniform driver report. *)

open Test_support
module EF = Support.EF
module EQ = Support.EQ
module Sv = Mwct_solver.Solver
module SF = Sv.Float
module SQ = Sv.Exact
module DF = Mwct_solver.Driver.Float
module DQ = Mwct_solver.Driver.Exact

(* A small fixed instance exercised by every solver, including the
   enumerative ones (n = 4 is well under the LP guard of 8). *)
let spec =
  Support.spec ~procs:3
    [
      ((3, 1), (2, 1), 2);
      ((1, 2), (1, 1), 1);
      ((5, 4), (1, 3), 3);
      ((2, 1), (3, 2), 2);
    ]

let fi () = Support.finst spec
let qi () = Support.qinst spec

(* ---------- registry integrity ---------- *)

let test_registry_names () =
  let names = Sv.names in
  Alcotest.(check bool) "registry non-empty" true (List.length names >= 9);
  let sorted = List.sort_uniq compare names in
  Alcotest.(check int) "names unique" (List.length names) (List.length sorted);
  List.iter (fun n -> Alcotest.(check bool) ("name non-empty: " ^ n) true (String.length n > 0)) names;
  List.iter
    (fun (i : Sv.info) ->
      Alcotest.(check bool) ("doc non-empty: " ^ i.Sv.name) true (String.length i.Sv.doc > 0))
    Sv.infos;
  (* the field-neutral metadata matches both instantiations *)
  Alcotest.(check (list string)) "float registry names" names SF.names;
  Alcotest.(check (list string)) "exact registry names" names SQ.names

let test_find () =
  List.iter
    (fun name ->
      match SF.find name with
      | Some s -> Alcotest.(check string) "find returns the named solver" name s.SF.info.Sv.name
      | None -> Alcotest.fail ("find lost " ^ name))
    Sv.names;
  Alcotest.(check bool) "find on unknown name" true (SF.find "no-such-solver" = None);
  Alcotest.(check bool) "find_info on unknown name" true (Sv.find_info "no-such-solver" = None);
  Alcotest.check_raises "find_exn raises on unknown name"
    (Invalid_argument
       (Printf.sprintf "Solver.find_exn: unknown solver %S (known: %s)" "no-such-solver"
          (String.concat ", " Sv.names)))
    (fun () -> ignore (SF.find_exn "no-such-solver"))

let test_caps () =
  let caps name = (Option.get (Sv.find_info name)).Sv.caps in
  Alcotest.(check bool) "wdeq is non-clairvoyant" true (List.mem Sv.Non_clairvoyant (caps "wdeq"));
  Alcotest.(check bool) "optimal needs the LP" true (List.mem Sv.Needs_lp (caps "optimal"));
  Alcotest.(check bool) "optimal is enumerative" true (List.mem Sv.Enumerative (caps "optimal"));
  Alcotest.(check bool) "best-greedy is enumerative" true (List.mem Sv.Enumerative (caps "best-greedy"));
  Alcotest.(check bool) "greedy-smith is polynomial" true
    (not (List.mem Sv.Enumerative (caps "greedy-smith")));
  Alcotest.(check string) "caps render" "needs-lp,exact-recommended,enumerative"
    (Sv.caps_to_string (Option.get (Sv.find_info "optimal")))

(* ---------- equivalence with the direct engine calls ---------- *)

(* The registry entries wrap the very same engine functions the callers
   used before the refactor, so on the float engine the objectives must
   be *bit-identical*, not merely close. *)
let test_equivalence_float () =
  let inst = fi () in
  let obj = EF.Schedule.weighted_completion_time in
  Alcotest.(check (float 0.)) "wdeq" (obj (fst (EF.Wdeq.wdeq inst))) (SF.objective "wdeq" inst);
  Alcotest.(check (float 0.)) "deq" (obj (fst (EF.Wdeq.deq inst))) (SF.objective "deq" inst);
  Alcotest.(check (float 0.)) "greedy-smith"
    (obj (EF.Greedy.run inst (EF.Orderings.smith inst)))
    (SF.objective "greedy-smith" inst);
  Alcotest.(check (float 0.)) "greedy"
    (obj (EF.Greedy.run inst (EF.Orderings.identity 4)))
    (SF.objective "greedy" inst);
  Alcotest.(check (float 0.)) "wf-cmax makespan" (EF.Makespan.optimal inst)
    (EF.Schedule.makespan (fst (SF.solve_exn "wf-cmax" inst)));
  let bg, sigma = EF.Lp_schedule.best_greedy inst in
  Alcotest.(check (float 0.)) "best-greedy" bg (SF.objective "best-greedy" inst);
  let s, meta = SF.solve_exn "best-greedy" inst in
  ignore s;
  Alcotest.(check bool) "best-greedy meta carries the order" true (meta.SF.order = Some sigma);
  let lp, _ = EF.Lp_schedule.optimal inst in
  Alcotest.(check (float 0.)) "optimal" lp (SF.objective "optimal" inst)

let test_equivalence_exact () =
  let inst = qi () in
  let module Q = Support.Q in
  let lp, _ = EQ.Lp_schedule.optimal inst in
  Alcotest.(check string) "exact optimal" (Q.to_string lp)
    (Q.to_string (SQ.objective "optimal" inst));
  Alcotest.(check string) "exact wdeq"
    (Q.to_string (EQ.Schedule.weighted_completion_time (fst (EQ.Wdeq.wdeq inst))))
    (Q.to_string (SQ.objective "wdeq" inst))

let test_wdeq_meta () =
  let inst = fi () in
  let _, meta = SF.solve_exn "wdeq" inst in
  let d = Option.get meta.SF.wdeq_diagnostics in
  (* the Lemma-2 split partitions each volume *)
  Array.iteri
    (fun i (t : EF.Types.task) ->
      Support.check_close "full + limited = volume" t.EF.Types.volume
        (d.EF.Wdeq.full_volume.(i) +. d.EF.Wdeq.limited_volume.(i)))
    inst.EF.Types.tasks;
  let _, meta = SF.solve_exn "wf-cmax" inst in
  Alcotest.(check bool) "wf-cmax has no wdeq diagnostics" true (meta.SF.wdeq_diagnostics = None)

(* ---------- driver report coherence ---------- *)

let test_driver_reports () =
  let inst = fi () in
  List.iter
    (fun (s : SF.t) ->
      let name = s.SF.info.Sv.name in
      let r = DF.run s inst in
      Alcotest.(check bool) (name ^ ": schedule valid") true (DF.valid r);
      Alcotest.(check (float 0.)) (name ^ ": objective matches schedule")
        (EF.Schedule.weighted_completion_time r.DF.schedule)
        r.DF.objective;
      Alcotest.(check (float 0.)) (name ^ ": makespan matches schedule")
        (EF.Schedule.makespan r.DF.schedule) r.DF.makespan;
      Alcotest.(check (float 0.)) (name ^ ": lower bound is max(A,H)")
        (Float.max r.DF.squashed_area r.DF.height_bound)
        r.DF.lower_bound;
      (match r.DF.ratio_to_bound with
      | Some ratio ->
        Alcotest.(check bool) (name ^ ": objective at least the lower bound") true (ratio >= 1. -. 1e-9)
      | None -> Alcotest.fail (name ^ ": lower bound unexpectedly zero"));
      Alcotest.(check bool) (name ^ ": elapsed non-negative") true (r.DF.elapsed_s >= 0.))
    SF.all

let test_driver_exact () =
  let inst = qi () in
  let r = DQ.run ~exact:true (SQ.find_exn "wdeq") inst in
  Alcotest.(check bool) "exact strict check passes" true (DQ.valid r);
  let module Q = Support.Q in
  Alcotest.(check string) "exact objective matches schedule"
    (Q.to_string (EQ.Schedule.weighted_completion_time r.DQ.schedule))
    (Q.to_string r.DQ.objective)

let test_json () =
  let inst = fi () in
  let r = DF.run (SF.find_exn "greedy-smith") inst in
  let json = DF.to_json ~engine:"float" r in
  let contains needle =
    let nl = String.length needle and hl = String.length json in
    let rec go i = i + nl <= hl && (String.sub json i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle -> Alcotest.(check bool) ("json contains " ^ needle) true (contains needle))
    [
      "\"algo\": \"greedy-smith\"";
      "\"engine\": \"float\"";
      "\"tasks\": 4";
      "\"valid\": true";
      "\"violation\": null";
      "\"objective\":";
      "\"ratio_to_bound\":";
      "\"completions\": [";
      "\"completions_repr\": [";
    ]

(* The completions array is in task-index order and consistent with the
   schedule's (order, finish) pairing — on both engines. *)
let test_json_completions () =
  let inst = fi () in
  let r = DF.run (SF.find_exn "wdeq") inst in
  let json = DF.to_json ~engine:"float" r in
  let expected =
    let n = Array.length r.DF.schedule.EF.Types.instance.EF.Types.tasks in
    let c = Array.make n 0. in
    Array.iteri (fun j ti -> c.(ti) <- r.DF.schedule.EF.Types.finish.(j)) r.DF.schedule.EF.Types.order;
    Printf.sprintf "\"completions\": [%s]"
      (String.concat ", " (Array.to_list (Array.map (Printf.sprintf "%.12g") c)))
  in
  let contains needle =
    let nl = String.length needle and hl = String.length json in
    let rec go i = i + nl <= hl && (String.sub json i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) ("json contains " ^ expected) true (contains expected);
  (* Exact engine: the _repr completions are exact rationals. *)
  let inst = qi () in
  let r = DQ.run ~exact:true (SQ.find_exn "wdeq") inst in
  let json = DQ.to_json ~engine:"exact" r in
  let expected_repr =
    let module Q = Support.Q in
    let n = Array.length r.DQ.schedule.EQ.Types.instance.EQ.Types.tasks in
    let c = Array.make n Q.zero in
    Array.iteri (fun j ti -> c.(ti) <- r.DQ.schedule.EQ.Types.finish.(j)) r.DQ.schedule.EQ.Types.order;
    Printf.sprintf "\"completions_repr\": [%s]"
      (String.concat ", "
         (Array.to_list (Array.map (fun q -> Printf.sprintf "\"%s\"" (Q.to_string q)) c)))
  in
  let contains needle =
    let nl = String.length needle and hl = String.length json in
    let rec go i = i + nl <= hl && (String.sub json i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) ("json contains " ^ expected_repr) true (contains expected_repr)

let () =
  Alcotest.run "solver"
    [
      ( "registry",
        [
          Alcotest.test_case "names and docs" `Quick test_registry_names;
          Alcotest.test_case "find / find_exn / find_info" `Quick test_find;
          Alcotest.test_case "capability flags" `Quick test_caps;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "float engine bit-identical" `Quick test_equivalence_float;
          Alcotest.test_case "exact engine identical" `Quick test_equivalence_exact;
          Alcotest.test_case "wdeq diagnostics via meta" `Quick test_wdeq_meta;
        ] );
      ( "driver",
        [
          Alcotest.test_case "report coherence, every solver" `Quick test_driver_reports;
          Alcotest.test_case "exact strict report" `Quick test_driver_exact;
          Alcotest.test_case "json report" `Quick test_json;
          Alcotest.test_case "json completions array" `Quick test_json_completions;
        ] );
    ]
