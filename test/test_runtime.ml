(* Tests for the online runtime (lib/runtime): the incremental engine
   against the batch WDEQ simulator on zero-release instances, the
   journal codec, the deterministic-replay invariant on random event
   streams (both fields), and error handling on bad events. *)

open Test_support
module Rng = Mwct_util.Rng

(* Field-generic helpers, instantiated below for both engines. *)
module H (F : Mwct_field.Field.S) = struct
  module En = Mwct_runtime.Engine.Make (F)
  module J = Mwct_runtime.Journal.Make (F)
  module E = Mwct_core.Engine.Make (F)
  module Sim = Mwct_ncv.Simulator.Make (F)

  let wdeq_policy = Sim.P.engine_policy Sim.P.Wdeq

  let fresh ?record_segments ?kinetic (inst : E.Types.instance) =
    En.create ?record_segments ?kinetic ~capacity:inst.E.Types.procs ~policy:wdeq_policy ()

  let ok = function Ok x -> x | Error e -> Alcotest.fail (En.error_to_string e)

  let submit eng inst i =
    let t = inst.E.Types.tasks.(i) in
    En.apply eng
      (En.Submit
         {
           id = i;
           volume = t.E.Types.volume;
           weight = t.E.Types.weight;
           cap = E.Instance.effective_delta inst i;
           speedup = E.Instance.speedup_arrays inst i;
           deps = [];
         })

  (* Submit everything at t=0 and run to completion. *)
  let drain_all inst =
    let eng = fresh inst in
    Array.iteri (fun i _ -> ignore (ok (submit eng inst i))) inst.E.Types.tasks;
    ignore (ok (En.apply eng En.Drain));
    eng

  (* Drive a random event stream (submits interleaved with advances and
     cancels, then a drain), journaling every applied event. Rejected
     events never enter the journal. Returns the entries and the final
     state fingerprint. *)
  let random_stream ?record_segments ?kinetic ~seed (inst : E.Types.instance) =
    let rng = Rng.create seed in
    let eng = fresh ?record_segments ?kinetic inst in
    let entries = ref [ J.Init { capacity = inst.E.Types.procs; policy = "wdeq" } ] in
    let push e = entries := e :: !entries in
    let apply ev =
      match En.apply eng ev with
      | Ok notes ->
        push (J.Input ev);
        List.iter
          (fun (nt : En.notification) -> push (J.Output { id = nt.En.id; at = nt.En.at }))
          notes
      | Error _ -> ()
    in
    let n = Array.length inst.E.Types.tasks in
    Array.iteri
      (fun i _ ->
        if Rng.int_in rng 0 3 = 0 then apply (En.Advance (F.of_q (Rng.int_in rng 0 8) 4));
        if Rng.int_in rng 0 4 = 0 then apply (En.Cancel (Rng.int_in rng 0 (n - 1)));
        apply
          (En.Submit
             {
               id = i;
               volume = inst.E.Types.tasks.(i).E.Types.volume;
               weight = inst.E.Types.tasks.(i).E.Types.weight;
               cap = E.Instance.effective_delta inst i;
               speedup = E.Instance.speedup_arrays inst i;
               deps = [];
             }))
      inst.E.Types.tasks;
    apply En.Drain;
    (List.mapi (fun i e -> (i, e)) (List.rev !entries), En.dump eng)

  let resolve name = Option.map Sim.P.engine_policy (Sim.P.of_name name)

  (* Serialize, reparse, replay; check the codec round-trips and the
     replayed engine reaches the identical state. *)
  let check_roundtrip (entries, dump) =
    let lines = List.map (fun (seq, e) -> J.to_line ~seq e) entries in
    let reparsed =
      List.map
        (fun line ->
          match J.of_line line with
          | Ok se -> se
          | Error msg -> Alcotest.failf "of_line %S: %s" line msg)
        lines
    in
    List.iter2
      (fun line (seq, e) ->
        Alcotest.(check string) "codec round-trip" line (J.to_line ~seq e))
      lines reparsed;
    match J.replay ~resolve reparsed with
    | Error msg -> Alcotest.failf "replay: %s" msg
    | Ok eng -> Alcotest.(check string) "replayed state identical" dump (En.dump eng)

  let journal_lines entries = List.map (fun (seq, e) -> J.to_line ~seq e) entries

  (* Kinetic (incremental WDEQ) engine vs the list-policy engine on the
     same event stream: journal bytes and state fingerprints must be
     identical — the incremental frontier is a pure representation
     change. *)
  let check_kinetic_identity ~seed inst =
    let e1, d1 = random_stream ~seed inst in
    let e2, d2 = random_stream ?kinetic:(Sim.P.engine_kinetic Sim.P.Wdeq) ~seed inst in
    List.iter2
      (fun a b -> Alcotest.(check string) "kinetic journal line" a b)
      (journal_lines e1) (journal_lines e2);
    Alcotest.(check string) "kinetic dump" d1 d2

  (* [record_segments:false] (on the float field: the monomorphic
     advance kernel) against the default generic path: decisions must
     be byte-identical; only the closed-task histories differ. *)
  let check_nosegments_identity ~seed inst =
    let e1, _ = random_stream ~seed inst in
    let e2, _ =
      random_stream ~record_segments:false ?kinetic:(Sim.P.engine_kinetic Sim.P.Wdeq) ~seed inst
    in
    List.iter2
      (fun a b -> Alcotest.(check string) "no-segments journal line" a b)
      (journal_lines e1) (journal_lines e2)
end

module HF = H (Mwct_field.Field.Float_field)
module HQ = H (Mwct_rational.Rational.Rat_field)
module EF = Support.EF
module EQ = Support.EQ

(* ---------- engine vs batch WDEQ ---------- *)

let prop_engine_matches_wdeq_float =
  QCheck2.Test.make ~count:120 ~name:"engine drain = Wdeq.simulate objective (float)"
    ~print:Support.print_spec
    (Support.gen_spec ~max_n:8 `Uniform)
    (fun spec ->
      let inst = Support.finst spec in
      let eng = HF.drain_all inst in
      let batch, _ = EF.Wdeq.wdeq inst in
      let expected = EF.Schedule.weighted_completion_time batch in
      abs_float (expected -. HF.En.weighted_completion eng) <= 1e-9 *. (1. +. abs_float expected))

let prop_engine_matches_wdeq_exact =
  QCheck2.Test.make ~count:40 ~name:"engine drain = Wdeq.simulate objective (exact)"
    ~print:Support.print_spec
    (Support.gen_spec ~max_n:5 `Mixed)
    (fun spec ->
      let inst = Support.qinst spec in
      let eng = HQ.drain_all inst in
      let batch, _ = EQ.Wdeq.wdeq inst in
      Support.Q.equal (EQ.Schedule.weighted_completion_time batch) (HQ.En.weighted_completion eng))

(* Per-task completion times, not just the objective. *)
let test_engine_completions_match () =
  let spec =
    Support.spec ~procs:4 [ ((1, 1), (1, 1), 1); ((6, 1), (1, 1), 4); ((2, 1), (3, 1), 2) ]
  in
  let inst = Support.finst spec in
  let eng = HF.drain_all inst in
  let batch, _ = EF.Wdeq.wdeq inst in
  let by_id = HF.En.completions eng in
  Array.iteri
    (fun j ti ->
      let c = List.assoc ti by_id in
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "task %d completion" ti)
        batch.EF.Types.finish.(j) c)
    batch.EF.Types.order

(* ---------- journal: replay determinism ---------- *)

let prop_replay_roundtrip_float =
  QCheck2.Test.make ~count:100 ~name:"journal replay deterministic (float)"
    ~print:Support.print_spec
    (Support.gen_spec ~max_n:8 `Uniform)
    (fun spec ->
      let inst = Support.finst spec in
      HF.check_roundtrip (HF.random_stream ~seed:(Hashtbl.hash spec) inst);
      true)

let prop_replay_roundtrip_exact =
  QCheck2.Test.make ~count:100 ~name:"journal replay deterministic (exact)"
    ~print:Support.print_spec
    (Support.gen_spec ~max_n:5 `Mixed)
    (fun spec ->
      let inst = Support.qinst spec in
      HQ.check_roundtrip (HQ.random_stream ~seed:(Hashtbl.hash spec) inst);
      true)

(* ---------- cross-engine bit-identity (kinetic / fast path) ---------- *)

let prop_kinetic_identity_float =
  QCheck2.Test.make ~count:80 ~name:"kinetic engine = list engine (float)"
    ~print:Support.print_spec
    (Support.gen_spec ~max_n:8 `Uniform)
    (fun spec ->
      let inst = Support.finst spec in
      HF.check_kinetic_identity ~seed:(Hashtbl.hash spec) inst;
      true)

let prop_kinetic_identity_exact =
  QCheck2.Test.make ~count:40 ~name:"kinetic engine = list engine (exact)"
    ~print:Support.print_spec
    (Support.gen_spec ~max_n:5 `Mixed)
    (fun spec ->
      let inst = Support.qinst spec in
      HQ.check_kinetic_identity ~seed:(Hashtbl.hash spec) inst;
      true)

let prop_nosegments_identity_float =
  QCheck2.Test.make ~count:80 ~name:"no-segments fast path = generic path (float)"
    ~print:Support.print_spec
    (Support.gen_spec ~max_n:8 `Uniform)
    (fun spec ->
      let inst = Support.finst spec in
      HF.check_nosegments_identity ~seed:(Hashtbl.hash spec) inst;
      true)

let prop_nosegments_identity_exact =
  QCheck2.Test.make ~count:30 ~name:"no-segments path = generic path (exact)"
    ~print:Support.print_spec
    (Support.gen_spec ~max_n:5 `Mixed)
    (fun spec ->
      let inst = Support.qinst spec in
      HQ.check_nosegments_identity ~seed:(Hashtbl.hash spec) inst;
      true)

(* ---------- errors ---------- *)

let test_cancel_unknown () =
  let spec = Support.uspec ~procs:2 [ ((1, 1), 1); ((1, 1), 1) ] in
  let inst = Support.finst spec in
  let eng = HF.fresh inst in
  ignore (HF.ok (HF.submit eng inst 0));
  let before = HF.En.dump eng in
  (match HF.En.apply eng (HF.En.Cancel 7) with
  | Error (HF.En.Unknown_task 7) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (HF.En.error_to_string e)
  | Ok _ -> Alcotest.fail "cancel of unknown id succeeded");
  Alcotest.(check string) "state untouched by failed cancel" before (HF.En.dump eng);
  (* Complete task 0, then cancelling it must fail the same way. *)
  ignore (HF.ok (HF.En.apply eng HF.En.Drain));
  let before = HF.En.dump eng in
  (match HF.En.apply eng (HF.En.Cancel 0) with
  | Error (HF.En.Unknown_task 0) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (HF.En.error_to_string e)
  | Ok _ -> Alcotest.fail "cancel of completed id succeeded");
  Alcotest.(check string) "state untouched by failed cancel" before (HF.En.dump eng)

let test_bad_events () =
  let spec = Support.uspec ~procs:2 [ ((1, 1), 1) ] in
  let inst = Support.finst spec in
  let eng = HF.fresh inst in
  ignore (HF.ok (HF.submit eng inst 0));
  (match HF.submit eng inst 0 with
  | Error (HF.En.Duplicate_task 0) -> ()
  | _ -> Alcotest.fail "duplicate submit not rejected");
  (match HF.En.apply eng (HF.En.Advance (-1.0)) with
  | Error (HF.En.Invalid _) -> ()
  | _ -> Alcotest.fail "negative advance not rejected");
  (match
     HF.En.apply eng (HF.En.Submit { id = 5; volume = 0.; weight = 1.; cap = 1.; speedup = None; deps = [] })
   with
  | Error (HF.En.Invalid _) -> ()
  | _ -> Alcotest.fail "zero volume not rejected")

let test_replay_rejects_corruption () =
  let spec = Support.uspec ~procs:2 [ ((1, 1), 1); ((2, 1), 2) ] in
  let inst = Support.finst spec in
  let entries, _ = HF.random_stream ~seed:42 inst in
  (* Drop the init line: replay must refuse. *)
  (match HF.J.replay ~resolve:HF.resolve (List.tl entries) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "replay accepted a journal without init");
  (* Tamper with a completion time: replay must detect the mismatch. *)
  let tampered =
    List.map
      (function
        | seq, HF.J.Output { id; at } -> (seq, HF.J.Output { id; at = at +. 1. })
        | e -> e)
      entries
  in
  match HF.J.replay ~resolve:HF.resolve tampered with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "replay accepted tampered decisions"

let () =
  let p = QCheck_alcotest.to_alcotest in
  Alcotest.run "runtime"
    [
      ( "engine",
        [
          Alcotest.test_case "completions match batch wdeq" `Quick test_engine_completions_match;
          p prop_engine_matches_wdeq_float;
          p prop_engine_matches_wdeq_exact;
        ] );
      ( "journal",
        [
          p prop_replay_roundtrip_float;
          p prop_replay_roundtrip_exact;
          Alcotest.test_case "replay rejects corruption" `Quick test_replay_rejects_corruption;
        ] );
      ( "bit-identity",
        [
          p prop_kinetic_identity_float;
          p prop_kinetic_identity_exact;
          p prop_nosegments_identity_float;
          p prop_nosegments_identity_exact;
        ] );
      ( "errors",
        [
          Alcotest.test_case "cancel unknown/completed" `Quick test_cancel_unknown;
          Alcotest.test_case "bad payloads rejected" `Quick test_bad_events;
        ] );
    ]
