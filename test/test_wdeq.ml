(* Tests for WDEQ (Section III): the share fixpoint, schedule validity,
   the Lemma 2 inequality, and the Theorem 4 two-approximation against
   the exact LP optimum. *)

open Test_support
module EF = Support.EF
module EQ = Support.EQ
module Q = Support.Q

let f = Alcotest.(check (float 1e-9))

(* P=4; T0 (w=1, d=1), T1 (w=1, d=4). Fair share is 2 each; T0 is
   clipped to 1 and T1 gets the surplus: 3. *)
let test_share_clipping () =
  let inst =
    Support.finst
      (Support.spec ~procs:4 [ ((1, 1), (1, 1), 1); ((6, 1), (1, 1), 4) ])
  in
  let s, _ = EF.Wdeq.wdeq inst in
  Alcotest.(check bool) "valid" true (EF.Schedule.is_valid s);
  f "T0 share" 1. (EF.Schedule.alloc s 0 0);
  f "T1 share" 3. (EF.Schedule.alloc s 1 0);
  (* T0 finishes at 1; T1 then runs at its cap 4: remaining 3 units take
     3/4. *)
  f "C0" 1. (EF.Schedule.completion_time s 0);
  f "C1" 1.75 (EF.Schedule.completion_time s 1)

let test_weighted_share () =
  (* P=3, weights 1 and 2, large deltas: shares 1 and 2. *)
  let inst =
    Support.finst (Support.spec ~procs:3 [ ((1, 1), (1, 1), 3); ((2, 1), (2, 1), 3) ]) in
  let s, _ = EF.Wdeq.wdeq inst in
  f "T0 share w-proportional" 1. (EF.Schedule.alloc s 0 0);
  f "T1 share w-proportional" 2. (EF.Schedule.alloc s 1 0);
  (* Both finish exactly at t=1 (simultaneous): two columns, tie. *)
  f "C0" 1. (EF.Schedule.completion_time s 0);
  f "C1" 1. (EF.Schedule.completion_time s 1)

let test_deq_ignores_weights () =
  let spec = Support.spec ~procs:2 [ ((1, 1), (5, 1), 2); ((1, 1), (1, 1), 2) ] in
  let inst = Support.finst spec in
  let s, _ = EF.Wdeq.deq inst in
  (* Equal shares despite unequal weights. *)
  f "T0 share 1" 1. (EF.Schedule.alloc s 0 0);
  f "T1 share 1" 1. (EF.Schedule.alloc s 1 0)

let test_diagnostics_partition () =
  let inst =
    Support.finst (Support.spec ~procs:4 [ ((1, 1), (1, 1), 1); ((6, 1), (1, 1), 4) ]) in
  let _, d = EF.Wdeq.wdeq inst in
  (* Volumes split into full-allocation and limited parts, summing to V. *)
  for i = 0 to 1 do
    f
      (Printf.sprintf "VF + VF-bar = V for task %d" i)
      inst.EF.Types.tasks.(i).EF.Types.volume
      (d.EF.Wdeq.full_volume.(i) +. d.EF.Wdeq.limited_volume.(i))
  done;
  (* T0 runs at its cap from the start: fully "full allocation". *)
  f "T0 all full" 1. d.EF.Wdeq.full_volume.(0);
  (* T1: 3 volume at share 3 (limited), then 3 at cap 4 (full). *)
  f "T1 limited part" 3. d.EF.Wdeq.limited_volume.(1);
  f "T1 full part" 3. d.EF.Wdeq.full_volume.(1)

let test_exact_wdeq () =
  let inst = Support.qinst (Support.spec ~procs:4 [ ((1, 1), (1, 1), 1); ((6, 1), (1, 1), 4) ]) in
  let s, _ = EQ.Wdeq.wdeq inst in
  Alcotest.(check bool) "strictly valid" true (EQ.Schedule.is_valid ~exact:true s);
  Alcotest.(check string) "C1 = 7/4" "7/4" (Q.to_string (EQ.Schedule.completion_time s 1))

(* ---------- properties ---------- *)

let prop_wdeq_valid =
  QCheck2.Test.make ~name:"WDEQ schedules are valid" ~count:300 ~print:Support.print_spec
    (Support.gen_spec `Uniform)
    (fun spec ->
      let inst = Support.finst spec in
      let s, _ = EF.Wdeq.wdeq inst in
      EF.Schedule.is_valid s)

let prop_diagnostics_sum =
  QCheck2.Test.make ~name:"WDEQ diagnostics partition the volume" ~count:300 ~print:Support.print_spec
    (Support.gen_spec `Uniform)
    (fun spec ->
      let inst = Support.finst spec in
      let _, d = EF.Wdeq.wdeq inst in
      Array.for_all
        (fun i ->
          Float.abs
            (d.EF.Wdeq.full_volume.(i) +. d.EF.Wdeq.limited_volume.(i)
            -. inst.EF.Types.tasks.(i).EF.Types.volume)
          < 1e-6)
        (Array.init (Array.length inst.EF.Types.tasks) (fun i -> i)))

let prop_lemma2_bound =
  QCheck2.Test.make ~name:"Lemma 2: TC_WD <= 2(A(VF̄) + H(VF))" ~count:300 ~print:Support.print_spec
    (Support.gen_spec `Uniform)
    (fun spec ->
      let inst = Support.finst spec in
      let s, d = EF.Wdeq.wdeq inst in
      let tc = EF.Schedule.weighted_completion_time s in
      let a = EF.Lower_bounds.squashed_area (EF.Instance.sub_instance inst d.EF.Wdeq.limited_volume) in
      let h = EF.Lower_bounds.height_bound (EF.Instance.sub_instance inst d.EF.Wdeq.full_volume) in
      tc <= (2. *. (a +. h)) +. 1e-6)

let prop_theorem4_two_approx =
  QCheck2.Test.make ~name:"Theorem 4: WDEQ <= 2 OPT (exact, vs LP optimum)" ~count:25
    ~print:Support.print_spec
    (Support.gen_spec ~max_procs:4 ~max_n:4 ~den:16 `Uniform)
    (fun spec ->
      let qi = Support.qinst spec in
      let s, _ = EQ.Wdeq.wdeq qi in
      let wdeq_obj = EQ.Schedule.weighted_completion_time s in
      let opt, _ = EQ.Lp_schedule.optimal qi in
      Q.compare wdeq_obj (Q.mul (Q.of_int 2) opt) <= 0)

let prop_wdeq_above_lower_bounds =
  QCheck2.Test.make ~name:"WDEQ objective dominates the lower bounds" ~count:300
    ~print:Support.print_spec (Support.gen_spec `Uniform)
    (fun spec ->
      let inst = Support.finst spec in
      let s, _ = EF.Wdeq.wdeq inst in
      let tc = EF.Schedule.weighted_completion_time s in
      EF.Lower_bounds.best inst <= tc +. 1e-6)

let prop_deq_equals_wdeq_when_unweighted =
  QCheck2.Test.make ~name:"DEQ = WDEQ on unweighted instances" ~count:200 ~print:Support.print_spec
    (Support.gen_spec `Unweighted)
    (fun spec ->
      let inst = Support.finst spec in
      let s1, _ = EF.Wdeq.wdeq inst in
      let s2, _ = EF.Wdeq.deq inst in
      Float.abs
        (EF.Schedule.weighted_completion_time s1 -. EF.Schedule.weighted_completion_time s2)
      < 1e-6)

(* The adversarial families from lib/check: exact completion-time ties
   (near-tie), fully malleable tasks (delta-full) and non-dyadic
   rationals (tiny-den) exercise the event paths that uniform dyadic
   draws rarely hit. *)
let gen_adversarial =
  QCheck2.Gen.oneof
    [ Support.gen_spec `Near_tie; Support.gen_spec `Delta_full; Support.gen_spec `Tiny_den ]

let prop_wdeq_valid_adversarial =
  QCheck2.Test.make ~name:"WDEQ schedules are valid on the adversarial families" ~count:150
    ~print:Support.print_spec gen_adversarial
    (fun spec ->
      let inst = Support.finst spec in
      let s, _ = EF.Wdeq.wdeq inst in
      EF.Schedule.is_valid s)

let prop_lemma2_exact_near_tie =
  QCheck2.Test.make ~name:"Lemma 2 holds exactly under completion-time ties" ~count:60
    ~print:Support.print_spec (Support.gen_spec `Near_tie)
    (fun spec ->
      let qi = Support.qinst spec in
      let s, d = EQ.Wdeq.wdeq qi in
      let tc = EQ.Schedule.weighted_completion_time s in
      let a = EQ.Lower_bounds.squashed_area (EQ.Instance.sub_instance qi d.EQ.Wdeq.limited_volume) in
      let h = EQ.Lower_bounds.height_bound (EQ.Instance.sub_instance qi d.EQ.Wdeq.full_volume) in
      Q.compare tc (Q.mul (Q.of_int 2) (Q.add a h)) <= 0)

let () =
  let q tests = List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests in
  Alcotest.run "wdeq"
    [
      ( "unit",
        [
          Alcotest.test_case "share clipping" `Quick test_share_clipping;
          Alcotest.test_case "weighted shares" `Quick test_weighted_share;
          Alcotest.test_case "deq ignores weights" `Quick test_deq_ignores_weights;
          Alcotest.test_case "diagnostics partition" `Quick test_diagnostics_partition;
          Alcotest.test_case "exact engine" `Quick test_exact_wdeq;
        ] );
      ( "properties",
        q
          [
            prop_wdeq_valid;
            prop_diagnostics_sum;
            prop_lemma2_bound;
            prop_theorem4_two_approx;
            prop_wdeq_above_lower_bounds;
            prop_deq_equals_wdeq_when_unweighted;
            prop_wdeq_valid_adversarial;
            prop_lemma2_exact_near_tie;
          ] );
    ]
