(* Shared helpers for the core test suites. *)

open Mwct_core
module EF = Engine.Float
module EQ = Engine.Exact
module Rng = Mwct_util.Rng
module Q = Mwct_rational.Rational

let finst spec = EF.Instance.of_spec spec
let qinst spec = EQ.Instance.of_spec spec

(* Hand-rolled spec: volumes/weights given as (num, den) pairs. *)
let spec ~procs tasks =
  Spec.make ~procs
    (List.map (fun ((vn, vd), (wn, wd), d) -> Spec.task ~volume:(Spec.rat vn vd) ~weight:(Spec.rat wn wd) ~delta:d ()) tasks)

(* Unweighted shortcut. *)
let uspec ~procs tasks =
  Spec.make ~procs (List.map (fun ((vn, vd), d) -> Spec.task ~volume:(Spec.rat vn vd) ~delta:d ()) tasks)

module Instances = Mwct_check.Instances

let family_of_kind = function
  | `Uniform -> Instances.Uniform
  | `Unweighted -> Instances.Unweighted
  | `Wide -> Instances.Wide
  | `Unit -> Instances.Unit
  | `Mixed -> Instances.Mixed
  | `Delta_one -> Instances.Delta_one
  | `Delta_full -> Instances.Delta_full
  | `Near_tie -> Instances.Near_tie
  | `Tiny_den -> Instances.Tiny_den
  | `Concave_curves -> Instances.Concave_curves
  | `Capacity_tight -> Instances.Capacity_tight

(* QCheck generators of specs, built structurally from lib/check's
   instance families. Structural generation (rather than drawing a PRNG
   seed and handing it to lib/workload) is what makes shrinking work: a
   failing spec shrinks to a smaller spec of the same shape — tasks
   removed, rationals rounded toward 1, procs/delta lowered — instead
   of jumping to the unrelated instance of a "smaller" seed. *)
let gen_spec ?(max_procs = 8) ?(max_n = 6) ?(den = 64) kind =
  let family = family_of_kind kind in
  QCheck2.Gen.make_primitive
    ~gen:(fun st ->
      let draw lo hi = if hi <= lo then lo else lo + Random.State.int st (hi - lo + 1) in
      Instances.sample draw ~max_procs ~max_n ~den family)
    ~shrink:Instances.shrink

let check_close ?(tol = 1e-6) name expected actual =
  Alcotest.(check (float tol)) name expected actual

(* Render a spec into a qcheck print function. *)
let print_spec = Spec.to_string
