(* Tests for Spec / Instance / Schedule: construction, validation, the
   objective, and the full validity checker (every violation class must
   be detected). *)

open Mwct_core
open Test_support
module EF = Support.EF
module EQ = Support.EQ

let f = Alcotest.(check (float 1e-9))

(* A simple valid 2-task schedule on P=2:
   T0: V=2, d=1; T1: V=2, d=2.
   Column 0 = [0,2]: T0 on 1 proc for [0,2] -> finishes at 2 with V=2.
                     T1 on 1 proc in column 0 (volume 2 processed? no).
   Let's make: column 0 [0,2] -> T0 (alloc 1), T1 alloc 0.5;
   column 1 [2,3] -> T1 alloc 1. T1 total = 0.5*2 + 1*1 = 2. *)
let sample_schedule () =
  let inst =
    EF.Instance.make ~procs:2.
      [
        EF.Instance.task ~volume:2. ~delta:1. ();
        EF.Instance.task ~volume:2. ~delta:2. ();
      ]
  in
  EF.Schedule.of_dense ~instance:inst ~order:[| 0; 1 |] ~finish:[| 2.; 3. |]
    [| [| 1.; 0. |]; [| 0.5; 1. |] |]

(* Swap in a different dense allocation matrix, keeping the shape. *)
let with_alloc (s : EF.Types.column_schedule) alloc =
  EF.Schedule.of_dense ~instance:s.instance ~order:s.order ~finish:s.finish alloc

let test_spec_validation () =
  let ok = Support.spec ~procs:2 [ ((1, 2), (1, 1), 1) ] in
  Alcotest.(check bool) "valid spec" true (Result.is_ok (Spec.validate ok));
  let bad_procs = Spec.make ~procs:0 [] in
  Alcotest.(check bool) "procs 0 rejected" true (Result.is_error (Spec.validate bad_procs));
  let bad_delta = Spec.make ~procs:2 [ Spec.task ~volume:(Spec.rat 1 2) ~delta:0 () ] in
  Alcotest.(check bool) "delta 0 rejected" true (Result.is_error (Spec.validate bad_delta));
  let bad_volume = Spec.make ~procs:2 [ Spec.task ~volume:(Spec.rat 0 2) ~delta:1 () ] in
  Alcotest.(check bool) "volume 0 rejected" true (Result.is_error (Spec.validate bad_volume));
  Alcotest.check_raises "Spec.rat rejects zero denominator"
    (Invalid_argument "Spec.rat: denominator must be positive") (fun () -> ignore (Spec.rat 1 0))

let test_of_spec () =
  let s = Support.spec ~procs:3 [ ((1, 2), (3, 4), 2); ((5, 1), (1, 1), 3) ] in
  let inst = Support.finst s in
  f "procs" 3. inst.EF.Types.procs;
  f "volume 0" 0.5 inst.EF.Types.tasks.(0).EF.Types.volume;
  f "weight 0" 0.75 inst.EF.Types.tasks.(0).EF.Types.weight;
  f "delta 1" 3. inst.EF.Types.tasks.(1).EF.Types.delta;
  (* Exact engine sees the same numbers. *)
  let q = Support.qinst s in
  Alcotest.(check string) "exact volume 0" "1/2" (Support.Q.to_string q.EQ.Types.tasks.(0).EQ.Types.volume)

let test_instance_quantities () =
  let s = Support.spec ~procs:2 [ ((1, 1), (1, 1), 1); ((3, 1), (2, 1), 4) ] in
  let inst = Support.finst s in
  f "total volume" 4. (EF.Instance.total_volume inst);
  f "total weight" 3. (EF.Instance.total_weight inst);
  (* delta 4 > P=2 is clamped by effective_delta *)
  f "effective delta clamps" 2. (EF.Instance.effective_delta inst 1);
  f "height uses effective delta" 1.5 (EF.Instance.height inst 1);
  f "smith ratio" 1.5 (EF.Instance.smith_ratio inst 1)

let test_schedule_accessors () =
  let s = sample_schedule () in
  f "column 0 length" 2. (EF.Schedule.column_length s 0);
  f "column 1 length" 1. (EF.Schedule.column_length s 1);
  f "column 1 start" 2. (EF.Schedule.column_start s 1);
  Alcotest.(check int) "position of T1" 1 (EF.Schedule.position s 1);
  f "completion T0" 2. (EF.Schedule.completion_time s 0);
  f "completion T1" 3. (EF.Schedule.completion_time s 1);
  f "makespan" 3. (EF.Schedule.makespan s);
  f "objective" 5. (EF.Schedule.weighted_completion_time s);
  f "sum completion" 5. (EF.Schedule.sum_completion_time s);
  f "processed volume T1" 2. (EF.Schedule.processed_volume s 1)

let test_utilization_metrics () =
  let s = sample_schedule () in
  (* total area = sum of volumes = 4; P*makespan = 6. *)
  f "total area" 4. (EF.Schedule.total_area s);
  f "utilization" (4. /. 6.) (EF.Schedule.utilization s);
  f "idle area" 2. (EF.Schedule.idle_area s)

let test_schedule_valid () =
  let s = sample_schedule () in
  Alcotest.(check bool) "valid" true (EF.Schedule.is_valid s)

let expect_error name s =
  match EF.Schedule.check s with
  | Ok () -> Alcotest.failf "%s: expected a violation" name
  | Error _ -> ()

let test_schedule_violations () =
  let s = sample_schedule () in
  expect_error "over delta" (with_alloc s [| [| 1.5; 0. |]; [| 0.5; 1. |] |]);
  expect_error "over capacity" (with_alloc s [| [| 1.; 0. |]; [| 1.5; 1. |] |]);
  expect_error "negative alloc" (with_alloc s [| [| 1.; -0.1 |]; [| 0.5; 1. |] |]);
  expect_error "volume mismatch" (with_alloc s [| [| 0.9; 0. |]; [| 0.5; 1. |] |]);
  expect_error "late alloc" (with_alloc s [| [| 1.; 0.5 |]; [| 0.5; 1. |] |]);
  expect_error "unsorted columns" { s with finish = [| 3.; 2. |] };
  expect_error "order not a permutation" { s with order = [| 0; 0 |] };
  (* The sparse well-formedness invariant is enforced too. *)
  expect_error "duplicate task in column"
    { s with EF.Types.columns = [| [ (0, 0.5); (0, 0.5); (1, 0.5) ]; [ (1, 1.) ] |] };
  (* Zero-length column via a tie is fine. *)
  let tie =
    with_alloc { s with EF.Types.finish = [| 2.; 2. |] } [| [| 1.; 0. |]; [| 1.; 0. |] |]
  in
  Alcotest.(check bool) "tie columns valid" true (EF.Schedule.is_valid tie)

let test_violation_strings () =
  let s = with_alloc (sample_schedule ()) [| [| 1.5; 0. |]; [| 0.5; 1. |] |] in
  match EF.Schedule.check s with
  | Error v ->
    let msg = EF.Schedule.violation_to_string v in
    Alcotest.(check bool) "message mentions delta" true
      (String.length msg > 0 && String.split_on_char ' ' msg <> [])
  | Ok () -> Alcotest.fail "expected violation"

let test_sorted_order () =
  let order = EF.Schedule.sorted_order [| 3.; 1.; 2.; 1. |] in
  Alcotest.(check (array int)) "stable sort with tie by index" [| 1; 3; 2; 0 |] order

let test_exact_schedule_check () =
  (* The same sample schedule in exact arithmetic must pass the strict
     checker. *)
  let module Q = Support.Q in
  let inst =
    EQ.Instance.make ~procs:(Q.of_int 2)
      [
        EQ.Instance.task ~volume:(Q.of_int 2) ~delta:(Q.of_int 1) ();
        EQ.Instance.task ~volume:(Q.of_int 2) ~delta:(Q.of_int 2) ();
      ]
  in
  let s =
    EQ.Schedule.of_dense ~instance:inst ~order:[| 0; 1 |]
      ~finish:[| Q.of_int 2; Q.of_int 3 |]
      [| [| Q.of_int 1; Q.zero |]; [| Q.of_q 1 2; Q.of_int 1 |] |]
  in
  Alcotest.(check bool) "exact valid (strict)" true (EQ.Schedule.is_valid ~exact:true s);
  Alcotest.(check string) "exact objective 5" "5" (Q.to_string (EQ.Schedule.weighted_completion_time s))

let () =
  Alcotest.run "schedule"
    [
      ( "spec",
        [
          Alcotest.test_case "validation" `Quick test_spec_validation;
          Alcotest.test_case "of_spec" `Quick test_of_spec;
        ] );
      ("instance", [ Alcotest.test_case "quantities" `Quick test_instance_quantities ]);
      ( "schedule",
        [
          Alcotest.test_case "accessors" `Quick test_schedule_accessors;
          Alcotest.test_case "valid sample" `Quick test_schedule_valid;
          Alcotest.test_case "utilization metrics" `Quick test_utilization_metrics;
          Alcotest.test_case "violations detected" `Quick test_schedule_violations;
          Alcotest.test_case "violation strings" `Quick test_violation_strings;
          Alcotest.test_case "sorted order" `Quick test_sorted_order;
          Alcotest.test_case "exact checker" `Quick test_exact_schedule_check;
        ] );
    ]
