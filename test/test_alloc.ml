(* Allocation budget for the engine's float hot path, and differential
   tests for the incremental (kinetic) WDEQ frontier: a persistent
   [Policy.Incremental] state driven through random add/remove streams
   with engine-style slot reuse must reproduce the one-shot list kernel
   and the core reference fixpoint after every mutation, on both
   fields. *)

module Rng = Mwct_util.Rng
module FF = Mwct_field.Field.Float_field
module QF = Mwct_rational.Rational.Rat_field
module Q = Mwct_rational.Rational

(* ---------- zero-allocation steady-state Advance (float) ---------- *)

module En = Mwct_runtime.Engine.Make (FF)
module PF = Mwct_ncv.Policy.Make (FF)

(* In steady state (no completions, no reshares pending) an [Advance]
   on the float engine with [record_segments:false] must not allocate:
   the sweep runs entirely on the struct-of-arrays columns. The window
   is measured against an identically-shaped empty window so the float
   boxes allocated by [Gc.minor_words] itself cancel out. *)
let steady_engine () =
  let eng =
    En.create ~record_segments:false
      ?kinetic:(PF.engine_kinetic PF.Wdeq)
      ~capacity:64. ~policy:(PF.engine_policy PF.Wdeq) ()
  in
  for i = 0 to 49 do
    match En.submit eng ~id:i ~volume:1e9 ~weight:(float_of_int (1 + (i mod 7))) ~cap:2. () with
    | Ok () -> ()
    | Error e -> Alcotest.fail (En.error_to_string e)
  done;
  eng

let check_advance_budget eng =
  let ev = En.Advance 0.25 in
  let apply () =
    match En.apply eng ev with
    | Ok [] -> ()
    | Ok _ -> Alcotest.fail "unexpected completion (volumes are effectively infinite)"
    | Error e -> Alcotest.fail (En.error_to_string e)
  in
  (* Warm up: the first advance commits the pending reshare. *)
  for _ = 1 to 8 do
    apply ()
  done;
  let iters = 1000 in
  let b0 = Gc.minor_words () in
  for _ = 1 to iters do
    ()
  done;
  let b1 = Gc.minor_words () in
  let w0 = Gc.minor_words () in
  for _ = 1 to iters do
    apply ()
  done;
  let w1 = Gc.minor_words () in
  let delta = w1 -. w0 -. (b1 -. b0) in
  if delta >= float_of_int iters then
    Alcotest.failf "steady-state Advance allocates: %.0f minor words over %d advances" delta iters

let test_advance_zero_alloc () = check_advance_budget (steady_engine ())

(* A forked engine must keep the same budget: the snapshot/fork copy
   rebuilds the SoA columns and the kinetic frontier, so the steady
   state it resumes in is the parent's — no lazy rebuilding, no
   hidden allocation on the Advance path (DESIGN.md §16). *)
let test_forked_advance_zero_alloc () =
  let parent = steady_engine () in
  let forked = En.fork ?kinetic:(PF.engine_kinetic PF.Wdeq) (En.snapshot parent) in
  check_advance_budget forked

(* ---------- incremental frontier vs list kernel vs reference ---------- *)

module DH (F : Mwct_field.Field.S) = struct
  module P = Mwct_ncv.Policy.Make (F)
  module E = Mwct_core.Engine.Make (F)

  (* Drive one persistent [Incremental.state] through [rounds] rounds
     of random adds/removes (slots reused through a free list, exactly
     as the engine does) and check the reshare after every round:
     - [shares_into] output (order and values) = [P.shares] on the same
       views in ascending-id order, bit-for-bit ([F.equal]);
     - the one-shot [shares_incremental] wrapper agrees likewise;
     - values match the core [shares_reference] fixpoint up to [eq]
       (exact on rationals, 1e-9 on floats, as in test_kernels). *)
  let check_stream ~eq ~use_weights ~seed ~rounds =
    let pol = if use_weights then P.Wdeq else P.Deq in
    let st = P.Incremental.create ~use_weights () in
    let rng = Rng.create seed in
    let capacity = F.of_q (1 + Rng.int rng 16) 1 in
    let alive = ref [] (* (slot, view), unordered *)
    and free = ref []
    and used = ref 0
    and next_id = ref 0 in
    let ok = ref true in
    let check () =
      let by_id_views =
        List.sort (fun (_, (a : P.view)) (_, b) -> Stdlib.compare a.P.id b.P.id) !alive
      in
      let views = List.map snd by_id_views in
      let n = List.length views in
      let by_id = Array.of_list (List.map fst by_id_views) in
      (* [share] is slot-indexed (slots can exceed [n] once the free
         list recycles); [order] is position-indexed. *)
      let share = Array.make (Stdlib.max !used 1) F.zero in
      let order = Array.make (Stdlib.max n 1) 0 in
      P.Incremental.shares_into st ~capacity ~n ~by_id ~share ~order;
      let id_of_slot s = (snd (List.find (fun (sl, _) -> sl = s) !alive)).P.id in
      let got = List.init n (fun k -> (id_of_slot order.(k), share.(order.(k)))) in
      let expected = P.shares pol ~capacity views in
      let same_list a b =
        List.length a = List.length b
        && List.for_all2 (fun (i, x) (j, y) -> i = j && F.equal x y) a b
      in
      if not (same_list got expected) then ok := false;
      (match P.shares_incremental pol ~capacity views with
      | Some l -> if not (same_list l expected) then ok := false
      | None -> ok := false);
      let sorted = List.sort (fun (a, _) (b, _) -> Stdlib.compare a b) in
      let reference =
        sorted
          (E.Wdeq.shares_reference ~p:capacity
             (List.map
                (fun (v : P.view) -> (v.P.id, (if use_weights then v.P.weight else F.one), v.P.cap))
                views))
      in
      let got_sorted = sorted got in
      if
        not
          (List.length got_sorted = List.length reference
          && List.for_all2 (fun (i, x) (j, y) -> i = j && eq x y) got_sorted reference)
      then ok := false
    in
    for _ = 1 to rounds do
      for _ = 1 to 1 + Rng.int rng 3 do
        let slot =
          match !free with
          | s :: rest ->
            free := rest;
            s
          | [] ->
            let s = !used in
            incr used;
            s
        in
        let v =
          {
            P.id = !next_id;
            weight = F.of_q (1 + Rng.int rng 10) 2;
            cap = F.of_q (1 + Rng.int rng 24) 4;
          }
        in
        incr next_id;
        P.Incremental.add st ~slot ~id:v.P.id ~weight:v.P.weight ~cap:v.P.cap;
        alive := (slot, v) :: !alive
      done;
      if Rng.int rng 3 = 0 then begin
        match !alive with
        | [] -> ()
        | l ->
          let k = Rng.int rng (List.length l) in
          let slot, _ = List.nth l k in
          P.Incremental.remove st ~slot;
          alive := List.filter (fun (s, _) -> s <> slot) l;
          free := slot :: !free
      end;
      check ()
    done;
    !ok
end

module DF = DH (FF)
module DQ = DH (QF)

let prop_incremental_float =
  QCheck2.Test.make ~count:100 ~name:"incremental WDEQ/DEQ = list kernel = reference (float)"
    ~print:string_of_int
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      DF.check_stream
        ~eq:(fun a b -> Float.abs (a -. b) < 1e-9)
        ~use_weights:(seed mod 2 = 0) ~seed ~rounds:25)

let prop_incremental_exact =
  QCheck2.Test.make ~count:40 ~name:"incremental WDEQ/DEQ = list kernel = reference (exact)"
    ~print:string_of_int
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      DQ.check_stream ~eq:Q.Rat_field.equal ~use_weights:(seed mod 2 = 0) ~seed ~rounds:12)

let () =
  let p = QCheck_alcotest.to_alcotest in
  Alcotest.run "alloc"
    [
      ( "advance-budget",
        [
          Alcotest.test_case "steady-state Advance is allocation-free" `Quick
            test_advance_zero_alloc;
          Alcotest.test_case "forked-engine Advance is allocation-free" `Quick
            test_forked_advance_zero_alloc;
        ] );
      ("incremental-frontier", [ p prop_incremental_float; p prop_incremental_exact ]);
    ]
