(* Cross-engine equivalence for the event-driven kernels (this PR's
   fast paths): the binary-searched WDEQ share computation must agree
   with the seed's List.partition fixpoint — exactly over rationals,
   within float tolerance over floats — and sparse column schedules
   must round-trip through the dense representation unchanged. *)

open Test_support
module EF = Support.EF
module EQ = Support.EQ
module Q = Support.Q
module Rng = Mwct_util.Rng
module SimF = Mwct_ncv.Simulator.Float
module PolF = SimF.P

(* Alive triples (index, weight, effective delta) for a random subset
   of the instance's tasks, selected by the bits of [mask]; task 0 is
   always kept so the list is non-empty. *)
let alive_subset_f (inst : EF.Types.instance) mask =
  List.filteri (fun i _ -> i = 0 || (mask lsr (i land 30)) land 1 = 1)
    (List.mapi (fun i (t : EF.Types.task) -> (i, t.EF.Types.weight, EF.Instance.effective_delta inst i))
       (Array.to_list inst.EF.Types.tasks))

let alive_subset_q (inst : EQ.Types.instance) mask =
  List.filteri (fun i _ -> i = 0 || (mask lsr (i land 30)) land 1 = 1)
    (List.mapi (fun i (t : EQ.Types.task) -> (i, t.EQ.Types.weight, EQ.Instance.effective_delta inst i))
       (Array.to_list inst.EQ.Types.tasks))

let sorted_by_id l = List.sort (fun (a, _) (b, _) -> Stdlib.compare a b) l

let gen_masked = QCheck2.Gen.pair (Support.gen_spec `Uniform) QCheck2.Gen.(int_bound max_int)

(* ---------- fast shares vs the List.partition reference ---------- *)

let prop_shares_float =
  QCheck2.Test.make ~name:"fast shares = reference shares (float)" ~count:500
    ~print:(fun (s, _) -> Support.print_spec s)
    gen_masked
    (fun (spec, mask) ->
      let inst = Support.finst spec in
      let alive = alive_subset_f inst mask in
      let fast = sorted_by_id (EF.Wdeq.shares ~p:inst.EF.Types.procs alive) in
      let slow = sorted_by_id (EF.Wdeq.shares_reference ~p:inst.EF.Types.procs alive) in
      List.length fast = List.length slow
      && List.for_all2
           (fun (i, a) (i', b) -> i = i' && Float.abs (a -. b) < 1e-9)
           fast slow
      && List.fold_left (fun acc (_, a) -> acc +. a) 0. fast <= inst.EF.Types.procs +. 1e-9)

let prop_shares_exact =
  QCheck2.Test.make ~name:"fast shares = reference shares (exact, bit-for-bit)" ~count:300
    ~print:(fun (s, _) -> Support.print_spec s)
    gen_masked
    (fun (spec, mask) ->
      let inst = Support.qinst spec in
      let alive = alive_subset_q inst mask in
      let fast = sorted_by_id (EQ.Wdeq.shares ~p:inst.EQ.Types.procs alive) in
      let slow = sorted_by_id (EQ.Wdeq.shares_reference ~p:inst.EQ.Types.procs alive) in
      List.length fast = List.length slow
      && List.for_all2 (fun (i, a) (i', b) -> i = i' && Q.equal a b) fast slow
      && Q.compare
           (List.fold_left (fun acc (_, a) -> Q.add acc a) Q.zero fast)
           inst.EQ.Types.procs
         <= 0)

(* The non-clairvoyant policy layer mirrors the same kernel: its WDEQ
   shares must match the core reference given identical views. *)
let prop_policy_shares =
  QCheck2.Test.make ~name:"ncv policy WDEQ shares = core reference" ~count:400
    ~print:(fun (s, _) -> Support.print_spec s)
    gen_masked
    (fun (spec, mask) ->
      let inst = Support.finst spec in
      let alive = alive_subset_f inst mask in
      let views = List.map (fun (i, w, d) -> { PolF.id = i; weight = w; cap = d }) alive in
      let pol =
        sorted_by_id (PolF.shares PolF.Wdeq ~capacity:inst.EF.Types.procs views)
      in
      let slow = sorted_by_id (EF.Wdeq.shares_reference ~p:inst.EF.Types.procs alive) in
      List.length pol = List.length slow
      && List.for_all2 (fun (i, a) (i', b) -> i = i' && Float.abs (a -. b) < 1e-9) pol slow)

(* Every non-empty column of a WDEQ run must be exactly the reference
   fixpoint on the tasks still alive in that column — this checks the
   whole event-driven simulate path, event by event, in exact
   arithmetic. *)
let prop_simulate_columns_are_fixpoints =
  QCheck2.Test.make ~name:"WDEQ simulate columns = reference fixpoints (exact)" ~count:100
    ~print:Support.print_spec
    (Support.gen_spec ~max_procs:5 ~max_n:5 `Uniform)
    (fun spec ->
      let inst = Support.qinst spec in
      let s, _ = EQ.Wdeq.wdeq inst in
      let n = Array.length s.EQ.Types.finish in
      let ok = ref true in
      for j = 0 to n - 1 do
        let col = EQ.Schedule.column_allocs s j in
        if col <> [] then begin
          let alive =
            List.filter_map
              (fun i ->
                if EQ.Schedule.position s i >= j then
                  Some (i, inst.EQ.Types.tasks.(i).EQ.Types.weight, EQ.Instance.effective_delta inst i)
                else None)
              (List.init n (fun i -> i))
          in
          let expected =
            List.filter (fun (_, a) -> Q.sign a > 0)
              (sorted_by_id (EQ.Wdeq.shares_reference ~p:inst.EQ.Types.procs alive))
          in
          if
            not
              (List.length col = List.length expected
              && List.for_all2 (fun (i, a) (i', b) -> i = i' && Q.equal a b) col expected)
          then ok := false
        end
      done;
      !ok)

(* ---------- sparse <-> dense round trips ---------- *)

let prop_dense_round_trip_float =
  QCheck2.Test.make ~name:"of_dense (dense_alloc s) = s (greedy, float)" ~count:300
    ~print:(fun (s, _) -> Support.print_spec s)
    QCheck2.Gen.(pair (Support.gen_spec `Uniform) (int_bound 1_000_000))
    (fun (spec, seed) ->
      let inst = Support.finst spec in
      let n = Array.length inst.EF.Types.tasks in
      let sigma = EF.Orderings.random (Rng.create seed) n in
      let s = EF.Greedy.run inst sigma in
      let s' =
        EF.Schedule.of_dense ~instance:s.EF.Types.instance ~order:s.EF.Types.order
          ~finish:s.EF.Types.finish (EF.Schedule.dense_alloc s)
      in
      s'.EF.Types.columns = s.EF.Types.columns
      && EF.Schedule.is_valid s'
      && EF.Schedule.completion_times s' = EF.Schedule.completion_times s
      && EF.Schedule.weighted_completion_time s' = EF.Schedule.weighted_completion_time s)

let prop_dense_round_trip_exact =
  QCheck2.Test.make ~name:"of_dense (dense_alloc s) = s (WDEQ, exact)" ~count:100
    ~print:Support.print_spec
    (Support.gen_spec ~max_procs:5 ~max_n:5 `Uniform)
    (fun spec ->
      let inst = Support.qinst spec in
      let s, _ = EQ.Wdeq.wdeq inst in
      let s' =
        EQ.Schedule.of_dense ~instance:s.EQ.Types.instance ~order:s.EQ.Types.order
          ~finish:s.EQ.Types.finish (EQ.Schedule.dense_alloc s)
      in
      EQ.Schedule.is_valid ~exact:true s'
      && Array.for_all2
           (fun col col' ->
             List.length col = List.length col'
             && List.for_all2 (fun (i, a) (i', a') -> i = i' && Q.equal a a') col col')
           s.EQ.Types.columns s'.EQ.Types.columns
      && Q.equal (EQ.Schedule.weighted_completion_time s') (EQ.Schedule.weighted_completion_time s))

(* task_rows is the transpose of columns. *)
let prop_task_rows_transpose =
  QCheck2.Test.make ~name:"task_rows transposes columns" ~count:200
    ~print:(fun (s, _) -> Support.print_spec s)
    QCheck2.Gen.(pair (Support.gen_spec `Uniform) (int_bound 1_000_000))
    (fun (spec, seed) ->
      let inst = Support.finst spec in
      let n = Array.length inst.EF.Types.tasks in
      let sigma = EF.Orderings.random (Rng.create seed) n in
      let s = EF.Greedy.run inst sigma in
      let rows = EF.Schedule.task_rows s in
      let ok = ref true in
      for i = 0 to n - 1 do
        List.iter (fun (j, a) -> if EF.Schedule.alloc s i j <> a then ok := false) rows.(i)
      done;
      (* Same total number of entries. *)
      let row_entries = Array.fold_left (fun acc r -> acc + List.length r) 0 rows in
      let col_entries = Array.fold_left (fun acc c -> acc + List.length c) 0 s.EF.Types.columns in
      !ok && row_entries = col_entries)

(* ---------- hand-checkable unit case ---------- *)

let test_shares_hand () =
  (* P=4; (w=1, d=1) is clipped to 1, (w=1, d=4) takes the surplus 3. *)
  let p = 4. in
  let alive = [ (0, 1., 1.); (1, 1., 4.) ] in
  let check l =
    match sorted_by_id l with
    | [ (0, a); (1, b) ] ->
      Alcotest.(check (float 1e-9)) "clipped" 1. a;
      Alcotest.(check (float 1e-9)) "surplus" 3. b
    | _ -> Alcotest.fail "wrong ids"
  in
  check (EF.Wdeq.shares ~p alive);
  check (EF.Wdeq.shares_reference ~p alive)

(* A cascading-saturation instance: the fixpoint clips exactly one
   task per round, five rounds deep. This exercises the ncv policy's
   frontier fallback (its round budget is 2) and the core kernel's
   frontier on a non-trivial clipped prefix. *)
let test_cascade () =
  let p = 8. in
  let ws = [| 16.; 8.; 4.; 2.; 1. |] and caps = [| 0.1; 3.; 2.5; 1.5; 5. |] in
  let expected = [ 0.1; 3.; 2.5; 1.5; 0.9 ] in
  let alive = List.init 5 (fun i -> (i, ws.(i), caps.(i))) in
  let check name l =
    List.iteri
      (fun k e ->
        match List.assoc_opt k (sorted_by_id l) with
        | Some a -> Alcotest.(check (float 1e-9)) (Printf.sprintf "%s task %d" name k) e a
        | None -> Alcotest.failf "%s: missing task %d" name k)
      expected
  in
  check "reference" (EF.Wdeq.shares_reference ~p alive);
  check "fast" (EF.Wdeq.shares ~p alive);
  let views = List.map (fun (i, w, d) -> { PolF.id = i; weight = w; cap = d }) alive in
  check "policy (fallback)" (PolF.shares PolF.Wdeq ~capacity:p views)

let () =
  let q tests = List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests in
  Alcotest.run "kernels"
    [
      ( "unit",
        [
          Alcotest.test_case "hand shares" `Quick test_shares_hand;
          Alcotest.test_case "cascading saturation" `Quick test_cascade;
        ] );
      ( "shares",
        q
          [
            prop_shares_float;
            prop_shares_exact;
            prop_policy_shares;
            prop_simulate_columns_are_fixpoints;
          ] );
      ( "sparse",
        q [ prop_dense_round_trip_float; prop_dense_round_trip_exact; prop_task_rows_transpose ] );
    ]
