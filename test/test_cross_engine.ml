(* Systematic float-vs-exact cross-checks: the generators emit dyadic
   instances that both engines represent identically, so every
   algorithm must produce the same numbers up to float tolerance — and
   the same *integers* (counts) exactly. The exact engine serves as its
   own proof; this suite transfers that confidence to the float engine
   used in the large experiments. *)

open Test_support
module EF = Support.EF
module EQ = Support.EQ
module SF = Mwct_solver.Solver.Float
module SQ = Mwct_solver.Solver.Exact
module Q = Support.Q
module Rng = Mwct_util.Rng

let gen = QCheck2.Gen.pair (Support.gen_spec ~max_procs:6 ~max_n:5 ~den:32 `Uniform) (QCheck2.Gen.int_bound 1_000_000)

let close a qb = Float.abs (a -. Q.to_float qb) < 1e-6

let prop_bounds =
  QCheck2.Test.make ~name:"lower bounds agree" ~count:200 ~print:(fun (s, _) -> Support.print_spec s) gen
    (fun (spec, _) ->
      let fi = Support.finst spec and qi = Support.qinst spec in
      close (EF.Lower_bounds.squashed_area fi) (EQ.Lower_bounds.squashed_area qi)
      && close (EF.Lower_bounds.height_bound fi) (EQ.Lower_bounds.height_bound qi))

let prop_wdeq =
  QCheck2.Test.make ~name:"WDEQ objective and diagnostics agree" ~count:150
    ~print:(fun (s, _) -> Support.print_spec s)
    gen
    (fun (spec, _) ->
      let fi = Support.finst spec and qi = Support.qinst spec in
      let sf, df = EF.Wdeq.wdeq fi in
      let sq, dq = EQ.Wdeq.wdeq qi in
      close (EF.Schedule.weighted_completion_time sf) (EQ.Schedule.weighted_completion_time sq)
      && Array.for_all2 close df.EF.Wdeq.full_volume dq.EQ.Wdeq.full_volume
      && Array.for_all2 close df.EF.Wdeq.limited_volume dq.EQ.Wdeq.limited_volume)

let prop_wf_counts =
  QCheck2.Test.make ~name:"WF allocation-change counts agree exactly" ~count:150
    ~print:(fun (s, _) -> Support.print_spec s)
    gen
    (fun (spec, seed) ->
      let fi = Support.finst spec and qi = Support.qinst spec in
      let n = Array.length fi.EF.Types.tasks in
      let sigma = EF.Orderings.random (Rng.create seed) n in
      let sf = EF.Water_filling.normalize (EF.Greedy.run fi sigma) in
      let sq = EQ.Water_filling.normalize (EQ.Greedy.run qi sigma) in
      EF.Preemption.total_changes sf = EQ.Preemption.total_changes sq
      && EF.Preemption.availability_changes sf = EQ.Preemption.availability_changes sq)

let prop_preemptions =
  (* Preemption counts need not agree exactly: two wrap boundaries that
     coincide in exact arithmetic can be an epsilon apart in floats,
     splitting one assignment event into two and shifting the count.
     The drift is real — the check-layer generators produce instances
     where the exact wrap has 0 preemptions and the float wrap n + 1
     (each ulp-broken completion tie costs O(1)) — so the closeness
     tolerance is 2n + 2, measured generously above the worst drift
     seen in a 200k-instance sweep (n + 4). Theorem 10's 3n bound must
     still hold on both engines for these offline (greedy) schedules. *)
  QCheck2.Test.make ~name:"integerized preemption counts close, both within 3n" ~count:80
    ~print:(fun (s, _) -> Support.print_spec s)
    gen
    (fun (spec, seed) ->
      let fi = Support.finst spec and qi = Support.qinst spec in
      let n = Array.length fi.EF.Types.tasks in
      let sigma = EF.Orderings.random (Rng.create seed) n in
      let sf = EF.Water_filling.normalize (EF.Greedy.run fi sigma) in
      let sq = EQ.Water_filling.normalize (EQ.Greedy.run qi sigma) in
      let isf, _ = EF.Integerize.of_columns sf in
      let isq, _ = EQ.Integerize.of_columns sq in
      let pf = EF.Assignment.preemptions (EF.Assignment.assign isf) in
      let pq = EQ.Assignment.preemptions (EQ.Assignment.assign isq) in
      pf <= 3 * n && pq <= 3 * n && abs (pf - pq) <= (2 * n) + 2)

let prop_makespan_and_lateness =
  QCheck2.Test.make ~name:"makespan and lateness feasibility agree" ~count:150
    ~print:(fun (s, _) -> Support.print_spec s)
    gen
    (fun (spec, seed) ->
      let fi = Support.finst spec and qi = Support.qinst spec in
      let n = Array.length fi.EF.Types.tasks in
      let rng = Rng.create seed in
      let due_i = Array.init n (fun _ -> Rng.dyadic rng ~den:16) in
      let due_f = Array.map (fun k -> float_of_int k /. 16.) due_i in
      let due_q = Array.map (fun k -> Q.of_q k 16) due_i in
      close (EF.Makespan.optimal fi) (EQ.Makespan.optimal qi)
      && (* same feasibility verdict at a dyadic lateness probe *)
      EF.Lateness.feasible fi due_f 0.5 = EQ.Lateness.feasible qi due_q (Q.of_q 1 2))

let prop_release_dates =
  QCheck2.Test.make ~name:"release-dates makespan agrees" ~count:60
    ~print:(fun (s, _) -> Support.print_spec s)
    QCheck2.Gen.(pair (Support.gen_spec ~max_procs:4 ~max_n:4 ~den:16 `Uniform) (int_bound 1_000_000))
    (fun (spec, seed) ->
      let fi = Support.finst spec and qi = Support.qinst spec in
      let n = Array.length fi.EF.Types.tasks in
      let rng = Rng.create seed in
      let rel_i = Array.init n (fun _ -> Rng.dyadic rng ~den:8) in
      let rel_f = Array.map (fun k -> float_of_int k /. 8.) rel_i in
      let rel_q = Array.map (fun k -> Q.of_q k 8) rel_i in
      close (EF.Release_dates.optimal_makespan fi rel_f) (EQ.Release_dates.optimal_makespan qi rel_q))

let prop_moldable =
  QCheck2.Test.make ~name:"moldable schedules agree" ~count:80
    ~print:(fun (s, _) -> Support.print_spec s)
    gen
    (fun (spec, seed) ->
      let fi = Support.finst spec and qi = Support.qinst spec in
      let n = Array.length fi.EF.Types.tasks in
      let rng = Rng.create seed in
      let widths =
        Array.init n (fun i -> 1 + Rng.int rng (int_of_float (EF.Instance.effective_delta fi i)))
      in
      let order = EF.Orderings.random rng n in
      let pf = EF.Moldable.schedule fi ~widths ~order in
      let pq = EQ.Moldable.schedule qi ~widths ~order in
      close (EF.Moldable.objective fi pf) (EQ.Moldable.objective qi pq))

let prop_registry =
  (* Quantified over the *registry*, not a hand-kept list: any solver
     registered in lib/solver is automatically cross-checked between
     engines. Small instances because the registry includes the
     enumerative solvers (optimal, best-greedy). *)
  QCheck2.Test.make ~name:"every registered solver agrees across engines" ~count:30
    ~print:Support.print_spec
    (Support.gen_spec ~max_procs:4 ~max_n:4 ~den:16 `Uniform)
    (fun spec ->
      let fi = Support.finst spec and qi = Support.qinst spec in
      List.for_all2
        (fun (sf : SF.t) (sq : SQ.t) ->
          let name_ok = sf.SF.info.Mwct_solver.Solver.name = sq.SQ.info.Mwct_solver.Solver.name in
          let f, _ = sf.SF.solve fi in
          let q, _ = sq.SQ.solve qi in
          name_ok
          && EF.Schedule.is_valid f
          && EQ.Schedule.is_valid ~exact:true q
          && close (EF.Schedule.weighted_completion_time f) (EQ.Schedule.weighted_completion_time q)
          && close (EF.Schedule.makespan f) (EQ.Schedule.makespan q))
        SF.all SQ.all)

let () =
  let q tests = List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests in
  Alcotest.run "cross_engine"
    [
      ( "float = exact",
        q
          [
            prop_bounds;
            prop_wdeq;
            prop_wf_counts;
            prop_preemptions;
            prop_makespan_and_lateness;
            prop_release_dates;
            prop_moldable;
          ] );
      ("solver registry", q [ prop_registry ]);
    ]
