(* Stress tests: the core algorithms at sizes far beyond the property
   tests (hundreds of tasks), checking validity, bounds and the
   preemption theorems at scale. Marked `Slow but still seconds. *)

open Test_support
module EF = Support.EF
module SF = Mwct_solver.Solver.Float
module DF = Mwct_solver.Driver.Float
module G = Mwct_workload.Generator
module Rng = Mwct_util.Rng
module Instances = Mwct_check.Instances

let big_instance ~n ~procs seed =
  let rng = Rng.create seed in
  let draw lo hi = Rng.int_in rng lo hi in
  Support.finst (Instances.sample_sized draw ~procs ~n Instances.Uniform)

let test_greedy_wf_at_scale () =
  let n = 200 and procs = 32 in
  let inst = big_instance ~n ~procs 1 in
  let sigma = EF.Orderings.smith inst in
  let g = EF.Greedy.run inst sigma in
  Alcotest.(check bool) "greedy valid at n=200" true (EF.Schedule.is_valid g);
  let s = EF.Water_filling.normalize g in
  Alcotest.(check bool) "normal form valid at n=200" true (EF.Schedule.is_valid s);
  Alcotest.(check bool) "objective preserved" true
    (Float.abs (EF.Schedule.weighted_completion_time g -. EF.Schedule.weighted_completion_time s) < 1e-6);
  Alcotest.(check bool) "Theorem 9 at n=200" true (EF.Preemption.total_changes s <= n)

let test_wdeq_at_scale () =
  let n = 300 and procs = 24 in
  let inst = big_instance ~n ~procs 2 in
  let s, d = EF.Wdeq.wdeq inst in
  Alcotest.(check bool) "WDEQ valid at n=300" true (EF.Schedule.is_valid s);
  let tc = EF.Schedule.weighted_completion_time s in
  let bound =
    2.
    *. (EF.Lower_bounds.squashed_area (EF.Instance.sub_instance inst d.EF.Wdeq.limited_volume)
       +. EF.Lower_bounds.height_bound (EF.Instance.sub_instance inst d.EF.Wdeq.full_volume))
  in
  Alcotest.(check bool) "Lemma 2 at n=300" true (tc <= bound +. 1e-6);
  Alcotest.(check bool) "above the lower bound" true (EF.Lower_bounds.best inst <= tc +. 1e-6)

let test_integerize_at_scale () =
  let n = 120 and procs = 16 in
  let inst = big_instance ~n ~procs 3 in
  let s = EF.Water_filling.normalize (EF.Greedy.run inst (EF.Orderings.smith inst)) in
  let is, wrap = EF.Integerize.of_columns s in
  Alcotest.(check bool) "wrap no overlap" true (EF.Assignment.no_overlap wrap);
  let g = EF.Assignment.assign is in
  Alcotest.(check bool) "assignment no overlap" true (EF.Assignment.no_overlap g);
  Alcotest.(check bool) "Theorem 10 at n=120" true (EF.Assignment.preemptions g <= 3 * n);
  let volumes = EF.Assignment.booked_volume g in
  Alcotest.(check bool) "volumes preserved" true
    (Array.for_all2
       (fun v (t : EF.Types.task) -> Float.abs (v -. t.EF.Types.volume) < 1e-4)
       volumes inst.EF.Types.tasks)

let test_makespan_at_scale () =
  let n = 500 and procs = 64 in
  let inst = big_instance ~n ~procs 4 in
  let t_star = EF.Makespan.optimal inst in
  let s = EF.Makespan.schedule inst in
  Alcotest.(check bool) "schedule valid at n=500" true (EF.Schedule.is_valid s);
  Alcotest.(check (float 1e-6)) "makespan achieved" t_star (EF.Schedule.makespan s)

let test_ncv_at_scale () =
  let n = 150 and procs = 16 in
  let inst = big_instance ~n ~procs 5 in
  let module Sim = Mwct_ncv.Simulator.Float in
  let rng = Rng.create 6 in
  let releases = Array.init n (fun _ -> float_of_int (Rng.dyadic rng ~den:32) /. 16.) in
  let tr = Sim.run ~releases inst Sim.P.Wdeq in
  Alcotest.(check (result unit string)) "trace valid at n=150 with arrivals" (Ok ()) (Sim.check tr)

let test_homogeneous_at_scale () =
  (* The recurrence is linear-time; exercise a large exact run. *)
  let module Q = Support.Q in
  let module EQ = Support.EQ in
  let ds = G.homogeneous_deltas (Rng.create 7) ~n:400 ~den:1024 () in
  let deltas = Array.map (fun (r : Mwct_core.Spec.rat) -> Q.of_q r.num r.den) ds in
  let order = EQ.Orderings.identity 400 in
  let gap = EQ.Homogeneous.reversal_gap deltas order in
  Alcotest.(check string) "Conjecture 13 exactly at n=400" "0" (Q.to_string gap)

let test_registry_at_scale () =
  (* Every polynomial solver in the registry, through the uniform
     driver, at n = 150: valid schedule, coherent report, objective at
     or above the lower bound. Enumerative solvers are skipped by their
     capability flag — exactly how the bench loop sizes instances. *)
  let inst = big_instance ~n:150 ~procs:16 8 in
  List.iter
    (fun (s : SF.t) ->
      if not (SF.has_cap Mwct_solver.Solver.Enumerative s) then begin
        let name = s.SF.info.Mwct_solver.Solver.name in
        let r = DF.run s inst in
        Alcotest.(check bool) (name ^ " valid at n=150") true (DF.valid r);
        Alcotest.(check (float 0.)) (name ^ " objective matches schedule")
          (EF.Schedule.weighted_completion_time r.DF.schedule)
          r.DF.objective;
        match r.DF.ratio_to_bound with
        | Some ratio -> Alcotest.(check bool) (name ^ " above the lower bound") true (ratio >= 1. -. 1e-9)
        | None -> Alcotest.fail (name ^ ": lower bound unexpectedly zero")
      end)
    SF.all

let () =
  Alcotest.run "stress"
    [
      ( "scale",
        [
          Alcotest.test_case "greedy + WF n=200" `Slow test_greedy_wf_at_scale;
          Alcotest.test_case "WDEQ n=300" `Slow test_wdeq_at_scale;
          Alcotest.test_case "integerize n=120" `Slow test_integerize_at_scale;
          Alcotest.test_case "makespan n=500" `Slow test_makespan_at_scale;
          Alcotest.test_case "ncv arrivals n=150" `Slow test_ncv_at_scale;
          Alcotest.test_case "conjecture 13 n=400 exact" `Slow test_homogeneous_at_scale;
          Alcotest.test_case "solver registry n=150" `Slow test_registry_at_scale;
        ] );
    ]
